/**
 * @file
 * Simulator graph backend: deterministic lowering of a runtime::Graph
 * to a sim::Trace, so the BtsSimulator consumes runtime-produced
 * traces instead of trusted hand-written transcriptions.
 *
 * The lowering is deterministic and structure-preserving:
 *  - trace object ids are assigned from value ids in first-use order
 *    (graph inputs at first reference, node outputs at production),
 *    exactly mirroring how the hand-written src/workloads/ generators
 *    allocate TraceBuilder ids — the ported tmult graph lowers to an
 *    op-for-op identical trace (tests pin this);
 *  - op levels come from the graph's value metadata (HRescale executes
 *    at its input's level, ModRaise at the raised level);
 *  - a kBootstrap node expands to the full ModRaise / CtS / EvalMod /
 *    StC plan via workloads::append_bootstrap, with every expanded op
 *    tagged in_bootstrap and counted in Trace::bootstrap_count.
 */
#pragma once

#include "hwparams/instance.h"
#include "runtime/graph.h"
#include "sim/op_trace.h"

namespace bts::runtime {

/**
 * Lower @p g to a schedulable trace for @p inst. The graph's level
 * geometry must match the instance (a graph built for a different
 * modulus chain would produce nonsense cost-model lookups).
 */
sim::Trace lower_to_trace(const Graph& g, const hw::CkksInstance& inst);

/** The primitive sim kind for a graph op (fails on kBootstrap, which
 *  has no single-op image — it lowers as a composite expansion). */
sim::HeOpKind to_sim_kind(OpKind kind);

} // namespace bts::runtime
