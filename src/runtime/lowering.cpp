#include "runtime/lowering.h"

#include "common/check.h"
#include "workloads/workloads.h"

namespace bts::runtime {

sim::HeOpKind
to_sim_kind(OpKind kind)
{
    switch (kind) {
    case OpKind::kHMult: return sim::HeOpKind::kHMult;
    case OpKind::kHRot: return sim::HeOpKind::kHRot;
    case OpKind::kConj: return sim::HeOpKind::kConj;
    case OpKind::kPMult: return sim::HeOpKind::kPMult;
    case OpKind::kPAdd: return sim::HeOpKind::kPAdd;
    case OpKind::kHAdd: return sim::HeOpKind::kHAdd;
    case OpKind::kHSub: return sim::HeOpKind::kHAdd; // add-cost twin
    case OpKind::kHRescale: return sim::HeOpKind::kHRescale;
    case OpKind::kCMult: return sim::HeOpKind::kCMult;
    case OpKind::kCAdd: return sim::HeOpKind::kCAdd;
    case OpKind::kModRaise: return sim::HeOpKind::kModRaise;
    case OpKind::kBootstrap:
    case OpKind::kHRotHoisted:
    case OpKind::kHMultRescale:
    case OpKind::kPMultRescale:
    case OpKind::kCMultRescale:
    case OpKind::kCMultAdd:
        fatal(std::string(op_name(kind)) +
              " has no primitive sim image; lower_to_trace expands it");
    }
    panic("unknown OpKind");
}

sim::Trace
lower_to_trace(const Graph& g, const hw::CkksInstance& inst)
{
    // Level-geometry compatibility: every value must fit the instance's
    // chain, and composite/raise ops must target ITS top level.
    for (std::size_t id = 0; id < g.num_values(); ++id) {
        const ValueInfo& info = g.value(static_cast<int>(id));
        BTS_CHECK(info.level <= inst.max_level,
                  g.name() << ": value level " << info.level
                           << " exceeds instance max_level "
                           << inst.max_level);
    }
    if (g.uses_bootstrap() || g.count_kind(OpKind::kModRaise) > 0) {
        BTS_CHECK(g.traits().max_level == inst.max_level,
                  g.name() << ": graph raises to level "
                           << g.traits().max_level << ", instance has L = "
                           << inst.max_level);
    }
    if (g.uses_bootstrap()) {
        BTS_CHECK(g.traits().bootstrap_out_level == inst.usable_levels(),
                  g.name() << ": graph bootstrap level "
                           << g.traits().bootstrap_out_level
                           << " != instance usable levels "
                           << inst.usable_levels());
    }

    sim::TraceBuilder b(g.name());
    // Object ids assigned at first use (inputs) / production (outputs):
    // this makes the id stream identical to a hand-written generator
    // that calls fresh_id() in the same op order.
    std::vector<int> object(g.num_values(), -1);
    const auto obj = [&](int value_id) {
        if (object[value_id] < 0) object[value_id] = b.fresh_id();
        return object[value_id];
    };

    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        if (n.kind == OpKind::kBootstrap) {
            object[n.output] =
                workloads::append_bootstrap(b, inst, obj(n.inputs[0]));
            continue;
        }
        // Pass-introduced composites expand back to the primitive ops
        // they fused, keeping the simulator trace contract unchanged:
        // the sim models each primitive's cost, and fusion/hoisting are
        // dataflow restructurings, not new hardware ops.
        if (n.kind == OpKind::kHRotHoisted) {
            const int src = obj(n.inputs[0]);
            for (std::size_t k = 0; k < n.amounts.size(); ++k) {
                object[n.outputs[k]] =
                    b.add(sim::HeOpKind::kHRot, g.value(n.outputs[k]).level,
                          {src}, n.amounts[k]);
            }
            continue;
        }
        if (op_is_composite(n.kind)) {
            const sim::HeOpKind first =
                n.kind == OpKind::kHMultRescale ? sim::HeOpKind::kHMult
                : n.kind == OpKind::kPMultRescale
                    ? sim::HeOpKind::kPMult
                    : sim::HeOpKind::kCMult;
            const sim::HeOpKind second = n.kind == OpKind::kCMultAdd
                                             ? sim::HeOpKind::kCAdd
                                             : sim::HeOpKind::kHRescale;
            // Both primitives execute at the pre-drop level: output
            // level + 1 for the rescale fusions (CMult+CAdd is
            // level-preserving).
            const int mid_level =
                g.value(n.output).level +
                (n.kind == OpKind::kCMultAdd ? 0 : 1);
            std::vector<int> inputs;
            inputs.reserve(n.inputs.size());
            for (const int in : n.inputs) inputs.push_back(obj(in));
            const int mid =
                b.add(first, mid_level, std::move(inputs), 0);
            object[n.output] = b.add(second, mid_level, {mid}, 0);
            continue;
        }
        // The level an op *executes at*: HRescale still holds the
        // about-to-drop prime, ModRaise already runs on the full chain.
        const int level = n.kind == OpKind::kHRescale
                              ? g.value(n.inputs[0]).level
                              : g.value(n.output).level;
        std::vector<int> inputs;
        inputs.reserve(n.inputs.size());
        for (const int in : n.inputs) inputs.push_back(obj(in));
        object[n.output] = b.add(to_sim_kind(n.kind), level,
                                 std::move(inputs), n.rot_amount);
    }
    return std::move(b.trace());
}

} // namespace bts::runtime
