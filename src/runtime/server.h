/**
 * @file
 * Multi-client serving harness: a bounded job queue admitting
 * concurrent graphs onto a fixed set of worker lanes.
 *
 * This is the layer the ROADMAP's "serve heavy traffic" goal needs
 * above single Evaluator calls: clients submit (graph, inputs) jobs
 * and receive futures; each lane owns an Executor (so evk handles and
 * CMult plaintexts stay warm across that lane's jobs) and drains the
 * queue FIFO. Backpressure is by admission: submit() blocks while the
 * queue is at capacity, bounding the server's resident ciphertext
 * footprint.
 *
 * Throughput scales with lanes because jobs are independent: each
 * lane's Evaluator calls run concurrently against the shared immutable
 * CkksContext/keys (safe — tests pin concurrent-evaluator
 * bit-exactness), and the stats() snapshot reports jobs/s plus
 * p50/p99 latency, the numbers BM_Serving sweeps over 1..8 lanes.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "runtime/executor.h"
#include "runtime/passes/pass_manager.h"

namespace bts::runtime {

/** One client request: a borrowed graph plus its input bindings. The
 *  graph must outlive the job's completion. */
struct JobRequest
{
    const Graph* graph = nullptr;
    Binding inputs;
    std::string client; //!< ServerStats::completed_by_client bucket
};

/** What a completed job hands back through its future. */
struct JobResult
{
    std::vector<Ciphertext> outputs;
    double queue_s = 0; //!< admission -> lane pickup
    double exec_s = 0;  //!< lane pickup -> completion
};

/** Harness knobs. */
struct ServerOptions
{
    int lanes = 1;        //!< concurrent jobs (one Executor per lane)
    int lanes_per_job = 1; //!< intra-graph executor lanes on each lane
    std::size_t queue_capacity = 64; //!< admission bound (backpressure)
};

/** Aggregate serving metrics since construction. */
struct ServerStats
{
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t failed = 0; //!< jobs whose future carries an exception
    /** Completed jobs per JobRequest::client tag. */
    std::map<std::string, std::size_t> completed_by_client;
    double p50_latency_s = 0; //!< submit -> completion, successful jobs
    double p99_latency_s = 0;
    double mean_exec_s = 0;
    /** completed / (last completion - first admission). */
    double jobs_per_s = 0;
};

/** The job queue + worker lanes. */
class GraphServer
{
  public:
    GraphServer(EvalResources res, ServerOptions opts);
    ~GraphServer(); //!< drains accepted jobs, then joins the lanes

    GraphServer(const GraphServer&) = delete;
    GraphServer& operator=(const GraphServer&) = delete;

    /**
     * Admit a job; blocks while the queue is full. The returned future
     * resolves to the job's outputs, or rethrows the execution error
     * (a failed job never takes the server down).
     */
    std::future<JobResult> submit(JobRequest req);

    /**
     * Run @p g through the pass pipeline ONCE and cache the result for
     * the server's lifetime, keyed by Graph::uid() — registering the
     * same graph again returns the cached entry, so every lane's
     * Executor plans (and keeps warm) one optimized graph instead of
     * re-optimizing per job. Submit against `&result->graph` and
     * translate any raw-graph Value handles through result->remap()
     * when binding. The input graph is not retained.
     *
     * Admission control: the graph is statically verified first —
     * structure, metadata, noise/level budgets, and its required
     * evaluation keys against what this server holds — and any
     * error-level finding throws analysis::VerifyError (with the
     * structured diagnostics) instead of caching a graph whose every
     * job would fail on a worker lane.
     */
    const passes::OptimizeResult*
    register_graph(const Graph& g,
                   const passes::PassOptions& opts = {});

    /** Block until every admitted job has completed. */
    void drain();

    ServerStats stats() const;
    int lanes() const { return static_cast<int>(lanes_.size()); }

  private:
    using Clock = std::chrono::steady_clock;

    struct Job
    {
        JobRequest req;
        std::promise<JobResult> promise;
        Clock::time_point submitted;
    };

    void lane_loop(int lane_idx);

    EvalResources res_;
    ServerOptions opts_;

    mutable std::mutex mutex_;
    std::condition_variable queue_cv_; //!< lanes: work available / stop
    std::condition_variable space_cv_; //!< submitters: capacity freed
    std::condition_variable idle_cv_;  //!< drain(): all work finished
    std::deque<Job> queue_;
    std::size_t active_ = 0; //!< jobs picked up, not yet finished
    bool stop_ = false;

    /** register_graph() cache: source uid -> optimized graph + remap,
     *  owned by the server so job requests can borrow the graph. */
    std::map<u64, std::unique_ptr<const passes::OptimizeResult>>
        registered_;

    // Stats, under mutex_.
    std::size_t submitted_ = 0;
    std::size_t completed_ = 0;
    std::size_t failed_ = 0;
    std::map<std::string, std::size_t> completed_by_client_;
    double exec_total_s_ = 0;
    /** Bounded uniform sample of per-job latencies (reservoir
     *  sampling), so a long-lived server's memory and its stats()
     *  percentile cost stay O(capacity), not O(jobs served). */
    std::vector<double> latencies_s_;
    std::size_t latency_seen_ = 0; //!< total latencies offered
    Xoshiro256 latency_rng_{0x5e21};
    Clock::time_point first_submit_{};
    Clock::time_point last_complete_{};

    std::vector<std::unique_ptr<Executor>> executors_; //!< per lane
    std::vector<std::thread> lanes_;
};

} // namespace bts::runtime
