/**
 * @file
 * Multi-client serving harness: a bounded job queue admitting
 * concurrent graphs onto a fixed set of worker lanes.
 *
 * This is the layer the ROADMAP's "serve heavy traffic" goal needs
 * above single Evaluator calls: clients submit (graph, inputs) jobs
 * and receive futures; each lane owns an Executor (so evk handles and
 * CMult plaintexts stay warm across that lane's jobs) and drains the
 * queue FIFO. Backpressure is by admission: submit() blocks while the
 * queue is at capacity, bounding the server's resident ciphertext
 * footprint.
 *
 * Throughput scales with lanes because jobs are independent: each
 * lane's Evaluator calls run concurrently against the shared immutable
 * CkksContext/keys (safe — tests pin concurrent-evaluator
 * bit-exactness), and the stats() snapshot reports jobs/s plus
 * p50/p99 latency, the numbers BM_Serving sweeps over 1..8 lanes.
 */
#pragma once

#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/thread_annotations.h"
#include "runtime/analysis/resource.h"
#include "runtime/executor.h"
#include "runtime/passes/pass_manager.h"

namespace bts::runtime {

/** One client request: a borrowed graph plus its input bindings. The
 *  graph must outlive the job's completion. */
struct JobRequest
{
    const Graph* graph = nullptr;
    Binding inputs;
    std::string client; //!< ServerStats::completed_by_client bucket
    /** Scheduling class (cost-aware mode): higher-priority jobs are
     *  always picked before lower, regardless of cost or deadline. */
    int priority = 0;
    /** Relative deadline in seconds from submission; 0 = none. Within
     *  a priority class, deadline jobs run earliest-deadline-first
     *  ahead of deadline-free ones. */
    double deadline_s = 0;
};

/** What a completed job hands back through its future. */
struct JobResult
{
    std::vector<Ciphertext> outputs;
    double queue_s = 0; //!< admission -> lane pickup
    double exec_s = 0;  //!< lane pickup -> completion
    /** The statically estimated cost (ResourceSummary::total_work_s)
     *  admission scheduled this job by; 0 when the graph was never
     *  registered (no estimate). */
    double est_cost_s = 0;
};

/** Harness knobs. */
struct ServerOptions
{
    int lanes = 1;        //!< concurrent jobs (one Executor per lane)
    int lanes_per_job = 1; //!< intra-graph executor lanes on each lane
    std::size_t queue_capacity = 64; //!< admission bound (backpressure)
    /**
     * Cost-aware admission (default on): lanes pick the queued job
     * with the highest priority, then the earliest deadline, then the
     * smallest estimated cost (shortest-job-first keeps a stream of
     * cheap jobs from queueing behind one expensive one), then FIFO.
     * Estimates come from the ResourceSummary register_graph() caches;
     * a job whose graph has no summary is ordered as if infinitely
     * expensive (conservative) but is never rejected. Off = pure FIFO,
     * the pre-cost-model behaviour.
     */
    bool cost_aware = true;
    /**
     * Cost backpressure: submit() additionally blocks while the
     * estimated cost already queued exceeds this many seconds (so the
     * queue is bounded by predicted work, not just job count). An
     * empty queue always admits one job of any size. 0 = unlimited.
     */
    double max_queued_cost_s = 0;
};

/** Aggregate serving metrics since construction. */
struct ServerStats
{
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t failed = 0; //!< jobs whose future carries an exception
    /** Completed jobs per JobRequest::client tag. */
    std::map<std::string, std::size_t> completed_by_client;
    double p50_latency_s = 0; //!< submit -> completion, successful jobs
    double p99_latency_s = 0;
    /** Per-client p99 latency — the cost-aware admission benchmark's
     *  cheap-traffic tail under mixed workloads. */
    std::map<std::string, double> p99_latency_by_client_s;
    double mean_exec_s = 0;
    /** completed / (last completion - first admission). */
    double jobs_per_s = 0;
    /** Estimated cost currently sitting in the queue, and its
     *  high-water mark (cost backpressure observability). */
    double queued_cost_s = 0;
    double peak_queued_cost_s = 0;
};

/** The job queue + worker lanes. */
class GraphServer
{
  public:
    GraphServer(EvalResources res, ServerOptions opts);
    ~GraphServer(); //!< drains accepted jobs, then joins the lanes

    GraphServer(const GraphServer&) = delete;
    GraphServer& operator=(const GraphServer&) = delete;

    /**
     * Admit a job; blocks while the queue is full. The returned future
     * resolves to the job's outputs, or rethrows the execution error
     * (a failed job never takes the server down).
     */
    std::future<JobResult> submit(JobRequest req);

    /**
     * Run @p g through the pass pipeline ONCE and cache the result for
     * the server's lifetime, keyed by Graph::uid() — registering the
     * same graph again returns the cached entry, so every lane's
     * Executor plans (and keeps warm) one optimized graph instead of
     * re-optimizing per job. Submit against `&result->graph` and
     * translate any raw-graph Value handles through result->remap()
     * when binding. The input graph is not retained.
     *
     * Admission control: the graph is statically verified first —
     * structure, metadata, noise/level budgets, and its required
     * evaluation keys against what this server holds — and any
     * error-level finding throws analysis::VerifyError (with the
     * structured diagnostics) instead of caching a graph whose every
     * job would fail on a worker lane.
     */
    const passes::OptimizeResult*
    register_graph(const Graph& g,
                   const passes::PassOptions& opts = {});

    /**
     * The resource analysis register_graph() cached for an optimized
     * graph (pass the graph jobs are submitted against, i.e.
     * result->graph). Null when @p g was never registered here, or
     * when the analysis was skipped because the serving context's
     * level geometry cannot express it (such graphs are served with
     * no estimate). The summary is computed against a pseudo-instance
     * describing this server's CkksContext, so total_work_s ranks
     * jobs relatively; it is not wall-clock for the software backend.
     */
    const analysis::ResourceSummary* resource_summary(const Graph& g) const;

    /** Block until every admitted job has completed. */
    void drain();

    ServerStats stats() const;
    int lanes() const { return static_cast<int>(lanes_.size()); }

  private:
    using Clock = std::chrono::steady_clock;

    struct Job
    {
        JobRequest req;
        std::promise<JobResult> promise;
        Clock::time_point submitted;
        Clock::time_point deadline{}; //!< absolute; valid iff has_deadline
        bool has_deadline = false;
        /** Estimated cost; negative = no estimate (ordered as
         *  infinitely expensive, charged 0 to the cost backpressure). */
        double est_cost_s = -1;
    };

    void lane_loop(int lane_idx);
    /** Index of the job a lane should take next (queue must be
     *  non-empty). FIFO front unless cost_aware. */
    std::size_t pick_job() const BTS_REQUIRES(mutex_);

    EvalResources res_;
    ServerOptions opts_;

    mutable Mutex mutex_;
    CondVar queue_cv_; //!< lanes: work available / stop
    CondVar space_cv_; //!< submitters: capacity freed
    CondVar idle_cv_;  //!< drain(): all work finished
    std::deque<Job> queue_ BTS_GUARDED_BY(mutex_);
    /** Jobs picked up, not yet finished. */
    std::size_t active_ BTS_GUARDED_BY(mutex_) = 0;
    bool stop_ BTS_GUARDED_BY(mutex_) = false;

    /** register_graph() cache: source uid -> optimized graph + remap,
     *  owned by the server so job requests can borrow the graph. */
    std::map<u64, std::unique_ptr<const passes::OptimizeResult>>
        registered_ BTS_GUARDED_BY(mutex_);
    /** Cached resource analyses, keyed by the OPTIMIZED graph's uid
     *  (what jobs submit against); the admission cost estimates. */
    std::map<u64, analysis::ResourceSummary> summaries_
        BTS_GUARDED_BY(mutex_);
    /** Estimated cost queued but not yet picked up (backpressure). */
    double queued_cost_s_ BTS_GUARDED_BY(mutex_) = 0;
    double peak_queued_cost_s_ BTS_GUARDED_BY(mutex_) = 0;

    // Stats, under mutex_.
    std::size_t submitted_ BTS_GUARDED_BY(mutex_) = 0;
    std::size_t completed_ BTS_GUARDED_BY(mutex_) = 0;
    std::size_t failed_ BTS_GUARDED_BY(mutex_) = 0;
    std::map<std::string, std::size_t> completed_by_client_
        BTS_GUARDED_BY(mutex_);
    double exec_total_s_ BTS_GUARDED_BY(mutex_) = 0;
    /** Bounded uniform sample of per-job latencies (reservoir
     *  sampling), so a long-lived server's memory and its stats()
     *  percentile cost stay O(capacity), not O(jobs served) —
     *  whole-server and per-client (mixed-workload tail tracking). */
    std::vector<double> latencies_s_ BTS_GUARDED_BY(mutex_);
    /** Total latencies offered to the reservoir. */
    std::size_t latency_seen_ BTS_GUARDED_BY(mutex_) = 0;
    std::map<std::string, std::vector<double>> client_latencies_s_
        BTS_GUARDED_BY(mutex_);
    std::map<std::string, std::size_t> client_latency_seen_
        BTS_GUARDED_BY(mutex_);
    Xoshiro256 latency_rng_ BTS_GUARDED_BY(mutex_){0x5e21};
    Clock::time_point first_submit_ BTS_GUARDED_BY(mutex_){};
    Clock::time_point last_complete_ BTS_GUARDED_BY(mutex_){};

    std::vector<std::unique_ptr<Executor>> executors_; //!< per lane
    std::vector<std::thread> lanes_;
};

} // namespace bts::runtime
