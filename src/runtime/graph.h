/**
 * @file
 * CKKS computation-graph IR: the workload representation shared by the
 * functional Executor (runs ops on the real library) and the simulator
 * TraceLowering (emits a sim::Trace) — one definition, two backends.
 *
 * A Graph is an SSA-style DAG: every Value is produced exactly once
 * (by a graph input or by one Node) and carries level + scale metadata
 * that is inferred, and validated, as the graph is built. Levels are
 * exact (they drive the simulator's cost-model lookups and the
 * executor's consistency checks); scales are approximate bookkeeping
 * (the functional library tracks the exact per-ciphertext scale at run
 * time) kept to catch mismatched-operand mistakes at build time.
 *
 * Node kinds mirror the primitive HE ops of Section 2.3 of the paper
 * (the same set sim::HeOpKind schedules) plus one composite:
 * kBootstrap, which the Executor runs via a Bootstrapper and the
 * lowering expands into the full ModRaise/CtS/EvalMod/StC plan.
 */
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "common/types.h"

namespace bts::runtime {

using Complex = std::complex<double>;

/** Graph-level op kinds: sim::HeOpKind plus the Bootstrap composite
 *  and HSub (an add-cost subtraction the sim models as kHAdd), plus
 *  the composite kinds the pass pipeline (src/runtime/passes/)
 *  introduces — grouped hoisted rotations and fused op pairs. The
 *  composites never appear in builder-authored graphs; lowering
 *  expands them back to the primitive kinds above, so the simulator
 *  trace contract is unchanged. */
enum class OpKind {
    kHMult,     //!< ciphertext x ciphertext (+ relinearization)
    kHRot,      //!< slot rotation (+ key-switch)
    kConj,      //!< slot conjugation (+ key-switch)
    kPMult,     //!< ciphertext x plaintext
    kPAdd,      //!< ciphertext + plaintext
    kHAdd,      //!< ciphertext + ciphertext
    kHSub,      //!< ciphertext - ciphertext (cost-identical to kHAdd)
    kHRescale,  //!< divide by the top prime, dropping one level
    kCMult,     //!< ciphertext x scalar constant
    kCAdd,      //!< ciphertext + scalar constant
    kModRaise,  //!< bootstrap modulus raise (level 0 -> L)
    kBootstrap, //!< full refresh (composite; any level -> usable level)
    // ----- pass-introduced composites -----
    kHRotHoisted,  //!< N rotations of one value, shared decompose+ModUp
    kHMultRescale, //!< fused HMult + HRescale
    kPMultRescale, //!< fused PMult + HRescale
    kCMultRescale, //!< fused CMult + HRescale
    kCMultAdd,     //!< fused CMult + CAdd
};

inline constexpr int kNumOpKinds = 17;

/** Human-readable kind name (exhaustive; never returns null). */
const char* op_name(OpKind kind);

/** @return true if the op streams an evaluation key. */
bool op_needs_evk(OpKind kind);

/** @return true for the composite kinds only the pass pipeline emits
 *  (builder-authored graphs never contain them; lowering expands them
 *  back to primitives). */
bool op_is_composite(OpKind kind);

/** @return true if the op can consume a lazy [0, 2q) residue operand
 *  without canonicalization first: ops whose first step reduces mod q
 *  anyway, or whose math is linear in the residue representation. The
 *  lazy-residue pass plants marks under this predicate and the static
 *  verifier's lazy-contract rule re-checks them (docs/PASSES.md). */
bool op_tolerates_lazy_input(OpKind kind);

/**
 * Level geometry + scale granularity the metadata inference needs.
 * For simulator lowering these must match the target CkksInstance; for
 * functional execution they must match the CkksContext/Bootstrapper
 * the graph is bound to.
 */
struct GraphTraits
{
    int max_level = 0;           //!< level a ModRaise raises to (L)
    int bootstrap_out_level = 0; //!< level a Bootstrap refreshes to
    double delta = 1.0;          //!< canonical scale granularity
};

/**
 * A Graph's process-unique identity. Fresh on construction AND on
 * copy/copy-assign (a copy can diverge from the original through
 * further builder calls, so it must not share cached per-graph plans).
 * On move the identity transfers with the structure — and the
 * moved-from side gets a fresh uid, so a moved-from Graph rebuilt with
 * new ops can't alias the destination's cached plans either.
 */
class GraphUid
{
  public:
    GraphUid() : value_(next()) {}
    GraphUid(const GraphUid&) : GraphUid() {}
    GraphUid&
    operator=(const GraphUid&)
    {
        value_ = next();
        return *this;
    }
    GraphUid(GraphUid&& other) noexcept : value_(other.value_)
    {
        other.value_ = next();
    }
    GraphUid&
    operator=(GraphUid&& other) noexcept
    {
        value_ = other.value_;
        other.value_ = next();
        return *this;
    }

    u64 value() const { return value_; }

  private:
    static u64 next();

    u64 value_;
};

/** An SSA value handle (ciphertext or plaintext). */
struct Value
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/** Per-value metadata. */
struct ValueInfo
{
    bool is_plain = false; //!< plaintext (graph inputs only)
    bool is_input = false; //!< bound at execution time
    int level = 0;
    double scale = 1.0;
    int producer = -1; //!< producing node index; -1 for graph inputs
    int num_uses = 0;  //!< consumer operand slots + output marks
};

/** One graph node. */
struct Node
{
    OpKind kind = OpKind::kHAdd;
    std::vector<int> inputs; //!< value ids (operand order matters)
    int output = -1;         //!< value id this node defines (the first
                             //!< one, for multi-output nodes)
    std::vector<int> outputs; //!< all defined value ids; size >= 1,
                              //!< outputs[0] == output
    int rot_amount = 0;      //!< kHRot only
    std::vector<int> amounts; //!< kHRotHoisted: one per output
    Complex constant{0.0, 0.0};  //!< kCMult / kCAdd / fused-CMult kinds
    Complex constant2{0.0, 0.0}; //!< kCMultAdd: the added constant
    /** Set by the lazy-residue pass on kHAdd/kHSub whose every
     *  consumer tolerates [0, 2q) residues: the Executor dispatches
     *  Evaluator::add_lazy/sub_lazy instead of add/sub, skipping the
     *  canonicalization pass (see docs/PASSES.md for the contract). */
    bool lazy = false;
};

/**
 * The computation graph. Build by declaring inputs and appending ops;
 * every builder method validates operand kinds/levels and infers the
 * output metadata, so malformed programs (rescale below level 0,
 * ModRaise of a non-exhausted ciphertext, plaintext level too low for
 * its consumer) fail at construction, not mid-execution.
 *
 * Nodes are stored in creation order, which is a topological order by
 * construction (operands must already exist).
 */
class Graph
{
  public:
    Graph(std::string name, GraphTraits traits);

    const std::string& name() const { return name_; }
    const GraphTraits& traits() const { return traits_; }
    /** Process-unique graph identity (fresh on copy, preserved on
     *  move). Executors key their per-graph plan caches on this, so a
     *  new Graph reusing a destroyed one's address can never hit a
     *  stale plan. */
    u64 uid() const { return uid_.value(); }

    // ----- inputs -----
    /** Declare a ciphertext input bound at execution time. */
    Value input(int level, double scale);
    /** Declare a plaintext input bound at execution time. */
    Value plain_input(int level, double scale);

    // ----- ops -----
    /** HMult; unequal operand levels align to the lower one. */
    Value hmult(Value a, Value b);
    /** HAdd; unequal operand levels align to the lower one. */
    Value hadd(Value a, Value b);
    /** HSub (a - b); same level/scale rules as hadd. */
    Value hsub(Value a, Value b);
    /** PMult; the plaintext's level must cover the ciphertext's. */
    Value pmult(Value ct, Value pt);
    /** PAdd; same level rule as pmult, scales must agree. */
    Value padd(Value ct, Value pt);
    Value hrot(Value ct, int amount);
    Value conj(Value ct);
    /** HRescale; requires level >= 1. */
    Value hrescale(Value ct);
    /** CMult by a constant encoded at delta (scale grows by delta). */
    Value cmult(Value ct, Complex c);
    Value cmult(Value ct, double c) { return cmult(ct, Complex(c, 0.0)); }
    /** CAdd of a constant (scale unchanged). */
    Value cadd(Value ct, Complex c);
    /** ModRaise; requires level == 0, raises to traits().max_level. */
    Value mod_raise(Value ct);
    /** Bootstrap; accepts any level (remaining levels are discarded —
     *  the Executor drops to level 0 before the refresh, the lowering
     *  expands the same plan either way) and refreshes to
     *  traits().bootstrap_out_level at canonical scale. This is what
     *  lets application graphs refresh mid-circuit the moment the
     *  level budget runs short, exactly like the hand-written
     *  workloads::* generators' ensure() logic. */
    Value bootstrap(Value ct);

    // ----- composite ops (emitted by the pass pipeline; legal to
    //       build directly, e.g. in tests) -----
    /** Grouped hoisted rotations: one node rotating @p ct by every
     *  amount in @p amounts (all nonzero), sharing one key-switch
     *  decomposition. Returns one value per amount, in order. */
    std::vector<Value> hrot_hoisted(Value ct,
                                    const std::vector<int>& amounts);
    /** Fused HMult+HRescale (operand levels align; requires >= 1). */
    Value hmult_rescale(Value a, Value b);
    /** Fused PMult+HRescale. */
    Value pmult_rescale(Value ct, Value pt);
    /** Fused CMult+HRescale. */
    Value cmult_rescale(Value ct, Complex c);
    /** Fused CMult+CAdd: ct * mul_c + add_c (scale grows by delta). */
    Value cmult_add(Value ct, Complex mul_c, Complex add_c);

    /** Mark @p v as a graph output (kept live; returned by the
     *  executor in mark order). A value can be marked only once. */
    void mark_output(Value v);

    /** Annotate node @p node_idx (kHAdd/kHSub only) as producing lazy
     *  [0, 2q) residues. Legality — every consumer tolerates lazy
     *  inputs and the result is not a graph output — is the caller's
     *  (the lazy-residue pass's) responsibility. */
    void mark_lazy(std::size_t node_idx);

    // ----- introspection -----
    std::size_t num_nodes() const { return nodes_.size(); }
    std::size_t num_values() const { return values_.size(); }
    const Node& node(std::size_t i) const { return nodes_[i]; }
    const std::vector<Node>& nodes() const { return nodes_; }
    const ValueInfo& value(int id) const;
    const std::vector<int>& outputs() const { return outputs_; }
    /** Ciphertext/plaintext input value ids, in declaration order. */
    const std::vector<int>& input_ids() const { return input_ids_; }

    /** Distinct rotation amounts used (the keys execution needs),
     *  including every amount of grouped kHRotHoisted nodes. */
    std::vector<int> required_rotations() const;
    bool uses_conjugation() const { return uses_conj_; }
    bool uses_bootstrap() const { return uses_bootstrap_; }
    /** Count of nodes of one kind. */
    int count_kind(OpKind kind) const;
    /** Per-value consumer node lists (index = value id). Computed on
     *  demand; the pass pipeline's use-analysis entry point. */
    std::vector<std::vector<int>> value_users() const;
    /** Canonical one-line-per-node text form (kinds, operands,
     *  amounts, constants, lazy marks, outputs). Two graphs with equal
     *  debug_string() are structurally identical — the idempotence
     *  pin the pass tests compare with. */
    std::string debug_string() const;

    // ----- unchecked mutation hooks -----
    // Bypass every builder invariant: the only legitimate uses are the
    // verifier's mutation tests (which need graphs the builder refuses
    // to construct) and deliberately-corrupting mock passes. Anything
    // touched through these must be re-validated with
    // analysis::verify() before execution.
    ValueInfo& mutable_value(int id) { return values_[id]; }
    Node& mutable_node(std::size_t i) { return nodes_[i]; }
    std::vector<int>& mutable_outputs() { return outputs_; }

  private:
    Value fresh_value(ValueInfo info);
    /** Validate a ciphertext operand and count the use. */
    const ValueInfo& use_cipher(Value v, const char* op);
    const ValueInfo& use_plain(Value v, const char* op);
    Value append(Node node, ValueInfo out_info);

    GraphUid uid_;
    std::string name_;
    GraphTraits traits_;
    std::vector<Node> nodes_;
    std::vector<ValueInfo> values_;
    std::vector<int> outputs_;
    std::vector<int> input_ids_;
    bool uses_conj_ = false;
    bool uses_bootstrap_ = false;
};

} // namespace bts::runtime
