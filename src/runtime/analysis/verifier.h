/**
 * @file
 * Static graph verifier: abstract interpretation of level / scale /
 * noise over the runtime IR, plus the lint-rule catalog.
 *
 * BTS builds everything on tight static budgets — level consumption
 * per op, rescale placement, bootstrap timing are all decided before
 * execution — so a bad graph should be rejected at registration time
 * with a diagnostic, not discovered as a worker-thread exception under
 * load. analyze() re-derives every value's metadata from the graph
 * structure alone and checks it against what the builder stored
 * (catching pass-manager corruption by construction), runs a
 * worst-case noise-budget estimator over the dataflow, checks the
 * lazy-residue and evaluation-key contracts, predicts level-budget
 * exhaustion, and applies the lint rules. Rule catalog, severities and
 * the noise model's constants are documented in docs/ANALYSIS.md.
 *
 * Rule ids (stable; the mutation tests pin one fixture per rule):
 *   structure-operand   operand ids out of range / defined after use
 *   structure-producer  value<->node cross-links inconsistent
 *   structure-arity     operand count or cipher/plain signature wrong
 *   structure-use-count stored num_uses != derived consumer count
 *   meta-level          stored level != re-derived level
 *   meta-scale          stored scale != re-derived scale
 *   scale-mismatch      add/sub operands at visibly different scales
 *   level-budget        value needs more rescale levels than remain
 *   noise-budget        worst-case noise exhausts the precision budget
 *   lazy-contract       lazy mark on an illegal node / consumer
 *   missing-mult-key    graph multiplies, key set has no mult key
 *   missing-rotation-key  required rotation amount not in the key set
 *   missing-conj-key    graph conjugates without a conjugation key
 *   missing-bootstrapper  graph bootstraps without a bootstrapper
 *   bootstrap-placement bootstrap discards a large remaining budget
 *   rescale-below-waterline  rescale of an already-canonical scale
 *   unused-input        declared input no node consumes
 *   dead-node           node whose results reach no marked output
 *   no-outputs          graph has no marked outputs
 */
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "runtime/analysis/diagnostic.h"
#include "runtime/graph.h"

namespace bts::runtime::analysis {

/**
 * Per-op noise growth model. A ciphertext value carries noise_bits =
 * log2 of its estimated error magnitude; error magnitudes compose by
 * the independent-error (RMS) heuristic standard for CKKS — adds
 * combine as sqrt(ea^2 + eb^2) (balanced trees grow 0.5 bits per
 * level; pathological self-accumulation still grows without bound),
 * multiplies take the dominant cross term max(na + sb, nb + sa) of
 * e = a*eb + b*ea. The
 * floor constants are *fractions of log2(delta)*, so the model adapts
 * from the paper's 50-bit production scales down to the 40-bit test
 * instances without retuning. A value's precision budget is
 * scale_bits - noise_bits; the estimator errors when that budget
 * reaches zero before the value's bootstrap. Constants follow the
 * paper's parameter-study margins (Section 2.4 / Table 4); see
 * docs/ANALYSIS.md for the derivation of each one.
 */
struct NoiseModel
{
    double fresh = 0.25;         //!< encryption noise, x scale bits
    double key_switch = 0.30;    //!< additive key-switch noise term
    double rescale_floor = 0.30; //!< rounding noise floor after rescale
    double bootstrap_out = 0.45; //!< noise of a refreshed ciphertext
    double warn_headroom = 0.15; //!< warn when budget drops below this
    /** q0 headroom over the scale prime (60-bit base over 50-bit scale
     *  primes in Table 4): level-0 capacity is q0_ratio x scale bits. */
    double q0_ratio = 1.2;
};

/** The evaluation-key material a graph's execution environment holds;
 *  checked against the ops the graph actually uses. */
struct KeySet
{
    bool mult = false;
    bool conj = false;
    bool bootstrap = false;
    std::set<int> rotations;
};

/** Which rule families run (all on by default). */
struct AnalysisOptions
{
    bool structure = true; //!< well-formedness + metadata re-inference
    bool noise = true;     //!< noise-budget estimator + level budgets
    bool lazy = true;      //!< lazy-residue contract
    bool lints = true;     //!< unused-input / dead-node / waterline...
    NoiseModel noise_model;
    /** When set, the graph's required evks are checked against it. */
    std::optional<KeySet> keys;

    /** The well-formedness subset the pass pipeline runs between
     *  passes: structure + metadata + lazy contract, no noise/lints
     *  (mid-pipeline graphs legitimately carry dead nodes before DVE
     *  and unshared rescales before fusion). */
    static AnalysisOptions
    wellformed()
    {
        AnalysisOptions o;
        o.noise = false;
        o.lints = false;
        return o;
    }
};

/** Per-value facts the abstract interpretation derives; the lint
 *  tool's annotated DOT renders them next to each node. */
struct ValueFacts
{
    int level = 0;          //!< re-derived level
    double scale = 1.0;     //!< re-derived scale
    double noise_bits = 0;  //!< worst-case log2 |error|
    double budget_bits = 0; //!< scale_bits - noise_bits
    int uses = 0;           //!< derived consumer slots + output marks
};

/** analyze() result: diagnostics plus the derived per-value facts
 *  (facts are only meaningful when no structure errors were found). */
struct Analysis
{
    std::vector<Diagnostic> diags;
    std::vector<ValueFacts> values;

    bool ok() const { return !has_errors(diags); }
};

/** Run every enabled rule over @p g. Never throws on a bad graph —
 *  findings come back as diagnostics; structural corruption degrades
 *  later analyses gracefully instead of crashing them. */
Analysis analyze(const Graph& g, const AnalysisOptions& opts = {});

/** analyze() and return just the findings. */
std::vector<Diagnostic> verify(const Graph& g,
                               const AnalysisOptions& opts = {});

/** analyze(); throw VerifyError carrying every finding if any is an
 *  error. The GraphServer::register_graph rejection path. */
void verify_or_throw(const Graph& g, const AnalysisOptions& opts = {});

/** Graphviz DOT of @p g annotated with the analysis: every node shows
 *  its re-derived level and worst-case noise/budget bits, and nodes
 *  implicated in a diagnostic are tinted by severity. */
std::string to_annotated_dot(const Graph& g, const Analysis& a);

} // namespace bts::runtime::analysis
