#include "runtime/analysis/diagnostic.h"

#include <sstream>

namespace bts::runtime::analysis {

const char*
severity_name(Severity s)
{
    switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    }
    return "unknown";
}

std::string
to_text(const Diagnostic& d)
{
    std::ostringstream os;
    os << severity_name(d.severity) << ": [" << d.rule << "]";
    if (d.node >= 0) {
        os << " node " << d.node;
        if (!d.op.empty()) os << " (" << d.op << ")";
    }
    if (d.value >= 0) os << " v" << d.value;
    os << ": " << d.message;
    if (!d.hint.empty()) os << " (fix: " << d.hint << ")";
    return os.str();
}

std::string
render_text(const std::string& graph_name,
            const std::vector<Diagnostic>& diags)
{
    std::ostringstream os;
    os << graph_name << ": " << count_severity(diags, Severity::kError)
       << " error(s), " << count_severity(diags, Severity::kWarning)
       << " warning(s)\n";
    for (const Diagnostic& d : diags) os << "  " << to_text(d) << "\n";
    return os.str();
}

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control chars —
 *  everything a diagnostic message can realistically contain). */
void
append_json_string(std::ostringstream& os, const std::string& s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (const auto u = static_cast<unsigned char>(c); u < 0x20) {
                os << "\\u00" << "0123456789abcdef"[(u >> 4) & 0xf]
                   << "0123456789abcdef"[u & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

std::string
render_json(const std::string& graph_name,
            const std::vector<Diagnostic>& diags)
{
    std::ostringstream os;
    os << "{\"graph\": ";
    append_json_string(os, graph_name);
    os << ", \"errors\": " << count_severity(diags, Severity::kError)
       << ", \"warnings\": " << count_severity(diags, Severity::kWarning)
       << ", \"diagnostics\": [";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic& d = diags[i];
        os << (i ? ", " : "") << "{\"rule\": ";
        append_json_string(os, d.rule);
        os << ", \"severity\": \"" << severity_name(d.severity) << "\""
           << ", \"node\": " << d.node << ", \"op\": ";
        append_json_string(os, d.op);
        os << ", \"value\": " << d.value << ", \"message\": ";
        append_json_string(os, d.message);
        os << ", \"hint\": ";
        append_json_string(os, d.hint);
        os << "}";
    }
    os << "]}";
    return os.str();
}

bool
has_errors(const std::vector<Diagnostic>& diags)
{
    return count_severity(diags, Severity::kError) > 0;
}

std::size_t
count_severity(const std::vector<Diagnostic>& diags, Severity s)
{
    std::size_t n = 0;
    for (const Diagnostic& d : diags) n += (d.severity == s);
    return n;
}

VerifyError::VerifyError(std::string graph_name,
                         std::vector<Diagnostic> diags)
    : std::invalid_argument("bts: " + render_text(graph_name, diags)),
      graph_name_(std::move(graph_name)), diags_(std::move(diags))
{
}

void
throw_diagnostic(std::string graph_name, Diagnostic d)
{
    throw VerifyError(std::move(graph_name),
                      std::vector<Diagnostic>{std::move(d)});
}

} // namespace bts::runtime::analysis
