/**
 * @file
 * Static resource analyzer: the performance-model twin of the
 * correctness verifier (verifier.h). Where analyze() asks "is this
 * graph safe to run", analyze_resources() asks "what will it cost" —
 * per graph x Table-4 instance, before anything executes:
 *
 *  (a) exact op counts: every node is expanded by the same rules
 *      lower_to_trace applies (composites to primitives, kBootstrap to
 *      the full ModRaise/CtS/EvalMod/StC plan), so the per-HeOpKind
 *      counts match the lowered sim::Trace histogram EXACTLY — the
 *      zero-tolerance pin in tests/runtime/test_resource.cpp;
 *  (b) cost totals: each expanded primitive is priced by sim::CostModel
 *      at its execution level (calibration by construction: the
 *      analyzer reuses the very cost table the simulator schedules
 *      with), accumulating NTT / BConv / element-wise busy time, evk
 *      stream bytes and end-to-end compute seconds;
 *  (c) liveness: a register-allocation-style interval analysis over
 *      the serial schedule, mirroring Executor::run_serial's release
 *      discipline op for op — predicted peak live ciphertexts and
 *      bytes equal the measured ExecStats peaks on serial runs, zero
 *      tolerance (ciphertext bytes(level) = 2 (level+1) N 8);
 *  (d) the static parallelism profile: cost-weighted critical path vs
 *      total work (the lane-scaling bound) and the dependence width
 *      (maximum antichain — no schedule can ever have more nodes in
 *      flight).
 *
 * This is BTS's own methodology turned into a library: the paper picks
 * dnum/level schedules by predicting op counts, working sets and key
 * traffic per instance (Table 4 / Fig. 1) before running anything.
 * GraphServer::register_graph caches a ResourceSummary per graph for
 * cost-aware admission, bts_lint --cost/--schedule renders the
 * reports, and check_resources() turns budget violations into the
 * RS- rule family of PR-8-style diagnostics.
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "hwparams/instance.h"
#include "runtime/analysis/diagnostic.h"
#include "runtime/graph.h"
#include "sim/cost_model.h"
#include "sim/hw_config.h"
#include "sim/op_trace.h"

namespace bts::runtime::analysis {

/** Per-node slice of the summary — what bts_lint's --schedule table
 *  and the cost-annotated DOT render. */
struct NodeResource
{
    double cost_s = 0;      //!< summed compute_s of the expanded ops
    double evk_bytes = 0;   //!< evk stream the node pulls
    std::size_t live_after = 0;  //!< live ciphertexts after the node
                                 //!< finished (serial schedule)
    double live_bytes_after = 0; //!< same, in bytes
    double critical_start_s = 0; //!< earliest possible start time
};

/** Everything analyze_resources() derives for one (graph, instance). */
struct ResourceSummary
{
    // ----- (a) exact op counts, post-expansion -----
    /** Primitive op count per sim::HeOpKind (index = enum value);
     *  matches kind_histogram(lower_to_trace(g, inst)) exactly. */
    std::array<std::size_t, sim::kHeOpKindCount> op_counts{};
    std::size_t total_ops = 0;       //!< sum of op_counts
    int bootstrap_count = 0;         //!< kBootstrap nodes expanded
    std::size_t evk_ops = 0;         //!< evk-bearing primitives

    // ----- (b) calibrated cost totals -----
    double total_work_s = 0;   //!< sum of per-op compute_s
    double ntt_s = 0;          //!< NTTU busy time
    double bconv_s = 0;        //!< MMAU busy time
    double elem_s = 0;         //!< element-wise unit busy time
    double evk_bytes = 0;      //!< total evaluation-key stream
    double keyswitch_work_s = 0; //!< compute_s of evk-bearing ops only

    // ----- (c) liveness / peak memory (serial schedule) -----
    std::size_t peak_live_values = 0; //!< max resident ciphertexts
    double peak_live_bytes = 0;       //!< same in bytes (2 (l+1) N 8)
    /** Largest evk working set any single node needs resident at once:
     *  evk_bytes(level) per distinct amount of a hoisted-rotation
     *  group, one key for plain HMult/HRot/Conj. */
    double evk_working_set_bytes = 0;

    // ----- (d) static parallelism profile -----
    double critical_path_s = 0; //!< longest cost-weighted dep chain
    /** total_work_s / critical_path_s — the asymptotic lane-scaling
     *  bound (Brent); 1.0 for a pure chain. */
    double parallelism = 0;
    /** Maximum antichain of the node dependence DAG (Dilworth): no
     *  schedule can have more nodes in flight. 0 = not computed (graph
     *  larger than the O(n^2) closure cutoff). */
    std::size_t width = 0;

    std::vector<NodeResource> nodes; //!< per graph node, in order
};

/** Instance-free liveness profile — the pass pipeline's per-pass
 *  resource delta (PassManager has no CkksInstance in scope, so bytes
 *  are reported in limb units: one unit = one residue polynomial,
 *  2 (level+1) such units per ciphertext at `level`). */
struct LivenessStats
{
    std::size_t nodes = 0;            //!< graph nodes
    std::size_t evk_ops = 0;          //!< evk-bearing primitive ops
                                      //!< (hoisted groups count per
                                      //!< amount)
    std::size_t peak_live_values = 0; //!< serial-schedule peak
    std::size_t peak_live_limbs = 0;  //!< peak sum of 2 (level+1)
};

/** Serial-schedule liveness only — no instance, no cost model.
 *  The exact value-count/limb analysis analyze_resources() embeds. */
LivenessStats analyze_liveness(const Graph& g);

/**
 * Run the full resource analysis of @p g on @p inst under @p hw.
 * Mirrors lower_to_trace's level-geometry preconditions (value levels
 * within the instance chain; ModRaise/Bootstrap graphs match the
 * instance's L and usable levels) and throws BTS_CHECK-style on
 * violation — an estimate against the wrong instance is worse than no
 * estimate.
 */
ResourceSummary analyze_resources(const Graph& g,
                                  const hw::CkksInstance& inst,
                                  const sim::BtsConfig& hw = {});

/** Resource budgets for check_resources(); 0 disables a rule. */
struct ResourceLimits
{
    double max_peak_live_bytes = 0;      //!< rs-peak-live (error)
    double max_evk_working_set_bytes = 0; //!< rs-evk-working-set (error)
    /** rs-critical-path (warning): flag graphs whose parallelism
     *  (total work / critical path) falls below this — a serving lane
     *  gains nothing from intra-job lanes on such a job. */
    double min_parallelism = 0;
};

/**
 * The RS- rule family: turn resource findings into the same
 * Diagnostic currency the verifier emits. Deliberately NOT part of
 * analyze() — resource rules need an instance and a budget policy,
 * and the builtin graphs must keep linting clean with no options.
 *
 *   rs-peak-live        error    peak live bytes above the budget
 *   rs-evk-working-set  error    one node needs more resident evk
 *                                bytes than the budget
 *   rs-critical-path    warning  parallelism below the floor (the
 *                                graph is a chain; lanes cannot help)
 */
std::vector<Diagnostic> check_resources(const ResourceSummary& summary,
                                        const ResourceLimits& limits);

/** Human-readable cost report (bts_lint --cost). */
std::string render_resource_text(const std::string& graph_name,
                                 const ResourceSummary& s);

/** JSON object with the same content (bts_lint --cost --format=json). */
std::string render_resource_json(const std::string& graph_name,
                                 const ResourceSummary& s);

/** Per-node schedule table: cost, evk bytes, live set after each node
 *  (bts_lint --schedule). */
std::string render_schedule_text(const Graph& g,
                                 const ResourceSummary& s);

/** Graphviz DOT annotated with per-node cost and liveness (the --cost
 *  counterpart of verifier.h's to_annotated_dot). */
std::string to_resource_dot(const Graph& g, const ResourceSummary& s);

} // namespace bts::runtime::analysis
