/**
 * @file
 * Structured diagnostics for the runtime IR: the shared currency of
 * the graph builder's validation errors (BTS_NODE_CHECK), the static
 * verifier (runtime/analysis/verifier.h), the pass pipeline's
 * inter-pass checks and the `bts_lint` tool. One Diagnostic names the
 * violated rule, the severity, the offending node (index + op kind)
 * and value, a human message and a fix hint — so "node 231 (HMult):
 * ..." reads the same whether it was raised while building the graph
 * or while analyzing it.
 */
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace bts::runtime::analysis {

enum class Severity {
    kNote,    //!< informational annotation
    kWarning, //!< suspicious but executable
    kError,   //!< the graph must not be executed
};

/** "note" / "warning" / "error". */
const char* severity_name(Severity s);

/** One finding. `node`/`value` are -1 when the finding is graph-level
 *  (e.g. a missing key); `op` is empty when no node is implicated. */
struct Diagnostic
{
    std::string rule; //!< kebab-case rule id, e.g. "meta-level"
    Severity severity = Severity::kError;
    int node = -1;      //!< offending node index
    std::string op;     //!< op kind name at that node
    int value = -1;     //!< offending value id
    std::string message;
    std::string hint;   //!< how to fix it (may be empty)
};

/** One-line text form:
 *  `error: [meta-level] node 12 (HMult) v34: <message> (fix: <hint>)`.
 *  The `node N (<op>)` clause matches the builder's historical error
 *  format, so tests and logs grep one shape. */
std::string to_text(const Diagnostic& d);

/** Multi-line text report, one to_text line per diagnostic, prefixed
 *  with the graph name and a severity tally. */
std::string render_text(const std::string& graph_name,
                        const std::vector<Diagnostic>& diags);

/** JSON object `{"graph": ..., "errors": N, "warnings": N,
 *  "diagnostics": [{...}, ...]}` — the `bts_lint --format=json`
 *  payload CI greps without executing ciphertext math. */
std::string render_json(const std::string& graph_name,
                        const std::vector<Diagnostic>& diags);

bool has_errors(const std::vector<Diagnostic>& diags);
std::size_t count_severity(const std::vector<Diagnostic>& diags,
                           Severity s);

/**
 * The exception every rejected graph surfaces: builder-time validation
 * (one diagnostic) and analysis-time rejection
 * (GraphServer::register_graph, verify_or_throw; every error-level
 * finding) both throw this. Derives std::invalid_argument so existing
 * catch sites keep working; what() is the rendered text report and
 * diagnostics() is the structured form a serving front-end can return
 * to the client.
 */
class VerifyError : public std::invalid_argument
{
  public:
    VerifyError(std::string graph_name, std::vector<Diagnostic> diags);

    const std::string& graph_name() const { return graph_name_; }
    const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  private:
    std::string graph_name_;
    std::vector<Diagnostic> diags_;
};

/** Throw a single-diagnostic VerifyError (the builder's error path). */
[[noreturn]] void throw_diagnostic(std::string graph_name, Diagnostic d);

} // namespace bts::runtime::analysis
