#include "runtime/analysis/verifier.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace bts::runtime::analysis {

namespace {

/** Relative scale agreement for re-derived vs stored metadata. The
 *  verifier recomputes the exact expressions the builder evaluated,
 *  so honest graphs agree to the last bit; the loose bound only
 *  exists to keep the check robust under -ffast-math-style reassoc. */
bool
scales_equal(double a, double b)
{
    return a > 0.0 && b > 0.0 && std::abs(a / b - 1.0) < 1e-9;
}

/** The builder's add/sub operand agreement bound (graph.cpp). */
bool
scales_compatible(double a, double b)
{
    return a > 0.0 && b > 0.0 && std::abs(a / b - 1.0) < 1e-3;
}

bool
is_binary(OpKind k)
{
    switch (k) {
    case OpKind::kHMult:
    case OpKind::kHAdd:
    case OpKind::kHSub:
    case OpKind::kPMult:
    case OpKind::kPAdd:
    case OpKind::kHMultRescale:
    case OpKind::kPMultRescale:
        return true;
    default: return false;
    }
}

/** Does operand slot @p slot of kind @p k take a plaintext? */
bool
slot_is_plain(OpKind k, std::size_t slot)
{
    return slot == 1 && (k == OpKind::kPMult || k == OpKind::kPAdd ||
                         k == OpKind::kPMultRescale);
}

class Verifier
{
  public:
    Verifier(const Graph& g, const AnalysisOptions& opts)
        : g_(g), opts_(opts), scale_bits_(std::log2(g.traits().delta))
    {
        result_.values.resize(g.num_values());
    }

    Analysis
    run()
    {
        if (opts_.structure && !check_structure()) {
            // Structural corruption: every later analysis walks the
            // value/node cross-links, so stop before they misindex.
            return std::move(result_);
        }
        if (opts_.structure) check_metadata();
        if (opts_.noise) check_noise_and_levels();
        if (opts_.lazy) check_lazy_contract();
        if (opts_.keys) check_keys(*opts_.keys);
        if (opts_.lints) check_lints();
        return std::move(result_);
    }

  private:
    void
    emit(std::string rule, Severity sev, int node, int value,
         std::string message, std::string hint = {})
    {
        Diagnostic d;
        d.rule = std::move(rule);
        d.severity = sev;
        d.node = node;
        if (node >= 0 &&
            node < static_cast<int>(g_.num_nodes())) {
            d.op = op_name(g_.node(static_cast<std::size_t>(node)).kind);
        }
        d.value = value;
        d.message = std::move(message);
        d.hint = std::move(hint);
        result_.diags.push_back(std::move(d));
    }

    bool
    value_ok(int id) const
    {
        return id >= 0 && id < static_cast<int>(g_.num_values());
    }

    // ---------------------------------------------------------------
    // Structure: every cross-link between the node list, the value
    // table and the output list holds. This is the well-formedness
    // contract the pass pipeline must preserve between passes; the two
    // PR 7 ship bugs (dangling ValueInfo reference, double-marked
    // outputs) were violations of exactly these rules.
    // ---------------------------------------------------------------
    bool
    check_structure()
    {
        const std::size_t before = result_.diags.size();
        const int num_nodes = static_cast<int>(g_.num_nodes());

        for (int i = 0; i < num_nodes; ++i) {
            const Node& n = g_.node(static_cast<std::size_t>(i));
            check_node_arity(i, n);
            check_node_operands(i, n);
            check_node_outputs(i, n);
        }

        // Value-side back-links.
        for (int id = 0; id < static_cast<int>(g_.num_values()); ++id) {
            const ValueInfo& info = g_.value(id);
            if (info.is_input) {
                if (info.producer != -1) {
                    emit("structure-producer", Severity::kError, -1, id,
                         "input value claims producer node " +
                             std::to_string(info.producer));
                }
                continue;
            }
            if (info.producer < 0 || info.producer >= num_nodes) {
                emit("structure-producer", Severity::kError, -1, id,
                     "non-input value has producer " +
                         std::to_string(info.producer) +
                         ", node count is " + std::to_string(num_nodes));
                continue;
            }
            const Node& p =
                g_.node(static_cast<std::size_t>(info.producer));
            if (std::find(p.outputs.begin(), p.outputs.end(), id) ==
                p.outputs.end()) {
                emit("structure-producer", Severity::kError,
                     info.producer, id,
                     "value's producer node does not list it as an "
                     "output");
            }
        }

        // Output list: in range, ciphertext, no duplicates.
        std::vector<char> seen(g_.num_values(), 0);
        for (const int id : g_.outputs()) {
            if (!value_ok(id)) {
                emit("structure-producer", Severity::kError, -1, id,
                     "marked output id out of range");
                continue;
            }
            if (g_.value(id).is_plain) {
                emit("structure-producer", Severity::kError, -1, id,
                     "marked output is a plaintext");
            }
            if (seen[id]) {
                emit("structure-producer", Severity::kError, -1, id,
                     "value marked as an output twice");
            }
            seen[id] = 1;
        }

        if (result_.diags.size() != before) return false;
        check_use_counts();
        return result_.diags.size() == before;
    }

    void
    check_node_arity(int i, const Node& n)
    {
        const std::size_t want = is_binary(n.kind) ? 2 : 1;
        if (n.inputs.size() != want) {
            emit("structure-arity", Severity::kError, i, -1,
                 std::string(op_name(n.kind)) + " has " +
                     std::to_string(n.inputs.size()) +
                     " operand(s), expected " + std::to_string(want));
        }
        if (n.kind == OpKind::kHRot && n.rot_amount == 0) {
            emit("structure-arity", Severity::kError, i, -1,
                 "rotation amount is zero");
        }
        if (n.kind == OpKind::kHRotHoisted) {
            if (n.amounts.empty()) {
                emit("structure-arity", Severity::kError, i, -1,
                     "hoisted rotation group has no amounts");
            }
            for (const int r : n.amounts) {
                if (r == 0) {
                    emit("structure-arity", Severity::kError, i, -1,
                         "hoisted rotation amount is zero");
                }
            }
        }
    }

    void
    check_node_operands(int i, const Node& n)
    {
        for (std::size_t s = 0; s < n.inputs.size(); ++s) {
            const int in = n.inputs[s];
            if (!value_ok(in)) {
                emit("structure-operand", Severity::kError, i, in,
                     "operand id out of range");
                continue;
            }
            const ValueInfo& info = g_.value(in);
            if (!info.is_input && info.producer >= i) {
                emit("structure-operand", Severity::kError, i, in,
                     "operand is defined by node " +
                         std::to_string(info.producer) +
                         ", at or after its use");
            }
            if (info.is_plain != slot_is_plain(n.kind, s)) {
                emit("structure-arity", Severity::kError, i, in,
                     std::string("operand ") + std::to_string(s) +
                         " is " + (info.is_plain ? "plain" : "cipher") +
                         ", " + op_name(n.kind) + " expects " +
                         (slot_is_plain(n.kind, s) ? "plain"
                                                   : "cipher"));
            }
        }
    }

    void
    check_node_outputs(int i, const Node& n)
    {
        if (n.outputs.empty()) {
            emit("structure-producer", Severity::kError, i, -1,
                 "node defines no values");
            return;
        }
        if (n.output != n.outputs[0]) {
            emit("structure-producer", Severity::kError, i, n.output,
                 "node.output disagrees with node.outputs[0]");
        }
        const std::size_t want =
            n.kind == OpKind::kHRotHoisted ? n.amounts.size() : 1;
        if (n.outputs.size() != want) {
            emit("structure-producer", Severity::kError, i, -1,
                 "node defines " + std::to_string(n.outputs.size()) +
                     " values, expected " + std::to_string(want));
        }
        for (const int out : n.outputs) {
            if (!value_ok(out)) {
                emit("structure-producer", Severity::kError, i, out,
                     "output value id out of range");
                continue;
            }
            const ValueInfo& info = g_.value(out);
            if (info.is_input || info.is_plain) {
                emit("structure-producer", Severity::kError, i, out,
                     "node output is marked as an input/plaintext");
            }
            if (info.producer != i) {
                emit("structure-producer", Severity::kError, i, out,
                     "output's stored producer is " +
                         std::to_string(info.producer));
            }
        }
    }

    void
    check_use_counts()
    {
        std::vector<int> uses(g_.num_values(), 0);
        for (std::size_t i = 0; i < g_.num_nodes(); ++i) {
            for (const int in : g_.node(i).inputs) uses[in] += 1;
        }
        for (const int id : g_.outputs()) uses[id] += 1;
        for (int id = 0; id < static_cast<int>(g_.num_values()); ++id) {
            result_.values[id].uses = uses[id];
            if (g_.value(id).num_uses != uses[id]) {
                emit("structure-use-count", Severity::kError,
                     g_.value(id).producer, id,
                     "stored num_uses " +
                         std::to_string(g_.value(id).num_uses) +
                         " != derived " + std::to_string(uses[id]),
                     "the executor frees values after num_uses "
                     "consumers; a wrong count is a use-after-free or "
                     "a leak");
            }
        }
    }

    // ---------------------------------------------------------------
    // Metadata re-inference: derive every defined value's level and
    // scale from its operands' STORED metadata with the exact builder
    // rules, and flag disagreement. Local derivation (stored operands,
    // not derived ones) pins the first corrupted link in a chain
    // instead of cascading one bad value into errors on everything
    // downstream.
    // ---------------------------------------------------------------
    void
    check_metadata()
    {
        const GraphTraits& t = g_.traits();
        for (const int id : g_.input_ids()) {
            const ValueInfo& info = g_.value(id);
            if (info.level < 0 || info.level > t.max_level) {
                emit("meta-level", Severity::kError, -1, id,
                     "input level " + std::to_string(info.level) +
                         " outside [0, " +
                         std::to_string(t.max_level) + "]");
            }
            if (info.scale <= 0.0) {
                emit("meta-scale", Severity::kError, -1, id,
                     "input scale is not positive");
            }
            result_.values[id].level = info.level;
            result_.values[id].scale = info.scale;
        }
        for (std::size_t i = 0; i < g_.num_nodes(); ++i) {
            check_node_metadata(static_cast<int>(i), g_.node(i));
        }
    }

    void
    check_node_metadata(int i, const Node& n)
    {
        const GraphTraits& t = g_.traits();
        const auto in = [&](std::size_t s) -> const ValueInfo& {
            return g_.value(n.inputs[s]);
        };
        int level = 0;
        double scale = 1.0;
        switch (n.kind) {
        case OpKind::kHMult:
            level = std::min(in(0).level, in(1).level);
            scale = in(0).scale * in(1).scale;
            break;
        case OpKind::kHAdd:
        case OpKind::kHSub:
            level = std::min(in(0).level, in(1).level);
            scale = in(0).scale;
            if (!scales_compatible(in(0).scale, in(1).scale)) {
                emit("scale-mismatch", Severity::kError, i, n.inputs[1],
                     "add/sub operands at scales " +
                         std::to_string(in(0).scale) + " vs " +
                         std::to_string(in(1).scale),
                     "rescale the larger operand first");
            }
            break;
        case OpKind::kPMult:
            level = in(0).level;
            scale = in(0).scale * in(1).scale;
            check_plain_covers(i, n);
            break;
        case OpKind::kPAdd:
            level = in(0).level;
            scale = in(0).scale;
            check_plain_covers(i, n);
            if (!scales_compatible(in(0).scale, in(1).scale)) {
                emit("scale-mismatch", Severity::kError, i, n.inputs[1],
                     "plaintext addend scale " +
                         std::to_string(in(1).scale) +
                         " != ciphertext scale " +
                         std::to_string(in(0).scale),
                     "encode the plaintext at the ciphertext's scale");
            }
            break;
        case OpKind::kHRot:
        case OpKind::kConj:
        case OpKind::kHRotHoisted:
            level = in(0).level;
            scale = in(0).scale;
            break;
        case OpKind::kHRescale:
            if (in(0).level < 1) {
                emit("meta-level", Severity::kError, i, n.inputs[0],
                     "rescale of a level-0 operand",
                     "bootstrap before this point");
                return;
            }
            level = in(0).level - 1;
            scale = in(0).scale / t.delta;
            break;
        case OpKind::kCMult:
            level = in(0).level;
            scale = in(0).scale * t.delta;
            break;
        case OpKind::kCAdd:
            level = in(0).level;
            scale = in(0).scale;
            break;
        case OpKind::kModRaise:
            if (in(0).level != 0) {
                emit("meta-level", Severity::kError, i, n.inputs[0],
                     "ModRaise of a non-exhausted (level " +
                         std::to_string(in(0).level) + ") value");
            }
            level = t.max_level;
            scale = in(0).scale;
            break;
        case OpKind::kBootstrap:
            level = t.bootstrap_out_level;
            scale = t.delta;
            break;
        case OpKind::kHMultRescale:
            if (std::min(in(0).level, in(1).level) < 1) {
                emit("meta-level", Severity::kError, i, n.inputs[0],
                     "fused mult+rescale at level 0");
                return;
            }
            level = std::min(in(0).level, in(1).level) - 1;
            scale = in(0).scale * in(1).scale / t.delta;
            break;
        case OpKind::kPMultRescale:
            check_plain_covers(i, n);
            if (in(0).level < 1) {
                emit("meta-level", Severity::kError, i, n.inputs[0],
                     "fused mult+rescale at level 0");
                return;
            }
            level = in(0).level - 1;
            scale = in(0).scale * in(1).scale / t.delta;
            break;
        case OpKind::kCMultRescale:
            if (in(0).level < 1) {
                emit("meta-level", Severity::kError, i, n.inputs[0],
                     "fused mult+rescale at level 0");
                return;
            }
            level = in(0).level - 1;
            scale = in(0).scale;
            break;
        case OpKind::kCMultAdd:
            level = in(0).level;
            scale = in(0).scale * t.delta;
            break;
        }
        for (const int out : n.outputs) {
            const ValueInfo& stored = g_.value(out);
            result_.values[out].level = level;
            result_.values[out].scale = scale;
            if (stored.level != level) {
                emit("meta-level", Severity::kError, i, out,
                     "stored level " + std::to_string(stored.level) +
                         ", re-derived " + std::to_string(level),
                     "a pass corrupted the metadata; rebuild the graph "
                     "through the builder API");
            }
            if (!scales_equal(stored.scale, scale)) {
                emit("meta-scale", Severity::kError, i, out,
                     "stored scale " + std::to_string(stored.scale) +
                         ", re-derived " + std::to_string(scale),
                     "a pass corrupted the metadata; rebuild the graph "
                     "through the builder API");
            }
        }
    }

    void
    check_plain_covers(int i, const Node& n)
    {
        const ValueInfo& ct = g_.value(n.inputs[0]);
        const ValueInfo& pt = g_.value(n.inputs[1]);
        if (pt.level < ct.level) {
            emit("meta-level", Severity::kError, i, n.inputs[1],
                 "plaintext level " + std::to_string(pt.level) +
                     " below the ciphertext's " +
                     std::to_string(ct.level),
                 "encode the plaintext at (or above) the ciphertext "
                 "level");
        }
    }

    // ---------------------------------------------------------------
    // Noise-budget estimator + level-budget / bootstrap-placement
    // prediction. Worst-case abstract interpretation: each ciphertext
    // value carries noise_bits = log2 |error|, error magnitudes sum in
    // the linear domain (log_sum), multiplies take the dominant cross
    // term of e = a*eb + b*ea. The transfer functions are documented
    // constant-by-constant in docs/ANALYSIS.md. Uses stored metadata
    // (already validated by check_metadata) so a level corruption
    // doesn't double-report.
    // ---------------------------------------------------------------

    /** Compose two error magnitudes given in bits. Independent-error
     *  (RMS) composition — sqrt(ea^2 + eb^2) in the linear domain —
     *  the standard CKKS heuristic: fully-correlated linear summation
     *  overestimates deep inner-product trees by their full depth and
     *  would flag the paper's own Table 5/6 schedules as broken. A
     *  balanced add tree grows 0.5 bits per level under RMS. */
    static double
    log_sum(double a, double b)
    {
        if (a < b) std::swap(a, b);
        return a + 0.5 * std::log2(1.0 + std::exp2(2.0 * (b - a)));
    }

    void
    check_noise_and_levels()
    {
        const NoiseModel& m = opts_.noise_model;
        const double S = scale_bits_;
        std::vector<double> noise(g_.num_values(), 0.0);

        for (const int id : g_.input_ids()) {
            if (!g_.value(id).is_plain) noise[id] = m.fresh * S;
            note_value(id, noise[id]);
        }
        for (std::size_t i = 0; i < g_.num_nodes(); ++i) {
            const Node& n = g_.node(i);
            const auto nb = [&](std::size_t s) {
                return noise[n.inputs[s]];
            };
            const auto sbits = [&](std::size_t s) {
                return std::log2(g_.value(n.inputs[s]).scale);
            };
            double out = 0.0;
            switch (n.kind) {
            case OpKind::kHAdd:
            case OpKind::kHSub:
                out = log_sum(nb(0), nb(1));
                break;
            case OpKind::kPAdd: // the plaintext operand is noiseless
            case OpKind::kCAdd:
                out = nb(0);
                break;
            case OpKind::kHMult:
                out = log_sum(std::max(nb(0) + sbits(1),
                                       nb(1) + sbits(0)),
                              m.key_switch * S);
                break;
            case OpKind::kPMult:
                out = nb(0) + sbits(1);
                break;
            case OpKind::kCMult:
            case OpKind::kCMultAdd:
                out = nb(0) + S; // constants are encoded at delta
                break;
            case OpKind::kHRot:
            case OpKind::kConj:
            case OpKind::kHRotHoisted:
                out = log_sum(nb(0), m.key_switch * S);
                break;
            case OpKind::kHRescale:
                out = std::max(nb(0) - S, m.rescale_floor * S);
                break;
            case OpKind::kModRaise: out = nb(0); break;
            case OpKind::kBootstrap: out = m.bootstrap_out * S; break;
            case OpKind::kHMultRescale:
                out = std::max(log_sum(std::max(nb(0) + sbits(1),
                                                nb(1) + sbits(0)),
                                       m.key_switch * S) -
                                   S,
                               m.rescale_floor * S);
                break;
            case OpKind::kPMultRescale:
                out = std::max(nb(0) + sbits(1) - S,
                               m.rescale_floor * S);
                break;
            case OpKind::kCMultRescale:
                out = std::max(nb(0), m.rescale_floor * S);
                break;
            }
            for (const int o : n.outputs) {
                noise[o] = out;
                note_value(o, out);
                check_budgets(static_cast<int>(i), o, out);
            }
            if (n.kind == OpKind::kBootstrap) {
                check_bootstrap_placement(static_cast<int>(i), n);
            }
        }
        // Input values face the same budget rules (a declared input
        // whose scale cannot fit its level is unbindable).
        for (const int id : g_.input_ids()) {
            if (!g_.value(id).is_plain) check_budgets(-1, id, noise[id]);
        }
    }

    void
    note_value(int id, double noise_bits)
    {
        result_.values[id].noise_bits = noise_bits;
        result_.values[id].budget_bits =
            std::log2(g_.value(id).scale) - noise_bits;
    }

    void
    check_budgets(int node, int id, double noise_bits)
    {
        const NoiseModel& m = opts_.noise_model;
        const double S = scale_bits_;
        const ValueInfo& info = g_.value(id);
        const double sbits = std::log2(info.scale);

        // Level budget: a value at k x the canonical scale owes k - 1
        // rescales before it can be consumed at canonical scale; with
        // fewer levels left, no bootstrap can ever be reached.
        const int drops = std::max(
            0, static_cast<int>(std::lround(sbits / S)) - 1);
        if (drops > info.level) {
            emit("level-budget", Severity::kError, node, id,
                 "value at scale delta^" + std::to_string(drops + 1) +
                     " owes " + std::to_string(drops) +
                     " rescale(s) but only " +
                     std::to_string(info.level) + " level(s) remain",
                 "bootstrap earlier or rescale between the "
                 "multiplications");
            return;
        }
        // Modulus capacity: scale must stay below q0 * delta^level.
        if (sbits > (m.q0_ratio + info.level) * S) {
            emit("level-budget", Severity::kError, node, id,
                 "scale (2^" + std::to_string(sbits) +
                     ") exceeds the level-" +
                     std::to_string(info.level) + " modulus capacity",
                 "rescale or bootstrap before this point");
            return;
        }
        const double budget = sbits - noise_bits;
        if (budget <= 0.0) {
            emit("noise-budget", Severity::kError, node, id,
                 "worst-case noise (2^" + std::to_string(noise_bits) +
                     ") consumes the whole precision budget before "
                     "this value's bootstrap",
                 "bootstrap earlier or shorten the add chain");
        } else if (budget < m.warn_headroom * S) {
            emit("noise-budget", Severity::kWarning, node, id,
                 "only " + std::to_string(budget) +
                     " precision bits of headroom left "
                     "(worst-case noise model)",
                 "consider bootstrapping earlier");
        }
    }

    void
    check_bootstrap_placement(int i, const Node& n)
    {
        const int boot_out = g_.traits().bootstrap_out_level;
        const int in_level = g_.value(n.inputs[0]).level;
        if (boot_out > 0 &&
            static_cast<double>(in_level) > 0.75 * boot_out) {
            emit("bootstrap-placement", Severity::kWarning, i,
                 n.inputs[0],
                 "bootstrap discards " + std::to_string(in_level) +
                     " remaining level(s) of a " +
                     std::to_string(boot_out) + "-level budget",
                 "spend the remaining levels first, or drop the "
                 "redundant refresh");
        }
    }

    // ---------------------------------------------------------------
    // Lazy-residue contract: a lazy node must be an HAdd/HSub whose
    // result never leaves the runtime (not a marked output) and whose
    // every consumer tolerates [0, 2q) residues (docs/PASSES.md).
    // ---------------------------------------------------------------
    void
    check_lazy_contract()
    {
        const auto users = g_.value_users();
        std::vector<char> is_out(g_.num_values(), 0);
        for (const int id : g_.outputs()) is_out[id] = 1;
        for (std::size_t i = 0; i < g_.num_nodes(); ++i) {
            const Node& n = g_.node(i);
            if (!n.lazy) continue;
            const int node = static_cast<int>(i);
            if (n.kind != OpKind::kHAdd && n.kind != OpKind::kHSub) {
                emit("lazy-contract", Severity::kError, node, n.output,
                     "lazy mark on a non-add/sub node");
                continue;
            }
            if (is_out[n.output]) {
                emit("lazy-contract", Severity::kError, node, n.output,
                     "lazy result is a marked graph output",
                     "outputs leave the runtime's control and must be "
                     "canonical");
            }
            for (const int u : users[n.output]) {
                const OpKind ck =
                    g_.node(static_cast<std::size_t>(u)).kind;
                if (!op_tolerates_lazy_input(ck)) {
                    emit("lazy-contract", Severity::kError, node,
                         n.output,
                         std::string("consumer node ") +
                             std::to_string(u) + " (" + op_name(ck) +
                             ") requires canonical residues",
                         "clear the lazy mark or reorder the "
                         "consumers");
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Required evaluation keys vs the registered key set.
    // ---------------------------------------------------------------
    void
    check_keys(const KeySet& keys)
    {
        int first_mult = -1, first_conj = -1, first_boot = -1;
        std::set<int> missing_rots;
        int first_missing_rot = -1;
        for (std::size_t i = 0; i < g_.num_nodes(); ++i) {
            const Node& n = g_.node(i);
            const int node = static_cast<int>(i);
            switch (n.kind) {
            case OpKind::kHMult:
            case OpKind::kHMultRescale:
                if (first_mult < 0) first_mult = node;
                break;
            case OpKind::kConj:
                if (first_conj < 0) first_conj = node;
                break;
            case OpKind::kBootstrap:
                if (first_boot < 0) first_boot = node;
                break;
            case OpKind::kHRot:
                if (!keys.rotations.count(n.rot_amount)) {
                    missing_rots.insert(n.rot_amount);
                    if (first_missing_rot < 0) first_missing_rot = node;
                }
                break;
            case OpKind::kHRotHoisted:
                for (const int r : n.amounts) {
                    if (!keys.rotations.count(r)) {
                        missing_rots.insert(r);
                        if (first_missing_rot < 0) {
                            first_missing_rot = node;
                        }
                    }
                }
                break;
            default: break;
            }
        }
        if (first_mult >= 0 && !keys.mult) {
            emit("missing-mult-key", Severity::kError, first_mult, -1,
                 "graph multiplies ciphertexts but the key set has no "
                 "relinearization key",
                 "register the multiplication key with the server");
        }
        if (first_conj >= 0 && !keys.conj) {
            emit("missing-conj-key", Severity::kError, first_conj, -1,
                 "graph conjugates but the key set has no conjugation "
                 "key",
                 "generate the conjugation key");
        }
        if (first_boot >= 0 && !keys.bootstrap) {
            emit("missing-bootstrapper", Severity::kError, first_boot,
                 -1, "graph bootstraps but no bootstrapper is bound",
                 "construct the server with a Bootstrapper");
        }
        if (!missing_rots.empty()) {
            std::ostringstream os;
            os << "required rotation key(s) missing:";
            for (const int r : missing_rots) os << " " << r;
            emit("missing-rotation-key", Severity::kError,
                 first_missing_rot, -1, os.str(),
                 "generate rotation keys for every amount in "
                 "Graph::required_rotations()");
        }
    }

    // ---------------------------------------------------------------
    // Lint rules.
    // ---------------------------------------------------------------
    void
    check_lints()
    {
        if (g_.outputs().empty()) {
            emit("no-outputs", Severity::kWarning, -1, -1,
                 "graph marks no outputs; execution returns nothing",
                 "mark_output the results that matter");
        }
        for (const int id : g_.input_ids()) {
            if (result_.values[id].uses == 0) {
                emit("unused-input", Severity::kWarning, -1, id,
                     "declared input is never consumed",
                     "drop the declaration (callers must still bind "
                     "unused inputs)");
            }
        }
        // dead-node: reachability to marked outputs, the DVE rule.
        std::vector<char> live(g_.num_values(), 0);
        for (const int id : g_.outputs()) live[id] = 1;
        for (std::size_t i = g_.num_nodes(); i-- > 0;) {
            const Node& n = g_.node(i);
            bool l = false;
            for (const int o : n.outputs) l = l || live[o];
            if (l) {
                for (const int in : n.inputs) live[in] = 1;
            } else {
                emit("dead-node", Severity::kWarning,
                     static_cast<int>(i), n.output,
                     "no marked output depends on this node",
                     "run dead-value elimination, or mark the result");
            }
        }
        // rescale-below-waterline: rescaling a value that is not at
        // double scale drops the result below the canonical scale.
        const double waterline =
            g_.traits().delta * g_.traits().delta * 0.5;
        for (std::size_t i = 0; i < g_.num_nodes(); ++i) {
            const Node& n = g_.node(i);
            if (n.kind != OpKind::kHRescale) continue;
            if (g_.value(n.inputs[0]).scale < waterline) {
                emit("rescale-below-waterline", Severity::kWarning,
                     static_cast<int>(i), n.inputs[0],
                     "rescale of a canonical-scale value burns a level "
                     "and drops the scale below delta",
                     "remove the rescale (the waterline pass places "
                     "the needed ones)");
            }
        }
    }

    const Graph& g_;
    const AnalysisOptions& opts_;
    const double scale_bits_;
    Analysis result_;
};

} // namespace

Analysis
analyze(const Graph& g, const AnalysisOptions& opts)
{
    return Verifier(g, opts).run();
}

std::vector<Diagnostic>
verify(const Graph& g, const AnalysisOptions& opts)
{
    return analyze(g, opts).diags;
}

void
verify_or_throw(const Graph& g, const AnalysisOptions& opts)
{
    Analysis a = analyze(g, opts);
    if (has_errors(a.diags)) {
        throw VerifyError(g.name(), std::move(a.diags));
    }
}

std::string
to_annotated_dot(const Graph& g, const Analysis& a)
{
    std::ostringstream os;
    os << "digraph \"" << g.name() << "\" {\n"
       << "  rankdir=TB;\n  node [fontsize=10];\n";

    // Worst diagnostic severity per node, for the tint.
    std::vector<int> worst(g.num_nodes(), -1);
    for (const Diagnostic& d : a.diags) {
        if (d.node >= 0 && d.node < static_cast<int>(g.num_nodes())) {
            worst[d.node] =
                std::max(worst[d.node], static_cast<int>(d.severity));
        }
    }
    const auto tint = [&](int node) -> const char* {
        if (node < 0 || worst[node] < 0) return nullptr;
        return worst[node] == static_cast<int>(Severity::kError)
                   ? "lightcoral"
                   : "khaki";
    };
    const auto facts_label = [&](std::ostringstream& label, int id) {
        if (id < 0 || id >= static_cast<int>(a.values.size())) return;
        const ValueFacts& f = a.values[id];
        label << "\\nL" << f.level << " noise=" << std::lround(f.noise_bits)
              << "b budget=" << std::lround(f.budget_bits) << "b";
    };

    std::vector<char> is_out(g.num_values(), 0);
    for (const int id : g.outputs()) is_out[id] = 1;

    for (const int id : g.input_ids()) {
        const ValueInfo& info = g.value(id);
        std::ostringstream label;
        label << (info.is_plain ? "pt" : "ct") << " in v" << id;
        if (!info.is_plain) facts_label(label, id);
        os << "  v" << id << " [shape=box"
           << (info.is_plain ? ", style=dashed" : "") << ", label=\""
           << label.str() << "\""
           << (is_out[id] ? ", peripheries=2" : "") << "];\n";
    }
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        std::ostringstream label;
        label << "#" << i << " " << op_name(n.kind);
        if (n.kind == OpKind::kHRot) label << " r=" << n.rot_amount;
        if (n.lazy) label << " [lazy]";
        facts_label(label, n.output);
        bool marks = false;
        for (const int o : n.outputs) marks = marks || is_out[o];
        os << "  n" << i << " [label=\"" << label.str() << "\"";
        if (const char* color = tint(static_cast<int>(i))) {
            os << ", style=filled, fillcolor=" << color;
        }
        os << (marks ? ", peripheries=2" : "") << "];\n";
    }
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        for (const int in : g.node(i).inputs) {
            if (in < 0 || in >= static_cast<int>(g.num_values())) {
                continue;
            }
            const ValueInfo& info = g.value(in);
            if (info.is_input) {
                os << "  v" << in;
            } else {
                os << "  n" << info.producer;
            }
            os << " -> n" << i << " [label=\"v" << in << "\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace bts::runtime::analysis
