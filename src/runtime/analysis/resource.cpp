#include "runtime/analysis/resource.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>

#include "common/check.h"
#include "common/types.h"
#include "runtime/lowering.h"
#include "workloads/workloads.h"

namespace bts::runtime::analysis {

namespace {

/** One expanded primitive: the (kind, level) pair the cost model
 *  prices. Mirrors lower_to_trace's expansion rules EXACTLY — the
 *  op-count pin against the lowered trace depends on it. */
struct PrimOp
{
    sim::HeOpKind kind;
    int level;
};

/** The bootstrap composite's primitive plan for one instance,
 *  computed once per analysis by running the hand generator into a
 *  scratch TraceBuilder — the same call lower_to_trace makes, so the
 *  per-(kind, level) profile is shared by construction, not
 *  re-derived. */
struct BootProfile
{
    std::vector<PrimOp> ops;
};

BootProfile
bootstrap_profile(const hw::CkksInstance& inst)
{
    sim::TraceBuilder b("bootstrap-profile");
    const int in = b.fresh_id();
    workloads::append_bootstrap(b, inst, in);
    BootProfile p;
    p.ops.reserve(b.trace().ops.size());
    for (const sim::HeOp& op : b.trace().ops) {
        p.ops.push_back({op.kind, op.level});
    }
    return p;
}

/** Expand node @p n into the primitive ops lower_to_trace would emit
 *  for it, appending to @p out. */
void
expand_node(const Graph& g, const Node& n, const BootProfile* boot,
            std::vector<PrimOp>& out)
{
    switch (n.kind) {
    case OpKind::kBootstrap:
        BTS_ASSERT(boot != nullptr, "bootstrap profile not computed");
        out.insert(out.end(), boot->ops.begin(), boot->ops.end());
        return;
    case OpKind::kHRotHoisted:
        for (const int o : n.outputs) {
            out.push_back({sim::HeOpKind::kHRot, g.value(o).level});
        }
        return;
    case OpKind::kHMultRescale:
    case OpKind::kPMultRescale:
    case OpKind::kCMultRescale:
    case OpKind::kCMultAdd: {
        const sim::HeOpKind first =
            n.kind == OpKind::kHMultRescale ? sim::HeOpKind::kHMult
            : n.kind == OpKind::kPMultRescale ? sim::HeOpKind::kPMult
                                              : sim::HeOpKind::kCMult;
        const sim::HeOpKind second = n.kind == OpKind::kCMultAdd
                                         ? sim::HeOpKind::kCAdd
                                         : sim::HeOpKind::kHRescale;
        const int mid_level = g.value(n.output).level +
                              (n.kind == OpKind::kCMultAdd ? 0 : 1);
        out.push_back({first, mid_level});
        out.push_back({second, mid_level});
        return;
    }
    case OpKind::kHRescale:
        // Executes at the input level: it still holds the
        // about-to-drop prime.
        out.push_back(
            {sim::HeOpKind::kHRescale, g.value(n.inputs[0]).level});
        return;
    case OpKind::kHMult:
    case OpKind::kHRot:
    case OpKind::kConj:
    case OpKind::kPMult:
    case OpKind::kPAdd:
    case OpKind::kHAdd:
    case OpKind::kHSub:
    case OpKind::kCMult:
    case OpKind::kCAdd:
    case OpKind::kModRaise:
        out.push_back({to_sim_kind(n.kind), g.value(n.output).level});
        return;
    }
    panic("unknown OpKind");
}

/**
 * Serial-schedule liveness walk, mirroring Executor::run_serial op for
 * op: bind ciphertext inputs (drop unused ones immediately, sample the
 * peak once after binding), then per node — materialize outputs,
 * sample the peak, release input uses, drop dead outputs. @p bytes_of
 * maps a value's level to its residency cost (bytes, or limb units for
 * the instance-free profile); @p per_node (optional) receives the
 * post-node live set.
 */
void
liveness_walk(const Graph& g, const std::function<double(int)>& bytes_of,
              std::size_t& peak_values, double& peak_bytes,
              std::vector<NodeResource>* per_node)
{
    std::vector<int> uses_left(g.num_values(), 0);
    for (std::size_t id = 0; id < g.num_values(); ++id) {
        const ValueInfo& info = g.value(static_cast<int>(id));
        uses_left[id] = info.is_plain ? 0 : info.num_uses;
    }

    std::size_t live = 0;
    double live_bytes = 0;
    const auto drop = [&](int id) {
        --live;
        live_bytes -= bytes_of(g.value(id).level);
    };

    for (const int id : g.input_ids()) {
        const ValueInfo& info = g.value(id);
        if (info.is_plain) continue; // borrowed, never resident
        ++live;
        live_bytes += bytes_of(info.level);
        if (uses_left[id] == 0) drop(id); // declared but unused
    }
    peak_values = live;
    peak_bytes = live_bytes;

    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        for (const int out : n.outputs) {
            ++live;
            live_bytes += bytes_of(g.value(out).level);
        }
        peak_values = std::max(peak_values, live);
        peak_bytes = std::max(peak_bytes, live_bytes);
        for (const int in : n.inputs) {
            if (uses_left[in] <= 0) continue; // plaintext slots stay 0
            if (--uses_left[in] == 0) drop(in);
        }
        for (const int out : n.outputs) {
            if (uses_left[out] == 0) drop(out); // dead result
        }
        if (per_node != nullptr) {
            (*per_node)[i].live_after = live;
            (*per_node)[i].live_bytes_after = live_bytes;
        }
    }
}

/** Count evk-bearing primitive ops of one node (grouped rotations
 *  count one per amount; bootstrap counts its expanded plan). */
std::size_t
node_evk_ops(const Node& n, std::size_t bootstrap_evk_ops)
{
    switch (n.kind) {
    case OpKind::kHMult:
    case OpKind::kHMultRescale:
    case OpKind::kHRot:
    case OpKind::kConj:
        return 1;
    case OpKind::kHRotHoisted:
        return n.outputs.size();
    case OpKind::kBootstrap:
        return bootstrap_evk_ops;
    default:
        return 0;
    }
}

/**
 * Maximum antichain of the node dependence DAG via Dilworth: width =
 * n - (maximum matching of the transitive-closure bipartite graph).
 * O(n^2) closure bitsets + Kuhn's matching — fine for the few-hundred
 * node graphs the serving path registers; larger graphs skip it
 * (width = 0, "not computed") rather than stall registration.
 */
std::size_t
dependence_width(const Graph& g)
{
    const std::size_t n = g.num_nodes();
    if (n == 0 || n > 512) return 0;
    const std::size_t words = (n + 63) / 64;
    // reach[i] = set of nodes j > i with a dependence path i -> j.
    std::vector<u64> reach(n * words, 0);
    const auto set_bit = [&](std::size_t i, std::size_t j) {
        reach[i * words + j / 64] |= u64{1} << (j % 64);
    };
    const auto get_bit = [&](std::size_t i, std::size_t j) {
        return (reach[i * words + j / 64] >> (j % 64)) & 1u;
    };
    // Walk backwards: node i reaches its direct consumers plus
    // everything they reach (consumers always have larger indices —
    // creation order is topological).
    for (std::size_t i = n; i-- > 0;) {
        for (const int in : g.node(i).inputs) {
            const int p = g.value(in).producer;
            if (p < 0) continue;
            const std::size_t pi = static_cast<std::size_t>(p);
            set_bit(pi, i);
            for (std::size_t w = 0; w < words; ++w) {
                reach[pi * words + w] |= reach[i * words + w];
            }
        }
    }
    // Kuhn's augmenting paths on the closure's bipartite graph.
    std::vector<int> match_right(n, -1);
    std::vector<char> visited(n, 0);
    const std::function<bool(std::size_t)> augment =
        [&](std::size_t u) -> bool {
        for (std::size_t v = u + 1; v < n; ++v) {
            if (!get_bit(u, v) || visited[v]) continue;
            visited[v] = 1;
            if (match_right[v] < 0 ||
                augment(static_cast<std::size_t>(match_right[v]))) {
                match_right[v] = static_cast<int>(u);
                return true;
            }
        }
        return false;
    };
    std::size_t matched = 0;
    for (std::size_t u = 0; u < n; ++u) {
        std::fill(visited.begin(), visited.end(), 0);
        if (augment(u)) ++matched;
    }
    return n - matched;
}

std::string
human_bytes(double bytes)
{
    std::ostringstream os;
    os.precision(3);
    if (bytes >= 1024.0 * 1024.0 * 1024.0) {
        os << bytes / (1024.0 * 1024.0 * 1024.0) << " GiB";
    } else if (bytes >= 1024.0 * 1024.0) {
        os << bytes / (1024.0 * 1024.0) << " MiB";
    } else if (bytes >= 1024.0) {
        os << bytes / 1024.0 << " KiB";
    } else {
        os << bytes << " B";
    }
    return os.str();
}

} // namespace

LivenessStats
analyze_liveness(const Graph& g)
{
    LivenessStats s;
    s.nodes = g.num_nodes();
    for (const Node& n : g.nodes()) {
        // Instance-free: a bootstrap's internal plan depends on the
        // instance, so count the composite node as one evk op here.
        s.evk_ops += node_evk_ops(n, 1);
    }
    double peak_limbs = 0;
    liveness_walk(
        g, [](int level) { return 2.0 * (level + 1); },
        s.peak_live_values, peak_limbs, nullptr);
    s.peak_live_limbs = static_cast<std::size_t>(std::lround(peak_limbs));
    return s;
}

ResourceSummary
analyze_resources(const Graph& g, const hw::CkksInstance& inst,
                  const sim::BtsConfig& hw)
{
    // Level-geometry compatibility — the same preconditions
    // lower_to_trace enforces: a cost estimate against the wrong
    // instance is worse than no estimate.
    for (std::size_t id = 0; id < g.num_values(); ++id) {
        const ValueInfo& info = g.value(static_cast<int>(id));
        BTS_CHECK(info.level <= inst.max_level,
                  g.name() << ": value level " << info.level
                           << " exceeds instance max_level "
                           << inst.max_level);
    }
    if (g.uses_bootstrap() || g.count_kind(OpKind::kModRaise) > 0) {
        BTS_CHECK(g.traits().max_level == inst.max_level,
                  g.name() << ": graph raises to level "
                           << g.traits().max_level << ", instance has L = "
                           << inst.max_level);
    }
    if (g.uses_bootstrap()) {
        BTS_CHECK(g.traits().bootstrap_out_level == inst.usable_levels(),
                  g.name() << ": graph bootstrap level "
                           << g.traits().bootstrap_out_level
                           << " != instance usable levels "
                           << inst.usable_levels());
    }

    ResourceSummary s;
    s.nodes.resize(g.num_nodes());

    BootProfile boot;
    std::size_t boot_evk_ops = 0;
    if (g.uses_bootstrap()) {
        boot = bootstrap_profile(inst);
        for (const PrimOp& op : boot.ops) {
            if (sim::needs_evk(op.kind)) ++boot_evk_ops;
        }
    }

    const sim::CostModel model(hw, inst);
    std::vector<PrimOp> prims;
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        prims.clear();
        expand_node(g, n, g.uses_bootstrap() ? &boot : nullptr, prims);
        if (n.kind == OpKind::kBootstrap) ++s.bootstrap_count;

        NodeResource& nr = s.nodes[i];
        double node_evk_resident = 0;
        for (const PrimOp& p : prims) {
            sim::HeOp op;
            op.kind = p.kind;
            op.level = p.level;
            const sim::OpCost c = model.op_cost(op);
            s.op_counts[static_cast<std::size_t>(p.kind)] += 1;
            nr.cost_s += c.compute_s;
            nr.evk_bytes += c.evk_bytes;
            s.ntt_s += c.ntt_s;
            s.bconv_s += c.bconv_s;
            s.elem_s += c.elem_s;
            if (sim::needs_evk(p.kind)) {
                ++s.evk_ops;
                s.keyswitch_work_s += c.compute_s;
                // Within one node the Executor holds every key the
                // node's call needs: all the distinct keys of a
                // hoisted group at once, one key at a time inside the
                // (serial) bootstrap plan.
                if (n.kind == OpKind::kBootstrap) {
                    node_evk_resident =
                        std::max(node_evk_resident, c.evk_bytes);
                } else {
                    node_evk_resident += c.evk_bytes;
                }
            }
        }
        s.total_work_s += nr.cost_s;
        s.evk_bytes += nr.evk_bytes;
        s.evk_working_set_bytes =
            std::max(s.evk_working_set_bytes, node_evk_resident);
    }
    for (const std::size_t c : s.op_counts) s.total_ops += c;

    // Liveness: ciphertext bytes(level) = 2 (level+1) N 8 — the two
    // RnsPoly components of (level+1) residue rows of N words.
    const double n_words = static_cast<double>(inst.n);
    liveness_walk(
        g,
        [n_words](int level) {
            return 2.0 * (level + 1) * n_words * 8.0;
        },
        s.peak_live_values, s.peak_live_bytes, &s.nodes);

    // Critical path: longest cost-weighted dependence chain.
    std::vector<double> finish(g.num_nodes(), 0);
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        double start = 0;
        for (const int in : g.node(i).inputs) {
            const int p = g.value(in).producer;
            if (p >= 0) start = std::max(start, finish[p]);
        }
        s.nodes[i].critical_start_s = start;
        finish[i] = start + s.nodes[i].cost_s;
        s.critical_path_s = std::max(s.critical_path_s, finish[i]);
    }
    s.parallelism = s.critical_path_s > 0
                        ? s.total_work_s / s.critical_path_s
                        : 0.0;
    s.width = dependence_width(g);
    return s;
}

std::vector<Diagnostic>
check_resources(const ResourceSummary& s, const ResourceLimits& limits)
{
    std::vector<Diagnostic> diags;
    const auto emit = [&](const char* rule, Severity sev,
                          std::string message, std::string hint) {
        Diagnostic d;
        d.rule = rule;
        d.severity = sev;
        d.message = std::move(message);
        d.hint = std::move(hint);
        diags.push_back(std::move(d));
    };
    if (limits.max_peak_live_bytes > 0 &&
        s.peak_live_bytes > limits.max_peak_live_bytes) {
        emit("rs-peak-live", Severity::kError,
             "peak live set " + human_bytes(s.peak_live_bytes) +
                 " exceeds the budget " +
                 human_bytes(limits.max_peak_live_bytes),
             "split the graph, bootstrap earlier, or serve it on an "
             "instance with more memory headroom");
    }
    if (limits.max_evk_working_set_bytes > 0 &&
        s.evk_working_set_bytes > limits.max_evk_working_set_bytes) {
        emit("rs-evk-working-set", Severity::kError,
             "a node needs " + human_bytes(s.evk_working_set_bytes) +
                 " of evaluation keys resident at once, budget is " +
                 human_bytes(limits.max_evk_working_set_bytes),
             "shrink hoisted-rotation groups or raise dnum to shrink "
             "per-key footprint");
    }
    if (limits.min_parallelism > 0 && s.total_work_s > 0 &&
        s.parallelism < limits.min_parallelism) {
        std::ostringstream msg;
        msg.precision(3);
        msg << "static parallelism " << s.parallelism
            << " is below the floor " << limits.min_parallelism
            << " (critical path " << s.critical_path_s
            << " s of " << s.total_work_s << " s total work)";
        emit("rs-critical-path", Severity::kWarning, msg.str(),
             "the graph is effectively a chain; extra executor lanes "
             "cannot shorten it");
    }
    return diags;
}

std::string
render_resource_text(const std::string& graph_name,
                     const ResourceSummary& s)
{
    std::ostringstream os;
    os.precision(4);
    os << graph_name << ": " << s.total_ops << " primitive ops";
    if (s.bootstrap_count > 0) {
        os << " (" << s.bootstrap_count << " bootstrap"
           << (s.bootstrap_count > 1 ? "s" : "") << ")";
    }
    os << "\n  ops:";
    for (int k = 0; k < sim::kHeOpKindCount; ++k) {
        const std::size_t c = s.op_counts[static_cast<std::size_t>(k)];
        if (c == 0) continue;
        os << " " << sim::kind_name(static_cast<sim::HeOpKind>(k)) << "="
           << c;
    }
    os << "\n  work: total=" << s.total_work_s
       << " s, key-switch=" << s.keyswitch_work_s
       << " s, ntt=" << s.ntt_s << " s, bconv=" << s.bconv_s
       << " s, elem=" << s.elem_s << " s\n"
       << "  evk: stream=" << human_bytes(s.evk_bytes)
       << ", working-set=" << human_bytes(s.evk_working_set_bytes)
       << " (" << s.evk_ops << " key-switches)\n"
       << "  live: peak=" << s.peak_live_values << " ct ("
       << human_bytes(s.peak_live_bytes) << ")\n"
       << "  schedule: critical-path=" << s.critical_path_s
       << " s, parallelism=" << s.parallelism;
    if (s.width > 0) os << ", width=" << s.width;
    os << "\n";
    return os.str();
}

std::string
render_resource_json(const std::string& graph_name,
                     const ResourceSummary& s)
{
    std::ostringstream os;
    os.precision(12);
    os << "{\"graph\": \"" << graph_name << "\", \"total_ops\": "
       << s.total_ops << ", \"bootstrap_count\": " << s.bootstrap_count
       << ", \"op_counts\": {";
    bool first = true;
    for (int k = 0; k < sim::kHeOpKindCount; ++k) {
        const std::size_t c = s.op_counts[static_cast<std::size_t>(k)];
        if (c == 0) continue;
        os << (first ? "" : ", ") << "\""
           << sim::kind_name(static_cast<sim::HeOpKind>(k)) << "\": " << c;
        first = false;
    }
    os << "}, \"total_work_s\": " << s.total_work_s
       << ", \"keyswitch_work_s\": " << s.keyswitch_work_s
       << ", \"ntt_s\": " << s.ntt_s << ", \"bconv_s\": " << s.bconv_s
       << ", \"elem_s\": " << s.elem_s << ", \"evk_bytes\": " << s.evk_bytes
       << ", \"evk_working_set_bytes\": " << s.evk_working_set_bytes
       << ", \"evk_ops\": " << s.evk_ops
       << ", \"peak_live_values\": " << s.peak_live_values
       << ", \"peak_live_bytes\": " << s.peak_live_bytes
       << ", \"critical_path_s\": " << s.critical_path_s
       << ", \"parallelism\": " << s.parallelism
       << ", \"width\": " << s.width << "}";
    return os.str();
}

std::string
render_schedule_text(const Graph& g, const ResourceSummary& s)
{
    BTS_CHECK(s.nodes.size() == g.num_nodes(),
              "schedule table needs the summary of this graph");
    std::ostringstream os;
    os.precision(4);
    os << g.name()
       << ": serial schedule (cost / evk / live set after each node)\n";
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        const NodeResource& nr = s.nodes[i];
        os << "  #" << i << " " << op_name(n.kind);
        if (n.kind == OpKind::kHRot) os << " r=" << n.rot_amount;
        if (n.kind == OpKind::kHRotHoisted) {
            os << " x" << n.amounts.size();
        }
        os << ": cost=" << nr.cost_s << " s";
        if (nr.evk_bytes > 0) {
            os << ", evk=" << human_bytes(nr.evk_bytes);
        }
        os << ", live=" << nr.live_after << " ct ("
           << human_bytes(nr.live_bytes_after) << "), start>="
           << nr.critical_start_s << " s\n";
    }
    return os.str();
}

std::string
to_resource_dot(const Graph& g, const ResourceSummary& s)
{
    BTS_CHECK(s.nodes.size() == g.num_nodes(),
              "cost DOT needs the summary of this graph");
    std::ostringstream os;
    os.precision(3);
    os << "digraph \"" << g.name() << "\" {\n"
       << "  rankdir=TB;\n  node [fontsize=10];\n";
    std::vector<char> is_out(g.num_values(), 0);
    for (const int id : g.outputs()) is_out[id] = 1;

    for (const int id : g.input_ids()) {
        const ValueInfo& info = g.value(id);
        os << "  v" << id << " [shape=box"
           << (info.is_plain ? ", style=dashed" : "") << ", label=\""
           << (info.is_plain ? "pt" : "ct") << " in v" << id << "\\nL"
           << info.level << "\""
           << (is_out[id] ? ", peripheries=2" : "") << "];\n";
    }
    // Tint the nodes on the critical path: the chain whose finish time
    // equals the graph's critical path, walked back greedily.
    std::vector<char> critical(g.num_nodes(), 0);
    {
        double target = s.critical_path_s;
        int at = -1;
        for (std::size_t i = g.num_nodes(); i-- > 0;) {
            const double fin =
                s.nodes[i].critical_start_s + s.nodes[i].cost_s;
            if (at < 0 && std::abs(fin - target) <= 1e-15 + 1e-9 * target) {
                at = static_cast<int>(i);
            }
        }
        while (at >= 0) {
            critical[at] = 1;
            target = s.nodes[at].critical_start_s;
            int next = -1;
            for (const int in : g.node(static_cast<std::size_t>(at)).inputs) {
                const int p = g.value(in).producer;
                if (p < 0) continue;
                const double fin =
                    s.nodes[p].critical_start_s + s.nodes[p].cost_s;
                if (std::abs(fin - target) <= 1e-15 + 1e-9 * target) {
                    next = p;
                }
            }
            at = next;
        }
    }
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        const NodeResource& nr = s.nodes[i];
        std::ostringstream label;
        label.precision(3);
        label << "#" << i << " " << op_name(n.kind);
        if (n.kind == OpKind::kHRot) label << " r=" << n.rot_amount;
        label << "\\n" << nr.cost_s * 1e3 << " ms, live "
              << nr.live_after << " ct";
        if (nr.evk_bytes > 0) {
            label << "\\nevk " << human_bytes(nr.evk_bytes);
        }
        bool marks = false;
        for (const int o : n.outputs) marks = marks || is_out[o];
        os << "  n" << i << " [label=\"" << label.str() << "\"";
        if (critical[i]) os << ", style=filled, fillcolor=lightsteelblue";
        os << (marks ? ", peripheries=2" : "") << "];\n";
    }
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        for (const int in : g.node(i).inputs) {
            const ValueInfo& info = g.value(in);
            if (info.is_input) {
                os << "  v" << in;
            } else {
                os << "  n" << info.producer;
            }
            os << " -> n" << i << " [label=\"v" << in << "\"];\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace bts::runtime::analysis
