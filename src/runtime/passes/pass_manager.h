/**
 * @file
 * Graph-compiler pass pipeline: rewrites a validated runtime Graph
 * into an equivalent optimized Graph (same decrypt result, bit-exact
 * on the functional Executor) that restructures the dataflow the way
 * BTS restructures it on-chip — shared key-switch decompositions
 * across rotations, fused op pairs, lazy [0, 2q) intermediates — so
 * every workload inherits the kernel-level wins automatically instead
 * of paying full canonicalization and decomposition at every node
 * boundary.
 *
 * Pass catalog (run in this order; each is individually gateable):
 *
 *  1. rescale placement — the waterline rule: defer rescales through
 *     scale-preserving ops and insert ONE shared HRescale immediately
 *     before the consumers that need a reduced-scale operand. The pass
 *     is insert-only: hand-placed rescales are authoritative when
 *     legal, so a conformant graph passes through untouched.
 *  2. dead-value elimination — drop nodes whose results can never
 *     reach a marked output.
 *  3. rotation-hoisting CSE — rotations of the same value collapse
 *     into one kHRotHoisted node sharing a single decompose+ModUp
 *     (duplicate amounts dedupe into one output).
 *  4. fusion — HMult+HRescale, PMult+HRescale, CMult+HRescale and
 *     CMult+CAdd pairs collapse into single fused nodes the Executor
 *     dispatches as one evaluator call.
 *  5. lazy-residue propagation — kHAdd/kHSub whose every consumer
 *     tolerates [0, 2q) residues are annotated lazy, skipping the
 *     canonicalization pass across the node boundary.
 *
 * Legality rules and the lazy-edge contract are documented in
 * docs/PASSES.md.
 */
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/analysis/resource.h"
#include "runtime/graph.h"

namespace bts::runtime::passes {

/** A caller-supplied in-place rewrite appended after the builtin
 *  passes (in order). Under inter-pass verification each custom pass
 *  is followed by the same well-formedness check the builtin ones get,
 *  and a corrupting pass is reported BY NAME — the hook the pipeline's
 *  regression tests use to prove the verifier catches pass bugs. */
struct CustomPass
{
    std::string name;
    std::function<void(Graph&)> run;
};

/** Inter-pass verification policy. */
enum class VerifyMode {
    kAuto, //!< on in Debug builds or when BTS_DEBUG is in the env
    kOn,
    kOff,
};

/** Which passes run. Default: everything on. */
struct PassOptions
{
    bool place_rescales = true;
    bool eliminate_dead = true;
    bool group_rotations = true;
    bool fuse = true;
    bool lazy = true;
    /** Run analysis::AnalysisOptions::wellformed() over the graph
     *  after every pass, panicking with the offending pass's name on
     *  the first error — turning a silent IR corruption (the PR 7
     *  dangling-ValueInfo and double-marked-output bugs) into an
     *  immediate named failure. */
    VerifyMode verify = VerifyMode::kAuto;
    /** Extra in-place passes run after the builtin pipeline. */
    std::vector<CustomPass> custom_passes;
    /** When set, PassManager logs one stats line per pass. */
    std::ostream* log = nullptr;

    /** Everything off: optimize() degenerates to a structural copy. */
    static PassOptions
    none()
    {
        PassOptions o;
        o.place_rescales = o.eliminate_dead = o.group_rotations = o.fuse =
            o.lazy = false;
        return o;
    }

    /** Only automatic rescale placement — the minimum that makes a
     *  builder graph without hand-placed rescales executable. */
    static PassOptions
    rescale_only()
    {
        PassOptions o = none();
        o.place_rescales = true;
        return o;
    }
};

/** Before/after resource profile of one pass that ran — what the pass
 *  did to the graph's static cost shape, not just its node count.
 *  Instance-free (analysis::analyze_liveness), so it is available for
 *  every optimize() call without a CkksInstance in scope. */
struct PassResourceDelta
{
    std::string pass;
    analysis::LivenessStats before;
    analysis::LivenessStats after;
};

/** Aggregate pass statistics for one optimize() call. */
struct PassStats
{
    std::size_t rescales_inserted = 0; //!< waterline HRescales added
    std::size_t nodes_eliminated = 0;  //!< DVE + rotation-CSE dedupe
    std::size_t rotations_grouped = 0; //!< kHRot folded into groups
    std::size_t ops_fused = 0;         //!< node pairs collapsed
    std::size_t lazy_nodes = 0;        //!< adds/subs marked lazy
    /** One entry per pass that ran (builtin and custom), in order. */
    std::vector<PassResourceDelta> resource_deltas;
};

/** optimize() result: the rewritten graph plus the value-id remap
 *  (old id -> new id; -1 for values that no longer exist, e.g. dead
 *  values or fused-away intermediates). Callers holding Value handles
 *  into the original graph — application structs keeping input ids,
 *  bindings — translate them through the map. */
struct OptimizeResult
{
    Graph graph;
    PassStats stats;
    std::vector<int> value_map;

    /** Translate an original-graph value handle. */
    Value
    remap(Value v) const
    {
        return Value{v.valid() ? value_map[v.id] : -1};
    }
};

/** Runs the pass pipeline. Stateless; cheap to construct. */
class PassManager
{
  public:
    explicit PassManager(PassOptions opts = {}) : opts_(opts) {}

    /** Rewrite @p g. The input graph is untouched; the result is a new
     *  graph (fresh uid, so executors plan it independently).
     *  Idempotent: optimizing an already-optimized graph returns a
     *  structurally identical one. */
    OptimizeResult optimize(const Graph& g) const;

  private:
    PassOptions opts_;
};

} // namespace bts::runtime::passes
