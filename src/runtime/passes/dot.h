/**
 * @file
 * Graphviz DOT dumper for runtime Graphs — render a workload's
 * dataflow before/after the pass pipeline (`dot -Tsvg`). Inputs are
 * boxes (plaintexts dashed), nodes are ellipses labelled with kind +
 * level/scale metadata, lazy edges are drawn dashed, and marked
 * outputs get a doubled border.
 */
#pragma once

#include <string>

#include "runtime/graph.h"

namespace bts::runtime::passes {

/** @return a complete Graphviz digraph for @p g. */
std::string to_dot(const Graph& g);

} // namespace bts::runtime::passes
