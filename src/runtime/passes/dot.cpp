#include "runtime/passes/dot.h"

#include <sstream>

namespace bts::runtime::passes {

namespace {

void
append_constant(std::ostringstream& os, const char* name, Complex c)
{
    os << "\\n" << name << "=" << c.real();
    if (c.imag() != 0.0) os << (c.imag() < 0 ? "" : "+") << c.imag() << "i";
}

} // namespace

std::string
to_dot(const Graph& g)
{
    std::ostringstream os;
    os << "digraph \"" << g.name() << "\" {\n"
       << "  rankdir=TB;\n"
       << "  node [fontsize=10];\n";

    std::vector<char> is_out(g.num_values(), 0);
    for (const int id : g.outputs()) is_out[id] = 1;

    // Input values: boxes (plaintexts dashed).
    for (const int id : g.input_ids()) {
        const ValueInfo& info = g.value(id);
        os << "  v" << id << " [shape=box"
           << (info.is_plain ? ", style=dashed" : "") << ", label=\""
           << (info.is_plain ? "pt" : "ct") << " in v" << id << "\\nL"
           << info.level << " s=" << info.scale << "\""
           << (is_out[id] ? ", peripheries=2" : "") << "];\n";
    }

    // Nodes: ellipses labelled with kind + result metadata.
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        std::ostringstream label;
        label << "#" << i << " " << op_name(n.kind);
        if (n.kind == OpKind::kHRot) label << " r=" << n.rot_amount;
        if (n.kind == OpKind::kHRotHoisted) {
            label << " r={";
            for (std::size_t k = 0; k < n.amounts.size(); ++k) {
                label << (k ? "," : "") << n.amounts[k];
            }
            label << "}";
        }
        if (n.kind == OpKind::kCMult || n.kind == OpKind::kCAdd ||
            n.kind == OpKind::kCMultRescale ||
            n.kind == OpKind::kCMultAdd) {
            append_constant(label, "c", n.constant);
        }
        if (n.kind == OpKind::kCMultAdd) {
            append_constant(label, "c2", n.constant2);
        }
        if (n.lazy) label << " [lazy]";
        const ValueInfo& out = g.value(n.output);
        label << "\\nL" << out.level << " s=" << out.scale;

        bool marks_output = false;
        for (const int o : n.outputs) marks_output = marks_output || is_out[o];
        os << "  n" << i << " [label=\"" << label.str() << "\""
           << (op_is_composite(n.kind) ? ", style=filled, fillcolor=lightblue"
                                       : "")
           << (marks_output ? ", peripheries=2" : "") << "];\n";
    }

    // Edges: producer -> consumer, labelled with the value id carried.
    // Lazy producers' outgoing edges are dashed (the [0, 2q) edges).
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        for (const int in : n.inputs) {
            const ValueInfo& info = g.value(in);
            const bool lazy_edge =
                info.producer >= 0 &&
                g.node(static_cast<std::size_t>(info.producer)).lazy;
            if (info.is_input) {
                os << "  v" << in << " -> n" << i;
            } else {
                os << "  n" << info.producer << " -> n" << i;
            }
            os << " [label=\"v" << in << "\"";
            if (lazy_edge) os << ", style=dashed";
            os << "];\n";
        }
    }

    os << "}\n";
    return os.str();
}

} // namespace bts::runtime::passes
