#include "runtime/passes/pass_manager.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <ostream>

#include "common/check.h"
#include "runtime/analysis/verifier.h"

namespace bts::runtime::passes {

namespace {

/** One pass's rewrite product: the new graph plus old-id -> new-id. */
struct Rewrite
{
    Graph graph;
    std::vector<int> map;
};

/**
 * Replay driver: walks @p g in value-creation order (the order the
 * original builder calls ran in, so input declarations interleave with
 * node outputs exactly as they did) re-declaring inputs verbatim and
 * handing each node, once, to @p emit_node. The callback appends
 * whatever it wants to @p out and fills map entries for every value
 * the original node defined (-1 for values it eliminates). Output
 * marks are replayed at the end.
 */
template <typename EmitNode>
Rewrite
replay(const Graph& g, EmitNode&& emit_node)
{
    Rewrite rw{Graph(g.name(), g.traits()),
               std::vector<int>(g.num_values(), -1)};
    std::vector<char> node_done(g.num_nodes(), 0);
    for (std::size_t id = 0; id < g.num_values(); ++id) {
        const ValueInfo& info = g.value(static_cast<int>(id));
        if (info.is_input) {
            const Value v =
                info.is_plain
                    ? rw.graph.plain_input(info.level, info.scale)
                    : rw.graph.input(info.level, info.scale);
            rw.map[id] = v.id;
            continue;
        }
        const std::size_t producer =
            static_cast<std::size_t>(info.producer);
        if (node_done[producer]) continue;
        node_done[producer] = 1;
        emit_node(rw.graph, producer, rw.map);
    }
    for (const int id : g.outputs()) {
        BTS_ASSERT(rw.map[id] >= 0,
                   "pass eliminated a marked output value");
        rw.graph.mark_output(Value{rw.map[id]});
    }
    return rw;
}

/** Re-emit node @p idx of @p g unchanged (operands translated through
 *  @p map), filling the map entries for its outputs. */
void
emit_same(Graph& out, const Graph& g, std::size_t idx,
          std::vector<int>& map)
{
    const Node& n = g.node(idx);
    const auto in = [&](std::size_t slot) {
        const int mapped = map[n.inputs[slot]];
        BTS_ASSERT(mapped >= 0, "operand of a live node was eliminated");
        return Value{mapped};
    };
    Value v;
    switch (n.kind) {
    case OpKind::kHMult: v = out.hmult(in(0), in(1)); break;
    case OpKind::kHAdd: v = out.hadd(in(0), in(1)); break;
    case OpKind::kHSub: v = out.hsub(in(0), in(1)); break;
    case OpKind::kPMult: v = out.pmult(in(0), in(1)); break;
    case OpKind::kPAdd: v = out.padd(in(0), in(1)); break;
    case OpKind::kHRot: v = out.hrot(in(0), n.rot_amount); break;
    case OpKind::kConj: v = out.conj(in(0)); break;
    case OpKind::kHRescale: v = out.hrescale(in(0)); break;
    case OpKind::kCMult: v = out.cmult(in(0), n.constant); break;
    case OpKind::kCAdd: v = out.cadd(in(0), n.constant); break;
    case OpKind::kModRaise: v = out.mod_raise(in(0)); break;
    case OpKind::kBootstrap: v = out.bootstrap(in(0)); break;
    case OpKind::kHMultRescale:
        v = out.hmult_rescale(in(0), in(1));
        break;
    case OpKind::kPMultRescale:
        v = out.pmult_rescale(in(0), in(1));
        break;
    case OpKind::kCMultRescale:
        v = out.cmult_rescale(in(0), n.constant);
        break;
    case OpKind::kCMultAdd:
        v = out.cmult_add(in(0), n.constant, n.constant2);
        break;
    case OpKind::kHRotHoisted: {
        const std::vector<Value> outs =
            out.hrot_hoisted(in(0), n.amounts);
        for (std::size_t k = 0; k < outs.size(); ++k) {
            map[n.outputs[k]] = outs[k].id;
        }
        return;
    }
    }
    if (n.lazy) out.mark_lazy(out.num_nodes() - 1);
    map[n.output] = v.id;
}

// --------------------------------------------------------------------
// Pass 1: automatic rescale placement (the waterline rule).
//
// Insert-only: whenever an operand of a reduced-scale-requiring
// consumer (multiplications, constant/plaintext adds, bootstrap)
// still carries a double scale (>= delta^2), insert one HRescale and
// share it across every such consumer of that value. A graph whose
// hand-placed rescales already satisfy the rule replays unchanged, so
// hand placements stay authoritative — the pass exists so builders
// can stop writing them at all.
// --------------------------------------------------------------------

Rewrite
place_rescales(const Graph& g, PassStats& stats)
{
    const double delta = g.traits().delta;
    // "Double scale": at or above delta^2, with slack — scales are
    // approximate bookkeeping, and delta vs delta^2 differ by a factor
    // of delta (>= 2^30 in any real instance), so a factor-2 margin
    // can never misclassify.
    const double waterline = delta * delta * 0.5;
    std::map<int, int> memo; // new value id -> its shared rescale's id

    return replay(g, [&](Graph& out, std::size_t idx,
                         std::vector<int>& map) {
        const Node& n = g.node(idx);
        // Returns the reduced-scale form of the (already mapped)
        // operand, inserting the shared rescale on first need.
        const auto reduced = [&](int new_id) -> int {
            if (out.value(new_id).scale < waterline) return new_id;
            const auto it = memo.find(new_id);
            if (it != memo.end()) return it->second;
            const Value r = out.hrescale(Value{new_id});
            ++stats.rescales_inserted;
            memo.emplace(new_id, r.id);
            return r.id;
        };
        const auto in_id = [&](std::size_t slot) {
            const int mapped = map[n.inputs[slot]];
            BTS_ASSERT(mapped >= 0, "operand eliminated");
            return mapped;
        };

        Value v;
        switch (n.kind) {
        case OpKind::kHMult:
            v = out.hmult(Value{reduced(in_id(0))},
                          Value{reduced(in_id(1))});
            break;
        case OpKind::kHMultRescale:
            v = out.hmult_rescale(Value{reduced(in_id(0))},
                                  Value{reduced(in_id(1))});
            break;
        case OpKind::kPMult:
            v = out.pmult(Value{reduced(in_id(0))}, Value{in_id(1)});
            break;
        case OpKind::kPMultRescale:
            v = out.pmult_rescale(Value{reduced(in_id(0))},
                                  Value{in_id(1)});
            break;
        case OpKind::kCMult:
            v = out.cmult(Value{reduced(in_id(0))}, n.constant);
            break;
        case OpKind::kCMultRescale:
            v = out.cmult_rescale(Value{reduced(in_id(0))}, n.constant);
            break;
        case OpKind::kCMultAdd:
            v = out.cmult_add(Value{reduced(in_id(0))}, n.constant,
                              n.constant2);
            break;
        case OpKind::kCAdd:
            v = out.cadd(Value{reduced(in_id(0))}, n.constant);
            break;
        case OpKind::kPAdd:
            v = out.padd(Value{reduced(in_id(0))}, Value{in_id(1)});
            break;
        case OpKind::kBootstrap:
            v = out.bootstrap(Value{reduced(in_id(0))});
            break;
        case OpKind::kHAdd:
        case OpKind::kHSub: {
            // Scale-preserving, but a mismatch (one operand still at
            // delta^2, the other already rescaled) must be repaired by
            // rescaling the larger side — otherwise pass through and
            // defer any shared obligation to the consumers.
            int a = in_id(0), b = in_id(1);
            const double sa = out.value(a).scale;
            const double sb = out.value(b).scale;
            if (std::abs(sa / sb - 1.0) >= 1e-3) {
                if (sa > sb) {
                    a = reduced(a);
                } else {
                    b = reduced(b);
                }
            }
            v = n.kind == OpKind::kHAdd ? out.hadd(Value{a}, Value{b})
                                        : out.hsub(Value{a}, Value{b});
            if (n.lazy) out.mark_lazy(out.num_nodes() - 1);
            map[n.output] = v.id;
            return;
        }
        case OpKind::kHRot:
        case OpKind::kConj:
        case OpKind::kHRescale:
        case OpKind::kModRaise:
        case OpKind::kHRotHoisted:
            emit_same(out, g, idx, map);
            return;
        }
        map[n.output] = v.id;
    });
}

// --------------------------------------------------------------------
// Pass 2: dead-value elimination. A node is live iff one of its
// results can reach a marked output. Declared inputs are always kept
// (the Binding contract requires every declared input bound, used or
// not).
// --------------------------------------------------------------------

Rewrite
eliminate_dead(const Graph& g, PassStats& stats)
{
    std::vector<char> live(g.num_values(), 0);
    std::vector<char> node_live(g.num_nodes(), 0);
    for (const int id : g.outputs()) live[id] = 1;
    for (std::size_t i = g.num_nodes(); i-- > 0;) {
        const Node& n = g.node(i);
        bool l = false;
        for (const int o : n.outputs) l = l || live[o];
        node_live[i] = l;
        if (l) {
            for (const int in : n.inputs) live[in] = 1;
        } else {
            ++stats.nodes_eliminated;
        }
    }
    return replay(g, [&](Graph& out, std::size_t idx,
                         std::vector<int>& map) {
        if (node_live[idx]) emit_same(out, g, idx, map);
    });
}

// --------------------------------------------------------------------
// Pass 3: rotation-hoisting CSE. All kHRot nodes reading the same
// value collapse into one kHRotHoisted node placed where the first of
// them was: the Executor then pays the decompose+ModUp prefix once
// for the whole group (Evaluator::rotate_hoisted). Duplicate amounts
// dedupe into a single shared result — classic CSE.
// --------------------------------------------------------------------

Rewrite
group_rotations(const Graph& g, PassStats& stats)
{
    // Per input value: the kHRot nodes reading it, in node order.
    std::map<int, std::vector<std::size_t>> rots_of;
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        if (n.kind == OpKind::kHRot) rots_of[n.inputs[0]].push_back(i);
    }
    // leader[i] >= 0: node i starts a group; grouped[i]: node i is a
    // member of some group (emitted at the leader's position).
    std::vector<char> grouped(g.num_nodes(), 0);
    std::vector<std::vector<std::size_t>> group_members(g.num_nodes());
    for (const auto& [value_id, members] : rots_of) {
        (void)value_id;
        if (members.size() < 2) continue;
        for (const std::size_t m : members) grouped[m] = 1;
        group_members[members[0]] = members;
        stats.rotations_grouped += members.size();
    }

    return replay(g, [&](Graph& out, std::size_t idx,
                         std::vector<int>& map) {
        if (!grouped[idx]) {
            emit_same(out, g, idx, map);
            return;
        }
        const auto& members = group_members[idx];
        if (members.empty()) return; // non-leader member: already done
        // Distinct amounts in first-appearance order; duplicate
        // rotations share one output — except that two rotations which
        // are BOTH marked graph outputs must keep distinct result
        // values, or the replayed output list would mark one value
        // twice (mark_output rejects that, and the positional output
        // contract needs one value per marked slot).
        const auto is_marked = [&](int vid) {
            const auto& outs = g.outputs();
            return std::find(outs.begin(), outs.end(), vid) !=
                   outs.end();
        };
        std::vector<int> amounts;
        std::vector<char> slot_marked;
        std::vector<std::size_t> out_slot(members.size());
        for (std::size_t k = 0; k < members.size(); ++k) {
            const int r = g.node(members[k]).rot_amount;
            const bool marked = is_marked(g.node(members[k]).output);
            const auto it =
                std::find(amounts.begin(), amounts.end(), r);
            const std::size_t slot =
                static_cast<std::size_t>(it - amounts.begin());
            if (it == amounts.end() || (marked && slot_marked[slot])) {
                out_slot[k] = amounts.size();
                amounts.push_back(r);
                slot_marked.push_back(marked ? 1 : 0);
            } else {
                out_slot[k] = slot;
                slot_marked[slot] |= marked ? 1 : 0;
                ++stats.nodes_eliminated; // duplicate rotation CSE'd
            }
        }
        const int mapped_in = map[g.node(idx).inputs[0]];
        BTS_ASSERT(mapped_in >= 0, "rotation operand eliminated");
        const std::vector<Value> outs =
            out.hrot_hoisted(Value{mapped_in}, amounts);
        for (std::size_t k = 0; k < members.size(); ++k) {
            map[g.node(members[k]).output] = outs[out_slot[k]].id;
        }
    });
}

// --------------------------------------------------------------------
// Pass 4: fusion. A multiplication whose single consumer is the
// matching follow-up op — HRescale after HMult/PMult/CMult, CAdd
// after CMult — collapses with it into one fused node dispatched as a
// single evaluator call (one scheduler hop, no intermediate value).
// Legal only when the intermediate has exactly one consumer and is
// not itself a graph output.
// --------------------------------------------------------------------

Rewrite
fuse_pairs(const Graph& g, PassStats& stats)
{
    const auto users = g.value_users();
    std::vector<char> is_out(g.num_values(), 0);
    for (const int id : g.outputs()) is_out[id] = 1;

    // fused_consumer[i] = j: producer node i absorbs consumer node j.
    std::vector<int> fused_consumer(g.num_nodes(), -1);
    std::vector<char> absorbed(g.num_nodes(), 0);
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        if (n.kind != OpKind::kHMult && n.kind != OpKind::kPMult &&
            n.kind != OpKind::kCMult) {
            continue;
        }
        if (is_out[n.output] || users[n.output].size() != 1) continue;
        const std::size_t j =
            static_cast<std::size_t>(users[n.output][0]);
        const OpKind ck = g.node(j).kind;
        const bool match =
            (ck == OpKind::kHRescale) ||
            (n.kind == OpKind::kCMult && ck == OpKind::kCAdd);
        if (!match) continue;
        fused_consumer[i] = static_cast<int>(j);
        absorbed[j] = 1;
        ++stats.ops_fused;
    }

    return replay(g, [&](Graph& out, std::size_t idx,
                         std::vector<int>& map) {
        if (absorbed[idx]) return; // emitted with its producer
        const Node& n = g.node(idx);
        if (fused_consumer[idx] < 0) {
            emit_same(out, g, idx, map);
            return;
        }
        const Node& c =
            g.node(static_cast<std::size_t>(fused_consumer[idx]));
        const auto in = [&](std::size_t slot) {
            const int mapped = map[n.inputs[slot]];
            BTS_ASSERT(mapped >= 0, "operand eliminated");
            return Value{mapped};
        };
        Value v;
        if (n.kind == OpKind::kHMult) {
            v = out.hmult_rescale(in(0), in(1));
        } else if (n.kind == OpKind::kPMult) {
            v = out.pmult_rescale(in(0), in(1));
        } else if (c.kind == OpKind::kHRescale) {
            v = out.cmult_rescale(in(0), n.constant);
        } else {
            v = out.cmult_add(in(0), n.constant, c.constant);
        }
        map[n.output] = -1; // the intermediate no longer exists
        map[c.output] = v.id;
    });
}

// --------------------------------------------------------------------
// Pass 5: lazy-residue propagation. kHAdd/kHSub whose every consumer
// tolerates [0, 2q) residues (multiplicative ops through Barrett /
// Shoup products, key-switched ops whose first step is an inverse
// NTT, ModRaise) are annotated lazy: the Executor dispatches
// Evaluator::add_lazy/sub_lazy, skipping the canonicalization sweep.
// Results that are graph outputs are never lazy (they leave the
// runtime's control). In-place annotation — no rewrite needed.
// --------------------------------------------------------------------

void
propagate_lazy(Graph& g, PassStats& stats)
{
    const auto users = g.value_users();
    std::vector<char> is_out(g.num_values(), 0);
    for (const int id : g.outputs()) is_out[id] = 1;
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        if (n.kind != OpKind::kHAdd && n.kind != OpKind::kHSub) continue;
        if (n.lazy) continue;
        if (is_out[n.output] || users[n.output].empty()) continue;
        bool ok = true;
        for (const int u : users[n.output]) {
            ok = ok && op_tolerates_lazy_input(
                           g.node(static_cast<std::size_t>(u)).kind);
        }
        if (!ok) continue;
        g.mark_lazy(i);
        ++stats.lazy_nodes;
    }
}

/** Resolve VerifyMode::kAuto: Debug builds always verify; Release
 *  builds verify when BTS_DEBUG is set in the environment. */
bool
verify_enabled(VerifyMode mode)
{
    switch (mode) {
    case VerifyMode::kOn: return true;
    case VerifyMode::kOff: return false;
    case VerifyMode::kAuto:
#ifndef NDEBUG
        return true;
#else
        return std::getenv("BTS_DEBUG") != nullptr;
#endif
    }
    return false;
}

} // namespace

OptimizeResult
PassManager::optimize(const Graph& g) const
{
    PassStats stats;
    // Start from a replayed copy: a fresh uid (so Executors plan the
    // optimized graph independently) and an identity value map.
    Rewrite cur = replay(g, [&](Graph& out, std::size_t idx,
                                std::vector<int>& map) {
        emit_same(out, g, idx, map);
    });

    const auto log_pass = [&](const char* name, const PassStats& before) {
        if (!opts_.log) return;
        std::ostream& os = *opts_.log;
        os << "[passes] " << g.name() << " · " << name << ":";
        if (stats.rescales_inserted != before.rescales_inserted) {
            os << " rescales_inserted="
               << (stats.rescales_inserted - before.rescales_inserted);
        }
        if (stats.nodes_eliminated != before.nodes_eliminated) {
            os << " nodes_eliminated="
               << (stats.nodes_eliminated - before.nodes_eliminated);
        }
        if (stats.rotations_grouped != before.rotations_grouped) {
            os << " rotations_grouped="
               << (stats.rotations_grouped - before.rotations_grouped);
        }
        if (stats.ops_fused != before.ops_fused) {
            os << " ops_fused=" << (stats.ops_fused - before.ops_fused);
        }
        if (stats.lazy_nodes != before.lazy_nodes) {
            os << " lazy_nodes="
               << (stats.lazy_nodes - before.lazy_nodes);
        }
        os << "\n";
    };

    // Per-pass resource deltas: re-profile the (instance-free) liveness
    // after every pass that ran, so regressions like "fusion raised the
    // peak live set" are attributable to one pass from stats alone.
    analysis::LivenessStats live = analysis::analyze_liveness(cur.graph);
    const auto record_delta = [&](const std::string& name) {
        PassResourceDelta d;
        d.pass = name;
        d.before = live;
        d.after = analysis::analyze_liveness(cur.graph);
        live = d.after;
        if (opts_.log &&
            (d.after.nodes != d.before.nodes ||
             d.after.evk_ops != d.before.evk_ops ||
             d.after.peak_live_values != d.before.peak_live_values ||
             d.after.peak_live_limbs != d.before.peak_live_limbs)) {
            *opts_.log << "[passes] " << g.name() << " · " << name
                       << " resources: nodes " << d.before.nodes << "->"
                       << d.after.nodes << ", evk_ops "
                       << d.before.evk_ops << "->" << d.after.evk_ops
                       << ", peak_live " << d.before.peak_live_values
                       << "->" << d.after.peak_live_values << " ct ("
                       << d.before.peak_live_limbs << "->"
                       << d.after.peak_live_limbs << " limbs)\n";
        }
        stats.resource_deltas.push_back(std::move(d));
    };

    // Inter-pass verification: the well-formedness subset (structure
    // cross-links + metadata re-inference + lazy contract) after every
    // pass, so a corrupting pass fails HERE with its name instead of
    // corrupting every downstream pass and surfacing as an executor
    // throw. Cost is linear in graph size, and the rewrites themselves
    // replay through the validating builder, so kAuto only pays it in
    // Debug builds (or under BTS_DEBUG=1).
    const bool verify = verify_enabled(opts_.verify);
    const auto verify_after = [&](const std::string& pass_name) {
        if (!verify) return;
        const analysis::Analysis a = analysis::analyze(
            cur.graph, analysis::AnalysisOptions::wellformed());
        if (!a.ok()) {
            panic("pass '" + pass_name + "' corrupted graph '" +
                  g.name() + "':\n" +
                  analysis::render_text(cur.graph.name(), a.diags));
        }
    };
    verify_after("initial-replay");

    // Compose cur.map with a pass's old->new map.
    const auto apply = [&](Rewrite next) {
        for (int& m : cur.map) {
            if (m >= 0) m = next.map[m];
        }
        cur.graph = std::move(next.graph);
    };

    if (opts_.place_rescales) {
        const PassStats before = stats;
        apply(place_rescales(cur.graph, stats));
        log_pass("place-rescales", before);
        record_delta("place-rescales");
        verify_after("place-rescales");
    }
    if (opts_.eliminate_dead) {
        const PassStats before = stats;
        apply(eliminate_dead(cur.graph, stats));
        log_pass("dead-value-elim", before);
        record_delta("dead-value-elim");
        verify_after("dead-value-elim");
    }
    if (opts_.group_rotations) {
        const PassStats before = stats;
        apply(group_rotations(cur.graph, stats));
        log_pass("rotation-cse", before);
        record_delta("rotation-cse");
        verify_after("rotation-cse");
    }
    if (opts_.fuse) {
        const PassStats before = stats;
        apply(fuse_pairs(cur.graph, stats));
        log_pass("fusion", before);
        record_delta("fusion");
        verify_after("fusion");
    }
    if (opts_.lazy) {
        const PassStats before = stats;
        propagate_lazy(cur.graph, stats);
        log_pass("lazy-residues", before);
        record_delta("lazy-residues");
        verify_after("lazy-residues");
    }
    for (const CustomPass& cp : opts_.custom_passes) {
        cp.run(cur.graph);
        record_delta(cp.name);
        verify_after(cp.name);
    }
    return OptimizeResult{std::move(cur.graph), stats,
                          std::move(cur.map)};
}

} // namespace bts::runtime::passes
