#include "runtime/executor.h"

#include <cmath>
#include <condition_variable>
#include <deque>
#include <optional>
#include <tuple>

#include "common/check.h"
#include "runtime/telemetry/metrics.h"
#include "runtime/telemetry/trace.h"

namespace bts::runtime {

/** Resolved once per (executor, graph): evk handles per node and the
 *  CMult plaintext cache shared across run() calls. */
struct Executor::Plan
{
    std::vector<const EvalKey*> evk; //!< per node; null when unused
    /** kHRotHoisted only: the resolved rotation key per amount. */
    std::vector<std::vector<const EvalKey*>> hoisted;

    using PlainKey = std::tuple<std::size_t, std::size_t, int>;
    mutable std::mutex plain_mutex;
    mutable std::map<PlainKey, std::shared_ptr<const Plaintext>> plains;
    mutable std::size_t plain_hits = 0;
    mutable std::size_t plain_misses = 0;
};

/** One run's scheduler state (stack-local to run()). */
struct Executor::Sched
{
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::size_t> ready;
    std::vector<int> missing; //!< unmet producing-operand slots, per node
    std::vector<std::vector<std::size_t>> consumers; //!< per value id
    std::vector<std::optional<Ciphertext>> values;   //!< per value id
    std::vector<const Plaintext*> plains;            //!< per value id
    std::vector<int> uses_left;                      //!< per value id
    /** Bytes each value occupied when it materialized; charged to the
     *  live set for the value's semantic lifetime (see
     *  ExecStats::peak_live_bytes). */
    std::vector<std::size_t> value_bytes;
    std::size_t num_nodes = 0;
    std::size_t done = 0;
    std::size_t in_flight = 0;
    std::size_t live = 0;
    std::size_t live_bytes = 0;
    std::size_t window = 1;
    ExecStats stats;
    std::exception_ptr error;
    /** Predicted per-node cost (telemetry span tags); null when no
     *  prediction was installed for this graph. Immutable during the
     *  run, so read without sched.m. */
    const std::vector<double>* node_costs = nullptr;

    /** Drop a ciphertext value whose last consumer finished; its
     *  backing buffers return to the workspace pool immediately. */
    void
    release_use(int value_id)
    {
        if (uses_left[value_id] <= 0) return; // plaintext slots stay 0
        if (--uses_left[value_id] == 0) {
            // The storage may already be gone (stolen by an in-place
            // op's take_ct); the live count is released here either
            // way, when the last consumer finishes.
            values[value_id].reset();
            --live;
            live_bytes -= value_bytes[value_id];
        }
    }
};

namespace {

/** Resident footprint of one ciphertext: both components' residue
 *  matrices, 2 (level+1) rows of N 8-byte words. */
std::size_t
ciphertext_bytes(const Ciphertext& ct)
{
    return (ct.b.num_primes() + ct.a.num_primes()) * ct.b.degree() *
           sizeof(u64);
}

/** Per-process executor metrics; references are stable for the
 *  registry's (leaked-singleton) lifetime, so resolve them once. */
void
record_run_metrics(const ExecStats& stats)
{
    using telemetry::MetricsRegistry;
    static telemetry::Counter& runs = MetricsRegistry::instance().counter(
        "bts_executor_runs_total", "graph executions completed");
    static telemetry::Counter& nodes = MetricsRegistry::instance().counter(
        "bts_executor_nodes_total", "graph nodes dispatched");
    static telemetry::Gauge& peak = MetricsRegistry::instance().gauge(
        "bts_executor_peak_live_bytes",
        "largest per-run peak of the live ciphertext set");
    runs.inc(1);
    nodes.inc(stats.nodes);
    peak.set_max(static_cast<double>(stats.peak_live_bytes));
}

} // namespace

Executor::Executor(EvalResources res, ExecOptions opts)
    : res_(res), opts_(opts)
{
    BTS_CHECK(res_.eval != nullptr && res_.encoder != nullptr,
              "executor needs an evaluator and an encoder");
    BTS_CHECK(opts_.lanes >= 1, "executor lanes must be >= 1");
    BTS_CHECK(opts_.max_in_flight >= 0, "max_in_flight must be >= 0");
    if (opts_.lanes > 1) {
        pool_ = std::make_unique<ThreadPool>(opts_.lanes);
    }
}

Executor::~Executor() = default;

void
Executor::clear_plan_cache() const
{
    std::lock_guard<std::mutex> lock(plans_mutex_);
    plans_.clear();
    node_costs_.clear();
}

void
Executor::set_node_costs(const Graph& g, std::vector<double> cost_s) const
{
    BTS_CHECK(cost_s.size() == g.num_nodes(),
              g.name() << ": node cost vector has " << cost_s.size()
                       << " entries for " << g.num_nodes() << " nodes");
    std::lock_guard<std::mutex> lock(plans_mutex_);
    // Same retention policy as the plan cache: uids are never reused,
    // so stale entries only waste memory — drop everything at the cap.
    constexpr std::size_t kMaxCachedCosts = 64;
    if (node_costs_.size() >= kMaxCachedCosts) node_costs_.clear();
    node_costs_[g.uid()] =
        std::make_shared<const std::vector<double>>(std::move(cost_s));
}

std::shared_ptr<const Executor::Plan>
Executor::plan_for(const Graph& g) const
{
    std::lock_guard<std::mutex> lock(plans_mutex_);
    auto it = plans_.find(g.uid());
    if (it != plans_.end()) return it->second;

    // Resolve every evk handle up front: a graph referencing a missing
    // key fails here, before any node has executed.
    auto plan = std::make_unique<Plan>();
    plan->evk.assign(g.num_nodes(), nullptr);
    plan->hoisted.assign(g.num_nodes(), {});
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        switch (n.kind) {
        case OpKind::kHMult:
        case OpKind::kHMultRescale:
            BTS_CHECK(res_.mult_key != nullptr && !res_.mult_key->empty(),
                      g.name() << ": graph needs a mult key");
            plan->evk[i] = res_.mult_key;
            break;
        case OpKind::kHRot: {
            BTS_CHECK(res_.rot_keys != nullptr,
                      g.name() << ": graph needs rotation keys");
            const auto key = res_.rot_keys->find(n.rot_amount);
            BTS_CHECK(key != res_.rot_keys->end(),
                      g.name() << ": missing rotation key "
                               << n.rot_amount);
            plan->evk[i] = &key->second;
            break;
        }
        case OpKind::kHRotHoisted: {
            BTS_CHECK(res_.rot_keys != nullptr,
                      g.name() << ": graph needs rotation keys");
            std::vector<const EvalKey*>& keys = plan->hoisted[i];
            keys.reserve(n.amounts.size());
            for (const int r : n.amounts) {
                const auto key = res_.rot_keys->find(r);
                BTS_CHECK(key != res_.rot_keys->end(),
                          g.name() << ": missing rotation key " << r);
                keys.push_back(&key->second);
            }
            break;
        }
        case OpKind::kConj:
            BTS_CHECK(res_.conj_key != nullptr && !res_.conj_key->empty(),
                      g.name() << ": graph needs a conjugation key");
            plan->evk[i] = res_.conj_key;
            break;
        case OpKind::kBootstrap:
            BTS_CHECK(res_.bootstrapper != nullptr,
                      g.name() << ": graph needs a bootstrapper");
            break;
        case OpKind::kPMult:
        case OpKind::kPMultRescale:
        case OpKind::kPAdd:
        case OpKind::kHAdd:
        case OpKind::kHSub:
        case OpKind::kHRescale:
        case OpKind::kCMult:
        case OpKind::kCMultRescale:
        case OpKind::kCMultAdd:
        case OpKind::kCAdd:
        case OpKind::kModRaise:
            break;
        }
    }
    // Entries for destroyed graphs can never be hit again (uids are
    // never reused), so bound the cache: past the cap, drop everything
    // and rebuild on demand. In-flight runs hold their plan alive.
    constexpr std::size_t kMaxCachedPlans = 64;
    if (plans_.size() >= kMaxCachedPlans) plans_.clear();
    std::shared_ptr<const Plan> shared = std::move(plan);
    plans_.emplace(g.uid(), shared);
    return shared;
}

namespace {

void
check_executed_metadata(const Graph& g, const Node& n,
                        const ValueInfo& info, const Ciphertext& out)
{
    BTS_CHECK(out.level == info.level,
              g.name() << ": " << op_name(n.kind)
                       << " produced level " << out.level
                       << ", metadata says " << info.level);
    // Scales are approximate bookkeeping (rescale divides by the real
    // top prime, not delta) — a loose check that still catches
    // mismatched-operand graph bugs. Bootstrap's output scale depends
    // on the bootstrapper's normalize setting, so it is exempt.
    if (n.kind != OpKind::kBootstrap) {
        BTS_CHECK(std::abs(out.scale / info.scale - 1.0) < 1e-2,
                  g.name() << ": " << op_name(n.kind)
                           << " produced scale " << out.scale
                           << ", metadata says " << info.scale);
    }
}

} // namespace

std::vector<Ciphertext>
Executor::exec_node(const Graph& g, const Plan& plan,
                    std::size_t node_idx, Sched& sched) const
{
    const Node& n = g.node(node_idx);
    // One span per dispatched node, tagged with the output value id and
    // the statically predicted cost (when installed): the raw material
    // for the predicted-vs-measured closure in telemetry/profile.h.
    BTS_TRACE_SPAN_VAR(node_span, kNode, op_name(n.kind));
    node_span.set_level(g.value(n.output).level);
    node_span.set_arg(n.output);
    if (sched.node_costs != nullptr) {
        node_span.set_cost((*sched.node_costs)[node_idx]);
    }
    const auto in_ct = [&](std::size_t slot) -> const Ciphertext& {
        const std::optional<Ciphertext>& v = sched.values[n.inputs[slot]];
        BTS_ASSERT(v.has_value(), "operand not resident");
        return *v;
    };
    const auto in_pt = [&](std::size_t slot) -> const Plaintext& {
        const Plaintext* p = sched.plains[n.inputs[slot]];
        BTS_ASSERT(p != nullptr, "plaintext operand not bound");
        return *p;
    };
    // For in-place ops: steal the operand's storage when this node is
    // its last consumer (the common case on Horner/rescale chains),
    // copy otherwise. Identical math either way, one less O(n x limbs)
    // copy per chain link. uses_left needs sched.m; release_use later
    // balances the live count whether or not the storage was taken.
    const auto take_ct = [&](std::size_t slot) -> Ciphertext {
        const int id = n.inputs[slot];
        std::lock_guard<std::mutex> lock(sched.m);
        std::optional<Ciphertext>& v = sched.values[id];
        BTS_ASSERT(v.has_value(), "operand not resident");
        if (sched.uses_left[id] == 1) {
            Ciphertext taken = std::move(*v);
            v.reset();
            return taken;
        }
        return *v;
    };

    // Constant plaintexts are a fixed per-node operand: encode once
    // per (node, slots, level) and reuse across runs and jobs. Shared
    // by kCMult and its fused variants.
    const auto cmult_plain =
        [&](const Ciphertext& a) -> std::shared_ptr<const Plaintext> {
        const Plan::PlainKey key{node_idx, a.slots, a.level};
        std::shared_ptr<const Plaintext> pt;
        {
            std::lock_guard<std::mutex> lock(plan.plain_mutex);
            auto it = plan.plains.find(key);
            if (it != plan.plains.end()) {
                ++plan.plain_hits;
                pt = it->second;
            }
        }
        if (!pt) {
            pt = std::make_shared<const Plaintext>(
                res_.encoder->encode_scalar(n.constant, a.slots,
                                            g.traits().delta, a.level));
            std::lock_guard<std::mutex> lock(plan.plain_mutex);
            ++plan.plain_misses;
            plan.plains.emplace(key, pt); // first writer wins; ties are
                                          // identical encodings anyway
        }
        return pt;
    };

    const Evaluator& eval = *res_.eval;
    Ciphertext out;
    switch (n.kind) {
    case OpKind::kHMult:
        out = eval.mult(in_ct(0), in_ct(1), *plan.evk[node_idx]);
        break;
    case OpKind::kHMultRescale:
        out = eval.mult_rescale(in_ct(0), in_ct(1), *plan.evk[node_idx]);
        break;
    case OpKind::kHRot: {
        // Single rotations go through the hoisted entry point too:
        // hoisted-single is slightly cheaper than the generic rotate
        // (the decomposition happens before the automorphism), and it
        // makes rotation-CSE grouping bit-exact by construction — a
        // grouped amount produces the identical ciphertext a lone
        // kHRot would have.
        std::vector<Ciphertext> r = eval.rotate_hoisted(
            in_ct(0), {n.rot_amount}, {plan.evk[node_idx]});
        out = std::move(r[0]);
        break;
    }
    case OpKind::kHRotHoisted: {
        std::vector<Ciphertext> outs = eval.rotate_hoisted(
            in_ct(0), n.amounts, plan.hoisted[node_idx]);
        if (opts_.check_metadata) {
            for (std::size_t k = 0; k < outs.size(); ++k) {
                check_executed_metadata(g, n, g.value(n.outputs[k]),
                                        outs[k]);
            }
        }
        return outs;
    }
    case OpKind::kConj:
        out = eval.conjugate(in_ct(0), *plan.evk[node_idx]);
        break;
    case OpKind::kPMult:
        out = eval.mult_plain(in_ct(0), in_pt(1));
        break;
    case OpKind::kPMultRescale:
        out = eval.mult_plain_rescale(in_ct(0), in_pt(1));
        break;
    case OpKind::kPAdd:
        out = eval.add_plain(in_ct(0), in_pt(1));
        break;
    case OpKind::kHAdd:
        out = n.lazy ? eval.add_lazy(in_ct(0), in_ct(1))
                     : eval.add(in_ct(0), in_ct(1));
        break;
    case OpKind::kHSub:
        out = n.lazy ? eval.sub_lazy(in_ct(0), in_ct(1))
                     : eval.sub(in_ct(0), in_ct(1));
        break;
    case OpKind::kHRescale:
        out = take_ct(0);
        eval.rescale_inplace(out);
        break;
    case OpKind::kCMult:
        out = eval.mult_plain(in_ct(0), *cmult_plain(in_ct(0)));
        break;
    case OpKind::kCMultRescale:
        out = eval.mult_plain_rescale(in_ct(0), *cmult_plain(in_ct(0)));
        break;
    case OpKind::kCMultAdd:
        out = eval.mult_plain_add_const(in_ct(0), *cmult_plain(in_ct(0)),
                                        n.constant2);
        break;
    case OpKind::kCAdd:
        out = take_ct(0);
        eval.add_const_inplace(out, n.constant);
        break;
    case OpKind::kModRaise:
        out = eval.mod_raise(in_ct(0));
        break;
    case OpKind::kBootstrap:
        // The refresh discards whatever levels remain: drop to the
        // exhausted state the Bootstrapper expects, stealing the
        // operand's storage when this is its last use.
        out = take_ct(0);
        if (out.level > 0) eval.drop_level_inplace(out, 0);
        out = res_.bootstrapper->bootstrap(out);
        break;
    }

    if (opts_.check_metadata) {
        check_executed_metadata(g, n, g.value(n.output), out);
    }
    std::vector<Ciphertext> outs;
    outs.push_back(std::move(out));
    return outs;
}

void
Executor::finish_node(const Graph& g, std::size_t node_idx,
                      std::vector<Ciphertext> outs, Sched& sched) const
{
    // Caller holds sched.m.
    const Node& n = g.node(node_idx);
    BTS_ASSERT(outs.size() == n.outputs.size(),
               "node produced the wrong number of values");
    for (std::size_t k = 0; k < n.outputs.size(); ++k) {
        sched.value_bytes[n.outputs[k]] = ciphertext_bytes(outs[k]);
        sched.live_bytes += sched.value_bytes[n.outputs[k]];
        sched.values[n.outputs[k]] = std::move(outs[k]);
        ++sched.live;
    }
    sched.stats.peak_live_values =
        std::max(sched.stats.peak_live_values, sched.live);
    sched.stats.peak_live_bytes =
        std::max(sched.stats.peak_live_bytes, sched.live_bytes);
    ++sched.stats.nodes;
    for (const int in : n.inputs) sched.release_use(in);
    for (const int out_id : n.outputs) {
        if (sched.uses_left[out_id] == 0) {
            // Dead code: an output with no consumer and no output mark.
            sched.values[out_id].reset();
            --sched.live;
            sched.live_bytes -= sched.value_bytes[out_id];
        }
        for (const std::size_t consumer : sched.consumers[out_id]) {
            if (--sched.missing[consumer] == 0) {
                sched.ready.push_back(consumer);
            }
        }
    }
    ++sched.done;
}

std::vector<Ciphertext>
Executor::collect_outputs(const Graph& g, Sched& sched) const
{
    std::vector<Ciphertext> outs;
    outs.reserve(g.outputs().size());
    for (const int id : g.outputs()) {
        BTS_ASSERT(sched.values[id].has_value(),
                   "graph output was not produced");
        outs.push_back(std::move(*sched.values[id]));
        sched.values[id].reset();
    }
    return outs;
}

void
Executor::init_sched(const Graph& g, Binding& inputs, Sched& sched) const
{
    const bool check_metadata = opts_.check_metadata;
    const std::size_t num_values = g.num_values();
    sched.num_nodes = g.num_nodes();
    sched.values.resize(num_values);
    sched.plains.assign(num_values, nullptr);
    sched.uses_left.assign(num_values, 0);
    sched.value_bytes.assign(num_values, 0);
    sched.consumers.assign(num_values, {});
    sched.missing.assign(g.num_nodes(), 0);

    for (std::size_t id = 0; id < num_values; ++id) {
        sched.uses_left[id] = g.value(static_cast<int>(id)).num_uses;
    }

    // Bind declared inputs. Every input must be bound (an unused one is
    // legal, but a missing binding is a caller bug worth failing on).
    for (const int id : g.input_ids()) {
        const ValueInfo& info = g.value(id);
        if (info.is_plain) {
            auto it = inputs.plains.find(id);
            BTS_CHECK(it != inputs.plains.end(),
                      g.name() << ": missing plaintext binding for input "
                               << id);
            if (check_metadata) {
                BTS_CHECK(it->second.level >= info.level,
                          g.name() << ": plaintext input " << id
                                   << " bound at level "
                                   << it->second.level
                                   << ", graph needs >= " << info.level);
            }
            sched.plains[id] = &it->second;
            // Plaintexts are borrowed, never refcounted.
            sched.uses_left[id] = 0;
        } else {
            auto it = inputs.ciphers.find(id);
            BTS_CHECK(it != inputs.ciphers.end(),
                      g.name() << ": missing ciphertext binding for input "
                               << id);
            if (check_metadata) {
                BTS_CHECK(it->second.level == info.level,
                          g.name() << ": input " << id << " bound at level "
                                   << it->second.level
                                   << ", graph declares " << info.level);
            }
            sched.value_bytes[id] = ciphertext_bytes(it->second);
            sched.live_bytes += sched.value_bytes[id];
            sched.values[id] = std::move(it->second);
            ++sched.live;
            if (sched.uses_left[id] == 0) {
                // Declared but unused: drop immediately.
                sched.values[id].reset();
                --sched.live;
                sched.live_bytes -= sched.value_bytes[id];
            }
        }
    }
    sched.stats.peak_live_values = sched.live;
    sched.stats.peak_live_bytes = sched.live_bytes;

    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        for (const int in : n.inputs) {
            if (g.value(in).producer >= 0) {
                ++sched.missing[i];
                sched.consumers[in].push_back(i);
            }
        }
        if (sched.missing[i] == 0) sched.ready.push_back(i);
    }
}

std::vector<Ciphertext>
Executor::run(const Graph& g, Binding inputs, ExecStats* stats) const
{
    const std::shared_ptr<const Plan> plan_owner = plan_for(g);
    const Plan& plan = *plan_owner;
    std::shared_ptr<const std::vector<double>> costs_owner;
    {
        std::lock_guard<std::mutex> lock(plans_mutex_);
        auto it = node_costs_.find(g.uid());
        if (it != node_costs_.end()) costs_owner = it->second;
    }
    Sched sched;
    sched.node_costs = costs_owner.get();
    init_sched(g, inputs, sched);
    sched.window = opts_.max_in_flight > 0
                       ? static_cast<std::size_t>(opts_.max_in_flight)
                       : static_cast<std::size_t>(opts_.lanes);

    const auto worker = [&]() {
        for (;;) {
            std::unique_lock<std::mutex> lock(sched.m);
            sched.cv.wait(lock, [&] {
                return sched.error || sched.done == sched.num_nodes ||
                       (!sched.ready.empty() &&
                        sched.in_flight < sched.window);
            });
            if (sched.error || sched.done == sched.num_nodes) return;
            const std::size_t node_idx = sched.ready.front();
            sched.ready.pop_front();
            ++sched.in_flight;
            sched.stats.peak_in_flight =
                std::max(sched.stats.peak_in_flight, sched.in_flight);
            lock.unlock();

            std::vector<Ciphertext> out;
            try {
                out = exec_node(g, plan, node_idx, sched);
            } catch (...) {
                std::lock_guard<std::mutex> guard(sched.m);
                if (!sched.error) sched.error = std::current_exception();
                --sched.in_flight;
                sched.cv.notify_all();
                return;
            }

            lock.lock();
            finish_node(g, node_idx, std::move(out), sched);
            --sched.in_flight;
            sched.cv.notify_all();
        }
    };

    if (pool_) {
        pool_->run(0, static_cast<std::size_t>(opts_.lanes),
                   [&](std::size_t) { worker(); });
    } else {
        worker();
    }

    if (sched.error) std::rethrow_exception(sched.error);
    BTS_ASSERT(sched.done == sched.num_nodes,
               "scheduler finished with unexecuted nodes");
    record_run_metrics(sched.stats);
    if (stats) {
        *stats = sched.stats;
        std::lock_guard<std::mutex> lock(plan.plain_mutex);
        stats->plain_cache_hits = plan.plain_hits;
        stats->plain_cache_misses = plan.plain_misses;
    }
    return collect_outputs(g, sched);
}

std::vector<Ciphertext>
Executor::run_serial(const Graph& g, Binding inputs,
                     ExecStats* stats) const
{
    const std::shared_ptr<const Plan> plan_owner = plan_for(g);
    const Plan& plan = *plan_owner;
    std::shared_ptr<const std::vector<double>> costs_owner;
    {
        std::lock_guard<std::mutex> lock(plans_mutex_);
        auto it = node_costs_.find(g.uid());
        if (it != node_costs_.end()) costs_owner = it->second;
    }
    Sched sched;
    sched.node_costs = costs_owner.get();
    init_sched(g, inputs, sched);
    sched.window = 1;

    // Program order IS a topological order (SSA by construction), so
    // the reference backend is a plain loop over the node list.
    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        BTS_ASSERT(sched.missing[i] == 0,
                   "node order is not topological");
        std::vector<Ciphertext> out = exec_node(g, plan, i, sched);
        std::lock_guard<std::mutex> lock(sched.m);
        sched.stats.peak_in_flight = 1;
        finish_node(g, i, std::move(out), sched);
    }

    record_run_metrics(sched.stats);
    if (stats) {
        *stats = sched.stats;
        std::lock_guard<std::mutex> lock(plan.plain_mutex);
        stats->plain_cache_hits = plan.plain_hits;
        stats->plain_cache_misses = plan.plain_misses;
    }
    return collect_outputs(g, sched);
}

} // namespace bts::runtime
