#include "runtime/graph.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "runtime/analysis/diagnostic.h"

namespace bts::runtime {

const char*
op_name(OpKind kind)
{
    // Exhaustive switch, no default: adding an OpKind without updating
    // this (and kNumOpKinds) is a -Wswitch error under -Werror.
    switch (kind) {
    case OpKind::kHMult: return "HMult";
    case OpKind::kHRot: return "HRot";
    case OpKind::kConj: return "Conj";
    case OpKind::kPMult: return "PMult";
    case OpKind::kPAdd: return "PAdd";
    case OpKind::kHAdd: return "HAdd";
    case OpKind::kHSub: return "HSub";
    case OpKind::kHRescale: return "HRescale";
    case OpKind::kCMult: return "CMult";
    case OpKind::kCAdd: return "CAdd";
    case OpKind::kModRaise: return "ModRaise";
    case OpKind::kBootstrap: return "Bootstrap";
    case OpKind::kHRotHoisted: return "HRotHoisted";
    case OpKind::kHMultRescale: return "HMultRescale";
    case OpKind::kPMultRescale: return "PMultRescale";
    case OpKind::kCMultRescale: return "CMultRescale";
    case OpKind::kCMultAdd: return "CMultAdd";
    }
    panic("unknown OpKind");
}

bool
op_needs_evk(OpKind kind)
{
    switch (kind) {
    case OpKind::kHMult:
    case OpKind::kHRot:
    case OpKind::kConj:
    case OpKind::kBootstrap: // streams many evks via its expansion
    case OpKind::kHRotHoisted:
    case OpKind::kHMultRescale:
        return true;
    case OpKind::kPMult:
    case OpKind::kPAdd:
    case OpKind::kHAdd:
    case OpKind::kHSub:
    case OpKind::kHRescale:
    case OpKind::kCMult:
    case OpKind::kCAdd:
    case OpKind::kModRaise:
    case OpKind::kPMultRescale:
    case OpKind::kCMultRescale:
    case OpKind::kCMultAdd:
        return false;
    }
    panic("unknown OpKind");
}

bool
op_tolerates_lazy_input(OpKind kind)
{
    switch (kind) {
    case OpKind::kHMult:
    case OpKind::kHMultRescale:
    case OpKind::kPMult:
    case OpKind::kPMultRescale:
    case OpKind::kCMult:
    case OpKind::kCMultRescale:
    case OpKind::kCMultAdd:
    case OpKind::kHRot:
    case OpKind::kHRotHoisted:
    case OpKind::kConj:
    case OpKind::kModRaise:
        return true;
    case OpKind::kHAdd: // add_mod debug-asserts canonical inputs
    case OpKind::kHSub:
    case OpKind::kPAdd:
    case OpKind::kCAdd:     // add_const_inplace adds on raw residues
    case OpKind::kHRescale: // centered lift reads canonical residues
    case OpKind::kBootstrap:
        return false;
    }
    panic("unknown OpKind");
}

bool
op_is_composite(OpKind kind)
{
    switch (kind) {
    case OpKind::kHRotHoisted:
    case OpKind::kHMultRescale:
    case OpKind::kPMultRescale:
    case OpKind::kCMultRescale:
    case OpKind::kCMultAdd:
        return true;
    case OpKind::kHMult:
    case OpKind::kHRot:
    case OpKind::kConj:
    case OpKind::kPMult:
    case OpKind::kPAdd:
    case OpKind::kHAdd:
    case OpKind::kHSub:
    case OpKind::kHRescale:
    case OpKind::kCMult:
    case OpKind::kCAdd:
    case OpKind::kModRaise:
    case OpKind::kBootstrap:
        return false;
    }
    panic("unknown OpKind");
}

namespace {

/** Throw a builder validation failure as the same Diagnostic currency
 *  the static verifier emits (rule id, node index, op kind), so "node
 *  231 (hrescale): ..." reads identically whether it was raised while
 *  building the graph or while analyzing it. */
[[noreturn]] void
throw_node_error(const std::string& graph, std::size_t node_idx,
                 const char* rule, const char* op, std::string msg)
{
    analysis::Diagnostic d;
    d.rule = rule;
    d.severity = analysis::Severity::kError;
    d.node = static_cast<int>(node_idx);
    d.op = op;
    d.message = std::move(msg);
    analysis::throw_diagnostic(graph, std::move(d));
}

/** Loose build-time scale agreement (the evaluator enforces the exact
 *  kScaleTolerance at run time; metadata is approximate bookkeeping). */
void
check_scales_close(const std::string& graph, double a, double b,
                   const char* op, std::size_t node_idx)
{
    if (!(a > 0.0 && b > 0.0)) {
        throw_node_error(graph, node_idx, "meta-scale", op,
                         "operand scales must be positive");
    }
    if (!(std::abs(a / b - 1.0) < 1e-3)) {
        std::ostringstream os;
        os << "operand scale metadata differs (" << a << " vs " << b
           << ")";
        throw_node_error(graph, node_idx, "scale-mismatch", op,
                         os.str());
    }
}

} // namespace

u64
GraphUid::next()
{
    static std::atomic<u64> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

Graph::Graph(std::string name, GraphTraits traits)
    : name_(std::move(name)), traits_(traits)
{
    BTS_CHECK(traits_.max_level >= 0, "graph max_level must be >= 0");
    BTS_CHECK(traits_.bootstrap_out_level >= 0 &&
                  traits_.bootstrap_out_level <= traits_.max_level,
              "bootstrap_out_level outside [0, max_level]");
    BTS_CHECK(traits_.delta > 0, "graph delta must be positive");
}

Value
Graph::fresh_value(ValueInfo info)
{
    const int id = static_cast<int>(values_.size());
    values_.push_back(info);
    return Value{id};
}

Value
Graph::input(int level, double scale)
{
    BTS_CHECK(level >= 0 && level <= traits_.max_level,
              "input level outside [0, max_level]");
    BTS_CHECK(scale > 0, "input scale must be positive");
    ValueInfo info;
    info.is_input = true;
    info.level = level;
    info.scale = scale;
    const Value v = fresh_value(info);
    input_ids_.push_back(v.id);
    return v;
}

Value
Graph::plain_input(int level, double scale)
{
    BTS_CHECK(level >= 0 && level <= traits_.max_level,
              "plain input level outside [0, max_level]");
    BTS_CHECK(scale > 0, "plain input scale must be positive");
    ValueInfo info;
    info.is_plain = true;
    info.is_input = true;
    info.level = level;
    info.scale = scale;
    const Value v = fresh_value(info);
    input_ids_.push_back(v.id);
    return v;
}

// Every builder validation failure names the node being built — its
// index and op kind — and carries the violated analysis rule id, so an
// error deep inside a multi-hundred-node application graph reads like
// a verifier diagnostic ("node 231 (hrescale): ..." instead of
// "hrescale: ..."), and catch sites can recover the structured form
// from analysis::VerifyError::diagnostics().
#define BTS_NODE_CHECK(cond, rule, op, msg)                                 \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream bts_node_msg_;                               \
            bts_node_msg_ << msg;                                           \
            throw_node_error(name_, nodes_.size(), (rule), (op),            \
                             bts_node_msg_.str());                          \
        }                                                                   \
    } while (0)

const ValueInfo&
Graph::use_cipher(Value v, const char* op)
{
    BTS_NODE_CHECK(v.valid() && v.id < static_cast<int>(values_.size()),
                   "structure-operand", op,
                   "operand is not a value of this graph");
    ValueInfo& info = values_[v.id];
    BTS_NODE_CHECK(!info.is_plain, "structure-arity", op,
                   "expected a ciphertext operand, value " << v.id
                                                           << " is plain");
    info.num_uses += 1;
    return info;
}

const ValueInfo&
Graph::use_plain(Value v, const char* op)
{
    BTS_NODE_CHECK(v.valid() && v.id < static_cast<int>(values_.size()),
                   "structure-operand", op,
                   "operand is not a value of this graph");
    ValueInfo& info = values_[v.id];
    BTS_NODE_CHECK(info.is_plain, "structure-arity", op,
                   "expected a plaintext operand, value "
                       << v.id << " is a ciphertext");
    info.num_uses += 1;
    return info;
}

Value
Graph::append(Node node, ValueInfo out_info)
{
    out_info.producer = static_cast<int>(nodes_.size());
    const Value out = fresh_value(out_info);
    node.output = out.id;
    node.outputs = {out.id};
    nodes_.push_back(std::move(node));
    return out;
}

Value
Graph::hmult(Value a, Value b)
{
    const ValueInfo& ia = use_cipher(a, "hmult");
    const ValueInfo& ib = use_cipher(b, "hmult");
    Node n;
    n.kind = OpKind::kHMult;
    n.inputs = {a.id, b.id};
    ValueInfo out;
    out.level = std::min(ia.level, ib.level);
    out.scale = ia.scale * ib.scale;
    return append(std::move(n), out);
}

Value
Graph::hadd(Value a, Value b)
{
    const ValueInfo& ia = use_cipher(a, "hadd");
    const ValueInfo& ib = use_cipher(b, "hadd");
    check_scales_close(name_, ia.scale, ib.scale, "hadd", nodes_.size());
    Node n;
    n.kind = OpKind::kHAdd;
    n.inputs = {a.id, b.id};
    ValueInfo out;
    out.level = std::min(ia.level, ib.level);
    out.scale = ia.scale;
    return append(std::move(n), out);
}

Value
Graph::hsub(Value a, Value b)
{
    const ValueInfo& ia = use_cipher(a, "hsub");
    const ValueInfo& ib = use_cipher(b, "hsub");
    check_scales_close(name_, ia.scale, ib.scale, "hsub", nodes_.size());
    Node n;
    n.kind = OpKind::kHSub;
    n.inputs = {a.id, b.id};
    ValueInfo out;
    out.level = std::min(ia.level, ib.level);
    out.scale = ia.scale;
    return append(std::move(n), out);
}

Value
Graph::pmult(Value ct, Value pt)
{
    const ValueInfo& ic = use_cipher(ct, "pmult");
    const ValueInfo& ip = use_plain(pt, "pmult");
    BTS_NODE_CHECK(ip.level >= ic.level, "meta-level", "pmult",
                   "plaintext level " << ip.level
                                      << " below the ciphertext's "
                                      << ic.level);
    Node n;
    n.kind = OpKind::kPMult;
    n.inputs = {ct.id, pt.id};
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale * ip.scale;
    return append(std::move(n), out);
}

Value
Graph::padd(Value ct, Value pt)
{
    const ValueInfo& ic = use_cipher(ct, "padd");
    const ValueInfo& ip = use_plain(pt, "padd");
    BTS_NODE_CHECK(ip.level >= ic.level, "meta-level", "padd",
                   "plaintext level below the ciphertext's");
    check_scales_close(name_, ic.scale, ip.scale, "padd", nodes_.size());
    Node n;
    n.kind = OpKind::kPAdd;
    n.inputs = {ct.id, pt.id};
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale;
    return append(std::move(n), out);
}

Value
Graph::hrot(Value ct, int amount)
{
    const ValueInfo& ic = use_cipher(ct, "hrot");
    BTS_NODE_CHECK(amount != 0, "structure-arity", "hrot",
                   "rotation amount must be nonzero");
    Node n;
    n.kind = OpKind::kHRot;
    n.inputs = {ct.id};
    n.rot_amount = amount;
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale;
    return append(std::move(n), out);
}

Value
Graph::conj(Value ct)
{
    const ValueInfo& ic = use_cipher(ct, "conj");
    uses_conj_ = true;
    Node n;
    n.kind = OpKind::kConj;
    n.inputs = {ct.id};
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale;
    return append(std::move(n), out);
}

Value
Graph::hrescale(Value ct)
{
    const ValueInfo& ic = use_cipher(ct, "hrescale");
    // The graph-level image of TraceBuilder's level-underflow guard:
    // rescaling a level-0 value has no prime left to drop.
    BTS_NODE_CHECK(ic.level >= 1, "level-budget", "hrescale",
                   "operand already at level 0");
    Node n;
    n.kind = OpKind::kHRescale;
    n.inputs = {ct.id};
    ValueInfo out;
    out.level = ic.level - 1;
    out.scale = ic.scale / traits_.delta;
    return append(std::move(n), out);
}

Value
Graph::cmult(Value ct, Complex c)
{
    const ValueInfo& ic = use_cipher(ct, "cmult");
    Node n;
    n.kind = OpKind::kCMult;
    n.inputs = {ct.id};
    n.constant = c;
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale * traits_.delta;
    return append(std::move(n), out);
}

Value
Graph::cadd(Value ct, Complex c)
{
    const ValueInfo& ic = use_cipher(ct, "cadd");
    Node n;
    n.kind = OpKind::kCAdd;
    n.inputs = {ct.id};
    n.constant = c;
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale;
    return append(std::move(n), out);
}

Value
Graph::mod_raise(Value ct)
{
    const ValueInfo& ic = use_cipher(ct, "mod_raise");
    BTS_NODE_CHECK(ic.level == 0, "meta-level", "mod_raise",
                   "expects an exhausted (level-0) value, got level "
                       << ic.level);
    Node n;
    n.kind = OpKind::kModRaise;
    n.inputs = {ct.id};
    ValueInfo out;
    out.level = traits_.max_level;
    out.scale = ic.scale;
    return append(std::move(n), out);
}

Value
Graph::bootstrap(Value ct)
{
    // Unlike mod_raise, bootstrap accepts ANY input level: the refresh
    // discards whatever levels remain (the Executor drops to level 0
    // first; the lowering expands the identical plan either way).
    // Application graphs rely on this to refresh mid-circuit the
    // moment their level budget runs short.
    use_cipher(ct, "bootstrap");
    uses_bootstrap_ = true;
    Node n;
    n.kind = OpKind::kBootstrap;
    n.inputs = {ct.id};
    ValueInfo out;
    out.level = traits_.bootstrap_out_level;
    out.scale = traits_.delta; // refresh lands on the canonical scale
    return append(std::move(n), out);
}

std::vector<Value>
Graph::hrot_hoisted(Value ct, const std::vector<int>& amounts)
{
    // Copy, not reference: fresh_value() below grows the value table,
    // which would invalidate a reference into it mid-loop.
    const ValueInfo ic = use_cipher(ct, "hrot_hoisted");
    BTS_NODE_CHECK(!amounts.empty(), "structure-arity", "hrot_hoisted",
                   "needs at least one rotation amount");
    for (const int r : amounts) {
        BTS_NODE_CHECK(r != 0, "structure-arity", "hrot_hoisted",
                       "rotation amount must be nonzero");
    }
    Node n;
    n.kind = OpKind::kHRotHoisted;
    n.inputs = {ct.id};
    n.amounts = amounts;
    n.output = -1;
    const int producer = static_cast<int>(nodes_.size());
    std::vector<Value> outs;
    outs.reserve(amounts.size());
    for (std::size_t k = 0; k < amounts.size(); ++k) {
        ValueInfo out;
        out.level = ic.level;
        out.scale = ic.scale;
        out.producer = producer;
        const Value v = fresh_value(out);
        n.outputs.push_back(v.id);
        outs.push_back(v);
    }
    n.output = n.outputs[0];
    nodes_.push_back(std::move(n));
    return outs;
}

Value
Graph::hmult_rescale(Value a, Value b)
{
    const ValueInfo& ia = use_cipher(a, "hmult_rescale");
    const ValueInfo& ib = use_cipher(b, "hmult_rescale");
    const int level = std::min(ia.level, ib.level);
    BTS_NODE_CHECK(level >= 1, "level-budget", "hmult_rescale",
                   "operand already at level 0");
    Node n;
    n.kind = OpKind::kHMultRescale;
    n.inputs = {a.id, b.id};
    ValueInfo out;
    out.level = level - 1;
    out.scale = ia.scale * ib.scale / traits_.delta;
    return append(std::move(n), out);
}

Value
Graph::pmult_rescale(Value ct, Value pt)
{
    const ValueInfo& ic = use_cipher(ct, "pmult_rescale");
    const ValueInfo& ip = use_plain(pt, "pmult_rescale");
    BTS_NODE_CHECK(ip.level >= ic.level, "meta-level", "pmult_rescale",
                   "plaintext level " << ip.level
                                      << " below the ciphertext's "
                                      << ic.level);
    BTS_NODE_CHECK(ic.level >= 1, "level-budget", "pmult_rescale",
                   "operand already at level 0");
    Node n;
    n.kind = OpKind::kPMultRescale;
    n.inputs = {ct.id, pt.id};
    ValueInfo out;
    out.level = ic.level - 1;
    out.scale = ic.scale * ip.scale / traits_.delta;
    return append(std::move(n), out);
}

Value
Graph::cmult_rescale(Value ct, Complex c)
{
    const ValueInfo& ic = use_cipher(ct, "cmult_rescale");
    BTS_NODE_CHECK(ic.level >= 1, "level-budget", "cmult_rescale",
                   "operand already at level 0");
    Node n;
    n.kind = OpKind::kCMultRescale;
    n.inputs = {ct.id};
    n.constant = c;
    ValueInfo out;
    out.level = ic.level - 1;
    out.scale = ic.scale; // * delta from the CMult, / delta from the
                          // rescale
    return append(std::move(n), out);
}

Value
Graph::cmult_add(Value ct, Complex mul_c, Complex add_c)
{
    const ValueInfo& ic = use_cipher(ct, "cmult_add");
    Node n;
    n.kind = OpKind::kCMultAdd;
    n.inputs = {ct.id};
    n.constant = mul_c;
    n.constant2 = add_c;
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale * traits_.delta;
    return append(std::move(n), out);
}

void
Graph::mark_output(Value v)
{
    BTS_CHECK(v.valid() && v.id < static_cast<int>(values_.size()),
              "mark_output: not a value of this graph");
    BTS_CHECK(!values_[v.id].is_plain,
              "mark_output: outputs must be ciphertexts");
    BTS_CHECK(std::find(outputs_.begin(), outputs_.end(), v.id) ==
                  outputs_.end(),
              "mark_output: value already marked");
    values_[v.id].num_uses += 1; // outputs stay live through execution
    outputs_.push_back(v.id);
}

void
Graph::mark_lazy(std::size_t node_idx)
{
    BTS_CHECK(node_idx < nodes_.size(),
              "mark_lazy: node index out of range");
    Node& n = nodes_[node_idx];
    if (n.kind != OpKind::kHAdd && n.kind != OpKind::kHSub) {
        throw_node_error(name_, node_idx, "lazy-contract",
                         op_name(n.kind),
                         "only HAdd/HSub can produce lazy residues");
    }
    n.lazy = true;
}

const ValueInfo&
Graph::value(int id) const
{
    BTS_CHECK(id >= 0 && id < static_cast<int>(values_.size()),
              "value id out of range");
    return values_[id];
}

std::vector<int>
Graph::required_rotations() const
{
    std::vector<int> amounts;
    for (const Node& n : nodes_) {
        if (n.kind == OpKind::kHRot) amounts.push_back(n.rot_amount);
        if (n.kind == OpKind::kHRotHoisted) {
            amounts.insert(amounts.end(), n.amounts.begin(),
                           n.amounts.end());
        }
    }
    std::sort(amounts.begin(), amounts.end());
    amounts.erase(std::unique(amounts.begin(), amounts.end()),
                  amounts.end());
    return amounts;
}

int
Graph::count_kind(OpKind kind) const
{
    int n = 0;
    for (const Node& node : nodes_) n += (node.kind == kind);
    return n;
}

std::vector<std::vector<int>>
Graph::value_users() const
{
    std::vector<std::vector<int>> users(values_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        for (const int in : nodes_[i].inputs) {
            users[in].push_back(static_cast<int>(i));
        }
    }
    return users;
}

std::string
Graph::debug_string() const
{
    std::ostringstream oss;
    for (const int id : input_ids_) {
        const ValueInfo& info = values_[id];
        oss << (info.is_plain ? "plain_input" : "input") << " v" << id
            << " L" << info.level << " s" << info.scale << "\n";
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const Node& n = nodes_[i];
        oss << "n" << i << ": " << op_name(n.kind);
        if (n.lazy) oss << "[lazy]";
        if (n.kind == OpKind::kHRot) oss << " by " << n.rot_amount;
        if (!n.amounts.empty()) {
            oss << " by {";
            for (std::size_t k = 0; k < n.amounts.size(); ++k) {
                oss << (k ? "," : "") << n.amounts[k];
            }
            oss << "}";
        }
        if (n.kind == OpKind::kCMult || n.kind == OpKind::kCAdd ||
            n.kind == OpKind::kCMultRescale ||
            n.kind == OpKind::kCMultAdd) {
            oss << " c=(" << n.constant.real() << ","
                << n.constant.imag() << ")";
        }
        if (n.kind == OpKind::kCMultAdd) {
            oss << " c2=(" << n.constant2.real() << ","
                << n.constant2.imag() << ")";
        }
        for (const int in : n.inputs) oss << " v" << in;
        oss << " ->";
        for (const int out : n.outputs) oss << " v" << out;
        oss << "\n";
    }
    oss << "outputs:";
    for (const int id : outputs_) oss << " v" << id;
    oss << "\n";
    return oss.str();
}

} // namespace bts::runtime
