#include "runtime/graph.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"

namespace bts::runtime {

const char*
op_name(OpKind kind)
{
    // Exhaustive switch, no default: adding an OpKind without updating
    // this (and kNumOpKinds) is a -Wswitch error under -Werror.
    switch (kind) {
    case OpKind::kHMult: return "HMult";
    case OpKind::kHRot: return "HRot";
    case OpKind::kConj: return "Conj";
    case OpKind::kPMult: return "PMult";
    case OpKind::kPAdd: return "PAdd";
    case OpKind::kHAdd: return "HAdd";
    case OpKind::kHSub: return "HSub";
    case OpKind::kHRescale: return "HRescale";
    case OpKind::kCMult: return "CMult";
    case OpKind::kCAdd: return "CAdd";
    case OpKind::kModRaise: return "ModRaise";
    case OpKind::kBootstrap: return "Bootstrap";
    }
    panic("unknown OpKind");
}

bool
op_needs_evk(OpKind kind)
{
    switch (kind) {
    case OpKind::kHMult:
    case OpKind::kHRot:
    case OpKind::kConj:
    case OpKind::kBootstrap: // streams many evks via its expansion
        return true;
    case OpKind::kPMult:
    case OpKind::kPAdd:
    case OpKind::kHAdd:
    case OpKind::kHSub:
    case OpKind::kHRescale:
    case OpKind::kCMult:
    case OpKind::kCAdd:
    case OpKind::kModRaise:
        return false;
    }
    panic("unknown OpKind");
}

namespace {

/** Loose build-time scale agreement (the evaluator enforces the exact
 *  kScaleTolerance at run time; metadata is approximate bookkeeping). */
void
check_scales_close(double a, double b, const char* op)
{
    BTS_CHECK(a > 0.0 && b > 0.0,
              op << ": operand scales must be positive");
    BTS_CHECK(std::abs(a / b - 1.0) < 1e-3,
              op << ": operand scale metadata differs (" << a << " vs "
                 << b << ")");
}

} // namespace

u64
GraphUid::next()
{
    static std::atomic<u64> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

Graph::Graph(std::string name, GraphTraits traits)
    : name_(std::move(name)), traits_(traits)
{
    BTS_CHECK(traits_.max_level >= 0, "graph max_level must be >= 0");
    BTS_CHECK(traits_.bootstrap_out_level >= 0 &&
                  traits_.bootstrap_out_level <= traits_.max_level,
              "bootstrap_out_level outside [0, max_level]");
    BTS_CHECK(traits_.delta > 0, "graph delta must be positive");
}

Value
Graph::fresh_value(ValueInfo info)
{
    const int id = static_cast<int>(values_.size());
    values_.push_back(info);
    return Value{id};
}

Value
Graph::input(int level, double scale)
{
    BTS_CHECK(level >= 0 && level <= traits_.max_level,
              "input level outside [0, max_level]");
    BTS_CHECK(scale > 0, "input scale must be positive");
    ValueInfo info;
    info.is_input = true;
    info.level = level;
    info.scale = scale;
    const Value v = fresh_value(info);
    input_ids_.push_back(v.id);
    return v;
}

Value
Graph::plain_input(int level, double scale)
{
    BTS_CHECK(level >= 0 && level <= traits_.max_level,
              "plain input level outside [0, max_level]");
    BTS_CHECK(scale > 0, "plain input scale must be positive");
    ValueInfo info;
    info.is_plain = true;
    info.is_input = true;
    info.level = level;
    info.scale = scale;
    const Value v = fresh_value(info);
    input_ids_.push_back(v.id);
    return v;
}

const ValueInfo&
Graph::use_cipher(Value v, const char* op)
{
    BTS_CHECK(v.valid() && v.id < static_cast<int>(values_.size()),
              op << ": operand is not a value of this graph");
    ValueInfo& info = values_[v.id];
    BTS_CHECK(!info.is_plain, op << ": expected a ciphertext operand");
    info.num_uses += 1;
    return info;
}

const ValueInfo&
Graph::use_plain(Value v, const char* op)
{
    BTS_CHECK(v.valid() && v.id < static_cast<int>(values_.size()),
              op << ": operand is not a value of this graph");
    ValueInfo& info = values_[v.id];
    BTS_CHECK(info.is_plain, op << ": expected a plaintext operand");
    info.num_uses += 1;
    return info;
}

Value
Graph::append(Node node, ValueInfo out_info)
{
    out_info.producer = static_cast<int>(nodes_.size());
    const Value out = fresh_value(out_info);
    node.output = out.id;
    nodes_.push_back(std::move(node));
    return out;
}

Value
Graph::hmult(Value a, Value b)
{
    const ValueInfo& ia = use_cipher(a, "hmult");
    const ValueInfo& ib = use_cipher(b, "hmult");
    Node n;
    n.kind = OpKind::kHMult;
    n.inputs = {a.id, b.id};
    ValueInfo out;
    out.level = std::min(ia.level, ib.level);
    out.scale = ia.scale * ib.scale;
    return append(std::move(n), out);
}

Value
Graph::hadd(Value a, Value b)
{
    const ValueInfo& ia = use_cipher(a, "hadd");
    const ValueInfo& ib = use_cipher(b, "hadd");
    check_scales_close(ia.scale, ib.scale, "hadd");
    Node n;
    n.kind = OpKind::kHAdd;
    n.inputs = {a.id, b.id};
    ValueInfo out;
    out.level = std::min(ia.level, ib.level);
    out.scale = ia.scale;
    return append(std::move(n), out);
}

Value
Graph::hsub(Value a, Value b)
{
    const ValueInfo& ia = use_cipher(a, "hsub");
    const ValueInfo& ib = use_cipher(b, "hsub");
    check_scales_close(ia.scale, ib.scale, "hsub");
    Node n;
    n.kind = OpKind::kHSub;
    n.inputs = {a.id, b.id};
    ValueInfo out;
    out.level = std::min(ia.level, ib.level);
    out.scale = ia.scale;
    return append(std::move(n), out);
}

Value
Graph::pmult(Value ct, Value pt)
{
    const ValueInfo& ic = use_cipher(ct, "pmult");
    const ValueInfo& ip = use_plain(pt, "pmult");
    BTS_CHECK(ip.level >= ic.level,
              "pmult: plaintext level " << ip.level
                                        << " below the ciphertext's "
                                        << ic.level);
    Node n;
    n.kind = OpKind::kPMult;
    n.inputs = {ct.id, pt.id};
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale * ip.scale;
    return append(std::move(n), out);
}

Value
Graph::padd(Value ct, Value pt)
{
    const ValueInfo& ic = use_cipher(ct, "padd");
    const ValueInfo& ip = use_plain(pt, "padd");
    BTS_CHECK(ip.level >= ic.level,
              "padd: plaintext level below the ciphertext's");
    check_scales_close(ic.scale, ip.scale, "padd");
    Node n;
    n.kind = OpKind::kPAdd;
    n.inputs = {ct.id, pt.id};
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale;
    return append(std::move(n), out);
}

Value
Graph::hrot(Value ct, int amount)
{
    const ValueInfo& ic = use_cipher(ct, "hrot");
    BTS_CHECK(amount != 0, "hrot: rotation amount must be nonzero");
    Node n;
    n.kind = OpKind::kHRot;
    n.inputs = {ct.id};
    n.rot_amount = amount;
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale;
    return append(std::move(n), out);
}

Value
Graph::conj(Value ct)
{
    const ValueInfo& ic = use_cipher(ct, "conj");
    uses_conj_ = true;
    Node n;
    n.kind = OpKind::kConj;
    n.inputs = {ct.id};
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale;
    return append(std::move(n), out);
}

Value
Graph::hrescale(Value ct)
{
    const ValueInfo& ic = use_cipher(ct, "hrescale");
    // The graph-level image of TraceBuilder's level-underflow guard:
    // rescaling a level-0 value has no prime left to drop.
    BTS_CHECK(ic.level >= 1, "hrescale: operand already at level 0");
    Node n;
    n.kind = OpKind::kHRescale;
    n.inputs = {ct.id};
    ValueInfo out;
    out.level = ic.level - 1;
    out.scale = ic.scale / traits_.delta;
    return append(std::move(n), out);
}

Value
Graph::cmult(Value ct, Complex c)
{
    const ValueInfo& ic = use_cipher(ct, "cmult");
    Node n;
    n.kind = OpKind::kCMult;
    n.inputs = {ct.id};
    n.constant = c;
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale * traits_.delta;
    return append(std::move(n), out);
}

Value
Graph::cadd(Value ct, Complex c)
{
    const ValueInfo& ic = use_cipher(ct, "cadd");
    Node n;
    n.kind = OpKind::kCAdd;
    n.inputs = {ct.id};
    n.constant = c;
    ValueInfo out;
    out.level = ic.level;
    out.scale = ic.scale;
    return append(std::move(n), out);
}

Value
Graph::mod_raise(Value ct)
{
    const ValueInfo& ic = use_cipher(ct, "mod_raise");
    BTS_CHECK(ic.level == 0,
              "mod_raise: expects an exhausted (level-0) value, got level "
                  << ic.level);
    Node n;
    n.kind = OpKind::kModRaise;
    n.inputs = {ct.id};
    ValueInfo out;
    out.level = traits_.max_level;
    out.scale = ic.scale;
    return append(std::move(n), out);
}

Value
Graph::bootstrap(Value ct)
{
    // Unlike mod_raise, bootstrap accepts ANY input level: the refresh
    // discards whatever levels remain (the Executor drops to level 0
    // first; the lowering expands the identical plan either way).
    // Application graphs rely on this to refresh mid-circuit the
    // moment their level budget runs short.
    use_cipher(ct, "bootstrap");
    uses_bootstrap_ = true;
    Node n;
    n.kind = OpKind::kBootstrap;
    n.inputs = {ct.id};
    ValueInfo out;
    out.level = traits_.bootstrap_out_level;
    out.scale = traits_.delta; // refresh lands on the canonical scale
    return append(std::move(n), out);
}

void
Graph::mark_output(Value v)
{
    BTS_CHECK(v.valid() && v.id < static_cast<int>(values_.size()),
              "mark_output: not a value of this graph");
    BTS_CHECK(!values_[v.id].is_plain,
              "mark_output: outputs must be ciphertexts");
    BTS_CHECK(std::find(outputs_.begin(), outputs_.end(), v.id) ==
                  outputs_.end(),
              "mark_output: value already marked");
    values_[v.id].num_uses += 1; // outputs stay live through execution
    outputs_.push_back(v.id);
}

const ValueInfo&
Graph::value(int id) const
{
    BTS_CHECK(id >= 0 && id < static_cast<int>(values_.size()),
              "value id out of range");
    return values_[id];
}

std::vector<int>
Graph::required_rotations() const
{
    std::vector<int> amounts;
    for (const Node& n : nodes_) {
        if (n.kind == OpKind::kHRot) amounts.push_back(n.rot_amount);
    }
    std::sort(amounts.begin(), amounts.end());
    amounts.erase(std::unique(amounts.begin(), amounts.end()),
                  amounts.end());
    return amounts;
}

int
Graph::count_kind(OpKind kind) const
{
    int n = 0;
    for (const Node& node : nodes_) n += (node.kind == kind);
    return n;
}

} // namespace bts::runtime
