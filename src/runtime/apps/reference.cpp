#include "runtime/apps/reference.h"

#include "common/check.h"

namespace bts::runtime::apps {

std::vector<SlotVec>
reference_run(const Graph& g, const std::map<int, SlotVec>& inputs)
{
    std::vector<SlotVec> values(g.num_values());
    std::size_t slots = 0;
    for (const int id : g.input_ids()) {
        const auto it = inputs.find(id);
        BTS_CHECK(it != inputs.end(),
                  g.name() << ": reference_run missing input " << id);
        if (slots == 0) slots = it->second.size();
        BTS_CHECK(!it->second.empty() && it->second.size() == slots,
                  g.name() << ": reference input " << id
                           << " has mismatched slot count");
        values[id] = it->second;
    }
    BTS_CHECK(slots > 0, g.name() << ": graph declares no inputs");

    const auto rotated = [&](const SlotVec& in, int amount) {
        const int n = static_cast<int>(slots);
        const int r = ((amount % n) + n) % n;
        SlotVec out(slots);
        for (int i = 0; i < n; ++i) out[i] = in[(i + r) % n];
        return out;
    };

    for (std::size_t i = 0; i < g.num_nodes(); ++i) {
        const Node& n = g.node(i);
        const auto& in0 = values[n.inputs[0]];
        SlotVec out;
        switch (n.kind) {
        case OpKind::kHMult:
        case OpKind::kPMult:
        case OpKind::kHMultRescale:
        case OpKind::kPMultRescale: {
            const auto& in1 = values[n.inputs[1]];
            out.resize(slots);
            for (std::size_t s = 0; s < slots; ++s) out[s] = in0[s] * in1[s];
            break;
        }
        case OpKind::kHAdd:
        case OpKind::kPAdd: {
            const auto& in1 = values[n.inputs[1]];
            out.resize(slots);
            for (std::size_t s = 0; s < slots; ++s) out[s] = in0[s] + in1[s];
            break;
        }
        case OpKind::kHSub: {
            const auto& in1 = values[n.inputs[1]];
            out.resize(slots);
            for (std::size_t s = 0; s < slots; ++s) out[s] = in0[s] - in1[s];
            break;
        }
        case OpKind::kHRot:
            out = rotated(in0, n.rot_amount);
            break;
        case OpKind::kHRotHoisted:
            for (std::size_t k = 0; k < n.amounts.size(); ++k) {
                values[n.outputs[k]] = rotated(in0, n.amounts[k]);
            }
            continue; // outputs already written
        case OpKind::kCMultAdd:
            out.resize(slots);
            for (std::size_t s = 0; s < slots; ++s) {
                out[s] = in0[s] * n.constant + n.constant2;
            }
            break;
        case OpKind::kConj:
            out.resize(slots);
            for (std::size_t s = 0; s < slots; ++s) out[s] = std::conj(in0[s]);
            break;
        case OpKind::kCMult:
        case OpKind::kCMultRescale:
            out.resize(slots);
            for (std::size_t s = 0; s < slots; ++s) out[s] = in0[s] * n.constant;
            break;
        case OpKind::kCAdd:
            out.resize(slots);
            for (std::size_t s = 0; s < slots; ++s) out[s] = in0[s] + n.constant;
            break;
        case OpKind::kHRescale:
        case OpKind::kModRaise:
        case OpKind::kBootstrap:
            out = in0; // value-preserving in message space
            break;
        }
        values[n.output] = std::move(out);
    }

    std::vector<SlotVec> outs;
    outs.reserve(g.outputs().size());
    for (const int id : g.outputs()) outs.push_back(values[id]);
    return outs;
}

} // namespace bts::runtime::apps
