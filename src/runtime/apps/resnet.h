/**
 * @file
 * ResNet-20-style packed-convolution inference as a runtime graph
 * (Table 6 app) — the serving harness's encrypted-inference scenario.
 *
 * Per layer (channel packing in the style of [50]):
 *   - conv_steps x: `conv_taps` rotated taps, each PMult'd by a weight
 *     plaintext, summed as a product tree (all taps at delta^2), one
 *     rescale — convolution-as-LinearTransform, 1 level per step;
 *   - bn_steps x: folded BatchNorm scalar multiply-add, 1 level each;
 *   - relu_steps x: squaring-dominated polynomial activation
 *     (act <- act^2 [+ shift]), 1 level each;
 * then a rotation log-tree average pool and a final FC PMult.
 *
 * The builder inserts a Bootstrap whenever the level budget runs
 * short, with the exact ensure() rule of the hand-written
 * workloads::resnet20 generator; the paper() configuration is pinned
 * against it (op histogram + bootstrap count — the Table 6 bootstrap
 * counts 53/22/19 — in tests/runtime/test_apps_pin.cpp). Structural
 * edits must be mirrored there.
 */
#pragma once

#include <vector>

#include "runtime/graph.h"

namespace bts::runtime::apps {

struct ResnetConfig
{
    int layers = 20;
    int conv_steps = 3;  //!< conv bursts per layer, 1 level each
    int bn_steps = 2;    //!< folded-BN multiply-adds per layer
    int relu_steps = 14; //!< activation-polynomial squarings per layer
    int pool_rots = 6;   //!< final pooling tree depth
    int conv_taps = 6;   //!< rotated taps per conv burst
    double bn_scale = 0.9;
    double bn_shift = 0.01;
    double relu_shift = 0.2; //!< CAdd on even relu steps
    /** Run the pass pipeline on the built graph (handles remapped);
     *  the Table 6 trace-pin tests set this false. */
    bool optimize = true;

    /** Table 6 scale: the exact workloads::resnet20 configuration. */
    static ResnetConfig paper();
    /** Small functional scale with contractive dynamics (activations
     *  stay in [0, 0.5] so repeated squaring cannot blow up). */
    static ResnetConfig functional();
};

struct ResnetApp
{
    Graph graph;
    Value act; //!< ct input @ traits.bootstrap_out_level
    /** Per-layer conv tap weight plaintexts [layer][tap], shared by
     *  that layer's conv steps. */
    std::vector<std::vector<Value>> taps;
    Value pool_weights; //!< final FC plaintext
    /** Each layer's output activation, marked as a graph output ahead
     *  of the final logits — this is what gives the documented
     *  per-layer max |HE - plain| accuracy column its data. */
    std::vector<Value> layer_outputs;
};

/** Build the inference graph; throws std::invalid_argument when even
 *  one 1-level burst cannot fit the refreshed budget. */
ResnetApp build_resnet(const ResnetConfig& cfg, const GraphTraits& traits);

} // namespace bts::runtime::apps
