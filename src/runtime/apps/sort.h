/**
 * @file
 * Encrypted bitonic sorting as a runtime graph (Table 6 app).
 *
 * Sorts independent blocks of 2^log_elements values packed
 * consecutively in the slots, every block ascending, via the 2-way
 * bitonic network's k(k+1)/2 masked compare-exchange stages. Per
 * stage, for slot i with partner at distance d:
 *
 *   partner = mask_lo * rot(v,+d) + mask_hi * rot(v,-d)
 *   s = v + partner;  dif = v - partner
 *   sg = sign(dif/2)   -- sign_rounds iterations of the composite-
 *                         minimax g-kernel g(x) = 1.5x - 0.5x^3 [42]
 *   v' = 0.5*s + select * (sg * dif)    (select = +-0.5 direction
 *                                        mask: -0.5 keeps the min)
 *
 * The sign iterate refreshes independently mid-polynomial; entry and
 * select refreshes follow the hand-written workloads::sorting
 * generator's level rules exactly — the paper() configuration is
 * pinned against it (op histogram + bootstrap count) in
 * tests/runtime/test_apps_pin.cpp. Structural edits must be mirrored
 * there.
 *
 * Exactness: on inputs drawn from the grid {-0.75,-0.25,0.25,0.75}
 * the sign polynomial saturates to +-1 within ~4e-4, so rounding the
 * decrypted output back to the grid reproduces the exact sorted order
 * (the documented accuracy methodology for Table 6's sorting row).
 */
#pragma once

#include <vector>

#include "runtime/graph.h"

namespace bts::runtime::apps {

struct SortConfig
{
    int log_elements = 14; //!< block size 2^k, k(k+1)/2 stages
    int sign_rounds = 8;   //!< g-kernel iterations per comparison
    /** Run the pass pipeline on the built graph (handles remapped);
     *  the Table 6 trace-pin tests set this false. */
    bool optimize = true;

    /** Table 6 scale: the exact workloads::sorting configuration. */
    static SortConfig paper();
    /** Functional scale: blocks of 4 values, enough sign rounds to
     *  saturate on grid-spaced inputs. */
    static SortConfig functional();
};

struct SortApp
{
    /** Per-stage plaintext mask handles (bind with the helpers
     *  below, using the stage's recorded distance / phase). */
    struct Stage
    {
        int phase = 0;    //!< bitonic phase j (direction bit)
        int distance = 0; //!< partner distance d
        Value mask_lo;    //!< selects rot(v,+d) where (i & d) == 0
        Value mask_hi;    //!< selects rot(v,-d) on the complement
        Value select;     //!< +-0.5 direction mask
    };

    Graph graph;
    Value values; //!< ct input @ traits.bootstrap_out_level
    std::vector<Stage> stages;
};

/** Build the sorting graph; throws std::invalid_argument when the
 *  refreshed budget cannot fit a compare-exchange stage. */
SortApp build_sort(const SortConfig& cfg, const GraphTraits& traits);

/** @return mask_lo for a stage: 1 at slots whose block-local index
 *  has bit d clear (their partner sits at +d), else 0. */
std::vector<Complex> sort_mask_lo(int log_elements, int distance,
                                  std::size_t slots);
/** Complement of sort_mask_lo (partner at -d). */
std::vector<Complex> sort_mask_hi(int log_elements, int distance,
                                  std::size_t slots);
/** The +-0.5 select mask: -0.5 where the slot keeps the pair minimum
 *  (ascending blocks; descending sub-runs flip via @p phase's
 *  direction bit). */
std::vector<Complex> sort_select_mask(int log_elements, int phase,
                                      int distance, std::size_t slots);

} // namespace bts::runtime::apps
