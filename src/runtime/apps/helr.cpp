#include "runtime/apps/helr.h"

#include "common/check.h"
#include "runtime/passes/pass_manager.h"

namespace bts::runtime::apps {

HelrConfig
HelrConfig::paper()
{
    return HelrConfig{}; // defaults == workloads::helr constants
}

HelrConfig
HelrConfig::functional()
{
    HelrConfig cfg;
    cfg.iterations = 3;
    cfg.data_cts = 2;
    cfg.log_features = 6; // 2^6 == the 64-slot test instance's slots
    return cfg;
}

HelrApp
build_helr(const HelrConfig& cfg, const GraphTraits& traits)
{
    BTS_CHECK(cfg.iterations >= 1, "helr: needs at least one iteration");
    BTS_CHECK(cfg.data_cts >= 1, "helr: needs at least one data ct");
    BTS_CHECK(cfg.log_features >= 0, "helr: negative rotation depth");
    BTS_CHECK(traits.bootstrap_out_level >= kHelrIterLevels + 1,
              "helr: one iteration spends " << kHelrIterLevels
                  << " levels; the instance refreshes to only "
                  << traits.bootstrap_out_level
                  << " usable levels (level budget exhausted)");

    Graph g("helr_app", traits);
    Value w = g.input(traits.bootstrap_out_level, traits.delta);
    const Value w_in = w; // the handle callers bind (w is rebound below)
    std::vector<Value> data;
    for (int c = 0; c < cfg.data_cts; ++c) {
        data.push_back(g.plain_input(traits.max_level, traits.delta));
    }
    const Value gd = g.plain_input(traits.max_level, traits.delta);

    for (int iter = 0; iter < cfg.iterations; ++iter) {
        if (g.value(w.id).level < kHelrIterLevels + 1) {
            w = g.bootstrap(w); // refresh the model state
        }
        // Inner products <w, X_c>: PMult + rotation log-tree sums.
        std::vector<Value> partials;
        for (int c = 0; c < cfg.data_cts; ++c) {
            Value acc = g.pmult(w, data[c]);
            for (int r = 0; r < cfg.log_features; ++r) {
                acc = g.hadd(acc, g.hrot(acc, 1 << r));
            }
            partials.push_back(acc);
        }
        Value u = partials[0];
        for (int c = 1; c < cfg.data_cts; ++c) {
            u = g.hadd(u, partials[c]);
        }
        u = g.hrescale(u);

        // Degree-3 sigmoid as u * (c3 u^2 + c1) + 0.5.
        const Value u2 = g.hrescale(g.hmult(u, u));
        // CAdd rides after the rescale: the functional evaluator
        // encodes add-constants at the ciphertext scale, and delta^2
        // overflows its 62-bit integer constant path.
        const Value t = g.cadd(g.hrescale(g.cmult(u2, cfg.c3)), cfg.c1);
        const Value sig = g.cadd(g.hrescale(g.hmult(t, u)), 0.5);

        // Gradient step; the learning rate rides in the plaintext.
        const Value v = g.hrescale(g.pmult(sig, gd));
        w = g.hadd(w, v);
    }
    g.mark_output(w);

    HelrApp app{std::move(g), w_in, std::move(data), gd};
    if (cfg.optimize) {
        passes::OptimizeResult r = passes::PassManager().optimize(app.graph);
        app.weights = r.remap(app.weights);
        for (Value& d : app.data) d = r.remap(d);
        app.grad_data = r.remap(app.grad_data);
        app.graph = std::move(r.graph);
    }
    return app;
}

} // namespace bts::runtime::apps
