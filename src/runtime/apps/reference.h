/**
 * @file
 * Slot-level plaintext reference interpreter for runtime graphs.
 *
 * Executes a Graph's arithmetic on plain std::vector<Complex> slot
 * vectors: every op kind maps to its exact message-space semantics
 * (HMult/PMult/CMult = slot-wise product, HRot = cyclic left shift,
 * HSub = difference, ...) while the scale/level plumbing ops
 * (HRescale, ModRaise, Bootstrap) are the identity — in message space
 * a rescale or refresh changes the representation, not the value.
 *
 * This is the accuracy oracle for the application workloads
 * (runtime/apps/{helr,resnet,sort}.h): the functional Executor's
 * decrypted outputs must match reference_run() on the same graph and
 * input vectors to within the CKKS noise + bootstrap-approximation
 * budget documented per app in docs/APPLICATIONS.md.
 */
#pragma once

#include <map>
#include <vector>

#include "runtime/graph.h"

namespace bts::runtime::apps {

using SlotVec = std::vector<Complex>;

/**
 * Run @p g slot-wise on plaintext vectors. @p inputs maps every
 * declared input value id (ciphertext AND plaintext inputs alike) to
 * its slot vector; all vectors must have the same nonzero length.
 * Returns the marked outputs in mark order.
 */
std::vector<SlotVec> reference_run(const Graph& g,
                                   const std::map<int, SlotVec>& inputs);

} // namespace bts::runtime::apps
