/**
 * @file
 * HELR logistic-regression training as a runtime graph (Table 5 app).
 *
 * One training iteration over `data_cts` packed feature plaintexts:
 *
 *   u   = sum_c <w, X_c>        PMult + rotation log-tree inner products
 *   s   = 0.5 + c1 u + c3 u^3   degree-3 minimax sigmoid
 *   w  += s * G                 gradient step (G = lr * batch-mean
 *                               feature plaintext, lr pre-folded)
 *
 * which spends kHelrIterLevels multiplicative levels; the builder
 * inserts a Bootstrap whenever the weights' level budget runs short —
 * the same ensure() rule as the hand-written workloads::helr
 * generator, which this graph is pinned against (op histogram +
 * bootstrap count, tests/runtime/test_apps_pin.cpp). Structural edits
 * must be mirrored there.
 *
 * Packing: slot j of the weight ciphertext holds w_j; the rotation
 * tree sums windows of 2^log_features slots, so with log_features ==
 * log2(slots) every slot of u carries the full inner product.
 */
#pragma once

#include <vector>

#include "runtime/graph.h"

namespace bts::runtime::apps {

/** Levels one HELR iteration consumes (mirror of workloads::helr's
 *  kLevelsPerIter — the pin breaks if they diverge). */
inline constexpr int kHelrIterLevels = 5;

struct HelrConfig
{
    int iterations = 30;
    int data_cts = 3;     //!< packed feature plaintexts per batch
    int log_features = 8; //!< rotation-tree depth (2^k-slot windows)
    double c1 = 0.15012;  //!< sigmoid linear coefficient
    double c3 = -0.001593; //!< sigmoid cubic coefficient
    /** Run the pass pipeline (runtime/passes/) on the built graph; the
     *  returned handles are already remapped. The Table 5 trace-pin
     *  tests set this false — the pin contract is against the raw
     *  builder form, which the passes rewrite (fused kinds, grouped
     *  rotations) without changing what it computes. */
    bool optimize = true;

    /** Table 5 scale: the exact workloads::helr configuration. */
    static HelrConfig paper();
    /** Small functional scale for executor tests and benches
     *  (full-slot reduction on a 64-slot test instance). */
    static HelrConfig functional();
};

/** The built graph plus the input handles a caller must bind. */
struct HelrApp
{
    Graph graph;
    Value weights;           //!< ct input @ traits.bootstrap_out_level
    std::vector<Value> data; //!< plaintext X_c, reused every iteration
    Value grad_data;         //!< plaintext G = lr * batch-mean features
};

/** Build the training graph. Throws std::invalid_argument when the
 *  instance's usable levels cannot fit one iteration (level-budget
 *  exhaustion is a build-time error, never a bad decrypt). */
HelrApp build_helr(const HelrConfig& cfg, const GraphTraits& traits);

} // namespace bts::runtime::apps
