#include "runtime/apps/sort.h"

#include <functional>

#include "common/check.h"
#include "runtime/passes/pass_manager.h"

namespace bts::runtime::apps {

SortConfig
SortConfig::paper()
{
    return SortConfig{}; // defaults == workloads::sorting constants
}

SortConfig
SortConfig::functional()
{
    SortConfig cfg;
    cfg.log_elements = 2;
    cfg.sign_rounds = 6; // |g^(6)(x) - sign(x)| < 4e-4 on |x| >= 0.25
    return cfg;
}

SortApp
build_sort(const SortConfig& cfg, const GraphTraits& traits)
{
    BTS_CHECK(cfg.log_elements >= 1, "sort: needs blocks of >= 2");
    BTS_CHECK(cfg.sign_rounds >= 1, "sort: needs a sign iteration");
    BTS_CHECK(traits.bootstrap_out_level >= 4,
              "sort: a compare-exchange stage needs 4 usable levels "
              "after a refresh, the instance provides "
                  << traits.bootstrap_out_level
                  << " (level budget exhausted)");

    Graph g("sort_app", traits);
    Value v = g.input(traits.bootstrap_out_level, traits.delta);
    const Value v_in = v; // the handle callers bind (v is rebound below)
    std::vector<SortApp::Stage> stages;

    for (int phase = 1; phase <= cfg.log_elements; ++phase) {
        for (int sub = phase - 1; sub >= 0; --sub) {
            const int d = 1 << sub;
            SortApp::Stage st;
            st.phase = phase;
            st.distance = d;
            st.mask_lo = g.plain_input(traits.max_level, traits.delta);
            st.mask_hi = g.plain_input(traits.max_level, traits.delta);
            st.select = g.plain_input(traits.max_level, traits.delta);

            // Entry refresh: front end burns 2 levels, the select path
            // 2 more below the sign output (see workloads::sorting).
            if (g.value(v.id).level < 4) v = g.bootstrap(v);
            const Value p1 = g.hrot(v, d);
            const Value p2 = g.hrot(v, -d);
            const Value partner = g.hrescale(
                g.hadd(g.pmult(p1, st.mask_lo), g.pmult(p2, st.mask_hi)));
            const Value s = g.hadd(v, partner);
            const Value dif = g.hsub(v, partner);
            Value sg = g.hrescale(g.cmult(dif, 0.5));

            for (int round = 0; round < cfg.sign_rounds; ++round) {
                if (g.value(sg.id).level < 4) {
                    sg = g.bootstrap(sg); // mid-polynomial refresh
                }
                const Value m = g.hrescale(g.hmult(sg, sg));
                // CAdd after the rescale (delta^2-scale constants
                // overflow the evaluator's constant encoding).
                const Value t =
                    g.cadd(g.hrescale(g.cmult(m, -0.5)), 1.5);
                sg = g.hrescale(g.hmult(t, sg));
            }
            if (g.value(sg.id).level < 3) sg = g.bootstrap(sg);

            // Select: v' = 0.5*s + select * (sg * dif).
            const Value w1 = g.hrescale(g.cmult(s, 0.5));
            const Value u = g.hrescale(g.hmult(sg, dif));
            const Value w2 = g.hrescale(g.pmult(u, st.select));
            v = g.hadd(w1, w2);
            stages.push_back(st);
        }
    }
    g.mark_output(v);

    SortApp app{std::move(g), v_in, std::move(stages)};
    if (cfg.optimize) {
        passes::OptimizeResult r = passes::PassManager().optimize(app.graph);
        app.values = r.remap(app.values);
        for (SortApp::Stage& st : app.stages) {
            st.mask_lo = r.remap(st.mask_lo);
            st.mask_hi = r.remap(st.mask_hi);
            st.select = r.remap(st.select);
        }
        app.graph = std::move(r.graph);
    }
    return app;
}

namespace {

std::vector<Complex>
make_mask(int log_elements, std::size_t slots,
          const std::function<double(int)>& f)
{
    const int block = 1 << log_elements;
    BTS_CHECK(slots % static_cast<std::size_t>(block) == 0,
              "sort: slots must be a multiple of the block size");
    std::vector<Complex> mask(slots);
    for (std::size_t i = 0; i < slots; ++i) {
        mask[i] = Complex(f(static_cast<int>(i) & (block - 1)), 0.0);
    }
    return mask;
}

} // namespace

std::vector<Complex>
sort_mask_lo(int log_elements, int distance, std::size_t slots)
{
    return make_mask(log_elements, slots, [distance](int il) {
        return (il & distance) == 0 ? 1.0 : 0.0;
    });
}

std::vector<Complex>
sort_mask_hi(int log_elements, int distance, std::size_t slots)
{
    return make_mask(log_elements, slots, [distance](int il) {
        return (il & distance) == 0 ? 0.0 : 1.0;
    });
}

std::vector<Complex>
sort_select_mask(int log_elements, int phase, int distance,
                 std::size_t slots)
{
    return make_mask(
        log_elements, slots, [phase, distance](int il) {
            const bool lower = (il & distance) == 0;
            const bool ascending = (il & (1 << phase)) == 0;
            const double e =
                (lower ? -1.0 : 1.0) * (ascending ? 1.0 : -1.0);
            return 0.5 * e;
        });
}

} // namespace bts::runtime::apps
