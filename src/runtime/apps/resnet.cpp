#include "runtime/apps/resnet.h"

#include "common/check.h"
#include "runtime/passes/pass_manager.h"

namespace bts::runtime::apps {

ResnetConfig
ResnetConfig::paper()
{
    return ResnetConfig{}; // defaults == workloads::resnet20 constants
}

ResnetConfig
ResnetConfig::functional()
{
    ResnetConfig cfg;
    cfg.layers = 2;
    cfg.conv_steps = 2;
    cfg.bn_steps = 1;
    cfg.relu_steps = 2;
    cfg.pool_rots = 3;
    return cfg;
}

ResnetApp
build_resnet(const ResnetConfig& cfg, const GraphTraits& traits)
{
    BTS_CHECK(cfg.layers >= 1 && cfg.conv_steps >= 1 &&
                  cfg.conv_taps >= 1,
              "resnet: degenerate configuration");
    BTS_CHECK(traits.bootstrap_out_level >= 2,
              "resnet: a 1-level burst needs 2 usable levels after a "
              "refresh, the instance provides "
                  << traits.bootstrap_out_level
                  << " (level budget exhausted)");

    Graph g("resnet_app", traits);
    Value act = g.input(traits.bootstrap_out_level, traits.delta);
    const Value act_in = act; // the handle callers bind (act is rebound)
    std::vector<Value> layer_outputs;
    std::vector<std::vector<Value>> taps(cfg.layers);
    for (int layer = 0; layer < cfg.layers; ++layer) {
        for (int t = 0; t < cfg.conv_taps; ++t) {
            taps[layer].push_back(
                g.plain_input(traits.max_level, traits.delta));
        }
    }
    const Value pool_pt = g.plain_input(traits.max_level, traits.delta);

    // The hand generator's ensure(): refresh when the next burst's
    // levels (+1 so no op executes below level 1) no longer fit.
    const auto ensure = [&](int needed) {
        if (g.value(act.id).level < needed + 1) act = g.bootstrap(act);
    };

    for (int layer = 0; layer < cfg.layers; ++layer) {
        for (int step = 0; step < cfg.conv_steps; ++step) {
            ensure(1);
            Value acc{};
            for (int r = 0; r < cfg.conv_taps; ++r) {
                const Value prod =
                    g.pmult(g.hrot(act, r + 1), taps[layer][r]);
                acc = r == 0 ? prod : g.hadd(acc, prod);
            }
            act = g.hrescale(acc);
        }
        for (int step = 0; step < cfg.bn_steps; ++step) {
            ensure(1);
            // CAdd after the rescale (delta^2-scale constants overflow
            // the evaluator's integer constant encoding).
            act = g.cadd(g.hrescale(g.cmult(act, cfg.bn_scale)),
                         cfg.bn_shift);
        }
        for (int step = 0; step < cfg.relu_steps; ++step) {
            ensure(1);
            Value m = g.hrescale(g.hmult(act, act));
            if (step % 2 == 0) m = g.cadd(m, cfg.relu_shift);
            act = m;
        }
        // Marking adds no ops, so the Table 6 pin is unaffected.
        g.mark_output(act);
        layer_outputs.push_back(act);
    }
    for (int r = 0; r < cfg.pool_rots; ++r) {
        if (g.value(act.id).level < 2) act = g.bootstrap(act);
        act = g.hadd(act, g.hrot(act, 1 << r));
    }
    act = g.pmult(act, pool_pt);
    g.mark_output(act);

    ResnetApp app{std::move(g), act_in, std::move(taps), pool_pt,
                  std::move(layer_outputs)};
    if (cfg.optimize) {
        passes::OptimizeResult r = passes::PassManager().optimize(app.graph);
        app.act = r.remap(app.act);
        for (auto& layer : app.taps) {
            for (Value& t : layer) t = r.remap(t);
        }
        app.pool_weights = r.remap(app.pool_weights);
        for (Value& o : app.layer_outputs) o = r.remap(o);
        app.graph = std::move(r.graph);
    }
    return app;
}

} // namespace bts::runtime::apps
