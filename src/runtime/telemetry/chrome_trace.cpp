#include "runtime/telemetry/chrome_trace.h"

#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

namespace bts::runtime::telemetry {

namespace {

/** JSON string escape (names are static strings under our control,
 *  but thread names are caller data). */
std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof hex, "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char*
category_name(Category cat)
{
    switch (cat) {
    case Category::kNode: return "node";
    case Category::kEvaluator: return "evaluator";
    case Category::kKernel: return "kernel";
    case Category::kServer: return "server";
    case Category::kWorkspace: return "workspace";
    case Category::kBootstrap: return "bootstrap";
    }
    return "unknown";
}

/** Microsecond timestamp rebased to the capture's first event. */
double
rebased_us(u64 t_ns, u64 t_min_ns)
{
    return static_cast<double>(t_ns - t_min_ns) / 1e3;
}

} // namespace

void
write_chrome_trace(const Trace& trace, std::ostream& os)
{
    u64 t_min = std::numeric_limits<u64>::max();
    for (const ThreadTrace& t : trace.threads) {
        for (const TraceEvent& ev : t.events) {
            if (ev.t0_ns < t_min) t_min = ev.t0_ns;
        }
    }
    if (t_min == std::numeric_limits<u64>::max()) t_min = 0;

    os << "{\"traceEvents\":[";
    bool first = true;
    const auto sep = [&] {
        if (!first) os << ",\n";
        first = false;
    };

    // Thread-name metadata first: Perfetto labels the per-lane tracks.
    for (const ThreadTrace& t : trace.threads) {
        if (t.name.empty()) continue;
        sep();
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << t.tid << ",\"args\":{\"name\":\""
           << json_escape(t.name) << "\"}}";
    }

    for (const ThreadTrace& t : trace.threads) {
        for (const TraceEvent& ev : t.events) {
            sep();
            os << "{\"name\":\"" << json_escape(ev.name ? ev.name : "")
               << "\",\"cat\":\"" << category_name(ev.cat)
               << "\",\"pid\":0,\"tid\":" << t.tid << ",\"ts\":"
               << rebased_us(ev.t0_ns, t_min);
            switch (ev.kind) {
            case EventKind::kSpan:
                os << ",\"ph\":\"X\",\"dur\":"
                   << rebased_us(ev.t1_ns, ev.t0_ns) << ",\"args\":{";
                os << "\"level\":" << ev.level << ",\"arg\":" << ev.arg;
                if (ev.cost_s > 0) {
                    os << ",\"predicted_cost_s\":" << ev.cost_s;
                }
                os << "}}";
                break;
            case EventKind::kInstant:
                os << ",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"arg\":"
                   << ev.arg << "}}";
                break;
            case EventKind::kCounter:
                os << ",\"ph\":\"C\",\"args\":{\"value\":" << ev.arg
                   << "}}";
                break;
            }
        }
    }
    os << "],\"otherData\":{\"dropped_events\":" << trace.total_dropped()
       << "}}";
}

std::string
to_chrome_trace_json(const Trace& trace)
{
    std::ostringstream os;
    write_chrome_trace(trace, os);
    return os.str();
}

} // namespace bts::runtime::telemetry
