#include "runtime/telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

namespace bts::runtime::telemetry {

namespace {

constexpr std::size_t kDefaultCapacity = 65536;

/** Global runtime switch: a bitmask of Category. Starts all-off so a
 *  telemetry-compiled binary pays only the relaxed load per site. */
std::atomic<u32> g_mask{0};

/**
 * One thread's fixed event array. The owning thread is the only
 * writer: it fills events[head] then publishes with a release store of
 * head+1; collectors acquire-load head and read at most that many
 * slots. A full buffer counts drops instead of wrapping — overwrite
 * semantics would tear slots under a concurrent collector, and for
 * profiling the *first* events of a run are the ones that pair with
 * the static per-node predictions.
 */
struct ThreadBuffer
{
    explicit ThreadBuffer(std::size_t capacity) : events(capacity) {}

    std::vector<TraceEvent> events;
    std::atomic<std::size_t> head{0};
    std::atomic<u64> dropped{0};
    u32 tid = 0;
    std::string name; //!< guarded by the registry mutex
};

/** Process-wide buffer registry. Buffers are shared_ptr so a thread
 *  exiting never invalidates a collector's view. */
struct Registry
{
    std::mutex m;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::size_t capacity = kDefaultCapacity;
};

Registry&
registry()
{
    // Leaked: thread_local destructors and static traced objects may
    // emit/collect during teardown, so the registry outlives them all.
    static Registry* r = new Registry;
    return *r;
}

/** Thread-name requested before the thread's first emit (no buffer
 *  exists yet — creating one per named-but-silent thread would cost
 *  capacity x 64 bytes for nothing). */
thread_local std::string t_pending_name;

thread_local std::shared_ptr<ThreadBuffer> t_buffer;

ThreadBuffer&
buffer_for_thread()
{
    if (!t_buffer) {
        Registry& r = registry();
        std::lock_guard<std::mutex> lock(r.m);
        auto buf = std::make_shared<ThreadBuffer>(r.capacity);
        buf->tid = static_cast<u32>(r.buffers.size());
        buf->name = t_pending_name;
        r.buffers.push_back(buf);
        t_buffer = std::move(buf);
    }
    return *t_buffer;
}

} // namespace

void
set_enabled(u32 category_mask)
{
    g_mask.store(category_mask, std::memory_order_relaxed);
}

u32
enabled_mask()
{
    return g_mask.load(std::memory_order_relaxed);
}

u64
now_ns()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
set_thread_name(const std::string& name)
{
    t_pending_name = name;
    if (t_buffer) {
        std::lock_guard<std::mutex> lock(registry().m);
        t_buffer->name = name;
    }
}

void
set_thread_buffer_capacity(std::size_t events)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.m);
    r.capacity = events;
}

void
emit(const TraceEvent& ev)
{
    ThreadBuffer& buf = buffer_for_thread();
    const std::size_t h = buf.head.load(std::memory_order_relaxed);
    if (h >= buf.events.size()) {
        buf.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    buf.events[h] = ev;
    buf.head.store(h + 1, std::memory_order_release);
}

Trace
collect_trace()
{
    Trace out;
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.m);
    out.threads.reserve(r.buffers.size());
    for (const auto& buf : r.buffers) {
        ThreadTrace t;
        t.tid = buf->tid;
        t.name = buf->name;
        t.dropped = buf->dropped.load(std::memory_order_relaxed);
        const std::size_t n =
            std::min(buf->head.load(std::memory_order_acquire),
                     buf->events.size());
        t.events.assign(buf->events.begin(),
                        buf->events.begin() +
                            static_cast<std::ptrdiff_t>(n));
        out.threads.push_back(std::move(t));
    }
    return out;
}

void
reset_trace()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.m);
    for (const auto& buf : r.buffers) {
        // Quiescence is the caller's contract; under it, resizing the
        // slot array and rewinding head cannot race an emit.
        if (buf->events.size() != r.capacity) {
            buf->events.assign(r.capacity, TraceEvent{});
            buf->events.shrink_to_fit();
        }
        buf->head.store(0, std::memory_order_release);
        buf->dropped.store(0, std::memory_order_relaxed);
    }
}

} // namespace bts::runtime::telemetry
