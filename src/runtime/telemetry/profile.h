/**
 * @file
 * Predicted-vs-measured cost closure: aggregate a captured trace's
 * Executor node spans by op kind and compare against the static
 * ResourceSummary prediction (runtime/analysis/resource.h).
 *
 * Each kNode span carries the node's statically predicted cost (the
 * Executor tags spans from the per-node cost vector GraphServer
 * installs at register_graph time), so a single traced run yields the
 * table the paper's methodology implies: per op kind, how many ran,
 * how long they measured, what the model predicted, and the ratio.
 * The predicted column is a *relative* cost on the serving
 * pseudo-instance — the accelerator model's seconds, not host
 * wall-clock — so the interesting quantity is the per-kind share
 * drift, not the absolute ratio (bts_profile prints both).
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "runtime/analysis/resource.h"
#include "runtime/graph.h"
#include "runtime/telemetry/trace.h"

namespace bts::runtime::telemetry {

/** One op kind's aggregated row. */
struct OpKindProfile
{
    std::string op;        //!< runtime::op_name of the node kind
    std::size_t count = 0; //!< node spans captured
    double measured_s = 0; //!< summed span durations (host seconds)
    double predicted_s = 0; //!< summed static cost tags (model seconds)
};

/** The per-run closure report. */
struct ProfileReport
{
    std::vector<OpKindProfile> ops; //!< sorted by measured_s, desc
    double measured_total_s = 0;
    double predicted_total_s = 0;
    u64 dropped_events = 0; //!< nonzero = the table undercounts
};

/** Aggregate the kNode spans of @p trace by span name (= op kind). */
ProfileReport profile_from_trace(const Trace& trace);

/** The static side of the closure: per-op-kind predicted cost summed
 *  from the summary's per-node slices — what a traced single run's
 *  predicted_s column must reproduce (tested to tolerance). */
std::map<std::string, double>
predicted_by_kind(const Graph& g,
                  const analysis::ResourceSummary& summary);

/** Human-readable predicted/actual table (bts_profile default). */
std::string render_profile_text(const ProfileReport& r);

/** The same table as a JSON object. */
std::string render_profile_json(const ProfileReport& r);

} // namespace bts::runtime::telemetry
