/**
 * @file
 * Low-overhead runtime tracing core: per-thread event buffers, RAII
 * scoped spans, and instant/counter events.
 *
 * The paper's whole argument is built on measured timelines (Fig. 8's
 * per-lane occupancy bars, the NTT/BConv busy fractions) — this is the
 * software counterpart: every hot layer (NTT/BConv kernels, evaluator
 * key-switch/rescale, Executor node dispatch, GraphServer job
 * lifecycle) emits events here, and the exporters (chrome_trace.h,
 * profile.h) turn one captured run into the same artifacts the paper
 * reports.
 *
 * Design constraints, in order:
 *  1. Near-zero cost when disabled. Compile-time the `BTS_TELEMETRY`
 *     definition (a CMake option, default ON) erases every macro to
 *     nothing; runtime-disabled (the default state) the cost of a span
 *     is one relaxed atomic load and a branch.
 *  2. No locks, no allocation on the hot path. Each thread owns a
 *     fixed-capacity event buffer created on its first emit; writes
 *     are single-producer (the owning thread) with a release store
 *     publishing each slot. A full buffer DROPS new events and counts
 *     them — tracing never blocks, reallocates, or crashes the traced
 *     code.
 *  3. Collection requires quiescence: collect_trace()/reset_trace()
 *     read or rewind buffers that other threads may own, so call them
 *     only when no traced work is in flight (after Executor::run /
 *     GraphServer::drain returns). Idle threads are fine — only
 *     concurrent *emission* races with collection.
 *
 * Events are tagged with a category (maskable at runtime), an op
 * level, an integer arg (limb count, value id, queue depth — per span
 * taxonomy, see docs/OBSERVABILITY.md) and a predicted-cost tag that
 * the Executor fills from the static ResourceSummary, closing the
 * predicted-vs-measured loop in profile.h.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace bts::runtime::telemetry {

/** Event source layer; each is a bit in the runtime enable mask. */
enum class Category : u32 {
    kNode = 1u << 0,      //!< Executor per-node dispatch spans
    kEvaluator = 1u << 1, //!< key-switch / rescale / mod-raise spans
    kKernel = 1u << 2,    //!< NTT / iNTT / BConv batch kernels
    kServer = 1u << 3,    //!< GraphServer job lifecycle + queue depth
    kWorkspace = 1u << 4, //!< buffer-pool acquire/release instants
    kBootstrap = 1u << 5, //!< bootstrap + its four stages
};

/** Every category bit — the "trace everything" mask. */
inline constexpr u32 kAllCategories = 0x3fu;

enum class EventKind : u8 {
    kSpan,    //!< [t0_ns, t1_ns] duration on the emitting thread
    kInstant, //!< point event at t0_ns
    kCounter, //!< sampled value (arg) at t0_ns, e.g. queue depth
};

/** One captured event. `name` must be a string with static storage
 *  duration (the buffer stores the pointer, not a copy). */
struct TraceEvent
{
    const char* name = nullptr;
    u64 t0_ns = 0; //!< steady_clock; 0 doubles as "span inactive"
    u64 t1_ns = 0; //!< == t0_ns for instants and counters
    Category cat = Category::kKernel;
    EventKind kind = EventKind::kSpan;
    int level = -1;    //!< RNS level of the op; -1 when not set
    i64 arg = 0;       //!< per-taxonomy tag: limbs, value id, depth…
    double cost_s = 0; //!< statically predicted cost; 0 when untagged
};

/** Set the runtime enable mask (bitwise OR of Category values; 0 —
 *  the initial state — disables all emission). */
void set_enabled(u32 category_mask);
u32 enabled_mask();

/** Monotonic timestamp in ns (steady_clock). */
u64 now_ns();

/** Name the calling thread's track in collected traces ("lane 0").
 *  Cheap; does not allocate an event buffer by itself. */
void set_thread_name(const std::string& name);

/** Capacity (in events) of buffers created AFTER this call; existing
 *  buffers are resized by the next reset_trace(). Default 65536. */
void set_thread_buffer_capacity(std::size_t events);

/** Append one event to the calling thread's buffer (drop-and-count
 *  when full). Callers must have checked enabled() already. */
void emit(const TraceEvent& ev);

#if defined(BTS_TELEMETRY)

inline bool
enabled(Category cat)
{
    return (enabled_mask() & static_cast<u32>(cat)) != 0;
}

#else

inline bool
enabled(Category)
{
    return false;
}

#endif

/** Point event (job lifecycle transitions, pool acquire/release). */
inline void
instant(Category cat, const char* name, i64 arg = 0, int level = -1)
{
    if (!enabled(cat)) return;
    TraceEvent ev;
    ev.name = name;
    ev.t0_ns = now_ns();
    ev.t1_ns = ev.t0_ns;
    ev.cat = cat;
    ev.kind = EventKind::kInstant;
    ev.arg = arg;
    ev.level = level;
    emit(ev);
}

/** Sampled counter value (renders as a counter track in Perfetto). */
inline void
counter(Category cat, const char* name, i64 value)
{
    if (!enabled(cat)) return;
    TraceEvent ev;
    ev.name = name;
    ev.t0_ns = now_ns();
    ev.t1_ns = ev.t0_ns;
    ev.cat = cat;
    ev.kind = EventKind::kCounter;
    ev.arg = value;
    emit(ev);
}

/**
 * RAII span: captures t0 at construction when its category is enabled,
 * emits the completed event at destruction. The set_* taggers are
 * no-ops on an inactive span, so call sites stay branch-free.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Category cat, const char* name)
    {
#if defined(BTS_TELEMETRY)
        if (enabled(cat)) {
            ev_.cat = cat;
            ev_.name = name;
            ev_.t0_ns = now_ns();
        }
#else
        (void)cat;
        (void)name;
#endif
    }

    ~ScopedSpan()
    {
#if defined(BTS_TELEMETRY)
        if (ev_.t0_ns != 0) {
            ev_.t1_ns = now_ns();
            emit(ev_);
        }
#endif
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    bool
    active() const
    {
#if defined(BTS_TELEMETRY)
        return ev_.t0_ns != 0;
#else
        return false;
#endif
    }

    void
    set_level(int level)
    {
#if defined(BTS_TELEMETRY)
        if (ev_.t0_ns != 0) ev_.level = level;
#else
        (void)level;
#endif
    }

    void
    set_arg(i64 arg)
    {
#if defined(BTS_TELEMETRY)
        if (ev_.t0_ns != 0) ev_.arg = arg;
#else
        (void)arg;
#endif
    }

    void
    set_cost(double cost_s)
    {
#if defined(BTS_TELEMETRY)
        if (ev_.t0_ns != 0) ev_.cost_s = cost_s;
#else
        (void)cost_s;
#endif
    }

  private:
#if defined(BTS_TELEMETRY)
    TraceEvent ev_;
#endif
};

/** One thread's captured slice, in emission order. */
struct ThreadTrace
{
    u32 tid = 0;       //!< registration order; stable across collects
    std::string name;  //!< set_thread_name(), or "" for the default
    u64 dropped = 0;   //!< events lost to a full buffer
    std::vector<TraceEvent> events;
};

/** A full capture: every thread that emitted since the last reset. */
struct Trace
{
    std::vector<ThreadTrace> threads;

    std::size_t
    total_events() const
    {
        std::size_t n = 0;
        for (const ThreadTrace& t : threads) n += t.events.size();
        return n;
    }

    u64
    total_dropped() const
    {
        u64 n = 0;
        for (const ThreadTrace& t : threads) n += t.dropped;
        return n;
    }
};

/** Snapshot every thread buffer. Requires emission quiescence (see
 *  file comment); buffers are left intact. */
Trace collect_trace();

/** Rewind every thread buffer (and apply a pending capacity change).
 *  Requires emission quiescence. */
void reset_trace();

} // namespace bts::runtime::telemetry

// Call-site macros. They compile away entirely without BTS_TELEMETRY;
// with it, a disabled category costs one relaxed load + branch.
#define BTS_TELEMETRY_CAT2(a, b) a##b
#define BTS_TELEMETRY_CAT(a, b) BTS_TELEMETRY_CAT2(a, b)

/** Anonymous scoped span over the rest of the enclosing block. */
#define BTS_TRACE_SPAN(category, span_name)                        \
    ::bts::runtime::telemetry::ScopedSpan BTS_TELEMETRY_CAT(       \
        bts_trace_span_, __LINE__)(                                \
        ::bts::runtime::telemetry::Category::category, (span_name))

/** Named scoped span, for call sites that tag level/arg/cost. */
#define BTS_TRACE_SPAN_VAR(var, category, span_name)               \
    ::bts::runtime::telemetry::ScopedSpan var(                     \
        ::bts::runtime::telemetry::Category::category, (span_name))

#define BTS_TRACE_INSTANT(category, event_name, arg_value)         \
    ::bts::runtime::telemetry::instant(                            \
        ::bts::runtime::telemetry::Category::category, (event_name), \
        static_cast<::bts::i64>(arg_value))

#define BTS_TRACE_COUNTER(category, counter_name, counter_value)   \
    ::bts::runtime::telemetry::counter(                            \
        ::bts::runtime::telemetry::Category::category,             \
        (counter_name), static_cast<::bts::i64>(counter_value))
