#include "runtime/telemetry/profile.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace bts::runtime::telemetry {

ProfileReport
profile_from_trace(const Trace& trace)
{
    std::map<std::string, OpKindProfile> by_op;
    ProfileReport out;
    out.dropped_events = trace.total_dropped();
    for (const ThreadTrace& t : trace.threads) {
        for (const TraceEvent& ev : t.events) {
            if (ev.cat != Category::kNode ||
                ev.kind != EventKind::kSpan) {
                continue;
            }
            OpKindProfile& row = by_op[ev.name ? ev.name : ""];
            if (row.count == 0) row.op = ev.name ? ev.name : "";
            row.count += 1;
            row.measured_s +=
                static_cast<double>(ev.t1_ns - ev.t0_ns) / 1e9;
            row.predicted_s += ev.cost_s;
        }
    }
    out.ops.reserve(by_op.size());
    for (auto& [op, row] : by_op) {
        out.measured_total_s += row.measured_s;
        out.predicted_total_s += row.predicted_s;
        out.ops.push_back(std::move(row));
    }
    std::sort(out.ops.begin(), out.ops.end(),
              [](const OpKindProfile& a, const OpKindProfile& b) {
                  return a.measured_s > b.measured_s;
              });
    return out;
}

std::map<std::string, double>
predicted_by_kind(const Graph& g, const analysis::ResourceSummary& summary)
{
    std::map<std::string, double> out;
    const std::size_t n =
        std::min(g.num_nodes(), summary.nodes.size());
    for (std::size_t i = 0; i < n; ++i) {
        out[op_name(g.node(i).kind)] += summary.nodes[i].cost_s;
    }
    return out;
}

namespace {

/** Share of a total, as a percentage (0 when the total is 0). */
double
share(double part, double total)
{
    return total > 0 ? 100.0 * part / total : 0.0;
}

} // namespace

std::string
render_profile_text(const ProfileReport& r)
{
    std::ostringstream os;
    os << std::left << std::setw(16) << "op" << std::right
       << std::setw(8) << "count" << std::setw(14) << "measured(s)"
       << std::setw(14) << "predicted(s)" << std::setw(10) << "p/m"
       << std::setw(9) << "m-share" << std::setw(9) << "p-share"
       << '\n';
    for (const OpKindProfile& row : r.ops) {
        os << std::left << std::setw(16) << row.op << std::right
           << std::setw(8) << row.count << std::setw(14) << std::fixed
           << std::setprecision(6) << row.measured_s << std::setw(14)
           << row.predicted_s << std::setw(10) << std::setprecision(3)
           << (row.measured_s > 0 ? row.predicted_s / row.measured_s
                                  : 0.0)
           << std::setw(8) << std::setprecision(1)
           << share(row.measured_s, r.measured_total_s) << '%'
           << std::setw(8)
           << share(row.predicted_s, r.predicted_total_s) << '%'
           << '\n';
        os.unsetf(std::ios::fixed);
    }
    os << std::left << std::setw(16) << "TOTAL" << std::right
       << std::setw(8) << "" << std::setw(14) << std::fixed
       << std::setprecision(6) << r.measured_total_s << std::setw(14)
       << r.predicted_total_s << std::setw(10) << std::setprecision(3)
       << (r.measured_total_s > 0
               ? r.predicted_total_s / r.measured_total_s
               : 0.0)
       << '\n';
    os.unsetf(std::ios::fixed);
    if (r.dropped_events > 0) {
        os << "WARNING: " << r.dropped_events
           << " events dropped (buffer full) — table undercounts\n";
    }
    return os.str();
}

std::string
render_profile_json(const ProfileReport& r)
{
    std::ostringstream os;
    os << "{\"ops\":[";
    for (std::size_t i = 0; i < r.ops.size(); ++i) {
        const OpKindProfile& row = r.ops[i];
        os << (i == 0 ? "" : ",") << "{\"op\":\"" << row.op
           << "\",\"count\":" << row.count
           << ",\"measured_s\":" << row.measured_s
           << ",\"predicted_s\":" << row.predicted_s
           << ",\"predicted_over_measured\":"
           << (row.measured_s > 0 ? row.predicted_s / row.measured_s
                                  : 0.0)
           << '}';
    }
    os << "],\"measured_total_s\":" << r.measured_total_s
       << ",\"predicted_total_s\":" << r.predicted_total_s
       << ",\"dropped_events\":" << r.dropped_events << '}';
    return os.str();
}

} // namespace bts::runtime::telemetry
