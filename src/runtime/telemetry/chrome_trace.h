/**
 * @file
 * Chrome trace-event JSON exporter: turns a collected Trace into the
 * format Perfetto / chrome://tracing load directly, one track per
 * emitting thread — the measured counterpart of the paper's Fig. 8
 * lane-occupancy timeline.
 *
 * Mapping:
 *   span    -> "X" complete event (ts/dur in microseconds, rebased to
 *              the earliest event so traces start at t=0), args carry
 *              the level/arg/cost tags
 *   instant -> "i" thread-scoped instant
 *   counter -> "C" counter event (value = arg), e.g. queue depth
 *   thread  -> "M" thread_name metadata when set_thread_name was used
 *
 * The top-level object is {"traceEvents": [...], "otherData":
 * {"dropped_events": N}} so overflow is visible in the artifact.
 */
#pragma once

#include <iosfwd>
#include <string>

#include "runtime/telemetry/trace.h"

namespace bts::runtime::telemetry {

/** Serialize @p trace as Chrome trace-event JSON onto @p os. */
void write_chrome_trace(const Trace& trace, std::ostream& os);

/** Same, returned as a string. */
std::string to_chrome_trace_json(const Trace& trace);

} // namespace bts::runtime::telemetry
