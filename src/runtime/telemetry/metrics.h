/**
 * @file
 * Process-wide metrics registry: counters, gauges and fixed-bucket
 * histograms with Prometheus text exposition and a JSON snapshot.
 *
 * This is the single stats surface the serving stack reports through:
 * the Executor and GraphServer push node/job/queue metrics here, and
 * pull-model collectors absorb the existing ad-hoc stats structs
 * (WorkspaceStats is registered as a built-in collector; ExecStats /
 * ServerStats keep their thin per-object accessors for tests, but
 * their aggregate counterparts live here).
 *
 * Thread safety: instrument handles (Counter&, Gauge&, Histogram&) are
 * stable for the registry's lifetime and internally atomic — hot paths
 * hold a reference and never touch the registry lock. Registration and
 * rendering take a mutex.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"

namespace bts::runtime::telemetry {

/** Monotonically increasing count (relaxed atomics: totals, not
 *  synchronization). */
class Counter
{
  public:
    void
    inc(u64 delta = 1)
    {
        v_.fetch_add(delta, std::memory_order_relaxed);
    }
    u64
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void
    reset()
    {
        v_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<u64> v_{0};
};

/** Last-written value, plus a monotonic-max mode for high-water marks. */
class Gauge
{
  public:
    void
    set(double v)
    {
        v_.store(v, std::memory_order_relaxed);
    }
    /** Raise to @p v if larger (peak_live_bytes-style watermarks). */
    void
    set_max(double v)
    {
        double cur = v_.load(std::memory_order_relaxed);
        while (v > cur &&
               !v_.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed)) {
        }
    }
    double
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void
    reset()
    {
        v_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<double> v_{0};
};

/** Fixed-bucket histogram (Prometheus semantics: `bounds` are the
 *  inclusive upper edges; an implicit +Inf bucket catches the rest). */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    const std::vector<double>&
    bounds() const
    {
        return bounds_;
    }
    u64
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    /** Per-bucket (non-cumulative) counts; last entry is +Inf. */
    std::vector<u64> bucket_counts() const;
    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<u64>> buckets_; //!< bounds_.size() + 1
    std::atomic<u64> count_{0};
    std::atomic<double> sum_{0};
};

/** One pull-model sample (rendered as an untyped gauge). */
struct Sample
{
    std::string name;
    std::string help;
    double value = 0;
};

/** The process-wide registry. */
class MetricsRegistry
{
  public:
    /** Collectors are invoked at render time to sample state that
     *  already has an owner (the workspace pool, a live server). */
    using Collector = std::function<std::vector<Sample>()>;

    /** Singleton with the built-in workspace-pool collector installed. */
    static MetricsRegistry& instance();

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /** Find-or-create by name; the reference stays valid for the
     *  registry's lifetime. `help` is recorded on first creation. */
    Counter& counter(const std::string& name,
                     const std::string& help = "");
    Gauge& gauge(const std::string& name, const std::string& help = "");
    /** `bounds` applies on first creation only. */
    Histogram& histogram(const std::string& name,
                         std::vector<double> bounds,
                         const std::string& help = "");

    /** Install (or replace) the collector registered under @p id. */
    void register_collector(const std::string& id, Collector fn);

    /** Prometheus text exposition format (HELP/TYPE + samples). */
    std::string render_prometheus() const;
    /** The same content as one JSON object. */
    std::string render_json() const;

    /** Zero every counter/gauge/histogram (collectors untouched) —
     *  for tests and per-run deltas. */
    void reset();

  private:
    template <typename T>
    struct Entry
    {
        std::unique_ptr<T> metric;
        std::string help;
    };

    mutable std::mutex m_;
    std::map<std::string, Entry<Counter>> counters_;
    std::map<std::string, Entry<Gauge>> gauges_;
    std::map<std::string, Entry<Histogram>> histograms_;
    std::map<std::string, Collector> collectors_;
};

/** Default latency buckets (seconds): 100us .. ~100s, x4 steps. */
std::vector<double> latency_buckets();

} // namespace bts::runtime::telemetry
