#include "runtime/telemetry/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/workspace.h"

namespace bts::runtime::telemetry {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    BTS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bucket bounds must be sorted ascending");
}

void
Histogram::observe(double v)
{
    // First bucket whose upper edge holds v; the +Inf bucket is last.
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const std::size_t idx =
        static_cast<std::size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
}

std::vector<u64>
Histogram::bucket_counts() const
{
    std::vector<u64> out(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
}

void
Histogram::reset()
{
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry&
MetricsRegistry::instance()
{
    // Leaked for the same reason as the workspace pool: metrics are
    // pushed from destructors of static fixtures during teardown.
    static MetricsRegistry* r = [] {
        auto* reg = new MetricsRegistry;
        reg->register_collector("workspace", [] {
            const WorkspaceStats ws = workspace_stats();
            return std::vector<Sample>{
                {"bts_workspace_pool_hits_total",
                 "buffer acquires served from the free list",
                 static_cast<double>(ws.hits)},
                {"bts_workspace_pool_misses_total",
                 "buffer acquires that hit the allocator",
                 static_cast<double>(ws.misses)},
                {"bts_workspace_outstanding_buffers",
                 "buffers currently checked out of the pool",
                 static_cast<double>(ws.outstanding_buffers)},
                {"bts_workspace_outstanding_bytes",
                 "capacity of the outstanding buffers",
                 static_cast<double>(ws.outstanding_bytes)},
                {"bts_workspace_peak_buffers",
                 "high-water outstanding buffer count",
                 static_cast<double>(ws.peak_buffers)},
                {"bts_workspace_peak_bytes",
                 "high-water outstanding bytes",
                 static_cast<double>(ws.peak_bytes)},
            };
        });
        return reg;
    }();
    return *r;
}

Counter&
MetricsRegistry::counter(const std::string& name, const std::string& help)
{
    std::lock_guard<std::mutex> lock(m_);
    Entry<Counter>& e = counters_[name];
    if (!e.metric) {
        e.metric = std::make_unique<Counter>();
        e.help = help;
    }
    return *e.metric;
}

Gauge&
MetricsRegistry::gauge(const std::string& name, const std::string& help)
{
    std::lock_guard<std::mutex> lock(m_);
    Entry<Gauge>& e = gauges_[name];
    if (!e.metric) {
        e.metric = std::make_unique<Gauge>();
        e.help = help;
    }
    return *e.metric;
}

Histogram&
MetricsRegistry::histogram(const std::string& name,
                           std::vector<double> bounds,
                           const std::string& help)
{
    std::lock_guard<std::mutex> lock(m_);
    Entry<Histogram>& e = histograms_[name];
    if (!e.metric) {
        e.metric = std::make_unique<Histogram>(std::move(bounds));
        e.help = help;
    }
    return *e.metric;
}

void
MetricsRegistry::register_collector(const std::string& id, Collector fn)
{
    std::lock_guard<std::mutex> lock(m_);
    collectors_[id] = std::move(fn);
}

namespace {

/** %g-style shortest float that Prometheus and JSON both accept. */
std::string
num(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

void
help_and_type(std::ostringstream& os, const std::string& name,
              const std::string& help, const char* type)
{
    if (!help.empty()) os << "# HELP " << name << ' ' << help << '\n';
    os << "# TYPE " << name << ' ' << type << '\n';
}

} // namespace

std::string
MetricsRegistry::render_prometheus() const
{
    // Sample collectors outside the lock: a collector may itself call
    // back into another mutex (the workspace pool's).
    std::map<std::string, Collector> collectors;
    {
        std::lock_guard<std::mutex> lock(m_);
        collectors = collectors_;
    }
    std::vector<std::vector<Sample>> collected;
    collected.reserve(collectors.size());
    for (const auto& [id, fn] : collectors) collected.push_back(fn());

    std::ostringstream os;
    std::lock_guard<std::mutex> lock(m_);
    for (const auto& [name, e] : counters_) {
        help_and_type(os, name, e.help, "counter");
        os << name << ' ' << e.metric->value() << '\n';
    }
    for (const auto& [name, e] : gauges_) {
        help_and_type(os, name, e.help, "gauge");
        os << name << ' ' << num(e.metric->value()) << '\n';
    }
    for (const auto& [name, e] : histograms_) {
        help_and_type(os, name, e.help, "histogram");
        const std::vector<u64> counts = e.metric->bucket_counts();
        const std::vector<double>& bounds = e.metric->bounds();
        u64 cumulative = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
            cumulative += counts[i];
            os << name << "_bucket{le=\"" << num(bounds[i]) << "\"} "
               << cumulative << '\n';
        }
        cumulative += counts.back();
        os << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
        os << name << "_sum " << num(e.metric->sum()) << '\n';
        os << name << "_count " << e.metric->count() << '\n';
    }
    for (const auto& samples : collected) {
        for (const Sample& s : samples) {
            help_and_type(os, s.name, s.help, "gauge");
            os << s.name << ' ' << num(s.value) << '\n';
        }
    }
    return os.str();
}

std::string
MetricsRegistry::render_json() const
{
    std::map<std::string, Collector> collectors;
    {
        std::lock_guard<std::mutex> lock(m_);
        collectors = collectors_;
    }
    std::vector<std::vector<Sample>> collected;
    collected.reserve(collectors.size());
    for (const auto& [id, fn] : collectors) collected.push_back(fn());

    std::ostringstream os;
    std::lock_guard<std::mutex> lock(m_);
    os << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, e] : counters_) {
        os << (first ? "" : ",") << '"' << name
           << "\":" << e.metric->value();
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, e] : gauges_) {
        os << (first ? "" : ",") << '"' << name
           << "\":" << num(e.metric->value());
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& [name, e] : histograms_) {
        os << (first ? "" : ",") << '"' << name << "\":{\"count\":"
           << e.metric->count() << ",\"sum\":" << num(e.metric->sum())
           << ",\"buckets\":[";
        const std::vector<u64> counts = e.metric->bucket_counts();
        const std::vector<double>& bounds = e.metric->bounds();
        for (std::size_t i = 0; i < counts.size(); ++i) {
            os << (i == 0 ? "" : ",") << "{\"le\":";
            if (i < bounds.size()) {
                os << '"' << num(bounds[i]) << '"';
            } else {
                os << "\"+Inf\"";
            }
            os << ",\"count\":" << counts[i] << '}';
        }
        os << "]}";
        first = false;
    }
    os << "},\"collected\":{";
    first = true;
    for (const auto& samples : collected) {
        for (const Sample& s : samples) {
            os << (first ? "" : ",") << '"' << s.name
               << "\":" << num(s.value);
            first = false;
        }
    }
    os << "}}";
    return os.str();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(m_);
    for (auto& [name, e] : counters_) e.metric->reset();
    for (auto& [name, e] : gauges_) e.metric->reset();
    for (auto& [name, e] : histograms_) e.metric->reset();
}

std::vector<double>
latency_buckets()
{
    std::vector<double> b;
    for (double edge = 1e-4; edge < 200.0; edge *= 4.0) {
        b.push_back(edge);
    }
    return b;
}

} // namespace bts::runtime::telemetry
