/**
 * @file
 * Functional graph backend: a dependency-counting async scheduler that
 * runs ready graph nodes on a bts::ThreadPool.
 *
 * This adds *inter-op* parallelism on top of the library's intra-op
 * limb/coefficient tiling (src/common/parallel.h): independent HMult /
 * HRot / rescale chains of one graph execute concurrently on worker
 * lanes, bounded by an in-flight window. Every node runs the exact
 * same Evaluator call regardless of schedule, so results are
 * bit-identical at any lane count — run_serial() executes the same
 * per-node code in program order and is the reference the tests pin
 * the scheduler against.
 *
 * Resource reuse:
 *  - evk handles (mult / per-amount rotation / conjugation keys) are
 *    resolved once per (executor, graph) and cached, so execution
 *    never touches the RotationKeys map;
 *  - CMult constants are encoded once per (node, slot count) and the
 *    plaintexts cached across run() calls — the serving harness's jobs
 *    hit warm handles after the first request;
 *  - intermediate ciphertexts are released the moment their last
 *    consumer finished, returning their buffers to the process-wide
 *    workspace pool (src/common/workspace.h) for the next node.
 *
 * Thread safety: a single Executor may run different jobs from
 * different threads concurrently when lanes == 1 (inline execution).
 * With lanes > 1 concurrent run() calls are safe but serialize on the
 * executor's worker pool.
 */
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "ckks/bootstrapper.h"
#include "ckks/ciphertext.h"
#include "ckks/encoder.h"
#include "ckks/evaluator.h"
#include "ckks/keys.h"
#include "common/parallel.h"
#include "runtime/graph.h"

namespace bts::runtime {

/** Borrowed library objects + key material a graph executes against.
 *  Everything is optional except eval/encoder; execution fails loudly
 *  at resolve time if a graph needs a resource that is null. */
struct EvalResources
{
    const Evaluator* eval = nullptr;
    const CkksEncoder* encoder = nullptr;
    const EvalKey* mult_key = nullptr;       //!< kHMult
    const RotationKeys* rot_keys = nullptr;  //!< kHRot
    const EvalKey* conj_key = nullptr;       //!< kConj
    const Bootstrapper* bootstrapper = nullptr; //!< kBootstrap
};

/** Scheduler knobs. */
struct ExecOptions
{
    /** Worker lanes (1 = inline on the calling thread). */
    int lanes = 1;
    /** Max concurrently-executing nodes; 0 = lanes. Bounding below
     *  lanes trades parallelism for a smaller live working set. */
    int max_in_flight = 0;
    /** Check executed levels/scales against the graph metadata. */
    bool check_metadata = true;
};

/** Observability for tests and the serving harness. nodes and the
 *  peak_* fields are per-run; the plain_cache_* fields are CUMULATIVE
 *  over the plan's lifetime (every run of that graph on this executor
 *  since the plan was built) — diff two snapshots for per-run rates. */
struct ExecStats
{
    std::size_t nodes = 0;             //!< nodes executed
    std::size_t peak_in_flight = 0;    //!< max concurrently-running nodes
    std::size_t peak_live_values = 0;  //!< max resident ciphertexts
    /** Peak bytes of the live ciphertext set, weighing each value by
     *  its materialized size (2 (level+1) N 8) for its whole semantic
     *  lifetime — i.e. until its last consumer finishes, whether or
     *  not an in-place op stole the storage early. On serial runs this
     *  equals analysis::ResourceSummary::peak_live_bytes exactly. */
    std::size_t peak_live_bytes = 0;
    std::size_t plain_cache_hits = 0;  //!< CMult plaintext handle reuse
    std::size_t plain_cache_misses = 0;
};

/** Execution-time bindings for a graph's declared inputs. */
struct Binding
{
    std::map<int, Ciphertext> ciphers;
    std::map<int, Plaintext> plains;

    void
    bind(Value v, Ciphertext ct)
    {
        ciphers[v.id] = std::move(ct);
    }
    void
    bind(Value v, Plaintext pt)
    {
        plains[v.id] = std::move(pt);
    }
};

/** Dependency-counting scheduler over one EvalResources bundle. */
class Executor
{
  public:
    explicit Executor(EvalResources res, ExecOptions opts = {});
    ~Executor();

    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    const ExecOptions& options() const { return opts_; }

    /**
     * Execute @p g with @p inputs on the configured lanes; returns the
     * marked outputs in mark order. Rethrows the first node failure
     * after in-flight nodes quiesce. Bit-identical to run_serial().
     */
    std::vector<Ciphertext> run(const Graph& g, Binding inputs,
                                ExecStats* stats = nullptr) const;

    /** Reference backend: same per-node execution, program order. */
    std::vector<Ciphertext> run_serial(const Graph& g, Binding inputs,
                                       ExecStats* stats = nullptr) const;

    /** Drop cached per-graph plans (evk handles, CMult plaintexts).
     *  Purely a memory release: plans are keyed by Graph::uid(), so a
     *  new Graph can never hit a stale plan, and in-flight runs keep
     *  their plan alive through a shared_ptr. */
    void clear_plan_cache() const;

    /**
     * Install the statically predicted per-node costs for @p g (one
     * entry per node, in node order — ResourceSummary::nodes'
     * cost_s). Telemetry only: each node's dispatch span is tagged
     * with its prediction, closing the predicted-vs-measured loop in
     * runtime/telemetry/profile.h. GraphServer::register_graph calls
     * this on every lane executor; uninstalled graphs trace with a
     * zero cost tag. Keyed by Graph::uid(), so costs can never attach
     * to the wrong graph.
     */
    void set_node_costs(const Graph& g, std::vector<double> cost_s) const;

  private:
    struct Plan;   // resolved evk handles + plaintext cache, per graph
    struct Sched;  // one run's scheduler state

    std::shared_ptr<const Plan> plan_for(const Graph& g) const;
    /** Bind inputs and build the dependency-count state for one run. */
    void init_sched(const Graph& g, Binding& inputs, Sched& sched) const;
    /** Execute one node against resolved inputs (schedule-independent).
     *  Returns one ciphertext per value the node defines — a single
     *  entry for every kind except kHRotHoisted. */
    std::vector<Ciphertext> exec_node(const Graph& g, const Plan& plan,
                                      std::size_t node_idx,
                                      Sched& sched) const;
    void finish_node(const Graph& g, std::size_t node_idx,
                     std::vector<Ciphertext> outs, Sched& sched) const;
    std::vector<Ciphertext> collect_outputs(const Graph& g,
                                            Sched& sched) const;

    EvalResources res_;
    ExecOptions opts_;
    std::unique_ptr<ThreadPool> pool_; //!< lanes > 1 only
    mutable std::mutex plans_mutex_;   //!< guards plans_, node_costs_
    mutable std::map<u64, std::shared_ptr<const Plan>> plans_;
    /** Predicted per-node costs (set_node_costs), by graph uid. */
    mutable std::map<u64, std::shared_ptr<const std::vector<double>>>
        node_costs_;
};

} // namespace bts::runtime
