#include "runtime/graph_workloads.h"

#include <cmath>

#include "common/check.h"

namespace bts::runtime {

GraphTraits
traits_for(const hw::CkksInstance& inst)
{
    GraphTraits t;
    t.max_level = inst.max_level;
    t.bootstrap_out_level = inst.usable_levels();
    t.delta = std::ldexp(1.0, inst.scale_bits);
    return t;
}

namespace {

Graph
finish(Graph g, const passes::PassOptions& opts)
{
    passes::OptimizeResult r = passes::PassManager(opts).optimize(g);
    return std::move(r.graph);
}

} // namespace

Graph
tmult_graph(const hw::CkksInstance& inst, const passes::PassOptions& opts)
{
    BTS_CHECK(inst.usable_levels() >= 1, "instance cannot bootstrap");
    const GraphTraits t = traits_for(inst);
    Graph g("tmult_graph/" + inst.name, t);
    // Same program as workloads::tmult_microbench, value for value:
    // the multiplicand is declared AFTER the bootstrap so the lowered
    // object-id stream matches the hand-written generator exactly.
    Value ct = g.input(0, t.delta);
    ct = g.bootstrap(ct);
    Value other = g.input(t.bootstrap_out_level, t.delta);
    for (int lvl = t.bootstrap_out_level; lvl >= 1; --lvl) {
        ct = g.hmult(ct, other);
        ct = g.hrescale(ct);
    }
    g.mark_output(ct);
    return finish(std::move(g), opts);
}

Graph
dot_product_graph(const GraphTraits& traits, int level, int log_dim,
                  const passes::PassOptions& opts)
{
    BTS_CHECK(level >= 1, "dot product needs one rescale level");
    BTS_CHECK(log_dim >= 1, "dot product needs a nonempty reduction");
    Graph g("dot_product", traits);
    Value x = g.input(level, traits.delta);
    Value w = g.plain_input(level, traits.delta);
    Value acc = g.pmult(x, w);
    acc = g.hrescale(acc);
    for (int r = 0; r < log_dim; ++r) {
        const Value rot = g.hrot(acc, 1 << r);
        acc = g.hadd(acc, rot);
    }
    g.mark_output(acc);
    return finish(std::move(g), opts);
}

Graph
poly_eval_graph(const GraphTraits& traits, int level,
                const std::vector<double>& coeffs,
                const passes::PassOptions& opts)
{
    const int degree = static_cast<int>(coeffs.size()) - 1;
    BTS_CHECK(degree >= 1, "polynomial must have degree >= 1");
    BTS_CHECK(level >= degree,
              "degree-" << degree << " Horner chain needs " << degree
                        << " levels, input has " << level);
    Graph g("poly_eval_deg" + std::to_string(degree), traits);
    Value x = g.input(level, traits.delta);
    // Horner: acc = c_d * x + c_{d-1}; then acc = acc * x + c_j down to
    // the constant term. The leading coefficient rides in as a CMult.
    // No hand-placed rescales: the waterline pass inserts one before
    // every constant add, so the optimized chain spends exactly
    // `degree` levels (the raw form spends none and cannot execute —
    // its constant adds see double-scale operands).
    Value acc = g.cmult(x, coeffs[degree]);
    acc = g.cadd(acc, Complex(coeffs[degree - 1], 0.0));
    for (int j = degree - 2; j >= 0; --j) {
        acc = g.hmult(acc, x);
        acc = g.cadd(acc, Complex(coeffs[j], 0.0));
    }
    g.mark_output(acc);
    return finish(std::move(g), opts);
}

Graph
bootstrap_refresh_graph(const GraphTraits& traits,
                        const passes::PassOptions& opts)
{
    Graph g("bootstrap_refresh", traits);
    Value ct = g.input(0, traits.delta);
    ct = g.bootstrap(ct);
    g.mark_output(ct);
    return finish(std::move(g), opts);
}

} // namespace bts::runtime
