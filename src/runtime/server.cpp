#include "runtime/server.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "runtime/analysis/verifier.h"
#include "runtime/telemetry/metrics.h"
#include "runtime/telemetry/trace.h"

namespace bts::runtime {

namespace {

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

/** Per-process serving metrics (see executor.cpp's record_run_metrics
 *  for the resolve-once idiom). */
struct ServerMetrics
{
    telemetry::Counter& submitted;
    telemetry::Counter& completed;
    telemetry::Counter& failed;
    telemetry::Gauge& queue_depth;
    telemetry::Histogram& latency;

    static ServerMetrics&
    instance()
    {
        using telemetry::MetricsRegistry;
        MetricsRegistry& reg = MetricsRegistry::instance();
        static ServerMetrics* m = new ServerMetrics{
            reg.counter("bts_server_jobs_submitted_total",
                        "jobs admitted into the serving queue"),
            reg.counter("bts_server_jobs_completed_total",
                        "jobs whose future resolved with outputs"),
            reg.counter("bts_server_jobs_failed_total",
                        "jobs whose future resolved with an exception"),
            reg.gauge("bts_server_queue_depth",
                      "jobs waiting for a lane right now"),
            reg.histogram("bts_server_job_latency_seconds",
                          telemetry::latency_buckets(),
                          "submit-to-completion latency"),
        };
        return *m;
    }
};

/**
 * Describe the server's functional CkksContext as a CkksInstance so
 * the resource analyzer can price graphs against it. boot_levels is
 * per graph: the analyzer requires usable_levels == the graph's
 * declared bootstrap output level, which is a property of the bound
 * Bootstrapper, not of the parameter set.
 */
hw::CkksInstance
serving_instance(const CkksContext& ctx, const Graph& g)
{
    hw::CkksInstance inst;
    inst.name = "serving";
    inst.n = ctx.n();
    inst.max_level = ctx.max_level();
    inst.dnum = ctx.dnum();
    inst.q0_bits = ctx.params().q0_bits;
    inst.scale_bits = ctx.params().scale_bits;
    inst.boot_levels =
        g.uses_bootstrap()
            ? ctx.max_level() - g.traits().bootstrap_out_level
            : 0;
    return inst;
}

} // namespace

GraphServer::GraphServer(EvalResources res, ServerOptions opts)
    : res_(res), opts_(opts)
{
    BTS_CHECK(opts_.lanes >= 1, "server needs at least one lane");
    BTS_CHECK(opts_.lanes_per_job >= 1, "lanes_per_job must be >= 1");
    BTS_CHECK(opts_.queue_capacity >= 1, "queue capacity must be >= 1");
    executors_.reserve(opts_.lanes);
    for (int i = 0; i < opts_.lanes; ++i) {
        ExecOptions eo;
        eo.lanes = opts_.lanes_per_job;
        executors_.push_back(std::make_unique<Executor>(res_, eo));
    }
    lanes_.reserve(opts_.lanes);
    for (int i = 0; i < opts_.lanes; ++i) {
        lanes_.emplace_back([this, i] { lane_loop(i); });
    }
}

GraphServer::~GraphServer()
{
    drain();
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    queue_cv_.notify_all();
    space_cv_.notify_all(); // release submitters blocked on a full queue
    for (std::thread& t : lanes_) t.join();
}

const passes::OptimizeResult*
GraphServer::register_graph(const Graph& g, const passes::PassOptions& opts)
{
    {
        MutexLock lock(mutex_);
        const auto it = registered_.find(g.uid());
        if (it != registered_.end()) return it->second.get();
    }
    // Admission control: reject a bad graph HERE, as a structured
    // VerifyError the client can render, instead of caching it and
    // failing every submitted job with a worker-lane exception. The
    // key check runs against what this server actually holds — a graph
    // can be well-formed yet unservable on these resources.
    analysis::AnalysisOptions verify_opts;
    analysis::KeySet keys;
    keys.mult = res_.mult_key != nullptr && !res_.mult_key->empty();
    keys.conj = res_.conj_key != nullptr && !res_.conj_key->empty();
    keys.bootstrap = res_.bootstrapper != nullptr;
    if (res_.rot_keys != nullptr) {
        for (const auto& [amount, key] : *res_.rot_keys) {
            if (!key.empty()) keys.rotations.insert(amount);
        }
    }
    verify_opts.keys = keys;
    verify_opts.lints = false; // warnings don't block registration
    verify_opts.noise = true;
    analysis::verify_or_throw(g, verify_opts);
    // Optimize outside the lock: the rewrite is pure, and lanes must
    // keep draining while a (potentially large) graph is compiled. A
    // racing duplicate registration is harmless — first insert wins.
    auto result = std::make_unique<const passes::OptimizeResult>(
        passes::PassManager(opts).optimize(g));
    // Price the optimized graph once (also outside the lock): the
    // summary feeds cost-aware admission for every job submitted
    // against it. A graph the serving context's level geometry cannot
    // express (the analyzer throws) is served without an estimate.
    bool have_summary = false;
    analysis::ResourceSummary summary;
    try {
        summary = analysis::analyze_resources(
            result->graph,
            serving_instance(res_.eval->context(), result->graph));
        have_summary = true;
    } catch (const std::exception&) {
    }
    if (have_summary) {
        // Hand the per-node predictions to every lane executor: each
        // node's telemetry span carries its predicted cost, which is
        // what bts_profile closes the loop against. Keyed by graph uid
        // on the executor side, so pre-registration is race-free.
        std::vector<double> costs;
        costs.reserve(summary.nodes.size());
        for (const auto& node : summary.nodes) {
            costs.push_back(node.cost_s);
        }
        for (const auto& exec : executors_) {
            exec->set_node_costs(result->graph, costs);
        }
    }
    MutexLock lock(mutex_);
    const auto [it, inserted] = registered_.emplace(g.uid(),
                                                    std::move(result));
    if (inserted && have_summary) {
        summaries_.emplace(it->second->graph.uid(), std::move(summary));
    }
    return it->second.get();
}

const analysis::ResourceSummary*
GraphServer::resource_summary(const Graph& g) const
{
    MutexLock lock(mutex_);
    const auto it = summaries_.find(g.uid());
    return it != summaries_.end() ? &it->second : nullptr;
}

std::future<JobResult>
GraphServer::submit(JobRequest req)
{
    BTS_CHECK(req.graph != nullptr, "job has no graph");
    BTS_CHECK(req.deadline_s >= 0, "deadline must be >= 0");
    BTS_TRACE_INSTANT(kServer, "job.submitted", req.graph->uid());
    Job job;
    job.req = std::move(req);
    std::future<JobResult> fut = job.promise.get_future();
    {
        MutexLock lock(mutex_);
        const auto est = summaries_.find(job.req.graph->uid());
        if (est != summaries_.end()) {
            job.est_cost_s = est->second.total_work_s;
        }
        // Charged to the cost budget only when there IS an estimate.
        const double charge = std::max(job.est_cost_s, 0.0);
        // stop_ must be part of the wait predicate: a submitter blocked
        // on a full queue can otherwise wake after the lanes exited and
        // enqueue a job nobody will ever pop (broken promise). The cost
        // budget admits into an empty queue unconditionally, so one
        // over-budget job can never deadlock admission.
        while (!(stop_ ||
                 (queue_.size() < opts_.queue_capacity &&
                  (opts_.max_queued_cost_s <= 0 || queue_.empty() ||
                   queued_cost_s_ + charge <=
                       opts_.max_queued_cost_s)))) {
            space_cv_.wait(mutex_);
        }
        BTS_CHECK(!stop_, "server is shutting down");
        job.submitted = Clock::now();
        if (job.req.deadline_s > 0) {
            job.has_deadline = true;
            job.deadline =
                job.submitted +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(job.req.deadline_s));
        }
        if (submitted_ == 0) first_submit_ = job.submitted;
        ++submitted_;
        queued_cost_s_ += charge;
        peak_queued_cost_s_ = std::max(peak_queued_cost_s_,
                                       queued_cost_s_);
        queue_.push_back(std::move(job));
        BTS_TRACE_INSTANT(kServer, "job.admitted", queue_.size());
        BTS_TRACE_COUNTER(kServer, "server.queue_depth", queue_.size());
        ServerMetrics::instance().submitted.inc(1);
        ServerMetrics::instance().queue_depth.set(
            static_cast<double>(queue_.size()));
    }
    queue_cv_.notify_one();
    return fut;
}

void
GraphServer::drain()
{
    MutexLock lock(mutex_);
    while (!(queue_.empty() && active_ == 0)) idle_cv_.wait(mutex_);
}

std::size_t
GraphServer::pick_job() const
{
    if (!opts_.cost_aware) return 0;
    // Priority desc, then earliest deadline (deadline jobs ahead of
    // deadline-free ones), then smallest estimate (SJF — keeps cheap
    // traffic from queueing behind one expensive job; no estimate
    // orders as infinitely expensive), then FIFO. O(queue) per pickup,
    // bounded by queue_capacity.
    const auto cost_key = [](const Job& j) {
        return j.est_cost_s < 0
                   ? std::numeric_limits<double>::infinity()
                   : j.est_cost_s;
    };
    const auto better = [&](const Job& a, const Job& b) {
        if (a.req.priority != b.req.priority) {
            return a.req.priority > b.req.priority;
        }
        if (a.has_deadline != b.has_deadline) return a.has_deadline;
        if (a.has_deadline && a.deadline != b.deadline) {
            return a.deadline < b.deadline;
        }
        return cost_key(a) < cost_key(b);
    };
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (better(queue_[i], queue_[best])) best = i;
    }
    return best;
}

void
GraphServer::lane_loop(int lane_idx)
{
    // Name the lane before any event is emitted: the Chrome-trace
    // exporter turns per-thread buffers into per-lane tracks (Fig 8's
    // lane axis), so the name is the track label.
    telemetry::set_thread_name("lane " + std::to_string(lane_idx));
    Executor& exec = *executors_[lane_idx];
    for (;;) {
        Job job;
        {
            MutexLock lock(mutex_);
            while (!stop_ && queue_.empty()) queue_cv_.wait(mutex_);
            if (queue_.empty()) return; // stop_ and no work left
            const std::size_t idx = pick_job();
            job = std::move(queue_[idx]);
            queue_.erase(queue_.begin() +
                         static_cast<std::ptrdiff_t>(idx));
            queued_cost_s_ -= std::max(job.est_cost_s, 0.0);
            ++active_;
            BTS_TRACE_INSTANT(kServer, "job.scheduled",
                              job.req.graph->uid());
            BTS_TRACE_COUNTER(kServer, "server.queue_depth",
                              queue_.size());
            ServerMetrics::instance().queue_depth.set(
                static_cast<double>(queue_.size()));
        }
        // notify_all, not notify_one: with cost backpressure,
        // submitters block on different budgets — the one woken might
        // not be the one whose predicate just became true.
        space_cv_.notify_all();

        const Clock::time_point start = Clock::now();
        JobResult result;
        result.queue_s = seconds(start - job.submitted);
        result.est_cost_s = std::max(job.est_cost_s, 0.0);
        bool ok = true;
        {
            BTS_TRACE_SPAN_VAR(job_span, kServer, "job");
            job_span.set_arg(
                static_cast<i64>(job.req.graph->uid()));
            job_span.set_cost(result.est_cost_s);
            try {
                result.outputs =
                    exec.run(*job.req.graph, std::move(job.req.inputs));
            } catch (...) {
                ok = false;
                job.promise.set_exception(std::current_exception());
            }
        }
        const Clock::time_point end = Clock::now();
        result.exec_s = seconds(end - start);
        BTS_TRACE_INSTANT(kServer, "job.done", job.req.graph->uid());
        (ok ? ServerMetrics::instance().completed
            : ServerMetrics::instance().failed)
            .inc(1);
        ServerMetrics::instance().latency.observe(
            seconds(end - job.submitted));
        // Fulfil the promise BEFORE decrementing active_: drain()
        // returning must imply every admitted job's future is ready.
        if (ok) job.promise.set_value(std::move(result));

        {
            MutexLock lock(mutex_);
            --active_;
            last_complete_ = end;
            if (ok) {
                ++completed_;
                ++completed_by_client_[job.req.client];
                exec_total_s_ += result.exec_s;
                // Algorithm-R reservoir: every completed job's latency
                // has equal probability of being in the sample.
                constexpr std::size_t kReservoir = 4096;
                const double latency = seconds(end - job.submitted);
                const auto offer = [&](std::vector<double>& sample,
                                       std::size_t seen) {
                    if (sample.size() < kReservoir) {
                        sample.push_back(latency);
                    } else {
                        const u64 slot = latency_rng_.uniform(seen);
                        if (slot < kReservoir) sample[slot] = latency;
                    }
                };
                offer(latencies_s_, ++latency_seen_);
                offer(client_latencies_s_[job.req.client],
                      ++client_latency_seen_[job.req.client]);
            } else {
                ++failed_;
            }
        }
        idle_cv_.notify_all();
    }
}

ServerStats
GraphServer::stats() const
{
    ServerStats s;
    std::vector<double> sorted;
    std::map<std::string, std::vector<double>> client_sorted;
    {
        MutexLock lock(mutex_);
        s.submitted = submitted_;
        s.completed = completed_;
        s.failed = failed_;
        s.completed_by_client = completed_by_client_;
        s.queued_cost_s = queued_cost_s_;
        s.peak_queued_cost_s = peak_queued_cost_s_;
        sorted = latencies_s_;
        client_sorted = client_latencies_s_;
        if (completed_ > 0) {
            s.mean_exec_s =
                exec_total_s_ / static_cast<double>(completed_);
            const double span = seconds(last_complete_ - first_submit_);
            s.jobs_per_s = span > 0
                               ? static_cast<double>(completed_) / span
                               : 0.0;
        }
    }
    // Sort outside the lock: stats() must not stall admission or lane
    // completion while it computes percentiles.
    const auto pct = [](std::vector<double>& sample, double p) {
        std::sort(sample.begin(), sample.end());
        const std::size_t idx = static_cast<std::size_t>(
            p * static_cast<double>(sample.size() - 1));
        return sample[idx];
    };
    if (!sorted.empty()) {
        s.p50_latency_s = pct(sorted, 0.50);
        s.p99_latency_s = pct(sorted, 0.99);
    }
    for (auto& [client, sample] : client_sorted) {
        if (sample.empty()) continue;
        s.p99_latency_by_client_s[client] = pct(sample, 0.99);
    }
    return s;
}

} // namespace bts::runtime
