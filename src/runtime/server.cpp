#include "runtime/server.h"

#include <algorithm>

#include "common/check.h"
#include "runtime/analysis/verifier.h"

namespace bts::runtime {

namespace {

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

} // namespace

GraphServer::GraphServer(EvalResources res, ServerOptions opts)
    : res_(res), opts_(opts)
{
    BTS_CHECK(opts_.lanes >= 1, "server needs at least one lane");
    BTS_CHECK(opts_.lanes_per_job >= 1, "lanes_per_job must be >= 1");
    BTS_CHECK(opts_.queue_capacity >= 1, "queue capacity must be >= 1");
    executors_.reserve(opts_.lanes);
    for (int i = 0; i < opts_.lanes; ++i) {
        ExecOptions eo;
        eo.lanes = opts_.lanes_per_job;
        executors_.push_back(std::make_unique<Executor>(res_, eo));
    }
    lanes_.reserve(opts_.lanes);
    for (int i = 0; i < opts_.lanes; ++i) {
        lanes_.emplace_back([this, i] { lane_loop(i); });
    }
}

GraphServer::~GraphServer()
{
    drain();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    queue_cv_.notify_all();
    space_cv_.notify_all(); // release submitters blocked on a full queue
    for (std::thread& t : lanes_) t.join();
}

const passes::OptimizeResult*
GraphServer::register_graph(const Graph& g, const passes::PassOptions& opts)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = registered_.find(g.uid());
        if (it != registered_.end()) return it->second.get();
    }
    // Admission control: reject a bad graph HERE, as a structured
    // VerifyError the client can render, instead of caching it and
    // failing every submitted job with a worker-lane exception. The
    // key check runs against what this server actually holds — a graph
    // can be well-formed yet unservable on these resources.
    analysis::AnalysisOptions verify_opts;
    analysis::KeySet keys;
    keys.mult = res_.mult_key != nullptr && !res_.mult_key->empty();
    keys.conj = res_.conj_key != nullptr && !res_.conj_key->empty();
    keys.bootstrap = res_.bootstrapper != nullptr;
    if (res_.rot_keys != nullptr) {
        for (const auto& [amount, key] : *res_.rot_keys) {
            if (!key.empty()) keys.rotations.insert(amount);
        }
    }
    verify_opts.keys = keys;
    verify_opts.lints = false; // warnings don't block registration
    verify_opts.noise = true;
    analysis::verify_or_throw(g, verify_opts);
    // Optimize outside the lock: the rewrite is pure, and lanes must
    // keep draining while a (potentially large) graph is compiled. A
    // racing duplicate registration is harmless — first insert wins.
    auto result = std::make_unique<const passes::OptimizeResult>(
        passes::PassManager(opts).optimize(g));
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = registered_.emplace(g.uid(),
                                                    std::move(result));
    (void)inserted;
    return it->second.get();
}

std::future<JobResult>
GraphServer::submit(JobRequest req)
{
    BTS_CHECK(req.graph != nullptr, "job has no graph");
    Job job;
    job.req = std::move(req);
    std::future<JobResult> fut = job.promise.get_future();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // stop_ must be part of the wait predicate: a submitter blocked
        // on a full queue can otherwise wake after the lanes exited and
        // enqueue a job nobody will ever pop (broken promise).
        space_cv_.wait(lock, [&] {
            return stop_ || queue_.size() < opts_.queue_capacity;
        });
        BTS_CHECK(!stop_, "server is shutting down");
        job.submitted = Clock::now();
        if (submitted_ == 0) first_submit_ = job.submitted;
        ++submitted_;
        queue_.push_back(std::move(job));
    }
    queue_cv_.notify_one();
    return fut;
}

void
GraphServer::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

void
GraphServer::lane_loop(int lane_idx)
{
    Executor& exec = *executors_[lane_idx];
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return; // stop_ and no work left
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        space_cv_.notify_one();

        const Clock::time_point start = Clock::now();
        JobResult result;
        result.queue_s = seconds(start - job.submitted);
        bool ok = true;
        try {
            result.outputs =
                exec.run(*job.req.graph, std::move(job.req.inputs));
        } catch (...) {
            ok = false;
            job.promise.set_exception(std::current_exception());
        }
        const Clock::time_point end = Clock::now();
        result.exec_s = seconds(end - start);
        // Fulfil the promise BEFORE decrementing active_: drain()
        // returning must imply every admitted job's future is ready.
        if (ok) job.promise.set_value(std::move(result));

        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            last_complete_ = end;
            if (ok) {
                ++completed_;
                ++completed_by_client_[job.req.client];
                exec_total_s_ += result.exec_s;
                // Algorithm-R reservoir: every completed job's latency
                // has equal probability of being in the sample.
                constexpr std::size_t kReservoir = 4096;
                const double latency = seconds(end - job.submitted);
                ++latency_seen_;
                if (latencies_s_.size() < kReservoir) {
                    latencies_s_.push_back(latency);
                } else {
                    const u64 slot = latency_rng_.uniform(latency_seen_);
                    if (slot < kReservoir) {
                        latencies_s_[slot] = latency;
                    }
                }
            } else {
                ++failed_;
            }
        }
        idle_cv_.notify_all();
    }
}

ServerStats
GraphServer::stats() const
{
    ServerStats s;
    std::vector<double> sorted;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s.submitted = submitted_;
        s.completed = completed_;
        s.failed = failed_;
        s.completed_by_client = completed_by_client_;
        sorted = latencies_s_;
        if (completed_ > 0) {
            s.mean_exec_s =
                exec_total_s_ / static_cast<double>(completed_);
            const double span = seconds(last_complete_ - first_submit_);
            s.jobs_per_s = span > 0
                               ? static_cast<double>(completed_) / span
                               : 0.0;
        }
    }
    // Sort outside the lock: stats() must not stall admission or lane
    // completion while it computes percentiles.
    if (!sorted.empty()) {
        std::sort(sorted.begin(), sorted.end());
        const auto pct = [&](double p) {
            const std::size_t idx = static_cast<std::size_t>(
                p * static_cast<double>(sorted.size() - 1));
            return sorted[idx];
        };
        s.p50_latency_s = pct(0.50);
        s.p99_latency_s = pct(0.99);
    }
    return s;
}

} // namespace bts::runtime
