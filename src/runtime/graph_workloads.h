/**
 * @file
 * Graph-API workload definitions.
 *
 * tmult_graph() is the paper's T_mult,a/slot microbenchmark (Eq. 8)
 * ported from the hand-written sim::TraceBuilder generator
 * (workloads::tmult_microbench) to the runtime IR — the validation
 * loop the simulator was missing: lowering it yields an op-for-op
 * identical trace (pinned by tests), while the same definition also
 * executes functionally.
 *
 * The remaining generators are the serving harness's client scenarios
 * at functional scale: an encrypted dot product (rotation log-tree), a
 * Horner polynomial evaluation, and a bootstrap refresh.
 *
 * The pin contract, stated once: every graph-API port of a hand
 * generator must lower (lower_to_trace) to a trace the tests can
 * equate with the generator's output. tmult_graph is pinned
 * op-for-op (tests/runtime/test_lowering.cpp); the application
 * graphs in runtime/apps/ (HELR, ResNet, sorting) are pinned on
 * op-kind histogram + bootstrap count + op count per Table 4
 * instance (tests/runtime/test_apps_pin.cpp) — levels and object ids
 * may differ, the op mix and refresh schedule the simulator prices
 * may not. A structural edit on either side must be mirrored on the
 * other, then re-pinned.
 */
#pragma once

#include <vector>

#include "hwparams/instance.h"
#include "runtime/graph.h"
#include "runtime/passes/pass_manager.h"

namespace bts::runtime {

/** Graph traits matching a full-scale simulator instance. */
GraphTraits traits_for(const hw::CkksInstance& inst);

/**
 * Every generator below runs the pass pipeline (runtime/passes/) on
 * the graph it builds before returning it — callers get the fused /
 * hoisted / lazy-annotated form by default. Pass
 * passes::PassOptions::rescale_only() for the executable-but-
 * unoptimized baseline (the pass-off benchmark arm and the
 * differential tests), or passes::PassOptions::none() for the raw
 * builder-authored form (trace-structure tests only: poly_eval_graph's
 * raw form leaves double-scale operands on constant adds and cannot
 * execute — rescale placement is the pass pipeline's job now).
 */

/** Eq. 8's numerator as a graph: one bootstrap, then HMult + HRescale
 *  down the usable levels. Input 0: the exhausted ciphertext; input 1:
 *  the multiplicand. The rescales stay hand-placed here — the raw
 *  chain's scale bookkeeping would overflow a double at INS-3's 25
 *  usable levels — and the insert-only placement pass honors them. */
Graph tmult_graph(const hw::CkksInstance& inst,
                  const passes::PassOptions& opts = {});

/**
 * Encrypted dot product: slot-wise PMult by a plaintext weight vector
 * (bound at execution), rescale, then a log-tree of 2^k-slot rotations
 * summing @p log_dim strides — every slot ends holding the reduction.
 * Consumes one level; needs rotation keys {1, 2, .., 2^(log_dim-1)}.
 */
Graph dot_product_graph(const GraphTraits& traits, int level, int log_dim,
                        const passes::PassOptions& opts = {});

/**
 * Degree-@p degree polynomial evaluation via Horner's rule with
 * constant coefficients c_j = coeffs[j] (c_0 first): consumes
 * @p degree levels below @p level; inter-op parallelism is nil (a
 * dependence chain), which makes it the serving mix's latency-bound
 * client. Rescales are NOT hand-placed: the waterline pass inserts
 * them (one before every constant add), so the default form matches
 * the historical hand-written chain with the mult+rescale pairs fused.
 */
Graph poly_eval_graph(const GraphTraits& traits, int level,
                      const std::vector<double>& coeffs,
                      const passes::PassOptions& opts = {});

/** An exhausted ciphertext through one Bootstrap node. */
Graph bootstrap_refresh_graph(const GraphTraits& traits,
                              const passes::PassOptions& opts = {});

} // namespace bts::runtime
