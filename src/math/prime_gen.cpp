#include "math/prime_gen.h"

#include <algorithm>

#include "common/bit_ops.h"
#include "common/check.h"
#include "math/mod_arith.h"

namespace bts {

namespace {

bool
miller_rabin_witness(u64 n, u64 a, u64 d, int r)
{
    u64 x = pow_mod(a, d, n);
    if (x == 1 || x == n - 1) return false;
    for (int i = 0; i < r - 1; ++i) {
        x = mul_mod(x, x, n);
        if (x == n - 1) return false;
    }
    return true; // composite witness found
}

} // namespace

bool
is_prime(u64 n)
{
    if (n < 2) return false;
    for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n == p) return true;
        if (n % p == 0) return false;
    }
    u64 d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // This witness set is deterministic for all 64-bit integers.
    for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        if (miller_rabin_witness(n, a, d, r)) return false;
    }
    return true;
}

u64
find_primitive_root(u64 p, u64 two_n)
{
    BTS_CHECK((p - 1) % two_n == 0, "p must be 1 mod 2N");
    const u64 cofactor = (p - 1) / two_n;
    // Try candidate generators; g^cofactor is a 2n-th root of unity, and
    // it is primitive iff its (2n/2)-th power is not 1.
    for (u64 g = 2; g < p; ++g) {
        const u64 root = pow_mod(g, cofactor, p);
        if (root == 1) continue;
        if (pow_mod(root, two_n / 2, p) == p - 1) {
            return root;
        }
    }
    panic("no primitive root found");
}

std::vector<u64>
generate_ntt_primes(int bit_size, u64 two_n, int count,
                    const std::vector<u64>& exclude)
{
    // The Harvey lazy NTT keeps residues in [0, 4q) inside a 64-bit
    // word, so every generated modulus must satisfy q < 2^62; the
    // kMaxModulusBits cap (<= 61 bits, re-checked here) guarantees it.
    static_assert(kMaxModulusBits < 62,
                  "generated primes must leave the lazy NTT domain "
                  "[0, 4q) representable in u64");
    BTS_CHECK(bit_size >= 20 && bit_size <= kMaxModulusBits,
              "prime bit size out of supported range");
    BTS_CHECK(is_power_of_two(two_n), "2N must be a power of two");

    std::vector<u64> primes;
    const u64 center = 1ULL << bit_size;
    // Candidates are center +- k*2N + 1.
    u64 up = center + 1;
    u64 down = center + 1;
    // Align to == 1 mod 2N.
    up += (two_n - ((up - 1) % two_n)) % two_n;
    down -= ((down - 1) % two_n);

    auto taken = [&](u64 p) {
        return std::find(primes.begin(), primes.end(), p) != primes.end() ||
               std::find(exclude.begin(), exclude.end(), p) != exclude.end();
    };

    bool go_up = true;
    while (static_cast<int>(primes.size()) < count) {
        u64 candidate;
        if (go_up) {
            candidate = up;
            up += two_n;
        } else {
            BTS_CHECK(down > two_n, "ran out of prime candidates below 2^b");
            candidate = down;
            down -= two_n;
        }
        go_up = !go_up;
        if ((candidate >> kMaxModulusBits) != 0) continue;
        if (!taken(candidate) && is_prime(candidate)) {
            primes.push_back(candidate);
        }
    }
    return primes;
}

} // namespace bts
