/**
 * @file
 * Negacyclic Number Theoretic Transform (NTT) over Z_q[X]/(X^N + 1).
 *
 * Polynomial multiplication in the CKKS ring is a negacyclic convolution;
 * the NTT turns it into an element-wise product (Section 4.1 of the
 * paper). This implementation uses the standard merged-twiddle radix-2
 * decimation algorithm with Shoup multiplication and twiddle factors (odd
 * powers of the primitive 2N-th root of unity psi) stored in bit-reversed
 * order, so both directions run in O(N log N) with unit-stride inner
 * loops.
 *
 * The butterfly core uses Harvey-style lazy reduction:
 *  - forward (DIT) butterflies keep coefficients in [0, 4q): each
 *    butterfly pays ONE branchless conditional subtraction (x -= 2q if
 *    x >= 2q) on its X input and a lazy Shoup product in [0, 2q) on its
 *    Y input, instead of a fully-reduced add_mod/sub_mod pair;
 *  - inverse (GS) butterflies work in [0, 2q);
 *  - the canonicalizing correction is folded into the LAST stage (no
 *    extra pass), and N^{-1} is folded into the last inverse stage's
 *    twiddle constants, so the inverse has no scaling tail loop at all.
 * This requires q < 2^62 so the lazy domain fits a 64-bit word
 * (enforced via kMaxModulusBits); all lazy values then stay below 2^63.
 *
 * forward_lazy() skips the final canonicalization and returns residues
 * in [0, 2q) for consumers that reduce anyway (Barrett pointwise
 * products, fused subtract-multiply chains) — the correction is paid
 * once per chain, not once per op.
 *
 * The pre-Harvey fully-reduced scalar path is kept verbatim as
 * forward_oracle()/inverse_oracle(): the differential test oracle.
 *
 * When built with -DBTS_USE_AVX2=ON (and an AVX2-capable CPU) the
 * butterfly inner loops additionally dispatch to 4-wide intrinsics
 * kernels; results are bit-identical to the scalar lazy path.
 */
#pragma once

#include <vector>

#include "common/types.h"
#include "math/mod_arith.h"

namespace bts {

/** Precomputed tables for one (prime, N) pair. */
class NttTables
{
  public:
    /**
     * Build tables for degree @p n (power of two) and modulus @p prime
     * (must satisfy prime == 1 mod 2n and fit kMaxModulusBits, the
     * lazy-domain bound). Twiddle power chains are built with a Barrett
     * reducer — no 128-bit division per entry.
     */
    NttTables(std::size_t n, u64 prime);

    std::size_t n() const { return n_; }
    u64 modulus() const { return prime_; }
    u64 psi() const { return psi_; }

    /** In-place forward negacyclic NTT; output canonical in [0, q),
     *  bit-reversed order. */
    void forward(u64* data) const;

    /** In-place forward NTT with lazy output in [0, 2q) (bit-reversed
     *  order; same residues as forward() mod q). Only consumers that
     *  tolerate [0, 2q) inputs — Barrett products, ShoupMul::mul, the
     *  lazy-aware RnsPoly ops — may read the result. */
    void forward_lazy(u64* data) const;

    /** In-place inverse negacyclic NTT; input in bit-reversed order,
     *  output canonical (N^{-1} folded into the last stage). Accepts
     *  lazy inputs in [0, 2q). */
    void inverse(u64* data) const;

    // ----- stage-granular entry points (coefficient-level parallelism) --
    // A radix-2 transform is log2(N) stages of N/2 independent
    // butterflies; the batch drivers below split each stage across
    // lanes when there are fewer limbs than threads (the paper's PE
    // mapping, Section 4.3). Butterflies are indexed 0..N/2-1 in stage
    // order; any partition of that range computes the same bits.

    /** Forward-stage butterflies [b_begin, b_end) for stage @p m
     *  (m = 1, 2, 4, ..., N/2 in execution order). The final stage
     *  (m == N/2) canonicalizes, or reduces only to [0, 2q) when
     *  @p lazy_output is set — matching forward()/forward_lazy(). */
    void forward_stage(u64* data, std::size_t m, std::size_t b_begin,
                       std::size_t b_end, bool lazy_output = false) const;

    /** Inverse-stage butterflies [b_begin, b_end) for stage @p m
     *  (m = N, N/2, ..., 2 in execution order). The final stage (m == 2)
     *  applies the fused N^{-1} twiddles and canonicalizes. */
    void inverse_stage(u64* data, std::size_t m, std::size_t b_begin,
                       std::size_t b_end) const;

    // ----- differential-test oracles ------------------------------------
    // The seed implementation: fully-reduced Shoup butterflies with
    // branchy add_mod/sub_mod and a serial N^{-1} tail loop. Kept (and
    // kept slow) as the bit-exactness reference for the lazy core.

    /** Reference forward transform (fully reduced each butterfly). */
    void forward_oracle(u64* data) const;

    /** Reference inverse transform (serial N^{-1} tail loop). */
    void inverse_oracle(u64* data) const;

    /** Number of butterfly operations one transform performs. */
    std::size_t butterfly_count() const { return n_ / 2 * log_n_; }

  private:
    std::size_t n_;
    int log_n_;
    u64 prime_;
    u64 psi_;   // primitive 2n-th root of unity
    u64 n_inv_; // n^{-1} mod prime

    std::vector<ShoupMul> psi_br_;     // psi powers, bit-reversed order
    std::vector<ShoupMul> psi_inv_br_; // inverse psi powers, bit-reversed
    ShoupMul inv_n_;   // n^{-1}: X-side constant of the fused last stage
    ShoupMul inv_n_w_; // psi_inv_br_[1].w * n^{-1}: its Y-side twiddle
};

/**
 * Batch forward NTT over @p count limbs stored at @p stride words apart
 * in one flat buffer (limb i occupies data[i*stride .. i*stride+N)).
 *
 * Scheduling: with at least as many limbs as lanes (or a small N), each
 * limb transforms whole on one lane — identical to the per-limb path.
 * With fewer limbs than lanes the transform runs stage by stage, each
 * stage tiled over (limb x butterfly-block) so utilization stays full
 * at any chain length. Both schedules are bit-exact.
 *
 * tables[i] must match limb i's modulus; all limbs share one N.
 *
 * The raw-pointer overloads take an array of at least @p count table
 * pointers (callers with cached per-level vectors pass .data() and
 * avoid building a fresh vector per call); the vector overloads add a
 * size check.
 */
void ntt_forward_batch(const NttTables* const* tables, u64* data,
                       std::size_t count, std::size_t stride);

/** Batch forward NTT with lazy outputs in [0, 2q) per limb — see
 *  NttTables::forward_lazy for the consumer contract. */
void ntt_forward_batch_lazy(const NttTables* const* tables, u64* data,
                            std::size_t count, std::size_t stride);

/** Batch inverse NTT; same layout and scheduling as ntt_forward_batch.
 *  Canonical output — N^{-1} is folded into the final stage, so there
 *  is no separate scaling sweep. */
void ntt_inverse_batch(const NttTables* const* tables, u64* data,
                       std::size_t count, std::size_t stride);

inline void
ntt_forward_batch(const std::vector<const NttTables*>& tables, u64* data,
                  std::size_t count, std::size_t stride)
{
    BTS_CHECK(tables.size() >= count, "NTT table count mismatch");
    ntt_forward_batch(tables.data(), data, count, stride);
}

inline void
ntt_forward_batch_lazy(const std::vector<const NttTables*>& tables,
                       u64* data, std::size_t count, std::size_t stride)
{
    BTS_CHECK(tables.size() >= count, "NTT table count mismatch");
    ntt_forward_batch_lazy(tables.data(), data, count, stride);
}

inline void
ntt_inverse_batch(const std::vector<const NttTables*>& tables, u64* data,
                  std::size_t count, std::size_t stride)
{
    BTS_CHECK(tables.size() >= count, "NTT table count mismatch");
    ntt_inverse_batch(tables.data(), data, count, stride);
}

/**
 * Reference O(N^2) negacyclic convolution used by the tests to validate
 * the NTT path: out = a * b mod (X^N + 1, q).
 */
std::vector<u64> negacyclic_mul_reference(const std::vector<u64>& a,
                                          const std::vector<u64>& b, u64 q);

} // namespace bts
