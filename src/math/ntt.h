/**
 * @file
 * Negacyclic Number Theoretic Transform (NTT) over Z_q[X]/(X^N + 1).
 *
 * Polynomial multiplication in the CKKS ring is a negacyclic convolution;
 * the NTT turns it into an element-wise product (Section 4.1 of the
 * paper). This implementation uses the standard merged-twiddle radix-2
 * decimation algorithm with Shoup multiplication and twiddle factors (odd
 * powers of the primitive 2N-th root of unity psi) stored in bit-reversed
 * order, so both directions run in O(N log N) with unit-stride inner
 * loops.
 */
#pragma once

#include <vector>

#include "common/types.h"
#include "math/mod_arith.h"

namespace bts {

/** Precomputed tables for one (prime, N) pair. */
class NttTables
{
  public:
    /**
     * Build tables for degree @p n (power of two) and modulus @p prime
     * (must satisfy prime == 1 mod 2n).
     */
    NttTables(std::size_t n, u64 prime);

    std::size_t n() const { return n_; }
    u64 modulus() const { return prime_; }
    u64 psi() const { return psi_; }

    /** In-place forward negacyclic NTT; output in bit-reversed order. */
    void forward(u64* data) const;

    /** In-place inverse negacyclic NTT; input in bit-reversed order. */
    void inverse(u64* data) const;

    /** Number of butterfly operations one transform performs. */
    std::size_t butterfly_count() const { return n_ / 2 * log_n_; }

  private:
    std::size_t n_;
    int log_n_;
    u64 prime_;
    u64 psi_;        // primitive 2n-th root of unity
    u64 n_inv_;      // n^{-1} mod prime
    u64 n_inv_shoup_;

    std::vector<ShoupMul> psi_br_;     // psi powers, bit-reversed order
    std::vector<ShoupMul> psi_inv_br_; // inverse psi powers, bit-reversed
};

/**
 * Reference O(N^2) negacyclic convolution used by the tests to validate
 * the NTT path: out = a * b mod (X^N + 1, q).
 */
std::vector<u64> negacyclic_mul_reference(const std::vector<u64>& a,
                                          const std::vector<u64>& b, u64 q);

} // namespace bts
