/**
 * @file
 * 64-bit modular arithmetic.
 *
 * BTS's word size is 64 bits; modular-reduction units in the hardware use
 * Barrett reduction to bring 128-bit products back to the word size
 * (Section 5). This module provides the software equivalents: plain
 * 128-bit reduction, a Barrett reducer with precomputed constant, and
 * Shoup multiplication for the hot NTT path where one operand (the
 * twiddle factor) is fixed.
 *
 * Lazy (Harvey-style) domain: the NTT hot path keeps residues in
 * [0, 2q) or [0, 4q) between butterflies and defers the conditional
 * subtractions to one correction at the end of the chain. The *_lazy
 * primitives below implement that domain; they require q < 2^62 so that
 * 4q (and every intermediate sum) fits in a 64-bit word — enforced
 * globally by kMaxModulusBits.
 */
#pragma once

#include "common/check.h"
#include "common/types.h"

namespace bts {

/** @return (a + b) mod m; inputs must already be reduced (enforced in
 *  Debug builds — unreduced inputs are a caller bug, not a supported
 *  overflow mode). */
inline u64
add_mod(u64 a, u64 b, u64 m)
{
    BTS_DEBUG_ASSERT(a < m && b < m, "add_mod: unreduced input");
    const u64 s = a + b; // cannot wrap: a, b < m < 2^62
    return s >= m ? s - m : s;
}

/** @return (a - b) mod m; inputs must already be reduced (Debug-checked
 *  like add_mod). */
inline u64
sub_mod(u64 a, u64 b, u64 m)
{
    BTS_DEBUG_ASSERT(a < m && b < m, "sub_mod: unreduced input");
    return a >= b ? a - b : a + m - b;
}

// ----- lazy-domain primitives (Harvey butterflies) ----------------------

/** Unreduced sum: [0, 2q) + [0, 2q) -> [0, 4q). Caller tracks the
 *  domain; no reduction, no overflow for q < 2^62. */
inline u64
add_lazy(u64 a, u64 b)
{
    return a + b;
}

/** Shifted difference: a - b + 2q for a, b in [0, 2q) -> result in
 *  (0, 4q), never negative. */
inline u64
sub_lazy_2q(u64 a, u64 b, u64 two_q)
{
    return a + two_q - b;
}

/** One branchless conditional subtraction: [0, 4q) -> [0, 2q)
 *  (compiles to cmov / SIMD select, no data-dependent branch). */
inline u64
reduce_2q(u64 x, u64 two_q)
{
    return x - (x >= two_q ? two_q : 0);
}

/** Canonicalize a lazy residue: [0, 4q) -> [0, q) in two conditional
 *  subtractions. */
inline u64
reduce_4q_to_q(u64 x, u64 q)
{
    x = reduce_2q(x, 2 * q);
    return x >= q ? x - q : x;
}

/** @return (a * b) mod m via 128-bit intermediate. */
inline u64
mul_mod(u64 a, u64 b, u64 m)
{
    return static_cast<u64>((static_cast<u128>(a) * b) % m);
}

/** @return a^e mod m (binary exponentiation). */
u64 pow_mod(u64 a, u64 e, u64 m);

/** @return a^{-1} mod m; requires gcd(a, m) == 1. */
u64 inv_mod(u64 a, u64 m);

/** @return gcd(a, b). */
u64 gcd_u64(u64 a, u64 b);

/** Map a signed value into [0, m). */
inline u64
signed_to_mod(i64 v, u64 m)
{
    const i64 r = v % static_cast<i64>(m);
    return r < 0 ? static_cast<u64>(r + static_cast<i64>(m))
                 : static_cast<u64>(r);
}

/** Map a residue in [0, m) to its centered representative in (-m/2, m/2]. */
inline i64
mod_to_signed(u64 v, u64 m)
{
    return v > m / 2 ? static_cast<i64>(v) - static_cast<i64>(m)
                     : static_cast<i64>(v);
}

/**
 * Barrett reducer for a fixed modulus.
 *
 * Precomputes mu = floor(2^128 / m) (stored as two 64-bit halves of the
 * 2^64-scaled variant). reduce() accepts any 128-bit value less than
 * m * 2^64 and is exact after at most one conditional subtraction.
 */
class Barrett
{
  public:
    Barrett() = default;

    explicit Barrett(u64 modulus);

    u64 modulus() const { return m_; }

    /** Reduce a 128-bit value (v < m * 2^64) modulo m. */
    u64 reduce(u128 v) const;

    /** (a * b) mod m using the precomputed constant. */
    u64 mul(u64 a, u64 b) const { return reduce(static_cast<u128>(a) * b); }

  private:
    u64 m_ = 0;
    u64 mu_hi_ = 0; // floor(2^128 / m) high limb
    u64 mu_lo_ = 0; // floor(2^128 / m) low limb
};

/**
 * Shoup multiplication context: multiply by a fixed constant w modulo m
 * with a single 64x64 multiply-high and one correction, the standard
 * trick for NTT butterflies.
 */
struct ShoupMul
{
    u64 w = 0;       //!< the constant operand, reduced mod m
    u64 w_shoup = 0; //!< floor(w * 2^64 / m)

    ShoupMul() = default;

    /**
     * @p operand may be unreduced; it is reduced mod @p modulus here.
     * (An unreduced w would silently produce a wrong w_shoup: the
     * quotient estimate in mul() assumes w < m.)
     */
    ShoupMul(u64 operand, u64 modulus)
        : w(operand % modulus),
          w_shoup(static_cast<u64>((static_cast<u128>(w) << 64) / modulus))
    {}

    /** Build from an operand already reduced mod @p modulus, skipping
     *  the constructor's 64-bit remainder (the table-construction hot
     *  path derives every twiddle from a reduced power chain). */
    static ShoupMul
    from_reduced(u64 w, u64 modulus)
    {
        BTS_DEBUG_ASSERT(w < modulus, "from_reduced: unreduced operand");
        ShoupMul s;
        s.w = w;
        s.w_shoup =
            static_cast<u64>((static_cast<u128>(w) << 64) / modulus);
        return s;
    }

    /** @return (x * w) mod m, canonical in [0, m) for ANY 64-bit x (the
     *  quotient estimate only assumes w < m), so lazy-domain inputs are
     *  accepted. */
    u64
    mul(u64 x, u64 m) const
    {
        const u64 q = static_cast<u64>((static_cast<u128>(x) * w_shoup) >> 64);
        const u64 r = x * w - q * m;
        return r >= m ? r - m : r;
    }

    /** Lazy Shoup product: @return a value congruent to x * w mod m in
     *  [0, 2m), skipping the final conditional subtraction. Valid for
     *  any 64-bit x (in particular the [0, 4q) butterfly domain). */
    u64
    mul_lazy(u64 x, u64 m) const
    {
        const u64 q = static_cast<u64>((static_cast<u128>(x) * w_shoup) >> 64);
        return x * w - q * m;
    }
};

} // namespace bts
