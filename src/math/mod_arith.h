/**
 * @file
 * 64-bit modular arithmetic.
 *
 * BTS's word size is 64 bits; modular-reduction units in the hardware use
 * Barrett reduction to bring 128-bit products back to the word size
 * (Section 5). This module provides the software equivalents: plain
 * 128-bit reduction, a Barrett reducer with precomputed constant, and
 * Shoup multiplication for the hot NTT path where one operand (the
 * twiddle factor) is fixed.
 */
#pragma once

#include "common/check.h"
#include "common/types.h"

namespace bts {

/** @return (a + b) mod m; inputs must already be reduced. */
inline u64
add_mod(u64 a, u64 b, u64 m)
{
    const u64 s = a + b;
    return (s >= m || s < a) ? s - m : s;
}

/** @return (a - b) mod m; inputs must already be reduced. */
inline u64
sub_mod(u64 a, u64 b, u64 m)
{
    return a >= b ? a - b : a + m - b;
}

/** @return (a * b) mod m via 128-bit intermediate. */
inline u64
mul_mod(u64 a, u64 b, u64 m)
{
    return static_cast<u64>((static_cast<u128>(a) * b) % m);
}

/** @return a^e mod m (binary exponentiation). */
u64 pow_mod(u64 a, u64 e, u64 m);

/** @return a^{-1} mod m; requires gcd(a, m) == 1. */
u64 inv_mod(u64 a, u64 m);

/** @return gcd(a, b). */
u64 gcd_u64(u64 a, u64 b);

/** Map a signed value into [0, m). */
inline u64
signed_to_mod(i64 v, u64 m)
{
    const i64 r = v % static_cast<i64>(m);
    return r < 0 ? static_cast<u64>(r + static_cast<i64>(m))
                 : static_cast<u64>(r);
}

/** Map a residue in [0, m) to its centered representative in (-m/2, m/2]. */
inline i64
mod_to_signed(u64 v, u64 m)
{
    return v > m / 2 ? static_cast<i64>(v) - static_cast<i64>(m)
                     : static_cast<i64>(v);
}

/**
 * Barrett reducer for a fixed modulus.
 *
 * Precomputes mu = floor(2^128 / m) (stored as two 64-bit halves of the
 * 2^64-scaled variant). reduce() accepts any 128-bit value less than
 * m * 2^64 and is exact after at most one conditional subtraction.
 */
class Barrett
{
  public:
    Barrett() = default;

    explicit Barrett(u64 modulus);

    u64 modulus() const { return m_; }

    /** Reduce a 128-bit value (v < m * 2^64) modulo m. */
    u64 reduce(u128 v) const;

    /** (a * b) mod m using the precomputed constant. */
    u64 mul(u64 a, u64 b) const { return reduce(static_cast<u128>(a) * b); }

  private:
    u64 m_ = 0;
    u64 mu_hi_ = 0; // floor(2^128 / m) high limb
    u64 mu_lo_ = 0; // floor(2^128 / m) low limb
};

/**
 * Shoup multiplication context: multiply by a fixed constant w modulo m
 * with a single 64x64 multiply-high and one correction, the standard
 * trick for NTT butterflies.
 */
struct ShoupMul
{
    u64 w = 0;       //!< the constant operand, reduced mod m
    u64 w_shoup = 0; //!< floor(w * 2^64 / m)

    ShoupMul() = default;

    /**
     * @p operand may be unreduced; it is reduced mod @p modulus here.
     * (An unreduced w would silently produce a wrong w_shoup: the
     * quotient estimate in mul() assumes w < m.)
     */
    ShoupMul(u64 operand, u64 modulus)
        : w(operand % modulus),
          w_shoup(static_cast<u64>((static_cast<u128>(w) << 64) / modulus))
    {}

    /** @return (x * w) mod m. */
    u64
    mul(u64 x, u64 m) const
    {
        const u64 q = static_cast<u64>((static_cast<u128>(x) * w_shoup) >> 64);
        const u64 r = x * w - q * m;
        return r >= m ? r - m : r;
    }
};

} // namespace bts
