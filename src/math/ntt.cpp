#include "math/ntt.h"

#include <algorithm>

#include "common/bit_ops.h"
#include "common/check.h"
#include "common/parallel.h"
#include "math/prime_gen.h"

namespace bts {

NttTables::NttTables(std::size_t n, u64 prime)
    : n_(n), log_n_(log2_exact(n)), prime_(prime)
{
    BTS_CHECK(is_power_of_two(n), "NTT size must be a power of two");
    BTS_CHECK(prime % (2 * n) == 1, "prime must be 1 mod 2N");

    psi_ = find_primitive_root(prime, 2 * static_cast<u64>(n));
    const u64 psi_inv = inv_mod(psi_, prime);
    n_inv_ = inv_mod(static_cast<u64>(n) % prime, prime);
    n_inv_shoup_ = ShoupMul(n_inv_, prime).w_shoup;

    psi_br_.resize(n);
    psi_inv_br_.resize(n);
    u64 power = 1;
    u64 power_inv = 1;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t rev = bit_reverse(i, log_n_);
        psi_br_[rev] = ShoupMul(power, prime);
        psi_inv_br_[rev] = ShoupMul(power_inv, prime);
        power = mul_mod(power, psi_, prime);
        power_inv = mul_mod(power_inv, psi_inv, prime);
    }
}

void
NttTables::forward(u64* a) const
{
    const u64 q = prime_;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const ShoupMul& s = psi_br_[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = s.mul(a[j + t], q);
                a[j] = add_mod(u, v, q);
                a[j + t] = sub_mod(u, v, q);
            }
        }
    }
}

void
NttTables::inverse(u64* a) const
{
    const u64 q = prime_;
    std::size_t t = 1;
    for (std::size_t m = n_; m > 1; m >>= 1) {
        std::size_t j1 = 0;
        const std::size_t h = m >> 1;
        for (std::size_t i = 0; i < h; ++i) {
            const ShoupMul& s = psi_inv_br_[h + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = a[j + t];
                a[j] = add_mod(u, v, q);
                a[j + t] = s.mul(sub_mod(u, v, q), q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    const ShoupMul n_inv{n_inv_, q};
    for (std::size_t j = 0; j < n_; ++j) {
        a[j] = n_inv.mul(a[j], q);
    }
}

void
NttTables::forward_stage(u64* a, std::size_t m, std::size_t b_begin,
                         std::size_t b_end) const
{
    // Stage m has m groups of t butterflies; butterfly b lives in group
    // g = b / t at offset k, pairing a[2gt + k] with a[2gt + k + t].
    const u64 q = prime_;
    const std::size_t t = n_ / (2 * m);
    std::size_t b = b_begin;
    while (b < b_end) {
        const std::size_t g = b / t;
        const std::size_t k = b - g * t;
        const std::size_t run = std::min(t - k, b_end - b);
        const ShoupMul& s = psi_br_[m + g];
        u64* x = a + 2 * g * t + k;
        u64* y = x + t;
        for (std::size_t j = 0; j < run; ++j) {
            const u64 u = x[j];
            const u64 v = s.mul(y[j], q);
            x[j] = add_mod(u, v, q);
            y[j] = sub_mod(u, v, q);
        }
        b += run;
    }
}

void
NttTables::inverse_stage(u64* a, std::size_t m, std::size_t b_begin,
                         std::size_t b_end) const
{
    const u64 q = prime_;
    const std::size_t t = n_ / m;
    const std::size_t h = m >> 1;
    std::size_t b = b_begin;
    while (b < b_end) {
        const std::size_t g = b / t;
        const std::size_t k = b - g * t;
        const std::size_t run = std::min(t - k, b_end - b);
        const ShoupMul& s = psi_inv_br_[h + g];
        u64* x = a + 2 * g * t + k;
        u64* y = x + t;
        for (std::size_t j = 0; j < run; ++j) {
            const u64 u = x[j];
            const u64 v = y[j];
            x[j] = add_mod(u, v, q);
            y[j] = s.mul(sub_mod(u, v, q), q);
        }
        b += run;
    }
}

void
NttTables::scale_n_inv(u64* a, std::size_t j_begin, std::size_t j_end) const
{
    ShoupMul n_inv;
    n_inv.w = n_inv_;
    n_inv.w_shoup = n_inv_shoup_;
    for (std::size_t j = j_begin; j < j_end; ++j) {
        a[j] = n_inv.mul(a[j], prime_);
    }
}

namespace {

/**
 * Below this N a stage split costs more in barriers than it buys:
 * parallel_for_2d's >=1024-coefficient blocks mean the N/2 butterflies
 * of a stage only split into multiple tiles once N >= 4096.
 */
constexpr std::size_t kStageParallelMinN = 4096;

bool
use_whole_limb_schedule(std::size_t count, std::size_t n)
{
    // Whole-limb transforms are one cache-friendly pass per limb; only
    // trade them for log2(N) barrier-separated stage sweeps when they
    // would leave at least half the lanes idle (the 1-3 limb regime the
    // split exists for), not at count = lanes-1 where utilization is
    // already near full.
    const auto lanes = static_cast<std::size_t>(num_threads());
    return lanes <= 1 || 2 * count > lanes || n < kStageParallelMinN;
}

void
check_batch(const NttTables* const* tables, std::size_t count,
            std::size_t stride, std::size_t n)
{
    BTS_ASSERT(stride >= n, "batch stride smaller than transform size");
    for (std::size_t i = 1; i < count; ++i) {
        BTS_ASSERT(tables[i]->n() == n, "mixed transform sizes in batch");
    }
}

} // namespace

void
ntt_forward_batch(const NttTables* const* tables, u64* data,
                  std::size_t count, std::size_t stride)
{
    if (count == 0) return;
    const std::size_t n = tables[0]->n();
    check_batch(tables, count, stride, n);
    if (use_whole_limb_schedule(count, n)) {
        parallel_for(0, count, [&](std::size_t i) {
            tables[i]->forward(data + i * stride);
        });
        return;
    }
    // Fewer limbs than lanes: run stage by stage, each stage a 2-D
    // (limb x butterfly-block) sweep. Stages are barriers — butterflies
    // of stage m read results of stage m/2.
    const std::size_t half = n / 2;
    for (std::size_t m = 1; m < n; m <<= 1) {
        parallel_for_2d(count, half,
                        [&](std::size_t i, std::size_t b0, std::size_t b1) {
                            tables[i]->forward_stage(data + i * stride, m,
                                                     b0, b1);
                        });
    }
}

void
ntt_inverse_batch(const NttTables* const* tables, u64* data,
                  std::size_t count, std::size_t stride)
{
    if (count == 0) return;
    const std::size_t n = tables[0]->n();
    check_batch(tables, count, stride, n);
    if (use_whole_limb_schedule(count, n)) {
        parallel_for(0, count, [&](std::size_t i) {
            tables[i]->inverse(data + i * stride);
        });
        return;
    }
    const std::size_t half = n / 2;
    for (std::size_t m = n; m > 1; m >>= 1) {
        parallel_for_2d(count, half,
                        [&](std::size_t i, std::size_t b0, std::size_t b1) {
                            tables[i]->inverse_stage(data + i * stride, m,
                                                     b0, b1);
                        });
    }
    parallel_for_2d(count, n,
                    [&](std::size_t i, std::size_t j0, std::size_t j1) {
                        tables[i]->scale_n_inv(data + i * stride, j0, j1);
                    });
}

std::vector<u64>
negacyclic_mul_reference(const std::vector<u64>& a, const std::vector<u64>& b,
                         u64 q)
{
    BTS_CHECK(a.size() == b.size(), "size mismatch");
    const std::size_t n = a.size();
    std::vector<u64> out(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] == 0) continue;
        for (std::size_t j = 0; j < n; ++j) {
            const u64 prod = mul_mod(a[i], b[j], q);
            const std::size_t k = i + j;
            if (k < n) {
                out[k] = add_mod(out[k], prod, q);
            } else {
                out[k - n] = sub_mod(out[k - n], prod, q);
            }
        }
    }
    return out;
}

} // namespace bts
