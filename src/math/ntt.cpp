#include "math/ntt.h"

#include "common/bit_ops.h"
#include "common/check.h"
#include "math/prime_gen.h"

namespace bts {

NttTables::NttTables(std::size_t n, u64 prime)
    : n_(n), log_n_(log2_exact(n)), prime_(prime)
{
    BTS_CHECK(is_power_of_two(n), "NTT size must be a power of two");
    BTS_CHECK(prime % (2 * n) == 1, "prime must be 1 mod 2N");

    psi_ = find_primitive_root(prime, 2 * static_cast<u64>(n));
    const u64 psi_inv = inv_mod(psi_, prime);
    n_inv_ = inv_mod(static_cast<u64>(n) % prime, prime);
    n_inv_shoup_ = ShoupMul(n_inv_, prime).w_shoup;

    psi_br_.resize(n);
    psi_inv_br_.resize(n);
    u64 power = 1;
    u64 power_inv = 1;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t rev = bit_reverse(i, log_n_);
        psi_br_[rev] = ShoupMul(power, prime);
        psi_inv_br_[rev] = ShoupMul(power_inv, prime);
        power = mul_mod(power, psi_, prime);
        power_inv = mul_mod(power_inv, psi_inv, prime);
    }
}

void
NttTables::forward(u64* a) const
{
    const u64 q = prime_;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const ShoupMul& s = psi_br_[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = s.mul(a[j + t], q);
                a[j] = add_mod(u, v, q);
                a[j + t] = sub_mod(u, v, q);
            }
        }
    }
}

void
NttTables::inverse(u64* a) const
{
    const u64 q = prime_;
    std::size_t t = 1;
    for (std::size_t m = n_; m > 1; m >>= 1) {
        std::size_t j1 = 0;
        const std::size_t h = m >> 1;
        for (std::size_t i = 0; i < h; ++i) {
            const ShoupMul& s = psi_inv_br_[h + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = a[j + t];
                a[j] = add_mod(u, v, q);
                a[j + t] = s.mul(sub_mod(u, v, q), q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    const ShoupMul n_inv{n_inv_, q};
    for (std::size_t j = 0; j < n_; ++j) {
        a[j] = n_inv.mul(a[j], q);
    }
}

std::vector<u64>
negacyclic_mul_reference(const std::vector<u64>& a, const std::vector<u64>& b,
                         u64 q)
{
    BTS_CHECK(a.size() == b.size(), "size mismatch");
    const std::size_t n = a.size();
    std::vector<u64> out(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] == 0) continue;
        for (std::size_t j = 0; j < n; ++j) {
            const u64 prod = mul_mod(a[i], b[j], q);
            const std::size_t k = i + j;
            if (k < n) {
                out[k] = add_mod(out[k], prod, q);
            } else {
                out[k - n] = sub_mod(out[k - n], prod, q);
            }
        }
    }
    return out;
}

} // namespace bts
