#include "math/ntt.h"

#include <algorithm>

#include "common/bit_ops.h"
#include "common/check.h"
#include "common/parallel.h"
#include "math/prime_gen.h"

#if defined(BTS_USE_AVX2) && defined(__AVX2__)
#define BTS_HAS_AVX2 1
#include <immintrin.h>
#else
#define BTS_HAS_AVX2 0
#endif

namespace bts {

namespace {

/**
 * Output form of a butterfly run. Intermediate forward stages stay in
 * the full lazy domain [0, 4q); the final stage reduces to [0, 2q)
 * (lazy entry points) or [0, q) (canonical entry points). Inverse
 * stages maintain [0, 2q) throughout.
 */
enum class FwdOut
{
    kLazy4q,
    kLazy2q,
    kCanonical,
};

#if BTS_HAS_AVX2

// 4-wide u64 helpers. All lazy values are < 2^63 (q < 2^62), so the
// signed 64-bit compares AVX2 provides are exact for our domain.

inline __m256i
mul_lo64(__m256i x, __m256i y)
{
    const __m256i lo = _mm256_mul_epu32(x, y);
    const __m256i xh = _mm256_srli_epi64(x, 32);
    const __m256i yh = _mm256_srli_epi64(y, 32);
    const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(xh, y),
                                           _mm256_mul_epu32(x, yh));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

inline __m256i
mul_hi64(__m256i x, __m256i y)
{
    const __m256i mask = _mm256_set1_epi64x(0xffffffffLL);
    const __m256i xh = _mm256_srli_epi64(x, 32);
    const __m256i yh = _mm256_srli_epi64(y, 32);
    const __m256i ll = _mm256_mul_epu32(x, y);
    const __m256i hl = _mm256_mul_epu32(xh, y);
    const __m256i lh = _mm256_mul_epu32(x, yh);
    const __m256i hh = _mm256_mul_epu32(xh, yh);
    __m256i mid = _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                                   _mm256_and_si256(hl, mask));
    mid = _mm256_add_epi64(mid, _mm256_and_si256(lh, mask));
    __m256i hi = _mm256_add_epi64(hh, _mm256_srli_epi64(hl, 32));
    hi = _mm256_add_epi64(hi, _mm256_srli_epi64(lh, 32));
    return _mm256_add_epi64(hi, _mm256_srli_epi64(mid, 32));
}

/** x - (x >= b ? b : 0), element-wise; requires x, b < 2^63. */
inline __m256i
csub64(__m256i x, __m256i b)
{
    const __m256i lt = _mm256_cmpgt_epi64(b, x); // lanes where x < b
    return _mm256_sub_epi64(x, _mm256_andnot_si256(lt, b));
}

/** Lazy Shoup product in [0, 2q): x*w - floor(x*w_shoup / 2^64)*q. */
inline __m256i
shoup_lazy64(__m256i x, __m256i w, __m256i w_shoup, __m256i q)
{
    const __m256i quot = mul_hi64(x, w_shoup);
    return _mm256_sub_epi64(mul_lo64(x, w), mul_lo64(quot, q));
}

template <FwdOut Out>
inline std::size_t
fwd_run_avx2(u64* x, u64* y, std::size_t count, const ShoupMul s, u64 q,
             u64 two_q)
{
    const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(s.w));
    const __m256i vws =
        _mm256_set1_epi64x(static_cast<long long>(s.w_shoup));
    const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i v2q = _mm256_set1_epi64x(static_cast<long long>(two_q));
    std::size_t j = 0;
    for (; j + 4 <= count; j += 4) {
        __m256i vx =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + j));
        const __m256i vy =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + j));
        vx = csub64(vx, v2q);
        const __m256i t = shoup_lazy64(vy, vw, vws, vq);
        __m256i xo = _mm256_add_epi64(vx, t);
        __m256i yo = _mm256_sub_epi64(_mm256_add_epi64(vx, v2q), t);
        if constexpr (Out != FwdOut::kLazy4q) {
            xo = csub64(xo, v2q);
            yo = csub64(yo, v2q);
        }
        if constexpr (Out == FwdOut::kCanonical) {
            xo = csub64(xo, vq);
            yo = csub64(yo, vq);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + j), xo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + j), yo);
    }
    return j;
}

inline std::size_t
inv_run_avx2(u64* x, u64* y, std::size_t count, const ShoupMul s, u64 q,
             u64 two_q)
{
    const __m256i vw = _mm256_set1_epi64x(static_cast<long long>(s.w));
    const __m256i vws =
        _mm256_set1_epi64x(static_cast<long long>(s.w_shoup));
    const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i v2q = _mm256_set1_epi64x(static_cast<long long>(two_q));
    std::size_t j = 0;
    for (; j + 4 <= count; j += 4) {
        const __m256i vx =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + j));
        const __m256i vy =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + j));
        const __m256i xo = csub64(_mm256_add_epi64(vx, vy), v2q);
        const __m256i diff =
            _mm256_sub_epi64(_mm256_add_epi64(vx, v2q), vy);
        const __m256i yo = shoup_lazy64(diff, vw, vws, vq);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + j), xo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + j), yo);
    }
    return j;
}

inline std::size_t
inv_last_run_avx2(u64* x, u64* y, std::size_t count, const ShoupMul inv_n,
                  const ShoupMul inv_n_w, u64 q, u64 two_q)
{
    const __m256i vnw = _mm256_set1_epi64x(static_cast<long long>(inv_n.w));
    const __m256i vnws =
        _mm256_set1_epi64x(static_cast<long long>(inv_n.w_shoup));
    const __m256i vww =
        _mm256_set1_epi64x(static_cast<long long>(inv_n_w.w));
    const __m256i vwws =
        _mm256_set1_epi64x(static_cast<long long>(inv_n_w.w_shoup));
    const __m256i vq = _mm256_set1_epi64x(static_cast<long long>(q));
    const __m256i v2q = _mm256_set1_epi64x(static_cast<long long>(two_q));
    std::size_t j = 0;
    for (; j + 4 <= count; j += 4) {
        const __m256i vx =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + j));
        const __m256i vy =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + j));
        const __m256i sum = _mm256_add_epi64(vx, vy);
        const __m256i diff =
            _mm256_sub_epi64(_mm256_add_epi64(vx, v2q), vy);
        // Full Shoup product: lazy form + one conditional subtraction.
        const __m256i xo = csub64(shoup_lazy64(sum, vnw, vnws, vq), vq);
        const __m256i yo = csub64(shoup_lazy64(diff, vww, vwws, vq), vq);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + j), xo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + j), yo);
    }
    return j;
}

#endif // BTS_HAS_AVX2

/**
 * One forward (DIT) Harvey butterfly run over @p count unit-stride
 * pairs sharing one twiddle: x' = x mod 2q; t = lazy Shoup y*w in
 * [0, 2q); outputs x'+t and x'-t+2q in [0, 4q), reduced per @p Out.
 * The twiddle, moduli, and output form are loop-invariant, and the body
 * is branch-free, so compilers can unroll/vectorize it directly.
 */
template <FwdOut Out>
inline void
fwd_run(u64* x, u64* y, std::size_t count, const ShoupMul s, u64 q,
        u64 two_q)
{
    std::size_t j = 0;
#if BTS_HAS_AVX2
    j = fwd_run_avx2<Out>(x, y, count, s, q, two_q);
#endif
    for (; j < count; ++j) {
        const u64 u = reduce_2q(x[j], two_q);
        const u64 t = s.mul_lazy(y[j], q);
        u64 xo = add_lazy(u, t);
        u64 yo = sub_lazy_2q(u, t, two_q);
        if constexpr (Out != FwdOut::kLazy4q) {
            xo = reduce_2q(xo, two_q);
            yo = reduce_2q(yo, two_q);
        }
        if constexpr (Out == FwdOut::kCanonical) {
            xo = xo >= q ? xo - q : xo;
            yo = yo >= q ? yo - q : yo;
        }
        x[j] = xo;
        y[j] = yo;
    }
}

/**
 * One inverse (GS) butterfly run in the [0, 2q) domain: x' = x+y mod 2q
 * (one conditional subtraction), y' = lazy Shoup (x-y+2q)*w in [0, 2q).
 */
inline void
inv_run(u64* x, u64* y, std::size_t count, const ShoupMul s, u64 q,
        u64 two_q)
{
    std::size_t j = 0;
#if BTS_HAS_AVX2
    j = inv_run_avx2(x, y, count, s, q, two_q);
#endif
    for (; j < count; ++j) {
        const u64 u = x[j];
        const u64 v = y[j];
        x[j] = reduce_2q(add_lazy(u, v), two_q);
        y[j] = s.mul_lazy(sub_lazy_2q(u, v, two_q), q);
    }
}

/**
 * The final inverse stage with N^{-1} folded into its constants:
 * x' = (x+y) * n^{-1} and y' = (x-y) * (w * n^{-1}), both via full
 * Shoup products (exact for any 64-bit input), so the output is
 * canonical and the transform needs no scaling tail loop.
 */
inline void
inv_last_run(u64* x, u64* y, std::size_t count, const ShoupMul inv_n,
             const ShoupMul inv_n_w, u64 q, u64 two_q)
{
    std::size_t j = 0;
#if BTS_HAS_AVX2
    j = inv_last_run_avx2(x, y, count, inv_n, inv_n_w, q, two_q);
#endif
    for (; j < count; ++j) {
        const u64 u = x[j];
        const u64 v = y[j];
        x[j] = inv_n.mul(add_lazy(u, v), q);
        y[j] = inv_n_w.mul(sub_lazy_2q(u, v, two_q), q);
    }
}

} // namespace

NttTables::NttTables(std::size_t n, u64 prime)
    : n_(n), log_n_(log2_exact(n)), prime_(prime)
{
    BTS_CHECK(is_power_of_two(n), "NTT size must be a power of two");
    BTS_CHECK(prime % (2 * n) == 1, "prime must be 1 mod 2N");
    BTS_CHECK((prime >> kMaxModulusBits) == 0,
              "modulus exceeds kMaxModulusBits — the Harvey lazy domain "
              "[0, 4q) requires q < 2^62");

    psi_ = find_primitive_root(prime, 2 * static_cast<u64>(n));
    const u64 psi_inv = inv_mod(psi_, prime);
    n_inv_ = inv_mod(static_cast<u64>(n) % prime, prime);

    // Power chains stay reduced throughout: one Barrett product per
    // step (no 128-bit remainder), and the twiddles enter ShoupMul via
    // from_reduced (no per-entry 64-bit remainder either).
    const Barrett br(prime);
    psi_br_.resize(n);
    psi_inv_br_.resize(n);
    u64 power = 1;
    u64 power_inv = 1;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t rev = bit_reverse(i, log_n_);
        psi_br_[rev] = ShoupMul::from_reduced(power, prime);
        psi_inv_br_[rev] = ShoupMul::from_reduced(power_inv, prime);
        power = br.mul(power, psi_);
        power_inv = br.mul(power_inv, psi_inv);
    }

    // Fused last-stage inverse constants (N^{-1} absorbed).
    inv_n_ = ShoupMul::from_reduced(n_inv_, prime);
    inv_n_w_ = n > 1 ? ShoupMul::from_reduced(br.mul(psi_inv_br_[1].w,
                                                     n_inv_),
                                              prime)
                     : inv_n_;
}

namespace {

template <FwdOut Out>
void
forward_impl(u64* a, std::size_t n, const ShoupMul* psi_br, u64 q)
{
    const u64 two_q = 2 * q;
    std::size_t t = n;
    for (std::size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        const bool last = (m << 1) == n;
        for (std::size_t i = 0; i < m; ++i) {
            u64* x = a + 2 * i * t;
            const ShoupMul& s = psi_br[m + i];
            if (last) {
                fwd_run<Out>(x, x + t, t, s, q, two_q);
            } else {
                fwd_run<FwdOut::kLazy4q>(x, x + t, t, s, q, two_q);
            }
        }
    }
}

} // namespace

void
NttTables::forward(u64* a) const
{
    forward_impl<FwdOut::kCanonical>(a, n_, psi_br_.data(), prime_);
}

void
NttTables::forward_lazy(u64* a) const
{
    forward_impl<FwdOut::kLazy2q>(a, n_, psi_br_.data(), prime_);
}

void
NttTables::inverse(u64* a) const
{
    const u64 q = prime_;
    const u64 two_q = 2 * q;
    std::size_t t = 1;
    for (std::size_t m = n_; m > 2; m >>= 1) {
        const std::size_t h = m >> 1;
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < h; ++i) {
            u64* x = a + j1;
            inv_run(x, x + t, t, psi_inv_br_[h + i], q, two_q);
            j1 += 2 * t;
        }
        t <<= 1;
    }
    if (n_ >= 2) {
        inv_last_run(a, a + n_ / 2, n_ / 2, inv_n_, inv_n_w_, q, two_q);
    }
}

void
NttTables::forward_stage(u64* a, std::size_t m, std::size_t b_begin,
                         std::size_t b_end, bool lazy_output) const
{
    // Stage m has m groups of t butterflies; butterfly b lives in group
    // g = b / t at offset k, pairing a[2gt + k] with a[2gt + k + t].
    const u64 q = prime_;
    const u64 two_q = 2 * q;
    const std::size_t t = n_ / (2 * m);
    const bool last = (m << 1) == n_;
    std::size_t b = b_begin;
    while (b < b_end) {
        const std::size_t g = b / t;
        const std::size_t k = b - g * t;
        const std::size_t run = std::min(t - k, b_end - b);
        const ShoupMul& s = psi_br_[m + g];
        u64* x = a + 2 * g * t + k;
        u64* y = x + t;
        if (!last) {
            fwd_run<FwdOut::kLazy4q>(x, y, run, s, q, two_q);
        } else if (lazy_output) {
            fwd_run<FwdOut::kLazy2q>(x, y, run, s, q, two_q);
        } else {
            fwd_run<FwdOut::kCanonical>(x, y, run, s, q, two_q);
        }
        b += run;
    }
}

void
NttTables::inverse_stage(u64* a, std::size_t m, std::size_t b_begin,
                         std::size_t b_end) const
{
    const u64 q = prime_;
    const u64 two_q = 2 * q;
    const std::size_t t = n_ / m;
    const std::size_t h = m >> 1;
    const bool last = m == 2;
    std::size_t b = b_begin;
    while (b < b_end) {
        const std::size_t g = b / t;
        const std::size_t k = b - g * t;
        const std::size_t run = std::min(t - k, b_end - b);
        u64* x = a + 2 * g * t + k;
        u64* y = x + t;
        if (last) {
            inv_last_run(x, y, run, inv_n_, inv_n_w_, q, two_q);
        } else {
            inv_run(x, y, run, psi_inv_br_[h + g], q, two_q);
        }
        b += run;
    }
}

void
NttTables::forward_oracle(u64* a) const
{
    const u64 q = prime_;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const ShoupMul& s = psi_br_[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = s.mul(a[j + t], q);
                a[j] = add_mod(u, v, q);
                a[j + t] = sub_mod(u, v, q);
            }
        }
    }
}

void
NttTables::inverse_oracle(u64* a) const
{
    const u64 q = prime_;
    std::size_t t = 1;
    for (std::size_t m = n_; m > 1; m >>= 1) {
        std::size_t j1 = 0;
        const std::size_t h = m >> 1;
        for (std::size_t i = 0; i < h; ++i) {
            const ShoupMul& s = psi_inv_br_[h + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = a[j + t];
                a[j] = add_mod(u, v, q);
                a[j + t] = s.mul(sub_mod(u, v, q), q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (std::size_t j = 0; j < n_; ++j) {
        a[j] = inv_n_.mul(a[j], q);
    }
}

namespace {

/**
 * Below this N a stage split costs more in barriers than it buys:
 * parallel_for_2d's >=1024-coefficient blocks mean the N/2 butterflies
 * of a stage only split into multiple tiles once N >= 4096.
 */
constexpr std::size_t kStageParallelMinN = 4096;

bool
use_whole_limb_schedule(std::size_t count, std::size_t n)
{
    // Whole-limb transforms are one cache-friendly pass per limb; only
    // trade them for log2(N) barrier-separated stage sweeps when they
    // would leave at least half the lanes idle (the 1-3 limb regime the
    // split exists for), not at count = lanes-1 where utilization is
    // already near full.
    const auto lanes = static_cast<std::size_t>(num_threads());
    return lanes <= 1 || 2 * count > lanes || n < kStageParallelMinN;
}

void
check_batch(const NttTables* const* tables, std::size_t count,
            std::size_t stride, std::size_t n)
{
    BTS_ASSERT(stride >= n, "batch stride smaller than transform size");
    for (std::size_t i = 1; i < count; ++i) {
        BTS_ASSERT(tables[i]->n() == n, "mixed transform sizes in batch");
    }
}

void
forward_batch_impl(const NttTables* const* tables, u64* data,
                   std::size_t count, std::size_t stride, bool lazy)
{
    if (count == 0) return;
    const std::size_t n = tables[0]->n();
    check_batch(tables, count, stride, n);
    if (use_whole_limb_schedule(count, n)) {
        parallel_for(0, count, [&](std::size_t i) {
            if (lazy) {
                tables[i]->forward_lazy(data + i * stride);
            } else {
                tables[i]->forward(data + i * stride);
            }
        });
        return;
    }
    // Fewer limbs than lanes: run stage by stage, each stage a 2-D
    // (limb x butterfly-block) sweep. Stages are barriers — butterflies
    // of stage m read results of stage m/2.
    const std::size_t half = n / 2;
    for (std::size_t m = 1; m < n; m <<= 1) {
        parallel_for_2d(count, half,
                        [&](std::size_t i, std::size_t b0, std::size_t b1) {
                            tables[i]->forward_stage(data + i * stride, m,
                                                     b0, b1, lazy);
                        });
    }
}

} // namespace

void
ntt_forward_batch(const NttTables* const* tables, u64* data,
                  std::size_t count, std::size_t stride)
{
    forward_batch_impl(tables, data, count, stride, /*lazy=*/false);
}

void
ntt_forward_batch_lazy(const NttTables* const* tables, u64* data,
                       std::size_t count, std::size_t stride)
{
    forward_batch_impl(tables, data, count, stride, /*lazy=*/true);
}

void
ntt_inverse_batch(const NttTables* const* tables, u64* data,
                  std::size_t count, std::size_t stride)
{
    if (count == 0) return;
    const std::size_t n = tables[0]->n();
    check_batch(tables, count, stride, n);
    if (use_whole_limb_schedule(count, n)) {
        parallel_for(0, count, [&](std::size_t i) {
            tables[i]->inverse(data + i * stride);
        });
        return;
    }
    // N^{-1} rides in the final stage's fused twiddles, so the stage
    // sweep IS the whole transform — no trailing scale pass.
    const std::size_t half = n / 2;
    for (std::size_t m = n; m > 1; m >>= 1) {
        parallel_for_2d(count, half,
                        [&](std::size_t i, std::size_t b0, std::size_t b1) {
                            tables[i]->inverse_stage(data + i * stride, m,
                                                     b0, b1);
                        });
    }
}

std::vector<u64>
negacyclic_mul_reference(const std::vector<u64>& a, const std::vector<u64>& b,
                         u64 q)
{
    BTS_CHECK(a.size() == b.size(), "size mismatch");
    const std::size_t n = a.size();
    std::vector<u64> out(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] == 0) continue;
        for (std::size_t j = 0; j < n; ++j) {
            const u64 prod = mul_mod(a[i], b[j], q);
            const std::size_t k = i + j;
            if (k < n) {
                out[k] = add_mod(out[k], prod, q);
            } else {
                out[k - n] = sub_mod(out[k - n], prod, q);
            }
        }
    }
    return out;
}

} // namespace bts
