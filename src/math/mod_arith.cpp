#include "math/mod_arith.h"

namespace bts {

u64
pow_mod(u64 a, u64 e, u64 m)
{
    BTS_CHECK(m != 0, "pow_mod: zero modulus");
    u64 base = a % m;
    u64 result = 1 % m;
    while (e) {
        if (e & 1) result = mul_mod(result, base, m);
        base = mul_mod(base, base, m);
        e >>= 1;
    }
    return result;
}

u64
gcd_u64(u64 a, u64 b)
{
    while (b) {
        const u64 t = a % b;
        a = b;
        b = t;
    }
    return a;
}

u64
inv_mod(u64 a, u64 m)
{
    // Extended Euclid on signed 128-bit accumulators.
    BTS_CHECK(m > 1, "inv_mod: modulus must exceed 1");
    i128 t = 0, new_t = 1;
    i128 r = m, new_r = a % m;
    while (new_r != 0) {
        const i128 q = r / new_r;
        i128 tmp = t - q * new_t;
        t = new_t;
        new_t = tmp;
        tmp = r - q * new_r;
        r = new_r;
        new_r = tmp;
    }
    BTS_CHECK(r == 1, "inv_mod: operand not invertible");
    if (t < 0) t += m;
    return static_cast<u64>(t);
}

Barrett::Barrett(u64 modulus) : m_(modulus)
{
    BTS_CHECK(modulus > 1, "Barrett: modulus must exceed 1");
    BTS_CHECK((modulus >> kMaxModulusBits) == 0,
              "Barrett: modulus exceeds supported width");
    // Compute floor(2^128 / m) by long division of 2^128.
    // 2^128 = m * mu + rem. Do it limb by limb.
    // High limb: floor(2^128 / m) = (floor(2^64/m) << 64 + ...) — easier:
    // divide the 2-limb value {1, 0, 0} base 2^64 step by step.
    u128 rem = 0;
    u64 digits[2] = {0, 0};
    // Numerator limbs of 2^128, most-significant first: [1, 0, 0].
    u64 num[3] = {1, 0, 0};
    // First step consumes num[0] into rem without producing a kept digit
    // (the quotient's implicit third limb is zero for m > 1... actually
    // for m > 1 the quotient has at most 2 limbs + overflow bit; with
    // m >= 2^3 in practice it fits in 2 limbs plus a top bit only when
    // m < 2. Safe for our >= 2^20 moduli.)
    rem = num[0];
    for (int i = 0; i < 2; ++i) {
        const u128 cur = (rem << 64) | num[i + 1];
        digits[i] = static_cast<u64>(cur / m_);
        rem = cur % m_;
    }
    mu_hi_ = digits[0];
    mu_lo_ = digits[1];
}

u64
Barrett::reduce(u128 v) const
{
    // q = floor(v * mu / 2^128), with mu = mu_hi * 2^64 + mu_lo.
    const u64 v_lo = static_cast<u64>(v);
    const u64 v_hi = static_cast<u64>(v >> 64);

    // v * mu >> 128 = v_hi*mu_hi + hi64(v_hi*mu_lo) + hi64(v_lo*mu_hi)
    //                 + carries from the middle column.
    const u128 mid1 = static_cast<u128>(v_hi) * mu_lo_;
    const u128 mid2 = static_cast<u128>(v_lo) * mu_hi_;
    const u128 lo = static_cast<u128>(v_lo) * mu_lo_;

    u128 mid = (lo >> 64) + static_cast<u64>(mid1) + static_cast<u64>(mid2);
    u128 q = static_cast<u128>(v_hi) * mu_hi_ + (mid1 >> 64) + (mid2 >> 64) +
             (mid >> 64);

    u128 r = v - q * m_;
    while (r >= m_) r -= m_;
    return static_cast<u64>(r);
}

} // namespace bts
