/**
 * @file
 * NTT-friendly prime generation.
 *
 * Full-RNS CKKS needs word-sized primes q_i == 1 (mod 2N) so that the
 * 2N-th root of unity exists and the negacyclic NTT applies (Section 2.2).
 * The scheme uses:
 *  - a large "base" prime q_0 (~2^60) absorbing the final message,
 *  - "scale" primes close to the scaling factor Delta (~2^40..2^50),
 *  - "special" primes p_i (~2^60) forming P for key-switching.
 */
#pragma once

#include <vector>

#include "common/types.h"

namespace bts {

/** Miller-Rabin primality test, deterministic for 64-bit inputs. */
bool is_prime(u64 n);

/** @return a generator-derived primitive 2n-th root of unity mod p
 *  (requires p == 1 mod 2n). */
u64 find_primitive_root(u64 p, u64 two_n);

/**
 * Generate @p count distinct primes congruent to 1 mod @p two_n, each as
 * close as possible to 2^@p bit_size, skipping any prime in @p exclude.
 *
 * Primes alternate above/below 2^bit_size so that products stay close to
 * the target (the standard trick for keeping the CKKS scale drift small).
 */
std::vector<u64> generate_ntt_primes(int bit_size, u64 two_n, int count,
                                     const std::vector<u64>& exclude = {});

} // namespace bts
