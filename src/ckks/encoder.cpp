#include "ckks/encoder.h"

#include <cmath>

#include "common/bit_ops.h"
#include "common/check.h"
#include "math/mod_arith.h"

namespace bts {

CkksEncoder::CkksEncoder(const CkksContext& ctx) : ctx_(ctx) {}

namespace {

/** ksi[j] = exp(2*pi*i * j / m). */
std::vector<Complex>
root_powers(std::size_t m)
{
    std::vector<Complex> out(m);
    for (std::size_t j = 0; j < m; ++j) {
        const double angle = 2.0 * M_PI * static_cast<double>(j) /
                             static_cast<double>(m);
        out[j] = Complex(std::cos(angle), std::sin(angle));
    }
    return out;
}

/** rot[i] = 5^i mod m (the rotation group generator powers). */
std::vector<u64>
rotation_group(std::size_t n, u64 m)
{
    std::vector<u64> out(n);
    u64 p = 1;
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = p;
        p = (p * 5) % m;
    }
    return out;
}

} // namespace

void
CkksEncoder::fft_special(std::vector<Complex>& v) const
{
    const std::size_t n = v.size();
    BTS_CHECK(is_power_of_two(n), "slot count must be a power of two");
    const u64 m = 4 * static_cast<u64>(n);
    const auto ksi = root_powers(m);
    const auto rot = rotation_group(n, m);

    bit_reverse_permute(v.data(), n);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const std::size_t lenh = len >> 1;
        const u64 lenq = static_cast<u64>(len) << 2;
        for (std::size_t i = 0; i < n; i += len) {
            for (std::size_t j = 0; j < lenh; ++j) {
                const u64 idx = (rot[j] % lenq) * (m / lenq);
                const Complex u = v[i + j];
                const Complex w = v[i + j + lenh] * ksi[idx];
                v[i + j] = u + w;
                v[i + j + lenh] = u - w;
            }
        }
    }
}

void
CkksEncoder::fft_special_inv(std::vector<Complex>& v) const
{
    const std::size_t n = v.size();
    BTS_CHECK(is_power_of_two(n), "slot count must be a power of two");
    const u64 m = 4 * static_cast<u64>(n);
    const auto ksi = root_powers(m);
    const auto rot = rotation_group(n, m);

    for (std::size_t len = n; len >= 2; len >>= 1) {
        const std::size_t lenh = len >> 1;
        const u64 lenq = static_cast<u64>(len) << 2;
        for (std::size_t i = 0; i < n; i += len) {
            for (std::size_t j = 0; j < lenh; ++j) {
                const u64 idx =
                    ((lenq - (rot[j] % lenq)) % lenq) * (m / lenq);
                const Complex u = v[i + j] + v[i + j + lenh];
                const Complex w = (v[i + j] - v[i + j + lenh]) * ksi[idx];
                v[i + j] = u;
                v[i + j + lenh] = w;
            }
        }
    }
    bit_reverse_permute(v.data(), n);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : v) x *= inv_n;
}

Plaintext
CkksEncoder::encode(const std::vector<Complex>& values, double scale,
                    int level) const
{
    const std::size_t n_slots = values.size();
    BTS_CHECK(is_power_of_two(n_slots) && n_slots <= max_slots(),
              "slot count must be a power of two <= N/2");
    BTS_CHECK(scale > 0, "scale must be positive");

    std::vector<Complex> w = values;
    fft_special_inv(w);

    const std::size_t n = ctx_.n();
    const std::size_t half = n / 2;
    const std::size_t gap = half / n_slots;

    // Spread the size-n_slots embedding across the ring at stride `gap`:
    // real parts to the low half, imaginary parts to the high half.
    const auto primes = ctx_.level_primes(level);
    RnsPoly poly(n, primes, Domain::kCoeff);
    for (std::size_t j = 0; j < n_slots; ++j) {
        const double re = w[j].real() * scale;
        const double im = w[j].imag() * scale;
        BTS_CHECK(std::abs(re) < 0x1.0p62 && std::abs(im) < 0x1.0p62,
                  "encoded coefficient exceeds 62 bits; lower the scale");
        const i64 cre = static_cast<i64>(std::llround(re));
        const i64 cim = static_cast<i64>(std::llround(im));
        for (std::size_t i = 0; i < primes.size(); ++i) {
            poly.component(i)[j * gap] = signed_to_mod(cre, primes[i]);
            poly.component(i)[half + j * gap] = signed_to_mod(cim, primes[i]);
        }
    }
    poly.to_ntt(ctx_.tables_for(primes));

    Plaintext pt;
    pt.poly = std::move(poly);
    pt.scale = scale;
    pt.level = level;
    pt.slots = n_slots;
    return pt;
}

Plaintext
CkksEncoder::encode_real(const std::vector<double>& values, double scale,
                         int level) const
{
    std::vector<Complex> z(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) z[i] = Complex(values[i]);
    return encode(z, scale, level);
}

Plaintext
CkksEncoder::encode_scalar(Complex value, std::size_t slots, double scale,
                           int level) const
{
    return encode(std::vector<Complex>(slots, value), scale, level);
}

std::vector<double>
CkksEncoder::coeffs_to_double(const Plaintext& pt) const
{
    RnsPoly poly = pt.poly;
    if (poly.domain() == Domain::kNtt) {
        poly.to_coeff(ctx_.tables_for(poly));
    }
    const std::size_t n = ctx_.n();
    const std::size_t count = poly.num_primes();

    std::vector<double> out(n);
    if (count == 1) {
        const u64 q = poly.prime(0);
        for (std::size_t c = 0; c < n; ++c) {
            out[c] = static_cast<double>(mod_to_signed(
                         poly.component(0)[c], q)) / pt.scale;
        }
        return out;
    }
    const RnsBase base(std::vector<u64>(poly.primes().begin(),
                                        poly.primes().end()));
    const BigUInt& q_prod = base.product();
    const BigUInt half_q = q_prod.half();
    std::vector<u64> residues(count);
    for (std::size_t c = 0; c < n; ++c) {
        for (std::size_t i = 0; i < count; ++i) {
            residues[i] = poly.component(i)[c];
        }
        const BigUInt v = base.compose(residues);
        const double centered = v > half_q ? -q_prod.sub(v).to_double()
                                           : v.to_double();
        out[c] = centered / pt.scale;
    }
    return out;
}

std::vector<Complex>
CkksEncoder::decode(const Plaintext& pt) const
{
    BTS_CHECK(pt.slots > 0, "plaintext has no slot metadata");
    const auto coeffs = coeffs_to_double(pt);
    const std::size_t half = ctx_.n() / 2;
    const std::size_t gap = half / pt.slots;

    std::vector<Complex> w(pt.slots);
    for (std::size_t j = 0; j < pt.slots; ++j) {
        w[j] = Complex(coeffs[j * gap], coeffs[half + j * gap]);
    }
    fft_special(w);
    return w;
}

std::vector<Complex>
CkksEncoder::decode_direct(const Plaintext& pt) const
{
    BTS_CHECK(pt.slots > 0, "plaintext has no slot metadata");
    const auto coeffs = coeffs_to_double(pt);
    const std::size_t half = ctx_.n() / 2;
    const std::size_t gap = half / pt.slots;
    const std::size_t n_slots = pt.slots;
    const u64 m = 4 * static_cast<u64>(n_slots);
    const auto ksi = root_powers(m);
    const auto rot = rotation_group(n_slots, m);

    std::vector<Complex> out(n_slots, Complex(0, 0));
    for (std::size_t t = 0; t < n_slots; ++t) {
        for (std::size_t k = 0; k < n_slots; ++k) {
            const Complex w(coeffs[k * gap], coeffs[half + k * gap]);
            out[t] += w * ksi[(rot[t] * k) % m];
        }
    }
    return out;
}

Plaintext
CkksEncoder::encode_coeffs(const std::vector<double>& coeffs, double scale,
                           int level, std::size_t slots) const
{
    BTS_CHECK(coeffs.size() == ctx_.n(), "coefficient vector must have size N");
    const auto primes = ctx_.level_primes(level);
    RnsPoly poly(ctx_.n(), primes, Domain::kCoeff);
    for (std::size_t c = 0; c < coeffs.size(); ++c) {
        const double v = coeffs[c] * scale;
        BTS_CHECK(std::abs(v) < 0x1.0p62, "coefficient exceeds 62 bits");
        const i64 iv = static_cast<i64>(std::llround(v));
        for (std::size_t i = 0; i < primes.size(); ++i) {
            poly.component(i)[c] = signed_to_mod(iv, primes[i]);
        }
    }
    poly.to_ntt(ctx_.tables_for(primes));

    Plaintext pt;
    pt.poly = std::move(poly);
    pt.scale = scale;
    pt.level = level;
    pt.slots = slots;
    return pt;
}

std::vector<double>
CkksEncoder::decode_coeffs(const Plaintext& pt) const
{
    return coeffs_to_double(pt);
}

} // namespace bts
