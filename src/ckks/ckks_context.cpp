#include "ckks/ckks_context.h"

#include <cmath>

#include "common/bit_ops.h"
#include "common/check.h"
#include "math/mod_arith.h"
#include "math/prime_gen.h"

namespace bts {

CkksContext::CkksContext(const CkksParams& params)
    : params_(params),
      alpha_(static_cast<int>(
          ceil_div(static_cast<u64>(params.max_level + 1),
                   static_cast<u64>(params.dnum)))),
      delta_(std::ldexp(1.0, params.scale_bits))
{
    BTS_CHECK(is_power_of_two(params.n), "N must be a power of two");
    BTS_CHECK(params.n >= 8, "N too small");
    BTS_CHECK(params.max_level >= 0, "L must be nonnegative");
    BTS_CHECK(params.dnum >= 1 && params.dnum <= params.max_level + 1,
              "dnum must lie in [1, L+1]");

    const u64 two_n = 2 * static_cast<u64>(params.n);

    // Base prime q_0, then L scale primes, then alpha special primes.
    // All must be distinct and == 1 mod 2N.
    q_primes_ = generate_ntt_primes(params.q0_bits, two_n, 1);
    if (params.max_level > 0) {
        auto scale = generate_ntt_primes(params.scale_bits, two_n,
                                         params.max_level, q_primes_);
        q_primes_.insert(q_primes_.end(), scale.begin(), scale.end());
    }
    p_primes_ = generate_ntt_primes(params.special_bits, two_n, alpha_,
                                    q_primes_);

    full_primes_ = q_primes_;
    full_primes_.insert(full_primes_.end(), p_primes_.begin(),
                        p_primes_.end());

    // NTT tables for every prime.
    for (u64 p : full_primes_) {
        ntt_tables_.emplace(p, std::make_unique<NttTables>(params.n, p));
    }

    // Per-level NTT-table pointer chains (prefixes of the q chain).
    level_tables_.resize(params.max_level + 1);
    for (int l = 0; l <= params.max_level; ++l) {
        for (int i = 0; i <= l; ++i) {
            level_tables_[l].push_back(ntt_tables_.at(q_primes_[i]).get());
        }
    }

    // Level bases (prefixes of the q chain).
    q_bases_.reserve(params.max_level + 1);
    for (int l = 0; l <= params.max_level; ++l) {
        q_bases_.emplace_back(std::vector<u64>(q_primes_.begin(),
                                               q_primes_.begin() + l + 1));
    }
    // Rescale constants: dropping the prime at chain index `top` needs
    // [q_top]_{q_i} and a Shoup context for its inverse on every
    // remaining limb i < top.
    rescale_q_mod_.resize(params.max_level + 1);
    rescale_inv_.resize(params.max_level + 1);
    for (int top = 1; top <= params.max_level; ++top) {
        rescale_q_mod_[top].resize(top);
        rescale_inv_[top].resize(top);
        for (int i = 0; i < top; ++i) {
            const u64 qi = q_primes_[i];
            const u64 q_top_mod = q_primes_[top] % qi;
            rescale_q_mod_[top][i] = q_top_mod;
            rescale_inv_[top][i] = ShoupMul(inv_mod(q_top_mod, qi), qi);
        }
    }

    p_base_ = RnsBase(p_primes_);

    log_pq_bits_ = q_bases_.back().product().bit_length() +
                   p_base_.product().bit_length();

    // P >= Q_j for every modulus factor is required by generalized
    // key-switching (Section 2.5); with equal widths and k = alpha primes
    // this holds by construction, but verify.
    for (int j = 0; j < params.dnum; ++j) {
        auto [b, e] = slice_range(j, params.max_level);
        if (b >= e) continue;
        const BigUInt qj = BigUInt::product(std::vector<u64>(
            q_primes_.begin() + b, q_primes_.begin() + e));
        BTS_CHECK(p_base_.product() >= qj,
                  "special-prime product P must dominate every Q_j");
    }
}

std::vector<u64>
CkksContext::level_primes(int level) const
{
    BTS_CHECK(level >= 0 && level <= params_.max_level, "level out of range");
    return std::vector<u64>(q_primes_.begin(),
                            q_primes_.begin() + level + 1);
}

std::vector<u64>
CkksContext::extended_primes(int level) const
{
    auto out = level_primes(level);
    out.insert(out.end(), p_primes_.begin(), p_primes_.end());
    return out;
}

const RnsBase&
CkksContext::q_base(int level) const
{
    BTS_CHECK(level >= 0 && level <= params_.max_level, "level out of range");
    return q_bases_[level];
}

const NttTables&
CkksContext::tables(u64 prime) const
{
    const auto it = ntt_tables_.find(prime);
    BTS_CHECK(it != ntt_tables_.end(), "unknown prime");
    return *it->second;
}

std::vector<const NttTables*>
CkksContext::tables_for(const std::vector<u64>& primes) const
{
    std::vector<const NttTables*> out;
    out.reserve(primes.size());
    for (u64 p : primes) out.push_back(&tables(p));
    return out;
}

std::vector<const NttTables*>
CkksContext::tables_for(const RnsPoly& poly) const
{
    return tables_for(poly.primes());
}

const std::vector<const NttTables*>&
CkksContext::level_tables(int level) const
{
    BTS_CHECK(level >= 0 && level <= params_.max_level, "level out of range");
    return level_tables_[level];
}

std::pair<int, int>
CkksContext::slice_range(int slice, int level) const
{
    const int begin = slice * alpha_;
    const int end = std::min(level + 1, (slice + 1) * alpha_);
    return {begin, std::max(begin, end)};
}

int
CkksContext::num_slices(int level) const
{
    return static_cast<int>(ceil_div(static_cast<u64>(level + 1),
                                     static_cast<u64>(alpha_)));
}

u64
CkksContext::rescale_q_mod(int top, int i) const
{
    BTS_CHECK(top >= 1 && top <= params_.max_level && i >= 0 && i < top,
              "rescale constant index out of range");
    return rescale_q_mod_[top][i];
}

const ShoupMul&
CkksContext::rescale_inv(int top, int i) const
{
    BTS_CHECK(top >= 1 && top <= params_.max_level && i >= 0 && i < top,
              "rescale constant index out of range");
    return rescale_inv_[top][i];
}

u64
CkksContext::p_mod(u64 q) const
{
    return p_base_.product_mod(q);
}

u64
CkksContext::p_inv_mod(u64 q) const
{
    return inv_mod(p_mod(q), q);
}

const BaseConverter&
CkksContext::converter(const std::vector<u64>& source,
                       const std::vector<u64>& target) const
{
    const auto key = std::make_pair(source, target);
    // Map entries are pointer-stable, so the reference stays valid
    // after the lock drops; the lock only serializes lazy insertion.
    std::lock_guard<std::mutex> lock(converters_mutex_);
    auto it = converters_.find(key);
    if (it == converters_.end()) {
        it = converters_
                 .emplace(key, std::make_unique<BaseConverter>(
                                   RnsBase(source), RnsBase(target)))
                 .first;
    }
    return *it->second;
}

} // namespace bts
