/**
 * @file
 * CKKS parameter set and the shared context (primes, NTT tables, bases).
 *
 * A CKKS instance (Section 2 / Table 2 of the paper) is defined by:
 *   - N     : polynomial degree (power of two),
 *   - L     : maximum multiplicative level; moduli q_0 .. q_L,
 *   - dnum  : decomposition number for generalized key-switching (Eq. 7),
 *   - k     : number of special primes, k = ceil((L+1)/dnum),
 *   - prime widths: q_0 (base, absorbs the final message), q_1..q_L
 *     (scale primes close to the scaling factor Delta), p_0..p_{k-1}
 *     (special primes).
 *
 * The security-relevant instances of the paper use N = 2^17; functional
 * tests use small insecure N (see DESIGN.md). The context owns every
 * per-prime NTT table and hands out prime chains for each level.
 */
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "math/ntt.h"
#include "rns/base_conv.h"
#include "rns/rns_base.h"
#include "rns/rns_poly.h"

namespace bts {

/** User-facing parameter choices for a CKKS instance. */
struct CkksParams
{
    std::size_t n = 1 << 12;  //!< polynomial degree N
    int max_level = 8;        //!< L
    int dnum = 2;             //!< decomposition number
    int q0_bits = 50;         //!< width of the base prime
    int scale_bits = 40;      //!< width of scale primes; Delta = 2^scale_bits
    int special_bits = 50;    //!< width of special primes
    int hamming_weight = 64;  //!< secret-key Hamming weight (sparse ternary)
    u64 seed = 42;            //!< deterministic RNG seed
};

/** Immutable shared state derived from CkksParams. */
class CkksContext
{
  public:
    explicit CkksContext(const CkksParams& params);

    const CkksParams& params() const { return params_; }
    std::size_t n() const { return params_.n; }
    int max_level() const { return params_.max_level; }
    int dnum() const { return params_.dnum; }
    /** Slice width alpha = ceil((L+1)/dnum); also the special-prime count. */
    int alpha() const { return alpha_; }
    int num_special() const { return alpha_; }
    double delta() const { return delta_; }

    /** q_0 .. q_L. */
    const std::vector<u64>& q_primes() const { return q_primes_; }
    /** p_0 .. p_{k-1}. */
    const std::vector<u64>& p_primes() const { return p_primes_; }

    /** Prime chain for a level-l polynomial: {q_0..q_l}. */
    std::vector<u64> level_primes(int level) const;

    /** Extended chain {q_0..q_l, p_0..p_{k-1}} used during key-switching. */
    std::vector<u64> extended_primes(int level) const;

    /** All primes {q_0..q_L, p_0..p_{k-1}} (the evk base). */
    const std::vector<u64>& full_primes() const { return full_primes_; }

    /** RNS base over {q_0..q_l}. */
    const RnsBase& q_base(int level) const;

    /** RNS base over the special primes. */
    const RnsBase& p_base() const { return p_base_; }

    /** NTT tables for one prime. */
    const NttTables& tables(u64 prime) const;

    /** NTT table pointers matching an arbitrary prime chain. */
    std::vector<const NttTables*> tables_for(
        const std::vector<u64>& primes) const;

    /** Table pointers matching a polynomial's own chain. */
    std::vector<const NttTables*> tables_for(const RnsPoly& poly) const;

    /**
     * Cached table pointers for {q_0..q_l} — the per-call vector builds
     * would otherwise be the last allocations on the rescale hot path.
     */
    const std::vector<const NttTables*>& level_tables(int level) const;

    /**
     * Key-switching slice j at level l: the half-open index range
     * [begin, end) into the q-prime chain (Eq. 7). Slices partition
     * {0..l} into ceil((l+1)/alpha) groups of up to alpha primes.
     */
    std::pair<int, int> slice_range(int slice, int level) const;

    /** Number of key-switching slices at level l. */
    int num_slices(int level) const;

    /**
     * [q_top]_{q_i}, precomputed for rescaling away the prime at chain
     * index @p top (1 <= top <= L, i < top) — the hottest CKKS path
     * must not recompute per-limb constants per call.
     */
    u64 rescale_q_mod(int top, int i) const;

    /** Shoup context for [q_top^{-1}]_{q_i} (same indexing). */
    const ShoupMul& rescale_inv(int top, int i) const;

    /** [P]_q for prime q (P = product of special primes). */
    u64 p_mod(u64 q) const;

    /** [P^{-1}]_q for prime q. */
    u64 p_inv_mod(u64 q) const;

    /** Cached base converter (built lazily, keyed by source/target). */
    const BaseConverter& converter(const std::vector<u64>& source,
                                   const std::vector<u64>& target) const;

    /** Total bit-length of P * Q (the security-determining quantity). */
    int log_pq_bits() const { return log_pq_bits_; }

  private:
    CkksParams params_;
    int alpha_;
    double delta_;
    std::vector<u64> q_primes_;
    std::vector<u64> p_primes_;
    std::vector<u64> full_primes_;
    std::vector<RnsBase> q_bases_; // index = level
    std::vector<std::vector<u64>> rescale_q_mod_;      // [top][i], i < top
    std::vector<std::vector<ShoupMul>> rescale_inv_;   // [top][i], i < top
    RnsBase p_base_;
    int log_pq_bits_;
    std::map<u64, std::unique_ptr<NttTables>> ntt_tables_;
    std::vector<std::vector<const NttTables*>> level_tables_; // index = level
    mutable std::mutex converters_mutex_; //!< guards converters_
    mutable std::map<std::pair<std::vector<u64>, std::vector<u64>>,
                     std::unique_ptr<BaseConverter>>
        converters_;
};

} // namespace bts
