/**
 * @file
 * Homomorphic evaluator: the primitive CKKS ops of Section 2.3 of the
 * paper (HAdd, HMult, HRot, HRescale, CAdd/CMult, PAdd/PMult) plus the
 * key-switching engine they share (Fig. 3a):
 *
 *   iNTT -> BConv (ModUp) -> NTT -> evk inner product -> iNTT -> BConv
 *   (ModDown) -> NTT -> subtract-scale-add (SSA)
 *
 * Ciphertexts and plaintexts are kept in the NTT domain at rest, exactly
 * as BTS does on-chip; only BConv and the automorphism drop back to the
 * coefficient domain (Section 4.1).
 */
#pragma once

#include <map>
#include <mutex>

#include "ckks/ciphertext.h"
#include "ckks/ckks_context.h"
#include "ckks/encoder.h"
#include "ckks/keys.h"
#include "math/mod_arith.h"

namespace bts {

/** Stateless (except precompute caches) CKKS op engine. */
class Evaluator
{
  public:
    Evaluator(const CkksContext& ctx, const CkksEncoder& encoder);

    const CkksContext& context() const { return ctx_; }

    // ----- additive ops -----
    Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext negate(const Ciphertext& a) const;

    /**
     * HAdd/HSub leaving the result residues LAZY in [0, 2q) — the sum
     * (resp. a + q - b) is stored unreduced, skipping the whole
     * canonicalization pass. Same value mod q as add()/sub(). The
     * result violates the canonical-storage invariant, so it must only
     * feed lazy-tolerant consumers (mult/mult_plain/mult_const's
     * Barrett and Shoup products, rotations and conjugation whose
     * key-switch starts with to_coeff, mod_raise) — never another
     * add/sub, a rescale, or a decryption. The runtime's lazy-residue
     * pass (docs/PASSES.md) is the intended caller.
     */
    Ciphertext add_lazy(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext sub_lazy(const Ciphertext& a, const Ciphertext& b) const;

    // ----- multiplicative ops -----
    /** HMult (Eq. 3-4): tensor product + relinearizing key-switch.
     *  Result scale is scale(a)*scale(b); caller rescales. */
    Ciphertext mult(const Ciphertext& a, const Ciphertext& b,
                    const EvalKey& mult_key) const;

    Ciphertext square(const Ciphertext& a, const EvalKey& mult_key) const;

    /** HRescale: divide by the top prime, dropping one level. */
    void rescale_inplace(Ciphertext& ct) const;

    /** Fused HMult+HRescale: the single-call form the runtime's fusion
     *  pass dispatches (one scheduler hop and no intermediate
     *  ciphertext hand-off). Bit-identical to mult() then
     *  rescale_inplace(). */
    Ciphertext mult_rescale(const Ciphertext& a, const Ciphertext& b,
                            const EvalKey& mult_key) const;

    /** Fused PMult+HRescale (same contract as mult_rescale). */
    Ciphertext mult_plain_rescale(const Ciphertext& ct,
                                  const Plaintext& pt) const;

    /** Fused PMult+CAdd: multiply by @p pt, then add constant @p c at
     *  the product's scale. Bit-identical to mult_plain() then
     *  add_const_inplace(). */
    Ciphertext mult_plain_add_const(const Ciphertext& ct,
                                    const Plaintext& pt, Complex c) const;

    // ----- rotations -----
    /** HRot by @p r slots (Eq. 5-6); key must match the amount. */
    Ciphertext rotate(const Ciphertext& ct, int r,
                      const EvalKey& rot_key) const;

    /** Complex conjugation of every slot. */
    Ciphertext conjugate(const Ciphertext& ct,
                         const EvalKey& conj_key) const;

    /** Generic Galois automorphism + key-switch (internal to HRot). */
    Ciphertext apply_galois(const Ciphertext& ct, u64 galois_exp,
                            const EvalKey& key) const;

    /**
     * Hoisted rotations (Halevi-Shoup / Bossuat et al. [12], the trick
     * bootstrapping's rotation batteries rely on): compute the
     * decompose+ModUp of the input ONCE and share it across all
     * @p amounts, paying only an automorphism + NTT + inner product +
     * ModDown per rotation. Exactly equivalent to calling rotate() per
     * amount, at a fraction of the iNTT/BConv work.
     */
    std::vector<Ciphertext> rotate_hoisted(const Ciphertext& ct,
                                           const std::vector<int>& amounts,
                                           const RotationKeys& keys) const;

    /**
     * rotate_hoisted with pre-resolved keys: @p keys[i] is the rotation
     * key for @p amounts[i] (may be null when amounts[i] == 0, which
     * copies the input). The runtime Executor resolves keys once per
     * plan and dispatches every rotation — single or grouped — through
     * this entry point, so a pass grouping rotations of the same value
     * never changes the numerics, only how often the shared
     * decompose+ModUp prefix is paid.
     */
    std::vector<Ciphertext>
    rotate_hoisted(const Ciphertext& ct, const std::vector<int>& amounts,
                   const std::vector<const EvalKey*>& keys) const;

    /**
     * Re-key a ciphertext to another party's secret using a key from
     * KeyGenerator::gen_rekey_key (server-side proxy re-encryption).
     */
    Ciphertext switch_key(const Ciphertext& ct,
                          const EvalKey& rekey_key) const;

    // ----- plaintext ops -----
    /** PMult; result scale is scale(ct)*scale(pt). */
    Ciphertext mult_plain(const Ciphertext& ct, const Plaintext& pt) const;
    /** PAdd; scales must agree (within tolerance). */
    Ciphertext add_plain(const Ciphertext& ct, const Plaintext& pt) const;
    Ciphertext sub_plain(const Ciphertext& ct, const Plaintext& pt) const;

    // ----- constant ops -----
    /** CMult by a real constant, encoded at @p const_scale. */
    Ciphertext mult_const(const Ciphertext& ct, double c,
                          double const_scale) const;
    /** CMult by a complex constant (uses the exact X^{N/2} monomial for
     *  the imaginary unit, so no extra level is consumed for i). */
    Ciphertext mult_const_complex(const Ciphertext& ct, Complex c,
                                  double const_scale) const;
    /**
     * Multiply by a real constant with the encode scale chosen so that
     * the product, after one rescale, lands exactly on
     * @p target_scale_after_rescale. The workhorse for scale-aligned
     * linear combinations (Chebyshev evaluation, linear transforms).
     */
    Ciphertext mult_const_to_scale(const Ciphertext& ct, double c,
                                   double target_scale_after_rescale) const;

    /** CAdd of a real or complex constant (no scale change). */
    void add_const_inplace(Ciphertext& ct, Complex c) const;

    /** Exact multiplication of every slot by i (monomial X^{N/2}). */
    Ciphertext mult_by_i(const Ciphertext& ct) const;

    // ----- level management -----
    /** Drop to @p target_level by discarding residue polynomials. */
    void drop_level_inplace(Ciphertext& ct, int target_level) const;

    /** Drop whichever operand is higher so both match. */
    void align_levels(Ciphertext& a, Ciphertext& b) const;

    /**
     * ModRaise for bootstrapping: reinterpret a level-0 ciphertext modulo
     * the full Q_L (the message becomes m + q_0 * I, Section 2.4).
     */
    Ciphertext mod_raise(const Ciphertext& ct) const;

    /**
     * Key-switch polynomial @p d (NTT domain, level-l base) with @p evk:
     * ModUp each dnum slice, inner-product with the key, ModDown by P.
     * @return the (b, a) correction pair on the level-l base.
     */
    std::pair<RnsPoly, RnsPoly> key_switch(const RnsPoly& d,
                                           const EvalKey& evk,
                                           int level) const;

    /** Relative scale mismatch tolerated by additions. */
    static constexpr double kScaleTolerance = 1e-6;

  private:
    /**
     * acc_{b,a} += f * evk_slice over the level-l extended base, reading
     * the key's components in place through the {q_0..q_l, p_*} ->
     * evk-base index map. One fused pass; the key is never copied onto
     * the extended base (the old per-rotation gather allocated and
     * copied two full extended polynomials per slice).
     */
    void accumulate_evk_product(RnsPoly& acc_b, RnsPoly& acc_a,
                                const RnsPoly& f, const RnsPoly& key_b,
                                const RnsPoly& key_a, int level) const;

    /** Decompose + ModUp: per-slice extended polynomials over
     *  {q_0..q_l, p_*}, returned in the COEFFICIENT domain (the shared
     *  prefix of hoisted rotations). */
    std::vector<RnsPoly> mod_up_slices(const RnsPoly& d_ntt,
                                       int level) const;

    /** ModDown by P: acc (extended base, NTT) -> level-l base. */
    void mod_down_inplace(RnsPoly& acc, int level) const;

    /** Rescale one polynomial of a ciphertext by its top prime. */
    void rescale_poly(RnsPoly& poly) const;

    /**
     * NTT image of the monomial X^power mod @p prime, with Shoup
     * constants precomputed per point (the monomial is a fixed operand
     * on the hot mult_by_i bootstrap path).
     */
    const std::vector<ShoupMul>& monomial_shoup(u64 prime,
                                                std::size_t power) const;

    const CkksContext& ctx_;
    const CkksEncoder& encoder_;
    mutable std::mutex monomial_mutex_; //!< guards monomial_cache_
    mutable std::map<std::pair<u64, std::size_t>, std::vector<ShoupMul>>
        monomial_cache_;
};

} // namespace bts
