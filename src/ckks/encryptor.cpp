#include "ckks/encryptor.h"

#include "common/check.h"
#include "math/mod_arith.h"

namespace bts {

Encryptor::Encryptor(const CkksContext& ctx, u64 seed)
    : ctx_(ctx), sampler_(seed)
{}

namespace {

RnsPoly
small_poly_ntt(Sampler& sampler, const CkksContext& ctx,
               const std::vector<u64>& primes, bool ternary)
{
    const auto vals = ternary ? sampler.ternary_poly(ctx.n())
                              : sampler.gaussian_poly(ctx.n());
    RnsPoly out(ctx.n(), primes, Domain::kCoeff);
    for (std::size_t i = 0; i < primes.size(); ++i) {
        const Span comp = out.component(i);
        for (std::size_t c = 0; c < ctx.n(); ++c) {
            comp[c] = signed_to_mod(vals[c], primes[i]);
        }
    }
    out.to_ntt(ctx.tables_for(primes));
    return out;
}

} // namespace

Ciphertext
Encryptor::encrypt_symmetric(const Plaintext& pt, const SecretKey& sk)
{
    BTS_CHECK(pt.poly.domain() == Domain::kNtt, "plaintext must be in NTT");
    const auto primes = ctx_.level_primes(pt.level);

    RnsPoly a(ctx_.n(), primes, Domain::kNtt);
    for (std::size_t i = 0; i < primes.size(); ++i) {
        a.component(i).copy_from(sampler_.uniform_poly(ctx_.n(), primes[i]));
    }
    RnsPoly e = small_poly_ntt(sampler_, ctx_, primes, /*ternary=*/false);

    RnsPoly s = sk.s_ntt;
    s.truncate(primes.size());

    RnsPoly b = a;
    b.mul_inplace(s);
    b.negate_inplace();
    b.add_inplace(e);
    b.add_inplace(pt.poly);

    Ciphertext ct;
    ct.b = std::move(b);
    ct.a = std::move(a);
    ct.scale = pt.scale;
    ct.level = pt.level;
    ct.slots = pt.slots;
    return ct;
}

Ciphertext
Encryptor::encrypt_public(const Plaintext& pt, const PublicKey& pk)
{
    BTS_CHECK(pt.poly.domain() == Domain::kNtt, "plaintext must be in NTT");
    const auto primes = ctx_.level_primes(pt.level);

    RnsPoly v = small_poly_ntt(sampler_, ctx_, primes, /*ternary=*/true);
    RnsPoly e0 = small_poly_ntt(sampler_, ctx_, primes, /*ternary=*/false);
    RnsPoly e1 = small_poly_ntt(sampler_, ctx_, primes, /*ternary=*/false);

    RnsPoly b = pk.b;
    b.truncate(primes.size());
    b.mul_inplace(v);
    b.add_inplace(e0);
    b.add_inplace(pt.poly);

    RnsPoly a = pk.a;
    a.truncate(primes.size());
    a.mul_inplace(v);
    a.add_inplace(e1);

    Ciphertext ct;
    ct.b = std::move(b);
    ct.a = std::move(a);
    ct.scale = pt.scale;
    ct.level = pt.level;
    ct.slots = pt.slots;
    return ct;
}

} // namespace bts
