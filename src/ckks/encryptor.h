/**
 * @file
 * Encryption: symmetric (secret-key) and public-key paths.
 */
#pragma once

#include "ckks/ciphertext.h"
#include "ckks/ckks_context.h"
#include "ckks/keys.h"
#include "common/random.h"

namespace bts {

/** Produces fresh encryptions ct = (b, a), b = -a*s + m + e. */
class Encryptor
{
  public:
    Encryptor(const CkksContext& ctx, u64 seed);

    /** Symmetric encryption under the secret key. */
    Ciphertext encrypt_symmetric(const Plaintext& pt, const SecretKey& sk);

    /** Public-key encryption: ct = v*pk + (m + e0, e1). */
    Ciphertext encrypt_public(const Plaintext& pt, const PublicKey& pk);

  private:
    const CkksContext& ctx_;
    Sampler sampler_;
};

} // namespace bts
