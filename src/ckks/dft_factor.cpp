#include "ckks/dft_factor.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/bit_ops.h"
#include "common/check.h"

namespace bts {

std::vector<std::vector<Complex>>
special_fourier_matrix(std::size_t n)
{
    const u64 m = 4 * static_cast<u64>(n);
    std::vector<std::vector<Complex>> a(n, std::vector<Complex>(n));
    u64 rot = 1;
    for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t k = 0; k < n; ++k) {
            const u64 idx = (rot * k) % m;
            const double angle = 2.0 * M_PI * static_cast<double>(idx) /
                                 static_cast<double>(m);
            a[t][k] = Complex(std::cos(angle), std::sin(angle));
        }
        rot = (rot * 5) % m;
    }
    return a;
}

std::vector<Complex>
apply_diagonals(const DiagonalMap& m, const std::vector<Complex>& v)
{
    const std::size_t n = v.size();
    std::vector<Complex> out(n, Complex(0, 0));
    for (const auto& [d, diag] : m) {
        for (std::size_t j = 0; j < n; ++j) {
            out[j] += diag[j] * v[(j + d) % n];
        }
    }
    return out;
}

namespace {

/** Accumulate value into row @p j of cyclic diagonal @p shift. */
void
add_entry(DiagonalMap& m, std::size_t n, std::size_t j, std::size_t shift,
          Complex value)
{
    auto& diag = m[static_cast<int>(shift % n)];
    if (diag.empty()) diag.assign(n, Complex(0, 0));
    diag[j] += value;
}

/** Drop diagonals whose every entry is numerically zero. */
void
prune(DiagonalMap& m)
{
    for (auto it = m.begin(); it != m.end();) {
        bool nonzero = false;
        for (const Complex& v : it->second) {
            if (std::abs(v) > 1e-14) {
                nonzero = true;
                break;
            }
        }
        it = nonzero ? std::next(it) : m.erase(it);
    }
}

/**
 * Butterfly stage S_i of the decode-direction special FFT, in diagonal
 * form: the linear map one `len`-span pass of CkksEncoder::fft_special
 * performs. With lenh = len/2, s = j mod len and w_s = zeta_{4len}^{5^s}:
 *
 *   out_j = in_j + w_s * in_{j+lenh}              (s <  lenh)
 *   out_j = in_{j-lenh} - w_{s-lenh} * in_j       (s >= lenh)
 *
 * i.e. diagonals at {0, +lenh, -lenh} (two diagonals when len == n,
 * where +lenh and -lenh coincide at n/2).
 */
DiagonalMap
butterfly_stage(std::size_t n, std::size_t len)
{
    const std::size_t lenh = len / 2;
    const u64 m4 = 4 * static_cast<u64>(len);
    std::vector<Complex> w(lenh);
    u64 rot = 1;
    for (std::size_t s = 0; s < lenh; ++s) {
        const double angle = 2.0 * M_PI * static_cast<double>(rot) /
                             static_cast<double>(m4);
        w[s] = Complex(std::cos(angle), std::sin(angle));
        rot = (rot * 5) % m4;
    }

    DiagonalMap stage;
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t s = j % len;
        if (s < lenh) {
            add_entry(stage, n, j, 0, Complex(1, 0));
            add_entry(stage, n, j, lenh, w[s]);
        } else {
            add_entry(stage, n, j, 0, -w[s - lenh]);
            add_entry(stage, n, j, n - lenh, Complex(1, 0));
        }
    }
    return stage;
}

/** Matrix product second * first (apply @p first, then @p second). */
DiagonalMap
compose(const DiagonalMap& second, const DiagonalMap& first, std::size_t n)
{
    DiagonalMap out;
    for (const auto& [d2, v2] : second) {
        for (const auto& [d1, v1] : first) {
            const std::size_t e =
                (static_cast<std::size_t>(d2) + static_cast<std::size_t>(d1)) %
                n;
            auto& dst = out[static_cast<int>(e)];
            if (dst.empty()) dst.assign(n, Complex(0, 0));
            for (std::size_t j = 0; j < n; ++j) {
                dst[j] += v2[j] * v1[(j + d2) % n];
            }
        }
    }
    prune(out);
    return out;
}

/** Conjugate transpose: M^dagger_e[j] = conj(M_{n-e}[(j+e) mod n]). */
DiagonalMap
dagger(const DiagonalMap& m, std::size_t n)
{
    DiagonalMap out;
    for (const auto& [d, v] : m) {
        const std::size_t e = (n - static_cast<std::size_t>(d)) % n;
        auto& dst = out[static_cast<int>(e)];
        dst.resize(n);
        for (std::size_t j = 0; j < n; ++j) {
            dst[j] = std::conj(v[(j + e) % n]);
        }
    }
    return out;
}

} // namespace

int
FactoredDft::num_stages_for(std::size_t slots, int radix)
{
    BTS_CHECK(is_power_of_two(slots) && slots >= 2,
              "slot count must be a power of two >= 2");
    BTS_CHECK(radix >= 2 && is_power_of_two(static_cast<u64>(radix)),
              "radix must be a power of two >= 2 (0 selects the dense "
              "oracle in BootstrapConfig, not here)");
    const int k = static_cast<int>(log2_exact(slots));
    const int r = static_cast<int>(log2_exact(static_cast<u64>(radix)));
    return (k + r - 1) / r;
}

std::vector<DiagonalMap>
FactoredDft::stage_diagonals(std::size_t n, DftDirection direction,
                             int radix)
{
    (void)num_stages_for(n, radix); // shared argument validation
    const int k = static_cast<int>(log2_exact(n));
    const int r = static_cast<int>(log2_exact(static_cast<u64>(radix)));

    // Merge consecutive butterfly stages into radix-2^r factors. The
    // product telescopes regardless of chunk boundaries, so each
    // direction chunks from its own first-applied end (any ragged
    // remainder lands on the last-applied factor).
    std::vector<DiagonalMap> out;
    if (direction == DftDirection::kSlotToCoeff) {
        // A * P = S_k ... S_1 : stage S_1 (len = 2) is applied first.
        for (int lo = 1; lo <= k; lo += r) {
            const int hi = std::min(lo + r - 1, k);
            DiagonalMap m = butterfly_stage(n, std::size_t{1} << lo);
            for (int i = lo + 1; i <= hi; ++i) {
                m = compose(butterfly_stage(n, std::size_t{1} << i), m, n);
            }
            out.push_back(std::move(m));
        }
    } else {
        // (1/2n) P A^dagger... dropped P: S_1^d ... S_k^d with S_k^d
        // applied first; each chunk (S_lo ... S_hi)^dagger.
        for (int hi = k; hi >= 1; hi -= r) {
            const int lo = std::max(hi - r + 1, 1);
            DiagonalMap m = butterfly_stage(n, std::size_t{1} << lo);
            for (int i = lo + 1; i <= hi; ++i) {
                m = compose(butterfly_stage(n, std::size_t{1} << i), m, n);
            }
            out.push_back(dagger(m, n));
        }
        // Fold the 1/(2n) CtS normalization evenly across the factors
        // (an even split keeps every diagonal's magnitude — and thus
        // its encoding precision at the fixed plaintext scale — alike).
        const double c = std::pow(
            1.0 / (2.0 * static_cast<double>(n)),
            1.0 / static_cast<double>(out.size()));
        for (auto& m : out) {
            for (auto& [d, v] : m) {
                for (Complex& x : v) x *= c;
            }
        }
    }
    return out;
}

FactoredDft::FactoredDft(const CkksContext& ctx, const CkksEncoder& encoder,
                         std::size_t slots, DftDirection direction,
                         int radix, int input_level, double bsgs_ratio)
    : slots_(slots), direction_(direction)
{
    const auto maps = stage_diagonals(slots, direction, radix);
    const int stages = static_cast<int>(maps.size());
    BTS_CHECK(input_level >= stages,
              "factored DFT needs " << stages << " levels but input is at "
                                    << input_level
                                    << "; raise the level budget or the "
                                       "radix");
    for (int s = 0; s < stages; ++s) {
        stages_.push_back(std::make_unique<LinearTransform>(
            ctx, encoder, slots, maps[s], input_level - s, bsgs_ratio));
    }
}

int
FactoredDft::total_diagonals() const
{
    int total = 0;
    for (const auto& lt : stages_) total += lt->num_diagonals();
    return total;
}

std::vector<int>
FactoredDft::required_rotations() const
{
    std::set<int> amounts;
    for (const auto& lt : stages_) {
        for (int r : lt->required_rotations()) amounts.insert(r);
    }
    return {amounts.begin(), amounts.end()};
}

Ciphertext
FactoredDft::apply(const Evaluator& eval, const Ciphertext& ct,
                   const RotationKeys& rot_keys) const
{
    BTS_CHECK(ct.slots == slots_, "slot count does not match the transform");
    Ciphertext acc = ct;
    for (const auto& lt : stages_) {
        acc = lt->apply(eval, acc, rot_keys);
    }
    return acc;
}

} // namespace bts
