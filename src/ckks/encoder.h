/**
 * @file
 * CKKS encoder: canonical embedding between complex slot vectors and
 * ring polynomials (Section 2.2 of the paper).
 *
 * A message of n complex slots (n a power of two, n <= N/2) maps to a
 * polynomial via the special FFT over the rotation group {5^j}: slot
 * values are the evaluations of the polynomial at the primitive 2N-th
 * roots of unity zeta^{5^j}. Sparse packing (n < N/2) places the
 * embedding of the size-n subring at stride N/(2n), which is what makes
 * sparse bootstrapping work.
 *
 * Both an O(n log n) special FFT and an O(n^2) direct-evaluation
 * reference are provided; tests pin their equivalence and the
 * ring-homomorphism property (negacyclic poly mult == slot-wise mult).
 */
#pragma once

#include <complex>
#include <vector>

#include "ckks/ciphertext.h"
#include "ckks/ckks_context.h"

namespace bts {

using Complex = std::complex<double>;

/** Encoder/decoder bound to one context. */
class CkksEncoder
{
  public:
    explicit CkksEncoder(const CkksContext& ctx);

    /** Maximum slot count N/2. */
    std::size_t max_slots() const { return ctx_.n() / 2; }

    /**
     * Encode @p values (size = power of two <= N/2) at @p scale into a
     * level-@p level plaintext (NTT domain).
     */
    Plaintext encode(const std::vector<Complex>& values, double scale,
                     int level) const;

    /** Real-vector convenience overload. */
    Plaintext encode_real(const std::vector<double>& values, double scale,
                          int level) const;

    /** Encode the same scalar in every slot. */
    Plaintext encode_scalar(Complex value, std::size_t slots, double scale,
                            int level) const;

    /** Decode a plaintext back to its slot values. */
    std::vector<Complex> decode(const Plaintext& pt) const;

    /**
     * Decode via direct root evaluation — O(n^2) reference used by the
     * test suite to validate the special FFT.
     */
    std::vector<Complex> decode_direct(const Plaintext& pt) const;

    /**
     * Raw coefficient encoding: place round(values[i] * scale) directly
     * into coefficient i (no embedding). Used by bootstrapping tests and
     * the EvalMod diagnostics.
     */
    Plaintext encode_coeffs(const std::vector<double>& coeffs, double scale,
                            int level, std::size_t slots) const;

    /** Inverse of encode_coeffs (CRT-composes and centers). */
    std::vector<double> decode_coeffs(const Plaintext& pt) const;

    // --- embedding primitives (exposed for the bootstrapper, which needs
    //     the matrices of these transforms) ---

    /** In-place special FFT (decode direction) on @p v (size n). */
    void fft_special(std::vector<Complex>& v) const;

    /** In-place inverse special FFT (encode direction). */
    void fft_special_inv(std::vector<Complex>& v) const;

  private:
    /** Centered big-integer coefficients divided by scale. */
    std::vector<double> coeffs_to_double(const Plaintext& pt) const;

    const CkksContext& ctx_;
};

} // namespace bts
