#include "ckks/chebyshev.h"

#include <cmath>

#include "common/bit_ops.h"
#include "common/check.h"

namespace bts {

ChebyshevSeries::ChebyshevSeries(std::vector<double> coeffs, double a,
                                 double b)
    : coeffs_(std::move(coeffs)), a_(a), b_(b)
{
    BTS_CHECK(!coeffs_.empty(), "empty series");
    BTS_CHECK(a < b, "invalid interval");
}

ChebyshevSeries
ChebyshevSeries::interpolate(const std::function<double(double)>& f, double a,
                             double b, int degree)
{
    BTS_CHECK(degree >= 0, "degree must be nonnegative");
    const int nodes = degree + 1;
    std::vector<double> samples(nodes);
    for (int k = 0; k < nodes; ++k) {
        const double theta = M_PI * (k + 0.5) / nodes;
        const double x = std::cos(theta);
        samples[k] = f(0.5 * (b - a) * x + 0.5 * (a + b));
    }
    std::vector<double> coeffs(nodes);
    for (int j = 0; j < nodes; ++j) {
        double acc = 0.0;
        for (int k = 0; k < nodes; ++k) {
            acc += samples[k] * std::cos(M_PI * j * (k + 0.5) / nodes);
        }
        coeffs[j] = 2.0 * acc / nodes;
    }
    coeffs[0] *= 0.5;
    return ChebyshevSeries(std::move(coeffs), a, b);
}

double
ChebyshevSeries::evaluate(double x) const
{
    // Clenshaw recurrence on the normalized argument.
    const double y = (2.0 * x - (a_ + b_)) / (b_ - a_);
    double b1 = 0.0, b2 = 0.0;
    for (int j = degree(); j >= 1; --j) {
        const double tmp = 2.0 * y * b1 - b2 + coeffs_[j];
        b2 = b1;
        b1 = tmp;
    }
    return y * b1 - b2 + coeffs_[0];
}

double
ChebyshevSeries::max_error(const std::function<double(double)>& f,
                           int samples) const
{
    double worst = 0.0;
    for (int i = 0; i <= samples; ++i) {
        const double x = a_ + (b_ - a_) * i / samples;
        worst = std::max(worst, std::abs(f(x) - evaluate(x)));
    }
    return worst;
}

void
chebyshev_divmod(const std::vector<double>& f, int g,
                 std::vector<double>& quotient, std::vector<double>& remainder)
{
    const int deg = static_cast<int>(f.size()) - 1;
    BTS_CHECK(g >= 1 && g <= deg, "divisor degree out of range");
    quotient.assign(deg - g + 1, 0.0);
    remainder = f;
    for (int j = deg; j > g; --j) {
        const double cj = remainder[j];
        if (cj == 0.0) continue;
        // T_g * (2 c_j T_{j-g}) = c_j T_j + c_j T_{|2g-j|}
        quotient[j - g] = 2.0 * cj;
        remainder[j] = 0.0;
        remainder[std::abs(2 * g - j)] -= cj;
    }
    quotient[0] = remainder[g];
    remainder[g] = 0.0;
    remainder.resize(g);
    if (remainder.empty()) remainder.assign(1, 0.0);
}

int
ChebyshevEvaluator::baby_step_count(int degree)
{
    // Power of two near sqrt(degree + 1).
    int m = 1;
    while (m * m < degree + 1) m <<= 1;
    return std::max(2, m);
}

int
ChebyshevEvaluator::depth(int degree)
{
    const int m = baby_step_count(degree);
    int d = log2_exact(static_cast<u64>(m)); // T_m depth
    int g = m;
    while (2 * g <= degree) {
        g *= 2;
        ++d; // each giant T_{2g} adds one squaring level
    }
    ++d; // final recombination products
    return d;
}

ChebyshevEvaluator::PowerBasis
ChebyshevEvaluator::build_power_basis(const Ciphertext& y, int degree,
                                      const EvalKey& mult_key) const
{
    const int m = baby_step_count(degree);
    int top = m;
    while (2 * top <= degree) top *= 2;

    PowerBasis basis;
    basis.m = m;
    basis.t.resize(top + 1);
    basis.have.assign(top + 1, false);
    basis.t[1] = y;
    basis.have[1] = true;

    // T_{2k} = 2 T_k^2 - 1 ; T_{2k+1} = 2 T_k T_{k+1} - T_1.
    // Scales are tracked exactly: the T_1 subtraction happens BEFORE the
    // rescale, on a copy of T_1 brought to the product's exact scale by
    // a free (rescale-less) constant multiplication.
    std::function<const Ciphertext&(int)> get =
        [&](int j) -> const Ciphertext& {
        BTS_ASSERT(j >= 1 && j <= top, "power index out of range");
        if (basis.have[j]) return basis.t[j];
        const int lo = j / 2;
        const int hi = j - lo;
        const Ciphertext& a = get(lo);
        const Ciphertext& b = get(hi);
        Ciphertext prod = eval_.mult(a, b, mult_key);
        // Double the VALUE without a level: ct + ct at unchanged scale.
        prod.b.add_inplace(prod.b);
        prod.a.add_inplace(prod.a);
        if (lo == hi) {
            // 2 T_k^2 - 1: the constant is subtracted after the rescale
            // (the raw double-width scale would overflow the 62-bit
            // constant encoder); add_const at the ciphertext's own scale
            // is exact up to one rounding of the constant.
            eval_.rescale_inplace(prod);
            eval_.add_const_inplace(prod, Complex(-1.0, 0.0));
            basis.t[j] = std::move(prod);
            basis.have[j] = true;
            return basis.t[j];
        } else {
            Ciphertext t1 = basis.t[1];
            eval_.drop_level_inplace(t1, prod.level);
            // Bring T_1 to the product's exact raw scale (free CMult).
            t1 = eval_.mult_const(t1, 1.0, prod.scale / t1.scale);
            t1.scale = prod.scale;
            prod.b.sub_inplace(t1.b);
            prod.a.sub_inplace(t1.a);
        }
        eval_.rescale_inplace(prod);
        basis.t[j] = std::move(prod);
        basis.have[j] = true;
        return basis.t[j];
    };

    for (int j = 2; j <= m; ++j) get(j);
    for (int g = 2 * m; g <= top; g *= 2) get(g);
    return basis;
}

int
ChebyshevEvaluator::level_of(const std::vector<double>& coeffs,
                             const PowerBasis& basis) const
{
    const int deg = static_cast<int>(coeffs.size()) - 1;
    if (deg < basis.m) {
        int lvl = basis.t[1].level;
        for (int j = 2; j <= deg; ++j) lvl = std::min(lvl, basis.t[j].level);
        return lvl - 1; // leaf spends one level on mult_const_to_scale
    }
    int g = basis.m;
    while (2 * g <= deg) g *= 2;
    std::vector<double> quotient, remainder;
    chebyshev_divmod(coeffs, g, quotient, remainder);
    const int lq = level_of(quotient, basis);
    return std::min(lq, basis.t[g].level) - 1; // product + rescale
}

Ciphertext
ChebyshevEvaluator::eval_recurse(const std::vector<double>& coeffs,
                                 const PowerBasis& basis,
                                 const EvalKey& mult_key,
                                 double target_scale) const
{
    const int deg = static_cast<int>(coeffs.size()) - 1;

    if (deg < basis.m) {
        // Leaf: sum_j c_j T_j, every term steered EXACTLY to
        // target_scale at a common level via mult_const_to_scale.
        const int lvl = level_of(coeffs, basis);
        BTS_CHECK(lvl >= 0, "ran out of levels in Chebyshev leaf");

        Ciphertext acc;
        bool acc_set = false;
        for (int j = 1; j <= deg; ++j) {
            if (std::abs(coeffs[j]) < 1e-300) continue;
            Ciphertext term = basis.t[j];
            eval_.drop_level_inplace(term, lvl + 1);
            term = eval_.mult_const_to_scale(term, coeffs[j], target_scale);
            if (!acc_set) {
                acc = std::move(term);
                acc_set = true;
            } else {
                acc.b.add_inplace(term.b);
                acc.a.add_inplace(term.a);
            }
        }
        if (!acc_set) {
            // Constant-only leaf: materialize a zero at the right level.
            Ciphertext zero = basis.t[1];
            eval_.drop_level_inplace(zero, lvl + 1);
            zero = eval_.mult_const_to_scale(zero, 0.0, target_scale);
            acc = std::move(zero);
        }
        eval_.add_const_inplace(acc, Complex(coeffs[0], 0.0));
        return acc;
    }

    // Find the largest giant power <= deg.
    int g = basis.m;
    while (2 * g <= deg) g *= 2;

    std::vector<double> quotient, remainder;
    chebyshev_divmod(coeffs, g, quotient, remainder);

    // Choose the quotient's target so that (q * T_g) rescaled lands
    // exactly on target_scale: s_q = target * q_dropped / s_g.
    const int lq = level_of(quotient, basis);
    const int prod_level = std::min(lq, basis.t[g].level);
    const u64 q_dropped = eval_.context().q_primes()[prod_level];
    const double s_g = basis.t[g].scale;
    const double s_q =
        target_scale * static_cast<double>(q_dropped) / s_g;

    Ciphertext q_ct = eval_recurse(quotient, basis, mult_key, s_q);
    Ciphertext prod = eval_.mult(q_ct, basis.t[g], mult_key);
    BTS_ASSERT(prod.level == prod_level, "level prediction mismatch");
    eval_.rescale_inplace(prod);
    prod.scale = target_scale; // exact by construction (up to 1 ulp)

    Ciphertext r_ct =
        eval_recurse(remainder, basis, mult_key, target_scale);
    eval_.drop_level_inplace(r_ct, std::min(r_ct.level, prod.level));
    eval_.drop_level_inplace(prod, r_ct.level);
    prod.b.add_inplace(r_ct.b);
    prod.a.add_inplace(r_ct.a);
    return prod;
}

Ciphertext
ChebyshevEvaluator::evaluate(const Ciphertext& ct,
                             const ChebyshevSeries& series,
                             const EvalKey& mult_key) const
{
    BTS_CHECK(series.degree() >= 1, "series must have degree >= 1");
    const double a = series.lower();
    const double b = series.upper();
    const double delta = eval_.context().delta();

    // Affine normalization y = (2x - (a+b)) / (b-a), one level.
    Ciphertext y = eval_.mult_const_to_scale(ct, 2.0 / (b - a), delta);
    if (a + b != 0.0) {
        eval_.add_const_inplace(y, Complex(-(a + b) / (b - a), 0.0));
    }

    const PowerBasis basis =
        build_power_basis(y, series.degree(), mult_key);
    return eval_recurse(series.coeffs(), basis, mult_key, delta);
}

} // namespace bts
