#include "ckks/keygen.h"

#include "common/check.h"
#include "math/mod_arith.h"

namespace bts {

KeyGenerator::KeyGenerator(const CkksContext& ctx, u64 seed)
    : ctx_(ctx), sampler_(seed)
{}

SecretKey
KeyGenerator::gen_secret_key()
{
    const auto& primes = ctx_.full_primes();
    const auto ternary =
        sampler_.sparse_ternary_poly(ctx_.n(), ctx_.params().hamming_weight);

    SecretKey sk;
    sk.hamming_weight = ctx_.params().hamming_weight;
    sk.s_coeff = RnsPoly(ctx_.n(), primes, Domain::kCoeff);
    for (std::size_t i = 0; i < primes.size(); ++i) {
        const Span comp = sk.s_coeff.component(i);
        for (std::size_t c = 0; c < ctx_.n(); ++c) {
            comp[c] = signed_to_mod(ternary[c], primes[i]);
        }
    }
    sk.s_ntt = sk.s_coeff;
    sk.s_ntt.to_ntt(ctx_.tables_for(primes));
    return sk;
}

namespace {

/** Sample a uniform polynomial directly in the NTT domain (uniform is
 *  invariant under the transform, so this is sound and cheaper). */
RnsPoly
uniform_ntt_poly(Sampler& sampler, std::size_t n,
                 const std::vector<u64>& primes)
{
    RnsPoly out(n, primes, Domain::kNtt);
    for (std::size_t i = 0; i < primes.size(); ++i) {
        out.component(i).copy_from(sampler.uniform_poly(n, primes[i]));
    }
    return out;
}

/** Sample a Gaussian error polynomial and move it to the NTT domain. */
RnsPoly
gaussian_ntt_poly(Sampler& sampler, const CkksContext& ctx,
                  const std::vector<u64>& primes)
{
    const auto err = sampler.gaussian_poly(ctx.n());
    RnsPoly out(ctx.n(), primes, Domain::kCoeff);
    for (std::size_t i = 0; i < primes.size(); ++i) {
        const Span comp = out.component(i);
        for (std::size_t c = 0; c < ctx.n(); ++c) {
            comp[c] = signed_to_mod(err[c], primes[i]);
        }
    }
    out.to_ntt(ctx.tables_for(primes));
    return out;
}

} // namespace

PublicKey
KeyGenerator::gen_public_key(const SecretKey& sk)
{
    // Public key lives at the top q-level (no special primes needed).
    const auto primes = ctx_.level_primes(ctx_.max_level());
    RnsPoly a = uniform_ntt_poly(sampler_, ctx_.n(), primes);
    RnsPoly e = gaussian_ntt_poly(sampler_, ctx_, primes);

    RnsPoly s = sk.s_ntt;
    s.truncate(primes.size());

    RnsPoly b = a;
    b.mul_inplace(s);
    b.negate_inplace();
    b.add_inplace(e);

    PublicKey pk;
    pk.b = std::move(b);
    pk.a = std::move(a);
    return pk;
}

EvalKey
KeyGenerator::gen_switching_key(const SecretKey& sk,
                                const RnsPoly& s_src_ntt, u64 galois_exp)
{
    const auto& primes = ctx_.full_primes();
    const int L = ctx_.max_level();
    const int k = ctx_.num_special();

    EvalKey evk;
    evk.galois_exp = galois_exp;
    evk.slices.reserve(ctx_.dnum());

    for (int j = 0; j < ctx_.dnum(); ++j) {
        RnsPoly a = uniform_ntt_poly(sampler_, ctx_.n(), primes);
        RnsPoly e = gaussian_ntt_poly(sampler_, ctx_, primes);

        RnsPoly b = a;
        b.mul_inplace(sk.s_ntt);
        b.negate_inplace();
        b.add_inplace(e);

        // Gadget term: [P]_{q_i} * s_src on slice-j primes, zero elsewhere
        // (and zero on the special primes since P == 0 mod p_t).
        const auto [begin, end] = ctx_.slice_range(j, L);
        for (int i = begin; i < end; ++i) {
            const u64 q = primes[i];
            const ShoupMul p_mod_q(ctx_.p_mod(q), q);
            const ConstSpan s_comp = s_src_ntt.component(i);
            const Span b_comp = b.component(i);
            for (std::size_t c = 0; c < ctx_.n(); ++c) {
                b_comp[c] = add_mod(b_comp[c], p_mod_q.mul(s_comp[c], q), q);
            }
        }
        (void)k;
        evk.slices.emplace_back(std::move(b), std::move(a));
    }
    return evk;
}

EvalKey
KeyGenerator::gen_mult_key(const SecretKey& sk)
{
    RnsPoly s2 = sk.s_ntt;
    s2.mul_inplace(sk.s_ntt);
    return gen_switching_key(sk, s2, 0);
}

u64
KeyGenerator::galois_exp_for_rotation(int r) const
{
    const u64 two_n = 2 * static_cast<u64>(ctx_.n());
    const u64 order = ctx_.n() / 2; // order of 5 in Z_2N^* / {+-1}
    const u64 amount =
        ((static_cast<i64>(r) % static_cast<i64>(order)) + order) % order;
    return pow_mod(5, amount, two_n);
}

u64
KeyGenerator::galois_exp_conjugation() const
{
    return 2 * static_cast<u64>(ctx_.n()) - 1;
}

EvalKey
KeyGenerator::gen_rotation_key(const SecretKey& sk, int r)
{
    const u64 exp = galois_exp_for_rotation(r);
    RnsPoly s_rot = sk.s_coeff.automorphism(exp);
    s_rot.to_ntt(ctx_.tables_for(s_rot));
    return gen_switching_key(sk, s_rot, exp);
}

EvalKey
KeyGenerator::gen_conjugation_key(const SecretKey& sk)
{
    const u64 exp = galois_exp_conjugation();
    RnsPoly s_conj = sk.s_coeff.automorphism(exp);
    s_conj.to_ntt(ctx_.tables_for(s_conj));
    return gen_switching_key(sk, s_conj, exp);
}

EvalKey
KeyGenerator::gen_rekey_key(const SecretKey& sk_from, const SecretKey& sk_to)
{
    return gen_switching_key(sk_to, sk_from.s_ntt, 0);
}

RotationKeys
KeyGenerator::gen_rotation_keys(const SecretKey& sk,
                                const std::vector<int>& amounts)
{
    RotationKeys keys;
    for (int r : amounts) {
        if (r == 0 || keys.count(r)) continue;
        keys.emplace(r, gen_rotation_key(sk, r));
    }
    return keys;
}

} // namespace bts
