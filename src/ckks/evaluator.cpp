#include "ckks/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel.h"
#include "common/workspace.h"
#include "math/mod_arith.h"
#include "runtime/telemetry/trace.h"

namespace bts {

Evaluator::Evaluator(const CkksContext& ctx, const CkksEncoder& encoder)
    : ctx_(ctx), encoder_(encoder)
{}

namespace {

void
check_plain_chain(const Ciphertext& ct, const Plaintext& pt)
{
    // Counting primes is not enough: the plaintext's chain must be a
    // prefix match of the ciphertext's (mirroring rescale_poly's chain
    // assertion). A re-based plaintext with the right *count* but the
    // wrong primes would silently produce garbage residues.
    BTS_CHECK(pt.num_primes() >= ct.level + 1,
              "plaintext level too low for the ciphertext");
    for (int i = 0; i <= ct.level; ++i) {
        BTS_CHECK(pt.poly.prime(i) == ct.b.prime(i),
                  "plaintext prime chain is not a prefix match of the "
                  "ciphertext's (re-based plaintext?) at limb "
                      << i);
    }
}

void
check_scale_match(double s1, double s2)
{
    // Guard before dividing: a zero / negative / NaN scale would turn
    // the ratio test into a meaningless (or division-by-zero) check.
    BTS_CHECK(s1 > 0.0 && s2 > 0.0,
              "operand scales must be positive: " << s1 << " vs " << s2);
    BTS_CHECK(std::abs(s1 / s2 - 1.0) < Evaluator::kScaleTolerance,
              "operand scales differ beyond tolerance: " << s1 << " vs "
                                                         << s2);
}

} // namespace

void
Evaluator::drop_level_inplace(Ciphertext& ct, int target_level) const
{
    BTS_CHECK(target_level >= 0 && target_level <= ct.level,
              "cannot raise level by dropping");
    ct.b.truncate(target_level + 1);
    ct.a.truncate(target_level + 1);
    ct.level = target_level;
}

void
Evaluator::align_levels(Ciphertext& a, Ciphertext& b) const
{
    const int target = std::min(a.level, b.level);
    drop_level_inplace(a, target);
    drop_level_inplace(b, target);
}

Ciphertext
Evaluator::add(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext x = a, y = b;
    align_levels(x, y);
    check_scale_match(x.scale, y.scale);
    x.b.add_inplace(y.b);
    x.a.add_inplace(y.a);
    return x;
}

Ciphertext
Evaluator::sub(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext x = a, y = b;
    align_levels(x, y);
    check_scale_match(x.scale, y.scale);
    x.b.sub_inplace(y.b);
    x.a.sub_inplace(y.a);
    return x;
}

Ciphertext
Evaluator::add_lazy(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext x = a, y = b;
    align_levels(x, y);
    check_scale_match(x.scale, y.scale);
    x.b.add_inplace_lazy(y.b);
    x.a.add_inplace_lazy(y.a);
    return x;
}

Ciphertext
Evaluator::sub_lazy(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext x = a, y = b;
    align_levels(x, y);
    check_scale_match(x.scale, y.scale);
    x.b.sub_inplace_lazy(y.b);
    x.a.sub_inplace_lazy(y.a);
    return x;
}

Ciphertext
Evaluator::negate(const Ciphertext& a) const
{
    Ciphertext out = a;
    out.b.negate_inplace();
    out.a.negate_inplace();
    return out;
}

void
Evaluator::accumulate_evk_product(RnsPoly& acc_b, RnsPoly& acc_a,
                                  const RnsPoly& f, const RnsPoly& key_b,
                                  const RnsPoly& key_a, int level) const
{
    // evk polynomials live over {q_0..q_L, p_0..p_{k-1}}; f and the
    // accumulators over {q_0..q_l, p_0..p_{k-1}}. Index ext limb i to
    // key limb i (q part) or L+1+(i-level-1) (special part) and fuse
    // multiply and accumulate in a single tiled pass.
    //
    // f may carry LAZY residues in [0, 2q) (from to_ntt_lazy): the
    // Barrett product of a [0, 2q) value with a canonical key residue
    // stays below q * 2^64, so the reducer canonicalizes it for free
    // and the accumulators remain canonical.
    const int L = ctx_.max_level();
    const std::size_t n = ctx_.n();
    const std::size_t count = f.num_primes();
    BTS_ASSERT(f.domain() == Domain::kNtt &&
                   acc_b.num_primes() == count && acc_a.num_primes() == count,
               "evk accumulate operands mismatch");

    std::vector<Barrett> barrett(count);
    std::vector<const u64*> kb(count), ka(count);
    for (std::size_t i = 0; i < count; ++i) {
        barrett[i] = Barrett(f.prime(i));
        const std::size_t ki =
            static_cast<int>(i) <= level
                ? i
                : static_cast<std::size_t>(L + 1) - (level + 1) + i;
        kb[i] = key_b.component(ki).data();
        ka[i] = key_a.component(ki).data();
    }
    const u64* const fp = f.data();
    u64* const ab = acc_b.data();
    u64* const aa = acc_a.data();
    parallel_for_2d(
        count, n,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const Barrett& br = barrett[i];
            const u64 q = br.modulus();
            const u64* fc = fp + i * n;
            const u64* kbc = kb[i];
            const u64* kac = ka[i];
            u64* abc = ab + i * n;
            u64* aac = aa + i * n;
            for (std::size_t c = c0; c < c1; ++c) {
                abc[c] = add_mod(abc[c], br.mul(fc[c], kbc[c]), q);
                aac[c] = add_mod(aac[c], br.mul(fc[c], kac[c]), q);
            }
        });
}

std::pair<RnsPoly, RnsPoly>
Evaluator::key_switch(const RnsPoly& d, const EvalKey& evk, int level) const
{
    BTS_TRACE_SPAN_VAR(trace_span, kEvaluator, "keyswitch");
    trace_span.set_level(level);
    BTS_CHECK(d.domain() == Domain::kNtt, "key_switch expects NTT domain");
    BTS_CHECK(static_cast<int>(d.num_primes()) == level + 1,
              "polynomial does not match the stated level");
    BTS_CHECK(!evk.empty(), "evaluation key is empty");

    const auto ext = ctx_.extended_primes(level);
    const auto q_primes = ctx_.level_primes(level);

    RnsPoly acc_b(ctx_.n(), ext, Domain::kNtt);
    RnsPoly acc_a(ctx_.n(), ext, Domain::kNtt);

    const int slices = ctx_.num_slices(level);
    BTS_CHECK(slices <= static_cast<int>(evk.slices.size()),
              "evaluation key has too few slices");

    for (int j = 0; j < slices; ++j) {
        const auto [begin, end] = ctx_.slice_range(j, level);

        // ModUp: iNTT the slice, base-convert to the complement + P, NTT.
        std::vector<u64> src(q_primes.begin() + begin,
                             q_primes.begin() + end);
        std::vector<u64> tgt;
        for (int i = 0; i <= level; ++i) {
            if (i < begin || i >= end) tgt.push_back(q_primes[i]);
        }
        tgt.insert(tgt.end(), ctx_.p_primes().begin(),
                   ctx_.p_primes().end());

        RnsPoly d_slice(ctx_.n(), src, Domain::kNtt, RnsPoly::Uninit{});
        for (int i = begin; i < end; ++i) {
            d_slice.component(i - begin).copy_from(d.component(i));
        }
        d_slice.to_coeff(ctx_.tables_for(src));

        // Lazy forward transform: the only reader is the Barrett inner
        // product below, which tolerates [0, 2q) inputs.
        RnsPoly converted = ctx_.converter(src, tgt).convert(d_slice);
        converted.to_ntt_lazy(ctx_.tables_for(tgt));

        // Reassemble the extended polynomial: slice components stay in
        // the NTT domain untouched; converted components fill the rest.
        RnsPoly f(ctx_.n(), ext, Domain::kNtt, RnsPoly::Uninit{});
        std::size_t conv_idx = 0;
        for (std::size_t i = 0; i < ext.size(); ++i) {
            const int ii = static_cast<int>(i);
            if (ii >= begin && ii < end && ii <= level) {
                f.component(i).copy_from(d.component(i));
            } else {
                f.component(i).copy_from(converted.component(conv_idx++));
            }
        }

        // Inner product with the key slice (read in place, fused).
        accumulate_evk_product(acc_b, acc_a, f, evk.slices[j].first,
                               evk.slices[j].second, level);
    }

    mod_down_inplace(acc_b, level);
    mod_down_inplace(acc_a, level);
    return {std::move(acc_b), std::move(acc_a)};
}

void
Evaluator::mod_down_inplace(RnsPoly& acc, int level) const
{
    // ModDown: divide the accumulated polynomial by P (subtract the
    // P-residue lift, then multiply by P^{-1} mod q_i) — the SSA step
    // of Fig. 3a.
    const auto q_primes = ctx_.level_primes(level);
    const int k = ctx_.num_special();
    RnsPoly p_part(ctx_.n(), ctx_.p_primes(), Domain::kNtt,
                   RnsPoly::Uninit{});
    for (int t = 0; t < k; ++t) {
        p_part.component(t).copy_from(acc.component(level + 1 + t));
    }
    p_part.to_coeff(ctx_.tables_for(ctx_.p_primes()));
    RnsPoly lifted =
        ctx_.converter(ctx_.p_primes(), q_primes).convert(p_part);
    lifted.to_ntt_lazy(ctx_.tables_for(q_primes));

    acc.truncate(level + 1);
    std::vector<u64> p_inv(level + 1);
    for (int i = 0; i <= level; ++i) {
        p_inv[i] = ctx_.p_inv_mod(q_primes[i]);
    }
    // One fused subtract-multiply pass; the lazy NTT output above is
    // canonicalized by the full Shoup product inside it.
    acc.sub_mul_scalar_inplace(lifted, p_inv, RnsPoly::Residues::kLazy2q);
}

std::vector<RnsPoly>
Evaluator::mod_up_slices(const RnsPoly& d_ntt, int level) const
{
    BTS_CHECK(d_ntt.domain() == Domain::kNtt, "expects NTT input");
    const auto ext = ctx_.extended_primes(level);
    const auto q_primes = ctx_.level_primes(level);

    RnsPoly d = d_ntt;
    d.to_coeff(ctx_.tables_for(d));

    std::vector<RnsPoly> slices;
    const int count = ctx_.num_slices(level);
    for (int j = 0; j < count; ++j) {
        const auto [begin, end] = ctx_.slice_range(j, level);
        std::vector<u64> src(q_primes.begin() + begin,
                             q_primes.begin() + end);
        std::vector<u64> tgt;
        for (int i = 0; i <= level; ++i) {
            if (i < begin || i >= end) tgt.push_back(q_primes[i]);
        }
        tgt.insert(tgt.end(), ctx_.p_primes().begin(),
                   ctx_.p_primes().end());

        RnsPoly d_slice(ctx_.n(), src, Domain::kCoeff,
                        RnsPoly::Uninit{});
        for (int i = begin; i < end; ++i) {
            d_slice.component(i - begin).copy_from(d.component(i));
        }
        RnsPoly converted = ctx_.converter(src, tgt).convert(d_slice);

        RnsPoly f(ctx_.n(), ext, Domain::kCoeff, RnsPoly::Uninit{});
        std::size_t conv_idx = 0;
        for (std::size_t i = 0; i < ext.size(); ++i) {
            const int ii = static_cast<int>(i);
            if (ii >= begin && ii < end && ii <= level) {
                f.component(i).copy_from(d.component(i));
            } else {
                f.component(i).copy_from(converted.component(conv_idx++));
            }
        }
        slices.push_back(std::move(f));
    }
    return slices;
}

std::vector<Ciphertext>
Evaluator::rotate_hoisted(const Ciphertext& ct,
                          const std::vector<int>& amounts,
                          const RotationKeys& keys) const
{
    std::vector<const EvalKey*> resolved;
    resolved.reserve(amounts.size());
    for (const int r : amounts) {
        if (r == 0) {
            resolved.push_back(nullptr);
            continue;
        }
        const auto it = keys.find(r);
        BTS_CHECK(it != keys.end(), "missing rotation key " << r);
        resolved.push_back(&it->second);
    }
    return rotate_hoisted(ct, amounts, resolved);
}

std::vector<Ciphertext>
Evaluator::rotate_hoisted(const Ciphertext& ct,
                          const std::vector<int>& amounts,
                          const std::vector<const EvalKey*>& keys) const
{
    BTS_TRACE_SPAN_VAR(trace_span, kEvaluator, "rotate.hoisted");
    trace_span.set_level(ct.level);
    trace_span.set_arg(static_cast<i64>(amounts.size()));
    BTS_CHECK(keys.size() == amounts.size(),
              "one key per rotation amount expected");
    const int level = ct.level;
    const auto ext = ctx_.extended_primes(level);
    const auto ext_tables = ctx_.tables_for(ext);
    const u64 two_n = 2 * static_cast<u64>(ctx_.n());
    const u64 order = ctx_.n() / 2;

    // Shared prefix: one decompose + ModUp of the mask polynomial (the
    // automorphism commutes with BConv because base conversion is
    // coefficient-wise).
    const std::vector<RnsPoly> slices = mod_up_slices(ct.a, level);
    RnsPoly b_coeff = ct.b;
    b_coeff.to_coeff(ctx_.tables_for(b_coeff));

    std::vector<Ciphertext> out;
    out.reserve(amounts.size());
    for (std::size_t k = 0; k < amounts.size(); ++k) {
        const int r = amounts[k];
        if (r == 0) {
            out.push_back(ct);
            continue;
        }
        const u64 amount =
            ((static_cast<i64>(r) % static_cast<i64>(order)) + order) %
            order;
        const u64 exp = pow_mod(5, amount, two_n);
        BTS_CHECK(keys[k] != nullptr, "missing rotation key " << r);
        const EvalKey& key = *keys[k];
        BTS_CHECK(key.galois_exp == exp, "rotation key mismatch");
        BTS_CHECK(ctx_.num_slices(level) <=
                      static_cast<int>(key.slices.size()),
                  "rotation key has too few slices");

        RnsPoly acc_b(ctx_.n(), ext, Domain::kNtt);
        RnsPoly acc_a(ctx_.n(), ext, Domain::kNtt);
        for (std::size_t j = 0; j < slices.size(); ++j) {
            RnsPoly f = slices[j].automorphism(exp);
            f.to_ntt_lazy(ext_tables);
            accumulate_evk_product(acc_b, acc_a, f, key.slices[j].first,
                                   key.slices[j].second, level);
        }
        mod_down_inplace(acc_b, level);
        mod_down_inplace(acc_a, level);

        RnsPoly b_rot = b_coeff.automorphism(exp);
        b_rot.to_ntt_lazy(ctx_.tables_for(b_rot));
        acc_b.add_inplace(b_rot, RnsPoly::Residues::kLazy2q);

        Ciphertext res;
        res.b = std::move(acc_b);
        res.a = std::move(acc_a);
        res.scale = ct.scale;
        res.level = ct.level;
        res.slots = ct.slots;
        out.push_back(std::move(res));
    }
    return out;
}

Ciphertext
Evaluator::mult(const Ciphertext& a, const Ciphertext& b,
                const EvalKey& mult_key) const
{
    Ciphertext x = a, y = b;
    align_levels(x, y);
    BTS_CHECK(x.slots == y.slots, "slot count mismatch");

    // Tensor product (Eq. 3).
    RnsPoly d0 = x.b;
    d0.mul_inplace(y.b);
    RnsPoly d1 = x.a;
    d1.mul_inplace(y.b);
    RnsPoly d1b = x.b;
    d1b.mul_inplace(y.a);
    d1.add_inplace(d1b);
    RnsPoly d2 = x.a;
    d2.mul_inplace(y.a);

    // Key-switching (Eq. 4).
    auto [kb, ka] = key_switch(d2, mult_key, x.level);

    Ciphertext out;
    d0.add_inplace(kb);
    d1.add_inplace(ka);
    out.b = std::move(d0);
    out.a = std::move(d1);
    out.scale = x.scale * y.scale;
    out.level = x.level;
    out.slots = x.slots;
    return out;
}

Ciphertext
Evaluator::square(const Ciphertext& a, const EvalKey& mult_key) const
{
    return mult(a, a, mult_key);
}

Ciphertext
Evaluator::mult_rescale(const Ciphertext& a, const Ciphertext& b,
                        const EvalKey& mult_key) const
{
    Ciphertext out = mult(a, b, mult_key);
    rescale_inplace(out);
    return out;
}

Ciphertext
Evaluator::mult_plain_rescale(const Ciphertext& ct,
                              const Plaintext& pt) const
{
    Ciphertext out = mult_plain(ct, pt);
    rescale_inplace(out);
    return out;
}

Ciphertext
Evaluator::mult_plain_add_const(const Ciphertext& ct, const Plaintext& pt,
                                Complex c) const
{
    Ciphertext out = mult_plain(ct, pt);
    add_const_inplace(out, c);
    return out;
}

void
Evaluator::rescale_poly(RnsPoly& poly) const
{
    const std::size_t count = poly.num_primes();
    BTS_CHECK(count >= 2, "cannot rescale a level-0 polynomial");
    const std::size_t n = poly.degree();
    const int top = static_cast<int>(count) - 1;
    const u64 q_last = poly.prime(count - 1);
    // The cached constants are indexed by position in the q chain; the
    // whole chain must be a prefix of it, not just the top prime (a
    // re-based polynomial would otherwise pick up wrong constants).
    for (std::size_t i = 0; i < count; ++i) {
        BTS_ASSERT(poly.prime(i) == ctx_.q_primes()[i],
                   "rescale expects a q-chain-prefix polynomial");
    }

    // Bring the top component to the coefficient domain in place — the
    // row is discarded by pop_component below, so no copy is needed
    // (a single-limb transform stage-parallelizes across lanes). The
    // cached per-level table chain keeps this path allocation-free.
    const auto& q_tables = ctx_.level_tables(top);
    u64* const last_base = poly.component(count - 1).data();
    ntt_inverse_batch(q_tables.data() + top, last_base, 1, n);

    // HRescale over (limb x coefficient block): the per-limb axis alone
    // collapses at low level (2 of 8 lanes busy at level 2 — exactly
    // the parallelism cliff of PAPER.md Section 3), so every phase
    // below tiles the coefficient axis too.
    const u64 half = q_last >> 1;
    Workspace lifted((count - 1) * n);
    u64* const lifted_base = lifted.data();
    parallel_for_2d(
        count - 1, n,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            // Centered lift of the top residue into Z_qi.
            const u64 qi = poly.prime(i);
            const u64 q_last_mod_qi =
                ctx_.rescale_q_mod(top, static_cast<int>(i));
            u64* dst = lifted_base + i * n;
            for (std::size_t c = c0; c < c1; ++c) {
                u64 v = last_base[c] % qi;
                if (last_base[c] > half) v = sub_mod(v, q_last_mod_qi, qi);
                dst[c] = v;
            }
        });

    // Lazy forward transform: the fused pass below reduces anyway.
    ntt_forward_batch_lazy(q_tables.data(), lifted_base, count - 1, n);

    // Fused subtract-multiply with the cached Shoup inverse constants.
    // The lifted residues are lazy in [0, 2q); dst - src + 2q stays in
    // (0, 3q) and the full Shoup product canonicalizes it, so the lazy
    // NTT's skipped correction pass is absorbed here for free.
    parallel_for_2d(
        count - 1, n,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const u64 qi = poly.prime(i);
            const u64 two_qi = 2 * qi;
            const ShoupMul& inv = ctx_.rescale_inv(top, static_cast<int>(i));
            const u64* src = lifted_base + i * n;
            u64* dst = poly.component(i).data();
            for (std::size_t c = c0; c < c1; ++c) {
                dst[c] = inv.mul(sub_lazy_2q(dst[c], src[c], two_qi), qi);
            }
        });
    poly.pop_component();
}

void
Evaluator::rescale_inplace(Ciphertext& ct) const
{
    BTS_TRACE_SPAN_VAR(trace_span, kEvaluator, "rescale");
    trace_span.set_level(ct.level);
    BTS_CHECK(ct.level >= 1, "no level left to rescale");
    const u64 q_last = ct.b.prime(ct.level);
    rescale_poly(ct.b);
    rescale_poly(ct.a);
    ct.level -= 1;
    ct.scale /= static_cast<double>(q_last);
}

Ciphertext
Evaluator::apply_galois(const Ciphertext& ct, u64 galois_exp,
                        const EvalKey& key) const
{
    BTS_CHECK(key.galois_exp == galois_exp,
              "evaluation key does not match the automorphism");
    const auto tables = ctx_.tables_for(ct.b);

    RnsPoly b = ct.b;
    b.to_coeff(tables);
    b = b.automorphism(galois_exp);
    b.to_ntt(tables);

    RnsPoly a = ct.a;
    a.to_coeff(tables);
    a = a.automorphism(galois_exp);
    // Lazy is safe here: key_switch only reads a through the inverse
    // NTT (lazy-tolerant) and the Barrett inner product.
    a.to_ntt_lazy(tables);

    auto [kb, ka] = key_switch(a, key, ct.level);
    b.add_inplace(kb);

    Ciphertext out;
    out.b = std::move(b);
    out.a = std::move(ka);
    out.scale = ct.scale;
    out.level = ct.level;
    out.slots = ct.slots;
    return out;
}

Ciphertext
Evaluator::switch_key(const Ciphertext& ct, const EvalKey& rekey_key) const
{
    // ct = (b, a) with b + a*s_from = m; key-switch the mask so the
    // result satisfies b' + a'*s_to = m.
    auto [kb, ka] = key_switch(ct.a, rekey_key, ct.level);
    Ciphertext out;
    kb.add_inplace(ct.b);
    out.b = std::move(kb);
    out.a = std::move(ka);
    out.scale = ct.scale;
    out.level = ct.level;
    out.slots = ct.slots;
    return out;
}

Ciphertext
Evaluator::rotate(const Ciphertext& ct, int r, const EvalKey& rot_key) const
{
    if (r == 0) return ct;
    const u64 two_n = 2 * static_cast<u64>(ctx_.n());
    const u64 order = ctx_.n() / 2;
    const u64 amount =
        ((static_cast<i64>(r) % static_cast<i64>(order)) + order) % order;
    const u64 exp = pow_mod(5, amount, two_n);
    return apply_galois(ct, exp, rot_key);
}

Ciphertext
Evaluator::conjugate(const Ciphertext& ct, const EvalKey& conj_key) const
{
    return apply_galois(ct, 2 * static_cast<u64>(ctx_.n()) - 1, conj_key);
}

Ciphertext
Evaluator::mult_plain(const Ciphertext& ct, const Plaintext& pt) const
{
    check_plain_chain(ct, pt);
    RnsPoly m = pt.poly;
    m.truncate(ct.level + 1);

    Ciphertext out = ct;
    out.b.mul_inplace(m);
    out.a.mul_inplace(m);
    out.scale = ct.scale * pt.scale;
    return out;
}

Ciphertext
Evaluator::add_plain(const Ciphertext& ct, const Plaintext& pt) const
{
    check_scale_match(ct.scale, pt.scale);
    check_plain_chain(ct, pt);
    RnsPoly m = pt.poly;
    m.truncate(ct.level + 1);
    Ciphertext out = ct;
    out.b.add_inplace(m);
    return out;
}

Ciphertext
Evaluator::sub_plain(const Ciphertext& ct, const Plaintext& pt) const
{
    check_scale_match(ct.scale, pt.scale);
    check_plain_chain(ct, pt);
    RnsPoly m = pt.poly;
    m.truncate(ct.level + 1);
    Ciphertext out = ct;
    out.b.sub_inplace(m);
    return out;
}

Ciphertext
Evaluator::mult_const(const Ciphertext& ct, double c,
                      double const_scale) const
{
    const double scaled = c * const_scale;
    BTS_CHECK(std::abs(scaled) < 0x1.0p62, "constant overflows 62 bits");
    const i64 iv = static_cast<i64>(std::llround(scaled));

    Ciphertext out = ct;
    std::vector<u64> scalars(ct.level + 1);
    for (int i = 0; i <= ct.level; ++i) {
        scalars[i] = signed_to_mod(iv, ct.b.prime(i));
    }
    out.b.mul_scalar_inplace(scalars);
    out.a.mul_scalar_inplace(scalars);
    out.scale = ct.scale * const_scale;
    return out;
}

Ciphertext
Evaluator::mult_const_complex(const Ciphertext& ct, Complex c,
                              double const_scale) const
{
    if (c.imag() == 0.0) return mult_const(ct, c.real(), const_scale);
    // ct*(x + iy) = x*ct + y*(i*ct); the i factor is the exact monomial
    // X^{N/2}, so only real CMults are needed.
    Ciphertext re = mult_const(ct, c.real(), const_scale);
    Ciphertext im = mult_const(mult_by_i(ct), c.imag(), const_scale);
    re.b.add_inplace(im.b);
    re.a.add_inplace(im.a);
    return re;
}

Ciphertext
Evaluator::mult_const_to_scale(const Ciphertext& ct, double c,
                               double target_scale_after_rescale) const
{
    BTS_CHECK(ct.level >= 1, "needs one level for the rescale");
    const double q_top = static_cast<double>(ct.b.prime(ct.level));
    const double const_scale = target_scale_after_rescale * q_top / ct.scale;
    Ciphertext out = mult_const(ct, c, const_scale);
    rescale_inplace(out);
    out.scale = target_scale_after_rescale; // kill double rounding drift
    return out;
}

const std::vector<ShoupMul>&
Evaluator::monomial_shoup(u64 prime, std::size_t power) const
{
    const auto key = std::make_pair(prime, power);
    // Entries are never erased and map references are stable, so the
    // returned reference outlives the lock safely.
    std::lock_guard<std::mutex> lock(monomial_mutex_);
    auto it = monomial_cache_.find(key);
    if (it == monomial_cache_.end()) {
        std::vector<u64> mono(ctx_.n(), 0);
        mono[power] = 1;
        ctx_.tables(prime).forward(mono.data());
        std::vector<ShoupMul> shoup(ctx_.n());
        for (std::size_t c = 0; c < ctx_.n(); ++c) {
            shoup[c] = ShoupMul(mono[c], prime);
        }
        it = monomial_cache_.emplace(key, std::move(shoup)).first;
    }
    return it->second;
}

Ciphertext
Evaluator::mult_by_i(const Ciphertext& ct) const
{
    // Hot in bootstrapping (twice per bootstrap, on full-width
    // ciphertexts): the monomial is a fixed operand, so use its cached
    // Shoup constants and tile over (poly x limb) x coefficient-block.
    Ciphertext out = ct;
    const std::size_t n = ctx_.n();
    const std::size_t power = n / 2;
    const std::size_t limbs = static_cast<std::size_t>(ct.level) + 1;
    std::vector<const ShoupMul*> mono(limbs);
    for (std::size_t i = 0; i < limbs; ++i) {
        mono[i] = monomial_shoup(ct.b.prime(i), power).data();
    }
    u64* const base_b = out.b.data();
    u64* const base_a = out.a.data();
    parallel_for_2d(
        2 * limbs, n,
        [&](std::size_t idx, std::size_t c0, std::size_t c1) {
            const std::size_t i = idx % limbs;
            const u64 q = ct.b.prime(i);
            const ShoupMul* m = mono[i];
            u64* dst = (idx < limbs ? base_b : base_a) + i * n;
            for (std::size_t c = c0; c < c1; ++c) {
                dst[c] = m[c].mul(dst[c], q);
            }
        });
    return out;
}

void
Evaluator::add_const_inplace(Ciphertext& ct, Complex c) const
{
    const double re = c.real() * ct.scale;
    const double im = c.imag() * ct.scale;
    BTS_CHECK(std::abs(re) < 0x1.0p62 && std::abs(im) < 0x1.0p62,
              "constant overflows 62 bits");
    const i64 ire = static_cast<i64>(std::llround(re));
    const i64 iim = static_cast<i64>(std::llround(im));

    if (iim == 0) {
        // A real constant polynomial is constant across NTT points.
        for (int i = 0; i <= ct.level; ++i) {
            const u64 q = ct.b.prime(i);
            const u64 v = signed_to_mod(ire, q);
            for (auto& x : ct.b.component(i)) x = add_mod(x, v, q);
        }
        return;
    }
    // Complex constant: re + im * X^{N/2}, built in coeff domain.
    RnsPoly delta(ctx_.n(), ct.b.primes(), Domain::kCoeff);
    for (int i = 0; i <= ct.level; ++i) {
        const u64 q = ct.b.prime(i);
        delta.component(i)[0] = signed_to_mod(ire, q);
        delta.component(i)[ctx_.n() / 2] = signed_to_mod(iim, q);
    }
    delta.to_ntt(ctx_.tables_for(delta));
    ct.b.add_inplace(delta);
}

Ciphertext
Evaluator::mod_raise(const Ciphertext& ct) const
{
    BTS_TRACE_SPAN_VAR(trace_span, kEvaluator, "modraise");
    trace_span.set_level(ct.level);
    BTS_CHECK(ct.level == 0, "mod_raise expects a level-0 ciphertext");
    const u64 q0 = ctx_.q_primes()[0];
    const u64 half = q0 >> 1;
    const auto primes = ctx_.level_primes(ctx_.max_level());

    auto raise_poly = [&](const RnsPoly& src_ntt) {
        RnsPoly src = src_ntt;
        src.to_coeff(ctx_.tables_for(src));
        RnsPoly out(ctx_.n(), primes, Domain::kCoeff, RnsPoly::Uninit{});
        const u64* base = src.component(0).data();
        parallel_for_2d(
            primes.size(), ctx_.n(),
            [&](std::size_t i, std::size_t c0, std::size_t c1) {
                const u64 qi = primes[i];
                const u64 q0_mod_qi = q0 % qi;
                u64* comp = out.component(i).data();
                for (std::size_t c = c0; c < c1; ++c) {
                    // Centered lift of the mod-q0 residue into Z_qi.
                    u64 v = base[c] % qi;
                    if (base[c] > half) v = sub_mod(v, q0_mod_qi, qi);
                    comp[c] = v;
                }
            });
        out.to_ntt(ctx_.tables_for(primes));
        return out;
    };

    Ciphertext out;
    out.b = raise_poly(ct.b);
    out.a = raise_poly(ct.a);
    out.scale = ct.scale;
    out.level = ctx_.max_level();
    out.slots = ct.slots;
    return out;
}

} // namespace bts
