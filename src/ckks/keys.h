/**
 * @file
 * Key material: secret key, public key and evaluation keys.
 *
 * Evaluation keys implement generalized (dnum) key-switching (Eq. 7 of
 * the paper): one R^2_{PQ} pair per modulus factor Q_j, so an evk is a
 * pair of N x (k + L + 1) matrices per slice. HMult uses the key for
 * s^2; each rotation amount r needs its own key for s(X^{5^r}); the
 * conjugation key targets s(X^{2N-1}).
 */
#pragma once

#include <map>
#include <vector>

#include "rns/rns_poly.h"

namespace bts {

/** The secret key s(X), a sparse ternary polynomial. */
struct SecretKey
{
    RnsPoly s_coeff; //!< coefficient domain over {q_0..q_L, p_0..p_{k-1}}
    RnsPoly s_ntt;   //!< the same key in the NTT domain
    int hamming_weight = 0;
};

/** Public encryption key (one RLWE sample of the secret under Q_L). */
struct PublicKey
{
    RnsPoly b; //!< -a*s + e (NTT domain, level L)
    RnsPoly a;
};

/** One generalized key-switching key (dnum slices over the evk base). */
struct EvalKey
{
    /** slice j holds (b_j, a_j) with b_j = -a_j*s + e_j + [P]*g_j*s_src. */
    std::vector<std::pair<RnsPoly, RnsPoly>> slices;

    /** Galois exponent this key switches from (0 for the HMult key). */
    u64 galois_exp = 0;

    bool empty() const { return slices.empty(); }
};

/** Rotation-key container indexed by rotation amount. */
using RotationKeys = std::map<int, EvalKey>;

} // namespace bts
