/**
 * @file
 * Chebyshev-basis polynomial approximation and its homomorphic
 * evaluation (Paterson-Stockmeyer baby-step/giant-step).
 *
 * Bootstrapping's EvalMod approximates modular reduction with a scaled
 * sine (Section 2.4 of the paper, following Cheon et al. / Han-Ki):
 * non-polynomial functions in CKKS are always evaluated as high-degree
 * polynomials, which is also why ReLU/comparison-heavy workloads
 * (ResNet-20, sorting) consume so many levels. This module supplies the
 * generic machinery: numeric Chebyshev interpolation, Chebyshev-basis
 * division by T_g, and a depth-optimal homomorphic evaluator.
 */
#pragma once

#include <functional>
#include <vector>

#include "ckks/evaluator.h"

namespace bts {

/** A polynomial in the Chebyshev basis on an interval [a, b]. */
class ChebyshevSeries
{
  public:
    ChebyshevSeries(std::vector<double> coeffs, double a, double b);

    /**
     * Interpolate @p f at the degree+1 Chebyshev nodes of [a, b]
     * (discrete cosine transform of the samples).
     */
    static ChebyshevSeries interpolate(const std::function<double(double)>& f,
                                       double a, double b, int degree);

    int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
    double lower() const { return a_; }
    double upper() const { return b_; }
    const std::vector<double>& coeffs() const { return coeffs_; }

    /** Numeric evaluation via the Clenshaw recurrence. */
    double evaluate(double x) const;

    /** Maximum |f - series| sampled on a grid (testing helper). */
    double max_error(const std::function<double(double)>& f,
                     int samples = 2048) const;

  private:
    std::vector<double> coeffs_; // c_0 .. c_d (c_0 already halved)
    double a_, b_;
};

/**
 * Chebyshev-basis division: split f = q * T_g + r with deg(r) < g,
 * using T_g * T_j = (T_{g+j} + T_{|g-j|}) / 2.
 */
void chebyshev_divmod(const std::vector<double>& f, int g,
                      std::vector<double>& quotient,
                      std::vector<double>& remainder);

/** Homomorphic evaluator for Chebyshev series. */
class ChebyshevEvaluator
{
  public:
    explicit ChebyshevEvaluator(const Evaluator& eval) : eval_(eval) {}

    /**
     * Evaluate @p series on @p ct homomorphically. Consumes
     * depth(series.degree()) + 1 levels (one for the affine
     * normalization onto [-1, 1]). The result is reported at the
     * context's canonical scale.
     */
    Ciphertext evaluate(const Ciphertext& ct, const ChebyshevSeries& series,
                        const EvalKey& mult_key) const;

    /** Multiplicative depth the evaluation consumes (excl. normalize). */
    static int depth(int degree);

    /** Baby-step count m for a given degree (power of two ~ sqrt(d)). */
    static int baby_step_count(int degree);

  private:
    /** Power basis: T_1 .. T_m plus giants T_{2m}, T_{4m}, ... */
    struct PowerBasis
    {
        std::vector<Ciphertext> t; // index j -> T_j (only needed j filled)
        std::vector<bool> have;
        int m;
    };

    PowerBasis build_power_basis(const Ciphertext& y, int degree,
                                 const EvalKey& mult_key) const;

    /** Level the evaluation of @p coeffs will land on (dry run). */
    int level_of(const std::vector<double>& coeffs,
                 const PowerBasis& basis) const;

    /** Evaluate @p coeffs, delivering EXACTLY @p target_scale. */
    Ciphertext eval_recurse(const std::vector<double>& coeffs,
                            const PowerBasis& basis,
                            const EvalKey& mult_key,
                            double target_scale) const;

    const Evaluator& eval_;
};

} // namespace bts
