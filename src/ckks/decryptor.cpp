#include "ckks/decryptor.h"

#include "common/check.h"

namespace bts {

Plaintext
Decryptor::decrypt(const Ciphertext& ct, const SecretKey& sk) const
{
    BTS_CHECK(ct.b.domain() == Domain::kNtt, "ciphertext must be in NTT");

    RnsPoly s = sk.s_ntt;
    s.truncate(ct.b.num_primes());

    RnsPoly m = ct.a;
    m.mul_inplace(s);
    m.add_inplace(ct.b);

    Plaintext pt;
    pt.poly = std::move(m);
    pt.scale = ct.scale;
    pt.level = ct.level;
    pt.slots = ct.slots;
    return pt;
}

} // namespace bts
