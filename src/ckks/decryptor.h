/**
 * @file
 * Decryption: m' = b + a*s mod Q_l (Section 2.2).
 */
#pragma once

#include "ckks/ciphertext.h"
#include "ckks/ckks_context.h"
#include "ckks/keys.h"

namespace bts {

/** Recovers (noisy) plaintexts from ciphertexts with the secret key. */
class Decryptor
{
  public:
    explicit Decryptor(const CkksContext& ctx) : ctx_(ctx) {}

    /** @return the plaintext underlying @p ct (message plus LWE noise). */
    Plaintext decrypt(const Ciphertext& ct, const SecretKey& sk) const;

  private:
    const CkksContext& ctx_;
};

} // namespace bts
