/**
 * @file
 * Factored homomorphic DFT: CoeffToSlot/SlotToCoeff as a product of
 * radix-2^r butterfly stages (the decomposition the paper's bootstrap
 * cost model assumes; cf. Cheon-Han-Hhan's faster homomorphic DFT and
 * the Lattigo/HEAAN bootstrapping pipelines).
 *
 * The special Fourier matrix A (A[t][k] = zeta^{5^t k}, zeta the
 * primitive 4n-th root of unity) factors exactly like the iterative
 * radix-2 DIT FFT that evaluates it:
 *
 *     A = S_k * S_{k-1} * ... * S_1 * P,      k = log2(n),
 *
 * where P is the bit-reversal permutation and butterfly stage S_i has
 * only the cyclic diagonals {0, +2^{i-1}, -2^{i-1}}. Merging r
 * consecutive stages (radix 2^r) yields ceil(k/r) factors of at most
 * 2^{r+1}-1 diagonals each — O(radix) diagonals per level spent,
 * versus the n diagonals of the single-shot dense transform.
 *
 * The permutation P is never evaluated homomorphically: CoeffToSlot
 * applies S_1^dagger ... S_k^dagger (= P * A^dagger, i.e. the dense
 * CtS output in bit-reversed slot order) and SlotToCoeff applies
 * S_k ... S_1 (= A * P, which consumes bit-reversed input). EvalMod
 * between them is slot-wise, so the two P's cancel and the bootstrap
 * pipeline is bit-for-bit the same message map as the dense oracle.
 *
 * Stage matrices are composed in sparse diagonal form; the dense n x n
 * matrix is never materialized.
 */
#pragma once

#include <memory>

#include "ckks/linear_transform.h"

namespace bts {

/** Which direction of the homomorphic DFT to compile. */
enum class DftDirection
{
    kCoeffToSlot, //!< (1/2n) A^dagger, bit-reversed output order
    kSlotToCoeff, //!< A, bit-reversed input order
};

/**
 * The dense special Fourier matrix A (testing/oracle helper — the
 * factored path never calls this).
 */
std::vector<std::vector<Complex>> special_fourier_matrix(std::size_t n);

/** out = M * v for a sparse diagonal matrix (clear-math test helper). */
std::vector<Complex> apply_diagonals(const DiagonalMap& m,
                                     const std::vector<Complex>& v);

/**
 * A compiled factored DFT: ceil(log2(n)/log2(radix)) sparse BSGS
 * stages, each consuming one level, applied in sequence.
 */
class FactoredDft
{
  public:
    /**
     * Compile for @p slots slots at radix @p radix (a power of two
     * >= 2), for inputs at level @p input_level. Stage s is compiled at
     * level input_level - s; construction fails if the level budget
     * cannot cover every stage.
     *
     * @param bsgs_ratio giant-step bias of each stage's BSGS. Sparse
     * stages default to 4 (vs 1 for dense transforms): baby rotations
     * are hoisted (they share one decompose+ModUp) while every giant
     * step pays a full key-switch, so with only O(radix) diagonals a
     * wider baby front trades cheap hoisted rotations for expensive
     * giant ones.
     */
    FactoredDft(const CkksContext& ctx, const CkksEncoder& encoder,
                std::size_t slots, DftDirection direction, int radix,
                int input_level, double bsgs_ratio = 4.0);

    /** Number of radix stages == levels consumed by apply(). */
    int num_stages() const { return static_cast<int>(stages_.size()); }

    /**
     * Stage count a (slots, radix) pair compiles to — ceil(log2(slots)
     * / log2(radix)) under the current chunking — for level-budget
     * planning before construction.
     */
    static int num_stages_for(std::size_t slots, int radix);

    DftDirection direction() const { return direction_; }

    /** Sum of nonzero diagonals (PMult count) across all stages. */
    int total_diagonals() const;

    /** Union of every stage's rotation amounts. */
    std::vector<int> required_rotations() const;

    /** Apply all stages in order; consumes num_stages() levels. */
    Ciphertext apply(const Evaluator& eval, const Ciphertext& ct,
                     const RotationKeys& rot_keys) const;

    const LinearTransform& stage(int s) const { return *stages_[s]; }

    /**
     * The merged radix-stage matrices in application order, as sparse
     * diagonal maps (exposed for tests; also how the constructor builds
     * its stages — no dense intermediate).
     */
    static std::vector<DiagonalMap> stage_diagonals(std::size_t n,
                                                    DftDirection direction,
                                                    int radix);

  private:
    std::size_t slots_;
    DftDirection direction_;
    std::vector<std::unique_ptr<LinearTransform>> stages_;
};

} // namespace bts
