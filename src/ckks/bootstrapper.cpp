#include "ckks/bootstrapper.h"

#include <cmath>
#include <set>

#include "common/bit_ops.h"
#include "common/check.h"

namespace bts {

namespace {

/** The special Fourier matrix A: A[t][k] = zeta^{5^t * k}, zeta the
 *  primitive 4n-th root of unity (see encoder.cpp for the derivation). */
std::vector<std::vector<Complex>>
special_fourier_matrix(std::size_t n)
{
    const u64 m = 4 * static_cast<u64>(n);
    std::vector<std::vector<Complex>> a(n, std::vector<Complex>(n));
    u64 rot = 1;
    for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t k = 0; k < n; ++k) {
            const u64 idx = (rot * k) % m;
            const double angle = 2.0 * M_PI * static_cast<double>(idx) /
                                 static_cast<double>(m);
            a[t][k] = Complex(std::cos(angle), std::sin(angle));
        }
        rot = (rot * 5) % m;
    }
    return a;
}

} // namespace

Bootstrapper::Bootstrapper(const CkksContext& ctx, const CkksEncoder& encoder,
                           const Evaluator& eval,
                           const BootstrapConfig& config)
    : ctx_(ctx),
      encoder_(encoder),
      eval_(eval),
      config_(config),
      gap_(ctx.n() / 2 / config.slots),
      sine_series_(ChebyshevSeries::interpolate(
          [](double u) { return std::sin(2.0 * M_PI * u) / (2.0 * M_PI); },
          -config.k_range, config.k_range, config.sine_degree))
{
    BTS_CHECK(is_power_of_two(config_.slots) &&
                  config_.slots <= ctx.n() / 2,
              "slots must be a power of two <= N/2");
    const std::size_t n = config_.slots;
    const auto a_matrix = special_fourier_matrix(n);

    // CoeffToSlot matrix: (1/(2n)) * A^dagger. The 1/2 folds the later
    // real/imag split. SubSum's gap amplification must NOT be divided
    // out here: EvalMod needs slots of the exact form (gap*m + q0*I)/q0
    // with integer I — the 1/gap is folded into the scale metadata after
    // EvalMod instead (stage_eval_mod).
    std::vector<std::vector<Complex>> cts_matrix(
        n, std::vector<Complex>(n));
    const double scale = 1.0 / (2.0 * static_cast<double>(n));
    for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t k = 0; k < n; ++k) {
            cts_matrix[t][k] = std::conj(a_matrix[k][t]) * scale;
        }
    }
    cts_ = std::make_unique<LinearTransform>(ctx_, encoder_, cts_matrix,
                                             ctx_.max_level());
}

std::vector<int>
Bootstrapper::required_rotations() const
{
    std::set<int> amounts;
    for (int r : cts_->required_rotations()) amounts.insert(r);
    // SlotToCoeff uses the same BSGS geometry on a dense matrix, so its
    // rotation set is a subset of CoeffToSlot's; include it explicitly
    // once compiled, and conservatively reuse the CtS set beforehand.
    if (stc_) {
        for (int r : stc_->required_rotations()) amounts.insert(r);
    }
    // SubSum amounts: slots, 2*slots, ..., N/4.
    for (std::size_t r = config_.slots; r < ctx_.n() / 2; r *= 2) {
        amounts.insert(static_cast<int>(r));
    }
    return {amounts.begin(), amounts.end()};
}

void
Bootstrapper::set_keys(const EvalKey* mult_key, const RotationKeys* rot_keys,
                       const EvalKey* conj_key)
{
    mult_key_ = mult_key;
    rot_keys_ = rot_keys;
    conj_key_ = conj_key;
}

Ciphertext
Bootstrapper::stage_raise_and_subsum(const Ciphertext& ct) const
{
    BTS_CHECK(ct.level == 0, "bootstrap input must be exhausted (level 0)");
    Ciphertext raised = eval_.mod_raise(ct);

    // SubSum: project onto the packing subring (message *= gap).
    for (std::size_t r = config_.slots; r < ctx_.n() / 2; r *= 2) {
        const auto it = rot_keys_->find(static_cast<int>(r));
        BTS_CHECK(it != rot_keys_->end(),
                  "missing SubSum rotation key " << r);
        // Rotation in the full-packing slot space; operate on a view
        // with full slot metadata.
        Ciphertext view = raised;
        view.slots = ctx_.n() / 2;
        Ciphertext rotated =
            eval_.rotate(view, static_cast<int>(r), it->second);
        raised.b.add_inplace(rotated.b);
        raised.a.add_inplace(rotated.a);
    }

    // Reinterpret at scale q0: slots now read (gap*m + q0*I)/q0.
    raised.scale = static_cast<double>(ctx_.q_primes()[0]);
    raised.slots = config_.slots;
    return raised;
}

std::pair<Ciphertext, Ciphertext>
Bootstrapper::stage_coeff_to_slot(const Ciphertext& raised) const
{
    Ciphertext t = cts_->apply(eval_, raised, *rot_keys_);
    Ciphertext tc = eval_.conjugate(t, *conj_key_);

    // u_re = t + conj(t), u_im = i*(conj(t) - t); the 1/2 was folded
    // into the CtS matrix and multiplication by i is the exact monomial.
    Ciphertext u_re = t;
    u_re.b.add_inplace(tc.b);
    u_re.a.add_inplace(tc.a);

    Ciphertext diff = tc;
    diff.b.sub_inplace(t.b);
    diff.a.sub_inplace(t.a);
    Ciphertext u_im = eval_.mult_by_i(diff);
    return {std::move(u_re), std::move(u_im)};
}

Ciphertext
Bootstrapper::stage_eval_mod(const Ciphertext& u) const
{
    const ChebyshevEvaluator cheby(eval_);
    Ciphertext v = cheby.evaluate(u, sine_series_, *mult_key_);
    // The sine output is gap*m_k/q0 in value; fold gap, Delta and q0
    // back into the scale metadata so the slots read message
    // coefficients at the canonical scale.
    const double q0 = static_cast<double>(ctx_.q_primes()[0]);
    v.scale = v.scale * static_cast<double>(gap_) * ctx_.delta() / q0;
    return v;
}

Ciphertext
Bootstrapper::stage_slot_to_coeff(const Ciphertext& v_re,
                                  const Ciphertext& v_im) const
{
    Ciphertext w = v_re;
    Ciphertext im = eval_.mult_by_i(v_im);
    eval_.drop_level_inplace(w, std::min(w.level, im.level));
    eval_.drop_level_inplace(im, w.level);
    w.b.add_inplace(im.b);
    w.a.add_inplace(im.a);

    if (!stc_) {
        BTS_CHECK(w.level >= 1, "no level left for SlotToCoeff");
        const std::size_t n = config_.slots;
        auto a_matrix = special_fourier_matrix(n);
        stc_ = std::make_unique<LinearTransform>(ctx_, encoder_, a_matrix,
                                                 w.level);
    }
    Ciphertext out = stc_->apply(eval_, w, *rot_keys_);
    return out;
}

Ciphertext
Bootstrapper::bootstrap(const Ciphertext& ct) const
{
    BTS_CHECK(mult_key_ && rot_keys_ && conj_key_,
              "bootstrapper keys not installed (call set_keys)");
    BTS_CHECK(ct.slots == config_.slots,
              "ciphertext packing does not match the bootstrapper");

    Ciphertext raised = stage_raise_and_subsum(ct);
    auto [u_re, u_im] = stage_coeff_to_slot(raised);
    Ciphertext v_re = stage_eval_mod(u_re);
    Ciphertext v_im = stage_eval_mod(u_im);
    Ciphertext out = stage_slot_to_coeff(v_re, v_im);

    if (config_.normalize_output_scale && out.level >= 1) {
        out = eval_.mult_const_to_scale(out, 1.0, ctx_.delta());
    }
    output_level_ = out.level;
    return out;
}

} // namespace bts
