#include "ckks/bootstrapper.h"

#include <cmath>
#include <set>

#include "common/bit_ops.h"
#include "common/check.h"
#include "runtime/telemetry/trace.h"

namespace bts {

Bootstrapper::Bootstrapper(const CkksContext& ctx, const CkksEncoder& encoder,
                           const Evaluator& eval,
                           const BootstrapConfig& config)
    : ctx_(ctx),
      encoder_(encoder),
      eval_(eval),
      config_(config),
      gap_(ctx.n() / 2 / config.slots),
      sine_series_(ChebyshevSeries::interpolate(
          [](double u) { return std::sin(2.0 * M_PI * u) / (2.0 * M_PI); },
          -config.k_range, config.k_range, config.sine_degree))
{
    BTS_CHECK(is_power_of_two(config_.slots) &&
                  config_.slots <= ctx.n() / 2,
              "slots must be a power of two <= N/2");
    BTS_CHECK((config_.cts_radix == 0) == (config_.stc_radix == 0),
              "cts_radix/stc_radix must be both zero (dense oracle) or "
              "both nonzero: the factored stages defer the DFT "
              "bit-reversal across EvalMod, so one side cannot be dense");
    for (int radix : {config_.cts_radix, config_.stc_radix}) {
        BTS_CHECK(radix == 0 ||
                      (radix >= 2 &&
                       is_power_of_two(static_cast<u64>(radix))),
                  "radix must be 0 (dense) or a power of two >= 2, got "
                      << radix);
    }
    const std::size_t n = config_.slots;

    // CoeffToSlot: (1/(2n)) * A^dagger. The 1/2 folds the later
    // real/imag split. SubSum's gap amplification must NOT be divided
    // out here: EvalMod needs slots of the exact form (gap*m + q0*I)/q0
    // with integer I — the 1/gap is folded into the scale metadata after
    // EvalMod instead (stage_eval_mod).
    if (config_.cts_radix == 0) {
        const auto a_matrix = special_fourier_matrix(n);
        std::vector<std::vector<Complex>> cts_matrix(
            n, std::vector<Complex>(n));
        const double scale = 1.0 / (2.0 * static_cast<double>(n));
        for (std::size_t t = 0; t < n; ++t) {
            for (std::size_t k = 0; k < n; ++k) {
                cts_matrix[t][k] = std::conj(a_matrix[k][t]) * scale;
            }
        }
        cts_dense_ = std::make_unique<LinearTransform>(
            ctx_, encoder_, cts_matrix, ctx_.max_level());
    } else {
        cts_factored_ = std::make_unique<FactoredDft>(
            ctx_, encoder_, n, DftDirection::kCoeffToSlot,
            config_.cts_radix, ctx_.max_level());
    }

    // SlotToCoeff compiles eagerly too, at the exact level the pipeline
    // reaches after CtS and EvalMod (the Chebyshev depth is known at
    // setup), so required_rotations() is exact from construction.
    const int eval_mod_levels =
        ChebyshevEvaluator::depth(config_.sine_degree) + 1;
    stc_input_level_ = ctx_.max_level() - cts_levels() - eval_mod_levels;
    const int stc_needs =
        config_.stc_radix == 0
            ? 1
            : FactoredDft::num_stages_for(n, config_.stc_radix);
    BTS_CHECK(stc_input_level_ >= stc_needs,
              "level budget exhausted before SlotToCoeff: max_level "
                  << ctx_.max_level() << " - CtS " << cts_levels()
                  << " - EvalMod " << eval_mod_levels << " leaves "
                  << stc_input_level_ << " < " << stc_needs);
    if (config_.stc_radix == 0) {
        stc_dense_ = std::make_unique<LinearTransform>(
            ctx_, encoder_, special_fourier_matrix(n), stc_input_level_);
    } else {
        stc_factored_ = std::make_unique<FactoredDft>(
            ctx_, encoder_, n, DftDirection::kSlotToCoeff,
            config_.stc_radix, stc_input_level_);
    }
}

int
Bootstrapper::cts_levels() const
{
    return cts_factored_ ? cts_factored_->num_stages() : 1;
}

int
Bootstrapper::stc_levels() const
{
    return stc_factored_ ? stc_factored_->num_stages() : 1;
}

std::vector<int>
Bootstrapper::required_rotations() const
{
    std::set<int> amounts;
    if (cts_dense_) {
        for (int r : cts_dense_->required_rotations()) amounts.insert(r);
        for (int r : stc_dense_->required_rotations()) amounts.insert(r);
    } else {
        for (int r : cts_factored_->required_rotations()) amounts.insert(r);
        for (int r : stc_factored_->required_rotations()) amounts.insert(r);
    }
    // SubSum amounts: slots, 2*slots, ..., N/4.
    for (std::size_t r = config_.slots; r < ctx_.n() / 2; r *= 2) {
        amounts.insert(static_cast<int>(r));
    }
    return {amounts.begin(), amounts.end()};
}

void
Bootstrapper::set_keys(const EvalKey* mult_key, const RotationKeys* rot_keys,
                       const EvalKey* conj_key)
{
    mult_key_ = mult_key;
    rot_keys_ = rot_keys;
    conj_key_ = conj_key;
}

Ciphertext
Bootstrapper::stage_raise_and_subsum(const Ciphertext& ct) const
{
    BTS_TRACE_SPAN(kBootstrap, "bootstrap.subsum");
    BTS_CHECK(ct.level == 0, "bootstrap input must be exhausted (level 0)");
    Ciphertext raised = eval_.mod_raise(ct);

    // SubSum: project onto the packing subring (message *= gap).
    for (std::size_t r = config_.slots; r < ctx_.n() / 2; r *= 2) {
        const auto it = rot_keys_->find(static_cast<int>(r));
        BTS_CHECK(it != rot_keys_->end(),
                  "missing SubSum rotation key " << r);
        // Rotation in the full-packing slot space; operate on a view
        // with full slot metadata.
        Ciphertext view = raised;
        view.slots = ctx_.n() / 2;
        Ciphertext rotated =
            eval_.rotate(view, static_cast<int>(r), it->second);
        raised.b.add_inplace(rotated.b);
        raised.a.add_inplace(rotated.a);
    }

    // Reinterpret at scale q0: slots now read (gap*m + q0*I)/q0.
    raised.scale = static_cast<double>(ctx_.q_primes()[0]);
    raised.slots = config_.slots;
    return raised;
}

std::pair<Ciphertext, Ciphertext>
Bootstrapper::stage_coeff_to_slot(const Ciphertext& raised) const
{
    BTS_TRACE_SPAN(kBootstrap, "bootstrap.cts");
    Ciphertext t = cts_dense_ ? cts_dense_->apply(eval_, raised, *rot_keys_)
                              : cts_factored_->apply(eval_, raised,
                                                     *rot_keys_);
    Ciphertext tc = eval_.conjugate(t, *conj_key_);

    // u_re = t + conj(t), u_im = i*(conj(t) - t); the 1/2 was folded
    // into the CtS matrix and multiplication by i is the exact monomial.
    // (Under the factored path the slots are in bit-reversed order
    // here; the split and EvalMod are slot-wise, so StC undoes it.)
    Ciphertext u_re = t;
    u_re.b.add_inplace(tc.b);
    u_re.a.add_inplace(tc.a);

    Ciphertext diff = tc;
    diff.b.sub_inplace(t.b);
    diff.a.sub_inplace(t.a);
    Ciphertext u_im = eval_.mult_by_i(diff);
    return {std::move(u_re), std::move(u_im)};
}

Ciphertext
Bootstrapper::stage_eval_mod(const Ciphertext& u) const
{
    BTS_TRACE_SPAN(kBootstrap, "bootstrap.evalmod");
    const ChebyshevEvaluator cheby(eval_);
    Ciphertext v = cheby.evaluate(u, sine_series_, *mult_key_);
    // The sine output is gap*m_k/q0 in value; fold gap, Delta and q0
    // back into the scale metadata so the slots read message
    // coefficients at the canonical scale.
    const double q0 = static_cast<double>(ctx_.q_primes()[0]);
    v.scale = v.scale * static_cast<double>(gap_) * ctx_.delta() / q0;
    return v;
}

Ciphertext
Bootstrapper::stage_slot_to_coeff(const Ciphertext& v_re,
                                  const Ciphertext& v_im) const
{
    BTS_TRACE_SPAN(kBootstrap, "bootstrap.stc");
    Ciphertext w = v_re;
    Ciphertext im = eval_.mult_by_i(v_im);
    eval_.drop_level_inplace(w, std::min(w.level, im.level));
    eval_.drop_level_inplace(im, w.level);
    w.b.add_inplace(im.b);
    w.a.add_inplace(im.a);

    return stc_dense_ ? stc_dense_->apply(eval_, w, *rot_keys_)
                      : stc_factored_->apply(eval_, w, *rot_keys_);
}

Ciphertext
Bootstrapper::bootstrap(const Ciphertext& ct) const
{
    BTS_TRACE_SPAN(kBootstrap, "bootstrap");
    BTS_CHECK(mult_key_ && rot_keys_ && conj_key_,
              "bootstrapper keys not installed (call set_keys)");
    BTS_CHECK(ct.slots == config_.slots,
              "ciphertext packing does not match the bootstrapper");

    Ciphertext raised = stage_raise_and_subsum(ct);
    auto [u_re, u_im] = stage_coeff_to_slot(raised);
    Ciphertext v_re = stage_eval_mod(u_re);
    Ciphertext v_im = stage_eval_mod(u_im);
    Ciphertext out = stage_slot_to_coeff(v_re, v_im);

    if (config_.normalize_output_scale && out.level >= 1) {
        out = eval_.mult_const_to_scale(out, 1.0, ctx_.delta());
    }
    output_level_ = out.level;
    return out;
}

} // namespace bts
