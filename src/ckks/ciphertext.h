/**
 * @file
 * Plaintext and ciphertext value types.
 *
 * A ciphertext is a pair (b, a) of level-l polynomials (two N x (l+1)
 * residue matrices, Section 2.2) satisfying b = -a*s + m + e. Both the
 * current multiplicative level and the scaling factor travel with the
 * ciphertext; `slots` records the (possibly sparse) packing width.
 */
#pragma once

#include "rns/rns_poly.h"

namespace bts {

/** An encoded (unencrypted) message polynomial. */
struct Plaintext
{
    RnsPoly poly;       //!< kept in the NTT domain at rest
    double scale = 1.0; //!< scaling factor Delta applied at encode time
    int level = 0;      //!< number of usable rescales remaining
    std::size_t slots = 0;

    int num_primes() const { return static_cast<int>(poly.num_primes()); }
};

/** An encryption of a Plaintext. */
struct Ciphertext
{
    RnsPoly b; //!< the "body" component (holds the message)
    RnsPoly a; //!< the "mask" component
    double scale = 1.0;
    int level = 0;
    std::size_t slots = 0;

    int num_primes() const { return static_cast<int>(b.num_primes()); }
};

} // namespace bts
