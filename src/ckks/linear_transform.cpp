#include "ckks/linear_transform.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/bit_ops.h"
#include "common/check.h"
#include "math/mod_arith.h"

namespace bts {

namespace {

/** Extract the cyclic diagonals of a dense square matrix (the
 *  delegated-to constructor drops the near-zero ones). */
DiagonalMap
extract_diagonals(const std::vector<std::vector<Complex>>& matrix)
{
    const std::size_t n = matrix.size();
    for (const auto& row : matrix) {
        BTS_CHECK(row.size() == n, "matrix must be square");
    }
    DiagonalMap diagonals;
    for (std::size_t d = 0; d < n; ++d) {
        std::vector<Complex> diag(n);
        for (std::size_t j = 0; j < n; ++j) {
            diag[j] = matrix[j][(j + d) % n];
        }
        diagonals.emplace(static_cast<int>(d), std::move(diag));
    }
    return diagonals;
}

} // namespace

LinearTransform::LinearTransform(
    const CkksContext& ctx, const CkksEncoder& encoder,
    const std::vector<std::vector<Complex>>& matrix, int level,
    double bsgs_ratio)
    : LinearTransform(ctx, encoder, matrix.size(),
                      extract_diagonals(matrix), level, bsgs_ratio)
{}

LinearTransform::LinearTransform(const CkksContext& ctx,
                                 const CkksEncoder& encoder, std::size_t n,
                                 const DiagonalMap& diagonals, int level,
                                 double bsgs_ratio)
    : ctx_(ctx), encoder_(encoder), n_(n), level_(level)
{
    BTS_CHECK(is_power_of_two(n_), "matrix dimension must be a power of two");
    BTS_CHECK(level >= 1, "transform needs one level headroom");

    std::vector<int> shifts;
    std::vector<const std::vector<Complex>*> diags;
    for (const auto& [d, values] : diagonals) {
        BTS_CHECK(d >= 0 && d < static_cast<int>(n_),
                  "diagonal shift out of range");
        BTS_CHECK(values.size() == n_, "diagonal length must equal n");
        bool nonzero = false;
        for (const Complex& v : values) {
            if (std::abs(v) > 1e-14) {
                nonzero = true;
                break;
            }
        }
        if (!nonzero) continue;
        shifts.push_back(d);
        diags.push_back(&values);
    }
    BTS_CHECK(!shifts.empty(), "matrix is identically zero");

    // Giant-step width: ~stride * sqrt(#diagonals * ratio), a power of
    // two. `stride` is the gcd of the shifts — radix DFT stages have
    // shifts that are all multiples of the butterfly span, and a
    // stride-blind sqrt(#diags) width would leave every baby step empty
    // while each diagonal occupies its own giant step.
    u64 stride = 0;
    for (int d : shifts) {
        if (d != 0) stride = gcd_u64(stride, static_cast<u64>(d));
    }
    if (stride == 0) stride = 1;
    const double target =
        std::sqrt(static_cast<double>(diags.size()) * bsgs_ratio);
    g_ = static_cast<int>(stride);
    while (g_ * 2 <= static_cast<double>(stride) * target &&
           g_ * 2 < static_cast<int>(n_)) {
        g_ *= 2;
    }

    // Diagonal plaintexts are encoded once, at the level's top prime, so
    // the final rescale of apply() restores the input scale exactly.
    const double pt_scale = static_cast<double>(ctx_.q_primes()[level_]);

    std::set<int> rotations;
    for (std::size_t idx = 0; idx < shifts.size(); ++idx) {
        Diag entry;
        entry.shift = shifts[idx];
        entry.baby = shifts[idx] % g_;
        entry.giant = shifts[idx] / g_;
        // Pre-rotate by -g*i so the giant-step rotation distributes over
        // the inner sum.
        const int gi = entry.giant * g_;
        std::vector<Complex> rotated(n_);
        for (std::size_t j = 0; j < n_; ++j) {
            rotated[j] = (*diags[idx])[(j + n_ - gi % n_) % n_];
        }
        entry.plaintext = encoder_.encode(rotated, pt_scale, level_);
        if (entry.baby != 0) rotations.insert(entry.baby);
        if (gi != 0) rotations.insert(gi % static_cast<int>(n_));
        diag_values_.push_back(std::move(entry));
    }
    required_rotations_.assign(rotations.begin(), rotations.end());
}

Ciphertext
LinearTransform::apply(const Evaluator& eval, const Ciphertext& ct,
                       const RotationKeys& rot_keys) const
{
    BTS_CHECK(ct.slots == n_, "slot count does not match the transform");
    Ciphertext input = ct;
    BTS_CHECK(input.level >= level_,
              "ciphertext level below the transform's compiled level");
    if (input.level > level_) eval.drop_level_inplace(input, level_);

    // Baby-step rotations of the input, hoisted: all amounts share a
    // single decompose+ModUp of the input's mask polynomial.
    std::vector<int> baby_amounts;
    for (const auto& d : diag_values_) {
        if (d.baby != 0 &&
            std::find(baby_amounts.begin(), baby_amounts.end(), d.baby) ==
                baby_amounts.end()) {
            baby_amounts.push_back(d.baby);
        }
    }
    std::vector<Ciphertext> baby(g_);
    baby[0] = input;
    {
        auto rotated = eval.rotate_hoisted(input, baby_amounts, rot_keys);
        for (std::size_t i = 0; i < baby_amounts.size(); ++i) {
            baby[baby_amounts[i]] = std::move(rotated[i]);
        }
    }

    // Giant steps: inner sums of plaintext products, then one rotation.
    const int max_giant = diag_values_.back().giant;
    Ciphertext acc;
    bool acc_set = false;
    for (int i = 0; i <= max_giant; ++i) {
        Ciphertext inner;
        bool inner_set = false;
        for (const auto& d : diag_values_) {
            if (d.giant != i) continue;
            Ciphertext term = eval.mult_plain(baby[d.baby], d.plaintext);
            if (!inner_set) {
                inner = std::move(term);
                inner_set = true;
            } else {
                inner.b.add_inplace(term.b);
                inner.a.add_inplace(term.a);
            }
        }
        if (!inner_set) continue;
        const int gi = (i * g_) % static_cast<int>(n_);
        if (gi != 0) {
            const auto it = rot_keys.find(gi);
            BTS_CHECK(it != rot_keys.end(), "missing rotation key " << gi);
            inner = eval.rotate(inner, gi, it->second);
        }
        if (!acc_set) {
            acc = std::move(inner);
            acc_set = true;
        } else {
            acc.b.add_inplace(inner.b);
            acc.a.add_inplace(inner.a);
        }
    }
    BTS_ASSERT(acc_set, "linear transform accumulated nothing");

    eval.rescale_inplace(acc);
    acc.scale = ct.scale; // exact: plaintexts were encoded at the top prime
    return acc;
}

std::vector<std::vector<Complex>>
scaled_identity_matrix(std::size_t n, Complex s)
{
    std::vector<std::vector<Complex>> m(n, std::vector<Complex>(n, 0));
    for (std::size_t i = 0; i < n; ++i) m[i][i] = s;
    return m;
}

} // namespace bts
