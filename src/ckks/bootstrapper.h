/**
 * @file
 * CKKS bootstrapping (Section 2.4 of the paper).
 *
 * Pipeline (Cheon et al. / Han-Ki, the algorithm family the paper's
 * L_boot = 19 instance uses):
 *
 *   1. ModRaise   — reinterpret the exhausted level-0 ciphertext modulo
 *                   Q_L; the message becomes m + q_0 * I.
 *   2. SubSum     — for sparsely packed ciphertexts, the partial trace
 *                   (log2(gap) rotations) projects onto the packing
 *                   subring, scaling the message by gap = N/(2*slots).
 *   3. CoeffToSlot— homomorphic linear transform (1/2n * A^dagger)
 *                   moving coefficients into slots; a conjugation splits
 *                   real and imaginary parts.
 *   4. EvalMod    — approximate modular reduction by q_0 via the scaled
 *                   sine sin(2*pi*u)/(2*pi), evaluated as a Chebyshev
 *                   series on [-K, K].
 *   5. SlotToCoeff— the inverse transform A.
 *
 * The heavy cost structure the paper accelerates — hundreds of HMult and
 * HRot ops, each streaming an evk — comes from steps 3-5. CtS and StC
 * run either as single-shot dense BSGS transforms (radix 0, the
 * reference oracle) or factored into radix-2^r butterfly stages
 * (dft_factor.h): O(radix) diagonals per stage instead of n, at the
 * price of one level per stage.
 */
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "ckks/chebyshev.h"
#include "ckks/dft_factor.h"
#include "ckks/linear_transform.h"

namespace bts {

/** Tunables for bootstrapping. */
struct BootstrapConfig
{
    std::size_t slots = 64;   //!< packing width of bootstrappable inputs
    /**
     * EvalMod interval [-K, K]. Must bound |u| at the EvalMod input:
     * SubSum sums gap = N/(2*slots) rotated copies of the ModRaise
     * integer part, so K scales ~linearly with gap (12 covers gap = 2
     * at hamming weight 32; gap = 4 needs ~24). sine_degree must grow
     * with K too (> e*pi*K for the Chebyshev series to converge).
     */
    double k_range = 12.0;
    int sine_degree = 119;    //!< Chebyshev degree for the scaled sine
    bool normalize_output_scale = true; //!< end at the canonical scale
    /**
     * CtS / StC decomposition radix: a power of two >= 2 factors the
     * transform into ceil(log2(slots)/log2(radix)) sparse stages (one
     * level each); 0 selects the dense single-shot oracle (one level,
     * n diagonals). Must be both zero or both nonzero: the factored
     * stages drop the DFT's bit-reversal, which only cancels when the
     * matching factored inverse runs on the other side of EvalMod.
     */
    int cts_radix = 0;
    int stc_radix = 0;
};

/** One-time-setup bootstrapper bound to a context and key set. */
class Bootstrapper
{
  public:
    Bootstrapper(const CkksContext& ctx, const CkksEncoder& encoder,
                 const Evaluator& eval, const BootstrapConfig& config);

    /**
     * All rotation amounts the caller must generate keys for. Both
     * transforms compile eagerly in the constructor, so this is exact
     * (and stable across bootstrap() calls) from construction on.
     */
    std::vector<int> required_rotations() const;

    /** Install the key material (borrowed; must outlive this object). */
    void set_keys(const EvalKey* mult_key, const RotationKeys* rot_keys,
                  const EvalKey* conj_key);

    /**
     * Refresh @p ct (level 0, canonical scale) to a high level.
     * @return a ciphertext of the same message with fresh levels.
     */
    Ciphertext bootstrap(const Ciphertext& ct) const;

    /** Levels available after bootstrapping (set after the first run). */
    int output_level() const { return output_level_; }

    const ChebyshevSeries& sine_series() const { return sine_series_; }
    const BootstrapConfig& config() const { return config_; }

    /** Levels CtS / StC consume (1 for dense, #stages for factored). */
    int cts_levels() const;
    int stc_levels() const;
    /** Ciphertext level when SlotToCoeff starts (fixed at setup). */
    int stc_input_level() const { return stc_input_level_; }

    // Individual stages, exposed for tests and diagnostics.
    Ciphertext stage_raise_and_subsum(const Ciphertext& ct) const;
    std::pair<Ciphertext, Ciphertext> stage_coeff_to_slot(
        const Ciphertext& raised) const;
    Ciphertext stage_eval_mod(const Ciphertext& u) const;
    Ciphertext stage_slot_to_coeff(const Ciphertext& v_re,
                                   const Ciphertext& v_im) const;

  private:
    const CkksContext& ctx_;
    const CkksEncoder& encoder_;
    const Evaluator& eval_;
    BootstrapConfig config_;

    std::size_t gap_;        // N/2 / slots
    ChebyshevSeries sine_series_;
    // Dense oracle (radix == 0) or factored stages — exactly one pair
    // is set, eagerly, in the constructor. (The previous lazy StC
    // compile mutated state inside const bootstrap() with no
    // synchronization — a data race for concurrent bootstraps — and
    // made required_rotations() under-report until first use.)
    std::unique_ptr<LinearTransform> cts_dense_;
    std::unique_ptr<LinearTransform> stc_dense_;
    std::unique_ptr<FactoredDft> cts_factored_;
    std::unique_ptr<FactoredDft> stc_factored_;
    int stc_input_level_ = -1;
    /** Atomic: the serving runtime bootstraps concurrently on shared
     *  Bootstrappers, and every writer stores the same value. */
    mutable std::atomic<int> output_level_{-1};

    const EvalKey* mult_key_ = nullptr;
    const RotationKeys* rot_keys_ = nullptr;
    const EvalKey* conj_key_ = nullptr;
};

} // namespace bts
