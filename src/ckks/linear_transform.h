/**
 * @file
 * Homomorphic linear transforms via the baby-step/giant-step (BSGS)
 * diagonal method.
 *
 * A dense n x n complex matrix M applied to the slot vector decomposes
 * into diagonals: out = sum_d diag_d (*) rot_d(in). BSGS groups d =
 * g*i + j so only O(sqrt(n)) rotations are needed per application —
 * this is the op structure of bootstrapping's CoeffToSlot/SlotToCoeff,
 * which dominates the HRot count the paper's Section 3.3 discusses
 * (the "more than 40 evks" workload).
 *
 * Transforms compile either from a dense matrix (diagonals are
 * extracted) or directly from a sparse diagonal map — the factored
 * homomorphic DFT (dft_factor.h) uses the latter so the dense n x n
 * matrix is never materialized.
 */
#pragma once

#include <map>
#include <vector>

#include "ckks/encoder.h"
#include "ckks/evaluator.h"
#include "ckks/keys.h"

namespace bts {

/**
 * A sparse complex matrix stored as its nonzero cyclic diagonals:
 * diagonal d (0 <= d < n) holds diag_d[j] = M[j][(j + d) mod n].
 */
using DiagonalMap = std::map<int, std::vector<Complex>>;

/** A precompiled homomorphic matrix-vector product. */
class LinearTransform
{
  public:
    /**
     * Compile @p matrix (n x n, row-major: out_j = sum_k M[j][k] in_k)
     * for application at ciphertext level @p level. Diagonal plaintexts
     * are encoded once at construction (the hardware analogue: BTS keeps
     * PMult operands resident as plaintexts).
     *
     * @param bsgs_ratio giant-step width g is ~sqrt(n * bsgs_ratio).
     */
    LinearTransform(const CkksContext& ctx, const CkksEncoder& encoder,
                    const std::vector<std::vector<Complex>>& matrix,
                    int level, double bsgs_ratio = 1.0);

    /**
     * Compile directly from nonzero diagonals of an n x n matrix —
     * the sparse path used by the factored DFT stages. Near-zero
     * diagonals are dropped. The giant-step width honours the common
     * stride of the shifts (a radix stage's shifts are all multiples of
     * its butterfly span; a stride-blind g would put every diagonal in
     * its own giant step).
     */
    LinearTransform(const CkksContext& ctx, const CkksEncoder& encoder,
                    std::size_t n, const DiagonalMap& diagonals, int level,
                    double bsgs_ratio = 1.0);

    /** Rotation amounts (all positive, < n) this transform needs. */
    const std::vector<int>& required_rotations() const
    {
        return required_rotations_;
    }

    /**
     * Apply to @p ct. Consumes exactly one level (the final rescale);
     * the output keeps the input's scale.
     */
    Ciphertext apply(const Evaluator& eval, const Ciphertext& ct,
                     const RotationKeys& rot_keys) const;

    std::size_t dimension() const { return n_; }
    int num_diagonals() const { return static_cast<int>(diag_values_.size()); }
    int baby_steps() const { return g_; }
    /** Input level the transform was compiled for (output is level-1). */
    int level() const { return level_; }

  private:
    const CkksContext& ctx_;
    const CkksEncoder& encoder_;
    std::size_t n_;
    int level_;
    int g_; // giant-step width (number of baby rotations)
    /** Nonzero diagonals: shift -> pre-rotated slot values. Stored as
     *  (shift, giant index, values rotated by -g*i). */
    struct Diag
    {
        int shift;           // d in [0, n)
        int baby;            // j = d mod g
        int giant;           // i = d / g
        Plaintext plaintext; // diagonal pre-rotated by -g*i, encoded
    };
    std::vector<Diag> diag_values_;
    std::vector<int> required_rotations_;
};

/** Build the n x n identity-scaled matrix (testing helper). */
std::vector<std::vector<Complex>> scaled_identity_matrix(std::size_t n,
                                                         Complex s);

} // namespace bts
