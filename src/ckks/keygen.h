/**
 * @file
 * Key generation for CKKS, including generalized (dnum) evaluation keys.
 */
#pragma once

#include <vector>

#include "ckks/ckks_context.h"
#include "ckks/keys.h"
#include "common/random.h"

namespace bts {

/** Generates secret, public and evaluation keys for one context. */
class KeyGenerator
{
  public:
    KeyGenerator(const CkksContext& ctx, u64 seed);

    /** Sample a fresh sparse-ternary secret key. */
    SecretKey gen_secret_key();

    /** Public encryption key for @p sk. */
    PublicKey gen_public_key(const SecretKey& sk);

    /** Relinearization key (switches s^2 -> s), used by HMult (Eq. 4). */
    EvalKey gen_mult_key(const SecretKey& sk);

    /**
     * Rotation key for rotation amount @p r (switches s(X^{5^r}) -> s),
     * used by HRot (Eq. 6). Negative r rotates right.
     */
    EvalKey gen_rotation_key(const SecretKey& sk, int r);

    /** Conjugation key (switches s(X^{2N-1}) -> s). */
    EvalKey gen_conjugation_key(const SecretKey& sk);

    /** Batch rotation keys for a set of amounts. */
    RotationKeys gen_rotation_keys(const SecretKey& sk,
                                   const std::vector<int>& amounts);

    /**
     * Re-keying key: switches ciphertexts under @p sk_from to be
     * decryptable under @p sk_to (proxy re-encryption; the same
     * key-switching engine as HMult/HRot with s_src = s_from).
     */
    EvalKey gen_rekey_key(const SecretKey& sk_from, const SecretKey& sk_to);

    /** Galois exponent 5^r mod 2N for a (possibly negative) rotation. */
    u64 galois_exp_for_rotation(int r) const;

    /** Galois exponent 2N-1 for conjugation. */
    u64 galois_exp_conjugation() const;

  private:
    /**
     * Generalized key-switching key from source secret @p s_src to the
     * secret @p sk: slice j carries -a_j*s + e_j + [P]*g_j*s_src with the
     * gadget g_j == 1 on slice-j primes and 0 elsewhere (Eq. 7).
     */
    EvalKey gen_switching_key(const SecretKey& sk, const RnsPoly& s_src_ntt,
                              u64 galois_exp);

    const CkksContext& ctx_;
    Sampler sampler_;
};

} // namespace bts
