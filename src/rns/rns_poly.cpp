#include "rns/rns_poly.h"

#include "common/bit_ops.h"
#include "common/check.h"
#include "common/parallel.h"
#include "math/mod_arith.h"

namespace bts {

RnsPoly::RnsPoly(std::size_t n, std::vector<u64> primes, Domain domain)
    : n_(n), domain_(domain), primes_(std::move(primes))
{
    BTS_CHECK(is_power_of_two(n), "polynomial degree must be a power of two");
    comps_.assign(primes_.size(), std::vector<u64>(n, 0));
}

void
RnsPoly::push_component(u64 prime, std::vector<u64> values)
{
    BTS_CHECK(values.size() == n_, "component size mismatch");
    primes_.push_back(prime);
    comps_.push_back(std::move(values));
}

void
RnsPoly::pop_component()
{
    BTS_CHECK(!primes_.empty(), "pop on empty polynomial");
    primes_.pop_back();
    comps_.pop_back();
}

void
RnsPoly::truncate(std::size_t count)
{
    BTS_CHECK(count <= primes_.size(), "truncate beyond size");
    primes_.resize(count);
    comps_.resize(count);
}

namespace {

void
check_compatible(const RnsPoly& a, const RnsPoly& b)
{
    BTS_CHECK(a.degree() == b.degree(), "degree mismatch");
    BTS_CHECK(a.domain() == b.domain(), "domain mismatch");
    BTS_CHECK(a.num_primes() <= b.num_primes(), "operand has fewer primes");
    for (std::size_t i = 0; i < a.num_primes(); ++i) {
        BTS_CHECK(a.prime(i) == b.prime(i), "prime chain mismatch");
    }
}

} // namespace

void
RnsPoly::add_inplace(const RnsPoly& other)
{
    check_compatible(*this, other);
    parallel_for(0, num_primes(), [&](std::size_t i) {
        const u64 q = primes_[i];
        const auto& src = other.component(i);
        auto& dst = comps_[i];
        for (std::size_t j = 0; j < n_; ++j) {
            dst[j] = add_mod(dst[j], src[j], q);
        }
    });
}

void
RnsPoly::sub_inplace(const RnsPoly& other)
{
    check_compatible(*this, other);
    parallel_for(0, num_primes(), [&](std::size_t i) {
        const u64 q = primes_[i];
        const auto& src = other.component(i);
        auto& dst = comps_[i];
        for (std::size_t j = 0; j < n_; ++j) {
            dst[j] = sub_mod(dst[j], src[j], q);
        }
    });
}

void
RnsPoly::negate_inplace()
{
    parallel_for(0, num_primes(), [&](std::size_t i) {
        const u64 q = primes_[i];
        for (auto& v : comps_[i]) {
            v = v == 0 ? 0 : q - v;
        }
    });
}

void
RnsPoly::mul_inplace(const RnsPoly& other)
{
    check_compatible(*this, other);
    BTS_CHECK(domain_ == Domain::kNtt,
              "element-wise polynomial product requires NTT domain");
    parallel_for(0, num_primes(), [&](std::size_t i) {
        const Barrett barrett(primes_[i]);
        const auto& src = other.component(i);
        auto& dst = comps_[i];
        for (std::size_t j = 0; j < n_; ++j) {
            dst[j] = barrett.mul(dst[j], src[j]);
        }
    });
}

void
RnsPoly::mul_scalar_inplace(const std::vector<u64>& scalars)
{
    BTS_CHECK(scalars.size() >= num_primes(), "scalar count mismatch");
    parallel_for(0, num_primes(), [&](std::size_t i) {
        const ShoupMul s(scalars[i] % primes_[i], primes_[i]);
        const u64 q = primes_[i];
        for (auto& v : comps_[i]) {
            v = s.mul(v, q);
        }
    });
}

void
RnsPoly::to_ntt(const std::vector<const NttTables*>& tables)
{
    BTS_CHECK(domain_ == Domain::kCoeff, "already in NTT domain");
    BTS_CHECK(tables.size() >= num_primes(), "NTT table count mismatch");
    parallel_for(0, num_primes(), [&](std::size_t i) {
        BTS_ASSERT(tables[i]->modulus() == primes_[i], "table prime mismatch");
        tables[i]->forward(comps_[i].data());
    });
    domain_ = Domain::kNtt;
}

void
RnsPoly::to_coeff(const std::vector<const NttTables*>& tables)
{
    BTS_CHECK(domain_ == Domain::kNtt, "already in coefficient domain");
    BTS_CHECK(tables.size() >= num_primes(), "NTT table count mismatch");
    parallel_for(0, num_primes(), [&](std::size_t i) {
        BTS_ASSERT(tables[i]->modulus() == primes_[i], "table prime mismatch");
        tables[i]->inverse(comps_[i].data());
    });
    domain_ = Domain::kCoeff;
}

RnsPoly
RnsPoly::automorphism(u64 galois_exp) const
{
    BTS_CHECK(domain_ == Domain::kCoeff,
              "automorphism implemented in coefficient domain");
    BTS_CHECK((galois_exp & 1) == 1, "Galois exponent must be odd");
    const u64 two_n = 2 * static_cast<u64>(n_);
    RnsPoly out(n_, primes_, Domain::kCoeff);
    parallel_for(0, num_primes(), [&](std::size_t i) {
        const u64 q = primes_[i];
        const auto& src = comps_[i];
        auto& dst = out.comps_[i];
        for (std::size_t j = 0; j < n_; ++j) {
            const u64 target = (static_cast<u128>(j) * galois_exp) % two_n;
            if (target < n_) {
                dst[target] = src[j];
            } else {
                const u64 v = src[j];
                dst[target - n_] = v == 0 ? 0 : q - v;
            }
        }
    });
    return out;
}

bool
RnsPoly::equals(const RnsPoly& other) const
{
    if (n_ != other.n_ || domain_ != other.domain_ ||
        primes_ != other.primes_) {
        return false;
    }
    return comps_ == other.comps_;
}

} // namespace bts
