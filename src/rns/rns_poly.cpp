#include "rns/rns_poly.h"

#include <algorithm>
#include <array>

#include "common/bit_ops.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/workspace.h"
#include "math/mod_arith.h"
#include "runtime/telemetry/trace.h"

namespace bts {

RnsPoly::RnsPoly(std::size_t n, std::vector<u64> primes, Domain domain)
    : RnsPoly(n, std::move(primes), domain, Uninit{})
{
    std::fill(data_.begin(), data_.end(), 0);
}

RnsPoly::RnsPoly(std::size_t n, std::vector<u64> primes, Domain domain,
                 Uninit)
    : n_(n),
      domain_(domain),
      primes_(std::move(primes)),
      data_(acquire_buffer(primes_.size() * n))
{
    BTS_CHECK(is_power_of_two(n), "polynomial degree must be a power of two");
    data_.resize(primes_.size() * n_); // no zero-fill (UninitAllocator)
}

RnsPoly::~RnsPoly()
{
    if (data_.capacity() != 0) release_buffer(std::move(data_));
}

RnsPoly::RnsPoly(const RnsPoly& other)
    : n_(other.n_),
      domain_(other.domain_),
      primes_(other.primes_),
      data_(acquire_buffer(other.data_.size()))
{
    data_.assign(other.data_.begin(), other.data_.end());
}

RnsPoly&
RnsPoly::operator=(const RnsPoly& other)
{
    if (this == &other) return *this;
    n_ = other.n_;
    domain_ = other.domain_;
    primes_ = other.primes_;
    if (data_.capacity() < other.data_.size()) {
        release_buffer(std::move(data_));
        data_ = acquire_buffer(other.data_.size());
    }
    data_.assign(other.data_.begin(), other.data_.end());
    return *this;
}

RnsPoly&
RnsPoly::operator=(RnsPoly&& other) noexcept
{
    if (this == &other) return *this;
    if (data_.capacity() != 0) release_buffer(std::move(data_));
    n_ = other.n_;
    domain_ = other.domain_;
    primes_ = std::move(other.primes_);
    data_ = std::move(other.data_);
    return *this;
}

void
RnsPoly::push_component(u64 prime, ConstSpan values)
{
    BTS_CHECK(values.size() == n_, "component size mismatch");
    // Growing may reallocate; inserting from our own rows would read
    // freed memory mid-copy. The old by-value API made self-aliasing
    // impossible — keep that safety as an explicit check.
    BTS_CHECK(values.data() + values.size() <= data_.data() ||
                  values.data() >= data_.data() + data_.size(),
              "push_component source must not alias this polynomial");
    primes_.push_back(prime);
    data_.insert(data_.end(), values.begin(), values.end());
}

void
RnsPoly::pop_component()
{
    BTS_CHECK(!primes_.empty(), "pop on empty polynomial");
    primes_.pop_back();
    data_.resize(primes_.size() * n_);
}

void
RnsPoly::truncate(std::size_t count)
{
    BTS_CHECK(count <= primes_.size(), "truncate beyond size");
    primes_.resize(count);
    data_.resize(count * n_);
}

namespace {

void
check_compatible(const RnsPoly& a, const RnsPoly& b)
{
    BTS_CHECK(a.degree() == b.degree(), "degree mismatch");
    BTS_CHECK(a.domain() == b.domain(), "domain mismatch");
    BTS_CHECK(a.num_primes() <= b.num_primes(), "operand has fewer primes");
    for (std::size_t i = 0; i < a.num_primes(); ++i) {
        BTS_CHECK(a.prime(i) == b.prime(i), "prime chain mismatch");
    }
}

/**
 * Per-limb reducer staging for the element-wise hot paths: inline
 * storage for every realistic chain length (evk chains top out well
 * below 64 limbs), heap fallback beyond it — constant setup stays off
 * both the tile bodies and, normally, the allocator.
 */
template <typename Reducer>
class ReducerArray
{
  public:
    explicit ReducerArray(std::size_t count)
    {
        if (count > inline_.size()) {
            heap_.resize(count);
            ptr_ = heap_.data();
        } else {
            ptr_ = inline_.data();
        }
    }

    Reducer& operator[](std::size_t i) { return ptr_[i]; }
    const Reducer& operator[](std::size_t i) const { return ptr_[i]; }

  private:
    std::array<Reducer, 64> inline_;
    std::vector<Reducer> heap_;
    Reducer* ptr_;
};

} // namespace

void
RnsPoly::add_inplace(const RnsPoly& other, Residues form)
{
    check_compatible(*this, other);
    const bool lazy = form == Residues::kLazy2q;
    parallel_for_2d(
        num_primes(), n_,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const u64 q = primes_[i];
            const u64* src = other.component(i).data();
            u64* dst = data_.data() + i * n_;
            if (lazy) {
                // Fold the [0, 2q) -> [0, q) correction of the source
                // into the addition instead of a separate sweep.
                for (std::size_t c = c0; c < c1; ++c) {
                    const u64 v = src[c] >= q ? src[c] - q : src[c];
                    dst[c] = add_mod(dst[c], v, q);
                }
            } else {
                for (std::size_t c = c0; c < c1; ++c) {
                    dst[c] = add_mod(dst[c], src[c], q);
                }
            }
        });
}

void
RnsPoly::add_inplace_lazy(const RnsPoly& other)
{
    check_compatible(*this, other);
    parallel_for_2d(
        num_primes(), n_,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const u64 q = primes_[i];
            (void)q; // only read by the debug assert
            const u64* src = other.component(i).data();
            u64* dst = data_.data() + i * n_;
            for (std::size_t c = c0; c < c1; ++c) {
                BTS_DEBUG_ASSERT(dst[c] < q && src[c] < q,
                                 "add_inplace_lazy: unreduced input");
                dst[c] = dst[c] + src[c]; // [0, 2q), q < 2^62: no wrap
            }
        });
}

void
RnsPoly::sub_inplace_lazy(const RnsPoly& other)
{
    check_compatible(*this, other);
    parallel_for_2d(
        num_primes(), n_,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const u64 q = primes_[i];
            const u64* src = other.component(i).data();
            u64* dst = data_.data() + i * n_;
            for (std::size_t c = c0; c < c1; ++c) {
                BTS_DEBUG_ASSERT(dst[c] < q && src[c] < q,
                                 "sub_inplace_lazy: unreduced input");
                dst[c] = dst[c] + q - src[c]; // (0, 2q)
            }
        });
}

void
RnsPoly::sub_inplace(const RnsPoly& other)
{
    check_compatible(*this, other);
    parallel_for_2d(
        num_primes(), n_,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const u64 q = primes_[i];
            const u64* src = other.component(i).data();
            u64* dst = data_.data() + i * n_;
            for (std::size_t c = c0; c < c1; ++c) {
                dst[c] = sub_mod(dst[c], src[c], q);
            }
        });
}

void
RnsPoly::negate_inplace()
{
    parallel_for_2d(
        num_primes(), n_,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const u64 q = primes_[i];
            u64* dst = data_.data() + i * n_;
            for (std::size_t c = c0; c < c1; ++c) {
                dst[c] = dst[c] == 0 ? 0 : q - dst[c];
            }
        });
}

void
RnsPoly::mul_inplace(const RnsPoly& other)
{
    check_compatible(*this, other);
    BTS_CHECK(domain_ == Domain::kNtt,
              "element-wise polynomial product requires NTT domain");
    // One Barrett reducer per limb, shared by all that limb's blocks
    // (the per-block constant setup must stay off the inner loop).
    const std::size_t count = num_primes();
    ReducerArray<Barrett> barrett(count);
    for (std::size_t i = 0; i < count; ++i) barrett[i] = Barrett(primes_[i]);
    parallel_for_2d(
        count, n_,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const Barrett& b = barrett[i];
            const u64* src = other.component(i).data();
            u64* dst = data_.data() + i * n_;
            for (std::size_t c = c0; c < c1; ++c) {
                dst[c] = b.mul(dst[c], src[c]);
            }
        });
}

void
RnsPoly::mul_scalar_inplace(const std::vector<u64>& scalars)
{
    BTS_CHECK(scalars.size() >= num_primes(), "scalar count mismatch");
    const std::size_t count = num_primes();
    ReducerArray<ShoupMul> shoup(count);
    for (std::size_t i = 0; i < count; ++i) {
        shoup[i] = ShoupMul(scalars[i], primes_[i]);
    }
    parallel_for_2d(
        count, n_,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const ShoupMul& s = shoup[i];
            const u64 q = primes_[i];
            u64* dst = data_.data() + i * n_;
            for (std::size_t c = c0; c < c1; ++c) {
                dst[c] = s.mul(dst[c], q);
            }
        });
}

void
RnsPoly::sub_mul_scalar_inplace(const RnsPoly& other,
                                const std::vector<u64>& scalars,
                                Residues form)
{
    check_compatible(*this, other);
    BTS_CHECK(scalars.size() >= num_primes(), "scalar count mismatch");
    const std::size_t count = num_primes();
    ReducerArray<ShoupMul> shoup(count);
    for (std::size_t i = 0; i < count; ++i) {
        shoup[i] = ShoupMul(scalars[i], primes_[i]);
    }
    const bool lazy = form == Residues::kLazy2q;
    parallel_for_2d(
        count, n_,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const ShoupMul& s = shoup[i];
            const u64 q = primes_[i];
            const u64 two_q = 2 * q;
            const u64* src = other.component(i).data();
            u64* dst = data_.data() + i * n_;
            if (lazy) {
                // dst - src + 2q is in (0, 3q) for canonical dst and a
                // [0, 2q) source; the full Shoup product is exact for
                // any 64-bit input, so one fused op subtracts,
                // canonicalizes, and scales.
                for (std::size_t c = c0; c < c1; ++c) {
                    dst[c] = s.mul(sub_lazy_2q(dst[c], src[c], two_q), q);
                }
            } else {
                for (std::size_t c = c0; c < c1; ++c) {
                    dst[c] = s.mul(sub_mod(dst[c], src[c], q), q);
                }
            }
        });
}

void
RnsPoly::to_ntt(const std::vector<const NttTables*>& tables)
{
    BTS_TRACE_SPAN_VAR(trace_span, kKernel, "ntt.fwd");
    trace_span.set_arg(static_cast<i64>(num_primes()));
    BTS_CHECK(domain_ == Domain::kCoeff, "already in NTT domain");
    BTS_CHECK(tables.size() >= num_primes(), "NTT table count mismatch");
    for (std::size_t i = 0; i < num_primes(); ++i) {
        BTS_ASSERT(tables[i]->modulus() == primes_[i],
                   "table prime mismatch");
    }
    ntt_forward_batch(tables, data_.data(), num_primes(), n_);
    domain_ = Domain::kNtt;
}

void
RnsPoly::to_ntt_lazy(const std::vector<const NttTables*>& tables)
{
    BTS_TRACE_SPAN_VAR(trace_span, kKernel, "ntt.fwd_lazy");
    trace_span.set_arg(static_cast<i64>(num_primes()));
    BTS_CHECK(domain_ == Domain::kCoeff, "already in NTT domain");
    BTS_CHECK(tables.size() >= num_primes(), "NTT table count mismatch");
    for (std::size_t i = 0; i < num_primes(); ++i) {
        BTS_ASSERT(tables[i]->modulus() == primes_[i],
                   "table prime mismatch");
    }
    ntt_forward_batch_lazy(tables, data_.data(), num_primes(), n_);
    domain_ = Domain::kNtt;
}

void
RnsPoly::to_coeff(const std::vector<const NttTables*>& tables)
{
    BTS_TRACE_SPAN_VAR(trace_span, kKernel, "ntt.inv");
    trace_span.set_arg(static_cast<i64>(num_primes()));
    BTS_CHECK(domain_ == Domain::kNtt, "already in coefficient domain");
    BTS_CHECK(tables.size() >= num_primes(), "NTT table count mismatch");
    for (std::size_t i = 0; i < num_primes(); ++i) {
        BTS_ASSERT(tables[i]->modulus() == primes_[i],
                   "table prime mismatch");
    }
    ntt_inverse_batch(tables, data_.data(), num_primes(), n_);
    domain_ = Domain::kCoeff;
}

RnsPoly
RnsPoly::automorphism(u64 galois_exp) const
{
    BTS_CHECK(domain_ == Domain::kCoeff,
              "automorphism implemented in coefficient domain");
    BTS_CHECK((galois_exp & 1) == 1, "Galois exponent must be odd");
    const u64 two_n = 2 * static_cast<u64>(n_);
    RnsPoly out(n_, primes_, Domain::kCoeff, Uninit{});
    // The index map j -> j*galois_exp mod 2N is a bijection on odd
    // exponents, so source blocks write disjoint target sets and the
    // 2-D tiling stays race-free.
    parallel_for_2d(
        num_primes(), n_,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const u64 q = primes_[i];
            const u64* src = data_.data() + i * n_;
            u64* dst = out.data_.data() + i * n_;
            for (std::size_t j = c0; j < c1; ++j) {
                const u64 target =
                    (static_cast<u128>(j) * galois_exp) % two_n;
                if (target < n_) {
                    dst[target] = src[j];
                } else {
                    const u64 v = src[j];
                    dst[target - n_] = v == 0 ? 0 : q - v;
                }
            }
        });
    return out;
}

bool
RnsPoly::equals(const RnsPoly& other) const
{
    if (n_ != other.n_ || domain_ != other.domain_ ||
        primes_ != other.primes_) {
        return false;
    }
    return data_ == other.data_;
}

} // namespace bts
