/**
 * @file
 * RNS base: an ordered set of coprime word-sized moduli with the
 * precomputed constants CKKS needs.
 *
 * A polynomial in R_Q with Q = prod(q_i) is represented by its residue
 * polynomials modulo each q_i (Eq. 1 of the paper). Base conversion
 * (Eq. 9) additionally needs, for base C = {q_0..q_l}:
 *   - q_hat_j       = prod_{i != j} q_i  (punctured product),
 *   - q_hat_inv_j   = q_hat_j^{-1} mod q_j,
 *   - q_hat_j mod p for every target prime p.
 * This class owns those tables.
 */
#pragma once

#include <vector>

#include "common/big_uint.h"
#include "common/types.h"

namespace bts {

/** An ordered RNS modulus set with punctured-product tables. */
class RnsBase
{
  public:
    RnsBase() = default;

    /** Build from an ordered list of distinct primes. */
    explicit RnsBase(std::vector<u64> primes);

    std::size_t size() const { return primes_.size(); }
    const std::vector<u64>& primes() const { return primes_; }
    u64 prime(std::size_t i) const { return primes_[i]; }

    /** Exact modulus product. */
    const BigUInt& product() const { return product_; }

    /** q_hat_j^{-1} mod q_j. */
    u64 hat_inv(std::size_t j) const { return hat_inv_[j]; }

    /** q_hat_j mod p for an arbitrary word modulus p. */
    u64 hat_mod(std::size_t j, u64 p) const;

    /** Punctured product q_hat_j as an exact big integer. */
    const BigUInt& hat(std::size_t j) const { return hat_[j]; }

    /** product() mod p. */
    u64 product_mod(u64 p) const;

    /** Prefix base {q_0, ..., q_{count-1}}; count <= size(). */
    RnsBase prefix(std::size_t count) const;

    /**
     * CRT composition: given residues x_i (one per prime), return the
     * unique x in [0, Q). Reference path for tests and decryption-side
     * decoding at small scales.
     */
    BigUInt compose(const std::vector<u64>& residues) const;

    /** CRT decomposition of a big integer (x mod each q_i). */
    std::vector<u64> decompose(const BigUInt& value) const;

  private:
    std::vector<u64> primes_;
    BigUInt product_;
    std::vector<BigUInt> hat_;    // punctured products
    std::vector<u64> hat_inv_;    // hat_j^{-1} mod q_j
};

} // namespace bts
