/**
 * @file
 * RNS residue-matrix polynomial.
 *
 * A level-l polynomial in R_Q is an N x (l+1) matrix of residues
 * (Section 2.2 of the paper): column i holds the residue polynomial
 * modulo q_i. Each component tracks whether it currently lives in the
 * coefficient ("RNS") domain or the NTT domain; BTS keeps polynomials in
 * the NTT domain by default and drops back only for BConv and the
 * automorphism (Section 4.1).
 */
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "math/ntt.h"
#include "rns/rns_base.h"

namespace bts {

/** Which representation a residue polynomial is currently in. */
enum class Domain { kCoeff, kNtt };

/**
 * A polynomial with one residue vector per prime of an RNS base.
 *
 * The object does not own NTT tables; callers pass per-prime tables
 * (matching its primes, in order) for domain changes. The CKKS context
 * provides them.
 */
class RnsPoly
{
  public:
    RnsPoly() = default;

    /** Zero polynomial of degree @p n over @p primes. */
    RnsPoly(std::size_t n, std::vector<u64> primes, Domain domain);

    std::size_t degree() const { return n_; }
    std::size_t num_primes() const { return primes_.size(); }
    const std::vector<u64>& primes() const { return primes_; }
    u64 prime(std::size_t i) const { return primes_[i]; }
    Domain domain() const { return domain_; }
    void set_domain(Domain d) { domain_ = d; }

    /** Residue vector for prime index @p i (length N). */
    std::vector<u64>& component(std::size_t i) { return comps_[i]; }
    const std::vector<u64>& component(std::size_t i) const
    {
        return comps_[i];
    }

    /** Append a component for an extra prime (used by ModUp). */
    void push_component(u64 prime, std::vector<u64> values);

    /** Drop the last component (used by rescaling). */
    void pop_component();

    /** Keep only the first @p count components (level drop). */
    void truncate(std::size_t count);

    // ----- element-wise arithmetic (both operands in the same domain and
    //       over compatible prime prefixes) -----
    void add_inplace(const RnsPoly& other);
    void sub_inplace(const RnsPoly& other);
    void negate_inplace();
    void mul_inplace(const RnsPoly& other);
    /** Multiply every component by per-prime scalars. */
    void mul_scalar_inplace(const std::vector<u64>& scalars);

    // ----- domain changes -----
    /** Forward NTT on all components using matching @p tables. */
    void to_ntt(const std::vector<const NttTables*>& tables);
    /** Inverse NTT on all components. */
    void to_coeff(const std::vector<const NttTables*>& tables);

    /**
     * Apply the Galois automorphism X -> X^galois_exp (odd exponent) in
     * the coefficient domain: coefficient i moves to i*galois_exp mod 2N
     * with sign flip past N (Eq. 5 of the paper generates exponents
     * 5^r mod 2N; conjugation uses 2N-1).
     */
    RnsPoly automorphism(u64 galois_exp) const;

    /** Deep equality (same primes, domain, and residues). */
    bool equals(const RnsPoly& other) const;

  private:
    std::size_t n_ = 0;
    Domain domain_ = Domain::kCoeff;
    std::vector<u64> primes_;
    std::vector<std::vector<u64>> comps_;
};

} // namespace bts
