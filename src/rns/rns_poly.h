/**
 * @file
 * RNS residue-matrix polynomial over flat contiguous storage.
 *
 * A level-l polynomial in R_Q is an N x (l+1) matrix of residues
 * (Section 2.2 of the paper): row i holds the residue polynomial modulo
 * q_i. The whole matrix lives in ONE contiguous limb-major buffer of
 * num_primes x N words — the same layout the accelerator streams
 * through its coefficient-level PEs — so hot loops tile over 2-D
 * (limb x coefficient-block) work items via parallel_for_2d and thread
 * utilization does not collapse as the modulus chain shrinks. Backing
 * buffers recycle through the common workspace pool, so temporary
 * polynomials on the key-switch/rescale paths stop hitting the heap.
 *
 * Each polynomial tracks whether it currently lives in the coefficient
 * ("RNS") domain or the NTT domain; BTS keeps polynomials in the NTT
 * domain by default and drops back only for BConv and the automorphism
 * (Section 4.1).
 */
#pragma once

#include <vector>

#include "common/span.h"
#include "common/types.h"
#include "common/workspace.h"
#include "math/ntt.h"
#include "rns/rns_base.h"

namespace bts {

/** Which representation a residue polynomial is currently in. */
enum class Domain { kCoeff, kNtt };

/**
 * A polynomial with one residue row per prime of an RNS base.
 *
 * The object does not own NTT tables; callers pass per-prime tables
 * (matching its primes, in order) for domain changes. The CKKS context
 * provides them.
 */
class RnsPoly
{
  public:
    /** Tag requesting uninitialized residues (see the tagged ctor). */
    struct Uninit
    {};

    RnsPoly() = default;

    /** Zero polynomial of degree @p n over @p primes. */
    RnsPoly(std::size_t n, std::vector<u64> primes, Domain domain);

    /**
     * Polynomial with UNINITIALIZED residues — for temporaries whose
     * every word is provably overwritten before being read (row-copy
     * reassembly, bijective scatters, full-tile kernels). Skips the
     * O(num_primes x N) zero-fill the default constructor pays.
     * Accumulators and sparse writers must use the zeroing constructor.
     */
    RnsPoly(std::size_t n, std::vector<u64> primes, Domain domain, Uninit);

    ~RnsPoly();
    RnsPoly(const RnsPoly& other);
    RnsPoly& operator=(const RnsPoly& other);
    RnsPoly(RnsPoly&& other) noexcept = default;
    RnsPoly& operator=(RnsPoly&& other) noexcept;

    std::size_t degree() const { return n_; }
    std::size_t num_primes() const { return primes_.size(); }
    const std::vector<u64>& primes() const { return primes_; }
    u64 prime(std::size_t i) const { return primes_[i]; }
    Domain domain() const { return domain_; }
    void set_domain(Domain d) { domain_ = d; }

    /**
     * View of the residue row for prime index @p i (length N). Rows are
     * contiguous: component(i).data() == data() + i * degree(). Views
     * are invalidated by push_component (may reallocate) and by
     * destruction; truncate/pop keep surviving rows valid.
     */
    Span component(std::size_t i)
    {
        return {data_.data() + i * n_, n_};
    }
    ConstSpan component(std::size_t i) const
    {
        return {data_.data() + i * n_, n_};
    }

    /** The flat limb-major buffer (num_primes() * degree() words). */
    u64* data() { return data_.data(); }
    const u64* data() const { return data_.data(); }

    /**
     * Append a row for an extra prime (used by ModUp). @p values must
     * not alias this polynomial's own storage.
     */
    void push_component(u64 prime, ConstSpan values);

    /** Drop the last row (used by rescaling). */
    void pop_component();

    /** Keep only the first @p count rows (level drop). */
    void truncate(std::size_t count);

    /** How a lazy-aware operation should interpret its SOURCE operand's
     *  residues: canonical in [0, q) (the storage invariant) or lazy in
     *  [0, 2q) (fresh out of to_ntt_lazy). The destination polynomial is
     *  always canonical before and after. */
    enum class Residues
    {
        kCanonical,
        kLazy2q,
    };

    // ----- element-wise arithmetic (both operands in the same domain and
    //       over compatible prime prefixes); all 2-D tiled -----
    /** this += other. @p form kLazy2q accepts a [0, 2q) source and folds
     *  its canonicalization into the addition (one pass instead of a
     *  correction sweep plus an add). */
    void add_inplace(const RnsPoly& other,
                     Residues form = Residues::kCanonical);
    void sub_inplace(const RnsPoly& other);
    /** this += other with NO reduction: canonical inputs land in
     *  [0, 2q). Like to_ntt_lazy, the result violates the canonical-
     *  storage invariant and is only for transient values immediately
     *  consumed by a lazy-tolerant op (mul_inplace, to_coeff, the
     *  Residues::kLazy2q forms). The runtime's lazy-residue pass uses
     *  this to skip canonicalization across graph-node boundaries. */
    void add_inplace_lazy(const RnsPoly& other);
    /** this = this + q - other per limb: canonical inputs land in
     *  (0, 2q), same value mod q as sub_inplace. Same transient-only
     *  contract as add_inplace_lazy. */
    void sub_inplace_lazy(const RnsPoly& other);
    void negate_inplace();
    /** this *= other, element-wise Barrett products. Tolerates residues
     *  in [0, 2q) on BOTH operands (2q * 2q < q * 2^64 keeps the Barrett
     *  quotient exact); output is canonical either way. */
    void mul_inplace(const RnsPoly& other);
    /** Multiply every row by per-prime scalars. */
    void mul_scalar_inplace(const std::vector<u64>& scalars);
    /** this = (this - other) * scalars[i] per limb, one fused pass.
     *  @p form kLazy2q accepts a [0, 2q) source; the full Shoup product
     *  canonicalizes, so the reduction is paid once per chain. */
    void sub_mul_scalar_inplace(const RnsPoly& other,
                                const std::vector<u64>& scalars,
                                Residues form = Residues::kCanonical);

    // ----- domain changes (batch NTT over the flat buffer) -----
    /** Forward NTT on all rows using matching @p tables. */
    void to_ntt(const std::vector<const NttTables*>& tables);
    /**
     * Forward NTT leaving residues LAZY in [0, 2q) (Harvey domain; same
     * values mod q as to_ntt, one correction pass cheaper). The result
     * violates the canonical-storage invariant, so it is for transient
     * polynomials that are immediately consumed by a lazy-tolerant op
     * (mul_inplace, the evaluator's key-switch inner product, or the
     * Residues::kLazy2q forms above) — never for ciphertext storage.
     */
    void to_ntt_lazy(const std::vector<const NttTables*>& tables);
    /** Inverse NTT on all rows (accepts lazy input; canonical output). */
    void to_coeff(const std::vector<const NttTables*>& tables);

    /**
     * Apply the Galois automorphism X -> X^galois_exp (odd exponent) in
     * the coefficient domain: coefficient i moves to i*galois_exp mod 2N
     * with sign flip past N (Eq. 5 of the paper generates exponents
     * 5^r mod 2N; conjugation uses 2N-1).
     */
    RnsPoly automorphism(u64 galois_exp) const;

    /** Deep equality (same primes, domain, and residues). */
    bool equals(const RnsPoly& other) const;

  private:
    std::size_t n_ = 0;
    Domain domain_ = Domain::kCoeff;
    std::vector<u64> primes_;
    U64Buffer data_; //!< limb-major, primes_.size() * n_ words
};

} // namespace bts
