#include "rns/rns_base.h"

#include "common/check.h"
#include "math/mod_arith.h"

namespace bts {

RnsBase::RnsBase(std::vector<u64> primes) : primes_(std::move(primes))
{
    BTS_CHECK(!primes_.empty(), "RNS base must be nonempty");
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        for (std::size_t j = i + 1; j < primes_.size(); ++j) {
            BTS_CHECK(gcd_u64(primes_[i], primes_[j]) == 1,
                      "RNS moduli must be pairwise coprime");
        }
    }
    product_ = BigUInt::product(primes_);
    hat_.reserve(primes_.size());
    hat_inv_.reserve(primes_.size());
    for (std::size_t j = 0; j < primes_.size(); ++j) {
        auto [hat, rem] = product_.divmod_word(primes_[j]);
        BTS_ASSERT(rem == 0, "punctured product remainder must vanish");
        hat_.push_back(hat);
        hat_inv_.push_back(inv_mod(hat.mod_word(primes_[j]), primes_[j]));
    }
}

u64
RnsBase::hat_mod(std::size_t j, u64 p) const
{
    return hat_[j].mod_word(p);
}

u64
RnsBase::product_mod(u64 p) const
{
    return product_.mod_word(p);
}

RnsBase
RnsBase::prefix(std::size_t count) const
{
    BTS_CHECK(count >= 1 && count <= primes_.size(),
              "prefix size out of range");
    return RnsBase(std::vector<u64>(primes_.begin(),
                                    primes_.begin() + count));
}

BigUInt
RnsBase::compose(const std::vector<u64>& residues) const
{
    BTS_CHECK(residues.size() == primes_.size(), "residue count mismatch");
    BigUInt acc;
    for (std::size_t j = 0; j < primes_.size(); ++j) {
        const u64 t = mul_mod(residues[j], hat_inv_[j], primes_[j]);
        acc = acc.add(hat_[j].mul_word(t));
    }
    // acc < sum_j hat_j * q_j = (l+1) * Q, so a few subtractions suffice.
    while (acc >= product_) acc = acc.sub(product_);
    return acc;
}

std::vector<u64>
RnsBase::decompose(const BigUInt& value) const
{
    std::vector<u64> out(primes_.size());
    for (std::size_t j = 0; j < primes_.size(); ++j) {
        out[j] = value.mod_word(primes_[j]);
    }
    return out;
}

} // namespace bts
