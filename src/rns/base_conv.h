/**
 * @file
 * Fast (approximate) RNS base conversion — BConv, Eq. 9 of the paper.
 *
 * BConv maps residues over a source base C to residues over a disjoint
 * target base B without leaving RNS:
 *
 *   BConv_{C->B}(x) = { [ sum_j [x_j * q_hat_j^{-1}]_{q_j} * q_hat_j ]_p }
 *
 * The sum may exceed Q by a small multiple (the classic "approximate"
 * base conversion); CKKS noise analysis absorbs that q-overflow. The
 * two-part structure (per-source-prime scaling, then a coefficient-wise
 * multiply-accumulate across source primes) is exactly what the BTS
 * BConvU implements in hardware (ModMult + MMAU, Section 5.2).
 */
#pragma once

#include <vector>

#include "common/types.h"
#include "math/mod_arith.h"
#include "rns/rns_base.h"
#include "rns/rns_poly.h"

namespace bts {

/** Precomputed tables for converting from a fixed source base. */
class BaseConverter
{
  public:
    /**
     * Build a converter from @p source to @p target (bases must be
     * disjoint). Tables: q_hat_inv_j (first part, per source prime) and
     * q_hat_j mod p_i (second part, source x target matrix).
     */
    BaseConverter(const RnsBase& source, const RnsBase& target);

    const RnsBase& source() const { return source_; }
    const RnsBase& target() const { return target_; }

    /**
     * Convert polynomial @p input (coefficient domain, components over
     * exactly the source primes) to the target base.
     */
    RnsPoly convert(const RnsPoly& input) const;

    /**
     * Convert, emulating the BTS l_sub-grouped accumulation (Eq. 11):
     * mathematically identical to convert(); exercised by tests to pin
     * the equivalence the hardware overlap relies on.
     */
    RnsPoly convert_grouped(const RnsPoly& input, int l_sub) const;

  private:
    RnsBase source_;
    RnsBase target_;
    std::vector<std::vector<u64>> hat_mod_; // [target i][source j]
    // Hot-path reducers, built once per converter so the tiled loops
    // never reconstruct them (each costs a 128-bit division). The
    // Shoup contexts carry q_hat_inv_j themselves (member w).
    std::vector<ShoupMul> hat_inv_shoup_;   // per source prime j
    std::vector<Barrett> target_barrett_;   // per target prime i
};

} // namespace bts
