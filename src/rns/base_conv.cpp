#include "rns/base_conv.h"

#include "common/check.h"
#include "common/parallel.h"
#include "common/workspace.h"
#include "math/mod_arith.h"
#include "runtime/telemetry/trace.h"

namespace bts {

BaseConverter::BaseConverter(const RnsBase& source, const RnsBase& target)
    : source_(source), target_(target)
{
    for (u64 p : target.primes()) {
        for (u64 q : source.primes()) {
            BTS_CHECK(p != q, "source/target bases must be disjoint");
        }
    }
    hat_inv_shoup_.resize(source.size());
    for (std::size_t j = 0; j < source.size(); ++j) {
        hat_inv_shoup_[j] = ShoupMul(source.hat_inv(j), source.prime(j));
    }
    hat_mod_.assign(target.size(), std::vector<u64>(source.size()));
    target_barrett_.resize(target.size());
    for (std::size_t i = 0; i < target.size(); ++i) {
        target_barrett_[i] = Barrett(target.prime(i));
        for (std::size_t j = 0; j < source.size(); ++j) {
            hat_mod_[i][j] = source.hat_mod(j, target.prime(i));
        }
    }
}

RnsPoly
BaseConverter::convert(const RnsPoly& input) const
{
    BTS_TRACE_SPAN_VAR(trace_span, kKernel, "bconv");
    trace_span.set_arg(static_cast<i64>(source_.size()));
    BTS_CHECK(input.domain() == Domain::kCoeff,
              "BConv operates in the coefficient domain");
    BTS_CHECK(input.num_primes() == source_.size(),
              "input must live exactly on the source base");
    const std::size_t n = input.degree();

    // Part 1 (ModMult in the BConvU): y_j = [x_j * q_hat_inv_j]_{q_j},
    // tiled over (source limb x coefficient block) into pooled flat
    // scratch (limb-major, like RnsPoly storage).
    for (std::size_t j = 0; j < source_.size(); ++j) {
        BTS_CHECK(input.prime(j) == source_.prime(j), "prime mismatch");
    }
    const std::size_t src_count = source_.size();
    Workspace scaled(src_count * n);
    u64* const scaled_base = scaled.data();
    parallel_for_2d(
        src_count, n,
        [&](std::size_t j, std::size_t c0, std::size_t c1) {
            const u64 q = source_.prime(j);
            const ShoupMul& s = hat_inv_shoup_[j];
            const u64* src = input.component(j).data();
            u64* dst = scaled_base + j * n;
            for (std::size_t c = c0; c < c1; ++c) {
                dst[c] = s.mul(src[c], q);
            }
        });

    // Part 2 (MMAU): out_i = [ sum_j y_j * q_hat_j ]_{p_i}, accumulated
    // lazily in 128 bits (q_j < 2^61 keeps sums of 64 terms overflow-free;
    // we reduce defensively every 8 terms for arbitrary base sizes).
    // Each coefficient's sum is self-contained, so the 2-D tiling
    // cannot change the result.
    // Part 2 writes every coefficient of every target limb: the
    // output can skip the zero-fill.
    RnsPoly out(n, target_.primes(), Domain::kCoeff, RnsPoly::Uninit{});
    parallel_for_2d(
        target_.size(), n,
        [&](std::size_t i, std::size_t c0, std::size_t c1) {
            const Barrett& barrett = target_barrett_[i];
            u64* dst = out.component(i).data();
            for (std::size_t c = c0; c < c1; ++c) {
                u128 acc = 0;
                for (std::size_t j = 0; j < src_count; ++j) {
                    acc += static_cast<u128>(scaled_base[j * n + c]) *
                           hat_mod_[i][j];
                    if ((j & 7) == 7) acc = barrett.reduce(acc);
                }
                dst[c] = barrett.reduce(acc);
            }
        });
    return out;
}

RnsPoly
BaseConverter::convert_grouped(const RnsPoly& input, int l_sub) const
{
    BTS_TRACE_SPAN_VAR(trace_span, kKernel, "bconv.grouped");
    trace_span.set_arg(static_cast<i64>(source_.size()));
    BTS_CHECK(l_sub >= 1, "l_sub must be positive");
    BTS_CHECK(input.domain() == Domain::kCoeff,
              "BConv operates in the coefficient domain");
    const std::size_t n = input.degree();
    const std::size_t src_count = source_.size();

    RnsPoly out(n, target_.primes(), Domain::kCoeff);
    // Outer sum of Eq. 11: process l_sub source primes at a time,
    // accumulating into the running partial sums (the scratchpad-resident
    // partial sums of the MMAU).
    for (std::size_t j0 = 0; j0 < src_count;
         j0 += static_cast<std::size_t>(l_sub)) {
        const std::size_t j1 =
            std::min(src_count, j0 + static_cast<std::size_t>(l_sub));
        // Target limbs and coefficients are independent within a group;
        // the group loop itself stays sequential (partial sums
        // accumulate in order).
        parallel_for_2d(
            target_.size(), n,
            [&](std::size_t i, std::size_t c0, std::size_t c1) {
                const Barrett& barrett = target_barrett_[i];
                u64* dst = out.component(i).data();
                for (std::size_t c = c0; c < c1; ++c) {
                    u128 acc = dst[c];
                    for (std::size_t j = j0; j < j1; ++j) {
                        const u64 q = source_.prime(j);
                        const u64 y = hat_inv_shoup_[j].mul(
                            input.component(j)[c], q);
                        acc += static_cast<u128>(y) * hat_mod_[i][j];
                    }
                    dst[c] = barrett.reduce(acc);
                }
            });
    }
    return out;
}

} // namespace bts
