#include "baselines/published.h"

namespace bts::baselines {

Baseline
lattigo_cpu()
{
    Baseline b;
    b.name = "Lattigo";
    b.platform = "CPU (Xeon Platinum 8160, 256GB DDR4)";
    b.lambda_bits = 128;
    // Fig. 6: BTS best (45.5ns) is 2237x better.
    b.tmult_a_slot_ns = 45.5 * 2237;
    b.helr_iter_ms = 37050;
    b.resnet20_s = 10602; // Lee et al. [59] CPU implementation
    b.sorting_s = 23066;  // Hong et al. [42] CPU implementation
    b.bootstrappable = true;
    b.refreshed_slots = 32768;
    return b;
}

Baseline
gpu_100x()
{
    Baseline b;
    b.name = "100x";
    b.platform = "GPU (NVIDIA V100)";
    b.lambda_bits = 97; // the reported best point is 97-bit secure
    b.tmult_a_slot_ns = 743;
    b.helr_iter_ms = 775;
    b.bootstrappable = true;
    b.refreshed_slots = 65536;
    return b;
}

Baseline
f1()
{
    Baseline b;
    b.name = "F1";
    b.platform = "ASIC (12/14nm, 151.4mm^2)";
    b.lambda_bits = 128;
    // F1 is 2.5x slower than Lattigo once single-slot bootstrapping is
    // amortized (Section 6.3).
    b.tmult_a_slot_ns = 45.5 * 2237 * 2.5;
    b.helr_iter_ms = 1024; // estimated end-to-end (Section 6.3)
    b.bootstrappable = true; // partially: single-slot only
    b.refreshed_slots = 1;
    return b;
}

Baseline
f1_plus()
{
    Baseline b;
    b.name = "F1+";
    b.platform = "ASIC (F1 area-scaled to 7nm / BTS budget)";
    b.lambda_bits = 128;
    // Fig. 6: 824x slower than BTS's best 45.5ns.
    b.tmult_a_slot_ns = 45.5 * 824;
    b.helr_iter_ms = 148;
    b.bootstrappable = true;
    b.refreshed_slots = 1;
    return b;
}

std::vector<Baseline>
all_baselines()
{
    return {lattigo_cpu(), gpu_100x(), f1(), f1_plus()};
}

PaperBts
paper_bts()
{
    return PaperBts{};
}

} // namespace bts::baselines
