/**
 * @file
 * Published baseline performance (Table 1, Table 5, Table 6, Fig. 6).
 *
 * The paper compares BTS against *reported* numbers for the CPU
 * (Lattigo on a Xeon 8160), GPU (100x on a V100), the F1 ASIC, and F1+
 * (F1 optimistically area-scaled to BTS's 7nm budget). We follow the
 * identical methodology: these structs carry the published values, and
 * the benches print BTS-vs-baseline ratios from them.
 */
#pragma once

#include <string>
#include <vector>

namespace bts::baselines {

/** One comparison platform. */
struct Baseline
{
    std::string name;
    std::string platform;
    double lambda_bits = 128;       //!< security of the compared config
    double tmult_a_slot_ns = 0;     //!< amortized mult per slot (Fig. 6)
    double helr_iter_ms = 0;        //!< Table 5 (0: not reported)
    double resnet20_s = 0;          //!< Table 6
    double sorting_s = 0;           //!< Table 6
    bool bootstrappable = false;    //!< Table 1
    int refreshed_slots = 0;        //!< slots per bootstrap (Table 1)
};

/** Lattigo v2.3 on Xeon Platinum 8160 (Table 1/5/6, Fig. 6). */
Baseline lattigo_cpu();
/** Jung et al. "over 100x" on V100 (97-bit-secure parameter set). */
Baseline gpu_100x();
/** F1 (MICRO'21 ASIC), single-slot bootstrapping only. */
Baseline f1();
/** F1+, the paper's area-scaled F1 variant. */
Baseline f1_plus();

/** All four, in the paper's presentation order. */
std::vector<Baseline> all_baselines();

/**
 * The paper's headline BTS results, used by tests to pin the expected
 * *shape* of our reproduction (who wins, roughly by how much).
 */
struct PaperBts
{
    double tmult_ins1_ns = 68.5; //!< derived: min-bound 27.7 at 512MB ~2x
    double tmult_ins2_ns = 45.5; //!< Fig. 6 best point
    double helr_ins2_ms = 28.4;  //!< Table 5
    double resnet_ins1_s = 1.91; //!< Table 6
    double sorting_ins1_s = 15.6;
    int resnet_bootstraps_ins1 = 53;
    int resnet_bootstraps_ins2 = 22;
    int resnet_bootstraps_ins3 = 19;
    int sorting_bootstraps_ins1 = 521;
    int sorting_bootstraps_ins2 = 306;
    int sorting_bootstraps_ins3 = 229;
};
PaperBts paper_bts();

} // namespace bts::baselines
