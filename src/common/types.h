/**
 * @file
 * Fundamental fixed-width types shared by every BTS module.
 *
 * The whole library works on 64-bit machine words (the word size of BTS,
 * Section 5 of the paper); 128-bit intermediates are used for modular
 * multiplication before Barrett reduction.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace bts {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i64 = std::int64_t;
using i128 = __int128;

/** Maximum supported modulus width: primes must fit in 61 bits so that
 *  lazy accumulation of a few products never overflows 128 bits. */
inline constexpr int kMaxModulusBits = 61;

} // namespace bts
