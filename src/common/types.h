/**
 * @file
 * Fundamental fixed-width types shared by every BTS module.
 *
 * The whole library works on 64-bit machine words (the word size of BTS,
 * Section 5 of the paper); 128-bit intermediates are used for modular
 * multiplication before Barrett reduction.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace bts {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i64 = std::int64_t;
using i128 = __int128;

/** Maximum supported modulus width: primes must fit in 61 bits so that
 *  (a) lazy accumulation of a few products never overflows 128 bits and
 *  (b) the Harvey lazy NTT domain [0, 4q) — which strictly requires
 *  q < 2^62 — fits a 64-bit word with headroom for the branchless
 *  conditional-subtraction form (all lazy values stay below 2^63, so
 *  signed SIMD compares also work). */
inline constexpr int kMaxModulusBits = 61;
static_assert(kMaxModulusBits < 62,
              "Harvey lazy reduction needs q < 2^62 (values in [0, 4q) "
              "must fit u64)");

} // namespace bts
