/**
 * @file
 * Minimal arbitrary-precision unsigned integer.
 *
 * CKKS parameter machinery needs exact arithmetic on modulus products
 * (log PQ > 3000 bits for the paper's instances, Table 4): computing
 * Q = prod(q_i), the punctured products q_hat_j = Q / q_j, CRT
 * composition in tests, and decryption-side big-coefficient decoding at
 * small test scales. This class implements exactly the operations those
 * call sites need — it is not a general bignum library.
 */
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace bts {

/** Little-endian base-2^64 arbitrary-precision unsigned integer. */
class BigUInt
{
  public:
    /** Zero. */
    BigUInt() = default;

    /** From a single machine word. */
    explicit BigUInt(u64 value);

    /** @return true iff the value is zero. */
    bool is_zero() const { return limbs_.empty(); }

    /** Number of significant bits (0 for zero). */
    int bit_length() const;

    /** @return this + other. */
    BigUInt add(const BigUInt& other) const;

    /** @return this - other; requires this >= other. */
    BigUInt sub(const BigUInt& other) const;

    /** @return this * other (schoolbook; operand sizes here are small). */
    BigUInt mul(const BigUInt& other) const;

    /** @return this * scalar word. */
    BigUInt mul_word(u64 scalar) const;

    /** @return this mod m for a word-sized modulus. */
    u64 mod_word(u64 m) const;

    /** @return (quotient, remainder) of division by a word. */
    std::pair<BigUInt, u64> divmod_word(u64 divisor) const;

    /** Three-way comparison: -1, 0, +1. */
    int compare(const BigUInt& other) const;

    bool operator==(const BigUInt& other) const { return compare(other) == 0; }
    bool operator<(const BigUInt& other) const { return compare(other) < 0; }
    bool operator<=(const BigUInt& other) const { return compare(other) <= 0; }
    bool operator>(const BigUInt& other) const { return compare(other) > 0; }
    bool operator>=(const BigUInt& other) const { return compare(other) >= 0; }

    /** @return floor(this / 2). */
    BigUInt half() const;

    /** Approximate conversion to double (may overflow to inf). */
    double to_double() const;

    /** Decimal string, for diagnostics. */
    std::string to_string() const;

    /** Product of a list of word-sized factors. */
    static BigUInt product(const std::vector<u64>& factors);

    /** Raw limb access (little-endian), used by CRT helpers. */
    const std::vector<u64>& limbs() const { return limbs_; }

  private:
    void trim();

    std::vector<u64> limbs_;
};

} // namespace bts
