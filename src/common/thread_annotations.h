/**
 * @file
 * Clang thread-safety analysis support: capability annotations plus a
 * minimal annotated Mutex/MutexLock/CondVar vocabulary.
 *
 * Clang's -Wthread-safety verifies lock discipline at compile time,
 * but only over *annotated* capability types — std::mutex carries no
 * annotations on libstdc++, so the guarded state of ThreadPool, the
 * workspace pool and GraphServer is expressed with these wrappers
 * instead. The macros expand to nothing on non-clang compilers (gcc
 * would reject the unknown attributes under -Wattributes -Werror), so
 * the annotations are pure documentation there and enforced contracts
 * in the clang CI arms (-Werror=thread-safety, enabled automatically
 * by CMake when the compiler is clang).
 *
 * Condition waits deliberately take the Mutex itself (CondVar wraps
 * std::condition_variable_any, and Mutex is BasicLockable) in a plain
 * `while (!cond) cv.wait(mu);` loop rather than a predicate lambda:
 * the analysis checks the guarded reads right in the REQUIRES scope
 * instead of inside an unannotated closure.
 */
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define BTS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BTS_THREAD_ANNOTATION(x) // expands to nothing: gcc, MSVC, ...
#endif

#define BTS_CAPABILITY(x) BTS_THREAD_ANNOTATION(capability(x))
#define BTS_SCOPED_CAPABILITY BTS_THREAD_ANNOTATION(scoped_lockable)
#define BTS_GUARDED_BY(x) BTS_THREAD_ANNOTATION(guarded_by(x))
#define BTS_PT_GUARDED_BY(x) BTS_THREAD_ANNOTATION(pt_guarded_by(x))
#define BTS_REQUIRES(...) \
    BTS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define BTS_ACQUIRE(...) \
    BTS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BTS_RELEASE(...) \
    BTS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define BTS_EXCLUDES(...) BTS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define BTS_NO_THREAD_SAFETY_ANALYSIS \
    BTS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bts {

/** std::mutex with the capability annotation the analysis tracks. */
class BTS_CAPABILITY("mutex") Mutex
{
  public:
    void
    lock() BTS_ACQUIRE()
    {
        mu_.lock();
    }
    void
    unlock() BTS_RELEASE()
    {
        mu_.unlock();
    }

  private:
    std::mutex mu_;
};

/** RAII lock of a Mutex (std::lock_guard's annotated counterpart). */
class BTS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& mu) BTS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() BTS_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mu_;
};

/** Condition variable waiting directly on an annotated Mutex. Callers
 *  hold the mutex and loop on their condition:
 *      MutexLock lock(mu_);
 *      while (!ready_) cv_.wait(mu_);
 */
class CondVar
{
  public:
    /** Atomically unlock @p mu, sleep, relock before returning. */
    void
    wait(Mutex& mu) BTS_REQUIRES(mu)
    {
        cv_.wait(mu);
    }
    void
    notify_one()
    {
        cv_.notify_one();
    }
    void
    notify_all()
    {
        cv_.notify_all();
    }

  private:
    std::condition_variable_any cv_;
};

} // namespace bts
