/**
 * @file
 * Error-reporting helpers, in the spirit of gem5's fatal()/panic() split.
 *
 * - BTS_CHECK / bts::fatal: user-facing argument validation (invalid
 *   parameters, impossible configuration). Throws std::invalid_argument.
 * - BTS_ASSERT / bts::panic: internal invariants that should never fail
 *   regardless of user input. Throws std::logic_error.
 */
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace bts {

[[noreturn]] inline void
fatal(const std::string& msg)
{
    throw std::invalid_argument("bts: " + msg);
}

[[noreturn]] inline void
panic(const std::string& msg)
{
    throw std::logic_error("bts internal error: " + msg);
}

} // namespace bts

#define BTS_CHECK(cond, msg)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream oss_;                                        \
            oss_ << msg << " [" << #cond << " @ " << __FILE__ << ":"        \
                 << __LINE__ << "]";                                        \
            ::bts::fatal(oss_.str());                                       \
        }                                                                   \
    } while (0)

#define BTS_ASSERT(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream oss_;                                        \
            oss_ << msg << " [" << #cond << " @ " << __FILE__ << ":"        \
                 << __LINE__ << "]";                                        \
            ::bts::panic(oss_.str());                                       \
        }                                                                   \
    } while (0)

// BTS_DEBUG_ASSERT: invariant checks cheap enough to state everywhere
// but too hot to pay for in Release (per-element contracts in the
// modular-arithmetic primitives). Compiled out under NDEBUG; the Debug
// half of the CI matrix runs them on every PR.
#ifndef NDEBUG
#define BTS_DEBUG_ASSERT(cond, msg) BTS_ASSERT(cond, msg)
#else
#define BTS_DEBUG_ASSERT(cond, msg) static_cast<void>(0)
#endif
