#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/check.h"

namespace bts {

namespace {

/** Set while a thread executes task indices; gates nested calls. */
thread_local bool t_in_parallel_region = false;

} // namespace

ThreadPool::ThreadPool(int n_threads)
{
    if (n_threads < 1) n_threads = 1;
    workers_.reserve(static_cast<std::size_t>(n_threads - 1));
    for (int i = 0; i < n_threads - 1; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void
ThreadPool::worker_loop()
{
    u64 seen_generation = 0;
    for (;;) {
        TaskState* task = nullptr;
        {
            MutexLock lock(mutex_);
            // A worker can wake after the caller already finished the
            // task and reset task_; require a live task to proceed.
            while (!shutdown_ && !(generation_ != seen_generation &&
                                   task_ != nullptr)) {
                work_cv_.wait(mutex_);
            }
            if (shutdown_) return;
            seen_generation = generation_;
            task = task_;
            task->active += 1;
        }
        participate(*task);
    }
}

void
ThreadPool::participate(TaskState& task)
{
    t_in_parallel_region = true;
    for (;;) {
        const std::size_t i = task.next.fetch_add(1);
        if (i >= task.end) break;
        try {
            (*task.body)(i);
        } catch (...) {
            MutexLock lock(mutex_);
            if (!task.error) task.error = std::current_exception();
            // Drain the remaining indices so the loop quiesces fast.
            task.next.store(task.end);
        }
    }
    t_in_parallel_region = false;
    bool last = false;
    {
        MutexLock lock(mutex_);
        task.active -= 1;
        last = task.active == 0;
    }
    if (last) done_cv_.notify_all();
}

void
ThreadPool::run(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t)>& body)
{
    if (begin >= end) return;
    // Nested call from a worker of this (or any) pool: run serially on
    // the current thread; waking the pool would deadlock on mutex_.
    if (t_in_parallel_region || size() == 1 || end - begin == 1) {
        for (std::size_t i = begin; i < end; ++i) body(i);
        return;
    }

    // One task in flight at a time: a second external caller queues
    // here instead of clobbering the task_ slot mid-run.
    MutexLock run_lock(run_mutex_);

    TaskState task;
    task.body = &body;
    task.next.store(begin);
    task.end = end;
    {
        MutexLock lock(mutex_);
        task_ = &task;
        generation_ += 1;
        task.active += 1; // the caller's own participation
    }
    work_cv_.notify_all();
    participate(task);
    {
        MutexLock lock(mutex_);
        while (task.active != 0) done_cv_.wait(mutex_);
        task_ = nullptr;
    }
    if (task.error) std::rethrow_exception(task.error);
}

namespace {

std::mutex g_pool_mutex;
// shared_ptr so an in-flight parallel_for keeps its pool alive while
// set_num_threads() swaps in a replacement from another thread; the
// old pool joins its workers when the last user releases it.
std::shared_ptr<ThreadPool> g_pool; // under g_pool_mutex
int g_num_threads = 0;              // 0 = not yet initialized

int
initial_num_threads()
{
    if (const char* env = std::getenv("BTS_NUM_THREADS")) {
        char* end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end == env || *end != '\0') return 1; // garbage: stay serial
        if (v >= 1) return static_cast<int>(v);
        if (v == 0) { // explicit 0 = auto-detect
            const unsigned hc = std::thread::hardware_concurrency();
            return hc == 0 ? 1 : static_cast<int>(hc);
        }
    }
    return 1;
}

/** Callers must hold g_pool_mutex. */
void
ensure_initialized_locked()
{
    if (g_num_threads == 0) g_num_threads = initial_num_threads();
}

} // namespace

void
set_num_threads(int n_threads)
{
    BTS_CHECK(n_threads >= 0, "thread count must be >= 0 (0 = auto)");
    if (n_threads == 0) {
        const unsigned hc = std::thread::hardware_concurrency();
        n_threads = hc == 0 ? 1 : static_cast<int>(hc);
    }
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (g_num_threads == n_threads && (g_pool || n_threads == 1)) return;
    g_num_threads = n_threads;
    g_pool.reset(); // joins the old workers unless a run is in flight
    if (n_threads > 1) g_pool = std::make_shared<ThreadPool>(n_threads);
}

int
num_threads()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    ensure_initialized_locked();
    return g_num_threads;
}

void
parallel_for_2d(
    std::size_t dim0, std::size_t dim1,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t min_block)
{
    if (dim0 == 0 || dim1 == 0) return;
    if (min_block == 0) min_block = 1;

    // Aim for ~4 work items per lane so the shared-index schedule load
    // balances; never tile rows once the row count alone gets there.
    const auto lanes = static_cast<std::size_t>(num_threads());
    const std::size_t target_items = lanes * 4;
    std::size_t blocks = 1;
    if (lanes > 1 && dim0 < target_items) {
        const std::size_t wanted = (target_items + dim0 - 1) / dim0;
        // Floor keeps every block >= min_block indices long.
        const std::size_t max_blocks = dim1 / min_block;
        blocks = std::max<std::size_t>(1, std::min(wanted, max_blocks));
    }
    if (blocks == 1) {
        parallel_for(0, dim0,
                     [&](std::size_t i) { body(i, 0, dim1); });
        return;
    }
    // Even boundaries b*dim1/blocks keep every block within one index
    // of dim1/blocks, so the floor-based block cap above guarantees no
    // block ever shrinks below min_block (no short tail block).
    parallel_for(0, dim0 * blocks, [&, blocks](std::size_t idx) {
        const std::size_t i = idx / blocks;
        const std::size_t b = idx % blocks;
        const std::size_t j0 = b * dim1 / blocks;
        const std::size_t j1 = (b + 1) * dim1 / blocks;
        body(i, j0, j1);
    });
}

void
parallel_for(std::size_t begin, std::size_t end,
             const std::function<void(std::size_t)>& body)
{
    std::shared_ptr<ThreadPool> pool;
    {
        std::lock_guard<std::mutex> lock(g_pool_mutex);
        ensure_initialized_locked();
        if (g_num_threads > 1 && !g_pool && !t_in_parallel_region) {
            g_pool = std::make_shared<ThreadPool>(g_num_threads);
        }
        pool = g_pool;
    }
    if (!pool) {
        for (std::size_t i = begin; i < end; ++i) body(i);
        return;
    }
    pool->run(begin, end, body);
}

} // namespace bts
