/**
 * @file
 * Deterministic pseudo-random number generation and the samplers used by
 * CKKS key generation and encryption.
 *
 * CKKS needs three distributions (Section 2.2 of the paper):
 *  - uniform residues mod q (the `a` polynomial of fresh ciphertexts/keys),
 *  - a small discrete Gaussian error e(X) (sigma = 3.2, the HE-standard
 *    value),
 *  - ternary secrets {-1, 0, 1}, optionally with a fixed Hamming weight
 *    (sparse secrets, which bound the bootstrapping modular-reduction
 *    range K).
 *
 * A xoshiro256** generator keeps the whole library reproducible without
 * depending on platform <random> implementation details.
 */
#pragma once

#include <vector>

#include "common/types.h"

namespace bts {

/** xoshiro256** 1.0 generator (public-domain algorithm by Blackman/Vigna). */
class Xoshiro256
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Xoshiro256(u64 seed = 0x9e3779b97f4a7c15ULL);

    /** @return next 64 uniform random bits. */
    u64 next();

    /** @return uniform value in [0, bound) without modulo bias. */
    u64 uniform(u64 bound);

    /** @return uniform double in [0, 1). */
    double uniform_real();

  private:
    u64 s_[4];
};

/** Samplers for the CKKS-specific distributions. */
class Sampler
{
  public:
    explicit Sampler(u64 seed) : rng_(seed) {}

    /** Uniform residues in [0, modulus). */
    std::vector<u64> uniform_poly(std::size_t n, u64 modulus);

    /**
     * Discrete Gaussian with standard deviation @p sigma, returned as
     * signed values (Box-Muller + rounding; exactness of the tail is not
     * security-relevant for a research reproduction).
     */
    std::vector<i64> gaussian_poly(std::size_t n, double sigma = 3.2);

    /** Uniform ternary {-1, 0, 1} secret. */
    std::vector<i64> ternary_poly(std::size_t n);

    /**
     * Sparse ternary secret with exactly @p hamming_weight nonzero
     * (+-1) entries, as used by sparse-secret CKKS instances.
     */
    std::vector<i64> sparse_ternary_poly(std::size_t n, int hamming_weight);

    /** Direct access for ad-hoc draws. */
    Xoshiro256& rng() { return rng_; }

  private:
    Xoshiro256 rng_;
};

} // namespace bts
