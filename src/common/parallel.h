/**
 * @file
 * Limb-parallel execution layer.
 *
 * BTS's hardware premise is massive parallelism across RNS limbs and NTT
 * lanes (Section 4.3: coefficient-level parallelism keeps all 2,048 PEs
 * busy regardless of the fluctuating level). The software model mirrors
 * the limb axis on the host: hot per-limb loops (NTT/iNTT over a
 * residue matrix, BConv ModMult/MMAU passes, rescale) fan out over a
 * fixed pool of worker threads via parallel_for().
 *
 * Design constraints:
 *  - dependency-light: <thread>/<mutex>/<condition_variable> only, no
 *    work stealing — per-limb work items are large and uniform, so a
 *    shared atomic index is contention-free in practice.
 *  - bit-exact: every schedule executes the same per-limb arithmetic on
 *    disjoint data; results are identical at any thread count, and
 *    n_threads == 1 short-circuits to the plain serial loop.
 *  - nested-call safe: a parallel_for() issued from inside a worker
 *    (e.g. a parallelized callee of an already-parallel caller) runs
 *    serially on that worker instead of deadlocking the pool.
 *  - exceptions propagate: the first exception thrown by any index is
 *    rethrown on the calling thread after the loop quiesces.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace bts {

/**
 * A fixed-size pool of worker threads executing index-range tasks.
 *
 * One task is in flight at a time (run() is a barrier: it returns only
 * after every index has executed). The calling thread participates in
 * the loop: size() counts it, so a ThreadPool(4) spawns 3 workers and
 * uses the caller as the fourth lane.
 */
class ThreadPool
{
  public:
    /** @p n_threads total lanes (caller included); clamped to >= 1. */
    explicit ThreadPool(int n_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total execution lanes (worker threads + the calling thread). */
    int size() const { return static_cast<int>(workers_.size()) + 1; }

    /**
     * Execute body(i) for every i in [begin, end), spread across the
     * pool. Blocks until all indices finished. Rethrows the first
     * exception any index raised. Safe to call from inside a body
     * running on this pool (the nested loop runs serially).
     */
    void run(std::size_t begin, std::size_t end,
             const std::function<void(std::size_t)>& body);

  private:
    struct TaskState
    {
        const std::function<void(std::size_t)>* body = nullptr;
        std::atomic<std::size_t> next{0};
        std::size_t end = 0;
        // error and active are protected by the owning pool's mutex_
        // (clang's analysis cannot express a cross-object guard, so
        // this is a comment-level contract enforced by review + TSan).
        std::exception_ptr error; //!< first exception, under mutex_
        int active = 0;           //!< participants still inside the task
    };

    void worker_loop();
    void participate(TaskState& task);

    std::vector<std::thread> workers_;
    Mutex run_mutex_; //!< serializes concurrent external run() calls
    Mutex mutex_;
    CondVar work_cv_; //!< wakes workers on a new task
    CondVar done_cv_; //!< wakes the caller on completion
    TaskState* task_ BTS_GUARDED_BY(mutex_) = nullptr; //!< current task
    u64 generation_ BTS_GUARDED_BY(mutex_) = 0; //!< bumps once per run()
    bool shutdown_ BTS_GUARDED_BY(mutex_) = false;
};

/**
 * Set the global lane count used by parallel_for(). Thread-safe.
 * @p n_threads >= 1; pass 0 to auto-detect (hardware_concurrency).
 * The initial value comes from the BTS_NUM_THREADS environment
 * variable, defaulting to 1 (fully serial) when unset.
 */
void set_num_threads(int n_threads);

/** Current global lane count (>= 1). */
int num_threads();

/**
 * Run body(i) for i in [begin, end) on the global pool. Serial when
 * num_threads() == 1, when the range has a single index, or when
 * called from inside another parallel_for (nested-call safety).
 */
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/**
 * 2-D tiled loop: run body(i, j_begin, j_end) covering every
 * (i, j) in [0, dim0) x [0, dim1), with the j axis split into
 * contiguous blocks.
 *
 * This is the software image of the paper's coefficient-level
 * parallelism (Section 3): per-limb fan-out alone collapses when the
 * modulus chain is short (a level-2 rescale would use 2 lanes of 8),
 * so the j axis (coefficients) is tiled until the schedule reaches
 * ~4 work items per lane (the shared-index loop's load-balance
 * target). Once dim0 (limbs) alone provides that many items, each row
 * is a single block and the schedule degenerates to the plain
 * per-limb parallel_for — zero tiling overhead on deep chains.
 *
 * Blocks never split below @p min_block j-indices (amortizes per-item
 * scheduling and keeps writes cacheline-disjoint between lanes).
 * Results must not depend on the block boundaries; every body call
 * touches the disjoint (i, [j_begin, j_end)) tile only, so any
 * schedule — including the serial nested fallback — is bit-exact.
 * Exceptions propagate like parallel_for.
 */
void parallel_for_2d(
    std::size_t dim0, std::size_t dim1,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t min_block = 1024);

} // namespace bts
