#include "common/workspace.h"

#include <algorithm>

#include "common/thread_annotations.h"
#include "runtime/telemetry/trace.h"

namespace bts {

namespace {

/** Bounded free list of recycled buffers. */
class BufferPool
{
  public:
    BufferPool() { free_.reserve(kMaxBuffers); } // keep release() noexcept-safe

    U64Buffer
    acquire(std::size_t min_capacity)
    {
        if (min_capacity == 0) return {}; // don't pin a cached buffer
        {
            MutexLock lock(mutex_);
            // Best fit: smallest cached buffer that is large enough, so
            // one oversized allocation does not get pinned to tiny asks.
            std::size_t best = free_.size();
            for (std::size_t i = 0; i < free_.size(); ++i) {
                if (free_[i].capacity() < min_capacity) continue;
                if (best == free_.size() ||
                    free_[i].capacity() < free_[best].capacity()) {
                    best = i;
                }
            }
            if (best != free_.size()) {
                U64Buffer out = std::move(free_[best]);
                cached_bytes_ -= out.capacity() * sizeof(u64);
                free_.erase(free_.begin() +
                            static_cast<std::ptrdiff_t>(best));
                hits_ += 1;
                check_out(out.capacity() * sizeof(u64));
                out.clear();
                return out;
            }
            misses_ += 1;
        }
        U64Buffer out;
        out.reserve(min_capacity); // allocate OUTSIDE the lock
        {
            // Account the actual capacity (the allocator may round up)
            // so release() balances the books exactly.
            MutexLock lock(mutex_);
            check_out(out.capacity() * sizeof(u64));
        }
        return out;
    }

    void
    release(U64Buffer&& buf)
    {
        const std::size_t bytes = buf.capacity() * sizeof(u64);
        if (bytes == 0) return;
        MutexLock lock(mutex_);
        check_in(bytes);
        if (cached_bytes_ + bytes > kMaxBytes) {
            return; // drop on the floor: vector frees to the allocator
        }
        if (free_.size() >= kMaxBuffers) {
            // Evict the smallest cached buffer rather than the incoming
            // one: steady-state traffic reuses the largest working-set
            // buffers, and small ones are cheap to reallocate.
            std::size_t min_i = 0;
            for (std::size_t i = 1; i < free_.size(); ++i) {
                if (free_[i].capacity() < free_[min_i].capacity()) {
                    min_i = i;
                }
            }
            if (free_[min_i].capacity() >= buf.capacity()) return;
            cached_bytes_ -= free_[min_i].capacity() * sizeof(u64);
            free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(min_i));
        }
        cached_bytes_ += bytes;
        free_.push_back(std::move(buf));
    }

    WorkspaceStats
    stats()
    {
        MutexLock lock(mutex_);
        return {hits_,
                misses_,
                outstanding_buffers_,
                outstanding_bytes_,
                peak_buffers_,
                peak_bytes_};
    }

    void
    reset_stats()
    {
        MutexLock lock(mutex_);
        hits_ = 0;
        misses_ = 0;
        // Rebase the high-water marks to what is checked out right now;
        // the gauges keep tracking those buffers until they come back.
        peak_buffers_ = outstanding_buffers_;
        peak_bytes_ = outstanding_bytes_;
    }

  private:
    static constexpr std::size_t kMaxBuffers = 64;
    static constexpr std::size_t kMaxBytes = 512u << 20; // 512 MiB

    void
    check_out(std::size_t bytes) BTS_REQUIRES(mutex_)
    {
        outstanding_buffers_ += 1;
        outstanding_bytes_ += bytes;
        peak_buffers_ = std::max(peak_buffers_, outstanding_buffers_);
        peak_bytes_ = std::max(peak_bytes_, outstanding_bytes_);
    }

    void
    check_in(std::size_t bytes) BTS_REQUIRES(mutex_)
    {
        // Saturate rather than underflow: a buffer that grew past its
        // acquired capacity (vector reallocation) returns more bytes
        // than were checked out.
        outstanding_buffers_ -= outstanding_buffers_ > 0 ? 1 : 0;
        outstanding_bytes_ -= std::min(outstanding_bytes_, bytes);
    }

    Mutex mutex_;
    std::vector<U64Buffer> free_ BTS_GUARDED_BY(mutex_);
    std::size_t cached_bytes_ BTS_GUARDED_BY(mutex_) = 0;
    std::size_t hits_ BTS_GUARDED_BY(mutex_) = 0;
    std::size_t misses_ BTS_GUARDED_BY(mutex_) = 0;
    std::size_t outstanding_buffers_ BTS_GUARDED_BY(mutex_) = 0;
    std::size_t outstanding_bytes_ BTS_GUARDED_BY(mutex_) = 0;
    std::size_t peak_buffers_ BTS_GUARDED_BY(mutex_) = 0;
    std::size_t peak_bytes_ BTS_GUARDED_BY(mutex_) = 0;
};

/**
 * Leaked singleton: RnsPoly destructors in static objects (cached test
 * environments, benchmark fixtures) release buffers during program
 * teardown, so the pool must outlive every static. The pointer itself
 * stays reachable, so leak checkers do not flag the cached buffers.
 */
BufferPool&
pool()
{
    static BufferPool* p = new BufferPool;
    return *p;
}

} // namespace

U64Buffer
acquire_buffer(std::size_t min_capacity)
{
    // kWorkspace is the highest-frequency category (every scratch
    // buffer of every kernel); keep it out of the default trace masks
    // unless pool behaviour itself is under study.
    BTS_TRACE_INSTANT(kWorkspace, "ws.acquire",
                      min_capacity * sizeof(u64));
    return pool().acquire(min_capacity);
}

void
release_buffer(U64Buffer&& buf)
{
    BTS_TRACE_INSTANT(kWorkspace, "ws.release",
                      buf.capacity() * sizeof(u64));
    pool().release(std::move(buf));
}

WorkspaceStats
workspace_stats()
{
    return pool().stats();
}

void
reset_workspace_stats()
{
    pool().reset_stats();
}

} // namespace bts
