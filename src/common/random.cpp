#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace bts {

namespace {

u64
splitmix64(u64& state)
{
    u64 z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256::Xoshiro256(u64 seed)
{
    u64 sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
}

u64
Xoshiro256::next()
{
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

u64
Xoshiro256::uniform(u64 bound)
{
    BTS_ASSERT(bound > 0, "uniform bound must be positive");
    // Rejection sampling on the top of the range removes modulo bias.
    const u64 threshold = (0 - bound) % bound;
    for (;;) {
        const u64 r = next();
        if (r >= threshold) return r % bound;
    }
}

double
Xoshiro256::uniform_real()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<u64>
Sampler::uniform_poly(std::size_t n, u64 modulus)
{
    std::vector<u64> out(n);
    for (auto& c : out) c = rng_.uniform(modulus);
    return out;
}

std::vector<i64>
Sampler::gaussian_poly(std::size_t n, double sigma)
{
    std::vector<i64> out(n);
    for (std::size_t i = 0; i < n; i += 2) {
        // Box-Muller transform; draw two at a time.
        double u1 = rng_.uniform_real();
        while (u1 == 0.0) u1 = rng_.uniform_real();
        const double u2 = rng_.uniform_real();
        const double mag = sigma * std::sqrt(-2.0 * std::log(u1));
        out[i] = static_cast<i64>(std::llround(mag * std::cos(2 * M_PI * u2)));
        if (i + 1 < n) {
            out[i + 1] =
                static_cast<i64>(std::llround(mag * std::sin(2 * M_PI * u2)));
        }
    }
    return out;
}

std::vector<i64>
Sampler::ternary_poly(std::size_t n)
{
    std::vector<i64> out(n);
    for (auto& c : out) c = static_cast<i64>(rng_.uniform(3)) - 1;
    return out;
}

std::vector<i64>
Sampler::sparse_ternary_poly(std::size_t n, int hamming_weight)
{
    BTS_CHECK(hamming_weight >= 0 &&
              static_cast<std::size_t>(hamming_weight) <= n,
              "hamming weight out of range");
    std::vector<i64> out(n, 0);
    int placed = 0;
    while (placed < hamming_weight) {
        const std::size_t pos = rng_.uniform(n);
        if (out[pos] != 0) continue;
        out[pos] = (rng_.next() & 1) ? 1 : -1;
        ++placed;
    }
    return out;
}

} // namespace bts
