#include "common/big_uint.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace bts {

BigUInt::BigUInt(u64 value)
{
    if (value != 0) limbs_.push_back(value);
}

void
BigUInt::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

int
BigUInt::bit_length() const
{
    if (limbs_.empty()) return 0;
    int bits = 64 * static_cast<int>(limbs_.size() - 1);
    u64 top = limbs_.back();
    while (top) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

BigUInt
BigUInt::add(const BigUInt& other) const
{
    BigUInt out;
    const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
    out.limbs_.resize(n + 1, 0);
    u128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        u128 sum = carry;
        if (i < limbs_.size()) sum += limbs_[i];
        if (i < other.limbs_.size()) sum += other.limbs_[i];
        out.limbs_[i] = static_cast<u64>(sum);
        carry = sum >> 64;
    }
    out.limbs_[n] = static_cast<u64>(carry);
    out.trim();
    return out;
}

BigUInt
BigUInt::sub(const BigUInt& other) const
{
    BTS_ASSERT(compare(other) >= 0, "BigUInt::sub would underflow");
    BigUInt out;
    out.limbs_.resize(limbs_.size(), 0);
    i128 borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        i128 diff = static_cast<i128>(limbs_[i]) - borrow;
        if (i < other.limbs_.size()) diff -= other.limbs_[i];
        if (diff < 0) {
            diff += (static_cast<i128>(1) << 64);
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.limbs_[i] = static_cast<u64>(diff);
    }
    out.trim();
    return out;
}

BigUInt
BigUInt::mul(const BigUInt& other) const
{
    if (is_zero() || other.is_zero()) return BigUInt();
    BigUInt out;
    out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        u128 carry = 0;
        for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
            u128 cur = static_cast<u128>(limbs_[i]) * other.limbs_[j] +
                       out.limbs_[i + j] + carry;
            out.limbs_[i + j] = static_cast<u64>(cur);
            carry = cur >> 64;
        }
        std::size_t k = i + other.limbs_.size();
        while (carry) {
            u128 cur = static_cast<u128>(out.limbs_[k]) + carry;
            out.limbs_[k] = static_cast<u64>(cur);
            carry = cur >> 64;
            ++k;
        }
    }
    out.trim();
    return out;
}

BigUInt
BigUInt::mul_word(u64 scalar) const
{
    return mul(BigUInt(scalar));
}

u64
BigUInt::mod_word(u64 m) const
{
    BTS_CHECK(m != 0, "modulus must be nonzero");
    u128 rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        rem = ((rem << 64) | limbs_[i]) % m;
    }
    return static_cast<u64>(rem);
}

std::pair<BigUInt, u64>
BigUInt::divmod_word(u64 divisor) const
{
    BTS_CHECK(divisor != 0, "division by zero");
    BigUInt quot;
    quot.limbs_.assign(limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        u128 cur = (rem << 64) | limbs_[i];
        quot.limbs_[i] = static_cast<u64>(cur / divisor);
        rem = cur % divisor;
    }
    quot.trim();
    return {quot, static_cast<u64>(rem)};
}

int
BigUInt::compare(const BigUInt& other) const
{
    if (limbs_.size() != other.limbs_.size()) {
        return limbs_.size() < other.limbs_.size() ? -1 : 1;
    }
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != other.limbs_[i]) {
            return limbs_[i] < other.limbs_[i] ? -1 : 1;
        }
    }
    return 0;
}

BigUInt
BigUInt::half() const
{
    BigUInt out;
    out.limbs_.assign(limbs_.size(), 0);
    u64 carry = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        out.limbs_[i] = (limbs_[i] >> 1) | (carry << 63);
        carry = limbs_[i] & 1;
    }
    out.trim();
    return out;
}

double
BigUInt::to_double() const
{
    double out = 0.0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        out = out * 0x1.0p64 + static_cast<double>(limbs_[i]);
    }
    return out;
}

std::string
BigUInt::to_string() const
{
    if (is_zero()) return "0";
    BigUInt cur = *this;
    std::string digits;
    while (!cur.is_zero()) {
        auto [q, r] = cur.divmod_word(10);
        digits.push_back(static_cast<char>('0' + r));
        cur = q;
    }
    std::reverse(digits.begin(), digits.end());
    return digits;
}

BigUInt
BigUInt::product(const std::vector<u64>& factors)
{
    BigUInt out(1);
    for (u64 f : factors) out = out.mul_word(f);
    return out;
}

} // namespace bts
