/**
 * @file
 * Bit-twiddling helpers used by the NTT, encoder and simulator.
 */
#pragma once

#include <bit>

#include "common/check.h"
#include "common/types.h"

namespace bts {

/** @return true iff @p x is a power of two (and nonzero). */
constexpr bool
is_power_of_two(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** @return floor(log2(x)); @p x must be nonzero. */
constexpr int
log2_floor(u64 x)
{
    return 63 - std::countl_zero(x);
}

/** @return log2(x) for a power-of-two @p x. */
constexpr int
log2_exact(u64 x)
{
    return log2_floor(x);
}

/** @return ceil(log2(x)); log2_ceil(1) == 0. */
constexpr int
log2_ceil(u64 x)
{
    return x <= 1 ? 0 : log2_floor(x - 1) + 1;
}

/** @return ceil(a / b) for positive integers. */
constexpr u64
ceil_div(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/**
 * Reverse the low @p bits bits of @p x (used for bit-reversed NTT
 * twiddle-factor tables and the encoder's special FFT).
 */
constexpr u64
bit_reverse(u64 x, int bits)
{
    u64 r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | ((x >> i) & 1);
    }
    return r;
}

/**
 * Apply the bit-reversal permutation in place to a power-of-two-sized
 * array view.
 */
template <typename T>
void
bit_reverse_permute(T* data, std::size_t n)
{
    const int bits = log2_exact(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = bit_reverse(i, bits);
        if (i < j) std::swap(data[i], data[j]);
    }
}

} // namespace bts
