/**
 * @file
 * Reusable u64 scratch-buffer pool.
 *
 * Key-switching and rescaling are called millions of times per
 * bootstrap; before this pool every call allocated (and zeroed) fresh
 * `std::vector<u64>` scratch — the software analogue of the paper's
 * observation that HE working sets must live in managed on-chip storage
 * rather than be re-fetched per op (Section 4.2). All RnsPoly backing
 * buffers and the explicit Workspace scratch used by rescale/BConv
 * recycle through one process-wide free list: after warm-up, steady-state
 * evaluator traffic performs no heap allocation for polynomial data.
 *
 * Thread safety: acquire/release take one short mutex-protected pop/push
 * each; buffers themselves are exclusively owned between the two calls.
 * The pool is bounded (count and bytes); overflow buffers are simply
 * freed to the allocator.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/span.h"
#include "common/types.h"

namespace bts {

/**
 * Allocator whose default-construct is a no-op: resize() on a
 * U64Buffer leaves the new elements uninitialized instead of
 * memsetting them — scratch that is fully overwritten before being
 * read (the lift/NTT/MMAU phases) must not pay a zero-fill per
 * acquisition. Value-construction (assign(n, 0), push_back) still
 * initializes normally, so owners that need zeroed storage ask for it
 * explicitly.
 */
template <typename T>
struct UninitAllocator : std::allocator<T>
{
    template <typename U>
    struct rebind
    {
        using other = UninitAllocator<U>;
    };

    template <typename U>
    void
    construct(U* /*p*/) noexcept
    {
        // Default-init: intentionally left uninitialized — only sound
        // for types with no construction invariants.
        static_assert(std::is_trivially_default_constructible_v<U>,
                      "UninitAllocator requires trivial default init");
    }

    template <typename U, typename... Args>
    void
    construct(U* p, Args&&... args)
    {
        ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
};

/** Pooled flat u64 storage (resize does not zero; assign does). */
using U64Buffer = std::vector<u64, UninitAllocator<u64>>;

/**
 * Take a buffer with capacity >= @p min_capacity from the pool (or the
 * heap on a miss). The buffer is returned with size() == 0; contents
 * beyond what the caller writes are unspecified.
 */
U64Buffer acquire_buffer(std::size_t min_capacity);

/** Return a buffer to the pool (its contents become unspecified). */
void release_buffer(U64Buffer&& buf);

/** Pool observability for tests and capacity planning. hits/misses
 *  count since process start (or the last reset); the outstanding_*
 *  gauges track buffers currently checked out of the pool, and the
 *  peak_* high-water marks record the largest outstanding footprint
 *  seen — the measured side of the static liveness analysis
 *  (runtime/analysis/resource.h). */
struct WorkspaceStats
{
    std::size_t hits = 0;   //!< acquires served from the free list
    std::size_t misses = 0; //!< acquires that hit the allocator
    std::size_t outstanding_buffers = 0; //!< acquired, not yet released
    std::size_t outstanding_bytes = 0;   //!< their capacity in bytes
    std::size_t peak_buffers = 0; //!< high-water outstanding_buffers
    std::size_t peak_bytes = 0;   //!< high-water outstanding_bytes
};

WorkspaceStats workspace_stats();

/** Reset hits/misses and rebase the high-water marks to the CURRENT
 *  outstanding footprint (the gauges themselves are not touched —
 *  buffers already checked out stay accounted). Call before a measured
 *  region to get its peak in isolation. */
void reset_workspace_stats();

/**
 * RAII scratch array of @p size u64 (unspecified initial contents),
 * drawn from and returned to the pool.
 */
class Workspace
{
  public:
    explicit Workspace(std::size_t size) : buf_(acquire_buffer(size))
    {
        buf_.resize(size);
    }
    ~Workspace() { release_buffer(std::move(buf_)); }

    Workspace(const Workspace&) = delete;
    Workspace& operator=(const Workspace&) = delete;

    std::size_t size() const { return buf_.size(); }
    u64* data() { return buf_.data(); }
    const u64* data() const { return buf_.data(); }
    Span span() { return {buf_.data(), buf_.size()}; }
    u64& operator[](std::size_t i) { return buf_[i]; }

  private:
    U64Buffer buf_;
};

} // namespace bts
