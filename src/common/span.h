/**
 * @file
 * Lightweight residue-vector views over flat RnsPoly storage.
 *
 * RnsPoly stores all residue polynomials in one contiguous limb-major
 * buffer (the paper's N x (l+1) residue matrix laid out row-per-limb);
 * component accessors hand out non-owning views instead of per-limb
 * vectors. The views are deliberately tiny — pointer + length — so hot
 * loops see plain arrays and the 2-D (limb x coefficient-block) tiling
 * can slice them freely.
 *
 * Invalidation rule: a view is valid until the owning polynomial grows
 * (push_component may reallocate) or is destroyed. Shrinking (truncate,
 * pop_component) keeps views over the surviving limbs valid.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace bts {

/** Read-only view of a residue vector (length-N row of u64). */
class ConstSpan
{
  public:
    ConstSpan() = default;
    ConstSpan(const u64* data, std::size_t size) : data_(data), size_(size)
    {}
    /*implicit*/ ConstSpan(const std::vector<u64>& v)
        : data_(v.data()), size_(v.size())
    {}

    const u64* data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const u64& operator[](std::size_t i) const { return data_[i]; }
    const u64* begin() const { return data_; }
    const u64* end() const { return data_ + size_; }

    /** Materialize an owning copy (for APIs that need a vector). */
    std::vector<u64> to_vector() const
    {
        return std::vector<u64>(data_, data_ + size_);
    }

  private:
    const u64* data_ = nullptr;
    std::size_t size_ = 0;
};

/** Mutable view of a residue vector. */
class Span
{
  public:
    Span() = default;
    Span(u64* data, std::size_t size) : data_(data), size_(size) {}
    /*implicit*/ Span(std::vector<u64>& v) : data_(v.data()), size_(v.size())
    {}

    Span(const Span&) = default;
    // No copy assignment: it would rebind the view, so the pre-flat
    // idiom `poly.component(i) = values` would compile as a silent
    // no-op instead of a deep copy. Use copy_from() for elements.
    Span& operator=(const Span&) = delete;

    /*implicit*/ operator ConstSpan() const { return {data_, size_}; }

    u64* data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    u64& operator[](std::size_t i) const { return data_[i]; }
    u64* begin() const { return data_; }
    u64* end() const { return data_ + size_; }

    std::vector<u64> to_vector() const
    {
        return std::vector<u64>(data_, data_ + size_);
    }

    /** Element-wise copy; sizes must match and ranges must not overlap
     *  partially (identical or disjoint). */
    void
    copy_from(ConstSpan src) const
    {
        BTS_CHECK(src.size() == size_, "span size mismatch");
        if (src.data() == data_) return;
        for (std::size_t i = 0; i < size_; ++i) data_[i] = src[i];
    }

    void
    fill(u64 v) const
    {
        for (std::size_t i = 0; i < size_; ++i) data_[i] = v;
    }

  private:
    u64* data_ = nullptr;
    std::size_t size_ = 0;
};

inline bool
operator==(ConstSpan a, ConstSpan b)
{
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) return false;
    }
    return true;
}

inline bool
operator!=(ConstSpan a, ConstSpan b)
{
    return !(a == b);
}

} // namespace bts
