/**
 * @file
 * Workload trace generators for the evaluation (Section 6.2):
 * the bootstrapping plan, the T_mult,a/slot microbenchmark (Eq. 8),
 * HELR logistic regression [39], channel-packed ResNet-20 [59, 50],
 * and the 2-way sorting network [42].
 *
 * These generators reproduce the published op *structure* (op mix,
 * level schedule, bootstrap placement); data values never matter to the
 * simulator. Bootstrap counts per instance are the paper's own Table 6
 * calibration target.
 *
 * Every generator here now has a runtime::Graph port that also
 * *executes* on the functional library:
 *   - tmult_microbench -> runtime/graph_workloads.h, pinned op-for-op
 *     (levels, ids, tags) by tests/runtime/test_lowering.cpp;
 *   - helr / resnet20 / sorting -> runtime/apps/{helr,resnet,sort}.h,
 *     pinned by op-kind histogram + bootstrap count per Table 4
 *     instance in tests/runtime/test_apps_pin.cpp.
 * A structural edit here must be mirrored in the graph port (and vice
 * versa) — the pin failing is the validation loop working as intended.
 */
#pragma once

#include "hwparams/instance.h"
#include "sim/op_trace.h"

namespace bts::workloads {

using hw::CkksInstance;
using sim::Trace;

/**
 * One full bootstrapping: ModRaise, 3 CoeffToSlot stages, conjugation,
 * EvalMod on both components, 3 SlotToCoeff stages. Appends to
 * @p builder starting from a level-0 ciphertext @p ct_id and returns
 * the refreshed ciphertext id (at level L - L_boot).
 */
int append_bootstrap(sim::TraceBuilder& builder, const CkksInstance& inst,
                     int ct_id);

/** The T_mult,a/slot microbenchmark: one bootstrap plus HMult+HRescale
 *  down the usable levels (Eq. 8's numerator). */
Trace tmult_microbench(const CkksInstance& inst);

/** HELR: 30 iterations of batch-1024 logistic-regression training
 *  (inner products, degree-3 sigmoid, gradient step; 5 levels/iter). */
Trace helr(const CkksInstance& inst, int iterations = 30);

/** Channel-packed ResNet-20 inference on one encrypted image. */
Trace resnet20(const CkksInstance& inst);

/** 2-way bitonic sorting network over 2^14 encrypted elements using a
 *  masked compare-exchange (sign polynomial iterated @p sign_rounds
 *  times per stage). */
Trace sorting(const CkksInstance& inst, int log_elements = 14,
              int sign_rounds = 8);

} // namespace bts::workloads
