#include "workloads/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/bit_ops.h"
#include "common/check.h"

namespace bts::workloads {

using sim::HeOpKind;
using sim::TraceBuilder;

namespace {

/** Radix bit-split of the 3-stage FFT decomposition. */
void
radix_bits(const CkksInstance& inst, int out[3])
{
    const int log_slots = log2_exact(inst.slots());
    out[0] = (log_slots + 2) / 3;
    out[1] = (log_slots + 1) / 3;
    out[2] = log_slots / 3;
}

/** One decomposed linear-transform stage (CtS or StC). */
int
append_lt_stage(TraceBuilder& b, const CkksInstance& /*inst*/, int ct,
                int level, int radix, int rot_seed)
{
    // BSGS over the stage's `radix` diagonals: ~sqrt(radix) baby
    // rotations stay LIVE throughout the stage (this is the ct working
    // set that pressures the scratchpad in Fig. 7a/Fig. 10), diagonal
    // products and partial sums accumulate in place, and each giant
    // step adds one more rotation.
    const int babies = static_cast<int>(std::ceil(std::sqrt(radix)));
    const int giants = (radix + babies - 1) / babies;
    std::vector<int> baby_ids;
    for (int r = 0; r < babies; ++r) {
        baby_ids.push_back(
            b.add(HeOpKind::kHRot, level, {ct}, rot_seed + r + 1, true));
    }
    const int prod = b.fresh_id();
    int acc = -1;
    for (int g = 0; g < giants; ++g) {
        for (int d = 0; d < babies && g * babies + d < radix; ++d) {
            b.add_into(prod, HeOpKind::kPMult, level, {baby_ids[d]}, 0,
                       true);
            if (acc < 0) {
                acc = b.add(HeOpKind::kHAdd, level, {prod, prod}, 0, true);
            } else {
                b.add_into(acc, HeOpKind::kHAdd, level, {acc, prod}, 0,
                           true);
            }
        }
        if (g > 0) {
            b.add_into(acc, HeOpKind::kHRot, level, {acc},
                       rot_seed + 50 + g, true);
        }
    }
    return b.add_into(acc, HeOpKind::kHRescale, level, {acc}, 0, true);
}

/** EvalMod: PS-BSGS Chebyshev evaluation spread over its level span. */
int
append_eval_mod(TraceBuilder& b, const CkksInstance& inst, int ct,
                int top_level, int levels)
{
    constexpr int kHMults = 15; // babies + giants + recombination
    // The Chebyshev power basis keeps ~8 T_j ciphertexts live.
    std::vector<int> basis;
    for (int t = 0; t < 8; ++t) basis.push_back(b.fresh_id());
    for (int m = 0; m < kHMults; ++m) {
        const int lvl =
            std::max(1, top_level - (m * levels) / kHMults);
        const int lhs = basis[m % basis.size()];
        const int rhs = basis[(m + 1) % basis.size()];
        b.add_into(ct, HeOpKind::kHMult, lvl, {lhs, rhs}, 0, true);
        b.add_into(ct, HeOpKind::kHRescale, lvl, {ct}, 0, true);
        if (m % 3 == 0) {
            b.add_into(ct, HeOpKind::kCMult, lvl, {ct}, 0, true);
            b.add_into(ct, HeOpKind::kCAdd, lvl, {ct}, 0, true);
        }
        b.add_into(basis[m % basis.size()], HeOpKind::kHAdd, lvl,
                   {ct, ct}, 0, true);
    }
    (void)inst;
    return ct;
}

} // namespace

int
append_bootstrap(TraceBuilder& b, const CkksInstance& inst, int ct_id)
{
    const int l_top = inst.max_level;
    int bits[3];
    radix_bits(inst, bits);

    // 1. ModRaise.
    int ct = b.add(HeOpKind::kModRaise, l_top, {ct_id}, 0, true);

    // 2. CoeffToSlot: three decomposed stages.
    for (int s = 0; s < 3; ++s) {
        ct = append_lt_stage(b, inst, ct, l_top - s, 1 << bits[s],
                             s * 100);
    }

    // 3. Real/imaginary split.
    const int conj = b.add(HeOpKind::kConj, l_top - 3, {ct}, 0, true);
    const int u_re = b.add(HeOpKind::kHAdd, l_top - 3, {ct, conj}, 0, true);
    const int u_im = b.add(HeOpKind::kHAdd, l_top - 3, {ct, conj}, 0, true);

    // 4. EvalMod on both components.
    const int em_levels = inst.boot_levels - 6;
    const int em_top = l_top - 3;
    const int v_re = append_eval_mod(b, inst, u_re, em_top, em_levels);
    const int v_im = append_eval_mod(b, inst, u_im, em_top, em_levels);
    int merged = b.add(HeOpKind::kHAdd, em_top - em_levels,
                       {v_re, v_im}, 0, true);

    // 5. SlotToCoeff: three stages at the bottom of the budget.
    const int stc_top = l_top - inst.boot_levels + 3;
    for (int s = 0; s < 3; ++s) {
        merged = append_lt_stage(b, inst, merged, stc_top - s,
                                 1 << bits[s], 300 + s * 100);
    }
    b.trace().bootstrap_count += 1;
    return merged;
}

Trace
tmult_microbench(const CkksInstance& inst)
{
    BTS_CHECK(inst.usable_levels() >= 1, "instance cannot bootstrap");
    TraceBuilder b("tmult_microbench/" + inst.name);
    int ct = b.fresh_id();
    ct = append_bootstrap(b, inst, ct);
    // Eq. 8's numerator: HMult + HRescale down the usable levels.
    const int other = b.fresh_id();
    for (int lvl = inst.usable_levels(); lvl >= 1; --lvl) {
        ct = b.add(HeOpKind::kHMult, lvl, {ct, other});
        ct = b.add(HeOpKind::kHRescale, lvl, {ct});
    }
    return b.trace();
}

Trace
helr(const CkksInstance& inst, int iterations)
{
    TraceBuilder b("helr/" + inst.name);
    constexpr int kLevelsPerIter = 4;
    constexpr int kDataCts = 3; // 1024 x 196 batch needs 3 packed cts

    int weights = b.fresh_id();
    int level = inst.usable_levels();
    for (int iter = 0; iter < iterations; ++iter) {
        if (level < kLevelsPerIter + 1) {
            // Refresh the model state.
            weights = append_bootstrap(b, inst, weights);
            level = inst.usable_levels();
        }
        // Inner products X * w: rotations + plaintext batch multiplies.
        std::vector<int> partials;
        for (int c = 0; c < kDataCts; ++c) {
            int acc = b.add(HeOpKind::kPMult, level, {weights});
            for (int r = 0; r < 8; ++r) { // log-tree sum over 196 features
                const int rot =
                    b.add(HeOpKind::kHRot, level, {acc}, 1 << r);
                acc = b.add(HeOpKind::kHAdd, level, {acc, rot});
            }
            partials.push_back(acc);
        }
        int grad = partials[0];
        for (int c = 1; c < kDataCts; ++c) {
            grad = b.add(HeOpKind::kHAdd, level, {grad, partials[c]});
        }
        b.add(HeOpKind::kHRescale, level, {grad});
        level -= 1;

        // Degree-3 sigmoid: two squarings' worth of depth.
        for (int d = 0; d < 2; ++d) {
            grad = b.add(HeOpKind::kHMult, level, {grad, grad});
            grad = b.add(HeOpKind::kCMult, level, {grad});
            grad = b.add(HeOpKind::kHRescale, level, {grad});
            level -= 1;
        }

        // Weight update: gradient x learning rate, then accumulate.
        grad = b.add(HeOpKind::kCMult, level, {grad});
        grad = b.add(HeOpKind::kHRescale, level, {grad});
        level -= 1;
        weights = b.add(HeOpKind::kHAdd, level, {weights, grad});
    }
    return b.trace();
}

Trace
resnet20(const CkksInstance& inst)
{
    TraceBuilder b("resnet20/" + inst.name);
    constexpr int kLayers = 20;

    int act = b.fresh_id(); // channel-packed activation ciphertext
    int level = inst.usable_levels();

    // A layer burst: (level cost, op emitter).
    auto ensure = [&](int needed) {
        if (level < needed + 1) {
            act = append_bootstrap(b, inst, act);
            level = inst.usable_levels();
        }
    };

    for (int layer = 0; layer < kLayers; ++layer) {
        // Convolution (channel packing [50]): 3x3 kernel -> 9 rotations
        // x 2 halves, plaintext weight multiplies, tree adds; 3 levels.
        for (int step = 0; step < 3; ++step) {
            ensure(1);
            for (int r = 0; r < 6; ++r) {
                const int rot =
                    b.add(HeOpKind::kHRot, level, {act}, r + 1);
                const int prod = b.add(HeOpKind::kPMult, level, {rot});
                act = b.add(HeOpKind::kHAdd, level, {act, prod});
            }
            act = b.add(HeOpKind::kHRescale, level, {act});
            level -= 1;
        }
        // BatchNorm fold: scalar multiply-add, 2 levels.
        for (int step = 0; step < 2; ++step) {
            ensure(1);
            act = b.add(HeOpKind::kCMult, level, {act});
            act = b.add(HeOpKind::kCAdd, level, {act});
            act = b.add(HeOpKind::kHRescale, level, {act});
            level -= 1;
        }
        // ReLU: composite minimax polynomial (deg {15,15,27} [57]),
        // 14 levels of squaring-dominated evaluation.
        for (int step = 0; step < 14; ++step) {
            ensure(1);
            act = b.add(HeOpKind::kHMult, level, {act, act});
            if (step % 2 == 0) {
                act = b.add(HeOpKind::kCAdd, level, {act});
            }
            act = b.add(HeOpKind::kHRescale, level, {act});
            level -= 1;
        }
    }
    // Final pooling + FC layer.
    for (int r = 0; r < 6; ++r) {
        if (level < 2) {
            act = append_bootstrap(b, inst, act);
            level = inst.usable_levels();
        }
        const int rot = b.add(HeOpKind::kHRot, level, {act}, 1 << r);
        act = b.add(HeOpKind::kHAdd, level, {act, rot});
    }
    b.add(HeOpKind::kPMult, level, {act});
    return b.trace();
}

Trace
sorting(const CkksInstance& inst, int log_elements)
{
    TraceBuilder b("sorting/" + inst.name);
    // 2-way bitonic network: k(k+1)/2 compare-exchange stages.
    const int stages = log_elements * (log_elements + 1) / 2;

    int values = b.fresh_id();
    int level = inst.usable_levels();
    auto ensure = [&](int needed) {
        if (level < needed + 1) {
            values = append_bootstrap(b, inst, values);
            level = inst.usable_levels();
        }
    };

    for (int stage = 0; stage < stages; ++stage) {
        // Comparison: composite minimax sign polynomial f^(k) o g^(k)
        // [42], ~10 rounds of a degree-7 kernel = 30 levels, evaluated
        // on the rotated pair.
        ensure(2);
        const int rot = b.add(HeOpKind::kHRot, level, {values},
                              1 << (stage % log_elements));
        int cmp = b.add(HeOpKind::kHAdd, level, {values, rot});
        for (int round = 0; round < 10; ++round) {
            for (int d = 0; d < 3; ++d) {
                ensure(1);
                b.add_into(cmp, HeOpKind::kHMult, level, {cmp, cmp});
                b.add_into(cmp, HeOpKind::kCMult, level, {cmp});
                b.add_into(cmp, HeOpKind::kHRescale, level, {cmp});
                level -= 1;
            }
        }
        // Swap: values' = cmp*max + (1-cmp)*min — two HMults.
        ensure(2);
        const int hi = b.add(HeOpKind::kHMult, level, {cmp, values});
        const int lo = b.add(HeOpKind::kHMult, level, {cmp, rot});
        b.add_into(values, HeOpKind::kHAdd, level, {hi, lo});
        b.add_into(values, HeOpKind::kHRescale, level, {values});
        level -= 2;
    }
    return b.trace();
}

} // namespace bts::workloads
