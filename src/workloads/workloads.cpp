#include "workloads/workloads.h"

#include <algorithm>
#include <cmath>

#include "common/bit_ops.h"
#include "common/check.h"

namespace bts::workloads {

using sim::HeOpKind;
using sim::TraceBuilder;

namespace {

/** Radix bit-split of the 3-stage FFT decomposition. */
void
radix_bits(const CkksInstance& inst, int out[3])
{
    const int log_slots = log2_exact(inst.slots());
    out[0] = (log_slots + 2) / 3;
    out[1] = (log_slots + 1) / 3;
    out[2] = log_slots / 3;
}

/** One decomposed linear-transform stage (CtS or StC). */
int
append_lt_stage(TraceBuilder& b, const CkksInstance& /*inst*/, int ct,
                int level, int radix, int rot_seed)
{
    // BSGS over the stage's `radix` diagonals: ~sqrt(radix) baby
    // rotations stay LIVE throughout the stage (this is the ct working
    // set that pressures the scratchpad in Fig. 7a/Fig. 10), diagonal
    // products and partial sums accumulate in place, and each giant
    // step adds one more rotation.
    const int babies = static_cast<int>(std::ceil(std::sqrt(radix)));
    const int giants = (radix + babies - 1) / babies;
    std::vector<int> baby_ids;
    for (int r = 0; r < babies; ++r) {
        baby_ids.push_back(
            b.add(HeOpKind::kHRot, level, {ct}, rot_seed + r + 1, true));
    }
    const int prod = b.fresh_id();
    int acc = -1;
    for (int g = 0; g < giants; ++g) {
        for (int d = 0; d < babies && g * babies + d < radix; ++d) {
            b.add_into(prod, HeOpKind::kPMult, level, {baby_ids[d]}, 0,
                       true);
            if (acc < 0) {
                acc = b.add(HeOpKind::kHAdd, level, {prod, prod}, 0, true);
            } else {
                b.add_into(acc, HeOpKind::kHAdd, level, {acc, prod}, 0,
                           true);
            }
        }
        if (g > 0) {
            b.add_into(acc, HeOpKind::kHRot, level, {acc},
                       rot_seed + 50 + g, true);
        }
    }
    return b.add_into(acc, HeOpKind::kHRescale, level, {acc}, 0, true);
}

/** EvalMod: PS-BSGS Chebyshev evaluation spread over its level span. */
int
append_eval_mod(TraceBuilder& b, const CkksInstance& inst, int ct,
                int top_level, int levels)
{
    constexpr int kHMults = 15; // babies + giants + recombination
    // The Chebyshev power basis keeps ~8 T_j ciphertexts live.
    std::vector<int> basis;
    for (int t = 0; t < 8; ++t) basis.push_back(b.fresh_id());
    for (int m = 0; m < kHMults; ++m) {
        const int lvl =
            std::max(1, top_level - (m * levels) / kHMults);
        const int lhs = basis[m % basis.size()];
        const int rhs = basis[(m + 1) % basis.size()];
        b.add_into(ct, HeOpKind::kHMult, lvl, {lhs, rhs}, 0, true);
        b.add_into(ct, HeOpKind::kHRescale, lvl, {ct}, 0, true);
        if (m % 3 == 0) {
            b.add_into(ct, HeOpKind::kCMult, lvl, {ct}, 0, true);
            b.add_into(ct, HeOpKind::kCAdd, lvl, {ct}, 0, true);
        }
        b.add_into(basis[m % basis.size()], HeOpKind::kHAdd, lvl,
                   {ct, ct}, 0, true);
    }
    (void)inst;
    return ct;
}

} // namespace

int
append_bootstrap(TraceBuilder& b, const CkksInstance& inst, int ct_id)
{
    const int l_top = inst.max_level;
    int bits[3];
    radix_bits(inst, bits);

    // 1. ModRaise.
    int ct = b.add(HeOpKind::kModRaise, l_top, {ct_id}, 0, true);

    // 2. CoeffToSlot: three decomposed stages.
    for (int s = 0; s < 3; ++s) {
        ct = append_lt_stage(b, inst, ct, l_top - s, 1 << bits[s],
                             s * 100);
    }

    // 3. Real/imaginary split.
    const int conj = b.add(HeOpKind::kConj, l_top - 3, {ct}, 0, true);
    const int u_re = b.add(HeOpKind::kHAdd, l_top - 3, {ct, conj}, 0, true);
    const int u_im = b.add(HeOpKind::kHAdd, l_top - 3, {ct, conj}, 0, true);

    // 4. EvalMod on both components.
    const int em_levels = inst.boot_levels - 6;
    const int em_top = l_top - 3;
    const int v_re = append_eval_mod(b, inst, u_re, em_top, em_levels);
    const int v_im = append_eval_mod(b, inst, u_im, em_top, em_levels);
    int merged = b.add(HeOpKind::kHAdd, em_top - em_levels,
                       {v_re, v_im}, 0, true);

    // 5. SlotToCoeff: three stages at the bottom of the budget.
    const int stc_top = l_top - inst.boot_levels + 3;
    for (int s = 0; s < 3; ++s) {
        merged = append_lt_stage(b, inst, merged, stc_top - s,
                                 1 << bits[s], 300 + s * 100);
    }
    b.trace().bootstrap_count += 1;
    return merged;
}

Trace
tmult_microbench(const CkksInstance& inst)
{
    BTS_CHECK(inst.usable_levels() >= 1, "instance cannot bootstrap");
    TraceBuilder b("tmult_microbench/" + inst.name);
    int ct = b.fresh_id();
    ct = append_bootstrap(b, inst, ct);
    // Eq. 8's numerator: HMult + HRescale down the usable levels.
    const int other = b.fresh_id();
    for (int lvl = inst.usable_levels(); lvl >= 1; --lvl) {
        ct = b.add(HeOpKind::kHMult, lvl, {ct, other});
        ct = b.add(HeOpKind::kHRescale, lvl, {ct});
    }
    return b.trace();
}

Trace
helr(const CkksInstance& inst, int iterations)
{
    // One training iteration (the circuit runtime/apps/helr.cpp also
    // executes functionally; tests/runtime/test_apps_pin.cpp pins the
    // two against each other):
    //   u   = sum_c <w, X_c>          inner products, log-tree sums
    //   s   = 0.5 + c1 u + c3 u^3     degree-3 minimax sigmoid
    //   w  += lr * s * Xbar           gradient step (lr in the plaintext)
    // = kLevelsPerIter multiplicative levels per iteration.
    TraceBuilder b("helr/" + inst.name);
    constexpr int kLevelsPerIter = 5;
    constexpr int kDataCts = 3; // 1024 x 196 batch needs 3 packed cts
    constexpr int kLogFeatures = 8;

    int weights = b.fresh_id();
    int lw = inst.usable_levels();
    for (int iter = 0; iter < iterations; ++iter) {
        if (lw < kLevelsPerIter + 1) {
            // Refresh the model state.
            weights = append_bootstrap(b, inst, weights);
            lw = inst.usable_levels();
        }
        // Inner products X * w: rotations + plaintext batch multiplies.
        std::vector<int> partials;
        for (int c = 0; c < kDataCts; ++c) {
            int acc = b.add(HeOpKind::kPMult, lw, {weights});
            for (int r = 0; r < kLogFeatures; ++r) { // sum over features
                const int rot =
                    b.add(HeOpKind::kHRot, lw, {acc}, 1 << r);
                acc = b.add(HeOpKind::kHAdd, lw, {acc, rot});
            }
            partials.push_back(acc);
        }
        int u = partials[0];
        for (int c = 1; c < kDataCts; ++c) {
            u = b.add(HeOpKind::kHAdd, lw, {u, partials[c]});
        }
        u = b.add(HeOpKind::kHRescale, lw, {u});
        const int lu = lw - 1;

        // Degree-3 sigmoid as u * (c3 u^2 + c1) + 0.5.
        int u2 = b.add(HeOpKind::kHMult, lu, {u, u});
        u2 = b.add(HeOpKind::kHRescale, lu, {u2});
        int t = b.add(HeOpKind::kCMult, lu - 1, {u2});
        t = b.add(HeOpKind::kCAdd, lu - 1, {t});
        t = b.add(HeOpKind::kHRescale, lu - 1, {t});
        int sig = b.add(HeOpKind::kHMult, lu - 2, {t, u});
        sig = b.add(HeOpKind::kHRescale, lu - 2, {sig});
        sig = b.add(HeOpKind::kCAdd, lu - 3, {sig});

        // Gradient step: learning rate folded into the batch-mean
        // plaintext, then accumulate into the weights.
        int v = b.add(HeOpKind::kPMult, lu - 3, {sig});
        v = b.add(HeOpKind::kHRescale, lu - 3, {v});
        weights = b.add(HeOpKind::kHAdd, lu - 4, {weights, v});
        lw -= kLevelsPerIter;
    }
    return b.trace();
}

Trace
resnet20(const CkksInstance& inst)
{
    TraceBuilder b("resnet20/" + inst.name);
    constexpr int kLayers = 20;

    int act = b.fresh_id(); // channel-packed activation ciphertext
    int level = inst.usable_levels();

    // A layer burst: (level cost, op emitter).
    auto ensure = [&](int needed) {
        if (level < needed + 1) {
            act = append_bootstrap(b, inst, act);
            level = inst.usable_levels();
        }
    };

    for (int layer = 0; layer < kLayers; ++layer) {
        // Convolution (channel packing [50]): 3x3 kernel -> 9 rotations
        // x 2 halves, plaintext weight multiplies, a product tree (the
        // tap products all sit at delta^2, so they sum scale-
        // consistently before the single rescale); 3 levels.
        for (int step = 0; step < 3; ++step) {
            ensure(1);
            int acc = -1;
            for (int r = 0; r < 6; ++r) {
                const int rot =
                    b.add(HeOpKind::kHRot, level, {act}, r + 1);
                const int prod = b.add(HeOpKind::kPMult, level, {rot});
                acc = acc < 0
                          ? prod
                          : b.add(HeOpKind::kHAdd, level, {acc, prod});
            }
            act = b.add(HeOpKind::kHRescale, level, {acc});
            level -= 1;
        }
        // BatchNorm fold: scalar multiply-add, 2 levels.
        for (int step = 0; step < 2; ++step) {
            ensure(1);
            act = b.add(HeOpKind::kCMult, level, {act});
            act = b.add(HeOpKind::kCAdd, level, {act});
            act = b.add(HeOpKind::kHRescale, level, {act});
            level -= 1;
        }
        // ReLU: composite minimax polynomial (deg {15,15,27} [57]),
        // 14 levels of squaring-dominated evaluation.
        for (int step = 0; step < 14; ++step) {
            ensure(1);
            act = b.add(HeOpKind::kHMult, level, {act, act});
            if (step % 2 == 0) {
                act = b.add(HeOpKind::kCAdd, level, {act});
            }
            act = b.add(HeOpKind::kHRescale, level, {act});
            level -= 1;
        }
    }
    // Final pooling + FC layer.
    for (int r = 0; r < 6; ++r) {
        if (level < 2) {
            act = append_bootstrap(b, inst, act);
            level = inst.usable_levels();
        }
        const int rot = b.add(HeOpKind::kHRot, level, {act}, 1 << r);
        act = b.add(HeOpKind::kHAdd, level, {act, rot});
    }
    b.add(HeOpKind::kPMult, level, {act});
    return b.trace();
}

Trace
sorting(const CkksInstance& inst, int log_elements, int sign_rounds)
{
    // 2-way bitonic network, k(k+1)/2 masked compare-exchange stages.
    // Each stage, per slot i with partner at distance d:
    //   partner = mask_lo * rot(v,+d) + mask_hi * rot(v,-d)
    //   s = v + partner;  dif = v - partner;  sg = sign(dif/2)
    //     (sign via `sign_rounds` iterations of g(x) = 1.5x - 0.5x^3,
    //      the composite-minimax g-kernel of [42]; 3 levels per round)
    //   v' = 0.5*s + eps * sg * 0.5*dif   (eps = +-1 direction mask)
    // The same recipe is built as a runtime graph by
    // runtime/apps/sort.cpp — which also runs it functionally — and
    // tests/runtime/test_apps_pin.cpp pins the two traces against each
    // other (op histogram + bootstrap count). Mirror structural edits.
    TraceBuilder b("sorting/" + inst.name);
    const int usable = inst.usable_levels();

    int v = b.fresh_id();
    int lv = usable; // graph-rule value level of v (min/-1/refresh)

    for (int phase = 1; phase <= log_elements; ++phase) {
        for (int sub = phase - 1; sub >= 0; --sub) {
            const int d = 1 << sub;
            // Entry refresh: the front end burns 2 levels and the
            // select path 2 more below the sign output; lv >= 4 keeps
            // every op at level >= 1.
            if (lv < 4) {
                v = append_bootstrap(b, inst, v);
                lv = usable;
            }
            const int p1 = b.add(HeOpKind::kHRot, lv, {v}, d);
            const int p2 = b.add(HeOpKind::kHRot, lv, {v}, -d);
            const int a1 = b.add(HeOpKind::kPMult, lv, {p1});
            const int a2 = b.add(HeOpKind::kPMult, lv, {p2});
            int partner = b.add(HeOpKind::kHAdd, lv, {a1, a2});
            partner = b.add(HeOpKind::kHRescale, lv, {partner});
            // v +- partner (HSub lowers to the cost-identical HAdd).
            const int s = b.add(HeOpKind::kHAdd, lv - 1, {v, partner});
            const int dif = b.add(HeOpKind::kHAdd, lv - 1, {v, partner});
            int sg = b.add(HeOpKind::kCMult, lv - 1, {dif});
            sg = b.add(HeOpKind::kHRescale, lv - 1, {sg});
            int ls = lv - 2; // sign iterate's own level chain

            for (int round = 0; round < sign_rounds; ++round) {
                if (ls < 4) {
                    // Mid-polynomial refresh of the sign iterate alone.
                    sg = append_bootstrap(b, inst, sg);
                    ls = usable;
                }
                int m = b.add(HeOpKind::kHMult, ls, {sg, sg});
                m = b.add(HeOpKind::kHRescale, ls, {m});
                int t = b.add(HeOpKind::kCMult, ls - 1, {m});
                t = b.add(HeOpKind::kCAdd, ls - 1, {t});
                t = b.add(HeOpKind::kHRescale, ls - 1, {t});
                sg = b.add(HeOpKind::kHMult, ls - 2, {t, sg});
                sg = b.add(HeOpKind::kHRescale, ls - 2, {sg});
                ls -= 3;
            }
            if (ls < 3) {
                sg = append_bootstrap(b, inst, sg);
                ls = usable;
            }

            // Select: v' = 0.5*s + (0.5*eps) * (sg * dif).
            int w1 = b.add(HeOpKind::kCMult, lv - 1, {s});
            w1 = b.add(HeOpKind::kHRescale, lv - 1, {w1});
            const int lmin = std::min(ls, lv - 1);
            int u = b.add(HeOpKind::kHMult, lmin, {sg, dif});
            u = b.add(HeOpKind::kHRescale, lmin, {u});
            int w2 = b.add(HeOpKind::kPMult, lmin - 1, {u});
            w2 = b.add(HeOpKind::kHRescale, lmin - 1, {w2});
            lv = std::min(lv - 2, lmin - 2);
            v = b.add(HeOpKind::kHAdd, lv, {w1, w2});
        }
    }
    return b.trace();
}

} // namespace bts::workloads
