/**
 * @file
 * Full-scale CKKS instance descriptors (Table 4 of the paper).
 *
 * These describe the N = 2^17 parameter sets the accelerator targets —
 * as *metadata* for the simulator and parameter analysis, independent of
 * the functional library (which runs the same algorithms at test-scale
 * N). Prime widths follow the paper: a 60-bit base prime, 50-bit scale
 * primes, 60-bit special primes, which reproduces Table 4's log(PQ)
 * values exactly (e.g. INS-1: 60 + 27*50 + 28*60 = 3090).
 */
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace bts::hw {

/** A full-scale CKKS parameter set, as the accelerator sees it. */
struct CkksInstance
{
    std::string name;
    std::size_t n = 1ULL << 17; //!< polynomial degree N
    int max_level = 27;         //!< L
    int dnum = 1;               //!< decomposition number
    int boot_levels = 19;       //!< L_boot consumed by bootstrapping
    int q0_bits = 60;
    int scale_bits = 50;
    int special_bits = 60;

    /** Special prime count k = ceil((L+1)/dnum). */
    int num_special() const;

    /** Number of key-switching slices live at level l. */
    int num_slices(int level) const;

    /** log2 of Q = q_0 * q_1^L (bits). */
    double log_q() const;
    /** log2 of P (bits). */
    double log_p() const;
    /** log2 of PQ (bits) — the security-determining size. */
    double log_pq() const;

    /** Estimated security level of this instance. */
    double lambda() const;

    /** Ciphertext size in bytes at level l (pair of N x (l+1), 8B words). */
    double ct_bytes(int level) const;

    /** Evaluation-key size in bytes at level l (Eq. 10 denominator). */
    double evk_bytes(int level) const;

    /** Aggregate evk footprint: 2 N (L+1) (dnum+1) words (Section 2.5). */
    double evk_total_bytes() const;

    /**
     * Peak temporary working set of a max-level HMult: the ModUp
     * outputs, the two extended accumulators and the tensor results
     * (Table 4 "Temp data" column).
     */
    double temp_bytes() const;

    /** Levels usable between bootstrappings: L - L_boot. */
    int usable_levels() const { return max_level - boot_levels; }

    /** Slots per fully packed ciphertext, N/2. */
    std::size_t slots() const { return n / 2; }
};

/** Table 4's INS-1: (N, L, dnum) = (2^17, 27, 1). */
CkksInstance ins1();
/** Table 4's INS-2: (2^17, 39, 2). */
CkksInstance ins2();
/** Table 4's INS-3: (2^17, 44, 3). */
CkksInstance ins3();
/** The Lattigo-preset-like instance used by the Fig. 9 ablation
 *  (N = 2^16, the largest 128-bit-secure level budget at dnum 3). */
CkksInstance ins_lattigo();

/** All three Table 4 instances. */
std::vector<CkksInstance> table4_instances();

} // namespace bts::hw
