/**
 * @file
 * Security-level model lambda(N, log PQ).
 *
 * The paper (Section 2.5) uses the SparseLWE-estimator [77] and states
 * that lambda is a strictly increasing function of N / log(PQ) [30].
 * We model that curve with a linear fit anchored to the paper's own
 * published (N, logPQ, lambda) triples (Table 4):
 *
 *   (2^17, 3090) -> 133.4     (2^17, 3210) -> 128.7
 *   (2^17, 3160) -> 130.8
 *
 * The fit lambda = 2.9704 * (N/logPQ) + 7.39 reproduces all three
 * anchors to within 0.3 bits, which is what matters here: the paper
 * only uses lambda as a feasibility constraint (lambda >= 128) carving
 * out the parameter space of Figs. 1-2.
 */
#pragma once

#include "common/types.h"

namespace bts::hw {

/** Estimated security (bits) for ring degree @p n and @p log_pq bits. */
double estimate_lambda(std::size_t n, double log_pq);

/** Largest log(PQ) meeting @p lambda_target at ring degree @p n. */
double max_log_pq(std::size_t n, double lambda_target);

/** The paper's target security level. */
inline constexpr double kTargetLambda = 128.0;

} // namespace bts::hw
