/**
 * @file
 * Parameter-space exploration (Section 3 of the paper).
 *
 * Reproduces the three analytic results that drive the BTS design:
 *  - Fig. 1: maximum level L and evk size as functions of dnum for each
 *    ring degree N at the 128-bit security target;
 *  - Fig. 2: the realistic minimum bound of T_mult,a/slot (Eq. 8) under
 *    a fixed off-chip bandwidth, assuming compute fully hidden behind
 *    evk streaming and all ciphertexts on-chip (Section 3.3-3.4);
 *  - Fig. 3b: the computational-complexity breakdown of HMult
 *    (BConv / NTT / iNTT / others) across dnum values;
 *  - Eq. 10: the minimum required NTTU count.
 */
#pragma once

#include <vector>

#include "hwparams/instance.h"
#include "hwparams/security.h"

namespace bts::hw {

/** One point of the Fig. 2 sweep. */
struct SweepPoint
{
    CkksInstance instance;
    double lambda = 0;
    double tmult_a_slot_ns = 0; //!< minimum-bound amortized mult per slot
};

/** Fig. 1a: the maximum L meeting the security target for (n, dnum). */
int max_level_for(std::size_t n, int dnum,
                  double lambda_target = kTargetLambda, int q0_bits = 60,
                  int scale_bits = 50, int special_bits = 60);

/** Fig. 1 "Max dnum" table: largest dnum (k == 1) still above target. */
int max_dnum_for(std::size_t n, double lambda_target = kTargetLambda);

/**
 * Minimum-bound amortized multiplication time per slot (Eq. 8), with
 * every HMult/HRot lower-bounded by its evk load time at @p hbm_gbps
 * aggregate bandwidth. The bootstrapping op counts follow the plan in
 * workloads/bootstrap_plan (mirrored analytically here to keep hwparams
 * free of the simulator dependency).
 */
double min_bound_tmult_ns(const CkksInstance& inst,
                          double hbm_bytes_per_s = 1.0e12);

/** Number of evk-bearing ops (HMult + HRot + conj) in one bootstrap. */
int bootstrap_keyswitch_count(const CkksInstance& inst);

/** Total evk bytes streamed by one bootstrapping (levels descending). */
double bootstrap_evk_bytes(const CkksInstance& inst);

/** Full Fig. 2 sweep over N in {2^15..2^18} and all feasible dnum. */
std::vector<SweepPoint> fig2_sweep(double hbm_bytes_per_s = 1.0e12);

/** Fig. 3b: relative complexity of HMult components at max level. */
struct ComplexityBreakdown
{
    double bconv = 0;  //!< fraction of multiplies in BConv
    double ntt = 0;    //!< fraction in forward NTT
    double intt = 0;   //!< fraction in inverse NTT
    double others = 0; //!< element-wise mults etc.
};
ComplexityBreakdown hmult_complexity(const CkksInstance& inst);

/** Eq. 10: minimum fully-pipelined NTTU count for the instance. */
double min_nttu(const CkksInstance& inst, double freq_hz = 1.2e9,
                double hbm_bytes_per_s = 1.0e12);

/**
 * Section 4.3: parallelization-strategy analysis. With
 * residue-polynomial-level parallelism (rPLP, the F1 approach), PEs are
 * partitioned among the (l+1) residue polynomials live at level l; the
 * fluctuating level leaves partitions idle. Coefficient-level
 * parallelism (CLP, the BTS choice) distributes the N coefficients, so
 * utilization is level-independent.
 */
struct ParallelismPoint
{
    int level = 0;
    double rplp_utilization = 0; //!< fraction of PEs doing useful work
    double clp_utilization = 0;
};

/** PE utilization of both strategies at every level of the instance. */
std::vector<ParallelismPoint> parallelism_comparison(
    const CkksInstance& inst, int n_pe = 2048);

/** Average rPLP utilization over a full level descent (the load
 *  imbalance the paper's Section 4.3 calls out). */
double rplp_average_utilization(const CkksInstance& inst, int n_pe = 2048);

} // namespace bts::hw
