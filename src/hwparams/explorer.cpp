#include "hwparams/explorer.h"

#include <cmath>

#include "common/bit_ops.h"
#include "common/check.h"
#include "hwparams/security.h"

namespace bts::hw {

int
max_level_for(std::size_t n, int dnum, double lambda_target, int q0_bits,
              int scale_bits, int special_bits)
{
    const double budget = max_log_pq(n, lambda_target);
    int best = -1;
    for (int level = 1; level <= 200; ++level) {
        const int k = static_cast<int>(ceil_div(
            static_cast<u64>(level + 1), static_cast<u64>(dnum)));
        const double bits = q0_bits +
                            static_cast<double>(level) * scale_bits +
                            static_cast<double>(k) * special_bits;
        if (bits <= budget) best = level;
    }
    return best;
}

int
max_dnum_for(std::size_t n, double lambda_target)
{
    // Max dnum means k == 1 (one special prime): dnum == L + 1. Find the
    // largest L with dnum = L+1 still meeting the target.
    int best = 1;
    for (int level = 1; level <= 200; ++level) {
        if (max_level_for(n, level + 1, lambda_target) >= level) {
            best = level + 1;
        }
    }
    return best;
}

namespace {

/**
 * Analytic mirror of the bootstrapping op plan (see
 * workloads/bootstrap_plan.cpp): three CoeffToSlot stages, a
 * conjugation, two EvalMod polynomial evaluations, three SlotToCoeff
 * stages. Returns (level, is_keyswitch) pairs for every evk-bearing op.
 */
std::vector<int>
bootstrap_keyswitch_levels(const CkksInstance& inst)
{
    std::vector<int> levels;
    const int l_top = inst.max_level;
    const int log_slots = log2_exact(inst.slots());

    // CtS: 3 FFT-decomposed stages, radix ~ n^(1/3); BSGS rotations per
    // stage ~ 2*sqrt(radix).
    int radix_bits[3];
    radix_bits[0] = (log_slots + 2) / 3;
    radix_bits[1] = (log_slots + 1) / 3;
    radix_bits[2] = log_slots / 3;
    for (int s = 0; s < 3; ++s) {
        const int rotations = 2 * static_cast<int>(std::ceil(
                                      std::sqrt(1 << radix_bits[s])));
        for (int r = 0; r < rotations; ++r) levels.push_back(l_top - s);
    }
    // Real/imag split: one conjugation.
    levels.push_back(l_top - 3);

    // EvalMod on both components: PS-BSGS Chebyshev evaluation.
    const int em_top = l_top - 3;
    const int em_levels = inst.boot_levels - 6; // what remains of L_boot
    const int hmults_per_evalmod = 15;          // babies + giants + nodes
    for (int comp = 0; comp < 2; ++comp) {
        for (int m = 0; m < hmults_per_evalmod; ++m) {
            // Spread multiplications across the consumed levels.
            const int lvl = em_top - (m * em_levels) / hmults_per_evalmod;
            levels.push_back(lvl);
        }
    }

    // StC: 3 stages at the bottom of the bootstrap level budget.
    const int stc_top = l_top - inst.boot_levels + 3;
    for (int s = 0; s < 3; ++s) {
        const int rotations = 2 * static_cast<int>(std::ceil(
                                      std::sqrt(1 << radix_bits[s])));
        for (int r = 0; r < rotations; ++r) levels.push_back(stc_top - s);
    }
    return levels;
}

} // namespace

int
bootstrap_keyswitch_count(const CkksInstance& inst)
{
    return static_cast<int>(bootstrap_keyswitch_levels(inst).size());
}

double
bootstrap_evk_bytes(const CkksInstance& inst)
{
    double bytes = 0;
    for (int lvl : bootstrap_keyswitch_levels(inst)) {
        bytes += inst.evk_bytes(std::max(lvl, 1));
    }
    return bytes;
}

double
min_bound_tmult_ns(const CkksInstance& inst, double hbm_bytes_per_s)
{
    BTS_CHECK(inst.usable_levels() >= 1,
              "instance cannot bootstrap (L <= L_boot)");
    // Eq. 8 with every op lower-bounded by its evk streaming time
    // (Section 3.3's two simplifying assumptions).
    const double t_boot_s = bootstrap_evk_bytes(inst) / hbm_bytes_per_s;
    double t_mults_s = 0;
    for (int l = 1; l <= inst.usable_levels(); ++l) {
        t_mults_s += inst.evk_bytes(l) / hbm_bytes_per_s;
    }
    const double per_level_s =
        (t_boot_s + t_mults_s) / inst.usable_levels();
    return per_level_s * 2.0 / static_cast<double>(inst.n) * 1e9;
}

std::vector<SweepPoint>
fig2_sweep(double hbm_bytes_per_s)
{
    // Like the paper's Fig. 2, sweep the whole security range (~70-250
    // bits): for each (N, dnum), take the largest bootstrappable L at a
    // grid of lambda targets and report the achieved lambda.
    std::vector<SweepPoint> points;
    for (int log_n = 15; log_n <= 18; ++log_n) {
        const std::size_t n = 1ULL << log_n;
        const int max_dnum = max_dnum_for(n, 70.0);
        for (int dnum = 1; dnum <= max_dnum; ++dnum) {
            int last_level = -1;
            for (double target : {70.0, 80.0, 90.0, 100.0, 115.0, 128.0,
                                  145.0, 160.0, 190.0, 220.0, 250.0}) {
                const int level = max_level_for(n, dnum, target);
                if (level < 0 || level == last_level) continue;
                last_level = level;
                CkksInstance inst;
                inst.name = "N=2^" + std::to_string(log_n) +
                            " dnum=" + std::to_string(dnum);
                inst.n = n;
                inst.max_level = level;
                inst.dnum = dnum;
                if (inst.usable_levels() < 1) continue; // cannot bootstrap
                SweepPoint p;
                p.instance = inst;
                p.lambda = inst.lambda();
                p.tmult_a_slot_ns =
                    min_bound_tmult_ns(inst, hbm_bytes_per_s);
                points.push_back(std::move(p));
            }
        }
    }
    return points;
}

ComplexityBreakdown
hmult_complexity(const CkksInstance& inst)
{
    // Multiply counts of the Fig. 3a dataflow at the maximum level,
    // following the analysis of [48] as cited by the paper.
    const double n = static_cast<double>(inst.n);
    const double log_n = log2_exact(inst.n);
    const double l1 = inst.max_level + 1; // l + 1
    const double k = inst.num_special();
    const double dnum = inst.dnum;
    const double ext = k + l1; // k + l + 1

    const double butterfly = n / 2 * log_n; // mults per (i)NTT pass

    // iNTT: d2 decomposition (l+1 passes) + ModDown (2k passes).
    const double intt = (l1 + 2 * k) * butterfly;
    // NTT: ModUp extensions + ModDown recombination (2(l+1) passes).
    const double ntt = (dnum * ext - l1 + 2 * l1) * butterfly;
    // BConv: ModUp (l+1)(ext - alpha) + ModDown 2k(l+1) MAC-mults, plus
    // the per-source-prime scaling (part 1).
    const double alpha = k;
    const double bconv = (l1 * (ext - alpha) + 2 * k * l1 + l1 + 2 * k) * n;
    // Others: tensor product (4(l+1)), evk inner product
    // (2 dnum ext), SSA and rescale-type element-wise work.
    const double others = (4 * l1 + 2 * dnum * ext + 4 * ext) * n;

    const double total = intt + ntt + bconv + others;
    ComplexityBreakdown b;
    b.intt = intt / total;
    b.ntt = ntt / total;
    b.bconv = bconv / total;
    b.others = others / total;
    return b;
}

std::vector<ParallelismPoint>
parallelism_comparison(const CkksInstance& inst, int n_pe)
{
    std::vector<ParallelismPoint> out;
    for (int level = 0; level <= inst.max_level; ++level) {
        ParallelismPoint p;
        p.level = level;
        // rPLP: the key-switching working set holds (k + l + 1) residue
        // polynomials; PEs are statically grouped for the maximum-level
        // case (k + L + 1 groups), so at level l only (k + l + 1)
        // groups have work.
        const int groups_total = inst.num_special() + inst.max_level + 1;
        const int groups_busy = inst.num_special() + level + 1;
        p.rplp_utilization =
            static_cast<double>(groups_busy) / groups_total;
        // CLP: all N coefficients are always live; every PE holds
        // N / n_pe of them regardless of level.
        p.clp_utilization =
            inst.n >= static_cast<std::size_t>(n_pe) ? 1.0 : 0.0;
        out.push_back(p);
    }
    return out;
}

double
rplp_average_utilization(const CkksInstance& inst, int n_pe)
{
    const auto points = parallelism_comparison(inst, n_pe);
    double sum = 0;
    for (const auto& p : points) sum += p.rplp_utilization;
    return sum / static_cast<double>(points.size());
}

double
min_nttu(const CkksInstance& inst, double freq_hz, double hbm_bytes_per_s)
{
    // Eq. 10.
    const double n = static_cast<double>(inst.n);
    const double log_n = log2_exact(inst.n);
    const double ext = inst.num_special() + inst.max_level + 1;
    const double butterflies =
        (inst.dnum + 2) * ext * 0.5 * n * log_n / freq_hz;
    const double evk_time =
        2.0 * inst.dnum * ext * n * 8.0 / hbm_bytes_per_s;
    return butterflies / evk_time;
}

} // namespace bts::hw
