#include "hwparams/security.h"

#include "common/check.h"

namespace bts::hw {

namespace {
// Linear fit to the paper's Table 4 anchors (see header).
constexpr double kSlope = 2.9704;
constexpr double kIntercept = 7.39;
} // namespace

double
estimate_lambda(std::size_t n, double log_pq)
{
    BTS_CHECK(n > 0 && log_pq > 0, "invalid security query");
    return kSlope * (static_cast<double>(n) / log_pq) + kIntercept;
}

double
max_log_pq(std::size_t n, double lambda_target)
{
    BTS_CHECK(lambda_target > kIntercept, "target below model range");
    return static_cast<double>(n) * kSlope / (lambda_target - kIntercept);
}

} // namespace bts::hw
