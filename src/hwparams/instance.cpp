#include "hwparams/instance.h"

#include <algorithm>

#include "common/bit_ops.h"
#include "common/check.h"
#include "hwparams/security.h"

namespace bts::hw {

int
CkksInstance::num_special() const
{
    return static_cast<int>(ceil_div(static_cast<u64>(max_level + 1),
                                     static_cast<u64>(dnum)));
}

int
CkksInstance::num_slices(int level) const
{
    const int alpha = num_special();
    return static_cast<int>(ceil_div(static_cast<u64>(level + 1),
                                     static_cast<u64>(alpha)));
}

double
CkksInstance::log_q() const
{
    return q0_bits + static_cast<double>(max_level) * scale_bits;
}

double
CkksInstance::log_p() const
{
    return static_cast<double>(num_special()) * special_bits;
}

double
CkksInstance::log_pq() const
{
    return log_q() + log_p();
}

double
CkksInstance::lambda() const
{
    return estimate_lambda(n, log_pq());
}

double
CkksInstance::ct_bytes(int level) const
{
    BTS_CHECK(level >= 0 && level <= max_level, "level out of range");
    return 2.0 * static_cast<double>(n) * (level + 1) * 8.0;
}

double
CkksInstance::evk_bytes(int level) const
{
    // Only the slices live at this level stream in, each restricted to
    // the k + l + 1 active primes.
    return 2.0 * num_slices(level) *
           static_cast<double>(num_special() + level + 1) *
           static_cast<double>(n) * 8.0;
}

double
CkksInstance::evk_total_bytes() const
{
    return 2.0 * static_cast<double>(n) * (max_level + 1) * (dnum + 1) * 8.0;
}

double
CkksInstance::temp_bytes() const
{
    const double words = static_cast<double>(n) * 8.0;
    const int ext = num_special() + max_level + 1; // k + L + 1
    // ModUp-extended d2 slices plus the two extended accumulators, plus
    // the d0/d1 tensor halves net of the slice already resident (they
    // overlap the first ModUp slice's Q-part). Reproduces Table 4's
    // "Temp data" column within 4%: 176/293/377 MB vs 183/304/365 MB.
    const double modup_and_acc =
        (static_cast<double>(dnum) + 2.0) * ext * words;
    const double tensor =
        2.0 * (max_level + 1 - num_special()) * words;
    return modup_and_acc + std::max(0.0, tensor);
}

CkksInstance
ins1()
{
    CkksInstance i;
    i.name = "INS-1";
    i.max_level = 27;
    i.dnum = 1;
    return i;
}

CkksInstance
ins2()
{
    CkksInstance i;
    i.name = "INS-2";
    i.max_level = 39;
    i.dnum = 2;
    return i;
}

CkksInstance
ins3()
{
    CkksInstance i;
    i.name = "INS-3";
    i.max_level = 44;
    i.dnum = 3;
    return i;
}

CkksInstance
ins_lattigo()
{
    CkksInstance i;
    i.name = "INS-Lattigo";
    i.n = 1ULL << 16;
    i.max_level = 21; // max 128-bit-secure level budget at N=2^16
    i.dnum = 3;
    return i;
}

std::vector<CkksInstance>
table4_instances()
{
    return {ins1(), ins2(), ins3()};
}

} // namespace bts::hw
