#include "sim/energy.h"

#include "sim/engine.h"

namespace bts::sim {

double
EnergyModel::energy_j(const SimResult& r) const
{
    // Busy components draw their Table 3 peak power while active; the
    // scratchpad/RF and exchange network track compute activity, the
    // HBM path tracks achieved bandwidth, and the PCIe PHY idles at a
    // small fraction of peak.
    const double compute_busy_s =
        r.ntt_busy_s + r.bconv_busy_s + r.elem_busy_s;
    double e = 0;
    e += kNttuPowerW * r.ntt_busy_s;
    e += kBconvPowerW * r.bconv_busy_s;
    e += kElemPowerW * r.elem_busy_s;
    e += kSramRfPowerW * compute_busy_s;
    e += kExchangePowerW * r.ntt_busy_s; // transposes ride the NTT epochs
    e += kNocPowerW * r.ntt_busy_s;
    e += kHbmPowerW * r.hbm_util * r.total_s;
    e += kPciePowerW * 0.05 * r.total_s;
    return e;
}

} // namespace bts::sim
