/**
 * @file
 * Energy model: Table 3 component powers weighted by the utilizations
 * the simulator observes (Section 6.2: "utilization rates are collected
 * and combined with the power model to calculate the energy").
 */
#pragma once

#include "sim/hw_config.h"

namespace bts::sim {

struct SimResult; // engine.h

/** Utilization-weighted energy from Table 3 peak powers. */
class EnergyModel
{
  public:
    explicit EnergyModel(const BtsConfig& hw) : hw_(hw) {}

    /** Total energy (J) for a finished run. */
    double energy_j(const SimResult& result) const;

    // Component peak powers (W), chip-wide, from Table 3's PE breakdown.
    static constexpr double kNttuPowerW = 2048 * 12.17e-3;
    static constexpr double kBconvPowerW = 2048 * (8.42e-3 + 0.56e-3);
    static constexpr double kElemPowerW = 2048 * (1.35e-3 + 0.08e-3);
    static constexpr double kSramRfPowerW = 2048 * (9.86e-3 + 2.29e-3);
    static constexpr double kExchangePowerW = 2048 * 1.03e-3;
    static constexpr double kNocPowerW = 45.93 + 0.10 + 0.04;
    static constexpr double kHbmPowerW = 31.76 + 6.81;
    static constexpr double kPciePowerW = 5.37;

  private:
    const BtsConfig& hw_;
};

} // namespace bts::sim
