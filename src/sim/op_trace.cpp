#include "sim/op_trace.h"

#include "common/check.h"

namespace bts::sim {

bool
needs_evk(HeOpKind kind)
{
    // Exhaustive switch, no default: a new HeOpKind that is not
    // classified here is a -Wswitch error under -Werror, not a silent
    // "no evk" fall-through (which would quietly drop the dominant
    // HBM-traffic term from the cost model).
    switch (kind) {
    case HeOpKind::kHMult:
    case HeOpKind::kHRot:
    case HeOpKind::kConj:
        return true;
    case HeOpKind::kPMult:
    case HeOpKind::kPAdd:
    case HeOpKind::kHAdd:
    case HeOpKind::kHRescale:
    case HeOpKind::kCMult:
    case HeOpKind::kCAdd:
    case HeOpKind::kModRaise:
        return false;
    }
    panic("needs_evk: unknown HeOpKind");
}

const char*
kind_name(HeOpKind kind)
{
    switch (kind) {
    case HeOpKind::kHMult: return "HMult";
    case HeOpKind::kHRot: return "HRot";
    case HeOpKind::kConj: return "Conj";
    case HeOpKind::kPMult: return "PMult";
    case HeOpKind::kPAdd: return "PAdd";
    case HeOpKind::kHAdd: return "HAdd";
    case HeOpKind::kHRescale: return "HRescale";
    case HeOpKind::kCMult: return "CMult";
    case HeOpKind::kCAdd: return "CAdd";
    case HeOpKind::kModRaise: return "ModRaise";
    }
    panic("kind_name: unknown HeOpKind");
}

std::map<HeOpKind, int>
kind_histogram(const Trace& trace)
{
    std::map<HeOpKind, int> hist;
    for (const HeOp& op : trace.ops) hist[op.kind] += 1;
    return hist;
}

int
TraceBuilder::add(HeOpKind kind, int level, std::vector<int> inputs,
                  int rot_amount, bool in_bootstrap)
{
    // Validate before allocating the output id: a rejected op must not
    // advance the id counter, or a generator that recovers from the
    // throw emits a shifted id stream.
    BTS_CHECK(level >= 0, "op below level 0");
    return add_into(next_id_++, kind, level, std::move(inputs), rot_amount,
                    in_bootstrap);
}

int
TraceBuilder::add_into(int out_id, HeOpKind kind, int level,
                       std::vector<int> inputs, int rot_amount,
                       bool in_bootstrap)
{
    BTS_CHECK(level >= 0, "op below level 0");
    HeOp op;
    op.kind = kind;
    op.level = level;
    op.rot_amount = rot_amount;
    op.inputs = std::move(inputs);
    op.output = out_id;
    op.in_bootstrap = in_bootstrap;
    trace_.ops.push_back(op);
    return out_id;
}

} // namespace bts::sim
