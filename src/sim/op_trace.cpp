#include "sim/op_trace.h"

#include "common/check.h"

namespace bts::sim {

bool
needs_evk(HeOpKind kind)
{
    return kind == HeOpKind::kHMult || kind == HeOpKind::kHRot ||
           kind == HeOpKind::kConj;
}

const char*
kind_name(HeOpKind kind)
{
    switch (kind) {
    case HeOpKind::kHMult: return "HMult";
    case HeOpKind::kHRot: return "HRot";
    case HeOpKind::kConj: return "Conj";
    case HeOpKind::kPMult: return "PMult";
    case HeOpKind::kPAdd: return "PAdd";
    case HeOpKind::kHAdd: return "HAdd";
    case HeOpKind::kHRescale: return "HRescale";
    case HeOpKind::kCMult: return "CMult";
    case HeOpKind::kCAdd: return "CAdd";
    case HeOpKind::kModRaise: return "ModRaise";
    }
    return "?";
}

int
TraceBuilder::add(HeOpKind kind, int level, std::vector<int> inputs,
                  int rot_amount, bool in_bootstrap)
{
    return add_into(next_id_++, kind, level, std::move(inputs), rot_amount,
                    in_bootstrap);
}

int
TraceBuilder::add_into(int out_id, HeOpKind kind, int level,
                       std::vector<int> inputs, int rot_amount,
                       bool in_bootstrap)
{
    BTS_CHECK(level >= 0, "op below level 0");
    HeOp op;
    op.kind = kind;
    op.level = level;
    op.rot_amount = rot_amount;
    op.inputs = std::move(inputs);
    op.output = out_id;
    op.in_bootstrap = in_bootstrap;
    trace_.ops.push_back(op);
    return out_id;
}

} // namespace bts::sim
