#include "sim/engine.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "sim/energy.h"

namespace bts::sim {

BtsSimulator::BtsSimulator(const BtsConfig& hw, const hw::CkksInstance& inst,
                           const HostConfig& host)
    : hw_(hw), inst_(inst), host_(host), model_(hw_, inst_)
{}

namespace {

/** Applies a HostConfig's lane count for one run(), then restores the
 *  global setting — the knob configures the machine running the model,
 *  never the modeled hardware, and must not leak across instances. */
struct ScopedHostThreads
{
    int saved = num_threads();
    explicit ScopedHostThreads(const HostConfig& host)
    {
        if (host.threads > 0) set_num_threads(host.threads);
    }
    ~ScopedHostThreads() { set_num_threads(saved); }
};

} // namespace

double
BtsSimulator::cache_capacity_bytes() const
{
    // Reservations: the op-in-flight temporary working set plus a
    // streaming buffer for the prefetched evk slice (Section 5.3).
    const double evk_stream = inst_.evk_bytes(inst_.max_level) * 0.25;
    return hw_.scratchpad_bytes - inst_.temp_bytes() - evk_stream;
}

SimResult
BtsSimulator::run(const Trace& trace) const
{
    const ScopedHostThreads host_threads(host_);
    SimResult r;
    r.cache_capacity_bytes = std::max(0.0, cache_capacity_bytes());
    SoftwareCache cache(r.cache_capacity_bytes);

    double hbm_busy_s = 0;
    const double hbm_bw = hw_.hbm_effective();

    for (const auto& op : trace.ops) {
        const OpCost c = model_.op_cost(op);

        // Software cache: operands either hit on-chip or stream in.
        double miss_bytes = 0;
        const double per_input =
            op.inputs.empty() ? 0.0
                              : c.ct_bytes / static_cast<double>(
                                                 op.inputs.size());
        for (int id : op.inputs) {
            miss_bytes += cache.access(id, per_input);
        }
        if (c.pt_bytes > 0) {
            // Plaintext operands use negative ids offset to avoid
            // colliding with ciphertext ids; reuse op output space.
            miss_bytes += cache.access(-1000000 - op.output, c.pt_bytes);
        }
        if (op.output >= 0) {
            cache.insert(op.output,
                         inst_.ct_bytes(std::max(0, op.level)));
        }

        const double mem_s = (c.evk_bytes + miss_bytes) / hbm_bw;
        // Double-buffered evk prefetch: an op's latency is the max of
        // its compute pipeline and its memory streams (Fig. 8).
        const double op_s = std::max(c.compute_s, mem_s);

        r.total_s += op_s;
        r.op_count += 1;
        r.hbm_bytes += c.evk_bytes + miss_bytes;
        r.evk_bytes += c.evk_bytes;
        r.ntt_busy_s += c.ntt_s;
        r.bconv_busy_s += c.bconv_s;
        r.elem_busy_s += c.elem_s;
        hbm_busy_s += mem_s;

        auto& ks = r.by_kind[op.kind];
        ks.count += 1;
        ks.total_s += op_s;
        if (op.in_bootstrap) {
            r.boot_s += op_s;
            auto& bs = r.boot_by_kind[op.kind];
            bs.count += 1;
            bs.total_s += op_s;
        }
    }

    if (r.total_s > 0) {
        r.hbm_util = hbm_busy_s / r.total_s;
        r.ntt_util = r.ntt_busy_s / r.total_s;
        r.bconv_util = r.bconv_busy_s / r.total_s;
    }
    r.cache_hit_rate = cache.hit_rate();

    const EnergyModel energy(hw_);
    r.energy_j = energy.energy_j(r);
    r.edap = r.energy_j * r.total_s * BtsConfig::total_area_mm2();

    if (inst_.usable_levels() > 0) {
        r.tmult_a_slot_ns = r.total_s / inst_.usable_levels() * 2.0 /
                            static_cast<double>(inst_.n) * 1e9;
    }
    return r;
}

} // namespace bts::sim
