#include "sim/scratchpad.h"

#include <algorithm>

#include "common/check.h"

namespace bts::sim {

SoftwareCache::SoftwareCache(double capacity_bytes)
    : capacity_(std::max(0.0, capacity_bytes))
{}

double
SoftwareCache::hit_rate() const
{
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
}

void
SoftwareCache::touch(int id)
{
    auto& e = entries_.at(id);
    lru_.erase(e.pos);
    lru_.push_front(id);
    e.pos = lru_.begin();
}

void
SoftwareCache::evict_for(double bytes)
{
    while (used_ + bytes > capacity_ && !lru_.empty()) {
        const int victim = lru_.back();
        lru_.pop_back();
        used_ -= entries_.at(victim).bytes;
        entries_.erase(victim);
    }
}

double
SoftwareCache::access(int id, double bytes)
{
    const auto it = entries_.find(id);
    if (it != entries_.end()) {
        ++hits_;
        touch(id);
        return 0.0;
    }
    ++misses_;
    if (bytes > capacity_) {
        // Streams straight through; nothing retained.
        return bytes;
    }
    evict_for(bytes);
    lru_.push_front(id);
    entries_[id] = {bytes, lru_.begin()};
    used_ += bytes;
    return bytes;
}

void
SoftwareCache::insert(int id, double bytes)
{
    const auto it = entries_.find(id);
    if (it != entries_.end()) {
        used_ -= it->second.bytes;
        lru_.erase(it->second.pos);
        entries_.erase(it);
    }
    if (bytes > capacity_) return;
    evict_for(bytes);
    lru_.push_front(id);
    entries_[id] = {bytes, lru_.begin()};
    used_ += bytes;
}

} // namespace bts::sim
