/**
 * @file
 * The BTS trace simulator: schedules a trace of HE ops onto the modeled
 * hardware, accounting for compute occupancy, evk streaming, software
 * cache behaviour and energy (Section 6.2's methodology: ops become
 * dataflow tasks scheduled at epoch granularity, with evk prefetch
 * overlapped against compute and temporary-data hold time minimized).
 */
#pragma once

#include <map>

#include "sim/cost_model.h"
#include "sim/scratchpad.h"

namespace bts::sim {

/**
 * Host-side execution knobs — deliberately separate from BtsConfig:
 * these configure the machine *running* the model, never the modeled
 * hardware, so simulated results are identical at any setting.
 */
struct HostConfig
{
    /** Worker lanes for the functional library's limb-parallel layer
     *  (bts::parallel_for). 0 = leave the global setting untouched. */
    int threads = 0;
};

/** Aggregate per-kind timing. */
struct KindStats
{
    int count = 0;
    double total_s = 0;
};

/** Everything a run produces. */
struct SimResult
{
    double total_s = 0;
    double boot_s = 0; //!< time inside bootstrap-tagged ops
    int op_count = 0;

    std::map<HeOpKind, KindStats> by_kind;
    std::map<HeOpKind, KindStats> boot_by_kind; //!< Fig. 10 breakdown

    double hbm_bytes = 0;
    double evk_bytes = 0;
    double hbm_util = 0; //!< fraction of total_s the HBM was busy

    double ntt_busy_s = 0;
    double bconv_busy_s = 0;
    double elem_busy_s = 0;
    double ntt_util = 0;
    double bconv_util = 0;

    double cache_hit_rate = 0;
    double cache_capacity_bytes = 0;

    double energy_j = 0;
    /** Energy-delay-area product (J * s * mm^2), Fig. 10's metric. */
    double edap = 0;

    /** Amortized per-slot throughput for a T_mult microbench trace:
     *  total_s / usable_levels * 2/N (Eq. 8). */
    double tmult_a_slot_ns = 0;
};

/** Sequential epoch-granularity simulator. */
class BtsSimulator
{
  public:
    BtsSimulator(const BtsConfig& hw, const hw::CkksInstance& inst,
                 const HostConfig& host = {});

    /** Run one trace start-to-finish. */
    SimResult run(const Trace& trace) const;

    const CostModel& cost_model() const { return model_; }
    const HostConfig& host() const { return host_; }

    /** Scratchpad bytes left for the ciphertext cache after the
     *  temporary-data and evk stream-buffer reservations. */
    double cache_capacity_bytes() const;

  private:
    BtsConfig hw_;
    hw::CkksInstance inst_;
    HostConfig host_;
    CostModel model_;
};

} // namespace bts::sim
