#include "sim/timeline.h"

#include <algorithm>

namespace bts::sim {

HMultTimeline
hmult_timeline(const BtsConfig& hw, const hw::CkksInstance& inst)
{
    const CostModel model(hw, inst);
    HeOp op;
    op.kind = HeOpKind::kHMult;
    op.level = inst.max_level;
    const OpCost c = model.op_cost(op);

    const double l1 = inst.max_level + 1;
    const double k = inst.num_special();
    const double dnum_l = inst.num_slices(inst.max_level);
    const double ext = k + l1;
    const double epoch_ns = hw.epoch_seconds(inst.n) * 1e9;

    HMultTimeline tl;
    const double evk_ns = c.evk_bytes / hw.hbm_effective() * 1e9;
    tl.total_ns = std::max(c.compute_s * 1e9, evk_ns);

    // HBM track: evk halves (bx then ax), each split into its P and Q
    // components as Fig. 8 draws them.
    const double q_frac = l1 / ext;
    double t = 0;
    for (const std::string poly : {"bx", "ax"}) {
        const double half = evk_ns / 2;
        tl.segments.push_back(
            {"HBM", "load evk." + poly + ".P", t, t + half * (1 - q_frac)});
        t += half * (1 - q_frac);
        tl.segments.push_back(
            {"HBM", "load evk." + poly + ".Q", t, t + half * q_frac});
        t += half * q_frac;
    }

    // NTTU track: iNTT.d2 -> NTT.d2 -> iNTT.bx/ax (ModDown) ->
    // NTT.bx/ax, laid out sequentially in epoch units.
    struct Phase
    {
        const char* label;
        double passes;
    };
    const std::vector<Phase> ntt_phases = {
        {"iNTT.d2", l1},
        {"NTT.d2", dnum_l * ext - l1},
        {"iNTT.bx/ax", 2 * k},
        {"NTT.bx/ax", 2 * l1},
    };
    t = 0;
    for (const auto& p : ntt_phases) {
        const double dur = p.passes * epoch_ns;
        tl.segments.push_back({"NTTU", p.label, t, t + dur});
        t += dur;
    }
    const double ntt_end = t;

    // BConvU track: BConv.d2 overlapped with iNTT.d2 (starts after
    // l_sub epochs, Eq. 11), then BConv.bx/ax + SSA near the end.
    const double bconv_ns = c.bconv_s * 1e9;
    const double d2_share = (l1 * (ext - k)) /
                            (l1 * (ext - k) + 2 * k * l1);
    const double bconv_d2 = bconv_ns * d2_share;
    const double bconv_md = bconv_ns - bconv_d2;
    const double d2_start = hw.l_sub * epoch_ns;
    tl.segments.push_back({"BConvU", "BConv.d2", d2_start,
                           d2_start + bconv_d2});
    const double md_start = (l1 + dnum_l * ext - l1 + hw.l_sub) * epoch_ns;
    tl.segments.push_back({"BConvU", "BConv.bx/ax + SSA", md_start,
                           md_start + bconv_md});

    // Elementwise track: d2 (x) evk while NTT.d2 streams out.
    const double elem_ns = c.elem_s * 1e9;
    const double elem_start = l1 * epoch_ns;
    tl.segments.push_back(
        {"Elem", "tensor + d2 (x) evk", elem_start, elem_start + elem_ns});

    tl.hbm_util = evk_ns / tl.total_ns;
    tl.nttu_busy_frac = ntt_end / tl.total_ns;
    tl.bconv_busy_frac = bconv_ns / tl.total_ns;

    // Scratchpad usage: temp ramps with ModUp, peaks at the BConv of
    // the accumulators, drains after SSA (Fig. 8 bottom).
    const double temp_mb = inst.temp_bytes() / 1e6;
    const int samples = 64;
    for (int i = 0; i <= samples; ++i) {
        const double x = static_cast<double>(i) / samples;
        double occupancy;
        if (x < 0.3) {
            occupancy = 0.35 + x / 0.3 * 0.45; // ramp through ModUp
        } else if (x < 0.8) {
            occupancy = 0.8 + (x - 0.3) / 0.5 * 0.2; // peak at BConv
        } else {
            occupancy = 1.0 - (x - 0.8) / 0.2 * 0.55; // drain after SSA
        }
        UsageSample s;
        s.t_ns = x * tl.total_ns;
        s.scratchpad_mb = temp_mb * occupancy;
        s.bandwidth_util =
            0.35 + 0.55 * std::min(1.0, c.bconv_s * 1e9 / tl.total_ns +
                                            (x > 0.25 && x < 0.9 ? 0.4
                                                                 : 0.0));
        tl.usage.push_back(s);
    }
    return tl;
}

} // namespace bts::sim
