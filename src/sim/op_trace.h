/**
 * @file
 * HE-operation intermediate representation: the unit of work the BTS
 * simulator schedules.
 *
 * The simulator consumes *traces* — sequences of primitive CKKS ops
 * (Section 2.3) annotated with their multiplicative level, operand
 * object ids (for software-cache behaviour) and a bootstrap flag (for
 * the Fig. 7b / Fig. 10 breakdowns).
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace bts::sim {

/** Primitive HE op kinds (Section 2.3 + ModRaise). */
enum class HeOpKind {
    kHMult,    //!< tensor product + key-switch (evk-bearing)
    kHRot,     //!< automorphism + key-switch (evk-bearing)
    kConj,     //!< conjugation + key-switch (evk-bearing)
    kPMult,    //!< ciphertext x plaintext
    kPAdd,     //!< ciphertext + plaintext
    kHAdd,     //!< ciphertext + ciphertext
    kHRescale, //!< divide by the top prime
    kCMult,    //!< ciphertext x scalar
    kCAdd,     //!< ciphertext + scalar
    kModRaise, //!< bootstrap modulus raise
};

/**
 * Number of HeOpKind enumerators. Adding a kind means updating this
 * constant AND every switch over the enum — all of them are written
 * without a default case, so -Wswitch (-Werror on the library) flags
 * each site at compile time, and the exhaustiveness test in
 * tests/sim/test_sim.cpp walks [0, kHeOpKindCount) at run time.
 */
inline constexpr int kHeOpKindCount =
    static_cast<int>(HeOpKind::kModRaise) + 1;

/** @return true if the op streams an evaluation key. */
bool needs_evk(HeOpKind kind);

/** Human-readable kind name (never null; throws on a value outside
 *  the enumerator range). */
const char* kind_name(HeOpKind kind);

/** One primitive op instance. */
struct HeOp
{
    HeOpKind kind = HeOpKind::kHAdd;
    int level = 0;           //!< multiplicative level it executes at
    int rot_amount = 0;      //!< HRot rotation distance (selects the evk)
    std::vector<int> inputs; //!< ciphertext/plaintext object ids
    int output = -1;         //!< output object id (-1: in-place/none)
    bool in_bootstrap = false;

    /** Field-wise equality (the runtime-lowering pin tests compare
     *  whole traces op for op). */
    bool operator==(const HeOp&) const = default;
};

/** A schedulable op sequence. */
struct Trace
{
    std::string name;
    std::vector<HeOp> ops;
    int bootstrap_count = 0;

    void
    push(HeOp op)
    {
        ops.push_back(std::move(op));
    }
};

/** Op count per kind — the op-mix signature the runtime lowering is
 *  pinned against the hand-written workload generators with. */
std::map<HeOpKind, int> kind_histogram(const Trace& trace);

/**
 * Convenience builder tracking object ids and the current level, used
 * by the workload generators.
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(std::string name) { trace_.name = std::move(name); }

    /** Allocate a fresh ciphertext/plaintext object id. */
    int fresh_id() { return next_id_++; }

    /** Append an op; returns the output id (fresh unless provided). */
    int add(HeOpKind kind, int level, std::vector<int> inputs,
            int rot_amount = 0, bool in_bootstrap = false);

    /** Append an op writing into an existing object (accumulators and
     *  value chains — keeps dead intermediates out of the SW cache). */
    int add_into(int out_id, HeOpKind kind, int level,
                 std::vector<int> inputs, int rot_amount = 0,
                 bool in_bootstrap = false);

    Trace& trace() { return trace_; }
    const Trace& trace() const { return trace_; }

  private:
    Trace trace_;
    int next_id_ = 0;
};

} // namespace bts::sim
