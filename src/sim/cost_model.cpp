#include "sim/cost_model.h"

#include <algorithm>

#include "common/check.h"

namespace bts::sim {

double
CostModel::ntt_time(double passes) const
{
    return passes * hw_.epoch_seconds(inst_.n);
}

double
CostModel::bconv_time(double macs) const
{
    return macs / (static_cast<double>(hw_.n_pe) * hw_.l_sub * hw_.freq_hz);
}

double
CostModel::elem_time(double mults) const
{
    return mults / (static_cast<double>(hw_.n_pe) * hw_.elem_freq_hz);
}

double
CostModel::keyswitch_ntt_passes(int level) const
{
    const double l1 = level + 1;
    const double k = inst_.num_special();
    const double dnum_l = inst_.num_slices(level);
    const double ext = k + l1;
    // Fig. 3a: iNTT the d2 slices (l+1), NTT the ModUp extensions
    // (dnum_l * ext - (l+1)), iNTT the two P-parts for ModDown (2k),
    // NTT the two lifted corrections (2(l+1)).
    return l1 + (dnum_l * ext - l1) + 2 * k + 2 * l1;
}

double
CostModel::keyswitch_bconv_macs(int level) const
{
    const double n = static_cast<double>(inst_.n);
    const double l1 = level + 1;
    const double k = inst_.num_special();
    const double alpha = inst_.num_special(); // slice width == k
    const double ext = k + l1;
    // ModUp: each source prime contributes to (ext - alpha) targets;
    // ModDown: k source primes to (l+1) targets, twice (b and a).
    return (l1 * (ext - alpha) + 2 * k * l1) * n;
}

void
CostModel::finalize(OpCost& c) const
{
    // Pipelined execution: the op's compute latency is bounded by its
    // busiest resource; BConv overlaps the producing iNTT (Eq. 11) when
    // the feature is on, otherwise it serializes.
    const double bconv_exposed =
        hw_.overlap_bconv_intt ? std::max(0.0, c.bconv_s - c.ntt_s * 0.75)
                               : c.bconv_s;
    const double pipeline_fill = 3.0 * hw_.epoch_seconds(inst_.n);
    c.compute_s = std::max({c.ntt_s + bconv_exposed, c.elem_s}) +
                  pipeline_fill;
    // PE-PE NoC time for explicit permutations (automorphism).
    const double noc_s = c.noc_bytes / hw_.noc_bisection_bytes_per_s;
    c.compute_s += noc_s;
}

OpCost
CostModel::op_cost(const HeOp& op) const
{
    const int level = op.level;
    BTS_CHECK(level >= 0 && level <= inst_.max_level,
              "op level outside the instance");
    const double n = static_cast<double>(inst_.n);
    const double l1 = level + 1;
    const double k = inst_.num_special();
    const double dnum_l = inst_.num_slices(level);
    const double ext = k + l1;
    const double ct = inst_.ct_bytes(level);

    OpCost c;
    switch (op.kind) {
    case HeOpKind::kHMult:
        c.ntt_s = ntt_time(keyswitch_ntt_passes(level));
        c.bconv_s = bconv_time(keyswitch_bconv_macs(level));
        // Tensor (4(l+1)N), evk inner product (2 dnum_l ext N), SSA-adds.
        c.elem_s = elem_time((4 * l1 + 2 * dnum_l * ext + 2 * ext) * n);
        c.evk_bytes = inst_.evk_bytes(level);
        c.ct_bytes = 2 * ct; // two ciphertext operands
        break;
    case HeOpKind::kHRot:
    case HeOpKind::kConj:
        c.ntt_s = ntt_time(keyswitch_ntt_passes(level));
        c.bconv_s = bconv_time(keyswitch_bconv_macs(level));
        c.elem_s = elem_time((2 * dnum_l * ext + 2 * ext) * n);
        c.evk_bytes = inst_.evk_bytes(level);
        c.ct_bytes = ct;
        // Automorphism permutation: both polynomials cross the PE-PE
        // NoC once (Section 5.5).
        c.noc_bytes = ct;
        break;
    case HeOpKind::kPMult:
        c.elem_s = elem_time(2 * l1 * n);
        c.ct_bytes = ct;
        c.pt_bytes = ct / 2; // one plaintext polynomial
        break;
    case HeOpKind::kPAdd:
        c.elem_s = elem_time(l1 * n) * 0.5; // adds are cheaper
        c.ct_bytes = ct;
        c.pt_bytes = ct / 2;
        break;
    case HeOpKind::kHAdd:
        c.elem_s = elem_time(2 * l1 * n) * 0.5;
        c.ct_bytes = 2 * ct;
        break;
    case HeOpKind::kHRescale:
        // iNTT of the top residue, per-prime lift + NTT back, then the
        // element-wise subtract/scale — for both polynomials.
        c.ntt_s = ntt_time(2.0 * (1.0 + level));
        c.elem_s = elem_time(2.0 * level * n);
        c.ct_bytes = ct;
        break;
    case HeOpKind::kCMult:
        c.elem_s = elem_time(2 * l1 * n);
        c.ct_bytes = ct;
        break;
    case HeOpKind::kCAdd:
        c.elem_s = elem_time(l1 * n) * 0.5;
        c.ct_bytes = ct;
        break;
    case HeOpKind::kModRaise:
        // Lift the level-0 pair onto the full base: 2 iNTT passes at
        // level 0 + 2(L+1) NTT passes + the element-wise remapping.
        c.ntt_s = ntt_time(2.0 + 2.0 * (inst_.max_level + 1));
        c.elem_s = elem_time(2.0 * (inst_.max_level + 1) * n);
        c.ct_bytes = inst_.ct_bytes(0);
        break;
    }
    finalize(c);
    return c;
}

} // namespace bts::sim
