/**
 * @file
 * Per-op cost model: epoch-exact resource occupancy of every primitive
 * HE op on the BTS microarchitecture (Sections 4.1 and 5).
 *
 * Each op is decomposed per the Fig. 3a dataflow:
 *  - (i)NTT passes run on the NTTU array at one residue polynomial per
 *    epoch (N log N / (2 n_PE) cycles);
 *  - BConv runs on the MMAU at l_sub MACs per PE per cycle, partially
 *    overlapped with the producing iNTT (Eq. 11) when enabled;
 *  - element-wise work (tensor product, evk inner product, SSA) runs on
 *    the per-PE ModMult/ModAdd at 0.6 GHz;
 *  - evk slices stream from HBM; the op cannot finish before its evk.
 */
#pragma once

#include "hwparams/instance.h"
#include "sim/hw_config.h"
#include "sim/op_trace.h"

namespace bts::sim {

/** Resource occupancy of one op (seconds / bytes). */
struct OpCost
{
    double ntt_s = 0;      //!< NTTU array busy time
    double bconv_s = 0;    //!< MMAU busy time
    double elem_s = 0;     //!< element-wise unit busy time
    double compute_s = 0;  //!< critical-path compute latency
    double evk_bytes = 0;  //!< evaluation-key stream
    double noc_bytes = 0;  //!< PE-PE traffic beyond hidden transposes
    double ct_bytes = 0;   //!< operand footprint (cache-managed)
    double pt_bytes = 0;   //!< plaintext operand footprint
};

/** Computes OpCosts for a fixed (hardware, instance) pair. */
class CostModel
{
  public:
    CostModel(const BtsConfig& hw, const hw::CkksInstance& inst)
        : hw_(hw), inst_(inst)
    {}

    /** Cost of one op at its recorded level. */
    OpCost op_cost(const HeOp& op) const;

    /** Number of (i)NTT residue-polynomial passes in a key-switch. */
    double keyswitch_ntt_passes(int level) const;

    /** MAC count of the key-switch BConvs (ModUp + ModDown). */
    double keyswitch_bconv_macs(int level) const;

    const BtsConfig& hw() const { return hw_; }
    const hw::CkksInstance& instance() const { return inst_; }

  private:
    /** Seconds for @p passes residue-poly NTT passes. */
    double ntt_time(double passes) const;
    /** Seconds for @p macs MMAU multiply-accumulates. */
    double bconv_time(double macs) const;
    /** Seconds for @p mults element-wise modular multiplies. */
    double elem_time(double mults) const;

    /** Fill in compute_s from the resource components. */
    void finalize(OpCost& c) const;

    const BtsConfig& hw_;
    const hw::CkksInstance& inst_;
};

} // namespace bts::sim
