/**
 * @file
 * Fig. 8 reproduction: the phase-level timeline of one HMult on BTS,
 * derived from the cost model's Fig. 3a decomposition, with the
 * on-chip scratchpad usage curve.
 */
#pragma once

#include <string>
#include <vector>

#include "sim/cost_model.h"

namespace bts::sim {

/** One horizontal bar of the timeline. */
struct TimelineSegment
{
    std::string track; //!< "HBM", "NTTU", "BConvU", "Elem"
    std::string label; //!< e.g. "load evk.ax", "iNTT.d2"
    double start_ns = 0;
    double end_ns = 0;
};

/** Scratchpad occupancy sample. */
struct UsageSample
{
    double t_ns = 0;
    double scratchpad_mb = 0;
    double bandwidth_util = 0;
};

/** The full Fig. 8 artifact. */
struct HMultTimeline
{
    std::vector<TimelineSegment> segments;
    std::vector<UsageSample> usage;
    double total_ns = 0;
    double hbm_util = 0;
    double nttu_busy_frac = 0;
    double bconv_busy_frac = 0;
};

/** Build the timeline of a max-level HMult (all cts on-chip). */
HMultTimeline hmult_timeline(const BtsConfig& hw,
                             const hw::CkksInstance& inst);

} // namespace bts::sim
