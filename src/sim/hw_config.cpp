#include "sim/hw_config.h"

namespace bts::sim {

std::vector<ComponentCost>
BtsConfig::table3()
{
    // Chip-wide rows of Table 3 (bottom half). Per-PE numbers from the
    // top half fold into the "2048 PEs" row: 2048 * 154,863 um^2 =
    // 317.2 mm^2 and 2048 * 35.75 mW = 73.2 W.
    return {
        {"2048 PEs", 317.2, 73.21},
        {"Inter-PE NoC", 3.06, 45.93},
        {"Global BrU + NoC", 0.42, 0.10},
        {"128 local BrUs", 3.69, 0.04},
        {"HBM2e NoC", 0.10, 6.81},
        {"2 HBM2e stacks", 29.6, 31.76},
        {"PCIe5x16 interface", 19.6, 5.37},
    };
}

double
BtsConfig::total_area_mm2()
{
    double total = 0;
    for (const auto& c : table3()) total += c.area_mm2;
    return total;
}

double
BtsConfig::total_peak_power_w()
{
    double total = 0;
    for (const auto& c : table3()) total += c.power_w;
    return total;
}

} // namespace bts::sim
