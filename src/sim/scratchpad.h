/**
 * @file
 * Scratchpad model: capacity partitioning and the LRU software cache
 * for ciphertexts (Section 5.3).
 *
 * The 512 MB scratchpad serves three masters: (1) temporary data of the
 * in-flight HE op (reserved up front, sized by the instance's ModUp /
 * accumulator working set), (2) the prefetched evk stream buffer, and
 * (3) a software-managed ciphertext cache with LRU replacement — the
 * paper's "SW caching", whose hit rate drives Fig. 7a and Fig. 10.
 */
#pragma once

#include <list>
#include <unordered_map>

#include "common/types.h"

namespace bts::sim {

/** LRU software cache over variable-size objects (cts, plaintexts). */
class SoftwareCache
{
  public:
    /** @param capacity_bytes space left after the static reservations. */
    explicit SoftwareCache(double capacity_bytes);

    /**
     * Touch object @p id needing @p bytes. On a miss, the object is
     * loaded (evicting LRU victims as needed).
     * @return bytes that had to move over HBM (0 on a full hit).
     */
    double access(int id, double bytes);

    /** Insert/refresh an op output (produced on-chip, no HBM traffic,
     *  but may evict victims). */
    void insert(int id, double bytes);

    /** Statistics. */
    std::size_t hits() const { return hits_; }
    std::size_t misses() const { return misses_; }
    double hit_rate() const;
    double used_bytes() const { return used_; }
    double capacity() const { return capacity_; }

  private:
    void evict_for(double bytes);
    void touch(int id);

    double capacity_;
    double used_ = 0;
    std::list<int> lru_; // front = most recent
    struct Entry
    {
        double bytes;
        std::list<int>::iterator pos;
    };
    std::unordered_map<int, Entry> entries_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

} // namespace bts::sim
