/**
 * @file
 * BTS hardware configuration: the Section 5 microarchitecture constants
 * and the Table 3 area/power/frequency model.
 *
 * BTS arranges 2,048 PEs in a 32 x 64 grid. Each PE holds an NTTU (one
 * butterfly/cycle, 1.2 GHz), a BConvU (ModMult + 4-lane MMAU), an
 * element-wise ModMult/ModAdd pair (0.6 GHz), register files and a
 * scratchpad slice. Two HBM2e stacks provide ~1 TB/s aggregate; three
 * separate NoCs serve PE-Mem traffic, BrU broadcast, and PE-PE
 * exchanges (3D-NTT transposes and automorphism permutations).
 */
#pragma once

#include <string>
#include <vector>

#include "common/bit_ops.h"
#include "common/types.h"

namespace bts::sim {

/** One row of Table 3. */
struct ComponentCost
{
    std::string name;
    double area_mm2 = 0;  //!< chip-wide area
    double power_w = 0;   //!< chip-wide peak power
};

/** The accelerator configuration (defaults = the paper's BTS). */
struct BtsConfig
{
    // --- geometry ---
    int n_pe = 2048;
    int pe_rows = 32; //!< vertical crossbar width
    int pe_cols = 64; //!< horizontal crossbar width

    // --- clocks ---
    double freq_hz = 1.2e9;      //!< NTTU / MMAU / NoC / scratchpad clock
    double elem_freq_hz = 0.6e9; //!< element-wise ModMult/ModAdd clock

    // --- memory system ---
    double hbm_bytes_per_s = 1.0e12; //!< aggregate off-chip bandwidth
    double hbm_efficiency = 0.98;    //!< achieved fraction (Fig. 8: 98%)
    double scratchpad_bytes = 512.0 * (1 << 20);
    double scratchpad_bytes_per_s = 38.4e12;
    double rf_bytes_per_s = 292e12;
    double noc_bisection_bytes_per_s = 3.6e12;

    // --- BConvU ---
    int l_sub = 4; //!< MMAU lanes / iNTT-BConv overlap granularity

    // --- feature flags (Fig. 9 ablation) ---
    bool overlap_bconv_intt = true;

    /** Cycles of one (i)NTT pass over a residue polynomial: the epoch
     *  length N log2(N) / (2 n_PE) of Section 5.1. */
    double
    epoch_cycles(std::size_t n) const
    {
        return static_cast<double>(n) * log2_exact(n) / (2.0 * n_pe);
    }

    /** Seconds for one (i)NTT residue-polynomial pass. */
    double
    epoch_seconds(std::size_t n) const
    {
        return epoch_cycles(n) / freq_hz;
    }

    /** Effective HBM bandwidth (B/s). */
    double
    hbm_effective() const
    {
        return hbm_bytes_per_s * hbm_efficiency;
    }

    /** Table 3: per-component chip-wide area and peak power. */
    static std::vector<ComponentCost> table3();

    /** Total die area (mm^2); the paper reports 373.6. */
    static double total_area_mm2();

    /** Total peak power (W); the paper reports 163.2. */
    static double total_peak_power_w();
};

} // namespace bts::sim
