/**
 * @file
 * Table 6 reproduction: ResNet-20 inference and 2^14-element sorting on
 * BTS (simulated, INS-1/2/3) vs the published CPU implementations, with
 * per-instance bootstrap counts.
 *
 * Expected shape: thousands-fold speedups; the *smaller-dnum* INS-1 is
 * best for both apps (bootstrapping is a minor share, so HE-op
 * complexity dominates — Section 6.3 "parameter selection in
 * retrospect"); bootstrap counts fall as usable levels grow.
 *
 * The workloads::resnet20 / workloads::sorting traces priced here are
 * the pin targets for the runtime graph applications
 * runtime/apps/{resnet,sort}.h — their paper() configurations must
 * lower to the same op histogram / bootstrap count / op count
 * (tests/runtime/test_apps_pin.cpp), and the same circuits run
 * functionally on real ciphertexts
 * (tests/runtime/test_apps_functional.cpp). Structural edits to the
 * generators must be mirrored there; see docs/APPLICATIONS.md.
 */
#include <cstdio>

#include "baselines/published.h"
#include "sim/engine.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace bts;
    const auto cpu = baselines::lattigo_cpu();
    const sim::BtsConfig hw;

    printf("=== Table 6: ResNet-20 inference ===\n");
    printf("%-12s %12s %10s %8s\n", "platform", "time", "speedup",
           "#boots");
    printf("%-12s %10.0f s %9.1fx %8s\n", "CPU [59]", cpu.resnet20_s, 1.0,
           "-");
    for (const auto& inst : hw::table4_instances()) {
        const sim::BtsSimulator s(hw, inst);
        const auto trace = workloads::resnet20(inst);
        const auto r = s.run(trace);
        printf("%-12s %10.2f s %9.0fx %8d\n",
               ("BTS/" + inst.name).c_str(), r.total_s,
               cpu.resnet20_s / r.total_s, trace.bootstrap_count);
    }
    printf("paper: 1.91/2.02/3.09 s, 5556/5240/3427x, boots 53/22/19\n");

    printf("\n=== Table 6: sorting 2^14 elements ===\n");
    printf("%-12s %12s %10s %8s\n", "platform", "time", "speedup",
           "#boots");
    printf("%-12s %10.0f s %9.1fx %8s\n", "CPU [42]", cpu.sorting_s, 1.0,
           "-");
    for (const auto& inst : hw::table4_instances()) {
        const sim::BtsSimulator s(hw, inst);
        const auto trace = workloads::sorting(inst);
        const auto r = s.run(trace);
        printf("%-12s %10.1f s %9.0fx %8d\n",
               ("BTS/" + inst.name).c_str(), r.total_s,
               cpu.sorting_s / r.total_s, trace.bootstrap_count);
    }
    printf("paper: 15.6/18.8/25.2 s, 1482/1226/915x, boots 521/306/229\n");
    return 0;
}
