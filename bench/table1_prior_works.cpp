/**
 * @file
 * Table 1 reproduction: the qualitative comparison of HE acceleration
 * platforms — bootstrappability, refreshed slots per bootstrap,
 * parallelization strategy, and FHE multiplicative throughput.
 */
#include <cstdio>

#include "baselines/published.h"
#include "hwparams/explorer.h"
#include "sim/engine.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace bts;
    printf("=== Table 1: prior HE acceleration works vs BTS ===\n");
    printf("%-10s %-10s %12s %10s %14s\n", "work", "platform",
           "bootstrap", "slots", "FHE mult/s");

    auto thruput = [](double tmult_ns) {
        // Reciprocal of the amortized per-slot time = fully-packed
        // multiplicative throughput.
        return 1e9 / tmult_ns;
    };

    for (const auto& b : baselines::all_baselines()) {
        printf("%-10s %-10s %12s %10d %14.2g\n", b.name.c_str(),
               b.platform.substr(0, 10).c_str(),
               b.bootstrappable
                   ? (b.refreshed_slots == 1 ? "single-slot" : "yes")
                   : "no",
               b.refreshed_slots, thruput(b.tmult_a_slot_ns));
    }

    // BTS: coefficient-level parallelism, fully packed bootstrapping.
    const sim::BtsConfig hw;
    const auto inst = hw::ins2();
    const auto r = sim::BtsSimulator(hw, inst).run(
        workloads::tmult_microbench(inst));
    printf("%-10s %-10s %12s %10zu %14.2g\n", "BTS", "ASIC (7nm)", "yes",
           inst.slots(), thruput(r.tmult_a_slot_ns));
    printf("\nparallelism: FPGA/F1 works exploit rPLP; BTS exploits CLP "
           "(Section 4.3;\nsee bench/ablation_parallelism for the "
           "utilization argument).\n");
    printf("paper: BTS 20M mult/s vs F1 4K, Lattigo 6-10K, GPU 0.1-1M.\n");
    return 0;
}
