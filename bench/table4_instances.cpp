/**
 * @file
 * Table 4 reproduction: the CKKS instances used for evaluation, with
 * derived sizes (log PQ, lambda, ciphertext/evk/temporary data).
 */
#include <cstdio>

#include "hwparams/explorer.h"

int
main()
{
    using namespace bts::hw;
    printf("=== Table 4: evaluation instances ===\n");
    printf("%-8s %10s %4s %5s %8s %8s %10s %9s %9s\n", "inst", "N", "L",
           "dnum", "logPQ", "lambda", "temp(MB)", "ct(MiB)", "evk(MiB)");
    for (const auto& inst : table4_instances()) {
        printf("%-8s %10zu %4d %5d %8.0f %8.1f %10.0f %9.0f %9.0f\n",
               inst.name.c_str(), inst.n, inst.max_level, inst.dnum,
               inst.log_pq(), inst.lambda(), inst.temp_bytes() / 1e6,
               inst.ct_bytes(inst.max_level) / (1 << 20),
               inst.evk_bytes(inst.max_level) / (1 << 20));
    }
    printf("\npaper: INS-1 (3090, 133.4, 183MB), INS-2 (3210, 128.7, "
           "304MB), INS-3 (3160, 130.8, 365MB);\n"
           "ct @ max level 56 MiB, INS-1 evk 112 MiB.\n");
    printf("\nBootstrapping plan: %d key-switches per bootstrap, "
           "%d levels consumed.\n",
           bootstrap_keyswitch_count(ins1()), ins1().boot_levels);
    return 0;
}
