/**
 * @file
 * Fig. 2 reproduction: security level vs minimum-bound T_mult,a/slot
 * for every (N, L, dnum) at 1 TB/s, L_boot = 19.
 *
 * Expected shape: the N = 2^17 frontier dominates near lambda = 128;
 * gains saturate at 2^18; high dnum costs superlinearly.
 */
#include <cstdio>

#include "hwparams/explorer.h"

int
main()
{
    using namespace bts::hw;
    printf("=== Fig. 2: lambda vs min-bound T_mult,a/slot (1TB/s) ===\n");
    printf("%-22s %6s %5s %6s %9s %14s\n", "instance", "L", "dnum",
           "k", "lambda", "Tmult(ns)");
    for (const auto& p : fig2_sweep()) {
        // Keep the printout readable: the paper plots every integer
        // dnum; we list the small-dnum frontier.
        if (p.instance.dnum > 3) continue;
        printf("%-22s %6d %5d %6d %9.1f %14.2f\n", p.instance.name.c_str(),
               p.instance.max_level, p.instance.dnum,
               p.instance.num_special(), p.lambda, p.tmult_a_slot_ns);
    }

    printf("\n=== Paper's highlighted points (Section 3.4) ===\n");
    printf("%-8s %18s %18s\n", "inst", "paper min-bound", "ours");
    const double paper[3] = {27.7, 19.9, 22.1};
    const CkksInstance insts[3] = {ins1(), ins2(), ins3()};
    for (int i = 0; i < 3; ++i) {
        printf("%-8s %15.1fns %15.1fns\n", insts[i].name.c_str(), paper[i],
               min_bound_tmult_ns(insts[i]));
    }
    printf("\nEq. 10 check: minNTTU(INS-1) = %.0f (paper: 1,328; "
           "BTS provisions 2,048)\n",
           min_nttu(ins1()));
    return 0;
}
