/**
 * @file
 * Fig. 3(b) reproduction: computational-complexity breakdown of HMult
 * (BConv / NTT / iNTT / others) across dnum values at N = 2^17,
 * lambda = 128.
 *
 * Expected shape: BConv grows from ~12% at dnum = max to ~34% at
 * dnum = 1 — the observation motivating the dedicated BConvU.
 */
#include <cstdio>

#include "hwparams/explorer.h"

int
main()
{
    using namespace bts::hw;
    printf("=== Fig. 3(b): HMult complexity breakdown, N=2^17 ===\n");
    printf("%-6s %6s %8s %8s %8s %8s\n", "dnum", "L", "BConv%", "NTT%",
           "iNTT%", "Others%");
    const int max_dnum = max_dnum_for(1ULL << 17);
    for (int dnum : {1, 3, 6, 14, max_dnum}) {
        const int level = max_level_for(1ULL << 17, dnum);
        if (level < 1) continue;
        CkksInstance inst;
        inst.name = dnum == max_dnum ? "max" : std::to_string(dnum);
        inst.n = 1ULL << 17;
        inst.max_level = level;
        inst.dnum = dnum;
        const ComplexityBreakdown b = hmult_complexity(inst);
        printf("%-6s %6d %8.1f %8.1f %8.1f %8.1f\n", inst.name.c_str(),
               level, b.bconv * 100, b.ntt * 100, b.intt * 100,
               b.others * 100);
    }
    printf("\n(paper: BConv rises from 12%% at dnum=max to 34%% at "
           "dnum=1)\n");
    return 0;
}
