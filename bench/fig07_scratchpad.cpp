/**
 * @file
 * Fig. 7 reproduction:
 *  (a) minimum-bound vs actual T_mult,a/slot at 512MB and 2GB
 *      scratchpads for INS-1/2/3;
 *  (b) the fraction of each application spent in bootstrapping (INS-1).
 *
 * Expected shape: 2GB recovers the minimum bound (ct caches mostly
 * hit); INS-2 is best at the bound; the bootstrap fraction is highest
 * for the T_mult microbenchmark and lowest for ResNet-20.
 */
#include <cstdio>

#include "hwparams/explorer.h"
#include "sim/engine.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace bts;
    printf("=== Fig. 7(a): min bound vs scratchpad-limited Tmult ===\n");
    printf("%-8s %12s %12s %12s\n", "inst", "min-bound", "512MB", "2GB");
    for (const auto& inst : hw::table4_instances()) {
        sim::BtsConfig hw512;
        sim::BtsConfig hw2g;
        hw2g.scratchpad_bytes = 2048.0 * (1 << 20);
        const auto r512 = sim::BtsSimulator(hw512, inst)
                              .run(workloads::tmult_microbench(inst));
        const auto r2g = sim::BtsSimulator(hw2g, inst)
                             .run(workloads::tmult_microbench(inst));
        printf("%-8s %10.1fns %10.1fns %10.1fns\n", inst.name.c_str(),
               hw::min_bound_tmult_ns(inst), r512.tmult_a_slot_ns,
               r2g.tmult_a_slot_ns);
    }

    printf("\n=== Fig. 7(b): bootstrapping share per app (INS-1) ===\n");
    const auto inst = hw::ins1();
    const sim::BtsConfig hw;
    const sim::BtsSimulator s(hw, inst);
    struct Row
    {
        const char* name;
        sim::Trace trace;
    };
    Row rows[] = {
        {"Tmult,a/slot", workloads::tmult_microbench(inst)},
        {"HELR", workloads::helr(inst)},
        {"ResNet-20", workloads::resnet20(inst)},
        {"Sorting", workloads::sorting(inst)},
    };
    printf("%-14s %12s %12s %10s\n", "app", "total", "bootstrap",
           "boot%");
    for (auto& row : rows) {
        const auto r = s.run(row.trace);
        printf("%-14s %10.1fms %10.1fms %9.1f%%\n", row.name,
               r.total_s * 1e3, r.boot_s * 1e3,
               100.0 * r.boot_s / r.total_s);
    }
    printf("\npaper shape: bootstrap dominates the microbenchmark and "
           "sorting;\nResNet-20 has the smallest bootstrap share.\n");
    return 0;
}
