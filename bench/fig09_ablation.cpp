/**
 * @file
 * Fig. 9 reproduction: the ablation ladder —
 *   small BTS (Lattigo instance, temp-only scratchpad, no BConv/iNTT
 *   overlap) -> switch to INS-1 -> 512MB scratchpad -> overlap on
 *   (full BTS) -> 2TB/s HBM.
 *
 * Expected shape: each step helps; the scratchpad step is the largest;
 * doubling HBM helps only ~1.26x because compute starts to bind.
 */
#include <cstdio>

#include "baselines/published.h"
#include "sim/engine.h"
#include "workloads/workloads.h"

namespace {

double
run_tmult(const bts::sim::BtsConfig& hw, const bts::hw::CkksInstance& inst)
{
    const bts::sim::BtsSimulator s(hw, inst);
    return s.run(bts::workloads::tmult_microbench(inst)).tmult_a_slot_ns;
}

} // namespace

int
main()
{
    using namespace bts;
    const double lattigo_ns = baselines::lattigo_cpu().tmult_a_slot_ns;
    printf("=== Fig. 9: ablation of BTS features (Tmult,a/slot) ===\n");
    printf("%-44s %12s %10s\n", "configuration", "Tmult", "speedup");
    printf("%-44s %9.1f us %9.1fx\n", "Lattigo (CPU)", lattigo_ns / 1e3,
           1.0);

    // 1. Small BTS: Lattigo-like instance, scratchpad just big enough
    //    for temporaries, no BConv/iNTT overlap.
    const auto lat = hw::ins_lattigo();
    sim::BtsConfig small_hw;
    small_hw.overlap_bconv_intt = false;
    small_hw.scratchpad_bytes =
        lat.temp_bytes() + lat.evk_bytes(lat.max_level) * 0.25;
    double t = run_tmult(small_hw, lat);
    printf("%-44s %9.1f ns %9.0fx\n",
           "small BTS (INS-Lattigo, temp-only SP)", t, lattigo_ns / t);

    // 2. Switch the instance to INS-1.
    const auto i1 = hw::ins1();
    sim::BtsConfig step2 = small_hw;
    step2.scratchpad_bytes =
        i1.temp_bytes() + i1.evk_bytes(i1.max_level) * 0.25;
    t = run_tmult(step2, i1);
    printf("%-44s %9.1f ns %9.0fx\n", "small BTS (INS-1)", t,
           lattigo_ns / t);

    // 3. Grow the scratchpad to 512MB.
    sim::BtsConfig step3 = step2;
    step3.scratchpad_bytes = 512.0 * (1 << 20);
    t = run_tmult(step3, i1);
    printf("%-44s %9.1f ns %9.0fx\n", "+ 512MB scratchpad", t,
           lattigo_ns / t);

    // 4. Enable BConv/iNTT overlap: the full BTS.
    sim::BtsConfig step4 = step3;
    step4.overlap_bconv_intt = true;
    t = run_tmult(step4, i1);
    printf("%-44s %9.1f ns %9.0fx\n", "+ BConv/iNTT overlap (= BTS)", t,
           lattigo_ns / t);

    // 5. 2TB/s HBM variant.
    sim::BtsConfig step5 = step4;
    step5.hbm_bytes_per_s = 2.0e12;
    const double t5 = run_tmult(step5, i1);
    printf("%-44s %9.1f ns %9.0fx  (%.2fx over BTS)\n", "+ 2TB/s HBM", t5,
           lattigo_ns / t5, t / t5);

    printf("\npaper ladder: 379x -> 568x -> 1805x -> 2044x -> 2584x "
           "(1.26x for 2TB/s)\n");
    return 0;
}
