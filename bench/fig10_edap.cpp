/**
 * @file
 * Fig. 10 reproduction: bootstrapping time (broken down by op kind) and
 * EDAP as the scratchpad grows from 192MB to 1GB on INS-1.
 *
 * Expected shape: at 192MB ciphertext loads dominate (HMult/HRot share
 * drops to ~24%); performance and EDAP improve with capacity and then
 * saturate once the working set fits.
 */
#include <cstdio>

#include "sim/engine.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace bts;
    const auto inst = hw::ins1();

    // A back-to-back bootstrapping workload (3 refreshes) exposes the
    // ct-cache behaviour across bootstraps.
    sim::TraceBuilder b("boot3/INS-1");
    int ct = b.fresh_id();
    for (int i = 0; i < 3; ++i) {
        ct = workloads::append_bootstrap(b, inst, ct);
    }

    printf("=== Fig. 10: bootstrap time & EDAP vs scratchpad (INS-1) "
           "===\n");
    printf("%8s %10s %8s %8s %8s %8s %8s %12s\n", "SP(MB)", "boot(ms)",
           "HMult%", "HRot%", "PMult%", "HAdd%", "other%",
           "EDAP(J.s.mm2)");
    for (int mb = 192; mb <= 1024; mb += 64) {
        sim::BtsConfig hw;
        hw.scratchpad_bytes = static_cast<double>(mb) * (1 << 20);
        const sim::BtsSimulator s(hw, inst);
        const auto r = s.run(b.trace());

        auto share = [&](sim::HeOpKind kind) {
            const auto it = r.boot_by_kind.find(kind);
            return it == r.boot_by_kind.end()
                       ? 0.0
                       : 100.0 * it->second.total_s / r.boot_s;
        };
        const double hmult = share(sim::HeOpKind::kHMult);
        const double hrot = share(sim::HeOpKind::kHRot) +
                            share(sim::HeOpKind::kConj);
        const double pmult = share(sim::HeOpKind::kPMult);
        const double hadd = share(sim::HeOpKind::kHAdd);
        const double other = 100.0 - hmult - hrot - pmult - hadd;
        printf("%8d %10.1f %8.1f %8.1f %8.1f %8.1f %8.1f %12.4f\n", mb,
               r.boot_s / 3 * 1e3, hmult, hrot, pmult, hadd, other,
               r.edap);
    }
    printf("\npaper shape: HMult/HRot share grows with capacity (24%% "
           "at 192MB),\nEDAP falls then saturates near ~512MB.\n");
    return 0;
}
