/**
 * @file
 * Fig. 6 reproduction: amortized mult time per slot — BTS (simulated,
 * INS-1/2/3, 512MB scratchpad) vs the published Lattigo / 100x / F1 /
 * F1+ numbers.
 *
 * Expected shape: BTS wins by 3+ orders of magnitude over the CPU;
 * INS-2 is BTS's best instance; F1 is *slower* than the CPU once its
 * single-slot bootstrapping is amortized.
 */
#include <cstdio>

#include "baselines/published.h"
#include "sim/engine.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace bts;
    printf("=== Fig. 6: T_mult,a/slot comparison ===\n");
    printf("%-12s %10s %16s %12s\n", "platform", "lambda",
           "Tmult,a/slot", "vs Lattigo");

    const double lattigo_ns = baselines::lattigo_cpu().tmult_a_slot_ns;
    for (const auto& b : baselines::all_baselines()) {
        printf("%-12s %10.0f %13.1f us %11.1fx\n", b.name.c_str(),
               b.lambda_bits, b.tmult_a_slot_ns / 1e3,
               lattigo_ns / b.tmult_a_slot_ns);
    }

    const sim::BtsConfig hw;
    for (const auto& inst : hw::table4_instances()) {
        const sim::BtsSimulator s(hw, inst);
        const auto r = s.run(workloads::tmult_microbench(inst));
        printf("%-12s %10.1f %13.1f ns %11.0fx\n",
               ("BTS/" + inst.name).c_str(), inst.lambda(),
               r.tmult_a_slot_ns, lattigo_ns / r.tmult_a_slot_ns);
    }
    printf("\npaper: BTS best 45.5ns with INS-2 = 2,237x over Lattigo; "
           "F1+ 824x slower than BTS.\n");
    return 0;
}
