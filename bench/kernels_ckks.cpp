/**
 * @file
 * google-benchmark microbenchmarks of the CKKS library kernels: NTT,
 * base conversion, encoding, HMult, rotation, rescale, and a full
 * (small-instance) bootstrap. These measure the *functional* library on
 * the host CPU — the numbers the accelerator is designed to beat.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <map>
#include <memory>
#include <tuple>

#include "ckks/bootstrapper.h"
#include "ckks/decryptor.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "common/bit_ops.h"
#include "common/parallel.h"
#include "math/prime_gen.h"
#include "runtime/apps/helr.h"
#include "runtime/apps/resnet.h"
#include "runtime/apps/sort.h"
#include "runtime/graph_workloads.h"
#include "runtime/server.h"
#include "runtime/telemetry/trace.h"

namespace {

using namespace bts;

struct Env
{
    explicit Env(CkksParams p)
        : params(p),
          ctx(p),
          encoder(ctx),
          eval(ctx, encoder),
          keygen(ctx, 1),
          encryptor(ctx, 2),
          decryptor(ctx)
    {
        sk = keygen.gen_secret_key();
        mult_key = keygen.gen_mult_key(sk);
        rot_key = keygen.gen_rotation_key(sk, 1);
        const auto z =
            std::vector<Complex>(ctx.n() / 2, Complex(0.5, 0.25));
        ct = encryptor.encrypt_symmetric(
            encoder.encode(z, ctx.delta(), ctx.max_level()), sk);
    }

    CkksParams params;
    CkksContext ctx;
    CkksEncoder encoder;
    Evaluator eval;
    KeyGenerator keygen;
    Encryptor encryptor;
    Decryptor decryptor;
    SecretKey sk;
    EvalKey mult_key;
    EvalKey rot_key;
    Ciphertext ct;
};

Env&
env()
{
    static Env* e = [] {
        CkksParams p;
        p.n = 1 << 12;
        p.max_level = 8;
        p.dnum = 3;
        return new Env(p);
    }();
    return *e;
}

void
BM_Ntt(benchmark::State& state)
{
    const std::size_t n = state.range(0);
    const u64 prime = generate_ntt_primes(50, 2 * n, 1)[0];
    const NttTables tables(n, prime);
    Sampler s(1);
    auto data = s.uniform_poly(n, prime);
    for (auto _ : state) {
        tables.forward(data.data());
        benchmark::DoNotOptimize(data.data());
    }
    state.SetItemsProcessed(state.iterations() * n / 2 *
                            log2_exact(n));
}
BENCHMARK(BM_Ntt)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void
BM_NttLimbSweep(benchmark::State& state)
{
    // The limb-parallel acceptance sweep: a 2^16-point forward NTT over
    // 24 RNS limbs (one ciphertext polynomial of the paper's Set-A
    // scale), swept over the thread knob. Arg(0) is the lane count.
    const std::size_t n = 1 << 16;
    const int limbs = 24;
    const int threads = static_cast<int>(state.range(0));

    static const std::vector<u64> primes =
        generate_ntt_primes(50, 2 * n, limbs);
    static const std::vector<NttTables>* tables = [n] {
        auto* t = new std::vector<NttTables>;
        t->reserve(primes.size());
        for (u64 q : primes) t->emplace_back(n, q);
        return t;
    }();
    std::vector<const NttTables*> table_ptrs;
    for (const auto& t : *tables) table_ptrs.push_back(&t);

    Sampler s(7);
    RnsPoly poly(n, primes, Domain::kCoeff);
    for (int i = 0; i < limbs; ++i) {
        poly.component(i).copy_from(s.uniform_poly(n, primes[i]));
    }

    const int saved_threads = num_threads();
    set_num_threads(threads);
    for (auto _ : state) {
        poly.to_ntt(table_ptrs);
        benchmark::DoNotOptimize(poly.component(0).data());
        state.PauseTiming();
        poly.set_domain(Domain::kCoeff); // re-arm without timing an iNTT
        state.ResumeTiming();
    }
    set_num_threads(saved_threads); // don't clobber later benchmarks
    state.SetItemsProcessed(state.iterations() * limbs * n / 2 *
                            log2_exact(n));
    state.counters["threads"] = threads;
}
BENCHMARK(BM_NttLimbSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_TelemetryOverhead(benchmark::State& state)
{
    // The telemetry acceptance number: BM_NttLimbSweep's 4-thread body
    // with the tracing hooks compiled in, Arg(0)=0 runtime-disabled
    // (the default state every non-traced run pays — must stay within
    // noise of BM_NttLimbSweep/4) and Arg(0)=1 with the kKernel
    // category live (one span emitted per iteration).
    namespace tel = runtime::telemetry;
    const std::size_t n = 1 << 16;
    const int limbs = 24;
    const bool traced = state.range(0) != 0;

    static const std::vector<u64> primes =
        generate_ntt_primes(50, 2 * n, limbs);
    static const std::vector<NttTables>* tables = [n] {
        auto* t = new std::vector<NttTables>;
        t->reserve(primes.size());
        for (u64 q : primes) t->emplace_back(n, q);
        return t;
    }();
    std::vector<const NttTables*> table_ptrs;
    for (const auto& t : *tables) table_ptrs.push_back(&t);

    Sampler s(7);
    RnsPoly poly(n, primes, Domain::kCoeff);
    for (int i = 0; i < limbs; ++i) {
        poly.component(i).copy_from(s.uniform_poly(n, primes[i]));
    }

    const int saved_threads = num_threads();
    set_num_threads(4);
    if (traced) {
        tel::set_enabled(static_cast<u32>(tel::Category::kKernel));
        tel::reset_trace();
    }
    for (auto _ : state) {
        poly.to_ntt(table_ptrs);
        benchmark::DoNotOptimize(poly.component(0).data());
        state.PauseTiming();
        poly.set_domain(Domain::kCoeff); // re-arm without timing an iNTT
        state.ResumeTiming();
    }
    tel::set_enabled(0);
    if (traced) {
        state.counters["events"] = static_cast<double>(
            tel::collect_trace().total_events());
        tel::reset_trace();
    }
    set_num_threads(saved_threads);
    state.SetItemsProcessed(state.iterations() * limbs * n / 2 *
                            log2_exact(n));
    state.counters["traced"] = traced ? 1 : 0;
}
BENCHMARK(BM_TelemetryOverhead)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_BaseConv(benchmark::State& state)
{
    auto& e = env();
    const auto src = e.ctx.level_primes(e.ctx.max_level());
    const std::vector<u64> tgt = e.ctx.p_primes();
    const auto& conv = e.ctx.converter(src, tgt);
    Sampler s(2);
    RnsPoly poly(e.ctx.n(), src, Domain::kCoeff);
    for (std::size_t i = 0; i < src.size(); ++i) {
        poly.component(i).copy_from(s.uniform_poly(e.ctx.n(), src[i]));
    }
    for (auto _ : state) {
        auto out = conv.convert(poly);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_BaseConv);

void
BM_Encode(benchmark::State& state)
{
    auto& e = env();
    const auto z = std::vector<Complex>(e.ctx.n() / 2, Complex(0.3, 0.1));
    for (auto _ : state) {
        auto pt = e.encoder.encode(z, e.ctx.delta(), e.ctx.max_level());
        benchmark::DoNotOptimize(pt);
    }
}
BENCHMARK(BM_Encode);

void
BM_HMult(benchmark::State& state)
{
    auto& e = env();
    for (auto _ : state) {
        auto out = e.eval.mult(e.ct, e.ct, e.mult_key);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_HMult);

void
BM_HRot(benchmark::State& state)
{
    auto& e = env();
    for (auto _ : state) {
        auto out = e.eval.rotate(e.ct, 1, e.rot_key);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_HRot);

void
BM_Rescale(benchmark::State& state)
{
    auto& e = env();
    for (auto _ : state) {
        state.PauseTiming();
        Ciphertext prod = e.eval.mult(e.ct, e.ct, e.mult_key);
        state.ResumeTiming();
        e.eval.rescale_inplace(prod);
        benchmark::DoNotOptimize(prod);
    }
}
BENCHMARK(BM_Rescale);

void
BM_RescaleLowLevel(benchmark::State& state)
{
    // The acceptance sweep for coefficient-level tiling: rescale at a
    // 3-limb chain (the bootstrap-tail regime where per-limb
    // parallelism caps at 2 lanes), swept over the thread knob.
    // Arg(0) is the lane count.
    static Env* re = [] {
        CkksParams p;
        p.n = 1 << 14;
        p.max_level = 8;
        p.dnum = 3;
        return new Env(p);
    }();
    const int threads = static_cast<int>(state.range(0));

    static const Ciphertext* low = [] {
        auto* ct = new Ciphertext(re->ct);
        Evaluator& ev = re->eval;
        ev.drop_level_inplace(*ct, 2); // 3 limbs
        return ct;
    }();

    const int saved_threads = num_threads();
    set_num_threads(threads);
    for (auto _ : state) {
        state.PauseTiming();
        Ciphertext scratch = *low;
        state.ResumeTiming();
        re->eval.rescale_inplace(scratch);
        benchmark::DoNotOptimize(scratch.b.data());
    }
    set_num_threads(saved_threads);
    state.counters["threads"] = threads;
    state.counters["limbs"] = 3;
}
BENCHMARK(BM_RescaleLowLevel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/** Shared machinery for the bootstrap benchmarks: one Env + one
 *  Bootstrapper (with its rotation keys) per (params, radix). */
struct BootBench
{
    BootBench(CkksParams p, std::size_t slots, int radix, int sine_degree)
        : env(p)
    {
        BootstrapConfig cfg;
        cfg.slots = slots;
        cfg.sine_degree = sine_degree;
        cfg.cts_radix = radix;
        cfg.stc_radix = radix;
        boot = std::make_unique<Bootstrapper>(env.ctx, env.encoder, env.eval,
                                              cfg);
        rot_keys = env.keygen.gen_rotation_keys(env.sk,
                                                boot->required_rotations());
        conj = env.keygen.gen_conjugation_key(env.sk);
        boot->set_keys(&env.mult_key, &rot_keys, &conj);
        const auto z = std::vector<Complex>(slots, Complex(0.2, 0.1));
        ct = env.encryptor.encrypt_symmetric(
            env.encoder.encode(z, env.ctx.delta(), 0), env.sk);
    }

    /** One timed bootstrap with a per-stage breakdown (seconds). */
    void
    run(double& subsum, double& cts, double& eval_mod, double& stc)
    {
        using clock = std::chrono::steady_clock;
        const auto t0 = clock::now();
        const Ciphertext raised = boot->stage_raise_and_subsum(ct);
        const auto t1 = clock::now();
        const auto [u_re, u_im] = boot->stage_coeff_to_slot(raised);
        const auto t2 = clock::now();
        const Ciphertext v_re = boot->stage_eval_mod(u_re);
        const Ciphertext v_im = boot->stage_eval_mod(u_im);
        const auto t3 = clock::now();
        Ciphertext out = boot->stage_slot_to_coeff(v_re, v_im);
        const auto t4 = clock::now();
        benchmark::DoNotOptimize(out);
        const auto sec = [](auto a, auto b) {
            return std::chrono::duration<double>(b - a).count();
        };
        subsum += sec(t0, t1);
        cts += sec(t1, t2);
        eval_mod += sec(t2, t3);
        stc += sec(t3, t4);
    }

    Env env;
    std::unique_ptr<Bootstrapper> boot;
    RotationKeys rot_keys;
    EvalKey conj;
    Ciphertext ct;
};

void
run_boot_bench(benchmark::State& state, std::size_t n_log2,
               std::size_t slots, int sine_degree)
{
    // Arg(0) is the CtS/StC radix (0 = dense oracle). One cached
    // Env+Bootstrapper per (ring, radix); per-stage timings land in
    // the counters.
    const int radix = static_cast<int>(state.range(0));
    CkksParams p;
    p.n = std::size_t{1} << n_log2;
    p.max_level = 14;
    p.dnum = 3;
    p.q0_bits = 50;
    p.hamming_weight = 32;
    static std::map<std::tuple<std::size_t, std::size_t, int, int>,
                    BootBench*>
        cache;
    const auto key = std::make_tuple(n_log2, slots, sine_degree, radix);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache.emplace(key, new BootBench(p, slots, radix, sine_degree))
                 .first;
    }
    BootBench& bb = *it->second;
    double subsum = 0, cts = 0, eval_mod = 0, stc = 0;
    for (auto _ : state) {
        bb.run(subsum, cts, eval_mod, stc);
    }
    const double iters = static_cast<double>(state.iterations());
    state.counters["subsum_ms"] = 1e3 * subsum / iters;
    state.counters["cts_ms"] = 1e3 * cts / iters;
    state.counters["evalmod_ms"] = 1e3 * eval_mod / iters;
    state.counters["stc_ms"] = 1e3 * stc / iters;
    state.counters["rot_keys"] =
        static_cast<double>(bb.boot->required_rotations().size());
    state.counters["radix"] = radix;
}

void
BM_Bootstrap(benchmark::State& state)
{
    // Full bootstrap at slots=64 (gap=2), dense oracle vs factored
    // CtS/StC. Small ring so the CI bench job can afford it.
    run_boot_bench(state, 8, 64, 119);
}
BENCHMARK(BM_Bootstrap)->Arg(0)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void
BM_BootstrapLarge(benchmark::State& state)
{
    // The paper-scale (for this repo) instance: N=2^11, slots=512.
    // Excluded from the CI bench job (seconds per iteration); run
    // locally for the dense-vs-factored acceptance numbers.
    run_boot_bench(state, 11, 512, 119);
}
BENCHMARK(BM_BootstrapLarge)
    ->Arg(0)
    ->Arg(32)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

/**
 * Shared machinery for BM_Serving: one bootstrap-capable env (N=2^8,
 * slots=64, radix-8 CtS/StC — the BM_Bootstrap small instance, kept in
 * sync with the tests' BootTestEnv in tests/ckks/test_utils.h) whose
 * three client classes — dot products, Horner polynomial evaluation,
 * and bootstrap-refresh jobs — share the context, keys, and
 * pre-encrypted payloads. Jobs copy a prebuilt Binding, so the timed
 * region covers admission + scheduling + HE execution, not encryption.
 *
 * Two graph sets: sets[0] is the pass-off baseline (rescale placement
 * only — the minimum needed for an executable graph, no CSE / fusion /
 * lazy residues) and sets[1] is the full pass pipeline. BM_Serving's
 * second arg selects the set, so the pass-on vs pass-off serving
 * numbers come from the same env, keys, and payloads.
 */
struct ServeBench
{
    ServeBench()
        : env([] {
              CkksParams p;
              p.n = 1 << 8;
              p.max_level = 14;
              p.dnum = 3;
              p.q0_bits = 50;
              p.hamming_weight = 32;
              return p;
          }())
    {
        BootstrapConfig cfg;
        cfg.slots = 64;
        cfg.sine_degree = 119;
        cfg.cts_radix = 8;
        cfg.stc_radix = 8;
        boot = std::make_unique<Bootstrapper>(env.ctx, env.encoder,
                                              env.eval, cfg);
        auto amounts = boot->required_rotations();
        for (int r : {1, 2, 4}) amounts.push_back(r);
        rot_keys = env.keygen.gen_rotation_keys(env.sk, amounts);
        conj = env.keygen.gen_conjugation_key(env.sk);
        boot->set_keys(&env.mult_key, &rot_keys, &conj);

        runtime::GraphTraits t;
        t.max_level = env.ctx.max_level();
        t.delta = env.ctx.delta();
        const auto z = std::vector<Complex>(64, Complex(0.2, 0.1));
        const Ciphertext exhausted = env.encryptor.encrypt_symmetric(
            env.encoder.encode(z, env.ctx.delta(), 0), env.sk);
        // One probe refresh pins bootstrap_out_level for the graph
        // metadata (radix-8 leaves usable levels on this budget).
        t.bootstrap_out_level = boot->bootstrap(exhausted).level;

        const auto x = std::vector<Complex>(64, Complex(0.4, -0.2));
        const Ciphertext fresh = env.encryptor.encrypt_symmetric(
            env.encoder.encode(x, env.ctx.delta(), env.ctx.max_level()),
            env.sk);
        const runtime::passes::PassOptions variants[2] = {
            runtime::passes::PassOptions::rescale_only(),
            runtime::passes::PassOptions{},
        };
        for (int v = 0; v < 2; ++v) {
            GraphSet& s = sets[v];
            s.dot = std::make_unique<runtime::Graph>(
                runtime::dot_product_graph(t, t.max_level, 3,
                                           variants[v]));
            s.poly = std::make_unique<runtime::Graph>(
                runtime::poly_eval_graph(t, t.max_level,
                                         {0.5, -0.25, 1.0, 0.125},
                                         variants[v]));
            s.refresh = std::make_unique<runtime::Graph>(
                runtime::bootstrap_refresh_graph(t, variants[v]));
            s.dot_binding.bind(runtime::Value{s.dot->input_ids()[0]},
                               fresh);
            s.dot_binding.bind(
                runtime::Value{s.dot->input_ids()[1]},
                env.encoder.encode(z, env.ctx.delta(),
                                   env.ctx.max_level()));
            s.poly_binding.bind(runtime::Value{s.poly->input_ids()[0]},
                                fresh);
            s.refresh_binding.bind(
                runtime::Value{s.refresh->input_ids()[0]}, exhausted);
        }
    }

    runtime::EvalResources
    resources() const
    {
        runtime::EvalResources r;
        r.eval = &env.eval;
        r.encoder = &env.encoder;
        r.mult_key = &env.mult_key;
        r.rot_keys = &rot_keys;
        r.conj_key = &conj;
        r.bootstrapper = boot.get();
        return r;
    }

    struct GraphSet
    {
        std::unique_ptr<runtime::Graph> dot, poly, refresh;
        runtime::Binding dot_binding, poly_binding, refresh_binding;
    };

    Env env;
    std::unique_ptr<Bootstrapper> boot;
    RotationKeys rot_keys;
    EvalKey conj;
    GraphSet sets[2]; // [0] = pass-off baseline, [1] = full pipeline
};

void
BM_Serving(benchmark::State& state)
{
    // The mixed-client serving scenario: each iteration admits a batch
    // of 6 dot-product, 6 polynomial, and 2 bootstrap-refresh jobs to
    // a GraphServer and waits for all futures. Arg(0) is the lane
    // count; Arg(1) selects the graph set (0 = pass-off baseline,
    // 1 = full pass pipeline); jobs/s and the p50/p99 submit->complete
    // latencies land in the counters (aggregated over the whole run by
    // the server).
    static ServeBench* sb = new ServeBench();
    const int lanes = static_cast<int>(state.range(0));
    const int passes_on = static_cast<int>(state.range(1));
    const ServeBench::GraphSet& gs = sb->sets[passes_on ? 1 : 0];

    runtime::ServerOptions opts;
    opts.lanes = lanes;
    runtime::GraphServer server(sb->resources(), opts);
    constexpr int kDot = 6, kPoly = 6, kRefresh = 2;
    for (auto _ : state) {
        std::vector<std::future<runtime::JobResult>> futures;
        futures.reserve(kDot + kPoly + kRefresh);
        const auto submit = [&](const runtime::Graph* g,
                                const runtime::Binding& b,
                                const char* client) {
            runtime::JobRequest req;
            req.graph = g;
            req.inputs = b; // copy: each job owns its payload
            req.client = client;
            futures.push_back(server.submit(std::move(req)));
        };
        for (int i = 0; i < kDot; ++i) {
            submit(gs.dot.get(), gs.dot_binding, "dot");
        }
        for (int i = 0; i < kPoly; ++i) {
            submit(gs.poly.get(), gs.poly_binding, "poly");
        }
        for (int i = 0; i < kRefresh; ++i) {
            submit(gs.refresh.get(), gs.refresh_binding, "refresh");
        }
        for (auto& f : futures) {
            const runtime::JobResult r = f.get();
            benchmark::DoNotOptimize(r.outputs.data());
        }
    }
    const runtime::ServerStats s = server.stats();
    state.SetItemsProcessed(state.iterations() *
                            (kDot + kPoly + kRefresh));
    state.counters["lanes"] = lanes;
    state.counters["passes"] = passes_on;
    state.counters["jobs_per_s"] = s.jobs_per_s;
    state.counters["p50_ms"] = 1e3 * s.p50_latency_s;
    state.counters["p99_ms"] = 1e3 * s.p99_latency_s;
}
BENCHMARK(BM_Serving)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_ServingCostAdmission(benchmark::State& state)
{
    // Cost-aware admission vs FIFO on one lane, mixed traffic: each
    // iteration front-loads 2 expensive bootstrap-refresh jobs and
    // then 6 cheap dot products. Under FIFO the cheap jobs queue
    // behind the refreshes; with cost-aware admission (Arg(0)=1) SJF
    // pulls them ahead, which is the cheap-client p99 the counters
    // expose. est_ratio vs exec_ratio is the predicted-vs-measured
    // calibration check: the static cost model's expensive/cheap cost
    // ratio against the wall-clock one (model seconds are simulator
    // time, so only the ratio is comparable).
    static ServeBench* sb = new ServeBench();
    const bool cost_aware = state.range(0) != 0;
    const ServeBench::GraphSet& gs = sb->sets[1];

    runtime::ServerOptions opts;
    opts.lanes = 1; // queue ordering, not lane count, under test
    opts.cost_aware = cost_aware;
    runtime::GraphServer server(sb->resources(), opts);
    // Register so admission has cost estimates, and rebind the
    // prebuilt payloads onto the server's cached optimized graphs.
    const runtime::passes::OptimizeResult* dot =
        server.register_graph(*gs.dot);
    const runtime::passes::OptimizeResult* refresh =
        server.register_graph(*gs.refresh);
    const auto rebind = [](const runtime::Binding& from,
                           const runtime::passes::OptimizeResult* to) {
        runtime::Binding b;
        for (const auto& [id, ct] : from.ciphers) {
            b.bind(to->remap(runtime::Value{id}), ct);
        }
        for (const auto& [id, pt] : from.plains) {
            b.bind(to->remap(runtime::Value{id}), pt);
        }
        return b;
    };
    const runtime::Binding dot_b = rebind(gs.dot_binding, dot);
    const runtime::Binding refresh_b =
        rebind(gs.refresh_binding, refresh);

    constexpr int kRefresh = 2, kDot = 6;
    double est_dot = 0, est_refresh = 0;
    double exec_dot = 0, exec_refresh = 0;
    for (auto _ : state) {
        std::vector<std::future<runtime::JobResult>> futures;
        futures.reserve(kRefresh + kDot);
        const auto submit = [&](const runtime::Graph* g,
                                const runtime::Binding& b,
                                const char* client) {
            runtime::JobRequest req;
            req.graph = g;
            req.inputs = b; // copy: each job owns its payload
            req.client = client;
            futures.push_back(server.submit(std::move(req)));
        };
        for (int i = 0; i < kRefresh; ++i) {
            submit(&refresh->graph, refresh_b, "expensive");
        }
        for (int i = 0; i < kDot; ++i) {
            submit(&dot->graph, dot_b, "cheap");
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
            const runtime::JobResult r = futures[i].get();
            benchmark::DoNotOptimize(r.outputs.data());
            if (i < kRefresh) {
                est_refresh += r.est_cost_s;
                exec_refresh += r.exec_s;
            } else {
                est_dot += r.est_cost_s;
                exec_dot += r.exec_s;
            }
        }
    }
    server.drain();
    const runtime::ServerStats s = server.stats();
    state.SetItemsProcessed(state.iterations() * (kRefresh + kDot));
    state.counters["cost_aware"] = cost_aware ? 1 : 0;
    const auto it = s.p99_latency_by_client_s.find("cheap");
    state.counters["cheap_p99_ms"] =
        it == s.p99_latency_by_client_s.end() ? 0.0
                                              : 1e3 * it->second;
    state.counters["p99_ms"] = 1e3 * s.p99_latency_s;
    // Predicted vs measured cost ratio (expensive / cheap class).
    state.counters["est_ratio"] =
        est_dot > 0 ? (est_refresh / kRefresh) / (est_dot / kDot) : 0;
    state.counters["exec_ratio"] =
        exec_dot > 0 ? (exec_refresh / kRefresh) / (exec_dot / kDot)
                     : 0;
}
BENCHMARK(BM_ServingCostAdmission)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/**
 * Shared machinery for BM_Helr / BM_AppServing: the L=20 variant of
 * the serving instance (same N=2^8 / slots=64 / radix-8 bootstrap as
 * ServeBench, 8 usable levels after the 12-level bootstrap budget —
 * the tests' BootTestEnv with max_level=20) running the runtime/apps
 * graph ports of the paper's Table 5/6 applications functionally:
 * HELR training iterations, ResNet-20-style inference jobs, and
 * encrypted bitonic sorting, all with genuine mid-circuit Bootstrap
 * refreshes. Bindings are prebuilt and copied per run, so the timed
 * region covers scheduling + HE execution, not encryption.
 */
struct AppServeBench
{
    AppServeBench()
        : env([] {
              CkksParams p;
              p.n = 1 << 8;
              p.max_level = 20;
              p.dnum = 3;
              p.q0_bits = 50;
              p.hamming_weight = 32;
              return p;
          }())
    {
        BootstrapConfig cfg;
        cfg.slots = 64;
        cfg.sine_degree = 119;
        cfg.cts_radix = 8;
        cfg.stc_radix = 8;
        boot = std::make_unique<Bootstrapper>(env.ctx, env.encoder,
                                              env.eval, cfg);
        auto amounts = boot->required_rotations();
        // Union of the functional apps' required_rotations().
        for (int r : {-2, -1, 1, 2, 3, 4, 5, 6, 8, 16, 32}) {
            amounts.push_back(r);
        }
        rot_keys = env.keygen.gen_rotation_keys(env.sk, amounts);
        conj = env.keygen.gen_conjugation_key(env.sk);
        boot->set_keys(&env.mult_key, &rot_keys, &conj);

        runtime::GraphTraits t;
        t.max_level = env.ctx.max_level();
        t.delta = env.ctx.delta();
        const auto zero = std::vector<Complex>(64, Complex(0.1, 0.0));
        const Ciphertext exhausted = env.encryptor.encrypt_symmetric(
            env.encoder.encode(zero, env.ctx.delta(), 0), env.sk);
        t.bootstrap_out_level = boot->bootstrap(exhausted).level;

        using namespace runtime::apps;
        helr = std::make_unique<HelrApp>(
            build_helr(HelrConfig::functional(), t));
        HelrConfig raw_cfg = HelrConfig::functional();
        raw_cfg.optimize = false; // pass-off baseline for BM_Helr
        helr_raw = std::make_unique<HelrApp>(build_helr(raw_cfg, t));
        resnet = std::make_unique<ResnetApp>(
            build_resnet(ResnetConfig::functional(), t));
        sort_cfg = SortConfig::functional();
        sort = std::make_unique<SortApp>(build_sort(sort_cfg, t));

        const auto flat = [](double v) {
            return std::vector<Complex>(64, Complex(v, 0.0));
        };
        bind_ct(helr_binding, helr->weights, flat(0.05), t);
        for (const runtime::Value d : helr->data) {
            bind_pt(helr_binding, d, flat(0.3), t);
        }
        bind_pt(helr_binding, helr->grad_data, flat(0.01), t);

        bind_ct(helr_raw_binding, helr_raw->weights, flat(0.05), t);
        for (const runtime::Value d : helr_raw->data) {
            bind_pt(helr_raw_binding, d, flat(0.3), t);
        }
        bind_pt(helr_raw_binding, helr_raw->grad_data, flat(0.01), t);

        bind_ct(resnet_binding, resnet->act, flat(0.3), t);
        for (const auto& layer : resnet->taps) {
            for (const runtime::Value tap : layer) {
                bind_pt(resnet_binding, tap,
                        flat(0.5 / static_cast<double>(layer.size())), t);
            }
        }
        bind_pt(resnet_binding, resnet->pool_weights, flat(0.125), t);

        std::vector<Complex> grid(64);
        const double vals[4] = {0.75, -0.25, 0.25, -0.75};
        for (std::size_t i = 0; i < grid.size(); ++i) {
            grid[i] = Complex(vals[i % 4], 0.0);
        }
        bind_ct(sort_binding, sort->values, grid, t);
        for (const auto& st : sort->stages) {
            const int k = sort_cfg.log_elements;
            bind_pt(sort_binding, st.mask_lo,
                    sort_mask_lo(k, st.distance, 64), t);
            bind_pt(sort_binding, st.mask_hi,
                    sort_mask_hi(k, st.distance, 64), t);
            bind_pt(sort_binding, st.select,
                    sort_select_mask(k, st.phase, st.distance, 64), t);
        }
    }

    void
    bind_ct(runtime::Binding& b, runtime::Value v,
            const std::vector<Complex>& z, const runtime::GraphTraits& t)
    {
        b.bind(v, env.encryptor.encrypt_symmetric(
                      env.encoder.encode(z, t.delta,
                                         t.bootstrap_out_level),
                      env.sk));
    }

    void
    bind_pt(runtime::Binding& b, runtime::Value v,
            const std::vector<Complex>& z, const runtime::GraphTraits& t)
    {
        b.bind(v, env.encoder.encode(z, t.delta, t.max_level));
    }

    runtime::EvalResources
    resources() const
    {
        runtime::EvalResources r;
        r.eval = &env.eval;
        r.encoder = &env.encoder;
        r.mult_key = &env.mult_key;
        r.rot_keys = &rot_keys;
        r.conj_key = &conj;
        r.bootstrapper = boot.get();
        return r;
    }

    Env env;
    std::unique_ptr<Bootstrapper> boot;
    RotationKeys rot_keys;
    EvalKey conj;
    std::unique_ptr<runtime::apps::HelrApp> helr;
    std::unique_ptr<runtime::apps::HelrApp> helr_raw; // pass-off
    std::unique_ptr<runtime::apps::ResnetApp> resnet;
    std::unique_ptr<runtime::apps::SortApp> sort;
    runtime::apps::SortConfig sort_cfg;
    runtime::Binding helr_binding, helr_raw_binding, resnet_binding,
        sort_binding;
};

AppServeBench&
app_bench()
{
    static AppServeBench* b = new AppServeBench();
    return *b;
}

void
BM_Helr(benchmark::State& state)
{
    // One functional-scale HELR training run (3 iterations, 2 data
    // plaintexts, full 64-slot feature reduction, 2 mid-training
    // bootstraps) per iteration on the Executor. Arg(0) = lanes;
    // Arg(1) = pass pipeline on/off (0 runs the unoptimized graph).
    auto& ab = app_bench();
    const int lanes = static_cast<int>(state.range(0));
    const int passes_on = static_cast<int>(state.range(1));
    const runtime::apps::HelrApp& app =
        passes_on ? *ab.helr : *ab.helr_raw;
    const runtime::Binding& binding =
        passes_on ? ab.helr_binding : ab.helr_raw_binding;
    runtime::ExecOptions opts;
    opts.lanes = lanes;
    const runtime::Executor exec(ab.resources(), opts);
    for (auto _ : state) {
        auto outs = exec.run(app.graph, runtime::Binding(binding));
        benchmark::DoNotOptimize(outs.data());
    }
    state.counters["lanes"] = lanes;
    state.counters["passes"] = passes_on;
    state.counters["bootstraps"] =
        app.graph.count_kind(runtime::OpKind::kBootstrap);
    state.counters["graph_ops"] =
        static_cast<double>(app.graph.num_nodes());
}
BENCHMARK(BM_Helr)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Iterations(3)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_AppServing(benchmark::State& state)
{
    // The application serving scenario: each iteration admits 2
    // encrypted ResNet inference jobs and 1 encrypted sorting job to a
    // GraphServer and waits for all futures. Arg(0) = lane count.
    auto& ab = app_bench();
    const int lanes = static_cast<int>(state.range(0));

    runtime::ServerOptions opts;
    opts.lanes = lanes;
    runtime::GraphServer server(ab.resources(), opts);
    constexpr int kResnet = 2, kSort = 1;
    for (auto _ : state) {
        std::vector<std::future<runtime::JobResult>> futures;
        futures.reserve(kResnet + kSort);
        const auto submit = [&](const runtime::Graph* g,
                                const runtime::Binding& b,
                                const char* client) {
            runtime::JobRequest req;
            req.graph = g;
            req.inputs = b; // copy: each job owns its payload
            req.client = client;
            futures.push_back(server.submit(std::move(req)));
        };
        for (int i = 0; i < kResnet; ++i) {
            submit(&ab.resnet->graph, ab.resnet_binding, "resnet");
        }
        for (int i = 0; i < kSort; ++i) {
            submit(&ab.sort->graph, ab.sort_binding, "sort");
        }
        for (auto& f : futures) {
            const runtime::JobResult r = f.get();
            benchmark::DoNotOptimize(r.outputs.data());
        }
    }
    const runtime::ServerStats s = server.stats();
    state.SetItemsProcessed(state.iterations() * (kResnet + kSort));
    state.counters["lanes"] = lanes;
    state.counters["jobs_per_s"] = s.jobs_per_s;
    state.counters["p50_ms"] = 1e3 * s.p50_latency_s;
    state.counters["p99_ms"] = 1e3 * s.p99_latency_s;
}
BENCHMARK(BM_AppServing)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(2)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
