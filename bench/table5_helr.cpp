/**
 * @file
 * Table 5 reproduction: HELR logistic-regression training time per
 * iteration (batch 1024, 30 iterations) — BTS (simulated, INS-1/2/3)
 * vs the published Lattigo / 100x / F1 / F1+ numbers.
 *
 * Expected shape: BTS is ~3 orders of magnitude over the CPU and ~1
 * over the GPU; INS-2 is the best BTS instance.
 *
 * The workloads::helr trace this prices is the pin target for the
 * runtime graph application runtime/apps/helr.h — its paper()
 * configuration must lower to the same op histogram / bootstrap
 * count / op count (tests/runtime/test_apps_pin.cpp), and the same
 * circuit runs functionally on real ciphertexts
 * (tests/runtime/test_apps_functional.cpp). Structural edits to the
 * generator must be mirrored there; see docs/APPLICATIONS.md.
 */
#include <cstdio>

#include "baselines/published.h"
#include "sim/engine.h"
#include "workloads/workloads.h"

int
main()
{
    using namespace bts;
    printf("=== Table 5: HELR training time per iteration ===\n");
    printf("%-12s %14s %12s\n", "platform", "time/iter", "speedup");
    const double cpu_ms = baselines::lattigo_cpu().helr_iter_ms;
    for (const auto& b : baselines::all_baselines()) {
        if (b.helr_iter_ms <= 0) continue;
        printf("%-12s %12.1fms %11.1fx\n", b.name.c_str(), b.helr_iter_ms,
               cpu_ms / b.helr_iter_ms);
    }
    const sim::BtsConfig hw;
    for (const auto& inst : hw::table4_instances()) {
        const sim::BtsSimulator s(hw, inst);
        const auto trace = workloads::helr(inst);
        const auto r = s.run(trace);
        const double ms = r.total_s * 1e3 / 30;
        printf("%-12s %12.1fms %11.0fx   (%d bootstraps/30 iters)\n",
               ("BTS/" + inst.name).c_str(), ms, cpu_ms / ms,
               trace.bootstrap_count);
    }
    printf("\npaper: BTS/INS-2 28.4ms = 1,306x over Lattigo, 27x over "
           "the GPU, 5.2x over F1+.\n");
    return 0;
}
