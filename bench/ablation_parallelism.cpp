/**
 * @file
 * Section 4.3 ablation: residue-polynomial-level parallelism (rPLP, the
 * F1/HEAX approach) vs coefficient-level parallelism (CLP, the BTS
 * choice). rPLP's usable parallelism tracks the fluctuating level l,
 * idling PE groups as the modulus chain shrinks; CLP's is pinned to the
 * level-independent N.
 */
#include <cstdio>

#include "hwparams/explorer.h"

int
main()
{
    using namespace bts::hw;
    printf("=== Section 4.3: rPLP vs CLP PE utilization ===\n");
    for (const auto& inst : table4_instances()) {
        printf("\n-- %s (L=%d, k=%d) --\n", inst.name.c_str(),
               inst.max_level, inst.num_special());
        printf("%8s %12s %12s\n", "level", "rPLP util", "CLP util");
        const auto points = parallelism_comparison(inst);
        for (std::size_t i = 0; i < points.size();
             i += std::max<std::size_t>(1, points.size() / 8)) {
            const auto& p = points[i];
            printf("%8d %11.1f%% %11.1f%%\n", p.level,
                   p.rplp_utilization * 100, p.clp_utilization * 100);
        }
        printf("average over a level descent: rPLP %.1f%%, CLP 100%%\n",
               rplp_average_utilization(inst) * 100);
    }
    printf("\n(The load-imbalance argument for CLP in Section 4.3: data\n"
           "exchange volume is identical for both — (k+l+1)N — but only\n"
           "rPLP's parallelism degrades with the level.)\n");
    return 0;
}
