/**
 * @file
 * Fig. 8 reproduction, two arms:
 *
 *  1. SIM — the analytic execution timeline of one max-level HMult on
 *     INS-1 (sim/timeline.h): HBM / NTTU / BConvU / element-wise phase
 *     bars plus scratchpad occupancy and bandwidth curves. Expected
 *     shape: bound by the ~112 MiB evk stream (~120 us at ~1 TB/s, 98%
 *     HBM utilization); NTTUs busy ~3/4; BConvU ~1/3.
 *
 *  2. MEASURED — the same timeline concept captured from the *real*
 *     functional library via runtime telemetry (runtime/telemetry/):
 *     one max-level HMult is traced, and the kernel/evaluator spans
 *     (ntt.fwd / ntt.inv / bconv / keyswitch / rescale) print as a
 *     track/phase/start/end table. Pass --trace=FILE to also dump the
 *     capture as Chrome trace-event JSON for Perfetto.
 *
 * The two arms answer the same question at different fidelities: the
 * sim arm prices the op on BTS hardware, the measured arm shows where
 * the host software actually spends the op's time.
 */
#include <cstdio>
#include <cstring>
#include <fstream>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "runtime/telemetry/chrome_trace.h"
#include "runtime/telemetry/trace.h"
#include "sim/timeline.h"

namespace {

using namespace bts;
namespace tel = bts::runtime::telemetry;

void
print_sim_arm()
{
    const sim::BtsConfig hw;
    const auto inst = hw::ins1();
    const auto tl = sim::hmult_timeline(hw, inst);

    printf("=== Fig. 8 (sim): HMult timeline on %s ===\n",
           inst.name.c_str());
    printf("total: %.1f us | HBM util %.0f%% | NTTU busy %.0f%% | "
           "BConvU busy %.0f%%\n",
           tl.total_ns / 1e3, tl.hbm_util * 100, tl.nttu_busy_frac * 100,
           tl.bconv_busy_frac * 100);
    printf("(paper: ~120 us, 98%%, 76%%, 33%%)\n\n");

    printf("%-8s %-26s %12s %12s\n", "track", "phase", "start(ns)",
           "end(ns)");
    for (const auto& seg : tl.segments) {
        printf("%-8s %-26s %12.0f %12.0f\n", seg.track.c_str(),
               seg.label.c_str(), seg.start_ns, seg.end_ns);
    }

    printf("\nScratchpad usage / bandwidth over time:\n");
    printf("%12s %16s %10s\n", "t(ns)", "usage(MB)", "bw util");
    for (std::size_t i = 0; i < tl.usage.size(); i += 8) {
        const auto& u = tl.usage[i];
        printf("%12.0f %16.1f %9.0f%%\n", u.t_ns, u.scratchpad_mb,
               u.bandwidth_util * 100);
    }
}

/** Trace one real max-level HMult and print the captured kernel /
 *  evaluator spans as the measured timeline table. */
void
print_measured_arm(const char* trace_path)
{
    CkksParams p;
    p.n = 1 << 12;
    p.max_level = 8;
    p.dnum = 3;
    CkksContext ctx(p);
    CkksEncoder encoder(ctx);
    Evaluator eval(ctx, encoder);
    KeyGenerator keygen(ctx, 1);
    Encryptor encryptor(ctx, 2);
    const SecretKey sk = keygen.gen_secret_key();
    const EvalKey mult_key = keygen.gen_mult_key(sk);
    const std::vector<Complex> z(ctx.n() / 2, Complex(0.5, 0.25));
    const Ciphertext ct = encryptor.encrypt_symmetric(
        encoder.encode(z, ctx.delta(), ctx.max_level()), sk);

    tel::set_thread_name("main");
    tel::set_enabled(static_cast<u32>(tel::Category::kKernel) |
                     static_cast<u32>(tel::Category::kEvaluator));
    tel::reset_trace();
    const Ciphertext out = eval.mult(ct, ct, mult_key);
    tel::set_enabled(0);
    (void)out;
    const tel::Trace trace = tel::collect_trace();

    printf("\n=== Fig. 8 (measured): HMult spans, N=2^12 L=8 host run "
           "===\n");
    printf("%-8s %-26s %12s %12s %8s\n", "track", "phase", "start(ns)",
           "end(ns)", "limbs");
    u64 t_base = ~u64{0};
    for (const auto& th : trace.threads) {
        for (const auto& ev : th.events) {
            if (ev.t0_ns < t_base) t_base = ev.t0_ns;
        }
    }
    for (const auto& th : trace.threads) {
        const char* track =
            th.name.empty() ? "thread" : th.name.c_str();
        for (const auto& ev : th.events) {
            if (ev.kind != tel::EventKind::kSpan) continue;
            printf("%-8s %-26s %12llu %12llu %8lld\n", track, ev.name,
                   static_cast<unsigned long long>(ev.t0_ns - t_base),
                   static_cast<unsigned long long>(ev.t1_ns - t_base),
                   static_cast<long long>(ev.arg));
        }
    }
    printf("(%zu events captured, %llu dropped)\n", trace.total_events(),
           static_cast<unsigned long long>(trace.total_dropped()));

    if (trace_path != nullptr) {
        std::ofstream os(trace_path);
        if (!os) {
            fprintf(stderr, "cannot open %s\n", trace_path);
            return;
        }
        tel::write_chrome_trace(trace, os);
        printf("wrote Chrome trace JSON to %s\n", trace_path);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const char* trace_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace=", 8) == 0) {
            trace_path = argv[i] + 8;
        }
    }
    print_sim_arm();
    print_measured_arm(trace_path);
    return 0;
}
