/**
 * @file
 * Fig. 8 reproduction: the execution timeline of one max-level HMult on
 * INS-1 — HBM / NTTU / BConvU / element-wise phase bars, plus the
 * scratchpad occupancy and bandwidth-utilization curves.
 *
 * Expected shape: the op is bound by the ~112 MiB evk stream (~120 us
 * at ~1 TB/s, 98% HBM utilization); NTTUs busy ~3/4 of the time;
 * BConvU ~1/3; peak scratchpad usage at BConv.ax (~183 MB).
 */
#include <cstdio>

#include "sim/timeline.h"

int
main()
{
    using namespace bts;
    const sim::BtsConfig hw;
    const auto inst = hw::ins1();
    const auto tl = sim::hmult_timeline(hw, inst);

    printf("=== Fig. 8: HMult timeline on %s ===\n", inst.name.c_str());
    printf("total: %.1f us | HBM util %.0f%% | NTTU busy %.0f%% | "
           "BConvU busy %.0f%%\n",
           tl.total_ns / 1e3, tl.hbm_util * 100, tl.nttu_busy_frac * 100,
           tl.bconv_busy_frac * 100);
    printf("(paper: ~120 us, 98%%, 76%%, 33%%)\n\n");

    printf("%-8s %-26s %12s %12s\n", "track", "phase", "start(ns)",
           "end(ns)");
    for (const auto& seg : tl.segments) {
        printf("%-8s %-26s %12.0f %12.0f\n", seg.track.c_str(),
               seg.label.c_str(), seg.start_ns, seg.end_ns);
    }

    printf("\nScratchpad usage / bandwidth over time:\n");
    printf("%12s %16s %10s\n", "t(ns)", "usage(MB)", "bw util");
    for (std::size_t i = 0; i < tl.usage.size(); i += 8) {
        const auto& u = tl.usage[i];
        printf("%12.0f %16.1f %9.0f%%\n", u.t_ns, u.scratchpad_mb,
               u.bandwidth_util * 100);
    }
    return 0;
}
