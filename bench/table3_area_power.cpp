/**
 * @file
 * Table 3 reproduction: per-component area and peak power of BTS.
 * These are the calibrated hardware-model constants (see DESIGN.md's
 * substitution table) — printed with their totals as a consistency
 * check against the paper's 373.6 mm^2 / 163.2 W.
 */
#include <cstdio>

#include "sim/hw_config.h"

int
main()
{
    using namespace bts::sim;
    printf("=== Table 3: BTS area & peak power (7nm model) ===\n");
    printf("%-24s %12s %12s\n", "Component", "Area (mm^2)", "Power (W)");
    for (const auto& c : BtsConfig::table3()) {
        printf("%-24s %12.2f %12.2f\n", c.name.c_str(), c.area_mm2,
               c.power_w);
    }
    printf("%-24s %12.1f %12.1f   (paper: 373.6 / 163.2)\n", "Total",
           BtsConfig::total_area_mm2(), BtsConfig::total_peak_power_w());

    const BtsConfig hw;
    printf("\nDerived microarchitecture constants:\n");
    printf("  PEs: %d (%d x %d grid) @ %.1f GHz\n", hw.n_pe, hw.pe_rows,
           hw.pe_cols, hw.freq_hz / 1e9);
    printf("  epoch (N=2^17): %.0f cycles = %.0f ns\n",
           hw.epoch_cycles(1ULL << 17), hw.epoch_seconds(1ULL << 17) * 1e9);
    printf("  HBM: %.1f TB/s aggregate (x%.2f efficiency)\n",
           hw.hbm_bytes_per_s / 1e12, hw.hbm_efficiency);
    printf("  scratchpad: %.0f MB @ %.1f TB/s\n",
           hw.scratchpad_bytes / (1 << 20),
           hw.scratchpad_bytes_per_s / 1e12);
    printf("  PE-PE NoC bisection: %.1f TB/s\n",
           hw.noc_bisection_bytes_per_s / 1e12);
    return 0;
}
