/**
 * @file
 * Fig. 1 reproduction: maximum level L and single-evk size vs dnum for
 * N in {2^15..2^18} at the 128-bit security target, plus the "Max dnum"
 * inset table.
 */
#include <cstdio>

#include "hwparams/explorer.h"

int
main()
{
    using namespace bts::hw;
    printf("=== Fig. 1(a): maximum level L vs dnum (128b target) ===\n");
    printf("%-8s", "dnum");
    for (int log_n = 15; log_n <= 18; ++log_n) {
        printf("  N=2^%-4d", log_n);
    }
    printf("\n");
    for (int dnum : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}) {
        printf("%-8d", dnum);
        for (int log_n = 15; log_n <= 18; ++log_n) {
            const int level = max_level_for(1ULL << log_n, dnum);
            if (level >= dnum - 1) {
                printf("  %-8d", level);
            } else {
                printf("  %-8s", "-");
            }
        }
        printf("\n");
    }
    printf("(dotted line of the paper: L >= 11 needed to bootstrap)\n\n");

    printf("=== Fig. 1(b): single evk size (GB) vs dnum ===\n");
    printf("%-8s", "dnum");
    for (int log_n = 15; log_n <= 18; ++log_n) printf("  N=2^%-6d", log_n);
    printf("\n");
    for (int dnum : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
        printf("%-8d", dnum);
        for (int log_n = 15; log_n <= 18; ++log_n) {
            const int level = max_level_for(1ULL << log_n, dnum);
            if (level < std::max(1, dnum - 1)) {
                printf("  %-10s", "-");
                continue;
            }
            CkksInstance inst;
            inst.n = 1ULL << log_n;
            inst.max_level = level;
            inst.dnum = dnum;
            printf("  %-10.3f", inst.evk_total_bytes() / 1e9);
        }
        printf("\n");
    }

    printf("\n=== Fig. 1 inset: max dnum (paper: 14/29/60/121) ===\n");
    for (int log_n = 15; log_n <= 18; ++log_n) {
        printf("N=2^%d: max dnum = %d\n", log_n,
               max_dnum_for(1ULL << log_n));
    }
    return 0;
}
