#include <gtest/gtest.h>

#include "baselines/published.h"
#include "sim/engine.h"
#include "workloads/workloads.h"

namespace bts::workloads {
namespace {

using sim::HeOpKind;

int
count_kind(const Trace& t, HeOpKind kind)
{
    int n = 0;
    for (const auto& op : t.ops) n += (op.kind == kind);
    return n;
}

TEST(BootstrapPlan, OpMixAndLevels)
{
    sim::TraceBuilder b("boot");
    const int out = append_bootstrap(b, hw::ins1(), b.fresh_id());
    EXPECT_GE(out, 0);
    const auto& t = b.trace();
    EXPECT_EQ(t.bootstrap_count, 1);
    EXPECT_EQ(count_kind(t, HeOpKind::kModRaise), 1);
    EXPECT_EQ(count_kind(t, HeOpKind::kConj), 1);
    // ">40 evks" worth of rotations plus the EvalMod HMults.
    EXPECT_GT(count_kind(t, HeOpKind::kHRot), 40);
    EXPECT_EQ(count_kind(t, HeOpKind::kHMult), 30); // 15 per component
    for (const auto& op : t.ops) {
        EXPECT_TRUE(op.in_bootstrap);
        EXPECT_GE(op.level, 1);
        EXPECT_LE(op.level, hw::ins1().max_level);
    }
}

TEST(BootstrapPlan, LevelsDescendThroughStages)
{
    sim::TraceBuilder b("boot");
    append_bootstrap(b, hw::ins2(), b.fresh_id());
    const auto& ops = b.trace().ops;
    EXPECT_EQ(ops.front().level, hw::ins2().max_level);
    // The last StC stage sits at the bottom of the L_boot budget.
    const int bottom = hw::ins2().max_level - hw::ins2().boot_levels + 1;
    EXPECT_EQ(ops.back().level, bottom);
}

class InstanceSweep
    : public ::testing::TestWithParam<int>
{
  protected:
    hw::CkksInstance
    inst() const
    {
        return hw::table4_instances()[GetParam()];
    }
};

TEST_P(InstanceSweep, MicrobenchUsesAllUsableLevels)
{
    const auto t = tmult_microbench(inst());
    EXPECT_EQ(count_kind(t, HeOpKind::kHMult) -
                  30, // EvalMod HMults inside the bootstrap
              inst().usable_levels());
    EXPECT_EQ(t.bootstrap_count, 1);
}

TEST_P(InstanceSweep, TracesRespectLevelBounds)
{
    for (const auto& t :
         {helr(inst()), resnet20(inst()), sorting(inst())}) {
        for (const auto& op : t.ops) {
            EXPECT_GE(op.level, 1) << t.name;
            EXPECT_LE(op.level, inst().max_level) << t.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Table4, InstanceSweep, ::testing::Values(0, 1, 2));

TEST(Workloads, ResnetBootstrapCountsMatchTable6)
{
    // Paper: 53 / 22 / 19 bootstraps for INS-1/2/3.
    EXPECT_NEAR(resnet20(hw::ins1()).bootstrap_count, 53, 4);
    EXPECT_NEAR(resnet20(hw::ins2()).bootstrap_count, 22, 4);
    EXPECT_NEAR(resnet20(hw::ins3()).bootstrap_count, 19, 5);
}

TEST(Workloads, SortingBootstrapOrdering)
{
    // Paper: 521 / 306 / 229 — monotone decreasing in usable levels.
    const int b1 = sorting(hw::ins1()).bootstrap_count;
    const int b2 = sorting(hw::ins2()).bootstrap_count;
    const int b3 = sorting(hw::ins3()).bootstrap_count;
    EXPECT_GT(b1, b2);
    EXPECT_GT(b2, b3);
    EXPECT_NEAR(b1, 521, 521 * 0.15);
}

TEST(Workloads, HelrBootstrapsScaleWithUsableLevels)
{
    EXPECT_GT(helr(hw::ins1()).bootstrap_count,
              helr(hw::ins2()).bootstrap_count);
    EXPECT_GE(helr(hw::ins2()).bootstrap_count,
              helr(hw::ins3()).bootstrap_count);
}

TEST(EndToEnd, HeadlineSpeedupsHold)
{
    // The reproduction's headline shape: BTS beats the CPU by 3+ orders
    // of magnitude on every workload (paper: 1,306x HELR, 5,556x
    // ResNet-20, 1,482x sorting, 2,237x Tmult).
    const sim::BtsConfig hwcfg;
    const auto cpu = baselines::lattigo_cpu();

    const auto i2 = hw::ins2();
    const auto r_tmult = sim::BtsSimulator(hwcfg, i2)
                             .run(tmult_microbench(i2));
    EXPECT_GT(cpu.tmult_a_slot_ns / r_tmult.tmult_a_slot_ns, 1000);
    EXPECT_LT(cpu.tmult_a_slot_ns / r_tmult.tmult_a_slot_ns, 5000);

    const auto r_helr = sim::BtsSimulator(hwcfg, i2).run(helr(i2));
    const double helr_ms = r_helr.total_s * 1e3 / 30;
    EXPECT_GT(cpu.helr_iter_ms / helr_ms, 800);

    const auto i1 = hw::ins1();
    const auto r_rn = sim::BtsSimulator(hwcfg, i1).run(resnet20(i1));
    EXPECT_GT(cpu.resnet20_s / r_rn.total_s, 2000);
    EXPECT_LT(cpu.resnet20_s / r_rn.total_s, 20000);

    const auto r_sort = sim::BtsSimulator(hwcfg, i1).run(sorting(i1));
    EXPECT_GT(cpu.sorting_s / r_sort.total_s, 700);
}

TEST(EndToEnd, ResnetPrefersSmallDnum)
{
    // Section 6.3 "parameter selection in retrospect": when the
    // bootstrap share is small, HE-op complexity dominates and the
    // smaller-dnum INS-1 wins ResNet-20.
    const sim::BtsConfig hwcfg;
    double times[3];
    for (int i = 0; i < 3; ++i) {
        const auto inst = hw::table4_instances()[i];
        times[i] =
            sim::BtsSimulator(hwcfg, inst).run(resnet20(inst)).total_s;
    }
    EXPECT_LT(times[0], times[1]);
    EXPECT_LT(times[1], times[2]);
}

TEST(EndToEnd, BootstrapShareShape)
{
    // Fig. 7b: bootstrap dominates the microbench; ResNet-20's share is
    // the smallest of the four workloads.
    const sim::BtsConfig hwcfg;
    const auto inst = hw::ins1();
    const sim::BtsSimulator s(hwcfg, inst);
    const auto micro = s.run(tmult_microbench(inst));
    const auto rn = s.run(resnet20(inst));
    const double micro_share = micro.boot_s / micro.total_s;
    const double rn_share = rn.boot_s / rn.total_s;
    EXPECT_GT(micro_share, 0.5);
    EXPECT_LT(rn_share, micro_share);
}

TEST(Baselines, PublishedNumbersConsistent)
{
    const auto all = baselines::all_baselines();
    ASSERT_EQ(all.size(), 4u);
    // Fig. 6 relations: Lattigo = 2237 x 45.5ns; F1 2.5x slower than
    // Lattigo; F1+ = 824 x 45.5ns.
    EXPECT_NEAR(baselines::lattigo_cpu().tmult_a_slot_ns / 1e3, 101.8,
                0.1);
    EXPECT_NEAR(baselines::f1().tmult_a_slot_ns /
                    baselines::lattigo_cpu().tmult_a_slot_ns,
                2.5, 0.01);
    EXPECT_GT(baselines::f1().tmult_a_slot_ns,
              baselines::lattigo_cpu().tmult_a_slot_ns);
    // Only F1/F1+ are single-slot bootstrappers.
    EXPECT_EQ(baselines::f1().refreshed_slots, 1);
    EXPECT_EQ(baselines::lattigo_cpu().refreshed_slots, 32768);
    EXPECT_EQ(baselines::gpu_100x().refreshed_slots, 65536);
}

} // namespace
} // namespace bts::workloads
