#include "rns/rns_poly.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "math/mod_arith.h"
#include "math/prime_gen.h"

namespace bts {
namespace {

class RnsPolyTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        primes_ = generate_ntt_primes(40, 2 * n_, 3);
        for (u64 p : primes_) {
            tables_store_.push_back(std::make_unique<NttTables>(n_, p));
            tables_.push_back(tables_store_.back().get());
        }
    }

    RnsPoly
    random_poly(Domain domain, u64 seed)
    {
        Sampler s(seed);
        RnsPoly poly(n_, primes_, domain);
        for (std::size_t i = 0; i < primes_.size(); ++i) {
            poly.component(i).copy_from(s.uniform_poly(n_, primes_[i]));
        }
        return poly;
    }

    const std::size_t n_ = 64;
    std::vector<u64> primes_;
    std::vector<std::unique_ptr<NttTables>> tables_store_;
    std::vector<const NttTables*> tables_;
};

TEST_F(RnsPolyTest, ToNttLazyCanonicalizesToToNtt)
{
    auto canonical = random_poly(Domain::kCoeff, 40);
    auto lazy = canonical;
    canonical.to_ntt(tables_);
    lazy.to_ntt_lazy(tables_);
    EXPECT_EQ(lazy.domain(), Domain::kNtt);
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        const u64 q = primes_[i];
        for (std::size_t c = 0; c < n_; ++c) {
            const u64 v = lazy.component(i)[c];
            ASSERT_LT(v, 2 * q);
            ASSERT_EQ(v >= q ? v - q : v, canonical.component(i)[c]);
        }
    }
}

TEST_F(RnsPolyTest, MulInplaceToleratesLazyOperands)
{
    auto a = random_poly(Domain::kCoeff, 41);
    const auto b = random_poly(Domain::kCoeff, 42);

    auto a_canon = a, b_canon = b;
    a_canon.to_ntt(tables_);
    b_canon.to_ntt(tables_);
    auto expect = a_canon;
    expect.mul_inplace(b_canon);

    auto a_lazy = a, b_lazy = b;
    a_lazy.to_ntt_lazy(tables_);
    b_lazy.to_ntt_lazy(tables_);
    a_lazy.mul_inplace(b_lazy); // both operands in [0, 2q)
    EXPECT_TRUE(a_lazy.equals(expect)); // output canonical either way
}

TEST_F(RnsPolyTest, AddInplaceLazyFormMatchesCanonical)
{
    auto acc1 = random_poly(Domain::kCoeff, 43);
    const auto src = random_poly(Domain::kCoeff, 44);
    acc1.to_ntt(tables_);
    auto acc2 = acc1;

    auto src_canon = src;
    src_canon.to_ntt(tables_);
    acc1.add_inplace(src_canon);

    auto src_lazy = src;
    src_lazy.to_ntt_lazy(tables_);
    acc2.add_inplace(src_lazy, RnsPoly::Residues::kLazy2q);
    EXPECT_TRUE(acc2.equals(acc1));
}

TEST_F(RnsPolyTest, SubMulScalarFusedMatchesSeparateOps)
{
    auto acc1 = random_poly(Domain::kCoeff, 45);
    const auto src = random_poly(Domain::kCoeff, 46);
    acc1.to_ntt(tables_);
    auto acc2 = acc1;
    auto acc3 = acc1;
    std::vector<u64> scalars;
    for (u64 q : primes_) scalars.push_back(q / 3 + 7);

    auto src_canon = src;
    src_canon.to_ntt(tables_);
    acc1.sub_inplace(src_canon);
    acc1.mul_scalar_inplace(scalars);

    acc2.sub_mul_scalar_inplace(src_canon, scalars);
    EXPECT_TRUE(acc2.equals(acc1));

    auto src_lazy = src;
    src_lazy.to_ntt_lazy(tables_);
    acc3.sub_mul_scalar_inplace(src_lazy, scalars,
                                RnsPoly::Residues::kLazy2q);
    EXPECT_TRUE(acc3.equals(acc1));
}

TEST_F(RnsPolyTest, AddSubInverse)
{
    auto a = random_poly(Domain::kCoeff, 1);
    const auto b = random_poly(Domain::kCoeff, 2);
    const auto orig = a;
    a.add_inplace(b);
    a.sub_inplace(b);
    EXPECT_TRUE(a.equals(orig));
}

TEST_F(RnsPolyTest, NegateTwiceIsIdentity)
{
    auto a = random_poly(Domain::kCoeff, 3);
    const auto orig = a;
    a.negate_inplace();
    EXPECT_FALSE(a.equals(orig));
    a.negate_inplace();
    EXPECT_TRUE(a.equals(orig));
}

TEST_F(RnsPolyTest, NttRoundTrip)
{
    auto a = random_poly(Domain::kCoeff, 4);
    const auto orig = a;
    a.to_ntt(tables_);
    EXPECT_EQ(a.domain(), Domain::kNtt);
    a.to_coeff(tables_);
    EXPECT_TRUE(a.equals(orig));
}

TEST_F(RnsPolyTest, MulRequiresNttDomain)
{
    auto a = random_poly(Domain::kCoeff, 5);
    const auto b = random_poly(Domain::kCoeff, 6);
    EXPECT_THROW(a.mul_inplace(b), std::invalid_argument);
}

TEST_F(RnsPolyTest, MulMatchesPerComponentReference)
{
    auto a = random_poly(Domain::kCoeff, 7);
    auto b = random_poly(Domain::kCoeff, 8);
    std::vector<std::vector<u64>> expected;
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        expected.push_back(negacyclic_mul_reference(
            a.component(i).to_vector(), b.component(i).to_vector(),
            primes_[i]));
    }
    a.to_ntt(tables_);
    b.to_ntt(tables_);
    a.mul_inplace(b);
    a.to_coeff(tables_);
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        EXPECT_EQ(a.component(i), expected[i]);
    }
}

TEST_F(RnsPolyTest, ScalarMul)
{
    auto a = random_poly(Domain::kCoeff, 9);
    const auto orig = a;
    std::vector<u64> scalars = {3, 3, 3};
    a.mul_scalar_inplace(scalars);
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        for (std::size_t c = 0; c < n_; ++c) {
            EXPECT_EQ(a.component(i)[c],
                      mul_mod(orig.component(i)[c], 3, primes_[i]));
        }
    }
}

TEST_F(RnsPolyTest, TruncateAndPush)
{
    auto a = random_poly(Domain::kCoeff, 10);
    const std::vector<u64> comp2 = a.component(2).to_vector();
    a.truncate(2);
    EXPECT_EQ(a.num_primes(), 2u);
    a.push_component(primes_[2], comp2);
    EXPECT_EQ(a.num_primes(), 3u);
    EXPECT_EQ(a.component(2), comp2);
    a.pop_component();
    EXPECT_EQ(a.num_primes(), 2u);
}

TEST_F(RnsPolyTest, FlatStorageIsLimbMajorContiguous)
{
    const auto a = random_poly(Domain::kCoeff, 21);
    const u64* base = a.data();
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        EXPECT_EQ(a.component(i).data(), base + i * n_);
        EXPECT_EQ(a.component(i).size(), n_);
    }
}

TEST_F(RnsPolyTest, TruncateKeepsSurvivingRowsInPlace)
{
    auto a = random_poly(Domain::kCoeff, 22);
    const std::vector<u64> row0 = a.component(0).to_vector();
    const std::vector<u64> row1 = a.component(1).to_vector();
    const u64* base = a.data();
    a.truncate(2);
    // Shrinking must not move the flat buffer or disturb survivors.
    EXPECT_EQ(a.data(), base);
    EXPECT_EQ(a.component(0), row0);
    EXPECT_EQ(a.component(1), row1);
}

TEST_F(RnsPolyTest, PushComponentAppendsContiguously)
{
    auto a = random_poly(Domain::kCoeff, 23);
    Sampler s(24);
    const std::vector<u64> extra = s.uniform_poly(n_, primes_[2]);
    a.truncate(2);
    a.push_component(primes_[2], extra);
    EXPECT_EQ(a.num_primes(), 3u);
    EXPECT_EQ(a.component(2), extra);
    // Contiguity must hold across the grow.
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(a.component(i).data(), a.data() + i * n_);
    }
    EXPECT_THROW(a.push_component(primes_[0], std::vector<u64>(n_ / 2)),
                 std::invalid_argument);
}

TEST_F(RnsPolyTest, PopComponentDropsExactlyTheLastRow)
{
    auto a = random_poly(Domain::kCoeff, 25);
    const std::vector<u64> row0 = a.component(0).to_vector();
    const std::vector<u64> row1 = a.component(1).to_vector();
    a.pop_component();
    EXPECT_EQ(a.num_primes(), 2u);
    EXPECT_EQ(a.primes(), std::vector<u64>(primes_.begin(),
                                           primes_.begin() + 2));
    EXPECT_EQ(a.component(0), row0);
    EXPECT_EQ(a.component(1), row1);
    a.pop_component();
    a.pop_component();
    EXPECT_THROW(a.pop_component(), std::invalid_argument);
}

TEST_F(RnsPolyTest, CopyAndMoveKeepResidues)
{
    const auto a = random_poly(Domain::kNtt, 26);
    RnsPoly copy = a;
    EXPECT_TRUE(copy.equals(a));
    EXPECT_NE(copy.data(), a.data()); // deep copy of the flat buffer

    RnsPoly moved = std::move(copy);
    EXPECT_TRUE(moved.equals(a));

    RnsPoly assigned;
    assigned = a;
    EXPECT_TRUE(assigned.equals(a));
    assigned = random_poly(Domain::kCoeff, 27); // reassign over live data
    EXPECT_FALSE(assigned.equals(a));
}

TEST_F(RnsPolyTest, OperandPrefixCompatibility)
{
    // A smaller-level poly may consume a larger one (prefix rule).
    auto a = random_poly(Domain::kCoeff, 11);
    auto b = random_poly(Domain::kCoeff, 12);
    a.truncate(2);
    EXPECT_NO_THROW(a.add_inplace(b));
    // But not the other way around.
    EXPECT_THROW(b.add_inplace(a), std::invalid_argument);
}

TEST_F(RnsPolyTest, AutomorphismIdentity)
{
    const auto a = random_poly(Domain::kCoeff, 13);
    // galois exponent 1 is the identity.
    EXPECT_TRUE(a.automorphism(1).equals(a));
}

TEST_F(RnsPolyTest, AutomorphismComposition)
{
    // sigma_a(sigma_b(x)) == sigma_{a*b mod 2N}(x).
    const auto a = random_poly(Domain::kCoeff, 14);
    const u64 two_n = 2 * n_;
    const u64 e1 = 5, e2 = 25;
    const auto lhs = a.automorphism(e1).automorphism(e2);
    const auto rhs = a.automorphism((e1 * e2) % two_n);
    EXPECT_TRUE(lhs.equals(rhs));
}

TEST_F(RnsPolyTest, AutomorphismOnMonomial)
{
    // X -> X^k maps the monomial X^j to +-X^{jk mod N}.
    RnsPoly a(n_, primes_, Domain::kCoeff);
    for (std::size_t i = 0; i < primes_.size(); ++i) a.component(i)[3] = 1;
    const u64 k = 5;
    const auto out = a.automorphism(k);
    const u64 target = (3 * k) % (2 * n_); // 15 < n: positive
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        for (std::size_t c = 0; c < n_; ++c) {
            EXPECT_EQ(out.component(i)[c], c == target ? 1u : 0u);
        }
    }
}

TEST_F(RnsPolyTest, AutomorphismWrapsWithSign)
{
    // Choose j*k past N so the negacyclic sign flip triggers.
    RnsPoly a(n_, primes_, Domain::kCoeff);
    const std::size_t j = 20;
    for (std::size_t i = 0; i < primes_.size(); ++i) a.component(i)[j] = 1;
    const u64 k = 5;
    const u64 jk = (j * k) % (2 * n_); // 100 >= 64 -> -X^{100-64}
    ASSERT_GE(jk, n_);
    const auto out = a.automorphism(k);
    for (std::size_t i = 0; i < primes_.size(); ++i) {
        EXPECT_EQ(out.component(i)[jk - n_], primes_[i] - 1);
    }
}

TEST_F(RnsPolyTest, AutomorphismPreservesRingMultiplication)
{
    // sigma(a * b) == sigma(a) * sigma(b): the property HRot relies on.
    auto a = random_poly(Domain::kCoeff, 15);
    auto b = random_poly(Domain::kCoeff, 16);
    const u64 exp = 13; // odd

    auto prod = a;
    prod.to_ntt(tables_);
    auto b_ntt = b;
    b_ntt.to_ntt(tables_);
    prod.mul_inplace(b_ntt);
    prod.to_coeff(tables_);
    const auto lhs = prod.automorphism(exp);

    auto sa = a.automorphism(exp);
    auto sb = b.automorphism(exp);
    sa.to_ntt(tables_);
    sb.to_ntt(tables_);
    sa.mul_inplace(sb);
    sa.to_coeff(tables_);
    EXPECT_TRUE(lhs.equals(sa));
}

} // namespace
} // namespace bts
