#include "rns/base_conv.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "math/prime_gen.h"

namespace bts {
namespace {

class BaseConvTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto src_primes = generate_ntt_primes(40, 1 << 10, 4);
        auto tgt_primes = generate_ntt_primes(50, 1 << 10, 3, src_primes);
        source_ = RnsBase(src_primes);
        target_ = RnsBase(tgt_primes);
    }

    RnsBase source_;
    RnsBase target_;
};

TEST_F(BaseConvTest, ZeroMapsToZero)
{
    const BaseConverter conv(source_, target_);
    RnsPoly zero(16, source_.primes(), Domain::kCoeff);
    const RnsPoly out = conv.convert(zero);
    for (std::size_t i = 0; i < target_.size(); ++i) {
        for (u64 v : out.component(i)) EXPECT_EQ(v, 0u);
    }
}

TEST_F(BaseConvTest, ApproximateConversionOffByMultipleOfQ)
{
    // Fast BConv (Eq. 9) returns x + k*Q for a small k in [0, l+1):
    // verify the offset is a consistent multiple of Q across all target
    // primes — the exactness property CKKS noise analysis relies on.
    const BaseConverter conv(source_, target_);
    const std::size_t n = 32;
    Sampler s(5);
    RnsPoly input(n, source_.primes(), Domain::kCoeff);
    std::vector<BigUInt> exact(n);
    for (std::size_t c = 0; c < n; ++c) {
        std::vector<u64> residues(source_.size());
        for (std::size_t j = 0; j < source_.size(); ++j) {
            residues[j] = s.rng().uniform(source_.prime(j));
            input.component(j)[c] = residues[j];
        }
        exact[c] = source_.compose(residues);
    }
    const RnsPoly out = conv.convert(input);

    for (std::size_t c = 0; c < n; ++c) {
        bool found_k = false;
        for (std::size_t k = 0; k <= source_.size() && !found_k; ++k) {
            const BigUInt shifted =
                exact[c].add(source_.product().mul_word(k));
            bool all_match = true;
            for (std::size_t i = 0; i < target_.size(); ++i) {
                if (out.component(i)[c] !=
                    shifted.mod_word(target_.prime(i))) {
                    all_match = false;
                    break;
                }
            }
            found_k = all_match;
        }
        EXPECT_TRUE(found_k) << "coefficient " << c
                             << " is not x + k*Q for any small k";
    }
}

TEST_F(BaseConvTest, SmallValuesConvertUpToQMultiple)
{
    // Fast BConv is *approximate*: even small inputs come back as
    // x + k*Q (the per-prime scaled residues are near-uniform, so the
    // rational reconstruction rounds up by k in [0, l+1)). Pin exactly
    // that contract — the ModDown subtraction in key-switching is what
    // later cancels the offset.
    const BaseConverter conv(source_, target_);
    const std::size_t n = 16;
    RnsPoly input(n, source_.primes(), Domain::kCoeff);
    std::vector<u64> values(n);
    Sampler s(9);
    for (std::size_t c = 0; c < n; ++c) {
        values[c] = s.rng().uniform(1ULL << 30);
        for (std::size_t j = 0; j < source_.size(); ++j) {
            input.component(j)[c] = values[c] % source_.prime(j);
        }
    }
    const RnsPoly out = conv.convert(input);
    for (std::size_t c = 0; c < n; ++c) {
        bool found = false;
        for (std::size_t k = 0; k <= source_.size() && !found; ++k) {
            const BigUInt shifted =
                BigUInt(values[c]).add(source_.product().mul_word(k));
            bool all = true;
            for (std::size_t i = 0; i < target_.size(); ++i) {
                if (out.component(i)[c] !=
                    shifted.mod_word(target_.prime(i))) {
                    all = false;
                    break;
                }
            }
            found = all;
        }
        EXPECT_TRUE(found) << "coefficient " << c;
    }
}

TEST_F(BaseConvTest, GroupedMatchesUngrouped)
{
    // The l_sub-grouped accumulation (Eq. 11) that lets BTS overlap
    // BConv with iNTT must be mathematically identical to plain BConv.
    const BaseConverter conv(source_, target_);
    Sampler s(13);
    RnsPoly input(64, source_.primes(), Domain::kCoeff);
    for (std::size_t j = 0; j < source_.size(); ++j) {
        input.component(j).copy_from(s.uniform_poly(64, source_.prime(j)));
    }
    const RnsPoly plain = conv.convert(input);
    for (int l_sub : {1, 2, 3, 4, 7}) {
        const RnsPoly grouped = conv.convert_grouped(input, l_sub);
        for (std::size_t i = 0; i < target_.size(); ++i) {
            EXPECT_EQ(grouped.component(i), plain.component(i))
                << "l_sub=" << l_sub;
        }
    }
}

TEST_F(BaseConvTest, RejectsOverlappingBases)
{
    EXPECT_THROW(BaseConverter(source_, source_), std::invalid_argument);
}

TEST_F(BaseConvTest, RejectsWrongDomain)
{
    const BaseConverter conv(source_, target_);
    RnsPoly input(16, source_.primes(), Domain::kNtt);
    EXPECT_THROW(conv.convert(input), std::invalid_argument);
}

TEST_F(BaseConvTest, SingleSourcePrime)
{
    // Degenerate dnum == L+1 case: one-prime slices.
    const RnsBase single(std::vector<u64>{source_.prime(0)});
    const BaseConverter conv(single, target_);
    RnsPoly input(8, single.primes(), Domain::kCoeff);
    input.component(0)[0] = 12345;
    const RnsPoly out = conv.convert(input);
    for (std::size_t i = 0; i < target_.size(); ++i) {
        EXPECT_EQ(out.component(i)[0], 12345u % target_.prime(i));
    }
}

} // namespace
} // namespace bts
