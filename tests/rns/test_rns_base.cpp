#include "rns/rns_base.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "math/mod_arith.h"
#include "math/prime_gen.h"

namespace bts {
namespace {

RnsBase
make_base(int count, int bits = 40)
{
    return RnsBase(generate_ntt_primes(bits, 1 << 12, count));
}

TEST(RnsBase, ProductAndHat)
{
    const auto base = make_base(4);
    BigUInt prod(1);
    for (u64 p : base.primes()) prod = prod.mul_word(p);
    EXPECT_EQ(base.product().compare(prod), 0);

    for (std::size_t j = 0; j < base.size(); ++j) {
        // hat_j * q_j == Q
        EXPECT_EQ(base.hat(j).mul_word(base.prime(j)).compare(prod), 0);
        // hat_inv_j * hat_j == 1 mod q_j
        EXPECT_EQ(mul_mod(base.hat_inv(j),
                          base.hat(j).mod_word(base.prime(j)),
                          base.prime(j)),
                  1u);
    }
}

TEST(RnsBase, ComposeDecomposeRoundTrip)
{
    const auto base = make_base(5);
    Xoshiro256 rng(17);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<u64> residues(base.size());
        for (std::size_t i = 0; i < base.size(); ++i) {
            residues[i] = rng.uniform(base.prime(i));
        }
        const BigUInt composed = base.compose(residues);
        EXPECT_TRUE(composed < base.product());
        EXPECT_EQ(base.decompose(composed), residues);
    }
}

TEST(RnsBase, ComposeSmallValues)
{
    const auto base = make_base(3);
    for (u64 v : {0ULL, 1ULL, 12345ULL, (1ULL << 39)}) {
        std::vector<u64> residues(base.size());
        for (std::size_t i = 0; i < base.size(); ++i) {
            residues[i] = v % base.prime(i);
        }
        EXPECT_EQ(base.compose(residues).compare(BigUInt(v)), 0);
    }
}

TEST(RnsBase, Prefix)
{
    const auto base = make_base(6);
    const auto pre = base.prefix(3);
    EXPECT_EQ(pre.size(), 3u);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(pre.prime(i), base.prime(i));
    EXPECT_THROW(base.prefix(0), std::invalid_argument);
    EXPECT_THROW(base.prefix(7), std::invalid_argument);
}

TEST(RnsBase, ProductMod)
{
    const auto base = make_base(4);
    const u64 p = generate_ntt_primes(50, 1 << 12, 1, base.primes())[0];
    EXPECT_EQ(base.product_mod(p), base.product().mod_word(p));
}

TEST(RnsBase, RejectsNonCoprime)
{
    EXPECT_THROW(RnsBase({15, 21}), std::invalid_argument);
    EXPECT_THROW(RnsBase({7, 7}), std::invalid_argument);
}

TEST(RnsBase, SingleLimbBase)
{
    const RnsBase base({97});
    EXPECT_EQ(base.compose({42}).to_string(), "42");
    EXPECT_EQ(base.hat_inv(0), 1u); // hat = 1
}

} // namespace
} // namespace bts
