/**
 * @file
 * Shared test scaffolding for suites that touch the global lane count.
 */
#pragma once

#include "common/parallel.h"

namespace bts::testing {

/** Restore the global lane count on scope exit so tests stay isolated. */
struct ThreadGuard
{
    int saved = num_threads();
    ~ThreadGuard() { set_num_threads(saved); }
};

} // namespace bts::testing
