#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace bts {
namespace {

TEST(Random, Deterministic)
{
    Xoshiro256 a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
    bool differs = false;
    Xoshiro256 a2(123);
    for (int i = 0; i < 100; ++i) {
        if (a2.next() != c.next()) differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Random, UniformBound)
{
    Xoshiro256 rng(5);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.uniform(97), 97u);
    }
}

TEST(Random, UniformRealRange)
{
    Xoshiro256 rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform_real();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Random, GaussianMoments)
{
    Sampler s(77);
    const auto v = s.gaussian_poly(1 << 16, 3.2);
    double mean = 0, var = 0;
    for (i64 x : v) mean += static_cast<double>(x);
    mean /= v.size();
    for (i64 x : v) var += (x - mean) * (x - mean);
    var /= v.size();
    EXPECT_NEAR(mean, 0.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 3.2, 0.15);
}

TEST(Random, TernaryValues)
{
    Sampler s(3);
    for (i64 x : s.ternary_poly(4096)) {
        EXPECT_TRUE(x == -1 || x == 0 || x == 1);
    }
}

TEST(Random, SparseTernaryHammingWeight)
{
    Sampler s(9);
    const auto v = s.sparse_ternary_poly(4096, 64);
    int nonzero = 0;
    for (i64 x : v) {
        EXPECT_TRUE(x == -1 || x == 0 || x == 1);
        if (x != 0) ++nonzero;
    }
    EXPECT_EQ(nonzero, 64);
}

TEST(Random, SparseTernaryEdgeCases)
{
    Sampler s(9);
    const auto empty = s.sparse_ternary_poly(16, 0);
    EXPECT_EQ(std::count_if(empty.begin(), empty.end(),
                            [](i64 x) { return x != 0; }),
              0);
    const auto full = s.sparse_ternary_poly(16, 16);
    for (i64 x : full) EXPECT_NE(x, 0);
    EXPECT_THROW(s.sparse_ternary_poly(8, 9), std::invalid_argument);
}

TEST(Random, UniformPolyInRange)
{
    Sampler s(4);
    const u64 q = (1ULL << 40) + 117;
    for (u64 x : s.uniform_poly(4096, q)) EXPECT_LT(x, q);
}

} // namespace
} // namespace bts
