#include "common/big_uint.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace bts {
namespace {

TEST(BigUInt, ZeroAndWordConstruction)
{
    BigUInt zero;
    EXPECT_TRUE(zero.is_zero());
    EXPECT_EQ(zero.bit_length(), 0);
    EXPECT_EQ(zero.to_string(), "0");

    BigUInt one(1);
    EXPECT_FALSE(one.is_zero());
    EXPECT_EQ(one.bit_length(), 1);
    EXPECT_EQ(one.to_string(), "1");

    BigUInt big(0xFFFFFFFFFFFFFFFFULL);
    EXPECT_EQ(big.bit_length(), 64);
}

TEST(BigUInt, AddSubRoundTrip)
{
    Xoshiro256 rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        BigUInt a(rng.next());
        a = a.mul(BigUInt(rng.next())).add(BigUInt(rng.next()));
        BigUInt b(rng.next());
        const BigUInt sum = a.add(b);
        EXPECT_EQ(sum.sub(b).compare(a), 0);
        EXPECT_EQ(sum.sub(a).compare(b), 0);
    }
}

TEST(BigUInt, MulMatchesRepeatedAdd)
{
    BigUInt a(0x123456789ABCDEFULL);
    BigUInt acc;
    for (int i = 0; i < 37; ++i) acc = acc.add(a);
    EXPECT_EQ(acc.compare(a.mul_word(37)), 0);
}

TEST(BigUInt, MulCarriesAcrossLimbs)
{
    const BigUInt a(0xFFFFFFFFFFFFFFFFULL);
    const BigUInt sq = a.mul(a);
    // (2^64 - 1)^2 = 2^128 - 2^65 + 1
    EXPECT_EQ(sq.bit_length(), 128);
    EXPECT_EQ(sq.limbs()[0], 1ULL);
    EXPECT_EQ(sq.limbs()[1], 0xFFFFFFFFFFFFFFFEULL);
}

TEST(BigUInt, DivModWord)
{
    Xoshiro256 rng(11);
    for (int trial = 0; trial < 100; ++trial) {
        BigUInt a(rng.next());
        a = a.mul(BigUInt(rng.next()));
        const u64 d = rng.next() | 1;
        auto [q, r] = a.divmod_word(d);
        EXPECT_LT(r, d);
        EXPECT_EQ(q.mul_word(d).add(BigUInt(r)).compare(a), 0);
        EXPECT_EQ(a.mod_word(d), r);
    }
}

TEST(BigUInt, ProductAndBitLength)
{
    // Product of primes near 2^40 should have ~40*count bits — the
    // log(PQ) computation for Table 4 relies on this.
    std::vector<u64> primes(10, (1ULL << 40) + 117);
    const BigUInt p = BigUInt::product(primes);
    EXPECT_NEAR(p.bit_length(), 401, 1);
}

TEST(BigUInt, CompareOrdering)
{
    BigUInt a(5), b(7);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b > a);
    EXPECT_TRUE(a <= a);
    EXPECT_TRUE(a >= a);
    const BigUInt big = BigUInt(1).mul(BigUInt(1ULL << 63)).mul_word(4);
    EXPECT_TRUE(a < big);
    EXPECT_TRUE(big > b);
}

TEST(BigUInt, Half)
{
    BigUInt a(101);
    EXPECT_EQ(a.half().to_string(), "50");
    const BigUInt big = BigUInt(0x8000000000000000ULL).mul_word(2);
    EXPECT_EQ(big.half().compare(BigUInt(0x8000000000000000ULL)), 0);
}

TEST(BigUInt, ToDouble)
{
    EXPECT_DOUBLE_EQ(BigUInt(1000).to_double(), 1000.0);
    const BigUInt two64 = BigUInt(1ULL << 32).mul(BigUInt(1ULL << 32));
    EXPECT_DOUBLE_EQ(two64.to_double(), 0x1.0p64);
}

TEST(BigUInt, DecimalString)
{
    const BigUInt v = BigUInt(1000000000000ULL).mul_word(1000000);
    EXPECT_EQ(v.to_string(), "1000000000000000000");
}

} // namespace
} // namespace bts
