#include "common/bit_ops.h"

#include <gtest/gtest.h>

namespace bts {
namespace {

TEST(BitOps, PowerOfTwo)
{
    EXPECT_TRUE(is_power_of_two(1));
    EXPECT_TRUE(is_power_of_two(2));
    EXPECT_TRUE(is_power_of_two(1ULL << 40));
    EXPECT_FALSE(is_power_of_two(0));
    EXPECT_FALSE(is_power_of_two(3));
    EXPECT_FALSE(is_power_of_two((1ULL << 40) + 1));
}

TEST(BitOps, Log2Floor)
{
    EXPECT_EQ(log2_floor(1), 0);
    EXPECT_EQ(log2_floor(2), 1);
    EXPECT_EQ(log2_floor(3), 1);
    EXPECT_EQ(log2_floor(4), 2);
    EXPECT_EQ(log2_floor(1ULL << 17), 17);
    EXPECT_EQ(log2_floor((1ULL << 17) + 12345), 17);
}

TEST(BitOps, Log2Ceil)
{
    EXPECT_EQ(log2_ceil(1), 0);
    EXPECT_EQ(log2_ceil(2), 1);
    EXPECT_EQ(log2_ceil(3), 2);
    EXPECT_EQ(log2_ceil(4), 2);
    EXPECT_EQ(log2_ceil(5), 3);
}

TEST(BitOps, CeilDiv)
{
    EXPECT_EQ(ceil_div(10, 3), 4u);
    EXPECT_EQ(ceil_div(9, 3), 3u);
    EXPECT_EQ(ceil_div(1, 7), 1u);
    // The paper's alpha = ceil((L+1)/dnum) shapes: L=27, dnum=1 -> 28.
    EXPECT_EQ(ceil_div(28, 1), 28u);
    EXPECT_EQ(ceil_div(40, 2), 20u);
    EXPECT_EQ(ceil_div(45, 3), 15u);
}

TEST(BitOps, BitReverse)
{
    EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
    EXPECT_EQ(bit_reverse(0b110, 3), 0b011u);
    EXPECT_EQ(bit_reverse(0b1, 1), 0b1u);
    // Involution property.
    for (u64 x = 0; x < 64; ++x) {
        EXPECT_EQ(bit_reverse(bit_reverse(x, 6), 6), x);
    }
}

TEST(BitOps, BitReversePermuteIsInvolution)
{
    std::vector<int> v(16);
    for (int i = 0; i < 16; ++i) v[i] = i;
    auto w = v;
    bit_reverse_permute(w.data(), w.size());
    EXPECT_NE(v, w);
    bit_reverse_permute(w.data(), w.size());
    EXPECT_EQ(v, w);
}

} // namespace
} // namespace bts
