/**
 * @file
 * ThreadPool / parallel_for coverage: scheduling correctness, exception
 * propagation, nested-call safety, and bit-exactness of the
 * limb-parallel NTT against the serial path.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "math/ntt.h"
#include "math/prime_gen.h"
#include "rns/rns_poly.h"

namespace bts {
namespace {

/** Restore the global lane count on scope exit so tests stay isolated. */
struct ThreadGuard
{
    int saved = num_threads();
    ~ThreadGuard() { set_num_threads(saved); }
};

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::vector<std::atomic<int>> hits(1000);
    pool.run(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndSingleIndexRanges)
{
    ThreadPool pool(3);
    int calls = 0;
    pool.run(5, 5, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.run(7, 8, [&](std::size_t i) {
        ++calls;
        EXPECT_EQ(i, 7u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SingleLanePoolRunsSerially)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    std::vector<std::size_t> order;
    pool.run(0, 16, [&](std::size_t i) { order.push_back(i); });
    std::vector<std::size_t> expect(16);
    std::iota(expect.begin(), expect.end(), 0u);
    EXPECT_EQ(order, expect); // no workers: deterministic serial order
}

TEST(ThreadPool, ReusableAcrossManyRuns)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<long> sum{0};
        pool.run(0, 100, [&](std::size_t i) {
            sum += static_cast<long>(i);
        });
        EXPECT_EQ(sum.load(), 4950);
    }
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> executed{0};
    try {
        pool.run(0, 256, [&](std::size_t i) {
            if (i == 17) throw std::runtime_error("limb 17 failed");
            executed += 1;
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "limb 17 failed");
    }
    // The pool must stay usable after an exception.
    std::atomic<int> hits{0};
    pool.run(0, 8, [&](std::size_t) { hits += 1; });
    EXPECT_EQ(hits.load(), 8);
}

TEST(ParallelFor, PropagatesExceptionsOnTheGlobalPool)
{
    ThreadGuard guard;
    set_num_threads(4);
    EXPECT_THROW(parallel_for(0, 64,
                              [&](std::size_t i) {
                                  if (i % 2 == 1) {
                                      throw std::invalid_argument("odd");
                                  }
                              }),
                 std::invalid_argument);
}

TEST(ParallelFor, NestedCallsRunWithoutDeadlock)
{
    ThreadGuard guard;
    set_num_threads(4);
    std::vector<std::atomic<int>> hits(8 * 8);
    parallel_for(0, 8, [&](std::size_t i) {
        // A nested parallel_for must serialize on this lane instead of
        // re-entering the pool (which would deadlock).
        parallel_for(0, 8, [&](std::size_t j) { hits[i * 8 + j] += 1; });
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SetNumThreadsReconfiguresTheGlobalPool)
{
    ThreadGuard guard;
    set_num_threads(1);
    EXPECT_EQ(num_threads(), 1);
    set_num_threads(6);
    EXPECT_EQ(num_threads(), 6);
    std::atomic<int> hits{0};
    parallel_for(0, 12, [&](std::size_t) { hits += 1; });
    EXPECT_EQ(hits.load(), 12);
    set_num_threads(0); // auto-detect resolves to >= 1
    EXPECT_GE(num_threads(), 1);
}

TEST(ParallelFor, ConcurrentExternalCallersAndReconfiguration)
{
    // Two external threads drive the global pool at once while a third
    // swaps the lane count — the pool must neither crash nor lose
    // indices (callers serialize; a swapped-out pool stays alive until
    // its in-flight run finishes).
    ThreadGuard guard;
    set_num_threads(4);
    std::vector<std::atomic<int>> hits(2 * 64);
    std::thread caller_a([&] {
        for (int round = 0; round < 20; ++round) {
            parallel_for(0, 64, [&](std::size_t i) { hits[i] += 1; });
        }
    });
    std::thread caller_b([&] {
        for (int round = 0; round < 20; ++round) {
            parallel_for(0, 64,
                         [&](std::size_t i) { hits[64 + i] += 1; });
        }
    });
    std::thread reconfigurer([&] {
        for (int n : {2, 8, 3, 4}) set_num_threads(n);
    });
    caller_a.join();
    caller_b.join();
    reconfigurer.join();
    for (const auto& h : hits) EXPECT_EQ(h.load(), 20);
}

TEST(ParallelFor, NttBitExactAcrossThreadCounts)
{
    // The acceptance bar of the execution layer: an 8-limb forward +
    // inverse NTT must produce identical residues at 1 and 8 threads.
    ThreadGuard guard;
    const std::size_t n = 1 << 10;
    const int limbs = 8;
    const auto primes = generate_ntt_primes(50, 2 * n, limbs);

    std::vector<NttTables> tables;
    std::vector<const NttTables*> table_ptrs;
    tables.reserve(primes.size());
    for (u64 q : primes) tables.emplace_back(n, q);
    for (const auto& t : tables) table_ptrs.push_back(&t);

    Sampler sampler(42);
    RnsPoly base(n, primes, Domain::kCoeff);
    for (int i = 0; i < limbs; ++i) {
        base.component(i) = sampler.uniform_poly(n, primes[i]);
    }

    set_num_threads(1);
    RnsPoly serial_fwd = base;
    serial_fwd.to_ntt(table_ptrs);
    RnsPoly serial_round = serial_fwd;
    serial_round.to_coeff(table_ptrs);

    set_num_threads(8);
    RnsPoly parallel_fwd = base;
    parallel_fwd.to_ntt(table_ptrs);
    RnsPoly parallel_round = parallel_fwd;
    parallel_round.to_coeff(table_ptrs);

    EXPECT_TRUE(serial_fwd.equals(parallel_fwd));
    EXPECT_TRUE(serial_round.equals(parallel_round));
    EXPECT_TRUE(parallel_round.equals(base));
}

} // namespace
} // namespace bts
