/**
 * @file
 * ThreadPool / parallel_for coverage: scheduling correctness, exception
 * propagation, nested-call safety, and bit-exactness of the
 * limb-parallel NTT against the serial path.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/thread_guard.h"
#include "common/random.h"
#include "math/ntt.h"
#include "math/prime_gen.h"
#include "rns/rns_poly.h"

namespace bts {
namespace {

using testing::ThreadGuard;

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::vector<std::atomic<int>> hits(1000);
    pool.run(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndSingleIndexRanges)
{
    ThreadPool pool(3);
    int calls = 0;
    pool.run(5, 5, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.run(7, 8, [&](std::size_t i) {
        ++calls;
        EXPECT_EQ(i, 7u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SingleLanePoolRunsSerially)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    std::vector<std::size_t> order;
    pool.run(0, 16, [&](std::size_t i) { order.push_back(i); });
    std::vector<std::size_t> expect(16);
    std::iota(expect.begin(), expect.end(), 0u);
    EXPECT_EQ(order, expect); // no workers: deterministic serial order
}

TEST(ThreadPool, ReusableAcrossManyRuns)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<long> sum{0};
        pool.run(0, 100, [&](std::size_t i) {
            sum += static_cast<long>(i);
        });
        EXPECT_EQ(sum.load(), 4950);
    }
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> executed{0};
    try {
        pool.run(0, 256, [&](std::size_t i) {
            if (i == 17) throw std::runtime_error("limb 17 failed");
            executed += 1;
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "limb 17 failed");
    }
    // The pool must stay usable after an exception.
    std::atomic<int> hits{0};
    pool.run(0, 8, [&](std::size_t) { hits += 1; });
    EXPECT_EQ(hits.load(), 8);
}

TEST(ParallelFor, PropagatesExceptionsOnTheGlobalPool)
{
    ThreadGuard guard;
    set_num_threads(4);
    EXPECT_THROW(parallel_for(0, 64,
                              [&](std::size_t i) {
                                  if (i % 2 == 1) {
                                      throw std::invalid_argument("odd");
                                  }
                              }),
                 std::invalid_argument);
}

TEST(ParallelFor, NestedCallsRunWithoutDeadlock)
{
    ThreadGuard guard;
    set_num_threads(4);
    std::vector<std::atomic<int>> hits(8 * 8);
    parallel_for(0, 8, [&](std::size_t i) {
        // A nested parallel_for must serialize on this lane instead of
        // re-entering the pool (which would deadlock).
        parallel_for(0, 8, [&](std::size_t j) { hits[i * 8 + j] += 1; });
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SetNumThreadsReconfiguresTheGlobalPool)
{
    ThreadGuard guard;
    set_num_threads(1);
    EXPECT_EQ(num_threads(), 1);
    set_num_threads(6);
    EXPECT_EQ(num_threads(), 6);
    std::atomic<int> hits{0};
    parallel_for(0, 12, [&](std::size_t) { hits += 1; });
    EXPECT_EQ(hits.load(), 12);
    set_num_threads(0); // auto-detect resolves to >= 1
    EXPECT_GE(num_threads(), 1);
}

TEST(ParallelFor, ConcurrentExternalCallersAndReconfiguration)
{
    // Two external threads drive the global pool at once while a third
    // swaps the lane count — the pool must neither crash nor lose
    // indices (callers serialize; a swapped-out pool stays alive until
    // its in-flight run finishes).
    ThreadGuard guard;
    set_num_threads(4);
    std::vector<std::atomic<int>> hits(2 * 64);
    std::thread caller_a([&] {
        for (int round = 0; round < 20; ++round) {
            parallel_for(0, 64, [&](std::size_t i) { hits[i] += 1; });
        }
    });
    std::thread caller_b([&] {
        for (int round = 0; round < 20; ++round) {
            parallel_for(0, 64,
                         [&](std::size_t i) { hits[64 + i] += 1; });
        }
    });
    std::thread reconfigurer([&] {
        for (int n : {2, 8, 3, 4}) set_num_threads(n);
    });
    caller_a.join();
    caller_b.join();
    reconfigurer.join();
    for (const auto& h : hits) EXPECT_EQ(h.load(), 20);
}

TEST(ParallelFor, NttBitExactAcrossThreadCounts)
{
    // The acceptance bar of the execution layer: an 8-limb forward +
    // inverse NTT must produce identical residues at 1 and 8 threads.
    ThreadGuard guard;
    const std::size_t n = 1 << 10;
    const int limbs = 8;
    const auto primes = generate_ntt_primes(50, 2 * n, limbs);

    std::vector<NttTables> tables;
    std::vector<const NttTables*> table_ptrs;
    tables.reserve(primes.size());
    for (u64 q : primes) tables.emplace_back(n, q);
    for (const auto& t : tables) table_ptrs.push_back(&t);

    Sampler sampler(42);
    RnsPoly base(n, primes, Domain::kCoeff);
    for (int i = 0; i < limbs; ++i) {
        base.component(i).copy_from(sampler.uniform_poly(n, primes[i]));
    }

    set_num_threads(1);
    RnsPoly serial_fwd = base;
    serial_fwd.to_ntt(table_ptrs);
    RnsPoly serial_round = serial_fwd;
    serial_round.to_coeff(table_ptrs);

    set_num_threads(8);
    RnsPoly parallel_fwd = base;
    parallel_fwd.to_ntt(table_ptrs);
    RnsPoly parallel_round = parallel_fwd;
    parallel_round.to_coeff(table_ptrs);

    EXPECT_TRUE(serial_fwd.equals(parallel_fwd));
    EXPECT_TRUE(serial_round.equals(parallel_round));
    EXPECT_TRUE(parallel_round.equals(base));
}

TEST(ParallelFor2d, CoversEveryCellExactlyOnce)
{
    ThreadGuard guard;
    set_num_threads(4);
    const std::size_t dim0 = 3, dim1 = 5000;
    std::vector<std::atomic<int>> hits(dim0 * dim1);
    parallel_for_2d(dim0, dim1,
                    [&](std::size_t i, std::size_t j0, std::size_t j1) {
                        ASSERT_LT(j0, j1);
                        ASSERT_LE(j1, dim1);
                        for (std::size_t j = j0; j < j1; ++j) {
                            hits[i * dim1 + j] += 1;
                        }
                    },
                    /*min_block=*/256);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor2d, TilesColumnsWhenRowsAreFew)
{
    // The point of the 2-D schedule: one limb must still split across
    // lanes (coefficient-level parallelism), instead of leaving 7 of 8
    // threads idle like the per-limb loop.
    ThreadGuard guard;
    set_num_threads(8);
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> blocks;
    parallel_for_2d(1, 1 << 16,
                    [&](std::size_t, std::size_t j0, std::size_t j1) {
                        std::lock_guard<std::mutex> lock(m);
                        blocks.emplace_back(j0, j1);
                    });
    EXPECT_GT(blocks.size(), 1u);
    std::size_t covered = 0;
    for (const auto& [j0, j1] : blocks) covered += j1 - j0;
    EXPECT_EQ(covered, static_cast<std::size_t>(1 << 16));
}

TEST(ParallelFor2d, WholeRowsWhenRowsSaturateTheLanes)
{
    // Deep modulus chains keep the zero-overhead per-limb schedule:
    // 24 rows >= the 4-items-per-lane target at 4 threads.
    ThreadGuard guard;
    set_num_threads(4);
    const std::size_t dim0 = 24, dim1 = 1 << 14;
    std::atomic<int> calls{0};
    parallel_for_2d(dim0, dim1,
                    [&](std::size_t, std::size_t j0, std::size_t j1) {
                        EXPECT_EQ(j0, 0u);
                        EXPECT_EQ(j1, dim1);
                        calls += 1;
                    });
    EXPECT_EQ(calls.load(), static_cast<int>(dim0));
}

TEST(ParallelFor2d, RespectsMinBlock)
{
    ThreadGuard guard;
    set_num_threads(8);
    // Column counts that do NOT divide evenly must not produce a short
    // tail block — every tile stays >= min_block.
    for (std::size_t dim1 : {3000u, 4097u, 5000u, 1 << 16 | 1u}) {
        std::atomic<std::size_t> covered{0};
        parallel_for_2d(1, dim1,
                        [&](std::size_t, std::size_t j0, std::size_t j1) {
                            EXPECT_GE(j1 - j0, 1024u);
                            covered += j1 - j0;
                        },
                        /*min_block=*/1024);
        EXPECT_EQ(covered.load(), dim1);
    }
}

TEST(ParallelFor2d, PropagatesExceptions)
{
    ThreadGuard guard;
    set_num_threads(4);
    EXPECT_THROW(
        parallel_for_2d(4, 4096,
                        [&](std::size_t i, std::size_t, std::size_t) {
                            if (i == 2) throw std::runtime_error("tile");
                        },
                        /*min_block=*/64),
        std::runtime_error);
    // The pool must stay usable afterwards.
    std::atomic<int> hits{0};
    parallel_for(0, 8, [&](std::size_t) { hits += 1; });
    EXPECT_EQ(hits.load(), 8);
}

TEST(ParallelFor2d, NestedCallsRunWithoutDeadlock)
{
    ThreadGuard guard;
    set_num_threads(4);
    const std::size_t inner = 2048;
    std::vector<std::atomic<int>> hits(4 * inner);
    parallel_for(0, 4, [&](std::size_t i) {
        parallel_for_2d(1, inner,
                        [&](std::size_t, std::size_t j0, std::size_t j1) {
                            for (std::size_t j = j0; j < j1; ++j) {
                                hits[i * inner + j] += 1;
                            }
                        },
                        /*min_block=*/64);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor2d, EmptyDimensionsAreNoops)
{
    ThreadGuard guard;
    set_num_threads(4);
    int calls = 0;
    parallel_for_2d(0, 100,
                    [&](std::size_t, std::size_t, std::size_t) { ++calls; });
    parallel_for_2d(100, 0,
                    [&](std::size_t, std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, StageParallelNttBitExactAcrossThreadCounts)
{
    // Fewer limbs than lanes routes the batch NTT through the
    // stage-parallel (limb x butterfly-block) schedule; it must be
    // bit-identical to the serial whole-limb transforms.
    ThreadGuard guard;
    const std::size_t n = 1 << 12; // >= the stage-parallel threshold
    const int limbs = 2;
    const auto primes = generate_ntt_primes(50, 2 * n, limbs);

    std::vector<NttTables> tables;
    std::vector<const NttTables*> table_ptrs;
    tables.reserve(primes.size());
    for (u64 q : primes) tables.emplace_back(n, q);
    for (const auto& t : tables) table_ptrs.push_back(&t);

    Sampler sampler(43);
    RnsPoly base(n, primes, Domain::kCoeff);
    for (int i = 0; i < limbs; ++i) {
        base.component(i).copy_from(sampler.uniform_poly(n, primes[i]));
    }

    set_num_threads(1);
    RnsPoly serial_fwd = base;
    serial_fwd.to_ntt(table_ptrs);
    RnsPoly serial_round = serial_fwd;
    serial_round.to_coeff(table_ptrs);

    set_num_threads(8);
    RnsPoly tiled_fwd = base;
    tiled_fwd.to_ntt(table_ptrs);
    RnsPoly tiled_round = tiled_fwd;
    tiled_round.to_coeff(table_ptrs);

    EXPECT_TRUE(serial_fwd.equals(tiled_fwd));
    EXPECT_TRUE(serial_round.equals(tiled_round));
    EXPECT_TRUE(tiled_round.equals(base));
}

} // namespace
} // namespace bts
