#include <gtest/gtest.h>

#include "hwparams/explorer.h"
#include "hwparams/security.h"

namespace bts::hw {
namespace {

TEST(Security, ReproducesTable4Anchors)
{
    // The model is calibrated to the paper's own published triples.
    EXPECT_NEAR(estimate_lambda(1ULL << 17, 3090), 133.4, 0.3);
    EXPECT_NEAR(estimate_lambda(1ULL << 17, 3210), 128.7, 0.3);
    EXPECT_NEAR(estimate_lambda(1ULL << 17, 3160), 130.8, 0.4);
}

TEST(Security, MonotoneInRatio)
{
    // lambda strictly increases with N/logPQ (Section 2.5).
    EXPECT_GT(estimate_lambda(1ULL << 17, 3000),
              estimate_lambda(1ULL << 17, 3200));
    EXPECT_GT(estimate_lambda(1ULL << 18, 3200),
              estimate_lambda(1ULL << 17, 3200));
}

TEST(Security, MaxLogPqInverts)
{
    const double budget = max_log_pq(1ULL << 17, 128.0);
    EXPECT_NEAR(estimate_lambda(1ULL << 17, budget), 128.0, 1e-9);
}

TEST(Security, N14Needs500BitLimit)
{
    // "To support 128b security when log PQ exceeds 500, N must be
    // larger than 2^14" (Section 3.2).
    EXPECT_LT(estimate_lambda(1ULL << 14, 501), 128.0);
}

TEST(Instance, Table4LogPqExact)
{
    EXPECT_DOUBLE_EQ(ins1().log_pq(), 3090);
    EXPECT_DOUBLE_EQ(ins2().log_pq(), 3210);
    EXPECT_DOUBLE_EQ(ins3().log_pq(), 3160);
}

TEST(Instance, Table4SpecialPrimeCounts)
{
    EXPECT_EQ(ins1().num_special(), 28); // (27+1)/1
    EXPECT_EQ(ins2().num_special(), 20); // (39+1)/2
    EXPECT_EQ(ins3().num_special(), 15); // (44+1)/3
}

TEST(Instance, CtAndEvkSizesMatchPaper)
{
    // ct at max level: 56 MiB; INS-1 evk: 112 MiB (Section 3.4).
    EXPECT_NEAR(ins1().ct_bytes(27) / (1 << 20), 56.0, 0.01);
    EXPECT_NEAR(ins1().evk_bytes(27) / (1 << 20), 112.0, 0.01);
    // Aggregate evk footprint grows with dnum+1 (Section 2.5).
    EXPECT_NEAR(ins1().evk_total_bytes(),
                2.0 * (1ULL << 17) * 28 * 2 * 8, 1);
}

TEST(Instance, TempDataWithin5PercentOfTable4)
{
    EXPECT_NEAR(ins1().temp_bytes() / 1e6, 183, 183 * 0.05);
    EXPECT_NEAR(ins2().temp_bytes() / 1e6, 304, 304 * 0.05);
    EXPECT_NEAR(ins3().temp_bytes() / 1e6, 365, 365 * 0.05);
}

TEST(Instance, EvkShrinksWithLevel)
{
    const auto inst = ins2();
    for (int l = 1; l <= inst.max_level; ++l) {
        EXPECT_LE(inst.evk_bytes(l - 1), inst.evk_bytes(l));
    }
}

TEST(Explorer, MaxLevelMatchesTable4Instances)
{
    // Paper picks (27, 39, 44) for dnum (1, 2, 3); our security fit
    // admits 28 at dnum=1 (the paper's own Table 4 data implies L=28
    // is feasible; see EXPERIMENTS.md), and matches 39/44 exactly.
    EXPECT_NEAR(max_level_for(1ULL << 17, 1), 27, 1);
    EXPECT_EQ(max_level_for(1ULL << 17, 2), 39);
    EXPECT_EQ(max_level_for(1ULL << 17, 3), 44);
}

TEST(Explorer, MaxLevelSaturatesWithDnum)
{
    // Fig. 1a: L grows quickly at small dnum and saturates.
    const int l1 = max_level_for(1ULL << 17, 1);
    const int l4 = max_level_for(1ULL << 17, 4);
    const int l16 = max_level_for(1ULL << 17, 16);
    const int l32 = max_level_for(1ULL << 17, 32);
    EXPECT_GT(l4, l1);
    EXPECT_GT(l16, l4);
    EXPECT_LE(l32 - l16, l4 - l1);
}

TEST(Explorer, MaxDnumMatchesFig1Inset)
{
    // Paper inset: 14 / 29 / 60 / 121 — ours within ~5%.
    EXPECT_NEAR(max_dnum_for(1ULL << 15), 14, 1);
    EXPECT_NEAR(max_dnum_for(1ULL << 16), 29, 2);
    EXPECT_NEAR(max_dnum_for(1ULL << 17), 60, 4);
    EXPECT_NEAR(max_dnum_for(1ULL << 18), 121, 7);
}

TEST(Explorer, MinNttuEq10)
{
    // Eq. 10 evaluates to 1,328 for INS-1; BTS provisions 2,048.
    EXPECT_NEAR(min_nttu(ins1()), 1328, 2);
    EXPECT_LT(min_nttu(ins1()), 2048);
    // dnum=1 maximizes the requirement.
    EXPECT_GT(min_nttu(ins1()), min_nttu(ins2()));
    EXPECT_GT(min_nttu(ins2()), min_nttu(ins3()));
}

TEST(Explorer, MinBoundTmultShape)
{
    // Section 3.4: INS-2 is the best of the three; all lie in 15-35ns.
    const double t1 = min_bound_tmult_ns(ins1());
    const double t2 = min_bound_tmult_ns(ins2());
    const double t3 = min_bound_tmult_ns(ins3());
    EXPECT_LT(t2, t1);
    EXPECT_LT(t2, t3);
    for (double t : {t1, t2, t3}) {
        EXPECT_GT(t, 15.0);
        EXPECT_LT(t, 35.0);
    }
}

TEST(Explorer, Fig2NSweetSpot)
{
    // The 2^16 -> 2^17 gain near 128b is large; 2^17 -> 2^18 saturates
    // (Section 3.4: 3.8x vs 1.3x).
    auto best_at = [](std::size_t n) {
        double best = 1e18;
        for (int dnum = 1; dnum <= 4; ++dnum) {
            const int level = max_level_for(n, dnum);
            if (level < 20) continue;
            CkksInstance inst;
            inst.n = n;
            inst.max_level = level;
            inst.dnum = dnum;
            best = std::min(best, min_bound_tmult_ns(inst));
        }
        return best;
    };
    const double t16 = best_at(1ULL << 16);
    const double t17 = best_at(1ULL << 17);
    const double t18 = best_at(1ULL << 18);
    EXPECT_GT(t16 / t17, 2.0);  // big win moving to 2^17
    EXPECT_LT(t17 / t18, 1.6);  // saturating at 2^18
}

TEST(Explorer, HMultComplexityTrend)
{
    // Fig. 3b: BConv's share grows as dnum shrinks.
    CkksInstance big = ins1();  // dnum = 1
    CkksInstance mid = ins3();  // dnum = 3
    CkksInstance max_d;
    max_d.n = 1ULL << 17;
    max_d.dnum = 57;
    max_d.max_level = 56;
    const double b1 = hmult_complexity(big).bconv;
    const double b3 = hmult_complexity(mid).bconv;
    const double bmax = hmult_complexity(max_d).bconv;
    EXPECT_GT(b1, b3);
    EXPECT_GT(b3, bmax);
    EXPECT_LT(bmax, 0.25);
    // Shares form a partition.
    const auto c = hmult_complexity(big);
    EXPECT_NEAR(c.bconv + c.ntt + c.intt + c.others, 1.0, 1e-9);
}

TEST(Explorer, BootstrapPlanScale)
{
    // "More than 40 evks" / hundreds of primitive ops (Section 3.3).
    for (const auto& inst : table4_instances()) {
        const int ks = bootstrap_keyswitch_count(inst);
        EXPECT_GT(ks, 40);
        EXPECT_LT(ks, 400);
        EXPECT_GT(bootstrap_evk_bytes(inst), 1e9); // GBs of evk stream
    }
}

} // namespace
} // namespace bts::hw
