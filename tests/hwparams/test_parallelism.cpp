#include <gtest/gtest.h>

#include "hwparams/explorer.h"

namespace bts::hw {
namespace {

TEST(Parallelism, ClpIsLevelIndependent)
{
    for (const auto& inst : table4_instances()) {
        for (const auto& p : parallelism_comparison(inst)) {
            EXPECT_DOUBLE_EQ(p.clp_utilization, 1.0) << inst.name;
        }
    }
}

TEST(Parallelism, RplpDegradesAsLevelsDrop)
{
    const auto points = parallelism_comparison(ins1());
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GT(points[i].rplp_utilization,
                  points[i - 1].rplp_utilization);
    }
    // Full utilization only at the maximum level.
    EXPECT_DOUBLE_EQ(points.back().rplp_utilization, 1.0);
    EXPECT_LT(points.front().rplp_utilization, 0.6);
}

TEST(Parallelism, AverageRplpUtilizationIsPoor)
{
    // The Section 4.3 argument: over a level descent rPLP idles a
    // substantial fraction of the machine; CLP does not.
    for (const auto& inst : table4_instances()) {
        const double avg = rplp_average_utilization(inst);
        EXPECT_LT(avg, 0.9) << inst.name;
        EXPECT_GT(avg, 0.4) << inst.name;
    }
}

TEST(Parallelism, SmallerKHurtsRplpMore)
{
    // With fewer special primes (higher dnum), the busy-group count
    // swings more with the level, so rPLP's average is worse.
    EXPECT_GT(rplp_average_utilization(ins1()),  // k = 28
              rplp_average_utilization(ins3())); // k = 15
}

TEST(Fig2Sweep, ContainsAllRingSizes)
{
    const auto points = fig2_sweep();
    bool saw[4] = {false, false, false, false};
    for (const auto& p : points) {
        for (int log_n = 15; log_n <= 18; ++log_n) {
            if (p.instance.n == (1ULL << log_n)) saw[log_n - 15] = true;
        }
        // Every point is bootstrappable and in the plotted lambda range.
        EXPECT_GE(p.instance.usable_levels(), 1);
        EXPECT_GT(p.lambda, 60.0);
        EXPECT_GT(p.tmult_a_slot_ns, 1.0);
    }
    for (bool s : saw) EXPECT_TRUE(s);
}

TEST(Fig2Sweep, FrontierAt128IsNTwo17)
{
    // Among near-128-bit points, the best Tmult belongs to N = 2^17
    // (the paper's headline conclusion).
    const auto points = fig2_sweep();
    double best = 1e18;
    std::size_t best_n = 0;
    for (const auto& p : points) {
        if (p.lambda < 125 || p.lambda > 145) continue;
        if (p.tmult_a_slot_ns < best) {
            best = p.tmult_a_slot_ns;
            best_n = p.instance.n;
        }
    }
    EXPECT_TRUE(best_n == (1ULL << 17) || best_n == (1ULL << 18));
    EXPECT_LT(best, 30.0);
}

} // namespace
} // namespace bts::hw
