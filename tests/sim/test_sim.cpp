#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/engine.h"
#include "sim/timeline.h"

namespace bts::sim {
namespace {

TEST(HwConfig, Table3Totals)
{
    EXPECT_NEAR(BtsConfig::total_area_mm2(), 373.6, 0.2);
    EXPECT_NEAR(BtsConfig::total_peak_power_w(), 163.2, 0.2);
}

TEST(HwConfig, EpochLength)
{
    // N log N / (2 n_PE): 2^17 * 17 / 4096 = 544 cycles (Section 5.1).
    const BtsConfig hw;
    EXPECT_DOUBLE_EQ(hw.epoch_cycles(1ULL << 17), 544);
    EXPECT_NEAR(hw.epoch_seconds(1ULL << 17) * 1e9, 453.3, 0.2);
}

TEST(OpTrace, EvkOpsClassified)
{
    EXPECT_TRUE(needs_evk(HeOpKind::kHMult));
    EXPECT_TRUE(needs_evk(HeOpKind::kHRot));
    EXPECT_TRUE(needs_evk(HeOpKind::kConj));
    EXPECT_FALSE(needs_evk(HeOpKind::kPMult));
    EXPECT_FALSE(needs_evk(HeOpKind::kHRescale));
    EXPECT_FALSE(needs_evk(HeOpKind::kModRaise));
}

TEST(OpTrace, KindFunctionsExhaustive)
{
    // Walk every enumerator: kind_name must hand back a distinct
    // non-empty name and needs_evk must classify exactly the three
    // key-switching ops. A kind beyond the enumerator range (what a
    // newly added op looks like to stale tables) fails loudly instead
    // of falling through to a default.
    std::set<std::string> names;
    int evk_count = 0;
    for (int i = 0; i < kHeOpKindCount; ++i) {
        const auto kind = static_cast<HeOpKind>(i);
        const char* name = kind_name(kind);
        ASSERT_NE(name, nullptr);
        ASSERT_GT(std::string(name).size(), 0u);
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate kind name " << name;
        evk_count += needs_evk(kind);
    }
    EXPECT_EQ(names.size(), static_cast<std::size_t>(kHeOpKindCount));
    EXPECT_EQ(evk_count, 3);
    EXPECT_THROW(kind_name(static_cast<HeOpKind>(kHeOpKindCount)),
                 std::logic_error);
    EXPECT_THROW(needs_evk(static_cast<HeOpKind>(kHeOpKindCount)),
                 std::logic_error);
}

TEST(OpTrace, BuilderTracksIds)
{
    TraceBuilder b("t");
    const int x = b.fresh_id();
    const int y = b.add(HeOpKind::kHMult, 5, {x, x});
    EXPECT_NE(x, y);
    const int z = b.add_into(y, HeOpKind::kHRescale, 5, {y});
    EXPECT_EQ(z, y);
    EXPECT_EQ(b.trace().ops.size(), 2u);
    EXPECT_THROW(b.add(HeOpKind::kHAdd, -1, {x}), std::invalid_argument);
}

TEST(OpTrace, LevelUnderflowRejectedOnEveryBuilderPath)
{
    // Regression: a level < 0 op (a workload generator mis-counting its
    // rescales) must fail at build time — it would otherwise feed
    // nonsense levels to the cost model. Both entry points guard.
    TraceBuilder b("t");
    const int x = b.fresh_id();
    const int y = b.add(HeOpKind::kHMult, 1, {x, x});
    EXPECT_THROW(b.add(HeOpKind::kHRescale, -1, {y}),
                 std::invalid_argument);
    EXPECT_THROW(b.add_into(y, HeOpKind::kHRescale, -1, {y}),
                 std::invalid_argument);
    EXPECT_THROW(b.add(HeOpKind::kModRaise, -7, {y}),
                 std::invalid_argument);
    // The trace is untouched by the rejected ops.
    EXPECT_EQ(b.trace().ops.size(), 1u);
    // Level 0 itself is legal (the exhausted-ciphertext state), and the
    // rejected adds must not have consumed object ids: a generator that
    // recovers from the throw keeps an unshifted id stream.
    EXPECT_EQ(b.add(HeOpKind::kHAdd, 0, {y, y}), y + 1);
    EXPECT_EQ(b.trace().ops.size(), 2u);
}

TEST(OpTrace, KindHistogram)
{
    TraceBuilder b("t");
    const int x = b.fresh_id();
    const int y = b.add(HeOpKind::kHMult, 5, {x, x});
    b.add(HeOpKind::kHRescale, 5, {y});
    b.add(HeOpKind::kHMult, 4, {y, y});
    const auto hist = kind_histogram(b.trace());
    EXPECT_EQ(hist.at(HeOpKind::kHMult), 2);
    EXPECT_EQ(hist.at(HeOpKind::kHRescale), 1);
    EXPECT_EQ(hist.count(HeOpKind::kHRot), 0u);
}

TEST(SoftwareCache, HitMissAndLru)
{
    SoftwareCache cache(100.0);
    EXPECT_EQ(cache.access(1, 40), 40); // miss
    EXPECT_EQ(cache.access(1, 40), 0);  // hit
    EXPECT_EQ(cache.access(2, 40), 40); // miss
    EXPECT_EQ(cache.access(3, 40), 40); // miss, evicts 1 (LRU)
    EXPECT_EQ(cache.access(2, 40), 0);  // 2 still resident
    EXPECT_EQ(cache.access(1, 40), 40); // 1 was evicted
    EXPECT_NEAR(cache.hit_rate(), 2.0 / 6.0, 1e-12);
}

TEST(SoftwareCache, OversizedObjectStreamsThrough)
{
    SoftwareCache cache(100.0);
    EXPECT_EQ(cache.access(1, 500), 500);
    EXPECT_EQ(cache.access(1, 500), 500); // never cached
    EXPECT_EQ(cache.used_bytes(), 0);
}

TEST(SoftwareCache, InsertReplaces)
{
    SoftwareCache cache(100.0);
    cache.insert(7, 60);
    cache.insert(7, 30); // replaces, does not double-count
    EXPECT_EQ(cache.used_bytes(), 30);
    EXPECT_EQ(cache.access(7, 30), 0);
}

class CostModelTest : public ::testing::Test
{
  protected:
    BtsConfig hw_;
    hw::CkksInstance inst_ = hw::ins1();
    CostModel model_{hw_, inst_};
};

TEST_F(CostModelTest, HMultEvkBytesMatchEq10Denominator)
{
    HeOp op;
    op.kind = HeOpKind::kHMult;
    op.level = inst_.max_level;
    const OpCost c = model_.op_cost(op);
    EXPECT_DOUBLE_EQ(c.evk_bytes, inst_.evk_bytes(inst_.max_level));
    EXPECT_NEAR(c.evk_bytes / (1 << 20), 112.0, 0.1);
}

TEST_F(CostModelTest, MaxLevelHMultIsHbmBound)
{
    // Fig. 8: the op is bound by evk streaming (~120us), with compute
    // comfortably underneath.
    HeOp op;
    op.kind = HeOpKind::kHMult;
    op.level = inst_.max_level;
    const OpCost c = model_.op_cost(op);
    const double evk_s = c.evk_bytes / hw_.hbm_effective();
    EXPECT_GT(evk_s, c.compute_s);
    EXPECT_NEAR(evk_s * 1e6, 120.0, 3.0);
}

TEST_F(CostModelTest, CostsShrinkWithLevel)
{
    for (auto kind : {HeOpKind::kHMult, HeOpKind::kHRot,
                      HeOpKind::kPMult}) {
        HeOp high, low;
        high.kind = low.kind = kind;
        high.level = inst_.max_level;
        low.level = 5;
        EXPECT_LT(model_.op_cost(low).compute_s,
                  model_.op_cost(high).compute_s);
    }
}

TEST_F(CostModelTest, OverlapReducesCriticalPath)
{
    BtsConfig no_overlap = hw_;
    no_overlap.overlap_bconv_intt = false;
    const CostModel serial(no_overlap, inst_);
    HeOp op;
    op.kind = HeOpKind::kHMult;
    op.level = inst_.max_level;
    EXPECT_LT(model_.op_cost(op).compute_s,
              serial.op_cost(op).compute_s);
}

TEST_F(CostModelTest, RotationHasNocTraffic)
{
    HeOp rot;
    rot.kind = HeOpKind::kHRot;
    rot.level = 20;
    EXPECT_GT(model_.op_cost(rot).noc_bytes, 0);
    HeOp mult;
    mult.kind = HeOpKind::kHMult;
    mult.level = 20;
    EXPECT_EQ(model_.op_cost(mult).noc_bytes, 0);
}

TEST_F(CostModelTest, RejectsBadLevel)
{
    HeOp op;
    op.kind = HeOpKind::kHMult;
    op.level = inst_.max_level + 1;
    EXPECT_THROW(model_.op_cost(op), std::invalid_argument);
}

TEST(Engine, SingleHMultLatency)
{
    const BtsConfig hw;
    const auto inst = hw::ins1();
    const BtsSimulator sim(hw, inst);
    TraceBuilder b("one-mult");
    const int x = b.fresh_id();
    b.add(HeOpKind::kHMult, inst.max_level, {x, x});
    const auto r = sim.run(b.trace());
    // First-touch miss on the operand + evk stream.
    EXPECT_NEAR(r.total_s * 1e6, 120.0, 60.0);
    EXPECT_EQ(r.op_count, 1);
}

TEST(Engine, CacheCapacityPartitioning)
{
    const BtsConfig hw;
    for (const auto& inst : hw::table4_instances()) {
        const BtsSimulator sim(hw, inst);
        const double cap = sim.cache_capacity_bytes();
        EXPECT_LT(cap, hw.scratchpad_bytes);
        EXPECT_GT(cap, 0);
        // Bigger temp data -> smaller ct cache (INS-3 worst).
    }
    const double c1 =
        BtsSimulator(hw, hw::ins1()).cache_capacity_bytes();
    const double c3 =
        BtsSimulator(hw, hw::ins3()).cache_capacity_bytes();
    EXPECT_GT(c1, c3);
}

TEST(Engine, MoreScratchpadNeverHurts)
{
    const auto inst = hw::ins2();
    TraceBuilder b("loop");
    int ct = b.fresh_id();
    for (int i = 0; i < 40; ++i) {
        ct = b.add(HeOpKind::kHMult, 20, {ct, ct});
        b.add_into(ct, HeOpKind::kHRescale, 20, {ct});
    }
    double prev = 1e18;
    for (double mb : {256.0, 512.0, 1024.0, 2048.0}) {
        BtsConfig hw;
        hw.scratchpad_bytes = mb * (1 << 20);
        const auto r = BtsSimulator(hw, inst).run(b.trace());
        EXPECT_LE(r.total_s, prev * 1.0001);
        prev = r.total_s;
    }
}

TEST(Engine, DoublingHbmHelpsSublinearly)
{
    // Fig. 9's last step: 2TB/s gives only ~1.26x because compute
    // starts to bind.
    const auto inst = hw::ins1();
    TraceBuilder b("mults");
    const int x = b.fresh_id();
    for (int i = 0; i < 10; ++i) {
        b.add(HeOpKind::kHMult, inst.max_level, {x, x});
    }
    BtsConfig hw1tb;
    BtsConfig hw2tb;
    hw2tb.hbm_bytes_per_s = 2e12;
    const double t1 = BtsSimulator(hw1tb, inst).run(b.trace()).total_s;
    const double t2 = BtsSimulator(hw2tb, inst).run(b.trace()).total_s;
    EXPECT_GT(t1 / t2, 1.1);
    EXPECT_LT(t1 / t2, 2.0);
}

TEST(Engine, EnergyWithinPowerEnvelope)
{
    const BtsConfig hw;
    const auto inst = hw::ins1();
    TraceBuilder b("mults");
    const int x = b.fresh_id();
    for (int i = 0; i < 20; ++i) {
        b.add(HeOpKind::kHMult, inst.max_level, {x, x});
    }
    const auto r = BtsSimulator(hw, inst).run(b.trace());
    EXPECT_GT(r.energy_j, 0);
    // Average power must not exceed the Table 3 peak.
    EXPECT_LT(r.energy_j / r.total_s, BtsConfig::total_peak_power_w());
    EXPECT_GT(r.edap, 0);
}

TEST(Timeline, MatchesFig8Shape)
{
    const BtsConfig hw;
    const auto tl = hmult_timeline(hw, hw::ins1());
    EXPECT_NEAR(tl.total_ns / 1e3, 120.0, 5.0); // ~120us
    EXPECT_GT(tl.hbm_util, 0.9);
    EXPECT_GT(tl.nttu_busy_frac, 0.5);
    EXPECT_LT(tl.nttu_busy_frac, 0.95);
    EXPECT_GT(tl.bconv_busy_frac, 0.15);
    EXPECT_LT(tl.bconv_busy_frac, 0.5);
    EXPECT_FALSE(tl.segments.empty());
    for (const auto& seg : tl.segments) {
        EXPECT_LE(seg.start_ns, seg.end_ns);
        EXPECT_LE(seg.end_ns, tl.total_ns * 1.01);
    }
    // Peak scratchpad usage near the instance's temp working set.
    double peak = 0;
    for (const auto& u : tl.usage) {
        peak = std::max(peak, u.scratchpad_mb);
    }
    EXPECT_NEAR(peak, hw::ins1().temp_bytes() / 1e6, 20);
}

} // namespace
} // namespace bts::sim
