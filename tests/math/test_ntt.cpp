#include "math/ntt.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "math/mod_arith.h"
#include "math/prime_gen.h"

namespace bts {
namespace {

class NttParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{};

TEST_P(NttParamTest, ForwardInverseRoundTrip)
{
    const auto [n, bits] = GetParam();
    const u64 p = generate_ntt_primes(bits, 2 * n, 1)[0];
    const NttTables tables(n, p);

    Sampler s(42);
    auto data = s.uniform_poly(n, p);
    const auto original = data;
    tables.forward(data.data());
    EXPECT_NE(data, original); // the transform must do something
    tables.inverse(data.data());
    EXPECT_EQ(data, original);
}

TEST_P(NttParamTest, ConvolutionMatchesReference)
{
    const auto [n, bits] = GetParam();
    if (n > 256) GTEST_SKIP() << "O(n^2) reference too slow";
    const u64 p = generate_ntt_primes(bits, 2 * n, 1)[0];
    const NttTables tables(n, p);

    Sampler s(7);
    const auto a = s.uniform_poly(n, p);
    const auto b = s.uniform_poly(n, p);
    const auto expected = negacyclic_mul_reference(a, b, p);

    auto fa = a, fb = b;
    tables.forward(fa.data());
    tables.forward(fb.data());
    for (std::size_t i = 0; i < n; ++i) fa[i] = mul_mod(fa[i], fb[i], p);
    tables.inverse(fa.data());
    EXPECT_EQ(fa, expected);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndWidths, NttParamTest,
    ::testing::Values(std::make_tuple(16, 30), std::make_tuple(64, 40),
                      std::make_tuple(256, 45), std::make_tuple(1024, 50),
                      std::make_tuple(4096, 55), std::make_tuple(64, 58)));

TEST(Ntt, Linearity)
{
    const std::size_t n = 128;
    const u64 p = generate_ntt_primes(40, 2 * n, 1)[0];
    const NttTables tables(n, p);
    Sampler s(3);
    auto a = s.uniform_poly(n, p);
    auto b = s.uniform_poly(n, p);
    std::vector<u64> sum(n);
    for (std::size_t i = 0; i < n; ++i) sum[i] = add_mod(a[i], b[i], p);

    tables.forward(a.data());
    tables.forward(b.data());
    tables.forward(sum.data());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sum[i], add_mod(a[i], b[i], p));
    }
}

TEST(Ntt, ConstantPolynomialIsConstantInNttDomain)
{
    // NTT evaluates the polynomial at roots; a constant evaluates to
    // itself everywhere. The evaluator's CAdd fast path relies on this.
    const std::size_t n = 64;
    const u64 p = generate_ntt_primes(40, 2 * n, 1)[0];
    const NttTables tables(n, p);
    std::vector<u64> c(n, 0);
    c[0] = 12345;
    tables.forward(c.data());
    for (u64 v : c) EXPECT_EQ(v, 12345u);
}

TEST(Ntt, MonomialTimesMonomial)
{
    // X^i * X^j == X^{i+j}, with negacyclic wraparound sign.
    const std::size_t n = 32;
    const u64 p = generate_ntt_primes(30, 2 * n, 1)[0];
    const NttTables tables(n, p);

    std::vector<u64> xi(n, 0), xj(n, 0);
    xi[20] = 1;
    xj[25] = 1;
    tables.forward(xi.data());
    tables.forward(xj.data());
    for (std::size_t i = 0; i < n; ++i) xi[i] = mul_mod(xi[i], xj[i], p);
    tables.inverse(xi.data());
    // 20 + 25 = 45 = 32 + 13 -> -X^13.
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(xi[i], i == 13 ? p - 1 : 0u);
    }
}

TEST(Ntt, ButterflyCount)
{
    const NttTables tables(1024, generate_ntt_primes(40, 2048, 1)[0]);
    EXPECT_EQ(tables.butterfly_count(), 1024u / 2 * 10);
}

TEST(Ntt, RejectsBadParameters)
{
    EXPECT_THROW(NttTables(100, 12289), std::invalid_argument); // not pow2
    // 7681 == 1 mod 512 but not mod 4096.
    EXPECT_THROW(NttTables(2048, 7681), std::invalid_argument);
}

} // namespace
} // namespace bts
