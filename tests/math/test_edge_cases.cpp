/**
 * @file
 * Failure-injection and boundary tests across the math layer: maximum
 * modulus widths, degenerate operands, and contract violations.
 */
#include <gtest/gtest.h>

#include "common/random.h"
#include "math/mod_arith.h"
#include "math/ntt.h"
#include "math/prime_gen.h"

namespace bts {
namespace {

TEST(EdgeCases, BarrettAtMaximumWidth)
{
    // 61-bit modulus: the widest the word-size contract allows.
    const u64 q = generate_ntt_primes(61, 1 << 8, 1)[0];
    ASSERT_EQ(q >> 61, 0u);
    const Barrett barrett(q);
    Xoshiro256 rng(1);
    for (int i = 0; i < 2000; ++i) {
        const u64 a = rng.uniform(q), b = rng.uniform(q);
        EXPECT_EQ(barrett.mul(a, b), mul_mod(a, b, q));
    }
    // Extremes.
    EXPECT_EQ(barrett.mul(q - 1, q - 1), mul_mod(q - 1, q - 1, q));
    EXPECT_EQ(barrett.mul(0, q - 1), 0u);
}

TEST(EdgeCases, BarrettRejectsOverWideModulus)
{
    EXPECT_THROW(Barrett((1ULL << 62) + 1), std::invalid_argument);
    EXPECT_THROW(Barrett(1), std::invalid_argument);
}

TEST(EdgeCases, ShoupZeroAndOneConstants)
{
    const u64 q = (1ULL << 50) + 4867;
    // Use prime-checked modulus for safety of the test itself.
    const u64 p = generate_ntt_primes(50, 1 << 8, 1)[0];
    (void)q;
    const ShoupMul zero(0, p);
    const ShoupMul one(1, p);
    Xoshiro256 rng(2);
    for (int i = 0; i < 100; ++i) {
        const u64 x = rng.uniform(p);
        EXPECT_EQ(zero.mul(x, p), 0u);
        EXPECT_EQ(one.mul(x, p), x);
    }
}

TEST(EdgeCases, PowModLargeExponents)
{
    const u64 p = 1000000007;
    // a^(p-1) == 1 and a^(2^63) reduces correctly.
    EXPECT_EQ(pow_mod(3, p - 1, p), 1u);
    const u64 e = 1ULL << 63;
    EXPECT_EQ(pow_mod(3, e, p), pow_mod(pow_mod(3, 1ULL << 32, p),
                                        1ULL << 31, p));
}

TEST(EdgeCases, SmallestNttSize)
{
    // N = 8: the smallest ring the library accepts.
    const u64 p = generate_ntt_primes(30, 16, 1)[0];
    const NttTables tables(8, p);
    std::vector<u64> a = {1, 2, 3, 4, 5, 6, 7, 0};
    const auto orig = a;
    tables.forward(a.data());
    tables.inverse(a.data());
    EXPECT_EQ(a, orig);
}

TEST(EdgeCases, NttZeroAndConstant)
{
    const u64 p = generate_ntt_primes(40, 128, 1)[0];
    const NttTables tables(64, p);
    std::vector<u64> zero(64, 0);
    tables.forward(zero.data());
    for (u64 v : zero) EXPECT_EQ(v, 0u);
    tables.inverse(zero.data());
    for (u64 v : zero) EXPECT_EQ(v, 0u);
}

TEST(EdgeCases, NegacyclicWraparoundSign)
{
    // (X^{N-1})^2 = X^{2N-2} = -X^{N-2}: the negacyclic sign at the
    // extreme index.
    const std::size_t n = 32;
    const u64 p = generate_ntt_primes(30, 2 * n, 1)[0];
    const NttTables tables(n, p);
    std::vector<u64> mono(n, 0);
    mono[n - 1] = 1;
    tables.forward(mono.data());
    for (std::size_t i = 0; i < n; ++i) {
        mono[i] = mul_mod(mono[i], mono[i], p);
    }
    tables.inverse(mono.data());
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(mono[i], i == n - 2 ? p - 1 : 0u);
    }
}

TEST(EdgeCases, PrimeGenRefusesAbsurdRequests)
{
    EXPECT_THROW(generate_ntt_primes(10, 1 << 12, 1),
                 std::invalid_argument); // too narrow
    EXPECT_THROW(generate_ntt_primes(63, 1 << 12, 1),
                 std::invalid_argument); // beyond the word contract
}

TEST(EdgeCases, ManyPrimesSameCongruenceClassAreDistinct)
{
    // Large batches must not repeat and must straddle the 2^b center.
    const auto primes = generate_ntt_primes(45, 1 << 10, 64);
    std::set<u64> unique(primes.begin(), primes.end());
    EXPECT_EQ(unique.size(), 64u);
    int above = 0;
    for (u64 p : primes) above += (p > (1ULL << 45));
    EXPECT_GT(above, 16);
    EXPECT_LT(above, 48);
}

} // namespace
} // namespace bts
