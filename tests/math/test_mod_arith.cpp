#include "math/mod_arith.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace bts {
namespace {

TEST(ModArith, AddSubMod)
{
    const u64 q = (1ULL << 59) + 123;
    EXPECT_EQ(add_mod(q - 1, 1, q), 0u);
    EXPECT_EQ(add_mod(q - 1, q - 1, q), q - 2);
    EXPECT_EQ(sub_mod(0, 1, q), q - 1);
    EXPECT_EQ(sub_mod(5, 5, q), 0u);
}

TEST(ModArith, MulModMatchesInt128)
{
    Xoshiro256 rng(1);
    const u64 q = (1ULL << 60) - 93;
    for (int i = 0; i < 1000; ++i) {
        const u64 a = rng.uniform(q), b = rng.uniform(q);
        EXPECT_EQ(mul_mod(a, b, q),
                  static_cast<u64>((static_cast<u128>(a) * b) % q));
    }
}

TEST(ModArith, PowMod)
{
    const u64 q = 1000000007;
    EXPECT_EQ(pow_mod(2, 10, q), 1024u);
    EXPECT_EQ(pow_mod(5, 0, q), 1u);
    // Fermat: a^(q-1) == 1 mod prime q.
    EXPECT_EQ(pow_mod(123456, q - 1, q), 1u);
}

TEST(ModArith, InvMod)
{
    Xoshiro256 rng(2);
    const u64 q = (1ULL << 50) + 4867; // a prime-ish odd modulus test below
    // Use a known prime for guaranteed invertibility.
    const u64 p = 1000000007;
    for (int i = 0; i < 200; ++i) {
        const u64 a = 1 + rng.uniform(p - 1);
        const u64 inv = inv_mod(a, p);
        EXPECT_EQ(mul_mod(a, inv, p), 1u);
    }
    (void)q;
}

TEST(ModArith, InvModNonInvertibleThrows)
{
    EXPECT_THROW(inv_mod(6, 9), std::invalid_argument);
}

TEST(ModArith, Gcd)
{
    EXPECT_EQ(gcd_u64(12, 18), 6u);
    EXPECT_EQ(gcd_u64(17, 5), 1u);
    EXPECT_EQ(gcd_u64(0, 7), 7u);
}

TEST(ModArith, SignedConversions)
{
    const u64 q = 101;
    EXPECT_EQ(signed_to_mod(-1, q), 100u);
    EXPECT_EQ(signed_to_mod(-102, q), 100u);
    EXPECT_EQ(signed_to_mod(5, q), 5u);
    EXPECT_EQ(mod_to_signed(100, q), -1);
    EXPECT_EQ(mod_to_signed(50, q), 50);
    EXPECT_EQ(mod_to_signed(51, q), -50);
    // Round trip for centered representatives.
    for (i64 v = -50; v <= 50; ++v) {
        EXPECT_EQ(mod_to_signed(signed_to_mod(v, q), q), v);
    }
}

TEST(ModArith, BarrettMatchesDirect)
{
    Xoshiro256 rng(3);
    for (u64 q : {(1ULL << 30) + 3, (1ULL << 45) + 59, (1ULL << 60) - 93}) {
        const Barrett barrett(q);
        for (int i = 0; i < 500; ++i) {
            const u64 a = rng.uniform(q), b = rng.uniform(q);
            EXPECT_EQ(barrett.mul(a, b), mul_mod(a, b, q));
        }
        // Large 128-bit inputs below q * 2^64.
        for (int i = 0; i < 500; ++i) {
            const u128 v = (static_cast<u128>(rng.uniform(q)) << 64) |
                           rng.next();
            EXPECT_EQ(barrett.reduce(v), static_cast<u64>(v % q));
        }
    }
}

TEST(ModArith, ShoupMatchesDirect)
{
    Xoshiro256 rng(4);
    const u64 q = (1ULL << 55) + 1237;
    for (int i = 0; i < 300; ++i) {
        const u64 w = rng.uniform(q);
        const ShoupMul s(w, q);
        for (int j = 0; j < 10; ++j) {
            const u64 x = rng.uniform(q);
            EXPECT_EQ(s.mul(x, q), mul_mod(x, w, q));
        }
    }
}

TEST(ModArith, AddModRejectsUnreducedInputsInDebug)
{
    // The documented contract is "inputs already reduced"; the old code
    // silently tolerated overflow via a wrap guard. Debug builds now
    // fault loudly instead.
    const u64 q = (1ULL << 59) + 123;
#ifndef NDEBUG
    EXPECT_THROW(add_mod(q, 1, q), std::logic_error);
    EXPECT_THROW(add_mod(0, q + 5, q), std::logic_error);
    EXPECT_THROW(sub_mod(q + 2, 1, q), std::logic_error);
#else
    GTEST_SKIP() << "contract asserts compile out under NDEBUG";
#endif
}

TEST(ModArith, LazyPrimitives)
{
    Xoshiro256 rng(6);
    const u64 q = (1ULL << 60) - 93; // near the top of the lazy range
    const u64 two_q = 2 * q;
    for (int i = 0; i < 500; ++i) {
        const u64 a = rng.uniform(two_q); // lazy domain inputs
        const u64 b = rng.uniform(two_q);
        // add_lazy: plain sum in [0, 4q).
        EXPECT_EQ(add_lazy(a, b), a + b);
        EXPECT_LT(add_lazy(a, b), 4 * q);
        // sub_lazy_2q: shifted difference in (0, 4q), congruent a - b.
        const u64 d = sub_lazy_2q(a, b, two_q);
        EXPECT_LT(d, 4 * q);
        EXPECT_EQ(d % q, sub_mod(a % q, b % q, q));
        // reduce_2q folds [0, 4q) into [0, 2q) preserving the residue.
        const u64 r2 = reduce_2q(add_lazy(a, b), two_q);
        EXPECT_LT(r2, two_q);
        EXPECT_EQ(r2 % q, (a + b) % q);
        // reduce_4q_to_q canonicalizes.
        const u64 r1 = reduce_4q_to_q(add_lazy(a, b), q);
        EXPECT_LT(r1, q);
        EXPECT_EQ(r1, (a + b) % q);
    }
}

TEST(ModArith, ShoupMulLazyStaysBelow2qAndIsCongruent)
{
    Xoshiro256 rng(7);
    const u64 q = (1ULL << 60) + 325; // prime-shaped; only w < q matters
    for (int i = 0; i < 200; ++i) {
        const u64 w = rng.uniform(q);
        const ShoupMul s(w, q);
        for (int j = 0; j < 8; ++j) {
            // Any 64-bit x is valid — including the [0, 4q) butterfly
            // domain and the full word range.
            const u64 x = rng.next();
            const u64 r = s.mul_lazy(x, q);
            EXPECT_LT(r, 2 * q);
            EXPECT_EQ(r % q, mul_mod(x % q, w, q));
            // The full product is the lazy one after one correction.
            EXPECT_EQ(s.mul(x, q), r >= q ? r - q : r);
        }
    }
}

TEST(ModArith, ShoupFromReducedMatchesConstructor)
{
    Xoshiro256 rng(8);
    const u64 q = (1ULL << 55) + 1237;
    for (int i = 0; i < 200; ++i) {
        const u64 w = rng.uniform(q);
        const ShoupMul a(w, q);
        const ShoupMul b = ShoupMul::from_reduced(w, q);
        EXPECT_EQ(a.w, b.w);
        EXPECT_EQ(a.w_shoup, b.w_shoup);
    }
}

TEST(ModArith, ShoupReducesUnreducedOperand)
{
    // Regression: the constructor documents w as "reduced mod m" but
    // used to store the raw operand, silently producing a wrong
    // w_shoup (and wrong products) for operand >= modulus.
    Xoshiro256 rng(5);
    const u64 q = (1ULL << 50) + 4867;
    for (int i = 0; i < 100; ++i) {
        const u64 w = rng.uniform(q);
        const u64 unreduced = w + q * (1 + rng.uniform(1000));
        const ShoupMul raw(unreduced, q);
        const ShoupMul reduced(w, q);
        EXPECT_EQ(raw.w, w);
        EXPECT_EQ(raw.w_shoup, reduced.w_shoup);
        for (int j = 0; j < 4; ++j) {
            const u64 x = rng.uniform(q);
            EXPECT_EQ(raw.mul(x, q), mul_mod(x, w, q));
        }
    }
    // Exact multiple of the modulus reduces to zero.
    const ShoupMul zero(3 * q, q);
    EXPECT_EQ(zero.w, 0u);
    EXPECT_EQ(zero.mul(12345, q), 0u);
}

} // namespace
} // namespace bts
