/**
 * @file
 * Differential suite pinning the Harvey lazy-reduction NTT core to the
 * fully-reduced scalar oracle (the seed implementation, kept verbatim
 * as NttTables::forward_oracle / inverse_oracle).
 *
 * Covers: whole-limb and stage-parallel/batch entry points, lazy and
 * canonical output forms, 1-vs-8 lanes, sizes 2^10..2^16, and boundary
 * moduli just below 2^61 (the kMaxModulusBits lazy-domain ceiling).
 * Everything must be bit-exact after canonicalization.
 */
#include "math/ntt.h"

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "common/thread_guard.h"
#include "math/prime_gen.h"

namespace bts {
namespace {

using testing::ThreadGuard;

/** Reduce a [0, 2q) lazy residue to canonical form. */
u64
canon(u64 x, u64 q)
{
    return x >= q ? x - q : x;
}

class LazyNttSizes : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(LazyNttSizes, ForwardMatchesOracle)
{
    const std::size_t n = GetParam();
    const u64 q = generate_ntt_primes(50, 2 * n, 1)[0];
    const NttTables tables(n, q);
    Sampler s(11);
    const auto input = s.uniform_poly(n, q);

    auto lazy_path = input;
    auto oracle = input;
    tables.forward(lazy_path.data());
    tables.forward_oracle(oracle.data());
    EXPECT_EQ(lazy_path, oracle);
}

TEST_P(LazyNttSizes, ForwardLazyStaysBelow2qAndCanonicalizesToOracle)
{
    const std::size_t n = GetParam();
    const u64 q = generate_ntt_primes(50, 2 * n, 1)[0];
    const NttTables tables(n, q);
    Sampler s(12);
    const auto input = s.uniform_poly(n, q);

    auto lazy = input;
    auto oracle = input;
    tables.forward_lazy(lazy.data());
    tables.forward_oracle(oracle.data());
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_LT(lazy[i], 2 * q) << "lazy residue out of [0, 2q) at " << i;
        ASSERT_EQ(canon(lazy[i], q), oracle[i]) << "mismatch at " << i;
    }
}

TEST_P(LazyNttSizes, InverseMatchesOracle)
{
    const std::size_t n = GetParam();
    const u64 q = generate_ntt_primes(50, 2 * n, 1)[0];
    const NttTables tables(n, q);
    Sampler s(13);
    const auto input = s.uniform_poly(n, q);

    auto lazy_path = input;
    auto oracle = input;
    tables.inverse(lazy_path.data());
    tables.inverse_oracle(oracle.data());
    EXPECT_EQ(lazy_path, oracle);
}

TEST_P(LazyNttSizes, RoundTripRestoresInput)
{
    const std::size_t n = GetParam();
    const u64 q = generate_ntt_primes(50, 2 * n, 1)[0];
    const NttTables tables(n, q);
    Sampler s(14);
    const auto input = s.uniform_poly(n, q);

    auto data = input;
    tables.forward(data.data());
    tables.inverse(data.data());
    EXPECT_EQ(data, input);

    // The lazy forward followed by the (lazy-tolerant) inverse also
    // round-trips: inverse butterflies accept [0, 2q) inputs.
    data = input;
    tables.forward_lazy(data.data());
    tables.inverse(data.data());
    EXPECT_EQ(data, input);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, LazyNttSizes,
                         ::testing::Values(std::size_t{1} << 10,
                                           std::size_t{1} << 11,
                                           std::size_t{1} << 12,
                                           std::size_t{1} << 13,
                                           std::size_t{1} << 14,
                                           std::size_t{1} << 15,
                                           std::size_t{1} << 16));

TEST(LazyNtt, InverseAcceptsLazyInput)
{
    // Feed the inverse residues shifted by +q on random positions (the
    // [0, 2q) lazy domain); the result must match the canonical run.
    const std::size_t n = 1 << 12;
    const u64 q = generate_ntt_primes(45, 2 * n, 1)[0];
    const NttTables tables(n, q);
    Sampler s(15);
    Xoshiro256 rng(99);
    const auto input = s.uniform_poly(n, q);

    auto lazy = input;
    for (auto& v : lazy) {
        if (rng.next() & 1) v += q;
    }
    auto expect = input;
    tables.inverse_oracle(expect.data());
    tables.inverse(lazy.data());
    EXPECT_EQ(lazy, expect);
}

TEST(LazyNtt, PointwiseBarrettChainMatchesNegacyclicReference)
{
    // forward_lazy x2 -> Barrett pointwise product on [0, 2q) inputs ->
    // inverse: the "reductions paid once per chain" consumer contract.
    const std::size_t n = 256;
    const u64 q = generate_ntt_primes(45, 2 * n, 1)[0];
    const NttTables tables(n, q);
    const Barrett br(q);
    Sampler s(16);
    const auto a = s.uniform_poly(n, q);
    const auto b = s.uniform_poly(n, q);
    const auto expected = negacyclic_mul_reference(a, b, q);

    auto fa = a, fb = b;
    tables.forward_lazy(fa.data());
    tables.forward_lazy(fb.data());
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_LT(fa[i], 2 * q);
        ASSERT_LT(fb[i], 2 * q);
        fa[i] = br.mul(fa[i], fb[i]); // 2q * 2q < q * 2^64: exact
    }
    tables.inverse(fa.data());
    EXPECT_EQ(fa, expected);
}

/** Run every batch entry point at the given lane count and compare
 *  against the per-limb oracle, bit-exactly. */
void
check_batch_entry_points(int threads)
{
    ThreadGuard guard;
    // 2 limbs at N=2^13 with 8 lanes forces the stage-parallel
    // schedule (2 * count <= lanes, N >= 4096); 1 lane takes the
    // whole-limb schedule. Results must be identical.
    const std::size_t n = 1 << 13;
    const int limbs = 2;
    const auto primes = generate_ntt_primes(50, 2 * n, limbs);
    std::vector<NttTables> tables;
    std::vector<const NttTables*> ptrs;
    for (u64 q : primes) tables.emplace_back(n, q);
    for (const auto& t : tables) ptrs.push_back(&t);

    Sampler s(17);
    std::vector<std::vector<u64>> rows;
    std::vector<u64> flat(limbs * n);
    for (int i = 0; i < limbs; ++i) {
        rows.push_back(s.uniform_poly(n, primes[i]));
        std::copy(rows[i].begin(), rows[i].end(), flat.begin() + i * n);
    }

    set_num_threads(threads);

    // Forward, canonical.
    auto fwd = flat;
    ntt_forward_batch(ptrs.data(), fwd.data(), limbs, n);
    for (int i = 0; i < limbs; ++i) {
        auto oracle = rows[i];
        tables[i].forward_oracle(oracle.data());
        for (std::size_t j = 0; j < n; ++j) {
            ASSERT_EQ(fwd[i * n + j], oracle[j])
                << "forward limb " << i << " coeff " << j << " @ "
                << threads << " threads";
        }
    }

    // Forward, lazy: canonicalizes to the same bits.
    auto fwd_lazy = flat;
    ntt_forward_batch_lazy(ptrs.data(), fwd_lazy.data(), limbs, n);
    for (int i = 0; i < limbs; ++i) {
        const u64 q = primes[i];
        for (std::size_t j = 0; j < n; ++j) {
            ASSERT_LT(fwd_lazy[i * n + j], 2 * q);
            ASSERT_EQ(canon(fwd_lazy[i * n + j], q), fwd[i * n + j]);
        }
    }

    // Inverse (n^{-1} folded into the last stage, no scaling sweep).
    auto inv = flat;
    ntt_inverse_batch(ptrs.data(), inv.data(), limbs, n);
    for (int i = 0; i < limbs; ++i) {
        auto oracle = rows[i];
        tables[i].inverse_oracle(oracle.data());
        for (std::size_t j = 0; j < n; ++j) {
            ASSERT_EQ(inv[i * n + j], oracle[j])
                << "inverse limb " << i << " coeff " << j << " @ "
                << threads << " threads";
        }
    }
}

TEST(LazyNtt, BatchEntryPointsMatchOracleSerial)
{
    check_batch_entry_points(1);
}

TEST(LazyNtt, BatchEntryPointsMatchOracleEightLanes)
{
    check_batch_entry_points(8);
}

TEST(LazyNtt, BoundaryPrimeNearMaxModulusBits)
{
    // Primes just below 2^61 (the kMaxModulusBits cap): the lazy domain
    // [0, 4q) reaches past 2^62 here, the hardest case for overflow.
    const std::size_t n = 1 << 12;
    const auto primes = generate_ntt_primes(61, 2 * n, 2);
    for (u64 q : primes) {
        ASSERT_LT(q, u64{1} << 61);
        ASSERT_GT(q, (u64{1} << 61) - (u64{1} << 40)); // truly near the top
        const NttTables tables(n, q);
        Sampler s(18);
        const auto input = s.uniform_poly(n, q);

        auto fwd = input;
        auto oracle = input;
        tables.forward(fwd.data());
        tables.forward_oracle(oracle.data());
        EXPECT_EQ(fwd, oracle);

        auto lazy = input;
        tables.forward_lazy(lazy.data());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_LT(lazy[i], 2 * q);
            ASSERT_EQ(canon(lazy[i], q), oracle[i]);
        }

        auto round = input;
        tables.forward(round.data());
        tables.inverse(round.data());
        EXPECT_EQ(round, input);
    }
}

TEST(LazyNtt, RejectsModulusAboveLazyDomain)
{
    // A 62-bit "prime-shaped" modulus must be rejected before any lazy
    // arithmetic can overflow. (2^62 + 2^16 + 1 keeps 1 mod 2N shape.)
    const std::size_t n = 1 << 15;
    const u64 too_wide = (u64{1} << 62) + (u64{1} << 16) + 1;
    EXPECT_THROW(NttTables(n, too_wide), std::invalid_argument);
}

} // namespace
} // namespace bts
