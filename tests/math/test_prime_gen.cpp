#include "math/prime_gen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "math/mod_arith.h"

namespace bts {
namespace {

TEST(PrimeGen, IsPrimeSmall)
{
    EXPECT_FALSE(is_prime(0));
    EXPECT_FALSE(is_prime(1));
    EXPECT_TRUE(is_prime(2));
    EXPECT_TRUE(is_prime(3));
    EXPECT_FALSE(is_prime(4));
    EXPECT_TRUE(is_prime(97));
    EXPECT_FALSE(is_prime(91)); // 7 * 13
    EXPECT_TRUE(is_prime(7919));
}

TEST(PrimeGen, IsPrimeLarge)
{
    EXPECT_TRUE(is_prime((1ULL << 61) - 1)); // Mersenne prime
    EXPECT_FALSE(is_prime((1ULL << 60)));
    EXPECT_TRUE(is_prime(1000000007));
    // Carmichael number 561 must be rejected.
    EXPECT_FALSE(is_prime(561));
    EXPECT_FALSE(is_prime(1373653)); // strong pseudoprime to bases 2,3
}

TEST(PrimeGen, GenerateNttPrimesCongruence)
{
    const u64 two_n = 1 << 13;
    const auto primes = generate_ntt_primes(40, two_n, 8);
    EXPECT_EQ(primes.size(), 8u);
    std::set<u64> unique(primes.begin(), primes.end());
    EXPECT_EQ(unique.size(), 8u);
    for (u64 p : primes) {
        EXPECT_TRUE(is_prime(p));
        EXPECT_EQ(p % two_n, 1u);
        // Close to 2^40: within 1% relative.
        EXPECT_NEAR(static_cast<double>(p), 0x1.0p40, 0x1.0p40 * 0.01);
    }
}

TEST(PrimeGen, GenerateRespectsExclusions)
{
    const u64 two_n = 1 << 12;
    const auto first = generate_ntt_primes(45, two_n, 4);
    const auto second = generate_ntt_primes(45, two_n, 4, first);
    for (u64 p : second) {
        EXPECT_EQ(std::count(first.begin(), first.end(), p), 0);
    }
}

TEST(PrimeGen, ProductStaysNearTarget)
{
    // Alternating above/below keeps the product near 2^(40*count), which
    // is what keeps the CKKS scale drift small across rescales.
    const auto primes = generate_ntt_primes(40, 1 << 12, 16);
    double log_product = 0;
    for (u64 p : primes) log_product += std::log2(static_cast<double>(p));
    EXPECT_NEAR(log_product, 40.0 * 16, 0.01);
}

TEST(PrimeGen, PrimitiveRootOrder)
{
    const u64 two_n = 1 << 12;
    for (u64 p : generate_ntt_primes(45, two_n, 3)) {
        const u64 root = find_primitive_root(p, two_n);
        // root has order exactly 2N: root^(2N) == 1, root^N == -1.
        EXPECT_EQ(pow_mod(root, two_n, p), 1u);
        EXPECT_EQ(pow_mod(root, two_n / 2, p), p - 1);
    }
}

} // namespace
} // namespace bts
