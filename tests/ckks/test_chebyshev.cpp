#include "ckks/chebyshev.h"

#include <gtest/gtest.h>

#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;

TEST(ChebyshevSeries, InterpolatesSmoothFunctions)
{
    const auto exp_series = ChebyshevSeries::interpolate(
        [](double x) { return std::exp(x); }, -1, 1, 15);
    EXPECT_LT(exp_series.max_error([](double x) { return std::exp(x); }),
              1e-12);

    const auto sin_series = ChebyshevSeries::interpolate(
        [](double x) { return std::sin(x); }, -3, 3, 23);
    EXPECT_LT(sin_series.max_error([](double x) { return std::sin(x); }),
              1e-10);
}

TEST(ChebyshevSeries, ScaledSineForEvalMod)
{
    // The bootstrapping workhorse: sin(2 pi u)/(2 pi) over [-12, 12]
    // at degree 159 must be accurate to ~1e-9 — this pins the degree
    // budget the bootstrapper uses.
    const double k = 12.0;
    const auto series = ChebyshevSeries::interpolate(
        [](double u) { return std::sin(2 * M_PI * u) / (2 * M_PI); }, -k, k,
        159);
    EXPECT_LT(series.max_error([](double u) {
        return std::sin(2 * M_PI * u) / (2 * M_PI);
    }),
              1e-9);
}

TEST(ChebyshevSeries, LowDegreeSineIsInaccurate)
{
    // Sanity check of the degree requirement: degree 31 cannot capture
    // 24 periods.
    const auto series = ChebyshevSeries::interpolate(
        [](double u) { return std::sin(2 * M_PI * u) / (2 * M_PI); }, -12, 12,
        31);
    EXPECT_GT(series.max_error([](double u) {
        return std::sin(2 * M_PI * u) / (2 * M_PI);
    }),
              1e-3);
}

TEST(ChebyshevDivmod, ReconstructsOriginal)
{
    // f == q * T_g + r must hold as functions.
    Xoshiro256 rng(3);
    for (int deg : {8, 13, 21, 40}) {
        std::vector<double> f(deg + 1);
        for (auto& c : f) c = 2 * rng.uniform_real() - 1;
        for (int g : {4, 8}) {
            if (g > deg) continue;
            std::vector<double> q, r;
            chebyshev_divmod(f, g, q, r);
            EXPECT_LT(static_cast<int>(r.size()), g + 1);
            // Evaluate both sides on a grid via Clenshaw.
            const ChebyshevSeries sf(f, -1, 1), sq(q, -1, 1), sr(r, -1, 1);
            for (double x = -1; x <= 1; x += 0.05) {
                const double tg = std::cos(g * std::acos(std::min(
                                               1.0, std::max(-1.0, x))));
                EXPECT_NEAR(sf.evaluate(x),
                            sq.evaluate(x) * tg + sr.evaluate(x), 1e-9);
            }
        }
    }
}

TEST(ChebyshevEvaluator, DepthFormula)
{
    // degree < m: just baby steps; larger degrees add giant squarings.
    EXPECT_EQ(ChebyshevEvaluator::baby_step_count(15), 4);
    EXPECT_EQ(ChebyshevEvaluator::baby_step_count(31), 8);
    EXPECT_GE(ChebyshevEvaluator::depth(31), 4);
    EXPECT_LE(ChebyshevEvaluator::depth(31), 7);
    EXPECT_LE(ChebyshevEvaluator::depth(159), 9);
}

class HomomorphicChebyTest : public ::testing::TestWithParam<int>
{};

TEST_P(HomomorphicChebyTest, MatchesClenshaw)
{
    // Evaluate a Chebyshev series homomorphically and compare against
    // the numeric Clenshaw evaluation slot by slot.
    CkksParams params = testing::small_params();
    params.max_level = 8;
    auto& env = testing::cached_env("cheby", params);

    const int degree = GetParam();
    const auto series = ChebyshevSeries::interpolate(
        [](double x) { return 1.0 / (1.0 + std::exp(-4 * x)); }, -1, 1,
        degree);

    const std::size_t slots = 64;
    std::vector<Complex> z(slots);
    Xoshiro256 rng(degree);
    for (auto& v : z) v = Complex(2 * rng.uniform_real() - 1, 0);

    const ChebyshevEvaluator cheby(env.evaluator);
    const Ciphertext out =
        cheby.evaluate(env.encrypt(z), series, env.mult_key);
    const auto got = env.decrypt(out);
    for (std::size_t i = 0; i < slots; ++i) {
        EXPECT_NEAR(got[i].real(), series.evaluate(z[i].real()), 2e-3)
            << "slot " << i;
        EXPECT_NEAR(got[i].imag(), 0.0, 2e-3);
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, HomomorphicChebyTest,
                         ::testing::Values(7, 15, 31, 63));

TEST(ChebyshevEvaluator, AsymmetricInterval)
{
    CkksParams params = testing::small_params();
    params.max_level = 8;
    auto& env = testing::cached_env("cheby", params);

    const auto series = ChebyshevSeries::interpolate(
        [](double x) { return std::log(x); }, 1, 4, 15);

    const std::size_t slots = 32;
    std::vector<Complex> z(slots);
    Xoshiro256 rng(99);
    for (auto& v : z) v = Complex(1.0 + 3.0 * rng.uniform_real(), 0);

    const ChebyshevEvaluator cheby(env.evaluator);
    const Ciphertext out =
        cheby.evaluate(env.encrypt(z), series, env.mult_key);
    const auto got = env.decrypt(out);
    for (std::size_t i = 0; i < slots; ++i) {
        EXPECT_NEAR(got[i].real(), std::log(z[i].real()), 5e-3);
    }
}

} // namespace
} // namespace bts
