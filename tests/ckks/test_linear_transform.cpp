#include "ckks/linear_transform.h"

#include <gtest/gtest.h>

#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;
using testing::default_env;

RotationKeys
keys_for(TestEnv& env, const LinearTransform& lt)
{
    return env.keygen.gen_rotation_keys(env.sk, lt.required_rotations());
}

std::vector<Complex>
matvec(const std::vector<std::vector<Complex>>& m,
       const std::vector<Complex>& v)
{
    std::vector<Complex> out(v.size(), Complex(0, 0));
    for (std::size_t j = 0; j < v.size(); ++j) {
        for (std::size_t k = 0; k < v.size(); ++k) out[j] += m[j][k] * v[k];
    }
    return out;
}

TEST(LinearTransform, ScaledIdentity)
{
    auto& env = default_env();
    const std::size_t n = 32;
    const auto matrix = scaled_identity_matrix(n, Complex(2.5, 0));
    const LinearTransform lt(env.ctx, env.encoder, matrix, 3);
    // The identity has one diagonal and needs no rotations.
    EXPECT_EQ(lt.num_diagonals(), 1);
    EXPECT_TRUE(lt.required_rotations().empty());

    const auto z = env.random_message(n, 1.0, 71);
    const RotationKeys keys;
    const Ciphertext out = lt.apply(env.evaluator, env.encrypt(z), keys);
    EXPECT_EQ(out.level, 2);
    EXPECT_DOUBLE_EQ(out.scale, env.ctx.delta());
    std::vector<Complex> expected(n);
    for (std::size_t i = 0; i < n; ++i) expected[i] = z[i] * 2.5;
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(out)), 1e-4);
}

TEST(LinearTransform, CyclicShiftMatrix)
{
    // Permutation matrix implementing a shift by 3 — a single diagonal.
    auto& env = default_env();
    const std::size_t n = 64;
    std::vector<std::vector<Complex>> matrix(
        n, std::vector<Complex>(n, Complex(0, 0)));
    for (std::size_t j = 0; j < n; ++j) matrix[j][(j + 3) % n] = 1.0;

    const LinearTransform lt(env.ctx, env.encoder, matrix, 3);
    EXPECT_EQ(lt.num_diagonals(), 1);
    auto keys = keys_for(env, lt);
    const auto z = env.random_message(n, 1.0, 72);
    const Ciphertext out = lt.apply(env.evaluator, env.encrypt(z), keys);
    std::vector<Complex> expected(n);
    for (std::size_t j = 0; j < n; ++j) expected[j] = z[(j + 3) % n];
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(out)), 1e-4);
}

class DenseMatrixTest : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(DenseMatrixTest, RandomDenseMatrix)
{
    auto& env = default_env();
    const std::size_t n = GetParam();
    Xoshiro256 rng(1234 + n);
    std::vector<std::vector<Complex>> matrix(n, std::vector<Complex>(n));
    for (auto& row : matrix) {
        for (auto& e : row) {
            e = Complex(2 * rng.uniform_real() - 1,
                        2 * rng.uniform_real() - 1) /
                static_cast<double>(n);
        }
    }
    const LinearTransform lt(env.ctx, env.encoder, matrix, 4);
    EXPECT_EQ(lt.num_diagonals(), static_cast<int>(n));
    auto keys = keys_for(env, lt);

    const auto z = env.random_message(n, 1.0, 73);
    const Ciphertext out = lt.apply(env.evaluator, env.encrypt(z), keys);
    EXPECT_LT(TestEnv::max_err(matvec(matrix, z), env.decrypt(out)), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseMatrixTest,
                         ::testing::Values(8, 16, 64, 128));

TEST(LinearTransform, BsgsRotationCountIsSublinear)
{
    // BSGS needs ~2*sqrt(n) rotations, not n — the whole point.
    auto& env = default_env();
    const std::size_t n = 256;
    Xoshiro256 rng(5);
    std::vector<std::vector<Complex>> matrix(n, std::vector<Complex>(n));
    for (auto& row : matrix) {
        for (auto& e : row) e = Complex(rng.uniform_real(), 0);
    }
    const LinearTransform lt(env.ctx, env.encoder, matrix, 2);
    EXPECT_LT(lt.required_rotations().size(), 3 * 16 + 2u);
    EXPECT_GE(lt.baby_steps(), 8);
}

TEST(LinearTransform, CompositionOfTwoTransforms)
{
    // Applying M then its inverse-ish scaled transpose: use a DFT-like
    // unitary matrix where M * M^dagger = I.
    auto& env = default_env();
    const std::size_t n = 16;
    std::vector<std::vector<Complex>> f(n, std::vector<Complex>(n));
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
            const double ang = 2 * M_PI * j * k / n;
            f[j][k] = Complex(std::cos(ang), std::sin(ang)) /
                      std::sqrt(static_cast<double>(n));
        }
    }
    std::vector<std::vector<Complex>> f_dag(n, std::vector<Complex>(n));
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) f_dag[j][k] = std::conj(f[k][j]);
    }

    const LinearTransform lt1(env.ctx, env.encoder, f, 4);
    const LinearTransform lt2(env.ctx, env.encoder, f_dag, 3);
    auto keys = keys_for(env, lt1);
    for (auto& [r, k] : keys_for(env, lt2)) keys.emplace(r, std::move(k));

    const auto z = env.random_message(n, 1.0, 74);
    const Ciphertext mid = lt1.apply(env.evaluator, env.encrypt(z), keys);
    const Ciphertext out = lt2.apply(env.evaluator, mid, keys);
    EXPECT_EQ(out.level, 2);
    EXPECT_LT(TestEnv::max_err(z, env.decrypt(out)), 1e-3);
}

TEST(LinearTransform, RejectsWrongSlotCount)
{
    auto& env = default_env();
    const auto matrix = scaled_identity_matrix(16, Complex(1, 0));
    const LinearTransform lt(env.ctx, env.encoder, matrix, 3);
    const auto z = env.random_message(32, 1.0, 75);
    const RotationKeys keys;
    EXPECT_THROW(lt.apply(env.evaluator, env.encrypt(z), keys),
                 std::invalid_argument);
}

TEST(LinearTransform, RejectsZeroMatrix)
{
    auto& env = default_env();
    std::vector<std::vector<Complex>> zero(
        8, std::vector<Complex>(8, Complex(0, 0)));
    EXPECT_THROW(LinearTransform(env.ctx, env.encoder, zero, 3),
                 std::invalid_argument);
}

} // namespace
} // namespace bts
