#include <gtest/gtest.h>

#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;
using testing::default_env;

TEST(Encrypt, SymmetricRoundTrip)
{
    auto& env = default_env();
    const auto z = env.random_message(128, 1.0, 21);
    const Plaintext pt = env.encoder.encode(z, env.ctx.delta(), 3);
    const Ciphertext ct = env.encryptor.encrypt_symmetric(pt, env.sk);
    EXPECT_EQ(ct.level, 3);
    EXPECT_EQ(ct.slots, 128u);
    const auto back = env.decrypt(ct);
    EXPECT_LT(TestEnv::max_err(z, back), 1e-6);
}

TEST(Encrypt, PublicKeyRoundTrip)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 22);
    const Plaintext pt =
        env.encoder.encode(z, env.ctx.delta(), env.ctx.max_level());
    const Ciphertext ct = env.encryptor.encrypt_public(pt, env.pk);
    const auto back = env.decrypt(ct);
    // Public-key noise is larger than symmetric but still tiny vs Delta.
    EXPECT_LT(TestEnv::max_err(z, back), 1e-4);
}

TEST(Encrypt, CiphertextLooksUniform)
{
    // Both components should be far from the plaintext: spot-check that
    // the `a` part is not all zeros and `b` differs from the message.
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 23);
    const Plaintext pt = env.encoder.encode(z, env.ctx.delta(), 2);
    const Ciphertext ct = env.encryptor.encrypt_symmetric(pt, env.sk);
    u64 nonzero = 0;
    for (u64 v : ct.a.component(0)) nonzero += (v != 0);
    EXPECT_GT(nonzero, env.ctx.n() / 2);
    EXPECT_FALSE(ct.b.equals(pt.poly));
}

TEST(Encrypt, FreshNoiseIsSmall)
{
    // Decrypt without decode and compare raw coefficients: noise must be
    // at the Gaussian scale (sigma=3.2), many orders below Delta.
    auto& env = default_env();
    std::vector<double> coeffs(env.ctx.n(), 0.0);
    const Plaintext pt =
        env.encoder.encode_coeffs(coeffs, env.ctx.delta(), 1, 64);
    const Ciphertext ct = env.encryptor.encrypt_symmetric(pt, env.sk);
    const Plaintext dec = env.decryptor.decrypt(ct, env.sk);
    const auto noise = env.encoder.decode_coeffs(dec);
    double worst = 0;
    for (double v : noise) worst = std::max(worst, std::abs(v));
    EXPECT_LT(worst * env.ctx.delta(), 64.0); // ~20 sigma margin
    EXPECT_GT(worst, 0.0);                    // but not noiseless
}

TEST(Encrypt, DifferentSeedsDifferentCiphertexts)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 24);
    const Plaintext pt = env.encoder.encode(z, env.ctx.delta(), 2);
    const Ciphertext c1 = env.encryptor.encrypt_symmetric(pt, env.sk);
    const Ciphertext c2 = env.encryptor.encrypt_symmetric(pt, env.sk);
    EXPECT_FALSE(c1.a.equals(c2.a));
    // Yet both decrypt to the same message.
    EXPECT_LT(TestEnv::max_err(env.decrypt(c1), env.decrypt(c2)), 1e-6);
}

TEST(Encrypt, WrongKeyFailsToDecrypt)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 25);
    const Ciphertext ct = env.encrypt(z);
    KeyGenerator other_gen(env.ctx, 999);
    const SecretKey wrong = other_gen.gen_secret_key();
    const auto garbage =
        env.encoder.decode(env.decryptor.decrypt(ct, wrong));
    EXPECT_GT(TestEnv::max_err(z, garbage), 1.0);
}

} // namespace
} // namespace bts
