#include <gtest/gtest.h>

#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;
using testing::default_env;

TEST(Rekey, SwitchesDecryptionKey)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 701);
    const Ciphertext ct = env.encrypt(z);

    KeyGenerator other_gen(env.ctx, 4242);
    const SecretKey sk_other = other_gen.gen_secret_key();
    const EvalKey rekey = env.keygen.gen_rekey_key(env.sk, sk_other);

    const Ciphertext switched = env.evaluator.switch_key(ct, rekey);
    // Decryptable under the NEW key...
    const auto got = env.encoder.decode(
        env.decryptor.decrypt(switched, sk_other));
    EXPECT_LT(TestEnv::max_err(z, got), 1e-4);
    // ...and garbage under the old one.
    const auto wrong =
        env.encoder.decode(env.decryptor.decrypt(switched, env.sk));
    EXPECT_GT(TestEnv::max_err(z, wrong), 1.0);
}

TEST(Rekey, PreservesLevelScaleAndSlots)
{
    auto& env = default_env();
    const auto z = env.random_message(32, 1.0, 702);
    Ciphertext ct = env.encrypt(z, 3);

    KeyGenerator other_gen(env.ctx, 7);
    const SecretKey sk_other = other_gen.gen_secret_key();
    const EvalKey rekey = env.keygen.gen_rekey_key(env.sk, sk_other);
    const Ciphertext switched = env.evaluator.switch_key(ct, rekey);
    EXPECT_EQ(switched.level, 3);
    EXPECT_DOUBLE_EQ(switched.scale, ct.scale);
    EXPECT_EQ(switched.slots, ct.slots);
}

TEST(Rekey, ComputationContinuesAfterSwitch)
{
    // The re-encrypted ciphertext is a first-class citizen: the new
    // key-holder can keep multiplying.
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 703);
    const Ciphertext ct = env.encrypt(z);

    KeyGenerator other_gen(env.ctx, 99);
    const SecretKey sk_other = other_gen.gen_secret_key();
    const EvalKey rekey = env.keygen.gen_rekey_key(env.sk, sk_other);
    const EvalKey mult_other = other_gen.gen_mult_key(sk_other);

    Ciphertext switched = env.evaluator.switch_key(ct, rekey);
    Ciphertext sq = env.evaluator.square(switched, mult_other);
    env.evaluator.rescale_inplace(sq);

    std::vector<Complex> expected(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) expected[i] = z[i] * z[i];
    const auto got =
        env.encoder.decode(env.decryptor.decrypt(sq, sk_other));
    EXPECT_LT(TestEnv::max_err(expected, got), 1e-4);
}

} // namespace
} // namespace bts
