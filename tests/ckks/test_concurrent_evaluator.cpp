/**
 * @file
 * Concurrent-Evaluator safety: the runtime Executor schedules
 * independent ops of one graph onto worker lanes, and the serving
 * harness runs whole jobs concurrently — both rest on the guarantee
 * that a shared CkksContext / Evaluator / key set can serve multiple
 * threads at once with bit-exact results. This suite pins exactly
 * that: independent mult/rotate/rescale chains on two (and four)
 * threads against shared state, compared bit for bit to the serial
 * execution of the same chains.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/thread_guard.h"
#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;
using testing::ThreadGuard;

struct ConcEnv
{
    ConcEnv() : env(bts::testing::small_params())
    {
        rot_keys = env.keygen.gen_rotation_keys(env.sk, {1, 2, 3, 4});
    }

    TestEnv env;
    RotationKeys rot_keys;
};

ConcEnv&
cenv()
{
    static ConcEnv* e = new ConcEnv();
    return *e;
}

using testing::ct_equal;

/** One client's chain: rotate, square, rescale, rotate, add — every
 *  evk-bearing op plus the rescale hot path, parameterized so each
 *  thread computes something different. */
Ciphertext
run_chain(const TestEnv& env, const RotationKeys& rot_keys,
          const Ciphertext& input, int which)
{
    const Evaluator& ev = env.evaluator;
    const int r1 = 1 + which % 4;
    Ciphertext rot = ev.rotate(input, r1, rot_keys.at(r1));
    Ciphertext prod = ev.mult(rot, input, env.mult_key);
    ev.rescale_inplace(prod);
    const int r2 = 1 + (which + 1) % 4;
    Ciphertext rot2 = ev.rotate(prod, r2, rot_keys.at(r2));
    Ciphertext sum = ev.add(prod, rot2);
    Ciphertext conj = ev.conjugate(sum, env.conj_key);
    return ev.add(sum, conj);
}

void
pin_concurrent_vs_serial(int n_chains)
{
    auto& e = cenv();
    std::vector<Ciphertext> inputs;
    for (int c = 0; c < n_chains; ++c) {
        inputs.push_back(e.env.encrypt(
            e.env.random_message(e.env.ctx.n() / 2, 1.0, 900 + c)));
    }

    // Serial reference, one chain after another.
    std::vector<Ciphertext> serial;
    for (int c = 0; c < n_chains; ++c) {
        serial.push_back(run_chain(e.env, e.rot_keys, inputs[c], c));
    }

    // The same chains, one std::thread each, shared context and keys.
    std::vector<Ciphertext> concurrent(n_chains);
    std::vector<std::thread> threads;
    for (int c = 0; c < n_chains; ++c) {
        threads.emplace_back([&, c] {
            concurrent[c] = run_chain(e.env, e.rot_keys, inputs[c], c);
        });
    }
    for (auto& t : threads) t.join();

    for (int c = 0; c < n_chains; ++c) {
        EXPECT_TRUE(ct_equal(serial[c], concurrent[c])) << "chain " << c;
    }
}

TEST(ConcurrentEvaluator, TwoThreadsBitExact)
{
    pin_concurrent_vs_serial(2);
}

TEST(ConcurrentEvaluator, FourThreadsBitExact)
{
    pin_concurrent_vs_serial(4);
}

TEST(ConcurrentEvaluator, BitExactWithParallelLanesEnabled)
{
    // Evaluator threads AND the intra-op limb-parallel layer at once:
    // the global pool serializes external parallel_for callers, so
    // concurrent evaluator users must still be bit-exact.
    ThreadGuard guard;
    set_num_threads(4);
    pin_concurrent_vs_serial(2);
}

TEST(ConcurrentEvaluator, SharedMonomialCacheRace)
{
    // mult_by_i populates the evaluator's lazily-built monomial cache;
    // hammer it from several threads on a fresh Evaluator so the
    // first-touch path races (the mutex makes it safe).
    auto& e = cenv();
    const Evaluator fresh(e.env.ctx, e.env.encoder);
    const Ciphertext ct = e.env.encrypt(
        e.env.random_message(e.env.ctx.n() / 2, 1.0, 77));
    const Ciphertext want = fresh.mult_by_i(ct);

    std::vector<Ciphertext> got(4);
    std::vector<std::thread> threads;
    for (int c = 0; c < 4; ++c) {
        threads.emplace_back([&, c] { got[c] = fresh.mult_by_i(ct); });
    }
    for (auto& t : threads) t.join();
    for (int c = 0; c < 4; ++c) {
        EXPECT_TRUE(ct_equal(want, got[c])) << "thread " << c;
    }
}

} // namespace
} // namespace bts
