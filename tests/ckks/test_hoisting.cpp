#include <gtest/gtest.h>

#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;
using testing::default_env;

TEST(Hoisting, MatchesIndividualRotations)
{
    // rotate_hoisted must agree with rotate() for every amount — the
    // shared ModUp is an exact refactoring up to BConv's standard
    // approximation class.
    auto& env = default_env();
    const std::size_t slots = 128;
    const auto z = env.random_message(slots, 1.0, 301);
    const Ciphertext ct = env.encrypt(z);

    const std::vector<int> amounts = {1, 3, 17, 64};
    const RotationKeys keys = env.keygen.gen_rotation_keys(env.sk, amounts);

    const auto hoisted = env.evaluator.rotate_hoisted(ct, amounts, keys);
    ASSERT_EQ(hoisted.size(), amounts.size());
    for (std::size_t i = 0; i < amounts.size(); ++i) {
        const Ciphertext single =
            env.evaluator.rotate(ct, amounts[i], keys.at(amounts[i]));
        EXPECT_LT(TestEnv::max_err(env.decrypt(hoisted[i]),
                                   env.decrypt(single)),
                  1e-4)
            << "amount " << amounts[i];
    }
}

TEST(Hoisting, DecryptsToRotatedMessage)
{
    auto& env = default_env();
    const std::size_t slots = 64;
    const auto z = env.random_message(slots, 1.0, 302);
    const Ciphertext ct = env.encrypt(z);
    const std::vector<int> amounts = {2, 5};
    const RotationKeys keys = env.keygen.gen_rotation_keys(env.sk, amounts);
    const auto hoisted = env.evaluator.rotate_hoisted(ct, amounts, keys);
    for (std::size_t i = 0; i < amounts.size(); ++i) {
        std::vector<Complex> expected(slots);
        for (std::size_t j = 0; j < slots; ++j) {
            expected[j] = z[(j + amounts[i]) % slots];
        }
        EXPECT_LT(TestEnv::max_err(expected, env.decrypt(hoisted[i])),
                  1e-4);
    }
}

TEST(Hoisting, GroupedCallBitEqualsPerAmountHoistedCalls)
{
    // THE soundness pin for the rotation-CSE pass: the runtime
    // Executor dispatches every kHRot through the hoisted entry point
    // with a single amount, and the pass groups rotations of one value
    // into a single multi-amount call. The two must be bit-identical —
    // the shared decompose+ModUp prefix is amount-independent, so
    // grouping changes how often the prefix is paid, never a single
    // limb of any result.
    auto& env = default_env();
    const auto z = env.random_message(128, 1.0, 306);
    const Ciphertext ct = env.encrypt(z);
    const std::vector<int> amounts = {1, 3, 17, 64};
    const RotationKeys keys =
        env.keygen.gen_rotation_keys(env.sk, amounts);

    const auto grouped = env.evaluator.rotate_hoisted(ct, amounts, keys);
    ASSERT_EQ(grouped.size(), amounts.size());
    for (std::size_t i = 0; i < amounts.size(); ++i) {
        // Pre-resolved-key overload with one amount: the Executor's
        // per-node path.
        const EvalKey& key = keys.at(amounts[i]);
        const auto single = env.evaluator.rotate_hoisted(
            ct, {amounts[i]}, std::vector<const EvalKey*>{&key});
        ASSERT_EQ(single.size(), 1u);
        EXPECT_TRUE(testing::ct_equal(grouped[i], single[0]))
            << "amount " << amounts[i];
        // And the RotationKeys overload agrees too.
        const auto single2 =
            env.evaluator.rotate_hoisted(ct, {amounts[i]}, keys);
        EXPECT_TRUE(testing::ct_equal(grouped[i], single2[0]))
            << "amount " << amounts[i];
    }
}

TEST(Hoisting, ZeroAmountIsIdentity)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 303);
    const Ciphertext ct = env.encrypt(z);
    const RotationKeys keys = env.keygen.gen_rotation_keys(env.sk, {1});
    const auto out = env.evaluator.rotate_hoisted(ct, {0, 1}, keys);
    EXPECT_LT(TestEnv::max_err(z, env.decrypt(out[0])), 1e-6);
}

TEST(Hoisting, MissingKeyRejected)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 304);
    const Ciphertext ct = env.encrypt(z);
    const RotationKeys keys = env.keygen.gen_rotation_keys(env.sk, {1});
    EXPECT_THROW(env.evaluator.rotate_hoisted(ct, {1, 2}, keys),
                 std::invalid_argument);
}

TEST(Hoisting, WorksAtLowLevel)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 305);
    Ciphertext ct = env.encrypt(z);
    env.evaluator.drop_level_inplace(ct, 1);
    const RotationKeys keys = env.keygen.gen_rotation_keys(env.sk, {7});
    const auto out = env.evaluator.rotate_hoisted(ct, {7}, keys);
    std::vector<Complex> expected(z.size());
    for (std::size_t j = 0; j < z.size(); ++j) {
        expected[j] = z[(j + 7) % z.size()];
    }
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(out[0])), 1e-4);
    EXPECT_EQ(out[0].level, 1);
}

} // namespace
} // namespace bts
