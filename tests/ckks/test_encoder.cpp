#include "ckks/encoder.h"

#include <gtest/gtest.h>

#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;
using testing::default_env;

TEST(Encoder, RoundTripFullPacking)
{
    auto& env = default_env();
    const auto z = env.random_message(env.encoder.max_slots(), 1.0, 1);
    const Plaintext pt = env.encoder.encode(z, env.ctx.delta(), 2);
    const auto back = env.encoder.decode(pt);
    EXPECT_LT(TestEnv::max_err(z, back), 1e-8);
}

class EncoderSparseTest : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(EncoderSparseTest, RoundTripSparsePacking)
{
    auto& env = default_env();
    const std::size_t slots = GetParam();
    const auto z = env.random_message(slots, 1.0, slots);
    const Plaintext pt = env.encoder.encode(z, env.ctx.delta(), 1);
    const auto back = env.encoder.decode(pt);
    EXPECT_LT(TestEnv::max_err(z, back), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(SlotCounts, EncoderSparseTest,
                         ::testing::Values(1, 2, 8, 64, 256, 512));

TEST(Encoder, FastDecodeMatchesDirectEvaluation)
{
    // The O(n log n) special FFT must agree with the O(n^2) evaluation
    // at the rotation-group roots.
    auto& env = default_env();
    for (std::size_t slots : {4u, 32u, 128u}) {
        const auto z = env.random_message(slots, 1.0, slots + 99);
        const Plaintext pt = env.encoder.encode(z, env.ctx.delta(), 0);
        const auto fast = env.encoder.decode(pt);
        const auto direct = env.encoder.decode_direct(pt);
        EXPECT_LT(TestEnv::max_err(fast, direct), 1e-7) << slots;
    }
}

TEST(Encoder, RingHomomorphismMultiplication)
{
    // Negacyclic polynomial multiplication == slot-wise multiplication:
    // the property that makes CKKS SIMD work at all.
    auto& env = default_env();
    const std::size_t slots = 256;
    const auto z1 = env.random_message(slots, 1.0, 5);
    const auto z2 = env.random_message(slots, 1.0, 6);
    Plaintext p1 = env.encoder.encode(z1, env.ctx.delta(), 1);
    const Plaintext p2 = env.encoder.encode(z2, env.ctx.delta(), 1);

    p1.poly.mul_inplace(p2.poly);
    p1.scale *= p2.scale;

    const auto got = env.encoder.decode(p1);
    std::vector<Complex> expected(slots);
    for (std::size_t i = 0; i < slots; ++i) expected[i] = z1[i] * z2[i];
    EXPECT_LT(TestEnv::max_err(expected, got), 1e-6);
}

TEST(Encoder, RingHomomorphismAddition)
{
    auto& env = default_env();
    const std::size_t slots = 128;
    const auto z1 = env.random_message(slots, 1.0, 7);
    const auto z2 = env.random_message(slots, 1.0, 8);
    Plaintext p1 = env.encoder.encode(z1, env.ctx.delta(), 1);
    const Plaintext p2 = env.encoder.encode(z2, env.ctx.delta(), 1);
    p1.poly.add_inplace(p2.poly);
    const auto got = env.encoder.decode(p1);
    std::vector<Complex> expected(slots);
    for (std::size_t i = 0; i < slots; ++i) expected[i] = z1[i] + z2[i];
    EXPECT_LT(TestEnv::max_err(expected, got), 1e-7);
}

TEST(Encoder, AutomorphismRotatesSlots)
{
    // The Galois map X -> X^{5^r} rotates the packed message by r
    // (Eq. 5 of the paper).
    auto& env = default_env();
    const std::size_t slots = 64;
    const auto z = env.random_message(slots, 1.0, 9);
    Plaintext pt = env.encoder.encode(z, env.ctx.delta(), 1);

    const int r = 5;
    const u64 exp = env.keygen.galois_exp_for_rotation(r);
    pt.poly.to_coeff(env.ctx.tables_for(pt.poly));
    pt.poly = pt.poly.automorphism(exp);
    pt.poly.to_ntt(env.ctx.tables_for(pt.poly));

    const auto got = env.encoder.decode(pt);
    std::vector<Complex> expected(slots);
    for (std::size_t i = 0; i < slots; ++i) {
        expected[i] = z[(i + r) % slots];
    }
    EXPECT_LT(TestEnv::max_err(expected, got), 1e-7);
}

TEST(Encoder, ConjugationAutomorphism)
{
    auto& env = default_env();
    const std::size_t slots = 64;
    const auto z = env.random_message(slots, 1.0, 10);
    Plaintext pt = env.encoder.encode(z, env.ctx.delta(), 1);

    pt.poly.to_coeff(env.ctx.tables_for(pt.poly));
    pt.poly = pt.poly.automorphism(env.keygen.galois_exp_conjugation());
    pt.poly.to_ntt(env.ctx.tables_for(pt.poly));

    const auto got = env.encoder.decode(pt);
    std::vector<Complex> expected(slots);
    for (std::size_t i = 0; i < slots; ++i) expected[i] = std::conj(z[i]);
    EXPECT_LT(TestEnv::max_err(expected, got), 1e-7);
}

TEST(Encoder, CoeffEncodeDecodeRoundTrip)
{
    auto& env = default_env();
    std::vector<double> coeffs(env.ctx.n(), 0.0);
    Xoshiro256 rng(11);
    for (auto& c : coeffs) c = 2 * rng.uniform_real() - 1;
    const Plaintext pt =
        env.encoder.encode_coeffs(coeffs, env.ctx.delta(), 1, 64);
    const auto back = env.encoder.decode_coeffs(pt);
    double worst = 0;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
        worst = std::max(worst, std::abs(coeffs[i] - back[i]));
    }
    EXPECT_LT(worst, 1e-9);
}

TEST(Encoder, ScalarEncode)
{
    auto& env = default_env();
    const Plaintext pt =
        env.encoder.encode_scalar(Complex(0.5, -0.25), 32, env.ctx.delta(), 1);
    for (const auto& v : env.encoder.decode(pt)) {
        EXPECT_NEAR(v.real(), 0.5, 1e-9);
        EXPECT_NEAR(v.imag(), -0.25, 1e-9);
    }
}

TEST(Encoder, RejectsBadInputs)
{
    auto& env = default_env();
    // Non-power-of-two slot count.
    EXPECT_THROW(env.encoder.encode(std::vector<Complex>(3), 1e10, 1),
                 std::invalid_argument);
    // Too many slots.
    EXPECT_THROW(
        env.encoder.encode(std::vector<Complex>(env.ctx.n()), 1e10, 1),
        std::invalid_argument);
    // Scale overflow.
    EXPECT_THROW(env.encoder.encode({Complex(1e30, 0)}, 1e40, 1),
                 std::invalid_argument);
}

TEST(Encoder, EncodingErrorScalesInversely)
{
    // Rounding error should shrink as the scale grows.
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 12);
    const Plaintext lo = env.encoder.encode(z, 0x1.0p20, 1);
    const Plaintext hi = env.encoder.encode(z, 0x1.0p40, 1);
    const double err_lo = TestEnv::max_err(z, env.encoder.decode(lo));
    const double err_hi = TestEnv::max_err(z, env.encoder.decode(hi));
    EXPECT_LT(err_hi, err_lo / 1000);
}

} // namespace
} // namespace bts
