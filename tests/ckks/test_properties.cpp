/**
 * @file
 * Property-style sweeps over the homomorphic algebra: ring laws,
 * rotation group structure, scale/level invariants, and noise-growth
 * sanity — parameterized across levels and packing widths.
 */
#include <gtest/gtest.h>

#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;
using testing::default_env;

class LevelSweep : public ::testing::TestWithParam<int>
{};

TEST_P(LevelSweep, AdditionCommutesAndAssociates)
{
    auto& env = default_env();
    const int level = GetParam();
    const auto z1 = env.random_message(64, 1.0, 400 + level);
    const auto z2 = env.random_message(64, 1.0, 410 + level);
    const auto z3 = env.random_message(64, 1.0, 420 + level);
    const auto a = env.encrypt(z1, level);
    const auto b = env.encrypt(z2, level);
    const auto c = env.encrypt(z3, level);

    const auto ab = env.evaluator.add(a, b);
    const auto ba = env.evaluator.add(b, a);
    EXPECT_LT(TestEnv::max_err(env.decrypt(ab), env.decrypt(ba)), 1e-8);

    const auto ab_c = env.evaluator.add(ab, c);
    const auto a_bc = env.evaluator.add(a, env.evaluator.add(b, c));
    EXPECT_LT(TestEnv::max_err(env.decrypt(ab_c), env.decrypt(a_bc)),
              1e-8);
}

TEST_P(LevelSweep, MultiplicationCommutes)
{
    auto& env = default_env();
    const int level = GetParam();
    if (level < 1) GTEST_SKIP();
    const auto z1 = env.random_message(64, 1.0, 430 + level);
    const auto z2 = env.random_message(64, 1.0, 440 + level);
    const auto a = env.encrypt(z1, level);
    const auto b = env.encrypt(z2, level);
    const auto ab = env.evaluator.mult(a, b, env.mult_key);
    const auto ba = env.evaluator.mult(b, a, env.mult_key);
    EXPECT_LT(TestEnv::max_err(env.decrypt(ab), env.decrypt(ba)), 1e-6);
}

TEST_P(LevelSweep, DistributiveLaw)
{
    auto& env = default_env();
    const int level = GetParam();
    if (level < 1) GTEST_SKIP();
    const auto z1 = env.random_message(32, 1.0, 450 + level);
    const auto z2 = env.random_message(32, 1.0, 460 + level);
    const auto z3 = env.random_message(32, 1.0, 470 + level);
    const auto a = env.encrypt(z1, level);
    const auto b = env.encrypt(z2, level);
    const auto c = env.encrypt(z3, level);
    // a*(b+c) == a*b + a*c
    const auto lhs =
        env.evaluator.mult(a, env.evaluator.add(b, c), env.mult_key);
    const auto rhs = env.evaluator.add(
        env.evaluator.mult(a, b, env.mult_key),
        env.evaluator.mult(a, c, env.mult_key));
    EXPECT_LT(TestEnv::max_err(env.decrypt(lhs), env.decrypt(rhs)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Levels, LevelSweep, ::testing::Values(1, 3, 6));

class SlotSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(SlotSweep, RotationGroupClosure)
{
    // Rotating by the slot count is the identity; rotating by r then
    // slots - r is too.
    auto& env = default_env();
    const std::size_t slots = GetParam();
    const auto z = env.random_message(slots, 1.0, 500 + slots);
    const Ciphertext ct = env.encrypt(z);
    const int r = static_cast<int>(slots / 2 + 1);
    const int r_inv = static_cast<int>(slots) - r;
    const auto keys = env.keygen.gen_rotation_keys(env.sk, {r, r_inv});
    const auto once = env.evaluator.rotate(ct, r, keys.at(r));
    const auto back = env.evaluator.rotate(once, r_inv, keys.at(r_inv));
    EXPECT_LT(TestEnv::max_err(z, env.decrypt(back)), 1e-4);
}

TEST_P(SlotSweep, ConjugationIsInvolution)
{
    auto& env = default_env();
    const std::size_t slots = GetParam();
    const auto z = env.random_message(slots, 1.0, 520 + slots);
    const Ciphertext ct = env.encrypt(z);
    const auto twice = env.evaluator.conjugate(
        env.evaluator.conjugate(ct, env.conj_key), env.conj_key);
    EXPECT_LT(TestEnv::max_err(z, env.decrypt(twice)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Packings, SlotSweep,
                         ::testing::Values(8, 64, 512));

TEST(Properties, RescaleCommutesWithAddition)
{
    // rescale(a + b) == rescale(a) + rescale(b) (exact RNS identity).
    auto& env = default_env();
    const auto z1 = env.random_message(64, 1.0, 601);
    const auto z2 = env.random_message(64, 1.0, 602);
    auto a = env.evaluator.mult(env.encrypt(z1), env.encrypt(z1),
                                env.mult_key);
    auto b = env.evaluator.mult(env.encrypt(z2), env.encrypt(z2),
                                env.mult_key);
    auto sum = env.evaluator.add(a, b);
    env.evaluator.rescale_inplace(sum);
    env.evaluator.rescale_inplace(a);
    env.evaluator.rescale_inplace(b);
    const auto sum2 = env.evaluator.add(a, b);
    EXPECT_LT(TestEnv::max_err(env.decrypt(sum), env.decrypt(sum2)), 1e-6);
}

TEST(Properties, RotationDistributesOverMult)
{
    // rot(a (*) b) == rot(a) (*) rot(b): the automorphism is a ring
    // homomorphism (what lets HRot commute past PMult in bootstrap
    // schedules).
    auto& env = default_env();
    const std::size_t slots = 64;
    const auto z1 = env.random_message(slots, 1.0, 603);
    const auto z2 = env.random_message(slots, 1.0, 604);
    const auto keys = env.keygen.gen_rotation_keys(env.sk, {5});
    const auto a = env.encrypt(z1);
    const auto b = env.encrypt(z2);

    auto prod = env.evaluator.mult(a, b, env.mult_key);
    const auto rot_of_prod = env.evaluator.rotate(prod, 5, keys.at(5));

    const auto prod_of_rot = env.evaluator.mult(
        env.evaluator.rotate(a, 5, keys.at(5)),
        env.evaluator.rotate(b, 5, keys.at(5)), env.mult_key);
    EXPECT_LT(TestEnv::max_err(env.decrypt(rot_of_prod),
                               env.decrypt(prod_of_rot)),
              1e-4);
}

TEST(Properties, NoiseGrowthUnderMultChain)
{
    // Error grows gradually, not explosively, along a rescale chain —
    // the invariant HRescale exists to maintain (Section 2.4).
    auto& env = default_env();
    std::vector<Complex> z(64, Complex(1.0, 0.0)); // fixpoint of squaring
    Ciphertext ct = env.encrypt(z);
    double prev_err = 0;
    for (int l = env.ctx.max_level(); l >= 1; --l) {
        ct = env.evaluator.square(ct, env.mult_key);
        env.evaluator.rescale_inplace(ct);
        const double err = TestEnv::max_err(z, env.decrypt(ct));
        EXPECT_LT(err, 1e-3) << "level " << l;
        prev_err = err;
    }
    EXPECT_GT(prev_err, 0.0);
}

TEST(Properties, CiphertextPlaintextMultAgree)
{
    // mult_plain(ct, encode(z)) == mult(ct, encrypt(z)) up to noise.
    auto& env = default_env();
    const auto z1 = env.random_message(64, 1.0, 605);
    const auto z2 = env.random_message(64, 1.0, 606);
    const auto ct = env.encrypt(z1);
    const Plaintext pt = env.encoder.encode(z2, env.ctx.delta(), 6);
    const auto via_plain = env.evaluator.mult_plain(ct, pt);
    const auto via_cipher =
        env.evaluator.mult(ct, env.encrypt(z2), env.mult_key);
    EXPECT_LT(TestEnv::max_err(env.decrypt(via_plain),
                               env.decrypt(via_cipher)),
              1e-4);
}

TEST(Properties, EncryptThenRaiseRoundTripsThroughLevels)
{
    // drop to 0, mod-raise, drop again: message survives (the level
    // machinery bootstrap depends on).
    auto& env = default_env();
    const auto z = env.random_message(64, 0.3, 607);
    Ciphertext ct = env.encrypt(z);
    env.evaluator.drop_level_inplace(ct, 0);
    EXPECT_LT(TestEnv::max_err(z, env.decrypt(ct)), 1e-5);
}

} // namespace
} // namespace bts
