/**
 * @file
 * Shared CKKS test environment: a small (insecure, see DESIGN.md) CKKS
 * instance with all key material, built once per parameter set and
 * cached across tests.
 */
#pragma once

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "ckks/bootstrapper.h"
#include "ckks/decryptor.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"

namespace bts::testing {

struct TestEnv
{
    explicit TestEnv(const CkksParams& params)
        : ctx(params),
          encoder(ctx),
          evaluator(ctx, encoder),
          keygen(ctx, params.seed + 1),
          encryptor(ctx, params.seed + 2),
          decryptor(ctx)
    {
        sk = keygen.gen_secret_key();
        pk = keygen.gen_public_key(sk);
        mult_key = keygen.gen_mult_key(sk);
        conj_key = keygen.gen_conjugation_key(sk);
    }

    std::vector<Complex>
    random_message(std::size_t slots, double magnitude, u64 seed) const
    {
        Xoshiro256 rng(seed);
        std::vector<Complex> z(slots);
        for (auto& v : z) {
            v = Complex(magnitude * (2 * rng.uniform_real() - 1),
                        magnitude * (2 * rng.uniform_real() - 1));
        }
        return z;
    }

    Ciphertext
    encrypt(const std::vector<Complex>& z, int level = -1)
    {
        if (level < 0) level = ctx.max_level();
        const Plaintext pt = encoder.encode(z, ctx.delta(), level);
        return encryptor.encrypt_symmetric(pt, sk);
    }

    std::vector<Complex>
    decrypt(const Ciphertext& ct) const
    {
        return encoder.decode(decryptor.decrypt(ct, sk));
    }

    static double
    max_err(const std::vector<Complex>& a, const std::vector<Complex>& b)
    {
        double worst = 0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            worst = std::max(worst, std::abs(a[i] - b[i]));
        }
        return worst;
    }

    CkksContext ctx;
    CkksEncoder encoder;
    Evaluator evaluator;
    KeyGenerator keygen;
    Encryptor encryptor;
    Decryptor decryptor;
    SecretKey sk;
    PublicKey pk;
    EvalKey mult_key;
    EvalKey conj_key;
};

/** Default small test instance: N=2^10, L=6, dnum=2. */
inline CkksParams
small_params()
{
    CkksParams p;
    p.n = 1 << 10;
    p.max_level = 6;
    p.dnum = 2;
    p.q0_bits = 50;
    p.scale_bits = 40;
    p.special_bits = 50;
    p.hamming_weight = 32;
    p.seed = 2024;
    return p;
}

/** Ciphertext bit-equality — the pin the scheduler / concurrency
 *  suites compare runs with. */
inline bool
ct_equal(const Ciphertext& x, const Ciphertext& y)
{
    return x.level == y.level && x.scale == y.scale &&
           x.b.equals(y.b) && x.a.equals(y.a);
}

/**
 * Bootstrap-capable small instance shared by the runtime
 * executor/server tests (and mirrored by bench/kernels_ckks.cpp's
 * ServeBench): N=2^8, L=14, slots=64, factored radix-8 CtS/StC —
 * radix 4 would spend 3+3 transform levels and refresh to level 0 on
 * this budget. Edit every copy together.
 */
struct BootTestEnv
{
    /** @p max_level defaults to the historical L=14 (leaves 2 usable
     *  levels after the 12-level bootstrap budget); the application
     *  suites (test_apps_functional.cpp, bench AppServeBench) pass
     *  L=20 for 8 usable levels.
     *
     *  Caveat for test authors: K = 12 covers gap = 2 at hamming
     *  weight 32 only *marginally* — a rare encryption draw puts one
     *  ModRaise coefficient outside [-K, K], EvalMod diverges on it,
     *  and SlotToCoeff smears the garbage across every slot. All
     *  randomness here is seeded, so a given (env seed, input seed,
     *  encrypt order) either always works or always fails: pin seeds
     *  that work, and re-check after reordering encrypt calls. */
    explicit BootTestEnv(u64 seed,
                         const std::vector<int>& extra_rotations = {},
                         int max_level = 14)
        : env([seed, max_level] {
              CkksParams p;
              p.n = 1 << 8;
              p.max_level = max_level;
              p.dnum = 3;
              p.q0_bits = 50;
              p.scale_bits = 40;
              p.special_bits = 50;
              p.hamming_weight = 32;
              p.seed = seed;
              return p;
          }())
    {
        BootstrapConfig cfg;
        cfg.slots = 64;
        cfg.sine_degree = 119;
        cfg.cts_radix = 8;
        cfg.stc_radix = 8;
        boot = std::make_unique<Bootstrapper>(env.ctx, env.encoder,
                                              env.evaluator, cfg);
        auto amounts = boot->required_rotations();
        for (const int r : extra_rotations) amounts.push_back(r);
        rot_keys = env.keygen.gen_rotation_keys(env.sk, amounts);
        boot->set_keys(&env.mult_key, &rot_keys, &env.conj_key);
    }

    TestEnv env;
    std::unique_ptr<Bootstrapper> boot;
    RotationKeys rot_keys;
};

/** Cached environment keyed by a name (key generation is expensive). */
inline TestEnv&
cached_env(const std::string& name, const CkksParams& params)
{
    static std::map<std::string, std::unique_ptr<TestEnv>> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache.emplace(name, std::make_unique<TestEnv>(params)).first;
    }
    return *it->second;
}

inline TestEnv&
default_env()
{
    return cached_env("small", small_params());
}

} // namespace bts::testing
