#include "ckks/bootstrapper.h"

#include <gtest/gtest.h>

#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;

/** Bootstrap-capable (still insecure/small) instance: N=2^11, L=14. */
CkksParams
boot_params()
{
    CkksParams p;
    p.n = 1 << 11;
    p.max_level = 14;
    p.dnum = 3;
    p.q0_bits = 50;
    p.scale_bits = 40;
    p.special_bits = 50;
    p.hamming_weight = 32;
    p.seed = 777;
    return p;
}

struct BootEnv
{
    BootEnv() : env(boot_params())
    {
        BootstrapConfig cfg;
        cfg.slots = 512; // gap = 2
        cfg.k_range = 12.0;
        cfg.sine_degree = 159;
        boot = std::make_unique<Bootstrapper>(env.ctx, env.encoder,
                                              env.evaluator, cfg);
        rot_keys =
            env.keygen.gen_rotation_keys(env.sk, boot->required_rotations());
        boot->set_keys(&env.mult_key, &rot_keys, &env.conj_key);
    }

    TestEnv env;
    std::unique_ptr<Bootstrapper> boot;
    RotationKeys rot_keys;
};

BootEnv&
boot_env()
{
    static BootEnv* instance = new BootEnv();
    return *instance;
}

TEST(Bootstrap, RequiredRotationsIncludeSubSum)
{
    auto& be = boot_env();
    const auto rots = be.boot->required_rotations();
    // SubSum needs the single amount 512 (gap = 2).
    EXPECT_NE(std::find(rots.begin(), rots.end(), 512), rots.end());
    // BSGS rotations stay below the slot count.
    for (int r : rots) {
        EXPECT_GT(r, 0);
        EXPECT_LT(r, 1 << 10);
    }
}

TEST(Bootstrap, StageRaiseAndSubsum)
{
    auto& be = boot_env();
    auto& env = be.env;
    const auto z = env.random_message(512, 0.3, 201);
    Ciphertext ct = env.encrypt(z, 0);
    const Ciphertext raised = be.boot->stage_raise_and_subsum(ct);
    EXPECT_EQ(raised.level, env.ctx.max_level());
    EXPECT_DOUBLE_EQ(raised.scale,
                     static_cast<double>(env.ctx.q_primes()[0]));
}

TEST(Bootstrap, EndToEndMessageRefresh)
{
    auto& be = boot_env();
    auto& env = be.env;
    const auto z = env.random_message(512, 0.3, 202);

    Ciphertext ct = env.encrypt(z, 0); // exhausted ciphertext
    ASSERT_EQ(ct.level, 0);

    const Ciphertext fresh = be.boot->bootstrap(ct);
    EXPECT_GE(fresh.level, 1) << "bootstrapping must restore levels";
    const auto back = env.decrypt(fresh);
    const double err = TestEnv::max_err(z, back);
    EXPECT_LT(err, 1e-2) << "bootstrap precision too low";
}

TEST(Bootstrap, RefreshedCiphertextIsUsable)
{
    // The real test of FHE: multiply after refresh.
    auto& be = boot_env();
    auto& env = be.env;
    const auto z = env.random_message(512, 0.3, 203);
    Ciphertext ct = env.encrypt(z, 0);
    Ciphertext fresh = be.boot->bootstrap(ct);
    ASSERT_GE(fresh.level, 1);

    Ciphertext sq = env.evaluator.square(fresh, env.mult_key);
    env.evaluator.rescale_inplace(sq);
    const auto got = env.decrypt(sq);
    std::vector<Complex> expected(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) expected[i] = z[i] * z[i];
    EXPECT_LT(TestEnv::max_err(expected, got), 2e-2);
}

TEST(Bootstrap, RejectsWrongSlotCount)
{
    auto& be = boot_env();
    auto& env = be.env;
    const auto z = env.random_message(128, 0.3, 204);
    Ciphertext ct = env.encrypt(z, 0);
    EXPECT_THROW(be.boot->bootstrap(ct), std::invalid_argument);
}

TEST(Bootstrap, RejectsNonExhaustedInput)
{
    auto& be = boot_env();
    auto& env = be.env;
    const auto z = env.random_message(512, 0.3, 205);
    Ciphertext ct = env.encrypt(z, 3);
    EXPECT_THROW(be.boot->bootstrap(ct), std::invalid_argument);
}

TEST(Bootstrap, SineSeriesIsAccurate)
{
    auto& be = boot_env();
    const auto& series = be.boot->sine_series();
    EXPECT_LT(series.max_error([](double u) {
        return std::sin(2 * M_PI * u) / (2 * M_PI);
    }),
              1e-8);
}

} // namespace
} // namespace bts
