#include "ckks/bootstrapper.h"

#include <gtest/gtest.h>

#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;

/** Bootstrap-capable (still insecure/small) instance: N=2^11, L=14. */
CkksParams
boot_params()
{
    CkksParams p;
    p.n = 1 << 11;
    p.max_level = 14;
    p.dnum = 3;
    p.q0_bits = 50;
    p.scale_bits = 40;
    p.special_bits = 50;
    p.hamming_weight = 32;
    p.seed = 777;
    return p;
}

struct BootEnv
{
    BootEnv() : env(boot_params())
    {
        // Factored CtS/StC (the paper's assumed radix decomposition):
        // radix 32 splits the 512-slot DFT into 2 stages per direction,
        // fitting L=14 alongside the degree-119 EvalMod (8 levels):
        // 14 - 2 (CtS) - 8 (EvalMod) - 2 (StC) - 1 (normalize) = 1.
        BootstrapConfig cfg;
        cfg.slots = 512; // gap = 2
        cfg.k_range = 12.0;
        cfg.sine_degree = 119;
        cfg.cts_radix = 32;
        cfg.stc_radix = 32;
        boot = std::make_unique<Bootstrapper>(env.ctx, env.encoder,
                                              env.evaluator, cfg);
        rot_keys =
            env.keygen.gen_rotation_keys(env.sk, boot->required_rotations());
        boot->set_keys(&env.mult_key, &rot_keys, &env.conj_key);

        // A second bootstrapper on the same context/keys: sparse slot
        // count under the factored path (radix 16 -> 2 stages as well).
        // SubSum sums gap copies of the ModRaise integer part, so the
        // EvalMod range K must grow ~linearly with gap (|u| reaches 16
        // at gap = 4) and the sine degree with K (> e*pi*K for the
        // Chebyshev series to converge on [-K, K]).
        BootstrapConfig sparse_cfg = cfg;
        sparse_cfg.slots = 256; // gap = 4
        sparse_cfg.k_range = 24.0;
        sparse_cfg.sine_degree = 239;
        sparse_cfg.cts_radix = 16;
        sparse_cfg.stc_radix = 16;
        sparse_cfg.normalize_output_scale = false; // spend the last level
        sparse = std::make_unique<Bootstrapper>(env.ctx, env.encoder,
                                                env.evaluator, sparse_cfg);
        sparse_rot_keys = env.keygen.gen_rotation_keys(
            env.sk, sparse->required_rotations());
        sparse->set_keys(&env.mult_key, &sparse_rot_keys, &env.conj_key);
    }

    TestEnv env;
    std::unique_ptr<Bootstrapper> boot;
    RotationKeys rot_keys;
    std::unique_ptr<Bootstrapper> sparse;
    RotationKeys sparse_rot_keys;
};

BootEnv&
boot_env()
{
    static BootEnv* instance = new BootEnv();
    return *instance;
}

TEST(Bootstrap, RequiredRotationsIncludeSubSum)
{
    auto& be = boot_env();
    const auto rots = be.boot->required_rotations();
    // SubSum needs the single amount 512 (gap = 2).
    EXPECT_NE(std::find(rots.begin(), rots.end(), 512), rots.end());
    // BSGS rotations stay below the slot count.
    for (int r : rots) {
        EXPECT_GT(r, 0);
        EXPECT_LT(r, 1 << 10);
    }
}

TEST(Bootstrap, RequiredRotationsExactFromConstruction)
{
    // Regression: StC used to compile lazily inside const bootstrap()
    // (a data race for concurrent bootstraps) and required_rotations()
    // under-reported until the first call. Both transforms now compile
    // in the constructor, so the set must be identical before and
    // after bootstrapping.
    auto& be = boot_env();
    auto& env = be.env;
    const auto before = be.boot->required_rotations();
    const auto z = env.random_message(512, 0.3, 200);
    Ciphertext ct = env.encrypt(z, 0);
    (void)be.boot->bootstrap(ct);
    const auto after = be.boot->required_rotations();
    EXPECT_EQ(before, after);
}

TEST(Bootstrap, StageRaiseAndSubsum)
{
    auto& be = boot_env();
    auto& env = be.env;
    const auto z = env.random_message(512, 0.3, 201);
    Ciphertext ct = env.encrypt(z, 0);
    const Ciphertext raised = be.boot->stage_raise_and_subsum(ct);
    EXPECT_EQ(raised.level, env.ctx.max_level());
    EXPECT_DOUBLE_EQ(raised.scale,
                     static_cast<double>(env.ctx.q_primes()[0]));
}

TEST(Bootstrap, EndToEndMessageRefresh)
{
    auto& be = boot_env();
    auto& env = be.env;
    const auto z = env.random_message(512, 0.3, 202);

    Ciphertext ct = env.encrypt(z, 0); // exhausted ciphertext
    ASSERT_EQ(ct.level, 0);

    const Ciphertext fresh = be.boot->bootstrap(ct);
    EXPECT_GE(fresh.level, 1) << "bootstrapping must restore levels";
    const auto back = env.decrypt(fresh);
    const double err = TestEnv::max_err(z, back);
    EXPECT_LT(err, 1e-2) << "bootstrap precision too low";
}

TEST(Bootstrap, SparseSlotsEndToEndFactored)
{
    // The sparse-packing path (gap = 4) through the factored CtS/StC.
    auto& be = boot_env();
    auto& env = be.env;
    const auto z = env.random_message(256, 0.3, 206);
    Ciphertext ct = env.encrypt(z, 0);
    const Ciphertext fresh = be.sparse->bootstrap(ct);
    EXPECT_GE(fresh.level, 1);
    EXPECT_LT(TestEnv::max_err(z, env.decrypt(fresh)), 1e-2);
}

TEST(Bootstrap, RefreshedCiphertextIsUsable)
{
    // The real test of FHE: multiply after refresh.
    auto& be = boot_env();
    auto& env = be.env;
    const auto z = env.random_message(512, 0.3, 203);
    Ciphertext ct = env.encrypt(z, 0);
    Ciphertext fresh = be.boot->bootstrap(ct);
    ASSERT_GE(fresh.level, 1);

    Ciphertext sq = env.evaluator.square(fresh, env.mult_key);
    env.evaluator.rescale_inplace(sq);
    const auto got = env.decrypt(sq);
    std::vector<Complex> expected(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) expected[i] = z[i] * z[i];
    EXPECT_LT(TestEnv::max_err(expected, got), 2e-2);
}

TEST(Bootstrap, RejectsWrongSlotCount)
{
    auto& be = boot_env();
    auto& env = be.env;
    const auto z = env.random_message(128, 0.3, 204);
    Ciphertext ct = env.encrypt(z, 0);
    EXPECT_THROW(be.boot->bootstrap(ct), std::invalid_argument);
}

TEST(Bootstrap, RejectsNonExhaustedInput)
{
    auto& be = boot_env();
    auto& env = be.env;
    const auto z = env.random_message(512, 0.3, 205);
    Ciphertext ct = env.encrypt(z, 3);
    EXPECT_THROW(be.boot->bootstrap(ct), std::invalid_argument);
}

TEST(Bootstrap, DenseOracleEndToEnd)
{
    // The radix-0 reference path must stay a working oracle (the
    // factored-vs-dense equivalence tests compare transforms against
    // it); keep one full dense refresh alive on a small ring.
    CkksParams p;
    p.n = 1 << 8;
    p.max_level = 14;
    p.dnum = 3;
    p.q0_bits = 50;
    p.scale_bits = 40;
    p.special_bits = 50;
    p.hamming_weight = 32;
    p.seed = 778;
    auto& env = testing::cached_env("boot-dense-small", p);
    BootstrapConfig cfg;
    cfg.slots = 64; // gap = 2
    cfg.sine_degree = 119;
    Bootstrapper boot(env.ctx, env.encoder, env.evaluator, cfg);
    const RotationKeys rot_keys =
        env.keygen.gen_rotation_keys(env.sk, boot.required_rotations());
    boot.set_keys(&env.mult_key, &rot_keys, &env.conj_key);

    const auto z = env.random_message(64, 0.3, 207);
    Ciphertext ct = env.encrypt(z, 0);
    const Ciphertext fresh = boot.bootstrap(ct);
    EXPECT_GE(fresh.level, 1);
    EXPECT_LT(TestEnv::max_err(z, env.decrypt(fresh)), 1e-2);
}

TEST(Bootstrap, RejectsMixedDenseFactoredConfig)
{
    auto& be = boot_env();
    auto& env = be.env;
    BootstrapConfig cfg;
    cfg.slots = 64;
    cfg.cts_radix = 4;
    cfg.stc_radix = 0; // dense StC cannot undo the deferred bit-reversal
    EXPECT_THROW(
        Bootstrapper(env.ctx, env.encoder, env.evaluator, cfg),
        std::invalid_argument);

    // Regression: radix 1 used to reach a log2(1)=0 stage-count
    // division (SIGFPE) before any radix validation ran.
    cfg.stc_radix = 1;
    EXPECT_THROW(
        Bootstrapper(env.ctx, env.encoder, env.evaluator, cfg),
        std::invalid_argument);
    (void)be;
}

TEST(Bootstrap, SineSeriesIsAccurate)
{
    auto& be = boot_env();
    const auto& series = be.boot->sine_series();
    EXPECT_LT(series.max_error([](double u) {
        return std::sin(2 * M_PI * u) / (2 * M_PI);
    }),
              1e-8);
}

} // namespace
} // namespace bts
