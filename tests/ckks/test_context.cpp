#include "ckks/ckks_context.h"

#include <gtest/gtest.h>

#include "test_utils.h"

namespace bts {
namespace {

TEST(CkksContext, PrimeLayout)
{
    const auto& env = testing::default_env();
    const auto& ctx = env.ctx;
    EXPECT_EQ(ctx.q_primes().size(), 7u); // L + 1
    EXPECT_EQ(ctx.p_primes().size(),
              static_cast<std::size_t>(ctx.num_special()));
    // alpha = ceil((L+1)/dnum) = ceil(7/2) = 4.
    EXPECT_EQ(ctx.alpha(), 4);
    for (u64 q : ctx.full_primes()) {
        EXPECT_EQ(q % (2 * ctx.n()), 1u);
    }
}

TEST(CkksContext, SliceRanges)
{
    const auto& ctx = testing::default_env().ctx;
    // At max level (6): slices [0,4) and [4,7).
    EXPECT_EQ(ctx.num_slices(6), 2);
    EXPECT_EQ(ctx.slice_range(0, 6), std::make_pair(0, 4));
    EXPECT_EQ(ctx.slice_range(1, 6), std::make_pair(4, 7));
    // At level 2 only one slice remains.
    EXPECT_EQ(ctx.num_slices(2), 1);
    EXPECT_EQ(ctx.slice_range(0, 2), std::make_pair(0, 3));
    // At level 4: [0,4) and [4,5).
    EXPECT_EQ(ctx.num_slices(4), 2);
    EXPECT_EQ(ctx.slice_range(1, 4), std::make_pair(4, 5));
}

TEST(CkksContext, ExtendedPrimes)
{
    const auto& ctx = testing::default_env().ctx;
    const auto ext = ctx.extended_primes(3);
    EXPECT_EQ(ext.size(), 4u + ctx.num_special());
    for (int i = 0; i < 4; ++i) EXPECT_EQ(ext[i], ctx.q_primes()[i]);
}

TEST(CkksContext, PModAndInverse)
{
    const auto& ctx = testing::default_env().ctx;
    for (u64 q : ctx.q_primes()) {
        const u64 pm = ctx.p_mod(q);
        const u64 pinv = ctx.p_inv_mod(q);
        EXPECT_EQ(mul_mod(pm, pinv, q), 1u);
    }
}

TEST(CkksContext, TablesMatchPrimes)
{
    const auto& ctx = testing::default_env().ctx;
    for (u64 q : ctx.full_primes()) {
        EXPECT_EQ(ctx.tables(q).modulus(), q);
        EXPECT_EQ(ctx.tables(q).n(), ctx.n());
    }
    EXPECT_THROW(ctx.tables(12345), std::invalid_argument);
}

TEST(CkksContext, LogPqBits)
{
    const auto& ctx = testing::default_env().ctx;
    // 50 + 6*40 + 4*50 = 490 bits, within rounding of prime selection.
    EXPECT_NEAR(ctx.log_pq_bits(), 490, 4);
}

TEST(CkksContext, DnumOneHasSingleSlice)
{
    CkksParams p = testing::small_params();
    p.dnum = 1;
    p.max_level = 3;
    const CkksContext ctx(p);
    EXPECT_EQ(ctx.alpha(), 4);
    EXPECT_EQ(ctx.num_slices(3), 1);
    EXPECT_EQ(ctx.num_special(), 4);
}

TEST(CkksContext, MaxDnumIsPerPrime)
{
    CkksParams p = testing::small_params();
    p.max_level = 3;
    p.dnum = 4;         // == L+1: one prime per slice, k = 1
    p.special_bits = 52; // the lone special prime must dominate q_0
    const CkksContext ctx(p);
    EXPECT_EQ(ctx.alpha(), 1);
    EXPECT_EQ(ctx.num_slices(3), 4);
    EXPECT_EQ(ctx.slice_range(2, 3), std::make_pair(2, 3));
}

TEST(CkksContext, RejectsBadParams)
{
    CkksParams p = testing::small_params();
    p.dnum = 9; // > L+1
    EXPECT_THROW(CkksContext{p}, std::invalid_argument);
    p = testing::small_params();
    p.n = 1000; // not a power of two
    EXPECT_THROW(CkksContext{p}, std::invalid_argument);
}

TEST(CkksContext, ConverterCacheReturnsSameInstance)
{
    const auto& ctx = testing::default_env().ctx;
    const auto src = ctx.level_primes(1);
    std::vector<u64> tgt = ctx.p_primes();
    const auto& c1 = ctx.converter(src, tgt);
    const auto& c2 = ctx.converter(src, tgt);
    EXPECT_EQ(&c1, &c2);
}

} // namespace
} // namespace bts
