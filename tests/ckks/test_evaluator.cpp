#include "ckks/evaluator.h"

#include <gtest/gtest.h>

#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;
using testing::default_env;

std::vector<Complex>
elementwise(const std::vector<Complex>& a, const std::vector<Complex>& b,
            const std::function<Complex(Complex, Complex)>& op)
{
    std::vector<Complex> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = op(a[i], b[i]);
    return out;
}

TEST(Evaluator, HAdd)
{
    auto& env = default_env();
    const auto z1 = env.random_message(128, 1.0, 31);
    const auto z2 = env.random_message(128, 1.0, 32);
    const Ciphertext ct = env.evaluator.add(env.encrypt(z1), env.encrypt(z2));
    const auto expected = elementwise(
        z1, z2, [](Complex a, Complex b) { return a + b; });
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(ct)), 1e-6);
}

TEST(Evaluator, HSubAndNegate)
{
    auto& env = default_env();
    const auto z1 = env.random_message(64, 1.0, 33);
    const auto z2 = env.random_message(64, 1.0, 34);
    const auto diff = env.evaluator.sub(env.encrypt(z1), env.encrypt(z2));
    const auto expected = elementwise(
        z1, z2, [](Complex a, Complex b) { return a - b; });
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(diff)), 1e-6);

    const auto neg = env.evaluator.negate(env.encrypt(z1));
    std::vector<Complex> zneg(z1.size());
    for (std::size_t i = 0; i < z1.size(); ++i) zneg[i] = -z1[i];
    EXPECT_LT(TestEnv::max_err(zneg, env.decrypt(neg)), 1e-6);
}

TEST(Evaluator, AddAlignsLevels)
{
    auto& env = default_env();
    const auto z1 = env.random_message(64, 1.0, 35);
    const auto z2 = env.random_message(64, 1.0, 36);
    const Ciphertext high = env.encrypt(z1, 5);
    const Ciphertext low = env.encrypt(z2, 2);
    const Ciphertext sum = env.evaluator.add(high, low);
    EXPECT_EQ(sum.level, 2);
    const auto expected = elementwise(
        z1, z2, [](Complex a, Complex b) { return a + b; });
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(sum)), 1e-6);
}

TEST(Evaluator, AddRejectsScaleMismatch)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 37);
    const Plaintext p1 = env.encoder.encode(z, env.ctx.delta(), 2);
    const Plaintext p2 = env.encoder.encode(z, env.ctx.delta() * 2, 2);
    const Ciphertext c1 = env.encryptor.encrypt_symmetric(p1, env.sk);
    const Ciphertext c2 = env.encryptor.encrypt_symmetric(p2, env.sk);
    EXPECT_THROW(env.evaluator.add(c1, c2), std::invalid_argument);
}

TEST(Evaluator, AddRejectsNonPositiveScales)
{
    // Regression: the scale-match check divided s1/s2 with no guard, so
    // a zero scale passed the tolerance test via inf/nan semantics
    // instead of failing loudly.
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 38);
    const Ciphertext good = env.encrypt(z);
    for (double bad_scale : {0.0, -env.ctx.delta()}) {
        Ciphertext bad = good;
        bad.scale = bad_scale;
        EXPECT_THROW(env.evaluator.add(good, bad), std::invalid_argument);
        EXPECT_THROW(env.evaluator.add(bad, good), std::invalid_argument);
        EXPECT_THROW(env.evaluator.sub(good, bad), std::invalid_argument);
    }
}

class EvaluatorMultTest : public ::testing::TestWithParam<int>
{};

TEST_P(EvaluatorMultTest, HMultAcrossDnum)
{
    // HMult correctness for dnum = 1, 2, max — exercising every
    // key-switching slice configuration (Eq. 7).
    CkksParams params = testing::small_params();
    params.dnum = GetParam();
    params.max_level = 5;
    // At dnum == L+1 each Q_j is a single prime; the special primes must
    // still dominate the 50-bit q_0.
    params.special_bits = 52;
    auto& env = testing::cached_env("mult_dnum" + std::to_string(GetParam()),
                                    params);

    const auto z1 = env.random_message(128, 1.0, 41);
    const auto z2 = env.random_message(128, 1.0, 42);
    Ciphertext prod =
        env.evaluator.mult(env.encrypt(z1), env.encrypt(z2), env.mult_key);
    EXPECT_NEAR(prod.scale, env.ctx.delta() * env.ctx.delta(),
                prod.scale * 1e-9);
    env.evaluator.rescale_inplace(prod);
    EXPECT_EQ(prod.level, 4);

    const auto expected = elementwise(
        z1, z2, [](Complex a, Complex b) { return a * b; });
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(prod)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(DnumSweep, EvaluatorMultTest,
                         ::testing::Values(1, 2, 3, 6));

TEST(Evaluator, MultChainToBottom)
{
    // Repeated squaring down to level 0: z^(2^L) stays accurate.
    auto& env = default_env();
    std::vector<Complex> z(64, Complex(0.9, 0.0));
    Ciphertext ct = env.encrypt(z);
    double expected = 0.9;
    for (int l = env.ctx.max_level(); l >= 1; --l) {
        ct = env.evaluator.square(ct, env.mult_key);
        env.evaluator.rescale_inplace(ct);
        expected *= expected;
    }
    EXPECT_EQ(ct.level, 0);
    const auto got = env.decrypt(ct);
    EXPECT_NEAR(got[0].real(), expected, 1e-3);
}

TEST(Evaluator, RescaleTracksScale)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 43);
    Ciphertext ct = env.encrypt(z);
    Ciphertext prod = env.evaluator.mult(ct, ct, env.mult_key);
    const double before = prod.scale;
    env.evaluator.rescale_inplace(prod);
    const u64 dropped = env.ctx.q_primes()[env.ctx.max_level()];
    EXPECT_DOUBLE_EQ(prod.scale, before / static_cast<double>(dropped));
}

TEST(Evaluator, RescaleRequiresLevel)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 44);
    Ciphertext ct = env.encrypt(z, 0);
    EXPECT_THROW(env.evaluator.rescale_inplace(ct), std::invalid_argument);
}

class EvaluatorRotTest : public ::testing::TestWithParam<int>
{};

TEST_P(EvaluatorRotTest, HRotAmounts)
{
    auto& env = default_env();
    const int r = GetParam();
    const std::size_t slots = 128;
    const auto z = env.random_message(slots, 1.0, 45 + r);
    const EvalKey key = env.keygen.gen_rotation_key(env.sk, r);
    const Ciphertext rot = env.evaluator.rotate(env.encrypt(z), r, key);
    std::vector<Complex> expected(slots);
    for (std::size_t i = 0; i < slots; ++i) {
        expected[i] = z[(i + r) % slots];
    }
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(rot)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Amounts, EvaluatorRotTest,
                         ::testing::Values(1, 2, 7, 64, 127));

TEST(Evaluator, RotateSparsePacking)
{
    // Rotation semantics must hold on sparsely packed ciphertexts — the
    // property sparse bootstrapping depends on.
    auto& env = default_env();
    const std::size_t slots = 32;
    const auto z = env.random_message(slots, 1.0, 51);
    const EvalKey key = env.keygen.gen_rotation_key(env.sk, 3);
    const Ciphertext rot = env.evaluator.rotate(env.encrypt(z), 3, key);
    std::vector<Complex> expected(slots);
    for (std::size_t i = 0; i < slots; ++i) expected[i] = z[(i + 3) % slots];
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(rot)), 1e-4);
}

TEST(Evaluator, RotateComposes)
{
    auto& env = default_env();
    const std::size_t slots = 64;
    const auto z = env.random_message(slots, 1.0, 52);
    const EvalKey k2 = env.keygen.gen_rotation_key(env.sk, 2);
    const EvalKey k3 = env.keygen.gen_rotation_key(env.sk, 3);
    const EvalKey k5 = env.keygen.gen_rotation_key(env.sk, 5);
    const Ciphertext via5 = env.evaluator.rotate(env.encrypt(z), 5, k5);
    const Ciphertext via23 = env.evaluator.rotate(
        env.evaluator.rotate(env.encrypt(z), 2, k2), 3, k3);
    EXPECT_LT(TestEnv::max_err(env.decrypt(via5), env.decrypt(via23)), 1e-4);
}

TEST(Evaluator, Conjugate)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 53);
    const Ciphertext conj =
        env.evaluator.conjugate(env.encrypt(z), env.conj_key);
    std::vector<Complex> expected(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) expected[i] = std::conj(z[i]);
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(conj)), 1e-4);
}

TEST(Evaluator, RotationKeyMismatchRejected)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 54);
    const EvalKey k2 = env.keygen.gen_rotation_key(env.sk, 2);
    EXPECT_THROW(env.evaluator.rotate(env.encrypt(z), 3, k2),
                 std::invalid_argument);
}

TEST(Evaluator, PMultAndPAdd)
{
    auto& env = default_env();
    const auto z1 = env.random_message(64, 1.0, 55);
    const auto z2 = env.random_message(64, 1.0, 56);
    const Plaintext pt = env.encoder.encode(z2, env.ctx.delta(), 6);

    Ciphertext prod = env.evaluator.mult_plain(env.encrypt(z1), pt);
    env.evaluator.rescale_inplace(prod);
    const auto expected_mul = elementwise(
        z1, z2, [](Complex a, Complex b) { return a * b; });
    EXPECT_LT(TestEnv::max_err(expected_mul, env.decrypt(prod)), 1e-5);

    const Ciphertext sum = env.evaluator.add_plain(env.encrypt(z1), pt);
    const auto expected_add = elementwise(
        z1, z2, [](Complex a, Complex b) { return a + b; });
    EXPECT_LT(TestEnv::max_err(expected_add, env.decrypt(sum)), 1e-6);

    const Ciphertext diff = env.evaluator.sub_plain(env.encrypt(z1), pt);
    const auto expected_sub = elementwise(
        z1, z2, [](Complex a, Complex b) { return a - b; });
    EXPECT_LT(TestEnv::max_err(expected_sub, env.decrypt(diff)), 1e-6);
}

TEST(Evaluator, PlainOpsRejectRebasedPlaintext)
{
    // A plaintext whose prime chain has the right COUNT but is not a
    // prefix of the ciphertext's (e.g. re-based onto {q_1, q_2}) used
    // to slip through the level check and silently produce garbage.
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 61);
    Ciphertext ct = env.encrypt(z);
    env.evaluator.drop_level_inplace(ct, 1); // chain {q_0, q_1}

    const auto& q = env.ctx.q_primes();
    const std::vector<u64> rebased_chain{q[1], q[2]};
    Plaintext rebased;
    rebased.poly = RnsPoly(env.ctx.n(), rebased_chain, Domain::kNtt);
    rebased.scale = ct.scale;
    rebased.level = 1;
    rebased.slots = 64;

    EXPECT_THROW(env.evaluator.mult_plain(ct, rebased),
                 std::invalid_argument);
    EXPECT_THROW(env.evaluator.add_plain(ct, rebased),
                 std::invalid_argument);
    EXPECT_THROW(env.evaluator.sub_plain(ct, rebased),
                 std::invalid_argument);
}

TEST(Evaluator, ConstOps)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 57);

    // CMult by a real constant.
    Ciphertext scaled =
        env.evaluator.mult_const(env.encrypt(z), 0.37, env.ctx.delta());
    env.evaluator.rescale_inplace(scaled);
    std::vector<Complex> expected(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) expected[i] = z[i] * 0.37;
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(scaled)), 1e-6);

    // CAdd of a complex constant.
    Ciphertext shifted = env.encrypt(z);
    env.evaluator.add_const_inplace(shifted, Complex(0.5, -0.125));
    for (std::size_t i = 0; i < z.size(); ++i) {
        expected[i] = z[i] + Complex(0.5, -0.125);
    }
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(shifted)), 1e-6);
}

TEST(Evaluator, MultByIIsExact)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 58);
    const Ciphertext ct = env.encrypt(z);
    const Ciphertext rotated = env.evaluator.mult_by_i(ct);
    // No level or scale change.
    EXPECT_EQ(rotated.level, ct.level);
    EXPECT_DOUBLE_EQ(rotated.scale, ct.scale);
    std::vector<Complex> expected(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) {
        expected[i] = z[i] * Complex(0, 1);
    }
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(rotated)), 1e-6);
    // Applying it four times is the identity.
    Ciphertext four = ct;
    for (int k = 0; k < 4; ++k) four = env.evaluator.mult_by_i(four);
    EXPECT_LT(TestEnv::max_err(z, env.decrypt(four)), 1e-6);
}

TEST(Evaluator, MultConstComplex)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 59);
    const Complex c(0.3, -0.7);
    Ciphertext out =
        env.evaluator.mult_const_complex(env.encrypt(z), c, env.ctx.delta());
    env.evaluator.rescale_inplace(out);
    std::vector<Complex> expected(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) expected[i] = z[i] * c;
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(out)), 1e-6);
}

TEST(Evaluator, MultConstToScaleHitsTarget)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 60);
    const double target = env.ctx.delta();
    const Ciphertext out =
        env.evaluator.mult_const_to_scale(env.encrypt(z), 0.25, target);
    EXPECT_DOUBLE_EQ(out.scale, target);
    std::vector<Complex> expected(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) expected[i] = z[i] * 0.25;
    EXPECT_LT(TestEnv::max_err(expected, env.decrypt(out)), 1e-6);
}

TEST(Evaluator, DropLevelPreservesMessage)
{
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 61);
    Ciphertext ct = env.encrypt(z);
    env.evaluator.drop_level_inplace(ct, 1);
    EXPECT_EQ(ct.level, 1);
    EXPECT_LT(TestEnv::max_err(z, env.decrypt(ct)), 1e-6);
    EXPECT_THROW(env.evaluator.drop_level_inplace(ct, 3),
                 std::invalid_argument);
}

TEST(Evaluator, ModRaiseAddsMultipleOfQ0)
{
    // After ModRaise the message is m + q0*I: every raised coefficient
    // must differ from the original by an exact multiple of q0.
    auto& env = default_env();
    const auto z = env.random_message(64, 0.3, 62);
    Ciphertext ct = env.encrypt(z);
    env.evaluator.drop_level_inplace(ct, 0);
    const Ciphertext raised = env.evaluator.mod_raise(ct);
    EXPECT_EQ(raised.level, env.ctx.max_level());

    Plaintext dec_lo = env.decryptor.decrypt(ct, env.sk);
    Plaintext dec_hi = env.decryptor.decrypt(raised, env.sk);
    dec_lo.scale = 1.0; // read raw integer coefficients
    dec_hi.scale = 1.0;
    const auto lo = env.encoder.decode_coeffs(dec_lo);
    const auto hi = env.encoder.decode_coeffs(dec_hi);

    const double q0 = static_cast<double>(env.ctx.q_primes()[0]);
    double max_i = 0;
    for (std::size_t c = 0; c < lo.size(); ++c) {
        const double ratio = (hi[c] - lo[c]) / q0;
        EXPECT_NEAR(ratio, std::round(ratio), 1e-6) << c;
        max_i = std::max(max_i, std::abs(ratio));
    }
    // I is small (sparse secret): the whole point of EvalMod's [-K, K].
    EXPECT_LE(max_i, 12.0);
    EXPECT_GT(max_i, 0.0); // raising a dense ciphertext must wrap somewhere
}

TEST(Evaluator, KeySwitchNoiseIsBounded)
{
    // HMult then decrypt: compare against plaintext product; noise must
    // be far below the message at every dnum.
    auto& env = default_env();
    const auto z = env.random_message(256, 1.0, 63);
    Ciphertext sq = env.evaluator.square(env.encrypt(z), env.mult_key);
    env.evaluator.rescale_inplace(sq);
    std::vector<Complex> expected(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) expected[i] = z[i] * z[i];
    const double err = TestEnv::max_err(expected, env.decrypt(sq));
    EXPECT_LT(err, 1e-4);
}

} // namespace
} // namespace bts
