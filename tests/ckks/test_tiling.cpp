/**
 * @file
 * Bit-exactness of the coefficient-tiled hot paths across thread
 * counts, at the low levels where per-limb parallelism collapses (the
 * regime the 2-D schedule exists for), plus workspace-pool behavior.
 */
#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/thread_guard.h"
#include "common/workspace.h"
#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;
using testing::ThreadGuard;
using testing::default_env;

bool
same_ciphertext(const Ciphertext& a, const Ciphertext& b)
{
    return a.level == b.level && a.scale == b.scale && a.b.equals(b.b) &&
           a.a.equals(b.a);
}

TEST(Tiling, RescaleBitExactAcrossThreadCountsAtLowLevel)
{
    // Rescale at 3 limbs used to offer only 2-way parallelism; the
    // tiled version uses every lane but must compute identical bits.
    ThreadGuard guard;
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 401);
    Ciphertext ct = env.encrypt(z);
    env.evaluator.drop_level_inplace(ct, 2);

    set_num_threads(1);
    Ciphertext serial = ct;
    env.evaluator.rescale_inplace(serial);

    set_num_threads(8);
    Ciphertext tiled = ct;
    env.evaluator.rescale_inplace(tiled);

    EXPECT_TRUE(same_ciphertext(serial, tiled));
    EXPECT_EQ(tiled.level, 1);
}

TEST(Tiling, ModRaiseBitExactAcrossThreadCounts)
{
    ThreadGuard guard;
    auto& env = default_env();
    const auto z = env.random_message(64, 0.5, 402);
    Ciphertext ct = env.encrypt(z, /*level=*/0);

    set_num_threads(1);
    const Ciphertext serial = env.evaluator.mod_raise(ct);

    set_num_threads(8);
    const Ciphertext tiled = env.evaluator.mod_raise(ct);

    EXPECT_TRUE(same_ciphertext(serial, tiled));
    EXPECT_EQ(tiled.level, env.ctx.max_level());
}

TEST(Tiling, RotateHoistedBitExactAcrossThreadCountsAtLowLevel)
{
    ThreadGuard guard;
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 403);
    Ciphertext ct = env.encrypt(z);
    env.evaluator.drop_level_inplace(ct, 2);

    const std::vector<int> amounts = {1, 5, 17};
    const RotationKeys keys = env.keygen.gen_rotation_keys(env.sk, amounts);

    set_num_threads(1);
    const auto serial = env.evaluator.rotate_hoisted(ct, amounts, keys);

    set_num_threads(8);
    const auto tiled = env.evaluator.rotate_hoisted(ct, amounts, keys);

    ASSERT_EQ(serial.size(), tiled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(same_ciphertext(serial[i], tiled[i]))
            << "amount " << amounts[i];
    }
}

TEST(Tiling, MultByIBitExactAcrossThreadCounts)
{
    // mult_by_i runs on the bootstrap hot path with cached Shoup
    // monomial constants and a (poly x limb) x coefficient tiling; the
    // schedule must not change a single bit.
    ThreadGuard guard;
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 405);
    const Ciphertext ct = env.encrypt(z);

    set_num_threads(1);
    const Ciphertext serial = env.evaluator.mult_by_i(ct);

    set_num_threads(8);
    const Ciphertext tiled = env.evaluator.mult_by_i(ct);

    EXPECT_TRUE(same_ciphertext(serial, tiled));
}

TEST(Tiling, MultAndKeySwitchBitExactAcrossThreadCounts)
{
    ThreadGuard guard;
    auto& env = default_env();
    const auto z = env.random_message(64, 0.5, 404);
    Ciphertext ct = env.encrypt(z);
    env.evaluator.drop_level_inplace(ct, 2);

    set_num_threads(1);
    const Ciphertext serial = env.evaluator.mult(ct, ct, env.mult_key);

    set_num_threads(8);
    const Ciphertext tiled = env.evaluator.mult(ct, ct, env.mult_key);

    EXPECT_TRUE(same_ciphertext(serial, tiled));
}

TEST(Tiling, WorkspacePoolRecyclesHotPathScratch)
{
    // After warm-up, repeated rescales must be served from the pool's
    // free list, not the allocator.
    auto& env = default_env();
    const auto z = env.random_message(64, 1.0, 405);
    Ciphertext ct = env.encrypt(z);
    env.evaluator.drop_level_inplace(ct, 3);

    // Warm-up round, scoped so every buffer (including the ciphertext
    // copies) returns to the free list before measuring.
    {
        Ciphertext warm = ct;
        env.evaluator.rescale_inplace(warm);
    }

    const WorkspaceStats before = workspace_stats();
    for (int round = 0; round < 4; ++round) {
        Ciphertext scratch = ct;
        env.evaluator.rescale_inplace(scratch);
    }
    const WorkspaceStats after = workspace_stats();
    EXPECT_GT(after.hits, before.hits);
    EXPECT_EQ(after.misses, before.misses);
}

} // namespace
} // namespace bts
