#include "ckks/dft_factor.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/bit_ops.h"
#include "test_utils.h"

namespace bts {
namespace {

using testing::TestEnv;
using testing::default_env;

std::vector<Complex>
matvec(const std::vector<std::vector<Complex>>& m,
       const std::vector<Complex>& v)
{
    std::vector<Complex> out(v.size(), Complex(0, 0));
    for (std::size_t j = 0; j < v.size(); ++j) {
        for (std::size_t k = 0; k < v.size(); ++k) out[j] += m[j][k] * v[k];
    }
    return out;
}

std::vector<Complex>
bitrev(std::vector<Complex> v)
{
    bit_reverse_permute(v.data(), v.size());
    return v;
}

std::vector<Complex>
apply_stages(const std::vector<DiagonalMap>& stages, std::vector<Complex> v)
{
    for (const auto& s : stages) v = apply_diagonals(s, v);
    return v;
}

/** (1/2n) A^dagger — the dense CoeffToSlot matrix. */
std::vector<std::vector<Complex>>
dense_cts_matrix(std::size_t n)
{
    const auto a = special_fourier_matrix(n);
    std::vector<std::vector<Complex>> m(n, std::vector<Complex>(n));
    const double scale = 1.0 / (2.0 * static_cast<double>(n));
    for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t k = 0; k < n; ++k) {
            m[t][k] = std::conj(a[k][t]) * scale;
        }
    }
    return m;
}

// ---------- clear-math factorization pins ----------

TEST(FactoredDft, StageProductMatchesSpecialFft)
{
    // SlotToCoeff factored stages compute A * P: applying them to x
    // must equal the encoder's special FFT on the bit-reversed input,
    // for every slot count and radix (including ragged log/radix).
    auto& env = default_env();
    for (std::size_t n : {8u, 64u, 256u}) {
        for (int radix : {2, 4, 8}) {
            const auto stages = FactoredDft::stage_diagonals(
                n, DftDirection::kSlotToCoeff, radix);
            const auto x = env.random_message(n, 1.0, 40 + n + radix);
            const auto got = apply_stages(stages, x);
            auto ref = bitrev(x);
            env.encoder.fft_special(ref);
            EXPECT_LT(TestEnv::max_err(ref, got), 1e-9)
                << "n=" << n << " radix=" << radix;
        }
    }
}

TEST(FactoredDft, CtsStagesMatchDenseDaggerBitReversed)
{
    // CoeffToSlot factored stages compute P * (1/2n) A^dagger: the
    // dense oracle's output in bit-reversed slot order.
    auto& env = default_env();
    for (std::size_t n : {8u, 64u}) {
        for (int radix : {2, 4}) {
            const auto stages = FactoredDft::stage_diagonals(
                n, DftDirection::kCoeffToSlot, radix);
            const auto x = env.random_message(n, 1.0, 80 + n + radix);
            const auto got = apply_stages(stages, x);
            const auto ref = bitrev(matvec(dense_cts_matrix(n), x));
            EXPECT_LT(TestEnv::max_err(ref, got), 1e-9)
                << "n=" << n << " radix=" << radix;
        }
    }
}

TEST(FactoredDft, StagesAreSparse)
{
    // Each radix-2^r stage has at most 2^{r+1}-1 diagonals; the whole
    // factorization is O(log n * radix) versus the dense n diagonals.
    for (int radix : {2, 4, 8}) {
        const auto stages = FactoredDft::stage_diagonals(
            512, DftDirection::kSlotToCoeff, radix);
        for (const auto& s : stages) {
            EXPECT_LE(static_cast<int>(s.size()), 2 * radix - 1);
        }
    }
}

// ---------- homomorphic equivalence against the dense oracle ----------

RotationKeys
keys_for_amounts(TestEnv& env, std::vector<int> a, std::vector<int> b)
{
    a.insert(a.end(), b.begin(), b.end());
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    return env.keygen.gen_rotation_keys(env.sk, a);
}

class FactoredVsDense
    : public ::testing::TestWithParam<std::pair<std::size_t, int>>
{};

TEST_P(FactoredVsDense, CtsDecryptsToDenseOracle)
{
    auto& env = default_env();
    const auto [slots, radix] = GetParam();
    const int level = env.ctx.max_level(); // 6

    const FactoredDft cts_f(env.ctx, env.encoder, slots,
                            DftDirection::kCoeffToSlot, radix, level);
    const LinearTransform cts_d(env.ctx, env.encoder,
                                dense_cts_matrix(slots), level);
    auto keys = keys_for_amounts(env, cts_f.required_rotations(),
                                 cts_d.required_rotations());

    const auto z = env.random_message(slots, 1.0, 90 + slots + radix);
    const Ciphertext ct = env.encrypt(z, level);
    const auto got = env.decrypt(cts_f.apply(env.evaluator, ct, keys));
    const auto dense = env.decrypt(cts_d.apply(env.evaluator, ct, keys));

    // Factored output is the dense oracle's, bit-reversed.
    EXPECT_LT(TestEnv::max_err(bitrev(dense), got), 1e-3);

    // The factored path never materializes the n x n matrix; its total
    // PMult count stays well under the dense n diagonals.
    if (slots >= 64) {
        EXPECT_LT(cts_f.total_diagonals(), static_cast<int>(slots) / 2);
    }
}

INSTANTIATE_TEST_SUITE_P(
    RadixSlots, FactoredVsDense,
    ::testing::Values(std::make_pair(std::size_t{8}, 2),
                      std::make_pair(std::size_t{8}, 4),
                      std::make_pair(std::size_t{64}, 2),
                      std::make_pair(std::size_t{64}, 4)));

class FactoredRoundTrip
    : public ::testing::TestWithParam<std::pair<std::size_t, int>>
{};

TEST_P(FactoredRoundTrip, MatchesDenseRoundTrip)
{
    // CtS then StC: the two deferred bit-reversals cancel, so the
    // factored round trip must decrypt to the same message map as the
    // dense round trip, on the same input ciphertext.
    auto& env = default_env();
    const auto [slots, radix] = GetParam();
    const int level = env.ctx.max_level();
    const FactoredDft cts_f(env.ctx, env.encoder, slots,
                            DftDirection::kCoeffToSlot, radix, level);
    const FactoredDft stc_f(env.ctx, env.encoder, slots,
                            DftDirection::kSlotToCoeff, radix,
                            level - cts_f.num_stages());
    const LinearTransform cts_d(env.ctx, env.encoder,
                                dense_cts_matrix(slots), level);
    const LinearTransform stc_d(env.ctx, env.encoder,
                                special_fourier_matrix(slots), level - 1);

    auto keys = keys_for_amounts(env, cts_f.required_rotations(),
                                 stc_f.required_rotations());
    for (auto& [r, k] : keys_for_amounts(env, cts_d.required_rotations(),
                                         stc_d.required_rotations())) {
        keys.emplace(r, std::move(k));
    }

    const auto z = env.random_message(slots, 1.0, 120 + slots + radix);
    const Ciphertext ct = env.encrypt(z, level);
    const auto got = env.decrypt(stc_f.apply(
        env.evaluator, cts_f.apply(env.evaluator, ct, keys), keys));
    const auto dense = env.decrypt(stc_d.apply(
        env.evaluator, cts_d.apply(env.evaluator, ct, keys), keys));
    EXPECT_LT(TestEnv::max_err(dense, got), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    RadixSlots, FactoredRoundTrip,
    ::testing::Values(std::make_pair(std::size_t{8}, 2),
                      std::make_pair(std::size_t{8}, 4),
                      std::make_pair(std::size_t{64}, 4)));

// ---------- construction guards ----------

TEST(FactoredDft, RejectsBadRadix)
{
    auto& env = default_env();
    EXPECT_THROW(FactoredDft(env.ctx, env.encoder, 64,
                             DftDirection::kCoeffToSlot, 0, 6),
                 std::invalid_argument);
    EXPECT_THROW(FactoredDft(env.ctx, env.encoder, 64,
                             DftDirection::kCoeffToSlot, 3, 6),
                 std::invalid_argument);
}

TEST(FactoredDft, RejectsInsufficientLevelBudget)
{
    auto& env = default_env();
    // slots=64 at radix 2 needs 6 stages; input level 3 cannot fit.
    EXPECT_THROW(FactoredDft(env.ctx, env.encoder, 64,
                             DftDirection::kSlotToCoeff, 2, 3),
                 std::invalid_argument);
}

} // namespace
} // namespace bts
