#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <vector>

#include "ckks/test_utils.h"
#include "runtime/analysis/verifier.h"
#include "runtime/graph_workloads.h"
#include "runtime/server.h"

namespace bts::runtime {
namespace {

using testing::TestEnv;

struct ServerEnv
{
    ServerEnv() : env(bts::testing::small_params())
    {
        rot_keys = env.keygen.gen_rotation_keys(env.sk, {1, 2, 4});
        GraphTraits t;
        t.max_level = env.ctx.max_level();
        t.bootstrap_out_level = env.ctx.max_level();
        t.delta = env.ctx.delta();
        traits = t;
        dot = std::make_unique<Graph>(
            dot_product_graph(t, t.max_level, 3));
        poly = std::make_unique<Graph>(
            poly_eval_graph(t, t.max_level, {0.5, -0.25, 1.0}));
    }

    EvalResources
    resources()
    {
        EvalResources r;
        r.eval = &env.evaluator;
        r.encoder = &env.encoder;
        r.mult_key = &env.mult_key;
        r.rot_keys = &rot_keys;
        r.conj_key = &env.conj_key;
        return r;
    }

    JobRequest
    dot_job(u64 seed)
    {
        const std::size_t slots = env.ctx.n() / 2;
        JobRequest req;
        req.graph = dot.get();
        req.client = "dot-" + std::to_string(seed % 3);
        req.inputs.bind(Value{dot->input_ids()[0]},
                        env.encrypt(env.random_message(slots, 1.0, seed)));
        req.inputs.bind(
            Value{dot->input_ids()[1]},
            env.encoder.encode(env.random_message(slots, 1.0, seed + 1),
                               traits.delta, traits.max_level));
        return req;
    }

    JobRequest
    poly_job(u64 seed)
    {
        JobRequest req;
        req.graph = poly.get();
        req.client = "poly-" + std::to_string(seed % 3);
        req.inputs.bind(
            Value{poly->input_ids()[0]},
            env.encrypt(
                env.random_message(env.ctx.n() / 2, 0.7, seed)));
        return req;
    }

    TestEnv env;
    RotationKeys rot_keys;
    GraphTraits traits;
    std::unique_ptr<Graph> dot;
    std::unique_ptr<Graph> poly;
};

ServerEnv&
senv()
{
    static ServerEnv* e = new ServerEnv();
    return *e;
}

TEST(GraphServer, MixedClientsAllComplete)
{
    auto& e = senv();
    ServerOptions opts;
    opts.lanes = 4;
    GraphServer server(e.resources(), opts);

    std::vector<std::future<JobResult>> futures;
    for (u64 i = 0; i < 12; ++i) {
        futures.push_back(server.submit(
            i % 2 == 0 ? e.dot_job(100 + i) : e.poly_job(200 + i)));
    }
    for (auto& f : futures) {
        const JobResult r = f.get();
        ASSERT_EQ(r.outputs.size(), 1u);
        EXPECT_GE(r.exec_s, 0.0);
        EXPECT_GE(r.queue_s, 0.0);
        // Every job decrypts to something finite (full correctness is
        // pinned per-graph in test_executor).
        const auto dec = e.env.decrypt(r.outputs[0]);
        EXPECT_TRUE(std::isfinite(dec[0].real()));
    }

    server.drain();
    const ServerStats s = server.stats();
    EXPECT_EQ(s.submitted, 12u);
    EXPECT_EQ(s.completed, 12u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_GT(s.jobs_per_s, 0.0);
    EXPECT_GT(s.p50_latency_s, 0.0);
    EXPECT_LE(s.p50_latency_s, s.p99_latency_s);
    EXPECT_GT(s.mean_exec_s, 0.0);
    // Per-client accounting: every job landed in its client's bucket.
    std::size_t by_client = 0;
    for (const auto& [client, count] : s.completed_by_client) {
        EXPECT_TRUE(client.rfind("dot-", 0) == 0 ||
                    client.rfind("poly-", 0) == 0)
            << client;
        by_client += count;
    }
    EXPECT_EQ(by_client, 12u);
}

TEST(GraphServer, ResultsMatchDirectExecution)
{
    auto& e = senv();
    // The same job payload through the server and through a plain
    // serial Executor must be bit-identical.
    const auto z = e.env.random_message(e.env.ctx.n() / 2, 0.7, 777);
    // Encrypt once — encryption is randomized, and bit-exactness only
    // holds for runs over the same ciphertext.
    const Ciphertext ct = e.env.encrypt(z);
    const auto make_binding = [&] {
        Binding b;
        b.bind(Value{e.poly->input_ids()[0]}, ct);
        return b;
    };

    const Executor ref(e.resources());
    const auto direct = ref.run_serial(*e.poly, make_binding());

    ServerOptions opts;
    opts.lanes = 2;
    GraphServer server(e.resources(), opts);
    JobRequest req;
    req.graph = e.poly.get();
    req.inputs = make_binding();
    const JobResult r = server.submit(std::move(req)).get();

    ASSERT_EQ(r.outputs.size(), direct.size());
    EXPECT_EQ(r.outputs[0].level, direct[0].level);
    EXPECT_TRUE(r.outputs[0].b.equals(direct[0].b));
    EXPECT_TRUE(r.outputs[0].a.equals(direct[0].a));
}

TEST(GraphServer, FailedJobDoesNotTakeServerDown)
{
    auto& e = senv();
    ServerOptions opts;
    opts.lanes = 2;
    GraphServer server(e.resources(), opts);

    // A job with a missing binding fails its own future...
    JobRequest bad;
    bad.graph = e.poly.get();
    auto bad_future = server.submit(std::move(bad));
    EXPECT_THROW(bad_future.get(), std::invalid_argument);

    // ...and the server keeps serving.
    const JobResult ok = server.submit(e.poly_job(31)).get();
    EXPECT_EQ(ok.outputs.size(), 1u);

    server.drain();
    const ServerStats s = server.stats();
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.completed, 1u);
}

TEST(GraphServer, TinyQueueBackpressures)
{
    auto& e = senv();
    ServerOptions opts;
    opts.lanes = 1;
    opts.queue_capacity = 1; // submit() blocks until the lane drains
    GraphServer server(e.resources(), opts);
    std::vector<std::future<JobResult>> futures;
    for (u64 i = 0; i < 6; ++i) {
        futures.push_back(server.submit(e.poly_job(400 + i)));
    }
    for (auto& f : futures) EXPECT_EQ(f.get().outputs.size(), 1u);
    // Promises resolve before the lane records its bookkeeping, so
    // drain() — not future.get() — is the stats sync point.
    server.drain();
    EXPECT_EQ(server.stats().completed, 6u);
}

TEST(GraphServer, RegisterGraphOptimizesOnceAndServesBitExact)
{
    auto& e = senv();
    ServerOptions opts;
    opts.lanes = 2;
    GraphServer server(e.resources(), opts);

    // Register a pass-off baseline graph: the server runs the pipeline
    // once and caches the result for its lifetime.
    const Graph raw =
        poly_eval_graph(e.traits, e.traits.max_level, {0.5, -0.25, 1.0},
                        passes::PassOptions::rescale_only());
    const passes::OptimizeResult* opt = server.register_graph(raw);
    ASSERT_NE(opt, nullptr);
    EXPECT_GT(opt->stats.ops_fused, 0u);
    // Same uid -> the cached entry, not a re-optimization.
    EXPECT_EQ(server.register_graph(raw), opt);

    // Jobs against the registered graph are bit-identical to direct
    // execution of the unoptimized form over the same ciphertext.
    const Ciphertext ct = e.env.encrypt(
        e.env.random_message(e.env.ctx.n() / 2, 0.7, 881));
    Binding braw;
    braw.bind(Value{raw.input_ids()[0]}, ct);
    const Executor ref(e.resources());
    const auto direct = ref.run_serial(raw, std::move(braw));

    JobRequest req;
    req.graph = &opt->graph;
    req.inputs.bind(opt->remap(Value{raw.input_ids()[0]}), ct);
    const JobResult r = server.submit(std::move(req)).get();
    ASSERT_EQ(r.outputs.size(), direct.size());
    EXPECT_TRUE(testing::ct_equal(r.outputs[0], direct[0]));
}

TEST(GraphServer, BootstrapRefreshJobsInTheMix)
{
    // The shared bootstrap-capable small instance (test_utils.h): the
    // third client class of the serving scenario, plus the rotation
    // keys the dot-product client needs.
    static testing::BootTestEnv* be =
        new testing::BootTestEnv(1234, {1, 2});
    TestEnv& env = be->env;

    GraphTraits t;
    t.max_level = env.ctx.max_level();
    t.delta = env.ctx.delta();
    const auto z = env.random_message(64, 0.3, 51);
    t.bootstrap_out_level = be->boot->bootstrap(env.encrypt(z, 0)).level;

    const Graph refresh = bootstrap_refresh_graph(t);
    const Graph dot = dot_product_graph(t, t.max_level, 2);

    EvalResources r;
    r.eval = &env.evaluator;
    r.encoder = &env.encoder;
    r.mult_key = &env.mult_key;
    r.rot_keys = &be->rot_keys;
    r.conj_key = &env.conj_key;
    r.bootstrapper = be->boot.get();

    ServerOptions opts;
    opts.lanes = 2;
    GraphServer server(r, opts);
    std::vector<std::future<JobResult>> futures;
    for (int i = 0; i < 2; ++i) {
        JobRequest req;
        req.graph = &refresh;
        req.client = "refresh";
        req.inputs.bind(Value{refresh.input_ids()[0]},
                        env.encrypt(z, 0));
        futures.push_back(server.submit(std::move(req)));
    }
    {
        JobRequest req;
        req.graph = &dot;
        req.client = "dot";
        req.inputs.bind(Value{dot.input_ids()[0]},
                        env.encrypt(env.random_message(64, 1.0, 52)));
        req.inputs.bind(Value{dot.input_ids()[1]},
                        env.encoder.encode(
                            env.random_message(64, 1.0, 53), t.delta,
                            t.max_level));
        futures.push_back(server.submit(std::move(req)));
    }
    for (auto& f : futures) {
        EXPECT_EQ(f.get().outputs.size(), 1u);
    }
    server.drain();
    EXPECT_EQ(server.stats().completed, 3u);
    EXPECT_EQ(server.stats().failed, 0u);
}

TEST(GraphServer, RegisterRejectsGraphNeedingMissingKeys)
{
    // Admission control: the env holds rotation keys {1, 2, 4} and no
    // bootstrapper, so a graph rotating by 3 (or bootstrapping) is
    // rejected at registration with structured diagnostics instead of
    // failing every job on a worker lane.
    auto& e = senv();
    GraphServer server(e.resources(), ServerOptions{});

    Graph rot("needs-rot-3", e.traits);
    rot.mark_output(rot.hrot(rot.input(e.traits.max_level,
                                       e.traits.delta), 3));
    try {
        server.register_graph(rot);
        FAIL() << "expected VerifyError";
    } catch (const analysis::VerifyError& ex) {
        ASSERT_FALSE(ex.diagnostics().empty());
        EXPECT_EQ(ex.diagnostics()[0].rule, "missing-rotation-key");
        EXPECT_NE(std::string(ex.what()).find(" 3"), std::string::npos);
    }

    Graph boot("needs-boot", e.traits);
    boot.mark_output(boot.bootstrap(
        boot.input(0, e.traits.delta)));
    try {
        server.register_graph(boot);
        FAIL() << "expected VerifyError";
    } catch (const analysis::VerifyError& ex) {
        ASSERT_FALSE(ex.diagnostics().empty());
        EXPECT_EQ(ex.diagnostics()[0].rule, "missing-bootstrapper");
    }

    // Rejected graphs are not cached: a conforming graph still admits.
    EXPECT_NE(server.register_graph(*e.dot), nullptr);
}

TEST(GraphServer, RegisterRejectsCorruptedGraph)
{
    auto& e = senv();
    GraphServer server(e.resources(), ServerOptions{});
    Graph g = *e.poly; // fresh uid; safe to corrupt a copy
    g.mutable_value(g.node(0).output).level += 1;
    try {
        server.register_graph(g);
        FAIL() << "expected VerifyError";
    } catch (const analysis::VerifyError& ex) {
        ASSERT_FALSE(ex.diagnostics().empty());
        EXPECT_EQ(ex.diagnostics()[0].rule, "meta-level");
        // The historical builder-error shape is greppable in what().
        EXPECT_NE(std::string(ex.what()).find("node 0"),
                  std::string::npos);
    }
}

} // namespace
} // namespace bts::runtime
