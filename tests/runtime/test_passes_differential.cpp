// Differential pass-pipeline tests: the optimized form of a graph must
// execute BIT-IDENTICALLY to its unoptimized form — same output
// ciphertexts, limb for limb — at 1 and 8 scheduler lanes. This is the
// pipeline's core soundness contract (docs/PASSES.md): rotation CSE
// shares a decomposition the single-rotation path also uses, fused
// nodes dispatch the same two-step evaluator arithmetic, and lazy
// [0, 2q) residues are canonicalized by every consumer before they can
// influence a result.
//
// Bit-exactness holds only when the rescale-placement pass is a no-op
// (an inserted rescale changes the arithmetic, approximately-but-not-
// bit-equally), so the fuzzer generates WATERLINE-CONFORMANT random
// graphs: every delta^2-scale value is consumed only by rescales,
// scale-matched adds/subs, rotations or conjugations.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "ckks/test_utils.h"
#include "runtime/apps/helr.h"
#include "runtime/apps/sort.h"
#include "runtime/executor.h"
#include "runtime/graph_workloads.h"
#include "runtime/passes/pass_manager.h"

namespace bts::runtime {
namespace {

using testing::ct_equal;
using testing::TestEnv;

/** Non-bootstrap env + the rotation keys the fuzzed graphs use. */
struct DiffEnv
{
    DiffEnv() : env(bts::testing::small_params())
    {
        rot_keys = env.keygen.gen_rotation_keys(env.sk, {1, 2, 4, 8});
    }

    EvalResources
    resources()
    {
        EvalResources r;
        r.eval = &env.evaluator;
        r.encoder = &env.encoder;
        r.mult_key = &env.mult_key;
        r.rot_keys = &rot_keys;
        r.conj_key = &env.conj_key;
        return r;
    }

    GraphTraits
    traits() const
    {
        GraphTraits t;
        t.max_level = env.ctx.max_level();
        t.bootstrap_out_level = env.ctx.max_level();
        t.delta = env.ctx.delta();
        return t;
    }

    TestEnv env;
    RotationKeys rot_keys;
};

DiffEnv&
denv()
{
    static DiffEnv* e = new DiffEnv();
    return *e;
}

/** The input objects for one differential: built once from the RAW
 *  graph's metadata and bound to both forms (encryption is randomized,
 *  so bit-exactness is only defined over identical input ciphertexts). */
struct Inputs
{
    std::map<int, Ciphertext> cts; //!< raw-graph value id -> ct
    std::map<int, Plaintext> pts;
};

Inputs
make_inputs(const Graph& raw, TestEnv& env, std::size_t slots, u64 seed)
{
    Inputs in;
    u64 s = seed;
    for (const int id : raw.input_ids()) {
        const ValueInfo& info = raw.value(id);
        const auto z = env.random_message(slots, 0.4, ++s);
        const Plaintext pt =
            env.encoder.encode(z, info.scale, info.level);
        if (info.is_plain) {
            in.pts.emplace(id, pt);
        } else {
            in.cts.emplace(id,
                           env.encryptor.encrypt_symmetric(pt, env.sk));
        }
    }
    return in;
}

/** Bind @p in to a graph; @p map translates raw ids to optimized ids
 *  (null = bind the raw graph itself). */
Binding
to_binding(const Inputs& in, const std::vector<int>* map)
{
    Binding b;
    for (const auto& [id, ct] : in.cts) {
        b.bind(Value{map ? (*map)[id] : id}, ct);
    }
    for (const auto& [id, pt] : in.pts) {
        b.bind(Value{map ? (*map)[id] : id}, pt);
    }
    return b;
}

/** Raw serial reference vs optimized at 1 and 8 lanes, ct_equal. */
void
expect_bit_exact(const EvalResources& res, const Graph& raw,
                 const passes::OptimizeResult& opt, const Inputs& in,
                 const std::string& what)
{
    const Executor ref(res);
    const std::vector<Ciphertext> want =
        ref.run_serial(raw, to_binding(in, nullptr));
    for (const int lanes : {1, 8}) {
        ExecOptions eo;
        eo.lanes = lanes;
        const Executor exec(res, eo);
        const std::vector<Ciphertext> got =
            exec.run(opt.graph, to_binding(in, &opt.value_map));
        ASSERT_EQ(got.size(), want.size()) << what;
        for (std::size_t k = 0; k < want.size(); ++k) {
            EXPECT_TRUE(ct_equal(got[k], want[k]))
                << what << ": output " << k << " diverged at " << lanes
                << " lanes";
        }
    }
}

/**
 * Seeded conformant random graph: ~40 ops over mults (fused or kept
 * double-scale), rotations biased onto shared sources (CSE fodder,
 * duplicate amounts included), adds/subs that become lazy candidates,
 * conjugations, and deferred double-scale add+rescale chains. Every
 * value's scale class is tracked so the waterline pass is provably a
 * no-op on the result.
 */
Graph
build_fuzz_graph(const GraphTraits& t, u64 seed)
{
    Xoshiro256 rng(seed);
    Graph g("fuzz_" + std::to_string(seed), t);
    struct Val
    {
        Value v;
        bool dbl; //!< scale delta^2 (else exactly delta)
    };
    std::vector<Val> pool;
    for (int i = 0; i < 3; ++i) {
        pool.push_back({g.input(t.max_level, t.delta), false});
    }
    const Value pt = g.plain_input(t.max_level, t.delta);
    const int amounts[4] = {1, 2, 4, 8};

    // Pick a pool entry of the given class with level >= min_level.
    const auto pick = [&](bool dbl, int min_level) {
        std::vector<int> c;
        for (std::size_t i = 0; i < pool.size(); ++i) {
            if (pool[i].dbl == dbl &&
                g.value(pool[i].v.id).level >= min_level) {
                c.push_back(static_cast<int>(i));
            }
        }
        return c.empty() ? -1 : c[rng.uniform(c.size())];
    };

    for (int op = 0; op < 40; ++op) {
        switch (rng.uniform(8)) {
        case 0: { // HMult; half fuse with a rescale, half stay double
            const int a = pick(false, 1), b = pick(false, 1);
            if (a < 0 || b < 0) break;
            const Value m = g.hmult(pool[a].v, pool[b].v);
            if (rng.uniform(2) == 0) {
                pool.push_back({g.hrescale(m), false});
            } else {
                pool.push_back({m, true});
            }
            break;
        }
        case 1: { // PMult + rescale (fusion fodder)
            const int a = pick(false, 1);
            if (a < 0) break;
            pool.push_back({g.hrescale(g.pmult(pool[a].v, pt)), false});
            break;
        }
        case 2: { // CMult; half fused, half kept double-scale
            const int a = pick(false, 1);
            if (a < 0) break;
            const Value m = g.cmult(pool[a].v, Complex(0.4, 0.1));
            if (rng.uniform(2) == 0) {
                pool.push_back({g.hrescale(m), false});
            } else {
                pool.push_back({m, true});
            }
            break;
        }
        case 3: { // CAdd (canonical-scale operand only) or Conj
            const int a = pick(false, 0);
            if (a < 0) break;
            pool.push_back({rng.uniform(2) == 0
                                ? g.cadd(pool[a].v, Complex(0.3, 0.0))
                                : g.conj(pool[a].v),
                            false});
            break;
        }
        case 4:
        case 5: { // rotations, biased onto shared sources for CSE
            const bool dbl = rng.uniform(4) == 0;
            const int a = pick(dbl, 0);
            if (a < 0) break;
            const Value src = pool[a].v;
            const int n_rots = 1 + static_cast<int>(rng.uniform(3));
            for (int k = 0; k < n_rots; ++k) {
                pool.push_back(
                    {g.hrot(src, amounts[rng.uniform(4)]), dbl});
            }
            break;
        }
        case 6: { // HAdd/HSub of canonical values: lazy candidates
            const int a = pick(false, 0), b = pick(false, 0);
            if (a < 0 || b < 0) break;
            pool.push_back({rng.uniform(2) == 0
                                ? g.hadd(pool[a].v, pool[b].v)
                                : g.hsub(pool[a].v, pool[b].v),
                            false});
            break;
        }
        case 7: { // deferred reduction: add two delta^2 values, THEN
                  // rescale — the waterline's pass-through case
            const int a = pick(true, 1), b = pick(true, 1);
            if (a < 0 || b < 0) break;
            pool.push_back(
                {g.hrescale(g.hadd(pool[a].v, pool[b].v)), false});
            break;
        }
        }
    }

    // Mark the last few distinct values as outputs (at least one — the
    // inputs are in the pool, so it is never empty).
    std::vector<char> marked(g.num_values(), 0);
    int outs = 0;
    for (std::size_t i = pool.size(); i-- > 0 && outs < 3;) {
        if (marked[pool[i].v.id]) continue;
        marked[pool[i].v.id] = 1;
        g.mark_output(pool[i].v);
        ++outs;
    }
    return g;
}

TEST(PassDifferential, FuzzedConformantGraphsAreBitExact)
{
    auto& e = denv();
    const GraphTraits t = e.traits();
    const std::size_t slots = e.env.ctx.n() / 2;
    std::size_t exercised = 0;
    for (const u64 seed : {u64{11}, u64{22}, u64{33}, u64{44}}) {
        const Graph raw = build_fuzz_graph(t, seed);
        const passes::OptimizeResult opt =
            passes::PassManager().optimize(raw);
        // The rescale pass must be a no-op on a conformant graph —
        // otherwise the bit-exact comparison below is vacuous.
        ASSERT_EQ(opt.stats.rescales_inserted, 0u) << "seed " << seed;
        exercised += opt.stats.rotations_grouped + opt.stats.ops_fused +
                     opt.stats.lazy_nodes + opt.stats.nodes_eliminated;
        const Inputs in = make_inputs(raw, e.env, slots, seed * 1000);
        expect_bit_exact(e.resources(), raw, opt, in,
                         "fuzz seed " + std::to_string(seed));
    }
    // The corpus actually fired the passes it claims to test.
    EXPECT_GT(exercised, 0u);
}

TEST(PassDifferential, DotProductOptimizedMatchesRaw)
{
    auto& e = denv();
    const GraphTraits t = e.traits();
    const Graph raw = dot_product_graph(t, t.max_level, 3,
                                        passes::PassOptions::none());
    const passes::OptimizeResult opt =
        passes::PassManager().optimize(raw);
    EXPECT_GT(opt.stats.ops_fused, 0u);
    const Inputs in = make_inputs(raw, e.env, e.env.ctx.n() / 2, 501);
    expect_bit_exact(e.resources(), raw, opt, in, "dot");
}

TEST(PassDifferential, PolyEvalFusedMatchesRescaleOnly)
{
    // The rescale_only() form is the minimum executable baseline (the
    // raw Horner chain's constant adds see double-scale operands);
    // fusion and laziness on top must not change a single bit.
    auto& e = denv();
    const GraphTraits t = e.traits();
    const std::vector<double> coeffs{0.3, -1.0, 0.5, 0.25};
    const Graph base = poly_eval_graph(
        t, t.max_level, coeffs, passes::PassOptions::rescale_only());
    const passes::OptimizeResult opt =
        passes::PassManager().optimize(base);
    EXPECT_GT(opt.stats.ops_fused, 0u);
    const Inputs in = make_inputs(base, e.env, e.env.ctx.n() / 2, 502);
    expect_bit_exact(e.resources(), base, opt, in, "poly");
}

// ---------------------------------------------------------------------
// Application differentials: the bootstrapped Table 5/6 graphs,
// unoptimized vs optimized, at 1 and 8 lanes. Inputs are random (the
// contract is bit-exactness of the arithmetic, not training quality),
// and every source of randomness is seeded, so both sides see the
// identical ciphertexts.
// ---------------------------------------------------------------------

struct BootDiffEnv
{
    BootDiffEnv() : be(7321, {}, 20)
    {
        TestEnv& env = be.env;
        traits.max_level = env.ctx.max_level();
        traits.delta = env.ctx.delta();
        const auto z = env.random_message(64, 0.3, 7);
        traits.bootstrap_out_level =
            be.boot->bootstrap(env.encrypt(z, 0)).level;
    }

    /** @p graph_keys: rotation keys for the app graph's amounts (the
     *  bootstrapper carries its own set). */
    EvalResources
    resources(const RotationKeys* graph_keys)
    {
        EvalResources r;
        r.eval = &be.env.evaluator;
        r.encoder = &be.env.encoder;
        r.mult_key = &be.env.mult_key;
        r.rot_keys = graph_keys;
        r.conj_key = &be.env.conj_key;
        r.bootstrapper = be.boot.get();
        return r;
    }

    testing::BootTestEnv be;
    GraphTraits traits;
};

BootDiffEnv&
bdenv()
{
    static BootDiffEnv* e = new BootDiffEnv();
    return *e;
}

TEST(PassDifferential, SortAppOptimizedIsBitExact)
{
    auto& e = bdenv();
    apps::SortConfig cfg = apps::SortConfig::functional();
    cfg.optimize = false;
    const apps::SortApp raw = apps::build_sort(cfg, e.traits);
    const passes::OptimizeResult opt =
        passes::PassManager().optimize(raw.graph);
    EXPECT_GT(opt.stats.rotations_grouped, 0u);
    EXPECT_GT(opt.stats.lazy_nodes, 0u);

    const RotationKeys keys = e.be.env.keygen.gen_rotation_keys(
        e.be.env.sk, raw.graph.required_rotations());
    const Inputs in = make_inputs(raw.graph, e.be.env, 64, 601);
    expect_bit_exact(e.resources(&keys), raw.graph, opt, in, "sort");
}

TEST(PassDifferential, HelrAppOptimizedIsBitExact)
{
    auto& e = bdenv();
    apps::HelrConfig cfg = apps::HelrConfig::functional();
    cfg.optimize = false;
    const apps::HelrApp raw = apps::build_helr(cfg, e.traits);
    const passes::OptimizeResult opt =
        passes::PassManager().optimize(raw.graph);
    EXPECT_GT(opt.stats.ops_fused, 0u);

    const RotationKeys keys = e.be.env.keygen.gen_rotation_keys(
        e.be.env.sk, raw.graph.required_rotations());
    const Inputs in = make_inputs(raw.graph, e.be.env, 64, 602);
    expect_bit_exact(e.resources(&keys), raw.graph, opt, in, "helr");
}

} // namespace
} // namespace bts::runtime
