/**
 * The static resource analyzer's validation suite — the contract in
 * runtime/analysis/resource.h made executable:
 *
 *  - exact op counts: analyze_resources() op_counts match the lowered
 *    sim::Trace histogram for EVERY builtin graph, raw and optimized,
 *    on all three Table 4 instances, with zero tolerance;
 *  - calibrated costs: the analyzer's totals equal pricing the lowered
 *    trace with the same sim::CostModel;
 *  - liveness: predicted peak live ciphertexts/bytes equal the
 *    measured ExecStats peaks of deterministic serial runs;
 *  - parallelism profile: chain graphs report parallelism 1 / width 1,
 *    wide graphs report width >= any measured peak_in_flight;
 *  - per-pass resource deltas, the RS- budget rules, the workspace
 *    pool's high-water counters, and the GraphServer's cost-aware
 *    admission plumbing.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "ckks/test_utils.h"
#include "common/workspace.h"
#include "hwparams/instance.h"
#include "runtime/analysis/resource.h"
#include "runtime/apps/helr.h"
#include "runtime/apps/resnet.h"
#include "runtime/apps/sort.h"
#include "runtime/executor.h"
#include "runtime/graph_workloads.h"
#include "runtime/lowering.h"
#include "runtime/passes/pass_manager.h"
#include "runtime/server.h"
#include "sim/cost_model.h"

namespace bts::runtime {
namespace {

using testing::TestEnv;

// ---------------------------------------------------------------------
// (a) + (b): exact counts and calibrated totals vs the lowered trace.
// ---------------------------------------------------------------------

/** Every builtin graph bts_lint serves, same builder set. */
struct Builtin
{
    const char* name;
    Graph graph;
};

std::vector<Builtin>
builtin_graphs(const hw::CkksInstance& inst, bool raw)
{
    const GraphTraits t = traits_for(inst);
    const passes::PassOptions opts =
        raw ? passes::PassOptions::none() : passes::PassOptions{};
    std::vector<Builtin> out;
    out.push_back({"tmult", tmult_graph(inst, opts)});
    out.push_back({"dot_product",
                   dot_product_graph(t, t.bootstrap_out_level, 8, opts)});
    out.push_back({"poly_eval",
                   poly_eval_graph(t, t.bootstrap_out_level,
                                   {0.3, -1.0, 0.5, 0.25}, opts)});
    out.push_back({"bootstrap_refresh", bootstrap_refresh_graph(t, opts)});
    {
        apps::HelrConfig cfg = apps::HelrConfig::paper();
        cfg.optimize = !raw;
        out.push_back({"helr", std::move(apps::build_helr(cfg, t).graph)});
    }
    {
        apps::ResnetConfig cfg = apps::ResnetConfig::paper();
        cfg.optimize = !raw;
        out.push_back(
            {"resnet", std::move(apps::build_resnet(cfg, t).graph)});
    }
    {
        apps::SortConfig cfg = apps::SortConfig::paper();
        cfg.optimize = !raw;
        out.push_back({"sort", std::move(apps::build_sort(cfg, t).graph)});
    }
    return out;
}

class ResourceSweep : public ::testing::TestWithParam<int>
{
  protected:
    hw::CkksInstance
    inst() const
    {
        return hw::table4_instances()[GetParam()];
    }
};

TEST_P(ResourceSweep, OpCountsMatchLoweredTraceExactly)
{
    const hw::CkksInstance i = inst();
    for (const bool raw : {false, true}) {
        for (const Builtin& b : builtin_graphs(i, raw)) {
            const analysis::ResourceSummary s =
                analysis::analyze_resources(b.graph, i);
            const sim::Trace trace = lower_to_trace(b.graph, i);
            const auto hist = sim::kind_histogram(trace);
            std::size_t total = 0;
            for (int k = 0; k < sim::kHeOpKindCount; ++k) {
                const auto kind = static_cast<sim::HeOpKind>(k);
                const auto it = hist.find(kind);
                const std::size_t expect =
                    it == hist.end()
                        ? 0u
                        : static_cast<std::size_t>(it->second);
                EXPECT_EQ(s.op_counts[static_cast<std::size_t>(k)],
                          expect)
                    << b.name << (raw ? " raw" : " opt") << " kind "
                    << sim::kind_name(kind);
                total += expect;
            }
            EXPECT_EQ(s.total_ops, total) << b.name;
            EXPECT_EQ(s.total_ops, trace.ops.size()) << b.name;
            EXPECT_EQ(s.bootstrap_count, trace.bootstrap_count)
                << b.name;
        }
    }
}

TEST_P(ResourceSweep, CostTotalsEqualPricingTheLoweredTrace)
{
    // Calibration by construction: summing sim::CostModel over the
    // lowered trace reproduces the analyzer's totals (tiny relative
    // tolerance only for float summation order).
    const hw::CkksInstance i = inst();
    const sim::BtsConfig hw;
    const sim::CostModel cm(hw, i);
    for (const Builtin& b : builtin_graphs(i, /*raw=*/false)) {
        const analysis::ResourceSummary s =
            analysis::analyze_resources(b.graph, i);
        const sim::Trace trace = lower_to_trace(b.graph, i);
        double work = 0, ntt = 0, bconv = 0, elem = 0, evk = 0;
        std::size_t evk_ops = 0;
        for (const sim::HeOp& op : trace.ops) {
            const sim::OpCost c = cm.op_cost(op);
            work += c.compute_s;
            ntt += c.ntt_s;
            bconv += c.bconv_s;
            elem += c.elem_s;
            evk += c.evk_bytes;
            if (sim::needs_evk(op.kind)) evk_ops += 1;
        }
        const auto near = [&](double a, double e, const char* what) {
            EXPECT_NEAR(a, e, 1e-9 * std::max(1.0, std::abs(e)))
                << b.name << " " << what;
        };
        near(s.total_work_s, work, "total_work_s");
        near(s.ntt_s, ntt, "ntt_s");
        near(s.bconv_s, bconv, "bconv_s");
        near(s.elem_s, elem, "elem_s");
        near(s.evk_bytes, evk, "evk_bytes");
        EXPECT_EQ(s.evk_ops, evk_ops) << b.name;
        EXPECT_GT(s.total_work_s, 0.0) << b.name;
        EXPECT_LE(s.keyswitch_work_s, s.total_work_s + 1e-12) << b.name;
        // The profile is internally consistent.
        EXPECT_GE(s.critical_path_s, 0.0);
        EXPECT_LE(s.critical_path_s, s.total_work_s + 1e-12) << b.name;
        EXPECT_GE(s.parallelism, 1.0 - 1e-9) << b.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Table4, ResourceSweep, ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------
// (c): predicted liveness == measured serial execution, functionally.
// ---------------------------------------------------------------------

/** The pseudo-instance GraphServer::register_graph prices against:
 *  the functional context's geometry, boot levels per graph. */
hw::CkksInstance
env_instance(const TestEnv& env, const Graph& g)
{
    hw::CkksInstance inst;
    inst.name = "test-env";
    inst.n = env.ctx.n();
    inst.max_level = env.ctx.max_level();
    inst.dnum = env.ctx.dnum();
    inst.q0_bits = env.ctx.params().q0_bits;
    inst.scale_bits = env.ctx.params().scale_bits;
    inst.boot_levels =
        g.uses_bootstrap()
            ? env.ctx.max_level() - g.traits().bootstrap_out_level
            : 0;
    return inst;
}

struct FuncEnv
{
    FuncEnv() : env(bts::testing::small_params())
    {
        rot_keys = env.keygen.gen_rotation_keys(env.sk, {1, 2, 4});
        GraphTraits t;
        t.max_level = env.ctx.max_level();
        t.bootstrap_out_level = env.ctx.max_level();
        t.delta = env.ctx.delta();
        traits = t;
    }

    EvalResources
    resources()
    {
        EvalResources r;
        r.eval = &env.evaluator;
        r.encoder = &env.encoder;
        r.mult_key = &env.mult_key;
        r.rot_keys = &rot_keys;
        r.conj_key = &env.conj_key;
        return r;
    }

    TestEnv env;
    RotationKeys rot_keys;
    GraphTraits traits;
};

FuncEnv&
fenv()
{
    static FuncEnv* e = new FuncEnv();
    return *e;
}

TEST(ResourceLiveness, PredictedPeakEqualsMeasuredSerial)
{
    auto& e = fenv();
    const std::size_t slots = e.env.ctx.n() / 2;
    struct Case
    {
        const char* name;
        Graph graph;
    };
    std::vector<Case> cases;
    cases.push_back(
        {"dot", dot_product_graph(e.traits, e.traits.max_level, 3)});
    cases.push_back({"poly",
                     poly_eval_graph(e.traits, e.traits.max_level,
                                     {0.5, -0.25, 1.0, 0.125})});
    for (Case& c : cases) {
        Binding b;
        b.bind(Value{c.graph.input_ids()[0]},
               e.env.encrypt(e.env.random_message(slots, 0.7, 91)));
        if (c.graph.input_ids().size() > 1) {
            b.bind(Value{c.graph.input_ids()[1]},
                   e.env.encoder.encode(
                       e.env.random_message(slots, 1.0, 92),
                       e.traits.delta, e.traits.max_level));
        }
        const Executor exec(e.resources());
        ExecStats stats;
        const auto outs =
            exec.run_serial(c.graph, std::move(b), &stats);
        ASSERT_EQ(outs.size(), 1u) << c.name;

        const analysis::ResourceSummary s = analysis::analyze_resources(
            c.graph, env_instance(e.env, c.graph));
        // Zero tolerance: the analyzer mirrors run_serial's release
        // discipline op for op.
        EXPECT_EQ(s.peak_live_values, stats.peak_live_values) << c.name;
        EXPECT_EQ(s.peak_live_bytes,
                  static_cast<double>(stats.peak_live_bytes))
            << c.name;
        EXPECT_GT(s.peak_live_values, 0u) << c.name;
    }
}

TEST(ResourceLiveness, BootstrapGraphPredictedPeakMatches)
{
    static testing::BootTestEnv* be = new testing::BootTestEnv(1234, {});
    TestEnv& env = be->env;
    GraphTraits t;
    t.max_level = env.ctx.max_level();
    t.delta = env.ctx.delta();
    const auto z = env.random_message(64, 0.3, 51);
    t.bootstrap_out_level = be->boot->bootstrap(env.encrypt(z, 0)).level;
    const Graph refresh = bootstrap_refresh_graph(t);

    EvalResources r;
    r.eval = &env.evaluator;
    r.encoder = &env.encoder;
    r.mult_key = &env.mult_key;
    r.rot_keys = &be->rot_keys;
    r.conj_key = &env.conj_key;
    r.bootstrapper = be->boot.get();

    Binding b;
    b.bind(Value{refresh.input_ids()[0]}, env.encrypt(z, 0));
    const Executor exec(r);
    ExecStats stats;
    exec.run_serial(refresh, std::move(b), &stats);

    const analysis::ResourceSummary s = analysis::analyze_resources(
        refresh, env_instance(env, refresh));
    EXPECT_EQ(s.peak_live_values, stats.peak_live_values);
    EXPECT_EQ(s.peak_live_bytes,
              static_cast<double>(stats.peak_live_bytes));
    EXPECT_EQ(s.bootstrap_count, 1);
    EXPECT_GT(s.evk_working_set_bytes, 0.0);
}

// ---------------------------------------------------------------------
// (d): the static parallelism profile against measured schedules.
// ---------------------------------------------------------------------

TEST(ResourceParallelism, ChainGraphIsSerial)
{
    auto& e = fenv();
    Graph g("chain", e.traits);
    Value v = g.input(e.traits.max_level, e.traits.delta);
    for (int i = 0; i < 6; ++i) v = g.hadd(v, v);
    g.mark_output(v);

    const analysis::ResourceSummary s =
        analysis::analyze_resources(g, env_instance(e.env, g));
    EXPECT_NEAR(s.parallelism, 1.0, 1e-9);
    EXPECT_NEAR(s.critical_path_s, s.total_work_s, 1e-15);
    EXPECT_EQ(s.width, 1u);

    // An 8-lane schedule cannot beat the dependence structure: every
    // node waits on its predecessor, so at most one runs at a time.
    ExecOptions eo;
    eo.lanes = 8;
    const Executor exec(e.resources(), eo);
    Binding b;
    b.bind(Value{g.input_ids()[0]},
           e.env.encrypt(
               e.env.random_message(e.env.ctx.n() / 2, 0.5, 11)));
    ExecStats stats;
    exec.run(g, std::move(b), &stats);
    EXPECT_EQ(stats.peak_in_flight, 1u);
}

TEST(ResourceParallelism, WideGraphWidthBoundsInFlight)
{
    auto& e = fenv();
    Graph g("wide", e.traits);
    const Value in = g.input(e.traits.max_level, e.traits.delta);
    constexpr int kLanesWide = 8;
    for (int i = 0; i < kLanesWide; ++i) {
        // Two-node independent chains so lanes have real work.
        g.mark_output(g.hadd(g.hadd(in, in), in));
    }

    const analysis::ResourceSummary s =
        analysis::analyze_resources(g, env_instance(e.env, g));
    EXPECT_EQ(s.width, static_cast<std::size_t>(kLanesWide));
    EXPECT_GT(s.parallelism, 1.0);
    EXPECT_LT(s.critical_path_s, s.total_work_s);

    ExecOptions eo;
    eo.lanes = 4;
    const Executor exec(e.resources(), eo);
    Binding b;
    b.bind(Value{g.input_ids()[0]},
           e.env.encrypt(
               e.env.random_message(e.env.ctx.n() / 2, 0.5, 12)));
    ExecStats stats;
    exec.run(g, std::move(b), &stats);
    // No schedule can ever have more nodes in flight than the
    // dependence width (Dilworth bound).
    EXPECT_LE(stats.peak_in_flight, s.width);
    EXPECT_GE(stats.peak_in_flight, 1u);
}

// ---------------------------------------------------------------------
// Per-pass resource deltas.
// ---------------------------------------------------------------------

TEST(PassResourceDeltas, RotationCseReducesEvkOpsOnDuplicates)
{
    auto& e = fenv();
    Graph g("dup-rot", e.traits);
    const Value in = g.input(e.traits.max_level, e.traits.delta);
    // Duplicate amounts: the CSE dedupes them into one hoisted output,
    // which is what actually reduces the key-switch op count (distinct
    // amounts only share the decompose, not the per-amount key mult).
    const Value r1 = g.hrot(in, 1);
    const Value r2 = g.hrot(in, 1);
    const Value r3 = g.hrot(in, 2);
    g.mark_output(g.hadd(g.hadd(r1, r2), r3));

    const passes::OptimizeResult res = passes::PassManager().optimize(g);
    ASSERT_FALSE(res.stats.resource_deltas.empty());
    const passes::PassResourceDelta* cse = nullptr;
    for (const auto& d : res.stats.resource_deltas) {
        if (d.pass == "rotation-cse") cse = &d;
    }
    ASSERT_NE(cse, nullptr) << "rotation-cse delta not recorded";
    // Three rotation key-switches before; the duplicate pair collapses.
    EXPECT_LT(cse->after.evk_ops, cse->before.evk_ops);
    EXPECT_LT(cse->after.nodes, cse->before.nodes);
    // Hoisting must not inflate the serial peak beyond the group size.
    EXPECT_LE(cse->after.peak_live_values, cse->before.peak_live_values);
    EXPECT_LE(cse->after.peak_live_limbs, cse->before.peak_live_limbs);
}

TEST(PassResourceDeltas, EveryPassRecordsABeforeAfterPair)
{
    auto& e = fenv();
    const Graph g =
        poly_eval_graph(e.traits, e.traits.max_level, {0.5, -0.25, 1.0},
                        passes::PassOptions::none());
    const passes::OptimizeResult res = passes::PassManager().optimize(g);
    // One delta per enabled builtin pass, in pipeline order.
    const std::vector<std::string> expect = {
        "place-rescales", "dead-value-elim", "rotation-cse", "fusion",
        "lazy-residues"};
    ASSERT_EQ(res.stats.resource_deltas.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(res.stats.resource_deltas[i].pass, expect[i]);
        // A pass never corrupts the chain: the next delta's "before"
        // is the previous delta's "after".
        if (i > 0) {
            EXPECT_EQ(res.stats.resource_deltas[i].before.nodes,
                      res.stats.resource_deltas[i - 1].after.nodes);
        }
    }
    // Fusion shrinks this graph (mult+rescale pairs), and the recorded
    // deltas see it.
    const auto& fusion = res.stats.resource_deltas[3];
    EXPECT_LT(fusion.after.nodes, fusion.before.nodes);
}

// ---------------------------------------------------------------------
// RS- budget rules.
// ---------------------------------------------------------------------

TEST(ResourceRules, DisabledLimitsProduceNoDiagnostics)
{
    const hw::CkksInstance i = hw::ins1();
    const Graph g = tmult_graph(i);
    const analysis::ResourceSummary s = analysis::analyze_resources(g, i);
    EXPECT_TRUE(
        analysis::check_resources(s, analysis::ResourceLimits{}).empty());
}

TEST(ResourceRules, ViolationsMapToRsRules)
{
    const hw::CkksInstance i = hw::ins1();
    const Graph g = tmult_graph(i);
    const analysis::ResourceSummary s = analysis::analyze_resources(g, i);

    analysis::ResourceLimits limits;
    limits.max_peak_live_bytes = 1; // impossibly tight
    limits.max_evk_working_set_bytes = 1;
    limits.min_parallelism = 1e9;
    const auto diags = analysis::check_resources(s, limits);
    ASSERT_EQ(diags.size(), 3u);
    EXPECT_EQ(diags[0].rule, "rs-peak-live");
    EXPECT_EQ(diags[0].severity, analysis::Severity::kError);
    EXPECT_EQ(diags[1].rule, "rs-evk-working-set");
    EXPECT_EQ(diags[1].severity, analysis::Severity::kError);
    EXPECT_EQ(diags[2].rule, "rs-critical-path");
    EXPECT_EQ(diags[2].severity, analysis::Severity::kWarning);
    EXPECT_TRUE(analysis::has_errors(diags));

    // Generous budgets pass clean.
    analysis::ResourceLimits loose;
    loose.max_peak_live_bytes = 1e18;
    loose.max_evk_working_set_bytes = 1e18;
    loose.min_parallelism = 1e-9;
    EXPECT_TRUE(analysis::check_resources(s, loose).empty());
}

TEST(ResourceRules, RendersAreNonEmptyAndNameTheGraph)
{
    const hw::CkksInstance i = hw::ins2();
    const GraphTraits t = traits_for(i);
    const Graph g = dot_product_graph(t, t.bootstrap_out_level, 4);
    const analysis::ResourceSummary s = analysis::analyze_resources(g, i);
    const std::string text = analysis::render_resource_text(g.name(), s);
    const std::string json = analysis::render_resource_json(g.name(), s);
    const std::string sched = analysis::render_schedule_text(g, s);
    const std::string dot = analysis::to_resource_dot(g, s);
    EXPECT_NE(text.find(g.name()), std::string::npos);
    EXPECT_NE(json.find("\"total_work_s\""), std::string::npos);
    EXPECT_NE(sched.find("#0"), std::string::npos);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
}

// ---------------------------------------------------------------------
// Workspace pool high-water counters.
// ---------------------------------------------------------------------

TEST(WorkspaceHighWater, GaugesTrackAcquireReleaseAndResetRebases)
{
    reset_workspace_stats();
    const WorkspaceStats base = workspace_stats();

    U64Buffer a = acquire_buffer(1 << 12);
    U64Buffer b = acquire_buffer(1 << 10);
    const WorkspaceStats held = workspace_stats();
    EXPECT_EQ(held.outstanding_buffers, base.outstanding_buffers + 2);
    EXPECT_GE(held.outstanding_bytes,
              base.outstanding_bytes + ((1u << 12) + (1u << 10)) * 8);
    EXPECT_GE(held.peak_buffers, held.outstanding_buffers);
    EXPECT_GE(held.peak_bytes, held.outstanding_bytes);

    release_buffer(std::move(a));
    release_buffer(std::move(b));
    const WorkspaceStats done = workspace_stats();
    EXPECT_EQ(done.outstanding_buffers, base.outstanding_buffers);
    EXPECT_EQ(done.outstanding_bytes, base.outstanding_bytes);
    // The high-water marks survive the release...
    EXPECT_GE(done.peak_buffers, held.outstanding_buffers);
    EXPECT_GE(done.peak_bytes, held.outstanding_bytes);

    // ...until a reset rebases them to the current footprint.
    reset_workspace_stats();
    const WorkspaceStats rebased = workspace_stats();
    EXPECT_EQ(rebased.peak_buffers, rebased.outstanding_buffers);
    EXPECT_EQ(rebased.peak_bytes, rebased.outstanding_bytes);
    EXPECT_EQ(rebased.hits + rebased.misses, 0u);
}

TEST(WorkspaceHighWater, SerialRunPeakIsBoundedByPoolHighWater)
{
    // The pool's high-water mark is an upper bound on the analyzer's
    // semantic peak: every live ciphertext holds pool buffers, plus
    // scratch the liveness model deliberately excludes.
    auto& e = fenv();
    const Graph g =
        poly_eval_graph(e.traits, e.traits.max_level, {0.5, -0.25, 1.0});
    Binding b;
    b.bind(Value{g.input_ids()[0]},
           e.env.encrypt(
               e.env.random_message(e.env.ctx.n() / 2, 0.5, 21)));
    reset_workspace_stats();
    const Executor exec(e.resources());
    ExecStats stats;
    exec.run_serial(g, std::move(b), &stats);
    const WorkspaceStats pool = workspace_stats();
    EXPECT_GE(pool.peak_bytes, stats.peak_live_bytes);
}

// ---------------------------------------------------------------------
// GraphServer cost-aware admission.
// ---------------------------------------------------------------------

TEST(ServerCostAware, RegisteredGraphsCarryCachedSummaries)
{
    auto& e = fenv();
    GraphServer server(e.resources(), ServerOptions{});
    const Graph raw = poly_eval_graph(e.traits, e.traits.max_level,
                                      {0.5, -0.25, 1.0},
                                      passes::PassOptions::none());
    const passes::OptimizeResult* opt = server.register_graph(raw);
    ASSERT_NE(opt, nullptr);

    const analysis::ResourceSummary* s =
        server.resource_summary(opt->graph);
    ASSERT_NE(s, nullptr);
    EXPECT_GT(s->total_work_s, 0.0);
    EXPECT_GT(s->peak_live_values, 0u);
    // Unregistered graphs have no summary.
    const Graph other =
        dot_product_graph(e.traits, e.traits.max_level, 2);
    EXPECT_EQ(server.resource_summary(other), nullptr);

    // A submitted job reports the estimate it was scheduled by.
    JobRequest req;
    req.graph = &opt->graph;
    req.inputs.bind(
        opt->remap(Value{raw.input_ids()[0]}),
        e.env.encrypt(
            e.env.random_message(e.env.ctx.n() / 2, 0.6, 33)));
    const JobResult r = server.submit(std::move(req)).get();
    EXPECT_DOUBLE_EQ(r.est_cost_s, s->total_work_s);
    server.drain();
}

TEST(ServerCostAware, CheapTrafficOvertakesExpensiveUnderSjf)
{
    auto& e = fenv();
    const std::size_t slots = e.env.ctx.n() / 2;
    // Expensive: a mult-heavy polynomial. Cheap: one addition.
    const Graph exp_raw = poly_eval_graph(
        e.traits, e.traits.max_level,
        {0.5, -0.25, 1.0, 0.125, -0.5, 0.75, 0.3},
        passes::PassOptions::none());
    Graph cheap_raw("cheap-add", e.traits);
    {
        const Value in =
            cheap_raw.input(e.traits.max_level, e.traits.delta);
        cheap_raw.mark_output(cheap_raw.hadd(in, in));
    }

    ServerOptions opts;
    opts.lanes = 1; // one lane => queue ordering decides completion
    GraphServer server(e.resources(), opts);
    const auto* exp_opt = server.register_graph(exp_raw);
    const auto* cheap_opt = server.register_graph(cheap_raw);
    const double exp_cost =
        server.resource_summary(exp_opt->graph)->total_work_s;
    const double cheap_cost =
        server.resource_summary(cheap_opt->graph)->total_work_s;
    EXPECT_GT(exp_cost, cheap_cost);

    const auto make = [&](const Graph& g, const Graph& raw,
                          const passes::OptimizeResult* opt,
                          const char* client, u64 seed) {
        JobRequest req;
        req.graph = &g;
        req.client = client;
        req.inputs.bind(
            opt->remap(Value{raw.input_ids()[0]}),
            e.env.encrypt(e.env.random_message(slots, 0.6, seed)));
        return req;
    };

    // Alternate expensive/cheap onto the single lane (requests built —
    // and inputs encrypted — up front so submits are back-to-back and
    // the queue actually accumulates). Whenever both classes are
    // queued, SJF picks the cheap one, so cheap jobs spend far less
    // time queued than expensive ones on aggregate.
    std::vector<JobRequest> reqs;
    constexpr int kPairs = 8;
    for (int i = 0; i < kPairs; ++i) {
        reqs.push_back(make(exp_opt->graph, exp_raw, exp_opt,
                            "expensive", 100 + i));
        reqs.push_back(make(cheap_opt->graph, cheap_raw, cheap_opt,
                            "cheap", 200 + i));
    }
    std::vector<std::future<JobResult>> futures;
    double cheap_queue = 0, exp_queue = 0;
    for (auto& req : reqs) futures.push_back(server.submit(std::move(req)));
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const JobResult r = futures[i].get();
        (i % 2 == 0 ? exp_queue : cheap_queue) += r.queue_s;
        EXPECT_DOUBLE_EQ(r.est_cost_s,
                         i % 2 == 0 ? exp_cost : cheap_cost);
    }
    EXPECT_LT(cheap_queue, exp_queue);

    server.drain();
    const ServerStats s = server.stats();
    EXPECT_EQ(s.completed, static_cast<std::size_t>(2 * kPairs));
    // Per-client tail accounting exists for both classes.
    EXPECT_EQ(s.p99_latency_by_client_s.count("cheap"), 1u);
    EXPECT_EQ(s.p99_latency_by_client_s.count("expensive"), 1u);
    EXPECT_GT(s.peak_queued_cost_s, 0.0);
}

TEST(ServerCostAware, PriorityTrumpsCost)
{
    auto& e = fenv();
    const std::size_t slots = e.env.ctx.n() / 2;
    // A chain long enough that execution outlasts a submit() call:
    // the queue actually accumulates, giving priority something to
    // reorder (a trivially fast job drains before the next arrives).
    Graph chain("prio-chain", e.traits);
    {
        Value v = chain.input(e.traits.max_level, e.traits.delta);
        for (int i = 0; i < 48; ++i) v = chain.hadd(v, v);
        chain.mark_output(v);
    }
    ServerOptions opts;
    opts.lanes = 1;
    GraphServer server(e.resources(), opts);
    const auto* opt = server.register_graph(chain);

    // Pre-encrypt outside the submission loop so submits are
    // back-to-back; encryption is orders of magnitude slower than
    // admission and would otherwise keep the queue empty.
    std::vector<JobRequest> reqs;
    for (int i = 0; i < 12; ++i) {
        JobRequest req;
        req.graph = &opt->graph;
        req.client = i % 3 == 0 ? "high" : "low";
        req.priority = i % 3 == 0 ? 1 : 0;
        req.inputs.bind(
            opt->remap(Value{chain.input_ids()[0]}),
            e.env.encrypt(e.env.random_message(slots, 0.5, 300 + i)));
        reqs.push_back(std::move(req));
    }
    std::vector<std::future<JobResult>> futures;
    for (auto& req : reqs) futures.push_back(server.submit(std::move(req)));
    double high_queue = 0, low_queue = 0;
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const double q = futures[i].get().queue_s;
        (i % 3 == 0 ? high_queue : low_queue) += q;
    }
    // 4 high-priority vs 8 low-priority jobs: the high class must not
    // average more queueing than the low class it preempts.
    EXPECT_LE(high_queue / 4.0, low_queue / 8.0 + 1e-6);
    server.drain();
}

TEST(ServerCostAware, NegativeDeadlineRejectedAtSubmit)
{
    auto& e = fenv();
    GraphServer server(e.resources(), ServerOptions{});
    Graph add("deadline-add", e.traits);
    const Value in = add.input(e.traits.max_level, e.traits.delta);
    add.mark_output(add.hadd(in, in));
    JobRequest req;
    req.graph = &add;
    req.deadline_s = -1.0;
    EXPECT_THROW(server.submit(std::move(req)), std::invalid_argument);
}

TEST(ServerCostAware, CostBackpressureNeverDeadlocks)
{
    auto& e = fenv();
    const std::size_t slots = e.env.ctx.n() / 2;
    const Graph raw = poly_eval_graph(e.traits, e.traits.max_level,
                                      {0.5, -0.25, 1.0},
                                      passes::PassOptions::none());
    ServerOptions opts;
    opts.lanes = 1;
    // Tighter than any single job's estimate: the empty-queue admission
    // rule is the only thing letting jobs through — every one of them.
    opts.max_queued_cost_s = 1e-30;
    GraphServer server(e.resources(), opts);
    const auto* opt = server.register_graph(raw);

    std::vector<std::future<JobResult>> futures;
    for (int i = 0; i < 4; ++i) {
        JobRequest req;
        req.graph = &opt->graph;
        req.inputs.bind(
            opt->remap(Value{raw.input_ids()[0]}),
            e.env.encrypt(e.env.random_message(slots, 0.5, 400 + i)));
        futures.push_back(server.submit(std::move(req)));
    }
    for (auto& f : futures) EXPECT_EQ(f.get().outputs.size(), 1u);
    server.drain();
    EXPECT_EQ(server.stats().completed, 4u);
}

TEST(ServerCostAware, FifoModeStillServes)
{
    auto& e = fenv();
    const std::size_t slots = e.env.ctx.n() / 2;
    Graph add("fifo-add", e.traits);
    const Value in = add.input(e.traits.max_level, e.traits.delta);
    add.mark_output(add.hadd(in, in));
    ServerOptions opts;
    opts.cost_aware = false; // the pre-cost-model FIFO behaviour
    GraphServer server(e.resources(), opts);
    const auto* opt = server.register_graph(add);
    std::vector<std::future<JobResult>> futures;
    for (int i = 0; i < 5; ++i) {
        JobRequest req;
        req.graph = &opt->graph;
        req.inputs.bind(
            opt->remap(Value{add.input_ids()[0]}),
            e.env.encrypt(e.env.random_message(slots, 0.5, 500 + i)));
        futures.push_back(server.submit(std::move(req)));
    }
    for (auto& f : futures) EXPECT_EQ(f.get().outputs.size(), 1u);
    server.drain();
    EXPECT_EQ(server.stats().completed, 5u);
}

// ---------------------------------------------------------------------
// Instance-free liveness (the pass-delta currency).
// ---------------------------------------------------------------------

TEST(AnalyzeLiveness, MatchesFullAnalysisValueCounts)
{
    const hw::CkksInstance i = hw::ins1();
    const GraphTraits t = traits_for(i);
    const Graph g = dot_product_graph(t, t.bootstrap_out_level, 6);
    const analysis::LivenessStats live = analysis::analyze_liveness(g);
    const analysis::ResourceSummary full =
        analysis::analyze_resources(g, i);
    EXPECT_EQ(live.nodes, g.num_nodes());
    EXPECT_EQ(live.peak_live_values, full.peak_live_values);
    EXPECT_EQ(live.evk_ops, full.evk_ops);
    EXPECT_GT(live.peak_live_limbs, 0u);
}

} // namespace
} // namespace bts::runtime
